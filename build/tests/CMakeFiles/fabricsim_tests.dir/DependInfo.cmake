
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/block_cutter_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/block_cutter_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/block_cutter_test.cc.o.d"
  "/root/repo/tests/chaincode_ops_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/chaincode_ops_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/chaincode_ops_test.cc.o.d"
  "/root/repo/tests/chaincode_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/chaincode_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/chaincode_test.cc.o.d"
  "/root/repo/tests/client_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/client_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/client_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/fabricpp_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/fabricpp_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/fabricpp_test.cc.o.d"
  "/root/repo/tests/fabricsharp_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/fabricsharp_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/fabricsharp_test.cc.o.d"
  "/root/repo/tests/genchain_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/genchain_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/genchain_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/ledger_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/ledger_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/ledger_test.cc.o.d"
  "/root/repo/tests/orderer_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/orderer_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/orderer_test.cc.o.d"
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/parallel_test.cc.o.d"
  "/root/repo/tests/peer_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/peer_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/peer_test.cc.o.d"
  "/root/repo/tests/policy_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/policy_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/policy_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/serializability_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/serializability_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/serializability_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/statedb_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/statedb_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/statedb_test.cc.o.d"
  "/root/repo/tests/validator_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/validator_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/validator_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/fabricsim_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/fabricsim_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fabricsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
