# Empty dependencies file for fabricsim_tests.
# This may be replaced when dependencies are built.
