file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_database_type.dir/bench_fig11_database_type.cc.o"
  "CMakeFiles/bench_fig11_database_type.dir/bench_fig11_database_type.cc.o.d"
  "bench_fig11_database_type"
  "bench_fig11_database_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_database_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
