# Empty compiler generated dependencies file for bench_fig11_database_type.
# This may be replaced when dependencies are built.
