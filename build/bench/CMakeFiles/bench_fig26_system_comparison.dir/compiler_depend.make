# Empty compiler generated dependencies file for bench_fig26_system_comparison.
# This may be replaced when dependencies are built.
