# Empty dependencies file for bench_fig08_mvcc_arrival.
# This may be replaced when dependencies are built.
