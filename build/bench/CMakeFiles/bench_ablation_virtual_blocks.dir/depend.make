# Empty dependencies file for bench_ablation_virtual_blocks.
# This may be replaced when dependencies are built.
