file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_virtual_blocks.dir/bench_ablation_virtual_blocks.cc.o"
  "CMakeFiles/bench_ablation_virtual_blocks.dir/bench_ablation_virtual_blocks.cc.o.d"
  "bench_ablation_virtual_blocks"
  "bench_ablation_virtual_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_virtual_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
