file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_fabricpp_chaincodes.dir/bench_fig18_fabricpp_chaincodes.cc.o"
  "CMakeFiles/bench_fig18_fabricpp_chaincodes.dir/bench_fig18_fabricpp_chaincodes.cc.o.d"
  "bench_fig18_fabricpp_chaincodes"
  "bench_fig18_fabricpp_chaincodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_fabricpp_chaincodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
