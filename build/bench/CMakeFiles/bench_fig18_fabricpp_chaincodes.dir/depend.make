# Empty dependencies file for bench_fig18_fabricpp_chaincodes.
# This may be replaced when dependencies are built.
