# Empty dependencies file for bench_fig19_fabricpp_workloads.
# This may be replaced when dependencies are built.
