file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_fabricpp_workloads.dir/bench_fig19_fabricpp_workloads.cc.o"
  "CMakeFiles/bench_fig19_fabricpp_workloads.dir/bench_fig19_fabricpp_workloads.cc.o.d"
  "bench_fig19_fabricpp_workloads"
  "bench_fig19_fabricpp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_fabricpp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
