# Empty compiler generated dependencies file for bench_fig20_streamchain_rate.
# This may be replaced when dependencies are built.
