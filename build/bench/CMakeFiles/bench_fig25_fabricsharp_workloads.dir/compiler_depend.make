# Empty compiler generated dependencies file for bench_fig25_fabricsharp_workloads.
# This may be replaced when dependencies are built.
