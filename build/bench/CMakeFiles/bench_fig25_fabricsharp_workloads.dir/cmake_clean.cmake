file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_fabricsharp_workloads.dir/bench_fig25_fabricsharp_workloads.cc.o"
  "CMakeFiles/bench_fig25_fabricsharp_workloads.dir/bench_fig25_fabricsharp_workloads.cc.o.d"
  "bench_fig25_fabricsharp_workloads"
  "bench_fig25_fabricsharp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_fabricsharp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
