# Empty dependencies file for bench_fig05_minmax_failures.
# This may be replaced when dependencies are built.
