# Empty compiler generated dependencies file for bench_fig09_endorsement_blocksize.
# This may be replaced when dependencies are built.
