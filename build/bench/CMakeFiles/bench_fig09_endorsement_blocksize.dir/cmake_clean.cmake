file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_endorsement_blocksize.dir/bench_fig09_endorsement_blocksize.cc.o"
  "CMakeFiles/bench_fig09_endorsement_blocksize.dir/bench_fig09_endorsement_blocksize.cc.o.d"
  "bench_fig09_endorsement_blocksize"
  "bench_fig09_endorsement_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_endorsement_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
