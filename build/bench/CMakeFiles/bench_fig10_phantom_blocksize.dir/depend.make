# Empty dependencies file for bench_fig10_phantom_blocksize.
# This may be replaced when dependencies are built.
