# Empty dependencies file for bench_fig13_endorsement_policy.
# This may be replaced when dependencies are built.
