# Empty dependencies file for bench_fig07_mvcc_blocksize.
# This may be replaced when dependencies are built.
