file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_mvcc_blocksize.dir/bench_fig07_mvcc_blocksize.cc.o"
  "CMakeFiles/bench_fig07_mvcc_blocksize.dir/bench_fig07_mvcc_blocksize.cc.o.d"
  "bench_fig07_mvcc_blocksize"
  "bench_fig07_mvcc_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_mvcc_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
