# Empty dependencies file for bench_fig12_num_orgs.
# This may be replaced when dependencies are built.
