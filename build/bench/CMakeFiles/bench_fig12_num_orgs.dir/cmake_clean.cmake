file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_num_orgs.dir/bench_fig12_num_orgs.cc.o"
  "CMakeFiles/bench_fig12_num_orgs.dir/bench_fig12_num_orgs.cc.o.d"
  "bench_fig12_num_orgs"
  "bench_fig12_num_orgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_num_orgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
