file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_database_type.dir/bench_table4_database_type.cc.o"
  "CMakeFiles/bench_table4_database_type.dir/bench_table4_database_type.cc.o.d"
  "bench_table4_database_type"
  "bench_table4_database_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_database_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
