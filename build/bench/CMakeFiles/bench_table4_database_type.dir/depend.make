# Empty dependencies file for bench_table4_database_type.
# This may be replaced when dependencies are built.
