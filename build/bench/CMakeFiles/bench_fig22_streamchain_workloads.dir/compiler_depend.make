# Empty compiler generated dependencies file for bench_fig22_streamchain_workloads.
# This may be replaced when dependencies are built.
