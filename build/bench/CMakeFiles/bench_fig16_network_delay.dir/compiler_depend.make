# Empty compiler generated dependencies file for bench_fig16_network_delay.
# This may be replaced when dependencies are built.
