# Empty compiler generated dependencies file for bench_fig15_zipf_skew.
# This may be replaced when dependencies are built.
