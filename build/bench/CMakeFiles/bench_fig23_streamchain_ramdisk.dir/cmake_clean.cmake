file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_streamchain_ramdisk.dir/bench_fig23_streamchain_ramdisk.cc.o"
  "CMakeFiles/bench_fig23_streamchain_ramdisk.dir/bench_fig23_streamchain_ramdisk.cc.o.d"
  "bench_fig23_streamchain_ramdisk"
  "bench_fig23_streamchain_ramdisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_streamchain_ramdisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
