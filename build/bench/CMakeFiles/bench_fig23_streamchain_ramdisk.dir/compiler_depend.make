# Empty compiler generated dependencies file for bench_fig23_streamchain_ramdisk.
# This may be replaced when dependencies are built.
