file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_fabricsharp.dir/bench_fig24_fabricsharp.cc.o"
  "CMakeFiles/bench_fig24_fabricsharp.dir/bench_fig24_fabricsharp.cc.o.d"
  "bench_fig24_fabricsharp"
  "bench_fig24_fabricsharp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_fabricsharp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
