file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_fabricpp_blocksize.dir/bench_fig17_fabricpp_blocksize.cc.o"
  "CMakeFiles/bench_fig17_fabricpp_blocksize.dir/bench_fig17_fabricpp_blocksize.cc.o.d"
  "bench_fig17_fabricpp_blocksize"
  "bench_fig17_fabricpp_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_fabricpp_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
