# Empty dependencies file for bench_fig17_fabricpp_blocksize.
# This may be replaced when dependencies are built.
