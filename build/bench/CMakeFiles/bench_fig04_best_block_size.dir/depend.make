# Empty dependencies file for bench_fig04_best_block_size.
# This may be replaced when dependencies are built.
