# Empty compiler generated dependencies file for bench_fig21_streamchain_throughput.
# This may be replaced when dependencies are built.
