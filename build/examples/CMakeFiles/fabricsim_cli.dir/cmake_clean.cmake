file(REMOVE_RECURSE
  "CMakeFiles/fabricsim_cli.dir/fabricsim_cli.cc.o"
  "CMakeFiles/fabricsim_cli.dir/fabricsim_cli.cc.o.d"
  "fabricsim_cli"
  "fabricsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabricsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
