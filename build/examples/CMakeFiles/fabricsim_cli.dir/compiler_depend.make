# Empty compiler generated dependencies file for fabricsim_cli.
# This may be replaced when dependencies are built.
