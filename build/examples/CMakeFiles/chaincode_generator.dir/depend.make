# Empty dependencies file for chaincode_generator.
# This may be replaced when dependencies are built.
