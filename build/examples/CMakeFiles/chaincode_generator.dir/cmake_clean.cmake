file(REMOVE_RECURSE
  "CMakeFiles/chaincode_generator.dir/chaincode_generator.cc.o"
  "CMakeFiles/chaincode_generator.dir/chaincode_generator.cc.o.d"
  "chaincode_generator"
  "chaincode_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaincode_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
