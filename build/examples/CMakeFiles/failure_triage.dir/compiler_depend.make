# Empty compiler generated dependencies file for failure_triage.
# This may be replaced when dependencies are built.
