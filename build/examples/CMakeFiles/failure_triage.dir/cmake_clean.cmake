file(REMOVE_RECURSE
  "CMakeFiles/failure_triage.dir/failure_triage.cc.o"
  "CMakeFiles/failure_triage.dir/failure_triage.cc.o.d"
  "failure_triage"
  "failure_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
