# Empty compiler generated dependencies file for adaptive_block_size.
# This may be replaced when dependencies are built.
