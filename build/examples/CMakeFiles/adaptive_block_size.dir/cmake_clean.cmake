file(REMOVE_RECURSE
  "CMakeFiles/adaptive_block_size.dir/adaptive_block_size.cc.o"
  "CMakeFiles/adaptive_block_size.dir/adaptive_block_size.cc.o.d"
  "adaptive_block_size"
  "adaptive_block_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
