# Empty dependencies file for fabricsim.
# This may be replaced when dependencies are built.
