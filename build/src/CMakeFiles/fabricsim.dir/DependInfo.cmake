
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chaincode/chaincode.cc" "src/CMakeFiles/fabricsim.dir/chaincode/chaincode.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/chaincode.cc.o.d"
  "/root/repo/src/chaincode/digital_voting.cc" "src/CMakeFiles/fabricsim.dir/chaincode/digital_voting.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/digital_voting.cc.o.d"
  "/root/repo/src/chaincode/drm.cc" "src/CMakeFiles/fabricsim.dir/chaincode/drm.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/drm.cc.o.d"
  "/root/repo/src/chaincode/ehr.cc" "src/CMakeFiles/fabricsim.dir/chaincode/ehr.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/ehr.cc.o.d"
  "/root/repo/src/chaincode/genchain.cc" "src/CMakeFiles/fabricsim.dir/chaincode/genchain.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/genchain.cc.o.d"
  "/root/repo/src/chaincode/genchain_emitter.cc" "src/CMakeFiles/fabricsim.dir/chaincode/genchain_emitter.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/genchain_emitter.cc.o.d"
  "/root/repo/src/chaincode/registry.cc" "src/CMakeFiles/fabricsim.dir/chaincode/registry.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/registry.cc.o.d"
  "/root/repo/src/chaincode/stub.cc" "src/CMakeFiles/fabricsim.dir/chaincode/stub.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/stub.cc.o.d"
  "/root/repo/src/chaincode/supply_chain.cc" "src/CMakeFiles/fabricsim.dir/chaincode/supply_chain.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/chaincode/supply_chain.cc.o.d"
  "/root/repo/src/client/client.cc" "src/CMakeFiles/fabricsim.dir/client/client.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/client/client.cc.o.d"
  "/root/repo/src/common/parallel.cc" "src/CMakeFiles/fabricsim.dir/common/parallel.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/common/parallel.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/fabricsim.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/fabricsim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/fabricsim.dir/common/status.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/fabricsim.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/common/strings.cc.o.d"
  "/root/repo/src/core/block_size_advisor.cc" "src/CMakeFiles/fabricsim.dir/core/block_size_advisor.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/core/block_size_advisor.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/fabricsim.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/failure_report.cc" "src/CMakeFiles/fabricsim.dir/core/failure_report.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/core/failure_report.cc.o.d"
  "/root/repo/src/core/recommendations.cc" "src/CMakeFiles/fabricsim.dir/core/recommendations.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/core/recommendations.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/CMakeFiles/fabricsim.dir/core/runner.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/core/runner.cc.o.d"
  "/root/repo/src/core/sweeps.cc" "src/CMakeFiles/fabricsim.dir/core/sweeps.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/core/sweeps.cc.o.d"
  "/root/repo/src/ext/fabricpp/conflict_graph.cc" "src/CMakeFiles/fabricsim.dir/ext/fabricpp/conflict_graph.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ext/fabricpp/conflict_graph.cc.o.d"
  "/root/repo/src/ext/fabricpp/reorderer.cc" "src/CMakeFiles/fabricsim.dir/ext/fabricpp/reorderer.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ext/fabricpp/reorderer.cc.o.d"
  "/root/repo/src/ext/fabricsharp/dependency_tracker.cc" "src/CMakeFiles/fabricsim.dir/ext/fabricsharp/dependency_tracker.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ext/fabricsharp/dependency_tracker.cc.o.d"
  "/root/repo/src/ext/fabricsharp/fabricsharp.cc" "src/CMakeFiles/fabricsim.dir/ext/fabricsharp/fabricsharp.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ext/fabricsharp/fabricsharp.cc.o.d"
  "/root/repo/src/ext/streamchain/streamchain.cc" "src/CMakeFiles/fabricsim.dir/ext/streamchain/streamchain.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ext/streamchain/streamchain.cc.o.d"
  "/root/repo/src/fabric/fabric_network.cc" "src/CMakeFiles/fabricsim.dir/fabric/fabric_network.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/fabric/fabric_network.cc.o.d"
  "/root/repo/src/fabric/network_config.cc" "src/CMakeFiles/fabricsim.dir/fabric/network_config.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/fabric/network_config.cc.o.d"
  "/root/repo/src/ledger/block.cc" "src/CMakeFiles/fabricsim.dir/ledger/block.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/block.cc.o.d"
  "/root/repo/src/ledger/block_store.cc" "src/CMakeFiles/fabricsim.dir/ledger/block_store.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/block_store.cc.o.d"
  "/root/repo/src/ledger/ledger_parser.cc" "src/CMakeFiles/fabricsim.dir/ledger/ledger_parser.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/ledger_parser.cc.o.d"
  "/root/repo/src/ledger/rwset.cc" "src/CMakeFiles/fabricsim.dir/ledger/rwset.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/rwset.cc.o.d"
  "/root/repo/src/ledger/transaction.cc" "src/CMakeFiles/fabricsim.dir/ledger/transaction.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/transaction.cc.o.d"
  "/root/repo/src/ledger/version.cc" "src/CMakeFiles/fabricsim.dir/ledger/version.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ledger/version.cc.o.d"
  "/root/repo/src/ordering/block_cutter.cc" "src/CMakeFiles/fabricsim.dir/ordering/block_cutter.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/block_cutter.cc.o.d"
  "/root/repo/src/ordering/orderer.cc" "src/CMakeFiles/fabricsim.dir/ordering/orderer.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/ordering/orderer.cc.o.d"
  "/root/repo/src/peer/committer.cc" "src/CMakeFiles/fabricsim.dir/peer/committer.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/peer/committer.cc.o.d"
  "/root/repo/src/peer/endorser.cc" "src/CMakeFiles/fabricsim.dir/peer/endorser.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/peer/endorser.cc.o.d"
  "/root/repo/src/peer/peer.cc" "src/CMakeFiles/fabricsim.dir/peer/peer.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/peer/peer.cc.o.d"
  "/root/repo/src/peer/validator.cc" "src/CMakeFiles/fabricsim.dir/peer/validator.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/peer/validator.cc.o.d"
  "/root/repo/src/policy/endorsement_policy.cc" "src/CMakeFiles/fabricsim.dir/policy/endorsement_policy.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/policy/endorsement_policy.cc.o.d"
  "/root/repo/src/policy/policy_parser.cc" "src/CMakeFiles/fabricsim.dir/policy/policy_parser.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/policy/policy_parser.cc.o.d"
  "/root/repo/src/policy/policy_presets.cc" "src/CMakeFiles/fabricsim.dir/policy/policy_presets.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/policy/policy_presets.cc.o.d"
  "/root/repo/src/sim/environment.cc" "src/CMakeFiles/fabricsim.dir/sim/environment.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/sim/environment.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/fabricsim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/fabricsim.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/work_queue.cc" "src/CMakeFiles/fabricsim.dir/sim/work_queue.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/sim/work_queue.cc.o.d"
  "/root/repo/src/statedb/latency_profile.cc" "src/CMakeFiles/fabricsim.dir/statedb/latency_profile.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/statedb/latency_profile.cc.o.d"
  "/root/repo/src/statedb/memory_state_db.cc" "src/CMakeFiles/fabricsim.dir/statedb/memory_state_db.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/statedb/memory_state_db.cc.o.d"
  "/root/repo/src/statedb/rich_query.cc" "src/CMakeFiles/fabricsim.dir/statedb/rich_query.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/statedb/rich_query.cc.o.d"
  "/root/repo/src/statedb/state_database.cc" "src/CMakeFiles/fabricsim.dir/statedb/state_database.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/statedb/state_database.cc.o.d"
  "/root/repo/src/workload/key_distribution.cc" "src/CMakeFiles/fabricsim.dir/workload/key_distribution.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/workload/key_distribution.cc.o.d"
  "/root/repo/src/workload/paper_workloads.cc" "src/CMakeFiles/fabricsim.dir/workload/paper_workloads.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/workload/paper_workloads.cc.o.d"
  "/root/repo/src/workload/workload_generator.cc" "src/CMakeFiles/fabricsim.dir/workload/workload_generator.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/workload/workload_generator.cc.o.d"
  "/root/repo/src/workload/workload_spec.cc" "src/CMakeFiles/fabricsim.dir/workload/workload_spec.cc.o" "gcc" "src/CMakeFiles/fabricsim.dir/workload/workload_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
