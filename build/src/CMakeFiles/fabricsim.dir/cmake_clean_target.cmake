file(REMOVE_RECURSE
  "libfabricsim.a"
)
