// Quickstart: run the paper's default configuration (Table 3) — the
// EHR chaincode on a C1 cluster with CouchDB at 100 tps — and print
// the parsed-blockchain failure report plus the derived
// recommendations.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/recommendations.h"
#include "src/core/runner.h"

int main() {
  using namespace fabricsim;

  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 60 * kSecond;
  config.repetitions = 3;

  std::printf("fabricsim quickstart\n====================\n");
  std::printf("config: %s\n\n", config.Describe().c_str());

  Result<ExperimentResult> result = RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const FailureReport& report = result.value().mean;
  std::printf("%s\n", report.ToString().c_str());

  std::printf("recommendations\n---------------\n%s",
              FormatRecommendations(DeriveRecommendations(config, report))
                  .c_str());
  return 0;
}
