// Failure triage: run the same workload on all four Fabric-like
// systems (the paper's §5.5 comparison), print the failure breakdown
// side by side, and derive the §6.1 recommendations for the stock
// configuration — the "analyze your use case before tuning" workflow
// the paper advocates.
#include <cstdio>

#include "src/core/recommendations.h"
#include "src/core/runner.h"

using namespace fabricsim;

int main() {
  std::printf("failure triage across Fabric variants (EHR, C1, 50 tps)\n");
  std::printf("=======================================================\n\n");

  ExperimentConfig base = ExperimentConfig::Defaults();
  base.arrival_rate_tps = 50;
  base.duration = 30 * kSecond;
  base.repetitions = 3;
  base.fabric.block_size = 10;

  std::printf("%-12s %10s %9s %9s %9s %9s %9s %8s\n", "variant", "fail%",
              "endors%", "mvcc%", "phantom%", "reord%", "early%", "lat(s)");
  FailureReport stock_report;
  for (FabricVariant variant :
       {FabricVariant::kFabric14, FabricVariant::kFabricPlusPlus,
        FabricVariant::kStreamchain, FabricVariant::kFabricSharp}) {
    ExperimentConfig config = base;
    config.fabric.variant = variant;
    Result<ExperimentResult> result = RunExperiment(config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", FabricVariantToString(variant),
                   result.status().ToString().c_str());
      return 1;
    }
    const FailureReport& r = result.value().mean;
    if (variant == FabricVariant::kFabric14) stock_report = r;
    std::printf("%-12s %10.2f %9.2f %9.2f %9.2f %9.2f %9.2f %8.3f\n",
                FabricVariantToString(variant), r.total_failure_pct,
                r.endorsement_pct, r.mvcc_pct, r.phantom_pct,
                r.reorder_abort_pct, r.early_abort_pct, r.avg_latency_s);
  }

  std::printf("\nrecommendations for the stock configuration "
              "(paper §6.1 rules):\n");
  std::printf("%s", FormatRecommendations(
                        DeriveRecommendations(base, stock_report))
                        .c_str());
  return 0;
}
