// Cross-channel interference: a cold channel pays for its noisy
// neighbor. Two runs drive the SAME ~60 tps at channel 1, but in the
// second run channel 0 turns hot (Zipf channel popularity, ~4x the
// traffic). Channels are independent pipelines on paper — separate
// ledgers, separate key spaces, zero shared transactions — yet the
// cold channel's proposals wait behind the hot channel's backlog in
// every peer's shared endorsement queue, and its blocks compete for
// the same commit-worker budget. The peers' queue-delay stats make
// the starvation directly visible.
#include <cstdio>
#include <memory>

#include "src/core/failure_report.h"
#include "src/core/runner.h"
#include "src/fabric/fabric_network.h"
#include "src/workload/paper_workloads.h"

using namespace fabricsim;

namespace {

struct ColdChannelView {
  double committed_tps = 0;      // cold channel's committed throughput
  double endorse_delay_ms = 0;   // mean endorsement queueing on peer 0
  double endorse_delay_max = 0;  // worst single proposal
  uint64_t ledger_txs = 0;
};

ColdChannelView RunAndInspect(int channels, double channel_skew,
                              double rate_tps) {
  ExperimentConfig config = ExperimentConfig::Builder()
                                .Channels(channels)
                                .ChannelSkew(channel_skew)
                                .Duration(30 * kSecond)
                                .RateTps(rate_tps)
                                .Build();
  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto workload = std::shared_ptr<WorkloadGenerator>(
      std::move(MakeWorkload(config.workload, /*rich=*/true).value()));
  Environment env(42);
  FabricNetwork network(config.fabric, &env, chaincode, workload);
  if (!network.Init().ok()) {
    std::fprintf(stderr, "network init failed\n");
    std::exit(1);
  }
  network.set_channel_affinity(config.workload.channel_affinity);
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();

  const ChannelId cold = 1;
  std::vector<const BlockStore*> ledgers;
  for (int c = 0; c < network.num_channels(); ++c) {
    ledgers.push_back(&network.ledger(c));
  }
  FailureReport report =
      BuildFailureReport(ledgers, network.stats(), config.duration);

  ColdChannelView view;
  view.committed_tps = report.per_channel[cold].committed_throughput_tps;
  view.ledger_txs = report.per_channel[cold].ledger_txs;
  // With two channels and two commit workers each channel always finds
  // a free validation worker, so the contended shared resource is the
  // peers' serial endorsement queue — every cold-channel proposal
  // waits behind the hot channel's backlog there.
  const WorkQueue& endorse = network.peers()[0]->endorse_queue();
  view.endorse_delay_ms = endorse.queue_delay_stats().mean();
  view.endorse_delay_max = endorse.queue_delay_stats().max();
  return view;
}

}  // namespace

int main() {
  std::printf("cross-channel hot keys: a cold channel behind a hot "
              "neighbor (C1, CouchDB)\n");
  std::printf("======================================================="
              "================\n\n");

  // Quiet neighborhood: two channels split 120 tps evenly, so channel
  // 1 sees ~60 tps with an equally loaded neighbor.
  ColdChannelView quiet = RunAndInspect(/*channels=*/2, /*channel_skew=*/0,
                                        /*rate_tps=*/120);
  // Hot neighborhood: Zipf popularity (theta = 2) sends ~80% of 300
  // tps to channel 0 — channel 1 still sees ~60 tps of its own
  // traffic, but now shares every peer with a hot channel.
  ColdChannelView hot = RunAndInspect(/*channels=*/2, /*channel_skew=*/2.0,
                                      /*rate_tps=*/300);

  std::printf("channel 1 (the cold channel, ~60 tps offered in both "
              "runs):\n\n");
  std::printf("%-28s %16s %16s\n", "", "quiet neighbor", "hot neighbor");
  std::printf("%-28s %16llu %16llu\n", "ledger txs",
              static_cast<unsigned long long>(quiet.ledger_txs),
              static_cast<unsigned long long>(hot.ledger_txs));
  std::printf("%-28s %16.1f %16.1f\n", "committed tps", quiet.committed_tps,
              hot.committed_tps);
  std::printf("%-28s %16.2f %16.2f\n", "endorse queue delay (ms)",
              quiet.endorse_delay_ms, hot.endorse_delay_ms);
  std::printf("%-28s %16.2f %16.2f\n", "worst proposal delay (ms)",
              quiet.endorse_delay_max, hot.endorse_delay_max);

  double amplification = quiet.endorse_delay_ms > 0
                             ? hot.endorse_delay_ms / quiet.endorse_delay_ms
                             : 0;
  std::printf("\nthe hot neighbor amplified the cold channel's "
              "endorsement queueing %.1fx\nand cut its in-window "
              "committed throughput, without sharing a single key\nor "
              "transaction with it: the contention lives entirely in "
              "the peers'\nshared endorsement queue and commit "
              "workers.\n",
              amplification);
  return 0;
}
