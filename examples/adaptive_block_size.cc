// Adaptive block size — an implementation of the paper's first future
// research direction (§6.2): calibrate the best-block-size/arrival-
// rate relation with sweeps, then let the BlockSizeAdvisor pick the
// block size as the (time-varying) load changes, and compare failures
// against a fixed default block size.
#include <cstdio>

#include "src/core/block_size_advisor.h"
#include "src/core/runner.h"
#include "src/core/sweeps.h"

using namespace fabricsim;

int main() {
  std::printf("adaptive block size demo (paper §6.2, future work)\n");
  std::printf("==================================================\n\n");

  ExperimentConfig base = ExperimentConfig::Defaults();
  base.duration = 30 * kSecond;
  base.repetitions = 1;

  // 1. Calibration: find the best block size at a few rates.
  std::printf("calibrating the rate -> best-block-size relation...\n");
  BlockSizeAdvisor advisor;
  const std::vector<uint32_t> sizes = {10, 25, 50, 100, 200};
  for (double rate : {25.0, 50.0, 100.0, 150.0}) {
    ExperimentConfig config = base;
    config.arrival_rate_tps = rate;
    Result<BlockSizeSearch> search = FindBestBlockSize(config, sizes);
    if (!search.ok()) {
      std::fprintf(stderr, "%s\n", search.status().ToString().c_str());
      return 1;
    }
    advisor.AddObservation(rate, search.value().best_block_size);
    std::printf("  %.0f tps -> best block size %u (%.1f%% failures)\n", rate,
                search.value().best_block_size,
                search.value().min_failure_pct);
  }
  std::printf("fitted slope: %.3f blocks per tps\n\n", advisor.slope());

  // 2. A day in the life: the arrival rate swings (off-peak, peak,
  //    holiday-season rush). Compare the advisor's block size against
  //    a fixed default of 100.
  std::printf("%-16s %8s %12s | %-22s | %-22s\n", "phase", "rate",
              "advised bs", "fixed bs=100 failures", "advised bs failures");
  struct Phase {
    const char* name;
    double rate;
  };
  double fixed_total = 0;
  double adaptive_total = 0;
  for (const Phase& phase : {Phase{"off-peak", 25}, Phase{"daytime", 100},
                             Phase{"peak-season", 150}}) {
    uint32_t advised = advisor.Recommend(phase.rate);

    ExperimentConfig fixed = base;
    fixed.arrival_rate_tps = phase.rate;
    fixed.fabric.block_size = 100;
    Result<ExperimentResult> fixed_result = RunExperiment(fixed);

    ExperimentConfig adaptive = base;
    adaptive.arrival_rate_tps = phase.rate;
    adaptive.fabric.block_size = advised;
    Result<ExperimentResult> adaptive_result = RunExperiment(adaptive);

    if (!fixed_result.ok() || !adaptive_result.ok()) {
      std::fprintf(stderr, "experiment failed\n");
      return 1;
    }
    double fixed_pct = fixed_result.value().mean.total_failure_pct;
    double adaptive_pct = adaptive_result.value().mean.total_failure_pct;
    fixed_total += fixed_pct;
    adaptive_total += adaptive_pct;
    std::printf("%-16s %8.0f %12u | %20.2f%% | %20.2f%%\n", phase.name,
                phase.rate, advised, fixed_pct, adaptive_pct);
  }
  std::printf("\naverage failures: fixed %.2f%% vs adaptive %.2f%% "
              "(%.0f%% relative reduction)\n",
              fixed_total / 3, adaptive_total / 3,
              100.0 * (fixed_total - adaptive_total) / fixed_total);
  return 0;
}
