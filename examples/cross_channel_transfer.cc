// Cross-channel transfer: moving value between two channels with a
// client-side saga. Channels are independent chains — separate
// ledgers, separate world states, no cross-channel transactions — so
// an "inter-channel transfer" is necessarily TWO transactions: a
// debit on the source channel and a matching credit on the
// destination channel, stitched together by the client. The asset
// chaincode keeps its balance checks client-side for exactly this
// reason: each leg is a plain read-modify-write that can commit (or
// MVCC-abort) on its own chain.
//
// That independence is the failure mode. Both legs race other traffic
// on a handful of hot ACCT rows; when one leg validates and the other
// takes an MVCC_READ_CONFLICT, the transfer is half-applied and the
// two chains drift out of sync. The fix is the client retry loop from
// the overload-protection work: ClientRetryPolicy::resubmit_on_mvcc
// re-endorses and resubmits a failed leg as a fresh transaction after
// a backoff — on BOTH legs, because healing only one side makes the
// drift worse (committed credits with permanently lost debits). This
// example runs the same two-leg load twice — fire-and-forget, then
// with resubmission — and audits both ledgers for the money that went
// missing in between.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/cross_channel_transfer
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/experiment.h"
#include "src/fabric/fabric_network.h"
#include "src/workload/paper_workloads.h"
#include "src/workload/population/population.h"

using namespace fabricsim;

namespace {

constexpr int kAccounts = 50;       // ACCT rows per channel (hot set)
constexpr ChannelId kSource = 0;    // debit leg lands here
constexpr ChannelId kDest = 1;      // credit leg lands here

// The client-side transfer log: the debit generator appends each
// (account, amount) pair it issues, the credit generator replays them
// in order on the other channel. One shared instance per run — the
// same stitching a real cross-channel client would keep in memory.
struct TransferLog {
  std::vector<std::pair<int, long long>> pairs;
  size_t next_debit = 0;
  size_t next_credit = 0;
};

// Each leg carries its transfer id as a third argument — the contract
// ignores extras, but the ledger audit below can then join the two
// chains pair-for-pair instead of netting totals (which would let a
// lost debit cancel a lost credit).
Invocation LegInvocation(const char* function, size_t transfer_id,
                         const std::pair<int, long long>& pair) {
  return Invocation{function,
                    {std::to_string(pair.first), std::to_string(pair.second),
                     std::to_string(transfer_id)}};
}

std::shared_ptr<WorkloadGenerator> DebitLeg(std::shared_ptr<TransferLog> log) {
  std::vector<FunctionMixWorkload::Entry> entries;
  entries.push_back({1.0, [log](Rng& rng) {
                       size_t id = log->next_debit++;
                       if (id >= log->pairs.size()) {
                         log->pairs.emplace_back(
                             static_cast<int>(rng.UniformU64(kAccounts)),
                             100 +
                                 static_cast<long long>(rng.UniformU64(900)));
                       }
                       return LegInvocation("debit", id, log->pairs[id]);
                     }});
  return std::make_shared<FunctionMixWorkload>("asset", std::move(entries));
}

std::shared_ptr<WorkloadGenerator> CreditLeg(std::shared_ptr<TransferLog> log) {
  std::vector<FunctionMixWorkload::Entry> entries;
  entries.push_back({1.0, [log](Rng& rng) {
                       // Replay the oldest un-credited debit. If the
                       // credit clock briefly outruns the debit clock
                       // (independent Poisson arrivals), mint the pair
                       // here — the debit leg will replay it from the
                       // log in turn, keeping the streams aligned
                       // pair-for-pair.
                       size_t id = log->next_credit++;
                       if (id >= log->pairs.size()) {
                         log->pairs.emplace_back(
                             static_cast<int>(rng.UniformU64(kAccounts)),
                             100 +
                                 static_cast<long long>(rng.UniformU64(900)));
                       }
                       return LegInvocation("credit", id, log->pairs[id]);
                     }});
  return std::make_shared<FunctionMixWorkload>("asset", std::move(entries));
}

// Valid legs per transfer id on one channel (a leg commits at most
// once: a resubmission only goes out after the original aborted).
std::map<size_t, long long> CommittedLegs(const BlockStore& ledger,
                                          const std::string& function,
                                          uint64_t* aborted) {
  std::map<size_t, long long> legs;
  for (const Block& block : ledger.blocks()) {
    for (size_t i = 0; i < block.txs.size(); ++i) {
      if (block.txs[i].function != function) continue;
      if (block.results[i].code == TxValidationCode::kValid) {
        legs[static_cast<size_t>(std::atoll(block.txs[i].args[2].c_str()))] =
            std::atoll(block.txs[i].args[1].c_str());
      } else if (block.results[i].code ==
                     TxValidationCode::kMvccReadConflict ||
                 block.results[i].code ==
                     TxValidationCode::kPhantomReadConflict) {
        ++*aborted;
      }
    }
  }
  return legs;
}

struct RunOutcome {
  uint64_t debit_commits = 0, debit_aborts = 0;
  uint64_t credit_commits = 0, credit_aborts = 0;
  uint64_t complete = 0;        // both legs landed
  uint64_t stuck_count = 0;     // debit landed, credit did not
  long long stuck_cents = 0;    // value leaked out of the source chain
  uint64_t conjured_count = 0;  // credit landed, debit did not
  long long conjured_cents = 0; // value minted on the destination chain
};

RunOutcome RunTwoLegLoad(bool resubmit_on_mvcc) {
  ExperimentConfig config = ExperimentConfig::Builder()
                                .Chaincode("asset")
                                .Channels(2)
                                .BlockSize(20)  // short conflict window
                                .Duration(60 * kSecond)
                                .Build();
  config.workload.asset.owners = kAccounts;

  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto shared = std::shared_ptr<WorkloadGenerator>(
      std::move(MakeWorkload(config.workload, /*rich=*/true).value()));
  Environment env(config.base_seed);
  FabricNetwork network(config.fabric, &env, chaincode, shared);
  if (!network.Init().ok()) {
    std::fprintf(stderr, "network init failed\n");
    std::exit(1);
  }

  ClientRetryPolicy retry;  // defaults: fire-and-forget
  retry.resubmit_on_mvcc = resubmit_on_mvcc;
  retry.max_resubmits = 5;

  PopulationConfig population;
  BehaviourClass debit_class;
  debit_class.name = "debit-leg";
  debit_class.num_users = 4;
  debit_class.per_user_tps = 5;  // 20 tps on the source channel
  debit_class.affinity = ChannelAffinityConfig{};
  debit_class.affinity->pinned_channel = kSource;
  debit_class.retry = retry;
  population.classes.push_back(debit_class);

  BehaviourClass credit_class = debit_class;
  credit_class.name = "credit-leg";
  credit_class.affinity->pinned_channel = kDest;
  population.classes.push_back(credit_class);

  auto log = std::make_shared<TransferLog>();
  Status st = network.StartLoad(population, config.duration,
                                {DebitLeg(log), CreditLeg(log)});
  if (!st.ok()) {
    std::fprintf(stderr, "start load: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  env.RunAll();

  RunOutcome o;
  std::map<size_t, long long> debits =
      CommittedLegs(network.ledger(kSource), "debit", &o.debit_aborts);
  std::map<size_t, long long> credits =
      CommittedLegs(network.ledger(kDest), "credit", &o.credit_aborts);
  o.debit_commits = debits.size();
  o.credit_commits = credits.size();
  for (const auto& [id, cents] : debits) {
    if (credits.count(id)) {
      ++o.complete;
    } else {
      ++o.stuck_count;
      o.stuck_cents += cents;
    }
  }
  for (const auto& [id, cents] : credits) {
    if (!debits.count(id)) {
      ++o.conjured_count;
      o.conjured_cents += cents;
    }
  }
  return o;
}

void PrintOutcome(const char* label, const RunOutcome& o) {
  std::printf("%s\n", label);
  std::printf("  %-36s %8llu committed, %5llu mvcc-aborted\n",
              "debit legs  (source channel 0)",
              static_cast<unsigned long long>(o.debit_commits),
              static_cast<unsigned long long>(o.debit_aborts));
  std::printf("  %-36s %8llu committed, %5llu mvcc-aborted\n",
              "credit legs (dest   channel 1)",
              static_cast<unsigned long long>(o.credit_commits),
              static_cast<unsigned long long>(o.credit_aborts));
  std::printf("  %-36s %8llu\n", "transfers fully landed",
              static_cast<unsigned long long>(o.complete));
  std::printf("  %-36s %8llu (%lld cents left the source chain "
              "unmatched)\n",
              "half-applied: debit leg only",
              static_cast<unsigned long long>(o.stuck_count), o.stuck_cents);
  std::printf("  %-36s %8llu (%lld cents appeared on the destination "
              "unmatched)\n\n",
              "half-applied: credit leg only",
              static_cast<unsigned long long>(o.conjured_count),
              o.conjured_cents);
}

}  // namespace

int main() {
  std::printf("cross-channel two-leg transfer (asset chaincode, 2 "
              "channels, 20+20 tps)\n");
  std::printf("======================================================="
              "==============\n\n");

  RunOutcome naive = RunTwoLegLoad(/*resubmit_on_mvcc=*/false);
  RunOutcome healed = RunTwoLegLoad(/*resubmit_on_mvcc=*/true);

  PrintOutcome("fire-and-forget (no retry):", naive);
  PrintOutcome("both legs resubmit on MVCC conflict:", healed);

  uint64_t naive_half = naive.stuck_count + naive.conjured_count;
  uint64_t healed_half = healed.stuck_count + healed.conjured_count;
  std::printf("takeaway: a leg that MVCC-aborts while its twin commits "
              "leaves the\ntransfer half-applied — money gone from one "
              "chain or minted on the\nother. Client-side resubmission "
              "of failed legs cut the half-applied\ntransfers from "
              "%llu to %llu (%llu -> %llu fully landed); the residue\n"
              "is legs still dead after the resubmit budget, which a "
              "real saga\nwould reconcile with a compensating "
              "transaction on the committed\nside.\n",
              static_cast<unsigned long long>(naive_half),
              static_cast<unsigned long long>(healed_half),
              static_cast<unsigned long long>(naive.complete),
              static_cast<unsigned long long>(healed.complete));
  return 0;
}
