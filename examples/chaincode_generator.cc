// Chaincode & workload generator demo (paper §4.4): define a custom
// chaincode spec, emit the equivalent Go chaincode source, run a
// custom workload against the in-process interpreter, and report the
// failure breakdown.
#include <cstdio>

#include "src/chaincode/genchain.h"
#include "src/chaincode/genchain_emitter.h"
#include "src/core/failure_report.h"
#include "src/fabric/fabric_network.h"
#include "src/workload/key_distribution.h"
#include "src/workload/workload_generator.h"

using namespace fabricsim;

int main() {
  // 1. Build a custom chaincode: a mixed function (2 reads + 1 update)
  //    and a small range scanner, over a 2000-key world state.
  GenChaincodeSpec spec;
  spec.name = "inventoryChain";
  spec.initial_keys = 2000;
  spec.functions = {
      GenFunctionSpec{"auditItem", /*reads=*/2, /*inserts=*/0,
                      /*updates=*/1, /*deletes=*/0, /*range_reads=*/0,
                      /*rich=*/false},
      GenFunctionSpec{"restock", 0, 1, 1, 0, 0, false},
      GenFunctionSpec{"scanShelf", 0, 0, 0, 0, 1, false},
  };
  Status valid = spec.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid spec: %s\n", valid.ToString().c_str());
    return 1;
  }

  // 2. Emit the Go chaincode a real Fabric deployment would install.
  std::string go_source = EmitGoChaincode(spec);
  std::printf("generated %zu bytes of Go chaincode; first lines:\n",
              go_source.size());
  size_t shown = 0;
  for (size_t pos = 0, line = 0; line < 8 && pos < go_source.size();
       ++line) {
    size_t next = go_source.find('\n', pos);
    std::printf("  | %s\n", go_source.substr(pos, next - pos).c_str());
    pos = next + 1;
    shown = pos;
  }
  std::printf("  | ... (%zu more bytes)\n\n", go_source.size() - shown);

  // 3. Run a custom workload against the interpreter on a C1 network.
  auto chaincode = std::make_shared<GenChaincode>(spec);
  auto keys = std::make_shared<KeyDistribution>(spec.initial_keys, 1.2);
  auto insert_seq = std::make_shared<uint64_t>(spec.initial_keys);
  std::vector<FunctionMixWorkload::Entry> entries;
  entries.push_back({3.0, [keys](Rng& rng) {
                       return Invocation{
                           "auditItem",
                           {GenChaincode::Key(keys->Sample(rng)),
                            GenChaincode::Key(keys->Sample(rng)),
                            GenChaincode::Key(keys->Sample(rng))}};
                     }});
  entries.push_back({2.0, [keys, insert_seq](Rng& rng) {
                       return Invocation{
                           "restock",
                           {GenChaincode::Key((*insert_seq)++),
                            GenChaincode::Key(keys->Sample(rng))}};
                     }});
  entries.push_back({1.0, [keys](Rng& rng) {
                       uint64_t start = keys->Sample(rng) % 1900;
                       return Invocation{
                           "scanShelf",
                           {GenChaincode::Key(start),
                            GenChaincode::Key(start + 16)}};
                     }});
  auto workload = std::make_shared<FunctionMixWorkload>("inventoryChain",
                                                        std::move(entries));

  FabricConfig fabric;
  fabric.block_size = 50;
  Environment env(/*seed=*/2026);
  FabricNetwork network(fabric, &env, chaincode, workload);
  Status st = network.Init();
  if (!st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
    return 1;
  }
  network.StartLoad(/*tps=*/80, /*duration=*/30 * kSecond);
  env.RunAll();

  FailureReport report =
      BuildFailureReport(network.ledger(), network.stats(), 30 * kSecond);
  std::printf("custom workload results (80 tps, 30 s):\n%s",
              report.ToString().c_str());
  return 0;
}
