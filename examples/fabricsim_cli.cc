// fabricsim_cli — run a single experiment from the command line and
// print the failure report (plus optional CSV for scripting).
//
//   fabricsim_cli [--variant=fabric14|fabricpp|streamchain|fabricsharp]
//                 [--chaincode=ehr|dv|scm|drm|genchain]
//                 [--mix=uniform|read|insert|update|delete|range]
//                 [--db=couchdb|leveldb] [--cluster=c1|c2]
//                 [--block-size=N] [--rate=TPS] [--duration-s=S]
//                 [--skew=Z] [--orgs=N] [--policy=TEXT] [--seed=N]
//                 [--reps=N] [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/recommendations.h"
#include "src/core/runner.h"

using namespace fabricsim;

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--variant=..] [--chaincode=..] [--mix=..] "
               "[--db=..] [--cluster=c1|c2] [--block-size=N] [--rate=TPS] "
               "[--duration-s=S] [--skew=Z] [--orgs=N] [--policy=TEXT] "
               "[--seed=N] [--reps=N] [--csv]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 30 * kSecond;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "variant", &value)) {
      if (value == "fabric14") {
        config.fabric.variant = FabricVariant::kFabric14;
      } else if (value == "fabricpp") {
        config.fabric.variant = FabricVariant::kFabricPlusPlus;
      } else if (value == "streamchain") {
        config.fabric.variant = FabricVariant::kStreamchain;
      } else if (value == "fabricsharp") {
        config.fabric.variant = FabricVariant::kFabricSharp;
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(argv[i], "chaincode", &value)) {
      config.workload.chaincode = value;
    } else if (ParseFlag(argv[i], "mix", &value)) {
      if (value == "uniform") {
        config.workload.mix = WorkloadMix::kUniform;
      } else if (value == "read") {
        config.workload.mix = WorkloadMix::kReadHeavy;
      } else if (value == "insert") {
        config.workload.mix = WorkloadMix::kInsertHeavy;
      } else if (value == "update") {
        config.workload.mix = WorkloadMix::kUpdateHeavy;
      } else if (value == "delete") {
        config.workload.mix = WorkloadMix::kDeleteHeavy;
      } else if (value == "range") {
        config.workload.mix = WorkloadMix::kRangeHeavy;
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(argv[i], "db", &value)) {
      if (value == "couchdb") {
        config.fabric.db_type = DatabaseType::kCouchDb;
      } else if (value == "leveldb") {
        config.fabric.db_type = DatabaseType::kLevelDb;
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(argv[i], "cluster", &value)) {
      if (value == "c1") {
        config.fabric.cluster = ClusterConfig::C1();
      } else if (value == "c2") {
        config.fabric.cluster = ClusterConfig::C2();
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(argv[i], "block-size", &value)) {
      config.fabric.block_size = static_cast<uint32_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "rate", &value)) {
      config.arrival_rate_tps = std::stod(value);
    } else if (ParseFlag(argv[i], "duration-s", &value)) {
      config.duration = FromSeconds(std::stod(value));
    } else if (ParseFlag(argv[i], "skew", &value)) {
      config.workload.zipf_skew = std::stod(value);
    } else if (ParseFlag(argv[i], "orgs", &value)) {
      config.fabric.cluster.num_orgs = std::stoi(value);
    } else if (ParseFlag(argv[i], "policy", &value)) {
      config.fabric.policy_text = value;
    } else if (ParseFlag(argv[i], "seed", &value)) {
      config.base_seed = std::stoull(value);
    } else if (ParseFlag(argv[i], "reps", &value)) {
      config.repetitions = std::stoi(value);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      return Usage(argv[0]);
    }
  }

  Result<ExperimentResult> result = RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const FailureReport& r = result.value().mean;

  if (csv) {
    std::printf(
        "variant,chaincode,db,block_size,rate_tps,skew,total_fail_pct,"
        "endorsement_pct,mvcc_intra_pct,mvcc_inter_pct,phantom_pct,"
        "reorder_abort_pct,early_abort_pct,avg_latency_s,"
        "committed_tput_tps\n");
    std::printf("%s,%s,%s,%u,%.1f,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,"
                "%.4f,%.2f\n",
                FabricVariantToString(config.fabric.variant),
                config.workload.chaincode.c_str(),
                DatabaseTypeToString(config.fabric.db_type),
                config.fabric.block_size, config.arrival_rate_tps,
                config.workload.zipf_skew, r.total_failure_pct,
                r.endorsement_pct, r.mvcc_intra_pct, r.mvcc_inter_pct,
                r.phantom_pct, r.reorder_abort_pct, r.early_abort_pct,
                r.avg_latency_s, r.committed_throughput_tps);
    return 0;
  }

  std::printf("config: %s\n\n%s\n", config.Describe().c_str(),
              r.ToString().c_str());
  std::printf("%s", FormatRecommendations(
                        DeriveRecommendations(config, r))
                        .c_str());
  return 0;
}
