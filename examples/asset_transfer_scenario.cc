// Composite-key asset transfer: the classic Fabric starter contract
// (create/transfer/query-by-owner) as a phantom-abort case study.
// Every asset carries TWO composite-keyed rows — the ASSET record and
// an OWNED(owner, asset) index entry — so a transfer deletes one index
// row and inserts another, perturbing exactly the owner subtrees that
// queryByOwner range-scans with phantom checking. Under concurrent
// load the queries abort with PHANTOM_READ_CONFLICT even though no
// key they read was overwritten: the *membership* of the scanned
// interval changed. This example runs the mix with lifecycle tracing,
// attributes the aborts per composite-key table, decodes the hottest
// keys, and narrates one phantom end to end.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/asset_transfer_scenario
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/chaincode/composite_key.h"
#include "src/core/experiment.h"
#include "src/fabric/fabric_network.h"
#include "src/workload/paper_workloads.h"

int main() {
  using namespace fabricsim;

  ExperimentConfig config = ExperimentConfig::Builder()
                                .Chaincode("asset")
                                .RateTps(120)
                                .Duration(30 * kSecond)
                                .Tracing()
                                .Build();

  std::printf("composite-key asset transfer\n");
  std::printf("============================\n");
  std::printf("config: %s\n\n", config.Describe().c_str());

  // Drive one network directly so the tracer stays alive for the
  // attribution queries below.
  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto workload = std::shared_ptr<WorkloadGenerator>(
      std::move(MakeWorkload(config.workload, /*rich=*/true).value()));
  Environment env(config.base_seed);
  FabricNetwork network(config.fabric, &env, chaincode, workload);
  if (!network.Init().ok()) {
    std::fprintf(stderr, "network init failed\n");
    return 1;
  }
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();

  // --- who fails, per chaincode function -----------------------------
  // The ledger keeps aborted transactions (the paper's methodology),
  // so the per-function failure profile falls out of one walk.
  struct FnRow {
    uint64_t valid = 0, mvcc = 0, phantom = 0, other = 0;
  };
  std::map<std::string, FnRow> per_function;
  for (const Block& block : network.ledger().blocks()) {
    for (size_t i = 0; i < block.txs.size(); ++i) {
      FnRow& row = per_function[block.txs[i].function];
      switch (block.results[i].code) {
        case TxValidationCode::kValid: ++row.valid; break;
        case TxValidationCode::kMvccReadConflict: ++row.mvcc; break;
        case TxValidationCode::kPhantomReadConflict: ++row.phantom; break;
        default: ++row.other; break;
      }
    }
  }
  std::printf("per-function outcomes:\n");
  std::printf("  %-14s %8s %8s %8s %8s\n", "function", "valid", "mvcc",
              "phantom", "other");
  for (const auto& [fn, row] : per_function) {
    std::printf("  %-14s %8llu %8llu %8llu %8llu\n", fn.c_str(),
                static_cast<unsigned long long>(row.valid),
                static_cast<unsigned long long>(row.mvcc),
                static_cast<unsigned long long>(row.phantom),
                static_cast<unsigned long long>(row.other));
  }

  // --- the hot composite keys, decoded -------------------------------
  std::printf("\ntop conflicting keys (decoded composite keys):\n");
  for (const auto& [key, count] : network.tracer()->TopConflictingKeys(8)) {
    std::string type;
    std::vector<std::string> attrs;
    std::string decoded = key;
    if (SplitCompositeKey(key, &type, &attrs)) {
      decoded = type + "(";
      for (size_t i = 0; i < attrs.size(); ++i) {
        decoded += (i ? ", " : "") + attrs[i];
      }
      decoded += ")";
    }
    std::printf("  %-32s %8llu conflicts\n", decoded.c_str(),
                static_cast<unsigned long long>(count));
  }

  // --- narrate one phantom -------------------------------------------
  for (const TxTrace* trace : network.tracer()->SortedTraces()) {
    if (trace->final_code != TxValidationCode::kPhantomReadConflict) continue;
    std::printf("\nwhy did tx %llu (%s) fail?\n",
                static_cast<unsigned long long>(trace->id),
                trace->function.c_str());
    std::printf("  it range-scanned one owner's OWNED subtree at "
                "endorsement time;\n");
    if (trace->failure != nullptr && !trace->failure->conflicting_key.empty()) {
      std::string type;
      std::vector<std::string> attrs;
      if (SplitCompositeKey(trace->failure->conflicting_key, &type, &attrs) &&
          attrs.size() == 2) {
        std::printf("  by commit time a transfer had %s the index row "
                    "%s(%s, %s) inside\n  that interval",
                    trace->failure->observed_found ? "inserted" : "deleted",
                    type.c_str(), attrs[0].c_str(), attrs[1].c_str());
      } else {
        std::printf("  by commit time the interval's membership had "
                    "changed at key \"%s\"",
                    trace->failure->conflicting_key.c_str());
      }
      std::printf(" — no key it READ was\n  overwritten, but the re-scan "
                  "no longer matches, so the validator\n  returned "
                  "PHANTOM_READ_CONFLICT (block %llu).\n",
                  static_cast<unsigned long long>(trace->block_number));
    }
    break;
  }

  std::printf("\ntakeaway: pair every mutable entity with its index rows "
              "and the\nrange scans over them become the failure "
              "hotspot — phantom aborts\nscale with writer concurrency "
              "even when readers and writers touch\ndisjoint keys.\n");
  return 0;
}
