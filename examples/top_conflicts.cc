// Top conflicting keys: run a hot-key Zipfian workload with lifecycle
// tracing enabled, then answer the paper's title question per
// transaction — why did my transaction fail? Prints the per-phase
// latency breakdown, the keys that caused the most MVCC/phantom
// aborts, a triage of one failed transaction, and writes the full
// trace to trace_sample.jsonl (versioned JSONL, schema in
// src/obs/json_writer.h).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/top_conflicts
#include <cstdio>

#include "src/core/experiment.h"
#include "src/fabric/fabric_network.h"
#include "src/obs/json_writer.h"
#include "src/workload/paper_workloads.h"

int main() {
  using namespace fabricsim;

  // Hot-key workload: genChain updates over a small key space with
  // strong Zipf skew, so a handful of keys carry most of the conflict
  // load. Built fluently; Tracing() switches the observer on.
  ExperimentConfig config = ExperimentConfig::Builder()
                                .Cluster(ClusterConfig::C2())
                                .Chaincode("genchain")
                                .Mix(WorkloadMix::kUpdateHeavy)
                                .ZipfSkew(1.5)
                                .RateTps(100)
                                .BlockSize(100)
                                .Duration(30 * kSecond)
                                .Tracing()
                                .Build();
  config.workload.genchain_initial_keys = 2000;

  std::printf("top conflicting keys\n====================\n");
  std::printf("config: %s\n\n", config.Describe().c_str());

  // Drive one network directly (instead of RunOnce) so the tracer is
  // still alive for the queries below.
  Result<std::shared_ptr<Chaincode>> chaincode =
      MakeChaincodeFor(config.workload);
  if (!chaincode.ok()) {
    std::fprintf(stderr, "chaincode: %s\n",
                 chaincode.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<WorkloadGenerator>> workload =
      MakeWorkload(config.workload, /*rich_queries=*/true);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  Environment env(config.base_seed);
  FabricNetwork network(config.fabric, &env, chaincode.value(),
                        std::shared_ptr<WorkloadGenerator>(
                            std::move(workload).value()));
  Status st = network.Init();
  if (!st.ok()) {
    std::fprintf(stderr, "init: %s\n", st.ToString().c_str());
    return 1;
  }
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();

  const Tracer* tracer = network.tracer();
  if (tracer == nullptr) {
    std::fprintf(stderr, "tracer missing despite config.fabric.tracing\n");
    return 1;
  }

  // --- per-phase latency breakdown -----------------------------------
  const PhaseSketches& phases = tracer->phases();
  std::printf("phase latency over %llu ledger txs (ms):\n",
              static_cast<unsigned long long>(phases.total.count()));
  std::printf("  %-10s avg %8.1f  p99 %8.1f\n", "endorse",
              phases.endorse.mean(), phases.endorse.Percentile(0.99));
  std::printf("  %-10s avg %8.1f  p99 %8.1f\n", "ordering",
              phases.ordering.mean(), phases.ordering.Percentile(0.99));
  std::printf("  %-10s avg %8.1f  p99 %8.1f\n", "commit",
              phases.commit.mean(), phases.commit.Percentile(0.99));
  std::printf("  %-10s avg %8.1f  p99 %8.1f\n\n", "total",
              phases.total.mean(), phases.total.Percentile(0.99));

  // --- failure classes ------------------------------------------------
  std::printf("failure classes:\n");
  for (const auto& [code, count] : tracer->failure_counts()) {
    std::printf("  %-28s %8llu\n", TxValidationCodeToString(code),
                static_cast<unsigned long long>(count));
  }

  // --- the hot keys ---------------------------------------------------
  std::printf("\ntop conflicting keys (MVCC + phantom attributions):\n");
  for (const auto& [key, count] : tracer->TopConflictingKeys(10)) {
    std::printf("  %-24s %8llu conflicts\n", key.c_str(),
                static_cast<unsigned long long>(count));
  }

  // --- why did my transaction fail? ----------------------------------
  // Walk the traces for the first MVCC conflict and narrate its
  // lifecycle end to end.
  for (const TxTrace* trace : tracer->SortedTraces()) {
    if (trace->failure == nullptr ||
        trace->failure->conflicting_key.empty()) {
      continue;
    }
    const FailureAttribution& why = *trace->failure;
    std::printf("\nwhy did tx %llu fail?\n",
                static_cast<unsigned long long>(trace->id));
    std::printf("  function     %s\n", trace->function.c_str());
    std::printf("  endorsed by  %zu peers in %.1f ms\n",
                trace->endorsers.size(), ToMillis(trace->EndorsePhase()));
    std::printf("  ordered in   %.1f ms, cut into block %llu\n",
                ToMillis(trace->OrderingPhase()),
                static_cast<unsigned long long>(trace->block_number));
    std::printf("  verdict      %s (%s)\n",
                TxValidationCodeToString(trace->final_code),
                TraceTerminalToString(trace->terminal));
    std::printf("  conflict on  \"%s\"\n", why.conflicting_key.c_str());
    if (why.read_found) {
      std::printf("  endorser read version (block %llu, tx %llu)\n",
                  static_cast<unsigned long long>(why.read_version.block_num),
                  static_cast<unsigned long long>(why.read_version.tx_num));
    } else {
      std::printf("  endorser read: key absent\n");
    }
    if (why.observed_found) {
      std::printf(
          "  validator saw version (block %llu, tx %llu) -> the "
          "invalidating write\n",
          static_cast<unsigned long long>(why.observed_version.block_num),
          static_cast<unsigned long long>(why.observed_version.tx_num));
    }
    break;
  }

  // --- export ---------------------------------------------------------
  std::string jsonl = tracer->ExportJsonl(config.Describe());
  std::FILE* f = std::fopen("trace_sample.jsonl", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write trace_sample.jsonl\n");
    return 1;
  }
  std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  std::fclose(f);
  std::printf("\nwrote %zu traced txs to trace_sample.jsonl "
              "(schema_version %d)\n",
              tracer->size(), kObsSchemaVersion);
  return 0;
}
