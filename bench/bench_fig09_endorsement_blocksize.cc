// Figure 9: endorsement policy failures at different block sizes
// (EHR, 100 tps, C2).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 9 - endorsement policy failures vs block size (EHR, C2)",
         "endorsement failures stem from transient world-state "
         "inconsistency between peers, so block size has no significant "
         "impact (flat ~1-2% line)");

  std::printf("%10s %16s\n", "block size", "endorsement%");
  for (uint32_t bs : {10u, 25u, 50u, 100u, 200u}) {
    ExperimentConfig config = BaseC2(100);
    config.fabric.block_size = bs;
    FailureReport r = MustRun(config);
    std::printf("%10u %16.2f\n", bs, r.endorsement_pct);
    std::fflush(stdout);
  }
  return 0;
}
