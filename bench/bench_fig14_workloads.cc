// Figure 14: effect of the transaction mix on failures (genChain, C2).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 14 - workload mixes (genChain, C2)",
         "insert-/delete-heavy access unique keys -> least failures; "
         "update-heavy fails most; read-/range-heavy sit in between");

  std::printf("%-14s %12s %12s %12s %12s\n", "workload", "total%", "mvcc%",
              "phantom%", "endorse%");
  for (WorkloadMix mix :
       {WorkloadMix::kReadHeavy, WorkloadMix::kInsertHeavy,
        WorkloadMix::kUpdateHeavy, WorkloadMix::kDeleteHeavy,
        WorkloadMix::kRangeHeavy}) {
    ExperimentConfig config = BaseC2(100);
    config.workload.chaincode = "genchain";
    config.workload.mix = mix;
    FailureReport r = MustRun(config);
    std::printf("%-14s %12.2f %12.2f %12.2f %12.2f\n",
                WorkloadMixToString(mix), r.total_failure_pct, r.mvcc_pct,
                r.phantom_pct, r.endorsement_pct);
    std::fflush(stdout);
  }
  return 0;
}
