// TPC-C on Fabric (Klenik & Kocsis, arXiv:2112.11277): sweep
// warehouse count x block size and attribute every MVCC/phantom abort
// to its TPC-C entity. The port's headline, reproduced here as an exit
// gate: conflicts concentrate on the per-district order-sequence row
// (d_next_o_id lives in the DISTRICT doc), and the MVCC failure share
// rises with block size (larger blocks = wider in-flight conflict
// window). Writes BENCH_tpcc.json with one row per (warehouses, block
// size, seed) plus per-entity attribution metrics.
//
//   FABRICSIM_SMOKE=1  CI-sized run (one warehouse point, short load)
//   FABRICSIM_FULL=1   paper-scale 180 s x 3 repetitions
//   FABRICSIM_JOBS=N   worker threads for the (point, seed) fan-out
//
// Exits 1 if the hottest conflicting key at the hotspot point (fewest
// warehouses, largest block) is not a DISTRICT row.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/chaincode/tpcc/tpcc_schema.h"
#include "src/common/strings.h"
#include "src/fabric/fabric_network.h"
#include "src/workload/paper_workloads.h"

using namespace fabricsim;
using namespace fabricsim::bench;

namespace {

// Per-entity conflict attribution from one traced run. RunExperiment
// tears its networks down before returning, so the attribution pass
// drives a single network directly (the top_conflicts example pattern)
// and folds the tracer's per-key counts through the schema's
// key->table classifier.
struct Attribution {
  std::map<std::string, uint64_t> per_table;
  std::string top_table;
  std::string top_key;
  uint64_t top_count = 0;
  uint64_t total = 0;
};

Attribution TracedAttribution(ExperimentConfig config) {
  config.fabric.tracing = true;
  Result<std::shared_ptr<Chaincode>> chaincode =
      MakeChaincodeFor(config.workload);
  Result<std::unique_ptr<WorkloadGenerator>> workload =
      MakeWorkload(config.workload, /*rich_queries=*/true);
  if (!chaincode.ok() || !workload.ok()) {
    std::fprintf(stderr, "traced run setup failed: %s\n",
                 (!chaincode.ok() ? chaincode.status() : workload.status())
                     .ToString()
                     .c_str());
    std::exit(1);
  }
  Environment env(config.base_seed);
  FabricNetwork network(config.fabric, &env, chaincode.value(),
                        std::shared_ptr<WorkloadGenerator>(
                            std::move(workload).value()));
  Status st = network.Init();
  if (!st.ok()) {
    std::fprintf(stderr, "init: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();

  Attribution out;
  for (const auto& [key, count] : network.tracer()->TopConflictingKeys(256)) {
    std::string table = tpcc::TableForKey(key);
    if (table.empty()) table = "(other)";
    out.per_table[table] += count;
    out.total += count;
    if (count > out.top_count) {
      out.top_count = count;
      out.top_key = key;
      out.top_table = table;
    }
  }
  return out;
}

double TableShare(const Attribution& a, const std::string& table) {
  if (a.total == 0) return 0;
  auto it = a.per_table.find(table);
  return it == a.per_table.end()
             ? 0
             : 100.0 * static_cast<double>(it->second) /
                   static_cast<double>(a.total);
}

}  // namespace

int main() {
  Header("TPC-C - MVCC aborts vs warehouses x block size (150 tps)",
         "aborts concentrate on the per-district d_next_o_id row; the "
         "MVCC share rises with block size and falls as warehouses "
         "spread the 45/43 NewOrder/Payment mix over more districts");

  const bool smoke = std::getenv("FABRICSIM_SMOKE") != nullptr;
  std::vector<int> warehouse_counts = smoke ? std::vector<int>{1}
                                            : std::vector<int>{1, 2, 4};
  std::vector<uint32_t> block_sizes =
      smoke ? std::vector<uint32_t>{10, 100} : DefaultBlockSizes();

  JsonWriter writer("tpcc");
  std::printf("%11s %11s %9s %9s %9s %13s %14s\n", "warehouses",
              "block size", "mvcc%", "phantom%", "total%", "district-attr%",
              "top key table");

  // The hotspot point: fewest warehouses (hottest districts), largest
  // block (widest conflict window). Its attribution is the exit gate.
  std::string hotspot_table;
  std::string hotspot_key;
  std::vector<double> hotspot_mvcc_by_block;

  for (int warehouses : warehouse_counts) {
    ExperimentConfig base = Tuned(ExperimentConfig::Builder()
                                      .Chaincode("tpcc")
                                      .TpccWarehouses(warehouses)
                                      .RateTps(150)
                                      .Build());
    if (smoke) {
      base.duration = 10 * kSecond;
      base.repetitions = 1;
    }
    writer.Config(base);
    std::string figure = StrFormat("tpcc_W%d", warehouses);

    for (uint32_t block_size : block_sizes) {
      ExperimentConfig config = base;
      config.fabric.block_size = block_size;

      double t0 = NowMs();
      FailureReport report = MustRun(config);
      Attribution attr = TracedAttribution(config);
      double wall = NowMs() - t0;

      double district_share = TableShare(attr, tpcc::kDistrictTable);
      std::printf("%11d %11u %9.2f %9.2f %9.2f %13.2f %14s\n", warehouses,
                  block_size, report.mvcc_pct, report.phantom_pct,
                  report.total_failure_pct, district_share,
                  attr.top_table.empty() ? "(none)" : attr.top_table.c_str());

      writer.Row(figure, block_size, config.base_seed, wall,
                 report.total_failure_pct);
      writer.RowMetric(figure + "_mvcc", block_size, config.base_seed, wall,
                       "mvcc_pct", report.mvcc_pct);
      writer.RowMetric(figure + "_district_share", block_size,
                       config.base_seed, wall, "district_attr_pct",
                       district_share);
      for (const auto& [table, count] : attr.per_table) {
        writer.RowMetric(figure + "_attr_" + table, block_size,
                         config.base_seed, wall, "conflicts",
                         static_cast<double>(count));
      }

      if (warehouses == warehouse_counts.front()) {
        hotspot_mvcc_by_block.push_back(report.mvcc_pct);
        if (block_size == block_sizes.back()) {
          hotspot_table = attr.top_table;
          hotspot_key = attr.top_key;
        }
      }
    }
  }
  writer.Flush();

  std::printf("\nhotspot (W=%d, block=%u): top conflicting key is a %s row\n",
              warehouse_counts.front(), block_sizes.back(),
              hotspot_table.empty() ? "(none)" : hotspot_table.c_str());
  if (hotspot_mvcc_by_block.size() >= 2 &&
      hotspot_mvcc_by_block.back() > hotspot_mvcc_by_block.front()) {
    std::printf("mvcc share rises with block size at W=%d: %.2f%% -> %.2f%%\n",
                warehouse_counts.front(), hotspot_mvcc_by_block.front(),
                hotspot_mvcc_by_block.back());
  }
  if (hotspot_table != tpcc::kDistrictTable) {
    std::fprintf(stderr,
                 "FAIL: expected the district order-sequence row to "
                 "dominate conflicts at the hotspot; top key \"%s\" is a "
                 "%s row\n",
                 hotspot_key.c_str(),
                 hotspot_table.empty() ? "(none)" : hotspot_table.c_str());
    return 1;
  }
  std::printf("wrote BENCH_tpcc.json\n");
  return 0;
}
