// State-backend microbench (Halo-style): sweeps key counts across all
// StateBackend implementations, measuring per-op cost of the hot
// point paths (Get / GetVersion / ApplyWrite), ordered scans, the
// YCSB A–F op mixes, and resident bytes per key. Writes
// BENCH_statedb.json.
//
// Knobs:
//   FABRICSIM_SMOKE=1  tiny key space (CI smoke; seconds)
//   FABRICSIM_FULL=1   adds the 10^7-key points (several minutes)
// Default sweeps 10^5 and 10^6 keys.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#endif

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/statedb/state_backend.h"
#include "src/workload/ycsb.h"

using namespace fabricsim;
using namespace fabricsim::bench;

namespace {

// Resident set size in bytes (Linux /proc/self/statm); 0 elsewhere.
size_t ResidentBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total = 0, resident = 0;
  int got = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<size_t>(resident) * 4096;
}

void TrimHeap() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

struct OpResult {
  double ns_per_op = 0;
  uint64_t checksum = 0;
};

uint64_t Fold(uint64_t h, uint64_t x) { return (h ^ x) * 1099511628211ull; }

// Zipfian probe keys, materialized OUTSIDE the timed loops: key
// formatting and zipf sampling (a pow() per draw) would otherwise
// dominate and flatten the gap between backends. The same sequence is
// replayed against every backend.
std::vector<std::string> MakeProbeKeys(uint64_t keys, uint64_t ops) {
  Rng rng(42, 99);
  ZipfianGenerator zipf(keys, 0.99);
  std::vector<std::string> probes;
  probes.reserve(ops);
  for (uint64_t i = 0; i < ops; ++i) {
    probes.push_back(YcsbDriver::Key(zipf.Next(rng)));
  }
  return probes;
}

// Times one op per probe key; the loop body is only the store call.
template <typename Fn>
OpResult TimeOps(const std::vector<std::string>& probes, Fn&& op) {
  OpResult out;
  double t0 = NowMs();
  for (size_t i = 0; i < probes.size(); ++i) {
    out.checksum = Fold(out.checksum, op(probes[i], i));
  }
  out.ns_per_op =
      (NowMs() - t0) * 1e6 / static_cast<double>(probes.size());
  return out;
}

struct BackendNumbers {
  double load_ns = 0;
  double get_ns = 0;
  double getversion_ns = 0;
  double update_ns = 0;
  double range100_ns = 0;  // per 100-key scan
  double bytes_per_key = 0;
  uint64_t point_checksum = 0;
};

}  // namespace

int main() {
  Header("State backends — per-op cost and memory, 10^5..10^7 keys",
         "open-addressing hash serves point ops in O(1) (>=5x vs the "
         "ordered map at 10^6 keys); the B+-tree keeps ranges fast; all "
         "backends return bit-identical results");

  const bool smoke = std::getenv("FABRICSIM_SMOKE") != nullptr;
  const bool full = std::getenv("FABRICSIM_FULL") != nullptr;
  std::vector<uint64_t> key_counts;
  if (smoke) {
    key_counts = {10000};
  } else {
    key_counts = {100000, 1000000};
    if (full) key_counts.push_back(10000000);
  }

  JsonWriter json("statedb");
  bool checksums_agree = true;
  double map_get_1m = 0, hash_get_1m = 0;
  double map_getv_1m = 0, hash_getv_1m = 0;

  for (uint64_t keys : key_counts) {
    const uint64_t point_ops = std::min<uint64_t>(keys, 1000000);
    const uint64_t scan_ops = smoke ? 1000 : 10000;
    const uint64_t ycsb_ops = std::min<uint64_t>(keys, 500000);

    std::printf("\n--- %llu keys ---\n",
                static_cast<unsigned long long>(keys));
    std::printf("%-12s %10s %10s %12s %10s %12s %12s\n", "backend",
                "load ns", "get ns", "getver ns", "upd ns", "range100 ns",
                "bytes/key");

    const std::vector<std::string> probes = MakeProbeKeys(keys, point_ops);
    std::vector<std::pair<std::string, std::string>> windows;
    {
      Rng rng(43, 101);
      ZipfianGenerator zipf(keys, 0.99);
      windows.reserve(scan_ops);
      for (uint64_t i = 0; i < scan_ops; ++i) {
        uint64_t start = zipf.Next(rng);
        windows.emplace_back(YcsbDriver::Key(start),
                             YcsbDriver::Key(start + 100));
      }
    }

    std::vector<BackendNumbers> numbers;
    std::vector<std::vector<uint64_t>> ycsb_checksums;
    for (StateBackendType backend : AllStateBackends()) {
      const char* name = StateBackendTypeToString(backend);
      BackendNumbers n;

      TrimHeap();
      size_t rss_before = ResidentBytes();
      std::unique_ptr<StateDatabase> db = MakeStateDb(backend);
      YcsbConfig config;
      config.record_count = keys;
      config.value_size = 100;
      YcsbDriver driver(config);
      double t0 = NowMs();
      if (!driver.Load(*db).ok()) {
        std::fprintf(stderr, "load failed for %s\n", name);
        return 1;
      }
      n.load_ns = (NowMs() - t0) * 1e6 / static_cast<double>(keys);
      // Force the hash backend's sorted index to exist before the RSS
      // sample, so memory numbers cover the worst case.
      (void)db->GetRange(YcsbDriver::Key(0), YcsbDriver::Key(1));
      n.bytes_per_key =
          static_cast<double>(ResidentBytes() - rss_before) /
          static_cast<double>(keys);

      OpResult get = TimeOps(probes, [&](const std::string& key, uint64_t) {
        std::optional<VersionedValue> vv = db->Get(key);
        return vv.has_value() ? vv->version.tx_num + 1 : 0;
      });
      n.get_ns = get.ns_per_op;
      n.point_checksum = get.checksum;

      OpResult getv = TimeOps(probes, [&](const std::string& key, uint64_t) {
        std::optional<Version> v = db->GetVersion(key);
        return v.has_value() ? v->tx_num + 1 : 0;
      });
      n.getversion_ns = getv.ns_per_op;
      n.point_checksum = Fold(n.point_checksum, getv.checksum);

      OpResult upd = TimeOps(probes, [&](const std::string& key, uint64_t i) {
        db->ApplyWrite(WriteItem{key, "v", false},
                       Version{2, static_cast<uint32_t>(i)});
        return i;
      });
      n.update_ns = upd.ns_per_op;

      OpResult range;
      {
        double r0 = NowMs();
        for (const auto& window : windows) {
          uint64_t count = 0;
          db->ForEachVersionInRange(window.first, window.second,
                                    [&count](const std::string&, Version) {
                                      ++count;
                                    });
          range.checksum = Fold(range.checksum, count);
        }
        range.ns_per_op =
            (NowMs() - r0) * 1e6 / static_cast<double>(windows.size());
      }
      n.range100_ns = range.ns_per_op;
      n.point_checksum = Fold(n.point_checksum, range.checksum);

      std::printf("%-12s %10.0f %10.0f %12.0f %10.0f %12.0f %12.0f\n", name,
                  n.load_ns, n.get_ns, n.getversion_ns, n.update_ns,
                  n.range100_ns, n.bytes_per_key);
      std::fflush(stdout);

      double point = static_cast<double>(keys);
      json.RowMetric(std::string("load/") + name, point, 0, n.load_ns,
                     "ns_per_op", n.load_ns);
      json.RowMetric(std::string("get/") + name, point, 0, n.get_ns,
                     "ns_per_op", n.get_ns);
      json.RowMetric(std::string("getversion/") + name, point, 0,
                     n.getversion_ns, "ns_per_op", n.getversion_ns);
      json.RowMetric(std::string("update/") + name, point, 0, n.update_ns,
                     "ns_per_op", n.update_ns);
      json.RowMetric(std::string("range100/") + name, point, 0, n.range100_ns,
                     "ns_per_op", n.range100_ns);
      json.RowMetric(std::string("load_rss/") + name, point, 0, 0,
                     "bytes_per_key", n.bytes_per_key);

      // YCSB A–F against the already-loaded store. Checksums must
      // agree across backends: identical op sequences over identical
      // state are the bench-level differential check.
      std::vector<uint64_t> checksums;
      for (YcsbWorkload workload :
           {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
            YcsbWorkload::kD, YcsbWorkload::kE, YcsbWorkload::kF}) {
        YcsbConfig run_config;
        run_config.workload = workload;
        run_config.record_count = keys;
        run_config.operation_count = ycsb_ops;
        run_config.value_size = 100;
        YcsbDriver run_driver(run_config);
        // Fresh store per mix so D/E inserts do not leak into the
        // next mix's key space.
        std::unique_ptr<StateDatabase> ycsb_db = MakeStateDb(backend);
        if (!run_driver.Load(*ycsb_db).ok()) return 1;
        double y0 = NowMs();
        YcsbCounts counts = run_driver.Run(*ycsb_db);
        double ns = (NowMs() - y0) * 1e6 / static_cast<double>(ycsb_ops);
        checksums.push_back(counts.checksum);
        json.RowMetric(std::string("ycsb_") +
                           YcsbWorkloadToString(workload) + "/" + name,
                       point, 0, ns, "ns_per_op", ns);
      }
      ycsb_checksums.push_back(std::move(checksums));
      numbers.push_back(n);

      db.reset();
      TrimHeap();
    }

    for (size_t b = 1; b < ycsb_checksums.size(); ++b) {
      if (ycsb_checksums[b] != ycsb_checksums[0] ||
          numbers[b].point_checksum != numbers[0].point_checksum) {
        std::fprintf(stderr,
                     "FAIL: backend %s diverged from ordered_map at %llu "
                     "keys\n",
                     StateBackendTypeToString(AllStateBackends()[b]),
                     static_cast<unsigned long long>(keys));
        checksums_agree = false;
      }
    }

    if (keys == 1000000) {
      map_get_1m = numbers[0].get_ns;
      hash_get_1m = numbers[1].get_ns;
      map_getv_1m = numbers[0].getversion_ns;
      hash_getv_1m = numbers[1].getversion_ns;
    }
  }

  if (!checksums_agree) return 1;
  if (map_get_1m > 0 && hash_get_1m > 0) {
    std::printf("\npoint ops at 10^6 keys, hash vs ordered map: "
                "Get %.1fx (%.0f -> %.0f ns), GetVersion %.1fx "
                "(%.0f -> %.0f ns)\n",
                map_get_1m / hash_get_1m, map_get_1m, hash_get_1m,
                map_getv_1m / hash_getv_1m, map_getv_1m, hash_getv_1m);
  }
  std::printf("all backends returned bit-identical results\n");
  return 0;
}
