// Retry amplification: real Fabric clients respond to silent MVCC
// failures by resubmitting the transaction (Ben Toumia et al. report
// exactly this pattern in production deployments). Each resubmission
// re-executes against the same hot keys, so under contention the
// resubmitted transactions conflict again — the failure the client
// tried to mask feeds back into the failure rate. This bench runs the
// paper's default contended workload with resubmission off and on and
// reports the amplification.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Retry amplification - MVCC resubmission off vs on",
         "resubmitting MVCC-failed transactions raises the MVCC "
         "conflict share and total load: retries amplify the very "
         "failures they try to mask");

  JsonWriter json("retry_amplification");
  std::printf("%8s %-10s %12s %10s %14s %12s %12s\n", "rate", "resubmit",
              "ledger txs", "mvcc%", "resubmissions", "latency(s)",
              "total fail%");
  for (double rate : {25.0, 50.0, 100.0}) {
    for (bool resubmit : {false, true}) {
      ExperimentConfig config = BaseC1(rate);
      if (resubmit) {
        ClientRetryPolicy retry;
        retry.resubmit_on_mvcc = true;
        retry.max_resubmits = 2;
        config = ExperimentConfig::Builder(config).Retry(retry).Build();
      }
      json.Config(config);
      double start = NowMs();
      FailureReport r = MustRun(config);
      double wall_ms = NowMs() - start;
      std::printf("%8.0f %-10s %12llu %10.2f %14llu %12.3f %12.2f\n", rate,
                  resubmit ? "on" : "off",
                  static_cast<unsigned long long>(r.ledger_txs), r.mvcc_pct,
                  static_cast<unsigned long long>(r.resubmissions),
                  r.avg_latency_s, r.total_failure_pct);
      std::fflush(stdout);
      json.Row(resubmit ? "resubmit" : "baseline", rate, config.base_seed,
               wall_ms, r.mvcc_pct);
    }
  }
  return 0;
}
