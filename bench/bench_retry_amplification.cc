// Retry amplification: real Fabric clients respond to silent MVCC
// failures by resubmitting the transaction (Ben Toumia et al. report
// exactly this pattern in production deployments). Each resubmission
// re-executes against the same hot keys, so under contention the
// resubmitted transactions conflict again — the failure the client
// tried to mask feeds back into the failure rate. This bench runs the
// paper's default contended workload with resubmission off and on and
// reports the amplification, plus a third column with the overload
// protections layered on top of resubmission (retry budget + circuit
// breaker): the budget caps how much extra load retries may add, so
// the amplification stops compounding.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Retry amplification - MVCC resubmission off vs on vs protected",
         "resubmitting MVCC-failed transactions raises the MVCC "
         "conflict share and total load: retries amplify the very "
         "failures they try to mask; a retry budget bounds the "
         "amplification");

  JsonWriter json("retry_amplification");
  std::printf("%8s %-10s %12s %10s %14s %16s %12s %12s\n", "rate", "mode",
              "ledger txs", "mvcc%", "resubmissions", "budget denials",
              "latency(s)", "total fail%");
  for (double rate : {25.0, 50.0, 100.0}) {
    // baseline: no resubmission; resubmit: unbounded (policy-capped)
    // resubmission; protected: resubmission + retry budget + breaker.
    for (const char* mode : {"baseline", "resubmit", "protected"}) {
      bool resubmit = std::string(mode) != "baseline";
      bool guarded = std::string(mode) == "protected";
      ExperimentConfig config = BaseC1(rate);
      if (resubmit) {
        ClientRetryPolicy retry;
        retry.resubmit_on_mvcc = true;
        retry.max_resubmits = 2;
        config = ExperimentConfig::Builder(config).Retry(retry).Build();
      }
      if (guarded) {
        AdmissionConfig admission;
        admission.retry_budget.enabled = true;
        admission.retry_budget.ratio = 0.1;
        admission.breaker.enabled = true;
        config = ExperimentConfig::Builder(config).Admission(admission).Build();
      }
      json.Config(config);
      double start = NowMs();
      FailureReport r = MustRun(config);
      double wall_ms = NowMs() - start;
      std::printf("%8.0f %-10s %12llu %10.2f %14llu %16llu %12.3f %12.2f\n",
                  rate, mode, static_cast<unsigned long long>(r.ledger_txs),
                  r.mvcc_pct, static_cast<unsigned long long>(r.resubmissions),
                  static_cast<unsigned long long>(r.retry_budget_denials),
                  r.avg_latency_s, r.total_failure_pct);
      std::fflush(stdout);
      json.Row(mode, rate, config.base_seed, wall_ms, r.mvcc_pct);
    }
  }
  return 0;
}
