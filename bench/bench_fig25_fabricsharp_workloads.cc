// Figure 25: FabricSharp vs Fabric 1.4 across genChain workloads and
// skews (C2). Range-heavy is omitted: FabricSharp does not support
// range queries (paper §5.4.3).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 25 - FabricSharp across workloads & skew (genChain, C2)",
         "big win on update-heavy (conflicts become pre-ordering aborts); "
         "no benefit on insert-/delete-heavy (unique keys, nothing to "
         "serialize, pure overhead); no range-heavy (unsupported)");

  std::printf("%-16s %-12s %14s %14s %14s\n", "workload", "variant",
              "on-chain fail%", "early-abort%", "tput(tps)");
  std::vector<std::pair<WorkloadMix, double>> cases = {
      {WorkloadMix::kReadHeavy, 1.0},   {WorkloadMix::kInsertHeavy, 1.0},
      {WorkloadMix::kUpdateHeavy, 1.0}, {WorkloadMix::kDeleteHeavy, 1.0},
      {WorkloadMix::kUpdateHeavy, 0.0}, {WorkloadMix::kUpdateHeavy, 2.0}};
  for (const auto& [mix, skew] : cases) {
    for (FabricVariant variant :
         {FabricVariant::kFabric14, FabricVariant::kFabricSharp}) {
      ExperimentConfig config = BaseC2(100);
      config.workload.chaincode = "genchain";
      config.workload.mix = mix;
      config.workload.zipf_skew = skew;
      config.workload.genchain_initial_keys = 5000;
      config.workload.include_range_reads = false;
      config.fabric.variant = variant;
      FailureReport r = MustRun(config);
      std::printf("%-12s s=%.0f %-12s %14.2f %14.2f %14.1f\n",
                  WorkloadMixToString(mix), skew,
                  FabricVariantToString(variant), r.total_failure_pct,
                  r.early_abort_pct, r.committed_throughput_tps);
      std::fflush(stdout);
    }
  }
  return 0;
}
