// Figure 19: Fabric++ vs Fabric 1.4 across genChain workloads and key
// skews (C2).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 19 - Fabric++ across workloads & skew (genChain, C2)",
         "Fabric++ reduces failures for update-heavy (reorderable) and "
         "range-heavy-with-small-ranges workloads, but gains nothing on "
         "read-/delete-heavy (no reordering potential, pure overhead)");

  std::printf("%-16s %-12s %14s %12s\n", "workload", "variant",
              "on-chain fail%", "latency(s)");
  std::vector<std::pair<WorkloadMix, double>> cases = {
      {WorkloadMix::kReadHeavy, 1.0},   {WorkloadMix::kInsertHeavy, 1.0},
      {WorkloadMix::kUpdateHeavy, 1.0}, {WorkloadMix::kDeleteHeavy, 1.0},
      {WorkloadMix::kRangeHeavy, 1.0},  {WorkloadMix::kUpdateHeavy, 0.0},
      {WorkloadMix::kUpdateHeavy, 2.0}};
  for (const auto& [mix, skew] : cases) {
    for (FabricVariant variant :
         {FabricVariant::kFabric14, FabricVariant::kFabricPlusPlus}) {
      ExperimentConfig config = BaseC2(100);
      config.workload.chaincode = "genchain";
      config.workload.mix = mix;
      config.workload.zipf_skew = skew;
      config.workload.genchain_initial_keys = 5000;
      config.fabric.variant = variant;
      FailureReport r = MustRun(config);
      std::printf("%-12s s=%.0f %-12s %14.2f %12.2f\n",
                  WorkloadMixToString(mix), skew,
                  FabricVariantToString(variant), r.total_failure_pct,
                  r.avg_latency_s);
      std::fflush(stdout);
    }
  }
  return 0;
}
