// Figure 16: Fabric 1.4 with and without a Pumba-style injected
// network delay of 100 +/- 10 ms on one organization.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 16 - injected network delay (100±10 ms on one org)",
         "the delayed organization endorses on stale state: endorsement "
         "policy failures rise sharply, MVCC conflicts and latency rise "
         "moderately");

  std::printf("%8s %-10s %12s %14s %10s %12s\n", "rate", "delay",
              "latency(s)", "endorsement%", "mvcc%", "total fail%");
  for (double rate : {25.0, 50.0, 100.0}) {
    for (bool delayed : {false, true}) {
      ExperimentConfig config = BaseC1(rate);
      if (delayed) {
        // Whole-run delay window on org 1 via the fault subsystem; this
        // is the generalized form of the legacy delayed_org knob and
        // produces bitwise-identical results (fault_test pins it).
        DelayWindow window;
        window.org = 1;
        window.extra = 100 * kMillisecond;
        window.jitter = 10 * kMillisecond;
        config.fabric.faults.Delay(window);
      }
      FailureReport r = MustRun(config);
      std::printf("%8.0f %-10s %12.3f %14.2f %10.2f %12.2f\n", rate,
                  delayed ? "100±10ms" : "none", r.avg_latency_s,
                  r.endorsement_pct, r.mvcc_pct, r.total_failure_pct);
      std::fflush(stdout);
    }
  }
  return 0;
}
