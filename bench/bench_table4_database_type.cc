// Table 4: effect of database type with the genChain workloads —
// average transaction latency, failure percentage, and the configured
// per-function-call latencies.
//
// FABRICSIM_CROSS_BACKENDS=1 re-runs every (workload, db_type) cell
// under each StateBackend and fails if any simulated number moves:
// the db_type is the charged cost model, the backend only the data
// structure, and the two must stay orthogonal.
#include "bench/bench_util.h"
#include "src/statedb/latency_profile.h"
#include "src/statedb/state_backend.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Table 4 - CouchDB vs LevelDB across genChain workloads",
         "CouchDB is slower for every workload; range-heavy collapses on "
         "CouchDB (101.63s vs 4.14s in the paper) because ranges are read "
         "at endorsement AND re-read at validation");

  std::printf("%-14s %18s %18s %16s %16s\n", "workload", "CouchDB lat(s)",
              "LevelDB lat(s)", "CouchDB fail%", "LevelDB fail%");
  for (WorkloadMix mix :
       {WorkloadMix::kReadHeavy, WorkloadMix::kInsertHeavy,
        WorkloadMix::kUpdateHeavy, WorkloadMix::kRangeHeavy,
        WorkloadMix::kDeleteHeavy}) {
    const bool cross = std::getenv("FABRICSIM_CROSS_BACKENDS") != nullptr;
    std::vector<StateBackendType> backends = {StateBackendType::kOrderedMap};
    if (cross) backends = AllStateBackends();
    double lat[2];
    double fail[2];
    int i = 0;
    for (DatabaseType db : {DatabaseType::kCouchDb, DatabaseType::kLevelDb}) {
      for (size_t b = 0; b < backends.size(); ++b) {
        ExperimentConfig config = BaseC2(100);
        config.workload.chaincode = "genchain";
        config.workload.mix = mix;
        config.fabric.db_type = db;
        config.fabric.state_backend = backends[b];
        FailureReport r = MustRun(config);
        if (b == 0) {
          lat[i] = r.avg_latency_s;
          fail[i] = r.total_failure_pct;
        } else if (r.avg_latency_s != lat[i] ||
                   r.total_failure_pct != fail[i]) {
          std::fprintf(stderr,
                       "FAIL: backend %s changed %s/%s results — the data "
                       "plane must not affect the cost model\n",
                       StateBackendTypeToString(backends[b]),
                       WorkloadMixToString(mix), DatabaseTypeToString(db));
          return 1;
        }
      }
      ++i;
    }
    std::printf("%-14s %18.2f %18.2f %16.2f %16.2f\n",
                WorkloadMixToString(mix), lat[0], lat[1], fail[0], fail[1]);
    std::fflush(stdout);
  }

  std::printf("\nfunction call latency model (ms), from the paper's "
              "measurements:\n");
  std::printf("%-14s %10s %10s\n", "call", "CouchDB", "LevelDB");
  DbLatencyProfile couch = DbLatencyProfile::CouchDb();
  DbLatencyProfile level = DbLatencyProfile::LevelDb();
  std::printf("%-14s %10.1f %10.1f\n", "GetState", ToMillis(couch.get),
              ToMillis(level.get));
  std::printf("%-14s %10.1f %10.1f\n", "PutState", ToMillis(couch.put),
              ToMillis(level.put));
  std::printf("%-14s %10.1f %10.1f\n", "GetRange (8)",
              ToMillis(couch.range_base + 8 * couch.range_per_key),
              ToMillis(level.range_base + 8 * level.range_per_key));
  std::printf("%-14s %10.1f %10.1f\n", "DeleteState", ToMillis(couch.del),
              ToMillis(level.del));
  return 0;
}
