// Figure 10: phantom read conflicts at different block sizes
// (SCM chaincode — its queryASN scans 400-800 units — 100 tps, C2).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 10 - phantom read conflicts vs block size (SCM, C2)",
         "a single range query depends on many writers within and across "
         "blocks, so phantom reads are not significantly affected by "
         "block size");

  std::printf("%10s %14s %14s\n", "block size", "phantom%", "total fail%");
  for (uint32_t bs : {10u, 25u, 50u, 100u, 200u}) {
    ExperimentConfig config = BaseC2(100);
    config.workload.chaincode = "scm";
    config.fabric.block_size = bs;
    FailureReport r = MustRun(config);
    std::printf("%10u %14.2f %14.2f\n", bs, r.phantom_pct,
                r.total_failure_pct);
    std::fflush(stdout);
  }
  return 0;
}
