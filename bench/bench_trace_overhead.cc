// Tracing overhead: the same experiment run with lifecycle tracing
// disabled and enabled. The tracer is a pure observer (it never
// schedules events or draws randomness), so the simulated results
// must be identical; recording spans on the DES hot path should cost
// under ~5% wall time. The JSONL export is a separate post-processing
// step and is timed separately.
#include <memory>
#include <utility>

#include "bench/bench_util.h"
#include "src/fabric/fabric_network.h"
#include "src/workload/paper_workloads.h"

using namespace fabricsim;
using namespace fabricsim::bench;

namespace {

struct TimedRun {
  double wall_ms = 0;
  FailureReport report;
  std::unique_ptr<Environment> env;
  std::unique_ptr<FabricNetwork> network;
};

/// Builds one network and times only env.RunAll() — the DES hot path
/// where the tracer hooks live. Config/teardown and the export stay
/// outside the measured window.
TimedRun TimedRunOnce(const ExperimentConfig& config, uint64_t seed) {
  TimedRun run;
  auto chaincode = MakeChaincodeFor(config.workload);
  bool rich = config.fabric.db_type == DatabaseType::kCouchDb;
  WorkloadConfig workload_config = config.workload;
  if (config.fabric.variant == FabricVariant::kFabricSharp) {
    workload_config.include_range_reads = false;
  }
  auto workload = MakeWorkload(workload_config, rich);
  if (!chaincode.ok() || !workload.ok()) {
    std::fprintf(stderr, "setup failed\n");
    std::exit(1);
  }
  run.env = std::make_unique<Environment>(seed);
  run.network = std::make_unique<FabricNetwork>(
      config.fabric, run.env.get(), chaincode.value(),
      std::shared_ptr<WorkloadGenerator>(std::move(workload).value()));
  if (!run.network->Init().ok()) {
    std::fprintf(stderr, "init failed\n");
    std::exit(1);
  }
  run.network->StartLoad(config.arrival_rate_tps, config.duration);
  double start = NowMs();
  run.env->RunAll();
  run.wall_ms = NowMs() - start;
  run.report = BuildFailureReport(run.network->ledger(),
                                  run.network->stats(), config.duration);
  return run;
}

}  // namespace

int main() {
  Header("Trace overhead - lifecycle tracing off vs on",
         "tracing is an observer on the DES hot path: identical "
         "simulated results, <5% wall-time recording overhead; the "
         "JSONL export is post-processing, timed separately");

  // A fixed 60 s simulated window (applied after Tuned so the quick
  // mode doesn't shrink it): the per-leg wall time needs to be large
  // enough that the few-percent tracing delta clears scheduler noise.
  ExperimentConfig off = ExperimentConfig::Builder(
                             Tuned(ExperimentConfig::Builder()
                                       .Cluster(ClusterConfig::C2())
                                       .RateTps(100)
                                       .Build()))
                             .Duration(60 * kSecond)
                             .Build();
  ExperimentConfig on = ExperimentConfig::Builder(off).Tracing().Build();

  // Warm-up run so allocator/page-cache effects don't land on the
  // first timed configuration; then alternate off/on pairs and keep
  // the fastest of each (least scheduler noise).
  TimedRunOnce(off, off.base_seed);
  double wall_off = 0, wall_on = 0;
  FailureReport report_off, report_on;
  std::string jsonl;
  double export_ms = 0;
  for (int round = 0; round < 5; ++round) {
    TimedRun a = TimedRunOnce(off, off.base_seed);
    TimedRun b = TimedRunOnce(on, on.base_seed);
    if (round == 0 || a.wall_ms < wall_off) wall_off = a.wall_ms;
    if (round == 0 || b.wall_ms < wall_on) wall_on = b.wall_ms;
    report_off = a.report;
    report_on = b.report;
    double export_start = NowMs();
    jsonl = b.network->tracer()->ExportJsonl(on.Describe());
    export_ms = NowMs() - export_start;
  }

  bool identical =
      report_off.ledger_txs == report_on.ledger_txs &&
      report_off.valid_txs == report_on.valid_txs &&
      report_off.total_failure_pct == report_on.total_failure_pct &&
      report_off.avg_latency_s == report_on.avg_latency_s &&
      report_off.committed_throughput_tps ==
          report_on.committed_throughput_tps;
  double overhead_pct =
      wall_off > 0 ? 100.0 * (wall_on - wall_off) / wall_off : 0;

  std::printf("%10s %12s %12s %12s\n", "tracing", "wall(ms)", "overhead%",
              "identical");
  std::printf("%10s %12.1f %12s %12s\n", "off", wall_off, "(ref)", "(ref)");
  std::printf("%10s %12.1f %11.2f%% %12s\n", "on", wall_on, overhead_pct,
              identical ? "yes" : "NO");
  std::printf("export: %.1f ms for %zu bytes of JSONL (post-processing, "
              "not on the DES path)\n",
              export_ms, jsonl.size());

  JsonWriter json("trace_overhead");
  json.Config(off);
  json.Row("trace_overhead", /*point=*/0, off.base_seed, wall_off,
           report_off.total_failure_pct);
  json.Row("trace_overhead", /*point=*/1, on.base_seed, wall_on,
           report_on.total_failure_pct);

  if (!identical) {
    std::fprintf(stderr,
                 "OBSERVER VIOLATION: tracing changed the simulated "
                 "results\n");
    return 1;
  }
  if (overhead_pct > 5.0) {
    std::fprintf(stderr,
                 "warning: tracing overhead %.2f%% exceeds the 5%% "
                 "target\n",
                 overhead_pct);
  }
  return 0;
}
