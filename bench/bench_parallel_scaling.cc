// Parallel experiment-runner scaling: the same 4-point x 3-repetition
// block-size sweep executed serially (FABRICSIM_JOBS=1) and with
// increasing worker counts. Checks that every report is bitwise
// identical across job counts, prints the wall-clock speedup, and
// records the trajectory in BENCH_parallel_scaling.json.
#include <thread>

#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

namespace {

bool ReportsEqual(const FailureReport& a, const FailureReport& b) {
  return a.ledger_txs == b.ledger_txs && a.valid_txs == b.valid_txs &&
         a.endorsement_failures == b.endorsement_failures &&
         a.mvcc_intra == b.mvcc_intra && a.mvcc_inter == b.mvcc_inter &&
         a.phantom == b.phantom && a.submitted_txs == b.submitted_txs &&
         a.total_failure_pct == b.total_failure_pct &&
         a.avg_latency_s == b.avg_latency_s &&
         a.committed_throughput_tps == b.committed_throughput_tps;
}

}  // namespace

int main() {
  Header("Parallel scaling - thread-pooled sweep over independent DES "
         "instances",
         "repetitions and sweep points are embarrassingly parallel (each "
         "builds a fresh network); wall time should shrink ~linearly with "
         "cores while results stay bitwise identical");

  // Fixed size regardless of FABRICSIM_FULL: the subject here is the
  // runner, not the figures. 4 points x 3 seeds = 12 independent jobs.
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 10 * kSecond;
  config.arrival_rate_tps = 100;
  config.repetitions = 3;
  const std::vector<uint32_t> sizes = {10, 25, 50, 100};

  unsigned hw = HardwareConcurrency();
  std::vector<int> job_counts = {1, 2, 4};
  if (hw > 4) job_counts.push_back(static_cast<int>(hw));
  if (SingleCoreHost()) {
    std::printf("note: single-core host — determinism is still checked, "
                "but no wall-clock speedup is expected\n");
  }

  JsonWriter json("parallel_scaling");
  json.Config(config);
  std::printf("%8s %12s %10s %10s\n", "jobs", "wall(ms)", "speedup",
              "identical");

  double serial_ms = 0;
  std::vector<SweepPoint> reference;
  for (int jobs : job_counts) {
    SetParallelJobs(jobs);
    double start = NowMs();
    Result<std::vector<SweepPoint>> points =
        RunSweep(config, BlockSizeSweepSpec(sizes));
    double wall = NowMs() - start;
    if (!points.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   points.status().ToString().c_str());
      return 1;
    }
    bool identical = true;
    if (jobs == 1) {
      serial_ms = wall;
      reference = points.value();
    } else {
      for (size_t i = 0; i < sizes.size(); ++i) {
        identical &=
            ReportsEqual(reference[i].report, points.value()[i].report);
      }
    }
    if (!identical) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION at %d jobs: parallel sweep "
                   "diverged from the serial run\n",
                   jobs);
      return 1;
    }
    double speedup = wall > 0 ? serial_ms / wall : 0;
    std::printf("%8d %12.1f %9.2fx %10s\n", jobs, wall, speedup,
                jobs == 1 ? "(ref)" : "yes");
    std::fflush(stdout);
    json.Row("parallel_scaling", jobs, config.base_seed, wall,
             reference.empty() ? 0 : reference[0].report.total_failure_pct);
  }
  // Restore the env-driven default for anything run after us.
  ParallelJobsFromEnv();
  std::printf("hardware_concurrency: %u\n", hw);
  return 0;
}
