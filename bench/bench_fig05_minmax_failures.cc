// Figure 5: minimum and maximum percentage of failed transactions
// (at the best and worst block size) per chaincode on the C2 cluster.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 5 - min/max transaction failures at best/worst block size "
         "(C2)",
         "up to ~60% fewer failures at the best block size vs the worst "
         "(e.g. DRM@50tps: 21.14%% worst vs 8.07%% best); DV fails most "
         "(large range queries)");

  const std::vector<uint32_t> sizes = {10, 25, 50, 100, 200};
  std::printf("%-10s %8s %10s %10s %10s %10s\n", "chaincode", "rate",
              "best bs", "min fail%", "worst bs", "max fail%");
  for (const char* chaincode : {"ehr", "dv", "scm", "drm"}) {
    for (double rate : {50.0, 100.0}) {
      ExperimentConfig config = BaseC2(rate);
      config.workload.chaincode = chaincode;
      config.repetitions = 1;
      Result<BlockSizeSearch> search = FindBestBlockSize(config, sizes);
      if (!search.ok()) {
        std::fprintf(stderr, "%s\n", search.status().ToString().c_str());
        return 1;
      }
      const BlockSizeSearch& s = search.value();
      std::printf("%-10s %8.0f %10u %10.2f %10u %10.2f\n", chaincode, rate,
                  s.best_block_size, s.min_failure_pct, s.worst_block_size,
                  s.max_failure_pct);
      std::fflush(stdout);
    }
  }
  return 0;
}
