// Figure 21: committed transaction throughput of Streamchain vs
// Fabric 1.4 at higher arrival rates (150/200 tps on C1, 100 tps on
// C2) — where Streamchain's per-transaction overhead saturates it.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 21 - Streamchain throughput at high load",
         "beyond ~150 tps on C1 (and already at 100 tps on the larger C2 "
         "with more peers to stream to) Streamchain cannot sustain the "
         "load: per-transaction ordering/delivery overhead queues up");

  std::printf("%-8s %8s %-12s %14s %12s\n", "cluster", "rate", "variant",
              "tput(tps)", "latency(s)");
  struct Case {
    const char* cluster;
    double rate;
  };
  for (const Case& c : {Case{"C1", 150}, Case{"C1", 200}, Case{"C2", 100}}) {
    for (FabricVariant variant :
         {FabricVariant::kFabric14, FabricVariant::kStreamchain}) {
      ExperimentConfig config = std::string(c.cluster) == "C1"
                                    ? BaseC1(c.rate)
                                    : BaseC2(c.rate);
      config.fabric.variant = variant;
      // Streamchain streams regardless; stock Fabric gets a sensible
      // block size for these rates (the paper observed similar results
      // with block sizes 50 and 100).
      config.fabric.block_size = 50;
      FailureReport r = MustRun(config);
      std::printf("%-8s %8.0f %-12s %14.1f %12.3f\n", c.cluster, c.rate,
                  FabricVariantToString(variant), r.committed_throughput_tps,
                  r.avg_latency_s);
      std::fflush(stdout);
    }
  }
  return 0;
}
