// Figure 22: Streamchain vs Fabric 1.4 across genChain workloads and
// key skews at 50 tps on C2.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 22 - Streamchain across workloads & skew (50 tps, C2)",
         "streaming is workload-agnostic: failures drop for every mix and "
         "every skew (unlike the reordering-based variants)");

  std::printf("%-16s %-12s %12s %12s\n", "workload", "variant", "total%",
              "latency(s)");
  std::vector<std::pair<WorkloadMix, double>> cases = {
      {WorkloadMix::kReadHeavy, 1.0},   {WorkloadMix::kInsertHeavy, 1.0},
      {WorkloadMix::kUpdateHeavy, 1.0}, {WorkloadMix::kDeleteHeavy, 1.0},
      {WorkloadMix::kRangeHeavy, 1.0},  {WorkloadMix::kUpdateHeavy, 0.0},
      {WorkloadMix::kUpdateHeavy, 2.0}};
  for (const auto& [mix, skew] : cases) {
    for (FabricVariant variant :
         {FabricVariant::kFabric14, FabricVariant::kStreamchain}) {
      ExperimentConfig config = BaseC2(50);
      config.workload.chaincode = "genchain";
      config.workload.mix = mix;
      config.workload.zipf_skew = skew;
      config.workload.genchain_initial_keys = 5000;
      config.fabric.variant = variant;
      FailureReport r = MustRun(config);
      std::printf("%-12s s=%.0f %-12s %12.2f %12.3f\n",
                  WorkloadMixToString(mix), skew,
                  FabricVariantToString(variant), r.total_failure_pct,
                  r.avg_latency_s);
      std::fflush(stdout);
    }
  }
  return 0;
}
