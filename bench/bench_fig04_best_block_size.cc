// Figure 4: best block size at different transaction arrival rates,
// for all four use-case chaincodes on the C1 and C2 clusters.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 4 - best block size vs transaction arrival rate",
         "best block size grows ~linearly with the arrival rate; the "
         "larger C2 cluster sustains larger blocks at high rates; DV "
         "responds least (range queries dominate its failures)");

  const std::vector<uint32_t> sizes = {10, 25, 50, 100, 200};
  const std::vector<double> rates = {10, 25, 50, 100, 150, 200};

  for (const char* cluster : {"C1", "C2"}) {
    std::printf("\n[%s] best block size (min-failure %%):\n", cluster);
    std::printf("%-10s", "chaincode");
    for (double rate : rates) std::printf(" %8.0ftps", rate);
    std::printf("\n");
    for (const char* chaincode : {"ehr", "dv", "scm", "drm"}) {
      std::printf("%-10s", chaincode);
      for (double rate : rates) {
        ExperimentConfig config =
            std::string(cluster) == "C1" ? BaseC1(rate) : BaseC2(rate);
        config.workload.chaincode = chaincode;
        // 480 sweep points: one seed per point and a shorter load
        // phase keep this bench quick.
        config.repetitions = 1;
        if (config.duration > 20 * kSecond) config.duration = 20 * kSecond;
        Result<BlockSizeSearch> search = FindBestBlockSize(config, sizes);
        if (!search.ok()) {
          std::fprintf(stderr, "sweep failed: %s\n",
                       search.status().ToString().c_str());
          return 1;
        }
        std::printf("   %4u bs ", search.value().best_block_size);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
