// Figure 23: Streamchain with and without its RAM-disk storage.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 23 - Streamchain with and without a RAM disk",
         "the RAM disk is a large part of Streamchain's win: without it, "
         "latency and MVCC conflicts rise, and beyond ~50 tps the "
         "streaming commits cannot keep up on normal disks");

  std::printf("%8s %-16s %12s %10s %12s\n", "rate", "storage", "latency(s)",
              "mvcc%", "tput(tps)");
  for (double rate : {10.0, 25.0, 50.0}) {
    for (bool ram_disk : {true, false}) {
      ExperimentConfig config = BaseC1(rate);
      config.fabric.variant = FabricVariant::kStreamchain;
      config.fabric.streamchain_ram_disk = ram_disk;
      FailureReport r = MustRun(config);
      std::printf("%8.0f %-16s %12.3f %10.2f %12.1f\n", rate,
                  ram_disk ? "RAM disk" : "disk", r.avg_latency_s,
                  r.mvcc_pct, r.committed_throughput_tps);
      std::fflush(stdout);
    }
  }
  return 0;
}
