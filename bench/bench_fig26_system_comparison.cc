// Figure 26: all four Fabric-like systems compared on the EHR
// chaincode, C1 cluster, at 10/50/100 tps.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 26 - comparison of Fabric systems (EHR, C1)",
         "all three optimizations beat Fabric 1.4 on failures; none "
         "resolves endorsement policy failures; Streamchain has the "
         "lowest latency (RAM disk); FabricSharp reduces failures most "
         "but sacrifices committed throughput");

  std::printf("%8s %-12s %12s %14s %14s %10s %12s\n", "rate", "variant",
              "latency(s)", "on-chain fail%", "endorsement%", "mvcc%",
              "tput(tps)");
  for (double rate : {10.0, 50.0, 100.0}) {
    for (FabricVariant variant :
         {FabricVariant::kFabric14, FabricVariant::kFabricPlusPlus,
          FabricVariant::kStreamchain, FabricVariant::kFabricSharp}) {
      ExperimentConfig config = BaseC1(rate);
      config.fabric.variant = variant;
      config.fabric.block_size = 10;
      FailureReport r = MustRun(config);
      std::printf("%8.0f %-12s %12.3f %14.2f %14.2f %10.2f %12.1f\n", rate,
                  FabricVariantToString(variant), r.avg_latency_s,
                  r.total_failure_pct, r.endorsement_pct, r.mvcc_pct,
                  r.committed_throughput_tps);
      std::fflush(stdout);
    }
  }
  return 0;
}
