// Figure 17: Fabric++ vs Fabric 1.4 — (a) failures at different block
// sizes, (b) endorsement policy failures.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 17 - Fabric++ vs Fabric 1.4 across block sizes (EHR, C2)",
         "(a) Fabric 1.4 on-chain failures increase with block size; "
         "Fabric++ failures decrease (larger blocks = more reordering "
         "opportunities; cycle members abort in the ordering phase). "
         "(b) Fabric++ shows MORE endorsement failures: fewer MVCC "
         "aborts -> faster world-state churn -> more replica skew");

  std::printf("%-12s %10s %14s %14s %16s %14s\n", "variant", "block size",
              "on-chain fail%", "mvcc%", "reorder-abort%", "endorsement%");
  for (FabricVariant variant :
       {FabricVariant::kFabric14, FabricVariant::kFabricPlusPlus}) {
    for (uint32_t bs : {25u, 50u, 100u, 200u}) {
      ExperimentConfig config = BaseC2(100);
      config.fabric.variant = variant;
      config.fabric.block_size = bs;
      FailureReport r = MustRun(config);
      std::printf("%-12s %10u %14.2f %14.2f %16.2f %14.2f\n",
                  FabricVariantToString(variant), bs, r.total_failure_pct,
                  r.mvcc_pct, r.reorder_abort_pct, r.endorsement_pct);
      std::fflush(stdout);
    }
  }
  return 0;
}
