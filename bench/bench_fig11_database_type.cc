// Figure 11: effect of the state database (CouchDB vs LevelDB) on
// latency and failures (EHR, uniform workload).
//
// FABRICSIM_CROSS_BACKENDS=1 additionally crosses each latency
// profile with every StateBackend. The db_type is a *cost model*
// (what the simulation charges per call) while the backend is the
// *data structure* actually serving the calls — so the simulated
// columns must be identical across backends for a given db_type and
// only the host wall clock may differ.
#include "bench/bench_util.h"
#include "src/statedb/state_backend.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 11 - CouchDB vs LevelDB (EHR, uniform workload)",
         "LevelDB (embedded) beats CouchDB (external REST) on latency, "
         "endorsement failures and MVCC conflicts");

  const bool cross = std::getenv("FABRICSIM_CROSS_BACKENDS") != nullptr;
  std::vector<StateBackendType> backends = {StateBackendType::kOrderedMap};
  if (cross) backends = AllStateBackends();

  std::printf("%-10s %-12s %12s %14s %14s %14s %10s\n", "database", "backend",
              "latency(s)", "endorsement%", "inter mvcc%", "intra mvcc%",
              "wall(ms)");
  for (DatabaseType db : {DatabaseType::kCouchDb, DatabaseType::kLevelDb}) {
    FailureReport baseline;
    for (size_t b = 0; b < backends.size(); ++b) {
      ExperimentConfig config = BaseC2(100);
      config.fabric.db_type = db;
      config.fabric.state_backend = backends[b];
      double t0 = NowMs();
      FailureReport r = MustRun(config);
      double wall = NowMs() - t0;
      std::printf("%-10s %-12s %12.3f %14.2f %14.2f %14.2f %10.0f\n",
                  DatabaseTypeToString(db),
                  StateBackendTypeToString(backends[b]), r.avg_latency_s,
                  r.endorsement_pct, r.mvcc_inter_pct, r.mvcc_intra_pct, wall);
      std::fflush(stdout);
      if (b == 0) {
        baseline = r;
      } else if (r.avg_latency_s != baseline.avg_latency_s ||
                 r.total_failure_pct != baseline.total_failure_pct ||
                 r.mvcc_inter != baseline.mvcc_inter ||
                 r.mvcc_intra != baseline.mvcc_intra ||
                 r.endorsement_failures != baseline.endorsement_failures) {
        std::fprintf(stderr,
                     "FAIL: backend %s changed the simulated results — the "
                     "data plane must not affect the cost model\n",
                     StateBackendTypeToString(backends[b]));
        return 1;
      }
    }
  }
  if (cross) {
    std::printf("\nsimulated results identical across all backends per "
                "database type (only wall clock differs)\n");
  }
  return 0;
}
