// Figure 11: effect of the state database (CouchDB vs LevelDB) on
// latency and failures (EHR, uniform workload).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 11 - CouchDB vs LevelDB (EHR, uniform workload)",
         "LevelDB (embedded) beats CouchDB (external REST) on latency, "
         "endorsement failures and MVCC conflicts");

  std::printf("%-10s %12s %14s %14s %14s\n", "database", "latency(s)",
              "endorsement%", "inter mvcc%", "intra mvcc%");
  for (DatabaseType db : {DatabaseType::kCouchDb, DatabaseType::kLevelDb}) {
    ExperimentConfig config = BaseC2(100);
    config.fabric.db_type = db;
    FailureReport r = MustRun(config);
    std::printf("%-10s %12.3f %14.2f %14.2f %14.2f\n",
                DatabaseTypeToString(db), r.avg_latency_s, r.endorsement_pct,
                r.mvcc_inter_pct, r.mvcc_intra_pct);
    std::fflush(stdout);
  }
  return 0;
}
