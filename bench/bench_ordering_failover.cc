// Ordering-service failover: a Raft-style replicated ordering group
// loses its leader mid-run and the service becomes unavailable until a
// new leader wins an election and resumes cutting from the replicated
// log. The unavailability window is dominated by the election timeout
// once client-side detection is tight, so sweeping the timeout down
// must shrink the largest inter-block gap — the availability knob real
// Fabric operators tune on etcdraft. Every point also re-audits the
// chain-integrity invariants (RunExperiment fails the run otherwise).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Ordering failover - election timeout vs unavailability window",
         "leader crash halts block cutting for ~one election; lower "
         "election timeouts shrink the largest inter-block gap");

  JsonWriter json("ordering_failover");
  std::printf("%14s %12s %10s %14s %14s %12s\n", "elect(ms)", "gap(s)",
              "elections", "leader moves", "rebroadcasts", "ledger txs");

  double previous_gap = -1;
  bool monotone = true;
  for (double timeout_ms : {2000.0, 1000.0, 500.0, 250.0}) {
    ExperimentConfig config = Tuned(ExperimentConfig::Defaults());
    config.arrival_rate_tps = 50;
    config.fabric.ordering.replicated = true;
    config.fabric.ordering.election_timeout_min =
        static_cast<SimTime>(timeout_ms) * kMillisecond;
    config.fabric.ordering.election_timeout_max =
        2 * config.fabric.ordering.election_timeout_min;
    // Tight client-side detection so the election term dominates the
    // unavailability window instead of the ack timeout (mirrors the
    // determinism test in tests/raft_test.cc).
    config.fabric.block_timeout = 250 * kMillisecond;
    config.fabric.ordering.client_ack_timeout = 1 * kSecond;
    config.fabric.faults.CrashLeader(10 * kSecond);
    json.Config(config);

    double start = NowMs();
    FailureReport r = MustRun(config);
    double wall_ms = NowMs() - start;
    std::printf("%14.0f %12.3f %10llu %14llu %14llu %12llu\n", timeout_ms,
                r.max_interblock_gap_s,
                static_cast<unsigned long long>(r.orderer_elections),
                static_cast<unsigned long long>(r.orderer_leader_changes),
                static_cast<unsigned long long>(r.orderer_rebroadcasts),
                static_cast<unsigned long long>(r.ledger_txs));
    std::fflush(stdout);
    json.RowMetric("failover_gap", timeout_ms, config.base_seed, wall_ms,
                   "gap_s", r.max_interblock_gap_s);
    // Once the election is faster than client-side detection the gap
    // floors at the ack timeout; a few-ms wobble there is noise, not a
    // regression.
    if (previous_gap >= 0 && r.max_interblock_gap_s > previous_gap + 0.01) {
      monotone = false;
    }
    previous_gap = r.max_interblock_gap_s;
  }
  std::printf("%s\n", monotone
                          ? "unavailability window shrinks with the election "
                            "timeout"
                          : "unavailability window did NOT shrink with the "
                            "election timeout (investigate before trusting "
                            "the sweep)");
  return 0;
}
