// Figure 8: inter-block vs intra-block MVCC read conflicts at
// different transaction arrival rates (EHR, default block size, C2).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 8 - MVCC read conflicts vs arrival rate (EHR, bs=100, C2)",
         "both inter-block and intra-block MVCC conflicts increase with "
         "the transaction arrival rate");

  std::printf("%10s %14s %14s %14s\n", "rate(tps)", "inter-block%",
              "intra-block%", "total mvcc%");
  for (double rate : {10.0, 25.0, 50.0, 100.0, 150.0}) {
    ExperimentConfig config = BaseC2(rate);
    FailureReport r = MustRun(config);
    std::printf("%10.0f %14.2f %14.2f %14.2f\n", rate, r.mvcc_inter_pct,
                r.mvcc_intra_pct, r.mvcc_pct);
    std::fflush(stdout);
  }
  return 0;
}
