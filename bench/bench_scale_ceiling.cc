// Scale ceiling: how far the simulator itself scales once client
// populations are aggregated and observability is streamed. Three
// sweeps, all on a cluster sized to actually sustain the offered
// load — 2 orgs x 24 peers (~13k tps of endorsement capacity under
// P0) and 8 channels x 8 per-peer commit workers (~19k tps of commit
// capacity; one channel's serial validate/commit path tops out near
// 2.4k tps) — with the streaming ledger + streaming tracer enabled
// and a static genChain key space (genchain_mutations = false: no
// insertKeys minting fresh keys, so state stays bounded and memory
// growth measures simulator bookkeeping, not application state).
// Undersizing either capacity would make the DES hold a growing
// backlog of in-flight transactions — real memory growth, but the
// modelled system's, not the simulator's:
//
//   1. duration sweep at fixed tps — the memory gate. Peak RSS must
//      NOT grow superlinearly in simulated duration: streaming
//      observability folds every transaction into O(1) sketches, so
//      4x the simulated time may not cost anywhere near 4x the peak
//      memory. Superlinear growth exits 1 (a regression re-introduced
//      per-transaction retention somewhere).
//   2. user sweep at fixed aggregate tps — aggregation independence.
//      One behaviour class of 10^3..10^6 users costs one arrival
//      actor; wall-clock and memory must stay flat in the user count.
//   3. the headline run (FABRICSIM_FULL=1): 10^6 users at 10^4 tps
//      for one simulated hour, single process.
//
// FABRICSIM_SMOKE=1 shrinks everything to a CI-sized smoke (seconds);
// FABRICSIM_FULL=1 runs the headline hour. Wall-clock and peak RSS
// land in BENCH_scale_ceiling.json.
#include <cstdint>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench/bench_util.h"
#include "src/workload/population/population.h"

using namespace fabricsim;
using namespace fabricsim::bench;

namespace {

/// Peak resident set of this process so far, in MiB (0 where
/// getrusage is unavailable). Linux reports ru_maxrss in KiB.
double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

/// The wide scale cluster + streaming everything. The population is a
/// single behaviour class of `users` users sharing `tps` aggregate,
/// spread uniformly over the channels.
constexpr int kChannels = 8;

ExperimentConfig ScaleConfig(uint64_t users, double tps, SimTime duration) {
  ExperimentConfig config =
      ExperimentConfig::Builder()
          .Cluster(ClusterConfig{2, 24, 3, 5})
          .Database(DatabaseType::kLevelDb)
          .Chaincode("genchain")
          .BlockSize(500)
          .Channels(kChannels)
          .Duration(duration)
          .Repetitions(1)
          .Population(PopulationConfig::SingleClass(users, tps))
          .StreamingObservability()
          .StreamingLedger()
          .Build();
  // 100k bootstrapped keys total (12.5k per channel namespace), and no
  // mutating genChain functions: the world state is identical at the
  // first and last committed block.
  config.workload.genchain_initial_keys = 100000 / kChannels;
  config.workload.genchain_mutations = false;
  config.fabric.timing.peer_commit_workers = kChannels;
  return config;
}

struct Point {
  double wall_ms = 0;
  double peak_rss_mb = 0;
  FailureReport report;
};

Point RunPoint(const ExperimentConfig& config) {
  Point point;
  double start = NowMs();
  Result<FailureReport> r = RunOnce(config, config.base_seed);
  if (!r.ok()) {
    std::fprintf(stderr, "scale point failed (%s): %s\n",
                 config.Describe().c_str(), r.status().ToString().c_str());
    std::exit(1);
  }
  point.wall_ms = NowMs() - start;
  point.peak_rss_mb = PeakRssMb();
  point.report = std::move(r).value();
  return point;
}

}  // namespace

int main() {
  ParallelJobsFromEnv();
  bool smoke = std::getenv("FABRICSIM_SMOKE") != nullptr;
  bool full = !smoke && std::getenv("FABRICSIM_FULL") != nullptr;

  Header("Scale ceiling - aggregated populations + streaming observability",
         "one arrival actor per behaviour class and O(1) sketches per "
         "metric keep wall-clock linear in transaction count and peak "
         "memory flat in both user count and simulated duration");

  JsonWriter json("scale_ceiling");

  // -- 1. duration sweep at fixed tps: the superlinear-memory gate ----
  // Runs first so the process RSS high-water mark is a faithful
  // per-point reading (getrusage peaks never come back down).
  double gate_tps = smoke ? 200 : 1000;
  SimTime base_duration = smoke ? 5 * kSecond : 30 * kSecond;
  uint64_t gate_users = 100000;
  std::printf("-- duration sweep (users=%llu, %.0f tps) --\n",
              static_cast<unsigned long long>(gate_users), gate_tps);
  std::printf("%12s %12s %14s %14s\n", "sim seconds", "wall ms",
              "peak RSS MB", "committed tps");
  double first_rss = 0, last_rss = 0;
  for (int scale : {1, 2, 4}) {
    SimTime duration = base_duration * scale;
    ExperimentConfig config = ScaleConfig(gate_users, gate_tps, duration);
    Point p = RunPoint(config);
    json.Config(config);
    double seconds = ToSeconds(duration);
    std::printf("%12.0f %12.0f %14.1f %14.1f\n", seconds, p.wall_ms,
                p.peak_rss_mb, p.report.committed_throughput_tps);
    std::fflush(stdout);
    json.RowMetric("duration_sweep_rss", seconds, config.base_seed, p.wall_ms,
                   "peak_rss_mb", p.peak_rss_mb);
    json.RowMetric("duration_sweep_tps", seconds, config.base_seed, p.wall_ms,
                   "tps", p.report.committed_throughput_tps);
    if (scale == 1) first_rss = p.peak_rss_mb;
    last_rss = p.peak_rss_mb;
  }
  // The gate: 4x simulated time must stay well under 4x peak memory.
  // Streaming keeps the real growth near zero; the 2x + 64 MiB band
  // only trips when something retains per-transaction state again.
  if (first_rss > 0 && last_rss > first_rss * 2.0 + 64.0) {
    std::fprintf(stderr,
                 "FAIL: peak RSS grew superlinearly in simulated duration "
                 "(%.1f MB at 1x -> %.1f MB at 4x) - streaming "
                 "observability is leaking per-transaction state\n",
                 first_rss, last_rss);
    json.Flush();
    return 1;
  }
  std::printf("memory gate passed: %.1f MB at 1x -> %.1f MB at 4x "
              "simulated duration\n\n", first_rss, last_rss);

  // -- 2. user sweep at fixed aggregate tps ---------------------------
  double sweep_tps = smoke ? 200 : 1000;
  SimTime sweep_duration = smoke ? 5 * kSecond : 30 * kSecond;
  std::printf("-- user sweep (%.0f tps aggregate, %.0f s simulated) --\n",
              sweep_tps, ToSeconds(sweep_duration));
  std::printf("%12s %12s %14s %14s\n", "users", "wall ms", "peak RSS MB",
              "committed tps");
  std::vector<uint64_t> user_points = {1000, 10000, 100000};
  if (!smoke) user_points.push_back(1000000);
  for (uint64_t users : user_points) {
    ExperimentConfig config = ScaleConfig(users, sweep_tps, sweep_duration);
    Point p = RunPoint(config);
    json.Config(config);
    std::printf("%12llu %12.0f %14.1f %14.1f\n",
                static_cast<unsigned long long>(users), p.wall_ms,
                p.peak_rss_mb, p.report.committed_throughput_tps);
    std::fflush(stdout);
    json.RowMetric("users_sweep_rss", static_cast<double>(users),
                   config.base_seed, p.wall_ms, "peak_rss_mb", p.peak_rss_mb);
    json.RowMetric("users_sweep_tps", static_cast<double>(users),
                   config.base_seed, p.wall_ms, "tps",
                   p.report.committed_throughput_tps);
  }
  std::printf("\n");

  // -- 3. the headline run (FABRICSIM_FULL=1) -------------------------
  if (full) {
    std::printf("-- headline: 10^6 users, 10^4 tps, 1 simulated hour --\n");
    ExperimentConfig config = ScaleConfig(1000000, 10000, 3600 * kSecond);
    Point p = RunPoint(config);
    json.Config(config);
    std::printf("%12s %12s %14s %14s %10s\n", "ledger txs", "wall s",
                "peak RSS MB", "committed tps", "mvcc %");
    std::printf("%12llu %12.1f %14.1f %14.1f %10.2f\n",
                static_cast<unsigned long long>(p.report.ledger_txs),
                p.wall_ms / 1000.0, p.peak_rss_mb,
                p.report.committed_throughput_tps, p.report.mvcc_pct);
    json.RowMetric("headline_rss", 3600, config.base_seed, p.wall_ms,
                   "peak_rss_mb", p.peak_rss_mb);
    json.RowMetric("headline_tps", 3600, config.base_seed, p.wall_ms, "tps",
                   p.report.committed_throughput_tps);
  } else {
    std::printf("headline hour skipped (set FABRICSIM_FULL=1 to run "
                "10^6 users at 10^4 tps for 3600 simulated seconds)\n");
  }
  return 0;
}
