// Figure 15: effect of the Zipfian key-access skew on failures
// (genChain, uniform read/update workload, C2).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 15 - Zipfian key skew (genChain, C2)",
         "failures increase with skew: more transactions collide on the "
         "same hot keys");

  std::printf("%6s %12s %12s\n", "skew", "total%", "mvcc%");
  for (double skew : {0.0, 1.0, 2.0}) {
    ExperimentConfig config = Tuned(ExperimentConfig::Builder()
                                        .Cluster(ClusterConfig::C2())
                                        .RateTps(100)
                                        .Chaincode("genchain")
                                        .Mix(WorkloadMix::kUpdateHeavy)
                                        .ZipfSkew(skew)
                                        .Build());
    // The paper's skew experiment uses a reduced key space so that
    // skew-0 is measurable; 100k keys with uniform access would show
    // no conflicts at all.
    config.workload.genchain_initial_keys = 5000;
    FailureReport r = MustRun(config);
    std::printf("%6.1f %12.2f %12.2f\n", skew, r.total_failure_pct,
                r.mvcc_pct);
    std::fflush(stdout);
  }
  return 0;
}
