// Figure 7: inter-block vs intra-block MVCC read conflicts at
// different block sizes (EHR, 100 tps, C2).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 7 - MVCC read conflicts vs block size (EHR, 100 tps, C2)",
         "intra-block conflicts increase with block size (more in-block "
         "dependencies); inter-block conflicts decrease (conflicts land "
         "inside the block instead of across blocks)");

  ExperimentConfig base = Tuned(ExperimentConfig::Builder()
                                    .Cluster(ClusterConfig::C2())
                                    .RateTps(100)
                                    .Build());
  // One flat (block-size, seed) job list over FABRICSIM_JOBS workers.
  Result<std::vector<SweepPoint>> points =
      RunSweep(base, BlockSizeSweepSpec(DefaultBlockSizes()));
  if (!points.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  std::printf("%10s %14s %14s %14s\n", "block size", "inter-block%",
              "intra-block%", "total mvcc%");
  for (const SweepPoint& point : points.value()) {
    std::printf("%10.0f %14.2f %14.2f %14.2f\n", point.value,
                point.report.mvcc_inter_pct, point.report.mvcc_intra_pct,
                point.report.mvcc_pct);
  }
  return 0;
}
