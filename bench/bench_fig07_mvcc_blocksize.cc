// Figure 7: inter-block vs intra-block MVCC read conflicts at
// different block sizes (EHR, 100 tps, C2).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 7 - MVCC read conflicts vs block size (EHR, 100 tps, C2)",
         "intra-block conflicts increase with block size (more in-block "
         "dependencies); inter-block conflicts decrease (conflicts land "
         "inside the block instead of across blocks)");

  std::printf("%10s %14s %14s %14s\n", "block size", "inter-block%",
              "intra-block%", "total mvcc%");
  for (uint32_t bs : {10u, 25u, 50u, 100u, 200u}) {
    ExperimentConfig config = BaseC2(100);
    config.fabric.block_size = bs;
    FailureReport r = MustRun(config);
    std::printf("%10u %14.2f %14.2f %14.2f\n", bs, r.mvcc_inter_pct,
                r.mvcc_intra_pct, r.mvcc_pct);
    std::fflush(stdout);
  }
  return 0;
}
