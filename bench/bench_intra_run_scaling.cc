// Intra-run execution scaling: one DES run executed serially
// (ExecutionMode::kSerial) and with per-channel commit pipelines
// (ExecutionMode::kThreaded) at increasing worker counts, across
// channel counts. Inter-run parallelism is pinned to one job so the
// subject is the threaded executor inside a single run, not the sweep
// fan-out. Every threaded report must be field-identical to the
// serial reference; wall-clock speedup on the same valid goodput is
// printed and recorded in BENCH_intra_run_scaling.json.
//
// FABRICSIM_SMOKE=1 shrinks the grid for CI smoke coverage;
// FABRICSIM_FULL=1 lengthens the runs for stabler speedup numbers.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

namespace {

bool ReportsEqual(const FailureReport& a, const FailureReport& b) {
  return a.ledger_txs == b.ledger_txs && a.valid_txs == b.valid_txs &&
         a.endorsement_failures == b.endorsement_failures &&
         a.mvcc_intra == b.mvcc_intra && a.mvcc_inter == b.mvcc_inter &&
         a.phantom == b.phantom && a.submitted_txs == b.submitted_txs &&
         a.total_failure_pct == b.total_failure_pct &&
         a.avg_latency_s == b.avg_latency_s &&
         a.valid_throughput_tps == b.valid_throughput_tps &&
         a.committed_throughput_tps == b.committed_throughput_tps;
}

// Best-of-N wall clock for one (channels, execution) cell. The report
// of every attempt must agree (determinism), so any of them serves as
// the cell's result.
struct Cell {
  FailureReport report;
  double wall_ms = 0;
};

Cell Measure(const ExperimentConfig& config, int attempts) {
  Cell cell;
  for (int i = 0; i < attempts; ++i) {
    double start = NowMs();
    Result<FailureReport> report = RunOnce(config, config.base_seed);
    double wall = NowMs() - start;
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      std::exit(1);
    }
    if (i == 0) {
      cell.report = std::move(report).value();
      cell.wall_ms = wall;
    } else {
      if (!ReportsEqual(cell.report, report.value())) {
        std::fprintf(stderr, "DETERMINISM VIOLATION: repeated run of the "
                             "same cell diverged\n");
        std::exit(1);
      }
      if (wall < cell.wall_ms) cell.wall_ms = wall;
    }
  }
  return cell;
}

}  // namespace

int main() {
  Header("Intra-run scaling - channel-parallel commit pipelines inside "
         "one DES run",
         "per-channel validation/commit work moves to worker threads "
         "behind a lookahead barrier; wall time should shrink with "
         "threads (best with many channels) while every report stays "
         "bitwise identical to serial execution");

  const bool smoke = std::getenv("FABRICSIM_SMOKE") != nullptr;
  const bool full = std::getenv("FABRICSIM_FULL") != nullptr;
  const SimTime duration =
      smoke ? 5 * kSecond : (full ? 60 * kSecond : 20 * kSecond);
  const int attempts = smoke ? 1 : (full ? 3 : 2);

  unsigned hw = HardwareConcurrency();
  std::vector<int> thread_counts = smoke ? std::vector<int>{1, 2}
                                         : std::vector<int>{1, 2, 4};
  if (!smoke && hw > 4) thread_counts.push_back(static_cast<int>(hw));
  const std::vector<int> channel_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 8};

  std::printf("hardware_concurrency: %u\n", hw);
  if (SingleCoreHost()) {
    std::printf("note: single-core host — identity with serial execution "
                "is still checked, but no wall-clock speedup is expected "
                "and the speedup check is skipped\n");
  }

  // Pin the experiment runner to one job: intra-run threads are the
  // only parallelism under test.
  SetParallelJobs(1);

  JsonWriter json("intra_run_scaling");
  std::printf("%9s %8s %12s %10s %12s %10s\n", "channels", "threads",
              "wall(ms)", "speedup", "goodput", "identical");

  double best_speedup = 0;
  for (int channels : channel_counts) {
    // Constant per-channel load: total work grows with the channel
    // count, which is exactly the regime the pipelines parallelize.
    ExperimentConfig base = ExperimentConfig::Builder()
                                .Channels(channels)
                                .ChannelSkew(0.6)
                                .RateTps(100.0 * channels)
                                .Duration(duration)
                                .Repetitions(1)
                                .Build();
    if (channels == 1) json.Config(base);

    ExperimentConfig serial = base;
    serial.fabric.execution = ExecutionConfig::Serial();
    Cell reference = Measure(serial, attempts);
    std::printf("%9d %8s %12.1f %9s %10.1f %10s\n", channels, "serial",
                reference.wall_ms, "(ref)",
                reference.report.valid_throughput_tps, "(ref)");
    json.RowMetric("intra_c" + std::to_string(channels), 0, base.base_seed,
                   reference.wall_ms, "speedup", 1.0);

    for (int threads : thread_counts) {
      ExperimentConfig threaded = base;
      threaded.fabric.execution = ExecutionConfig::Threaded(threads);
      Cell cell = Measure(threaded, attempts);
      bool identical = ReportsEqual(reference.report, cell.report);
      if (!identical) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION at channels=%d threads=%d: "
                     "threaded run diverged from serial execution\n",
                     channels, threads);
        return 1;
      }
      double speedup =
          cell.wall_ms > 0 ? reference.wall_ms / cell.wall_ms : 0;
      if (speedup > best_speedup) best_speedup = speedup;
      std::printf("%9d %8d %12.1f %9.2fx %10.1f %10s\n", channels, threads,
                  cell.wall_ms, speedup,
                  cell.report.valid_throughput_tps, "yes");
      std::fflush(stdout);
      json.RowMetric("intra_c" + std::to_string(channels), threads,
                     base.base_seed, cell.wall_ms, "speedup", speedup);
    }
  }
  // Restore the env-driven default for anything run after us.
  ParallelJobsFromEnv();

  if (SingleCoreHost() || smoke) {
    std::printf("speedup check: skipped (%s)\n",
                SingleCoreHost() ? "single-core host" : "smoke mode");
    return 0;
  }
  if (best_speedup <= 1.0) {
    std::fprintf(stderr,
                 "NO SPEEDUP: best threaded speedup %.2fx on a %u-core "
                 "host\n",
                 best_speedup, hw);
    return 1;
  }
  std::printf("best threaded speedup: %.2fx\n", best_speedup);
  return 0;
}
