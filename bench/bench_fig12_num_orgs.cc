// Figure 12: effect of the number of organizations (4 peers each) on
// latency and endorsement policy failures (C2 cluster hardware).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 12 - number of organizations (4 peers per org)",
         "latency and endorsement policy failures increase with the "
         "number of organizations: more world-state replicas, more "
         "transient inconsistency");

  std::printf("%6s %12s %16s %12s\n", "orgs", "latency(s)", "endorsement%",
              "total fail%");
  for (int orgs : {2, 4, 6, 8, 10}) {
    ExperimentConfig config = BaseC2(100);
    config.fabric.cluster.num_orgs = orgs;
    config.repetitions = 3;
    FailureReport r = MustRun(config);
    std::printf("%6d %12.3f %16.2f %12.2f\n", orgs, r.avg_latency_s,
                r.endorsement_pct, r.total_failure_pct);
    std::fflush(stdout);
  }
  return 0;
}
