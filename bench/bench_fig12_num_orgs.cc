// Figure 12: effect of the number of organizations (4 peers each) on
// latency and endorsement policy failures (C2 cluster hardware).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 12 - number of organizations (4 peers per org)",
         "latency and endorsement policy failures increase with the "
         "number of organizations: more world-state replicas, more "
         "transient inconsistency");

  ExperimentConfig config = BaseC2(100);
  config.repetitions = 3;
  // One flat (org-count, seed) job list: all 15 DES instances fan out
  // over FABRICSIM_JOBS workers at once.
  Result<std::vector<OrgCountPoint>> points =
      SweepOrgCounts(config, {2, 4, 6, 8, 10});
  if (!points.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  std::printf("%6s %12s %16s %12s\n", "orgs", "latency(s)", "endorsement%",
              "total fail%");
  for (const OrgCountPoint& point : points.value()) {
    std::printf("%6d %12.3f %16.2f %12.2f\n", point.num_orgs,
                point.report.avg_latency_s, point.report.endorsement_pct,
                point.report.total_failure_pct);
  }
  return 0;
}
