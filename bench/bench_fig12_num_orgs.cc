// Figure 12: effect of the number of organizations (4 peers each) on
// latency and endorsement policy failures (C2 cluster hardware).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 12 - number of organizations (4 peers per org)",
         "latency and endorsement policy failures increase with the "
         "number of organizations: more world-state replicas, more "
         "transient inconsistency");

  // Tuned() picks the repetition count from FABRICSIM_FULL; this
  // figure always wants the paper's 3 seeds, so rebuild on top of it.
  ExperimentConfig base = ExperimentConfig::Builder(
                              Tuned(ExperimentConfig::Builder()
                                        .Cluster(ClusterConfig::C2())
                                        .RateTps(100)
                                        .Build()))
                              .Repetitions(3)
                              .Build();
  // One flat (org-count, seed) job list: all 15 DES instances fan out
  // over FABRICSIM_JOBS workers at once.
  Result<std::vector<SweepPoint>> points =
      RunSweep(base, OrgCountSweepSpec({2, 4, 6, 8, 10}));
  if (!points.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  std::printf("%6s %12s %16s %12s\n", "orgs", "latency(s)", "endorsement%",
              "total fail%");
  for (const SweepPoint& point : points.value()) {
    std::printf("%6.0f %12.3f %16.2f %12.2f\n", point.value,
                point.report.avg_latency_s, point.report.endorsement_pct,
                point.report.total_failure_pct);
  }
  return 0;
}
