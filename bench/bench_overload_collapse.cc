// Overload collapse vs graceful degradation: sweeps offered load from
// 0.5x to 10x the pipeline's capacity under three protection levels —
// none, deadlines only, and the full stack (deadlines + bounded
// endorser queues + orderer backpressure + circuit breaker + retry
// budget) — and reports *timely goodput*: valid transactions committed
// within the SLA, per second of offered load.
//
// Raw throughput cannot show collapse in a lossless FIFO simulator:
// every queued transaction still commits eventually during the drain,
// so valid_throughput stays flat while end-to-end latency blows up to
// tens of seconds. Timely goodput is the client's-eye metric — a
// commit that lands long after the deadline passed is a failure the
// paper's taxonomy would report, not a success.
//
// The bench exits non-zero if the full protection stack delivers less
// timely goodput than the unprotected pipeline at 10x overload: that
// would mean the protection machinery is hurting, not helping.
//
//   FABRICSIM_SMOKE=1  shrinks the load window to CI size (seconds)
//   FABRICSIM_FULL=1   paper-scale 30 s windows
#include <memory>

#include "bench/bench_util.h"
#include "src/fabric/fabric_network.h"
#include "src/ledger/ledger_parser.h"
#include "src/workload/paper_workloads.h"

using namespace fabricsim;
using namespace fabricsim::bench;

namespace {

// Nominal capacity of the default C1 cluster (2 orgs x 2 peers, CouchDB
// contended workload): the endorse phase sustains roughly this many
// committed tps before queues stand.
constexpr double kCapacityTps = 200.0;
constexpr SimTime kSla = 3 * kSecond;

struct ModeResult {
  uint64_t ledger_txs = 0;
  uint64_t valid = 0;
  uint64_t timely = 0;
  double goodput_tps = 0;
  double mean_latency_s = 0;
  uint64_t shed = 0;
  uint64_t expired = 0;
};

// The internal deadline is set BELOW the client SLA: ordering +
// validation + commit cost roughly a second after endorsement, so a
// transaction admitted with its whole SLA already spent on queueing
// commits just past the SLA — work the protection should have refused.
constexpr SimTime kDeadline = 2 * kSecond;

AdmissionConfig DeadlinesOnly() {
  AdmissionConfig admission;
  admission.tx_deadline = kDeadline;
  return admission;
}

AdmissionConfig FullStack() {
  AdmissionConfig admission;
  admission.tx_deadline = kDeadline;
  admission.endorse_policy = AdmissionQueuePolicy::kRejectNew;
  // Bound well under service_rate x deadline: sheds answer within one
  // RTT instead of letting the proposal soak most of its deadline in
  // queue first, and the shorter sojourn keeps the endorsement view
  // fresh (less MVCC staleness).
  admission.max_endorse_queue_depth = 128;
  admission.max_orderer_queue_depth = 256;
  admission.breaker.enabled = true;
  admission.retry_budget.enabled = true;
  return admission;
}

ModeResult RunPoint(const ExperimentConfig& config, uint64_t seed) {
  auto chaincode_result = MakeChaincodeFor(config.workload);
  if (!chaincode_result.ok()) {
    std::fprintf(stderr, "chaincode: %s\n",
                 chaincode_result.status().ToString().c_str());
    std::exit(1);
  }
  auto workload_result = MakeWorkload(
      config.workload, config.fabric.db_type == DatabaseType::kCouchDb);
  if (!workload_result.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload_result.status().ToString().c_str());
    std::exit(1);
  }
  auto workload =
      std::shared_ptr<WorkloadGenerator>(std::move(workload_result).value());
  Environment env(seed);
  FabricNetwork network(config.fabric, &env, chaincode_result.value(),
                        workload);
  Status init = network.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "init: %s\n", init.ToString().c_str());
    std::exit(1);
  }
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();

  ModeResult out;
  double latency_sum = 0;
  for (const TxRecord& rec : LedgerParser::Parse(network.ledger())) {
    ++out.ledger_txs;
    latency_sum += ToSeconds(rec.TotalLatency());
    if (rec.code != TxValidationCode::kValid) continue;
    ++out.valid;
    if (rec.TotalLatency() <= kSla) ++out.timely;
  }
  out.goodput_tps =
      static_cast<double>(out.timely) / ToSeconds(config.duration);
  out.mean_latency_s =
      out.ledger_txs == 0 ? 0 : latency_sum / static_cast<double>(out.ledger_txs);
  if (const AdmissionStats* stats = network.admission_stats()) {
    out.shed = stats->endorse_shed;
    out.expired =
        stats->deadline_expired_endorse + stats->deadline_expired_order;
  }
  return out;
}

}  // namespace

int main() {
  bool smoke = std::getenv("FABRICSIM_SMOKE") != nullptr;
  bool full = !smoke && std::getenv("FABRICSIM_FULL") != nullptr;
  SimTime duration = smoke ? 4 * kSecond : (full ? 30 * kSecond : 10 * kSecond);
  const uint64_t seed = 42;

  Header("Overload collapse - timely goodput vs offered load",
         "an unprotected pipeline keeps accepting work past saturation "
         "and collapses to near-zero timely goodput (everything commits "
         "late); deadlines + admission control shed the excess and hold "
         "goodput near capacity");

  JsonWriter json("overload_collapse");
  struct Mode {
    const char* name;
    AdmissionConfig admission;
  };
  const Mode modes[] = {{"none", AdmissionConfig{}},
                        {"deadlines", DeadlinesOnly()},
                        {"full", FullStack()}};

  std::printf("%6s %8s %-10s %10s %8s %8s %12s %12s %10s %10s\n", "mult",
              "rate", "mode", "ledger", "valid", "timely", "goodput tps",
              "latency(s)", "shed", "expired");

  double peak_unprotected = 0;
  double unprotected_at_max = 0, full_at_max = 0;
  const double max_mult = 10.0;
  for (double mult : {0.5, 1.0, 2.0, 5.0, 10.0}) {
    for (const Mode& mode : modes) {
      ExperimentConfig config = ExperimentConfig::Defaults();
      config.duration = duration;
      config.arrival_rate_tps = kCapacityTps * mult;
      config.repetitions = 1;
      config.fabric.admission = mode.admission;
      json.Config(config);
      double start = NowMs();
      ModeResult r = RunPoint(config, seed);
      double wall_ms = NowMs() - start;
      std::printf("%6.1f %8.0f %-10s %10llu %8llu %8llu %12.1f %12.3f "
                  "%10llu %10llu\n",
                  mult, config.arrival_rate_tps, mode.name,
                  static_cast<unsigned long long>(r.ledger_txs),
                  static_cast<unsigned long long>(r.valid),
                  static_cast<unsigned long long>(r.timely), r.goodput_tps,
                  r.mean_latency_s, static_cast<unsigned long long>(r.shed),
                  static_cast<unsigned long long>(r.expired));
      std::fflush(stdout);
      json.RowMetric(mode.name, mult, seed, wall_ms, "goodput_tps",
                     r.goodput_tps);
      if (std::string(mode.name) == "none") {
        peak_unprotected = std::max(peak_unprotected, r.goodput_tps);
        if (mult == max_mult) unprotected_at_max = r.goodput_tps;
      }
      if (std::string(mode.name) == "full" && mult == max_mult) {
        full_at_max = r.goodput_tps;
      }
    }
  }

  double retained_unprotected =
      peak_unprotected == 0 ? 0 : unprotected_at_max / peak_unprotected;
  double retained_full =
      peak_unprotected == 0 ? 0 : full_at_max / peak_unprotected;
  std::printf("\nunprotected: peak %.1f tps, at 10x %.1f tps (%.0f%% of "
              "peak)\nfull stack:  at 10x %.1f tps (%.0f%% of unprotected "
              "peak)\n",
              peak_unprotected, unprotected_at_max,
              100 * retained_unprotected, full_at_max, 100 * retained_full);

  if (full_at_max < unprotected_at_max) {
    std::fprintf(stderr,
                 "FAIL: full protection delivered %.1f tps timely goodput "
                 "at 10x overload, below the unprotected pipeline's %.1f — "
                 "protection must never make saturation worse\n",
                 full_at_max, unprotected_at_max);
    return 1;
  }
  std::printf("PASS: protected goodput %.1f >= unprotected %.1f at 10x\n",
              full_at_max, unprotected_at_max);
  return 0;
}
