// Figure 24: FabricSharp vs Fabric 1.4 — failures at different
// arrival rates and committed throughput.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 24 - FabricSharp vs Fabric 1.4",
         "(a,b) FabricSharp aborts all non-serializable transactions "
         "before ordering: zero MVCC/phantom failures on chain, only "
         "endorsement failures remain. (c) its committed throughput is "
         "lower — aborted transactions leave no ledger record");

  std::printf("%8s %-12s %14s %14s %10s %14s %12s\n", "rate", "variant",
              "on-chain fail%", "endorsement%", "mvcc%", "early-abort%",
              "tput(tps)");
  for (double rate : {10.0, 50.0, 100.0}) {
    for (FabricVariant variant :
         {FabricVariant::kFabric14, FabricVariant::kFabricSharp}) {
      ExperimentConfig config = BaseC1(rate);
      config.fabric.variant = variant;
      FailureReport r = MustRun(config);
      std::printf("%8.0f %-12s %14.2f %14.2f %10.2f %14.2f %12.1f\n", rate,
                  FabricVariantToString(variant), r.total_failure_pct,
                  r.endorsement_pct, r.mvcc_pct, r.early_abort_pct,
                  r.committed_throughput_tps);
      std::fflush(stdout);
    }
  }
  return 0;
}
