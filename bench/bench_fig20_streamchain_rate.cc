// Figure 20: Streamchain vs Fabric 1.4 at 10/50/100 tps — latency,
// endorsement failures and MVCC conflicts (C1, Fabric bs=10).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 20 - Streamchain vs Fabric 1.4 at low rates (C1)",
         "streaming transactions one-by-one onto a RAM disk keeps the "
         "world state fresh: lower latency, fewer MVCC conflicts and "
         "slightly fewer endorsement failures up to ~100 tps");

  std::printf("%8s %-12s %12s %14s %10s\n", "rate", "variant",
              "latency(s)", "endorsement%", "mvcc%");
  for (double rate : {10.0, 50.0, 100.0}) {
    for (FabricVariant variant :
         {FabricVariant::kFabric14, FabricVariant::kStreamchain}) {
      ExperimentConfig config = BaseC1(rate);
      config.fabric.variant = variant;
      config.fabric.block_size = 10;
      FailureReport r = MustRun(config);
      std::printf("%8.0f %-12s %12.3f %14.2f %10.2f\n", rate,
                  FabricVariantToString(variant), r.avg_latency_s,
                  r.endorsement_pct, r.mvcc_pct);
      std::fflush(stdout);
    }
  }
  return 0;
}
