// Channel scaling: the same aggregate load spread over 1..8 channels
// on the C1 and C2 clusters. Each channel is an independent E-O-V
// pipeline with its own key space, so sharding removes cross-shard
// MVCC conflicts and lets blocks of different channels validate
// concurrently — valid goodput rises with the channel count. But
// every peer runs all channels through one shared endorsement queue
// and a fixed commit-worker budget, so total on-ledger throughput
// stays pinned at the shared-peer ceiling no matter how many channels
// the load is spread over. Per-channel MVCC rates land in the
// version-2 "channels" section of BENCH_channels_scaling.json.
#include <algorithm>

#include "bench/bench_util.h"
#include "src/common/strings.h"

using namespace fabricsim;
using namespace fabricsim::bench;

namespace {

void Sweep(const char* cluster, ExperimentConfig base, JsonWriter& json) {
  std::printf("-- %s --\n", cluster);
  std::printf("%9s %14s %12s %12s %18s\n", "channels", "committed tps",
              "valid tps", "mvcc %", "per-channel mvcc %");
  double single_channel_committed = 0;
  double single_channel_valid = 0;
  double best_valid = 0;
  double worst_committed = 1e30;
  for (int channels : {1, 2, 4, 8}) {
    ExperimentConfig config = ExperimentConfig::Builder(base)
                                  .Channels(channels)
                                  .ChannelSkew(0.9)
                                  .Build();
    json.Config(config);
    double start = NowMs();
    FailureReport r = MustRun(config);
    double wall_ms = NowMs() - start;

    std::string per_channel;
    for (const ChannelFailureBreakdown& c : r.per_channel) {
      per_channel += StrFormat("%s%.1f", per_channel.empty() ? "" : "/",
                               c.mvcc_pct);
      json.ChannelRow(c.channel, std::string(cluster) + "_mvcc", channels,
                      "mvcc_pct", c.mvcc_pct);
    }
    std::printf("%9d %14.1f %12.1f %12.2f %18s\n", channels,
                r.committed_throughput_tps, r.valid_throughput_tps,
                r.mvcc_pct, per_channel.empty() ? "-" : per_channel.c_str());
    std::fflush(stdout);
    json.RowMetric(std::string(cluster) + "_committed_tps", channels,
                   config.base_seed, wall_ms, "tps",
                   r.committed_throughput_tps);
    json.RowMetric(std::string(cluster) + "_valid_tps", channels,
                   config.base_seed, wall_ms, "tps", r.valid_throughput_tps);
    if (channels == 1) {
      single_channel_committed = r.committed_throughput_tps;
      single_channel_valid = r.valid_throughput_tps;
    }
    best_valid = std::max(best_valid, r.valid_throughput_tps);
    worst_committed = std::min(worst_committed, r.committed_throughput_tps);
  }
  // The two halves of the channel story: goodput rises with the shard
  // count (per-channel key spaces remove cross-shard MVCC conflicts),
  // while total on-ledger throughput stays pinned at the shared peer
  // pipeline's ceiling — every channel still funnels through the same
  // serial endorsement queue and commit-worker budget.
  bool goodput_rose = best_valid > single_channel_valid * 1.05;
  bool ceiling_held = worst_committed > single_channel_committed * 0.9;
  std::printf("%s\n\n",
              goodput_rose && ceiling_held
                  ? "valid goodput rose with the channel count while total "
                    "committed throughput stayed at the shared-peer ceiling"
                  : "unexpected scaling shape (goodput flat or ceiling "
                    "collapsed) - investigate before trusting the sweep");
}

}  // namespace

int main() {
  Header("Channel scaling - committed throughput vs channel count",
         "independent per-channel pipelines raise aggregate throughput "
         "and cut MVCC conflicts until the peers' shared endorsement/"
         "validation resources saturate");

  JsonWriter json("channels_scaling");
  // Overdrive both clusters well past single-channel capacity so the
  // shared-resource ceiling, not the offered load, is what limits the
  // curve.
  Sweep("C1", BaseC1(/*rate_tps=*/400), json);
  Sweep("C2", BaseC2(/*rate_tps=*/400), json);
  return 0;
}
