// Ablation (paper §5.3.3, future work): Streamchain's proposed
// "virtual block boundary" — group-committing streamed transactions —
// should recover Streamchain's throughput on a normal disk, removing
// the RAM-disk requirement.
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Ablation - Streamchain virtual block boundary (no RAM disk, C1)",
         "hypothesis from §5.3.3: committing streamed transactions in "
         "groups amortizes the per-commit storage cost, so Streamchain "
         "no longer needs a RAM disk at moderate rates");

  std::printf("%8s %-22s %12s %10s %12s\n", "rate", "configuration",
              "latency(s)", "mvcc%", "tput(tps)");
  for (double rate : {25.0, 50.0}) {
    struct Case {
      const char* name;
      bool ram_disk;
      uint32_t group;
    };
    for (const Case& c :
         {Case{"RAM disk, no groups", true, 1},
          Case{"disk, no groups", false, 1},
          Case{"disk, virtual bs=10", false, 10},
          Case{"disk, virtual bs=50", false, 50}}) {
      ExperimentConfig config = BaseC1(rate);
      config.fabric.variant = FabricVariant::kStreamchain;
      config.fabric.streamchain_ram_disk = c.ram_disk;
      config.fabric.streamchain_virtual_block_size = c.group;
      FailureReport r = MustRun(config);
      std::printf("%8.0f %-22s %12.3f %10.2f %12.1f\n", rate, c.name,
                  r.avg_latency_s, r.mvcc_pct, r.committed_throughput_tps);
      std::fflush(stdout);
    }
  }
  return 0;
}
