// Figure 18: Fabric++ vs Fabric 1.4 across the four use-case
// chaincodes — failures and latency (50 tps, C2).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 18 - Fabric++ across chaincodes (50 tps, C2)",
         "Fabric++ helps EHR/DRM (point accesses) but not DV/SCM: their "
         "large range queries (800-1000 keys) explode the conflict-graph "
         "construction, inflating Fabric++'s latency");

  std::printf("%-10s %-12s %14s %12s %16s\n", "chaincode", "variant",
              "on-chain fail%", "latency(s)", "reorder-abort%");
  for (const char* chaincode : {"ehr", "dv", "scm", "drm"}) {
    for (FabricVariant variant :
         {FabricVariant::kFabric14, FabricVariant::kFabricPlusPlus}) {
      ExperimentConfig config = BaseC2(50);
      config.workload.chaincode = chaincode;
      config.fabric.variant = variant;
      FailureReport r = MustRun(config);
      std::printf("%-10s %-12s %14.2f %12.2f %16.2f\n", chaincode,
                  FabricVariantToString(variant), r.total_failure_pct,
                  r.avg_latency_s, r.reorder_abort_pct);
      std::fflush(stdout);
    }
  }
  return 0;
}
