#ifndef FABRICSIM_BENCH_BENCH_UTIL_H_
#define FABRICSIM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/parallel.h"
#include "src/core/runner.h"
#include "src/core/sweeps.h"
#include "src/obs/json_writer.h"

namespace fabricsim {
namespace bench {

/// Baseline experiment configs for the reproduction benches. The
/// paper drives load for 180 s and repeats >=3x; we default to 30 s
/// simulated time and 2 seeds per point so every bench binary
/// finishes in seconds — pass FABRICSIM_FULL=1 in the environment to
/// run the paper-scale 180 s x 3 versions. FABRICSIM_JOBS=N picks the
/// worker-thread count used to fan out independent (point, seed) DES
/// instances (default: hardware_concurrency; 1 forces the serial
/// path). Results are bitwise identical at any job count.
inline ExperimentConfig Tuned(ExperimentConfig config) {
  // Re-read the env knob here so every bench binary honours
  // FABRICSIM_JOBS no matter what touched the setting earlier.
  ParallelJobsFromEnv();
  if (std::getenv("FABRICSIM_FULL") != nullptr) {
    config.duration = 180 * kSecond;
    config.repetitions = 3;
  } else {
    config.duration = 30 * kSecond;
    config.repetitions = 2;
  }
  return config;
}

inline ExperimentConfig BaseC1(double rate_tps = 100) {
  ExperimentConfig config = Tuned(ExperimentConfig::Defaults());
  config.arrival_rate_tps = rate_tps;
  return config;
}

inline ExperimentConfig BaseC2(double rate_tps = 100) {
  ExperimentConfig config = Tuned(ExperimentConfig::DefaultsC2());
  config.arrival_rate_tps = rate_tps;
  return config;
}

inline void Header(const char* experiment, const char* paper_expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_expectation);
  std::printf("================================================================\n");
}

/// Runs one experiment or exits with a diagnostic (benches are
/// regeneration scripts; failing silently would hide a broken config).
inline FailureReport MustRun(const ExperimentConfig& config) {
  Result<ExperimentResult> result = RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed (%s): %s\n",
                 config.Describe().c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result.value().mean;
}

/// Logical cores on this host, clamped to >= 1 (the standard allows
/// hardware_concurrency() to return 0 when undeterminable).
inline unsigned HardwareConcurrency() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// True when this host cannot demonstrate parallel speedup (single
/// logical core). Scaling benches use this to self-annotate: they
/// still run and verify determinism, but skip wall-clock speedup
/// expectations that only hold with real parallel hardware.
inline bool SingleCoreHost() { return HardwareConcurrency() <= 1; }

/// Wall-clock milliseconds since an arbitrary epoch, for bench timing.
inline double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Accumulates machine-readable bench rows and writes them to
/// BENCH_<name>.json in the working directory on Flush()/destruction.
/// The file is a versioned document (VersionedJsonWriter::kDocument):
///   {"schema_version": N, "kind": "bench.<name>", "config": "...",
///    "rows": [ {"figure": ..., "point": ..., "seed": ...,
///               "wall_ms": ..., "failure_pct": ...}, ... ]}
/// so perf trajectories can be tracked across commits without
/// scraping stdout, and every artifact self-describes its layout.
class JsonWriter {
 public:
  explicit JsonWriter(std::string name)
      : name_(std::move(name)),
        writer_("bench." + name_, VersionedJsonWriter::Format::kDocument) {
    // Every bench artifact self-describes the host it ran on: scaling
    // numbers from a 1-core CI runner carry their own caveat.
    writer_.set_hardware_concurrency(HardwareConcurrency());
  }
  ~JsonWriter() { Flush(); }

  /// Echoes the generating configuration in the document header.
  void Config(const ExperimentConfig& config) {
    writer_.set_config_echo(config.Describe());
  }

  void Row(const std::string& figure, double point, uint64_t seed,
           double wall_ms, double failure_pct) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"figure\": \"%s\", \"point\": %g, \"seed\": %llu, "
                  "\"wall_ms\": %.3f, \"failure_pct\": %.4f}",
                  JsonEscape(figure).c_str(), point,
                  static_cast<unsigned long long>(seed), wall_ms,
                  failure_pct);
    writer_.AddRow(buf);
  }

  /// Row whose headline is a named scalar metric instead of a failure
  /// rate (e.g. the ordering-failover bench reports the unavailability
  /// gap in seconds).
  void RowMetric(const std::string& figure, double point, uint64_t seed,
                 double wall_ms, const char* metric, double value) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"figure\": \"%s\", \"point\": %g, \"seed\": %llu, "
                  "\"wall_ms\": %.3f, \"%s\": %.6f}",
                  JsonEscape(figure).c_str(), point,
                  static_cast<unsigned long long>(seed), wall_ms, metric,
                  value);
    writer_.AddRow(buf);
  }

  /// Per-channel row of a sharded run (multi-channel benches). Lands
  /// in the document's "channels" section and bumps the artifact to
  /// schema version 2.
  void ChannelRow(int channel, const std::string& figure, double point,
                  const char* metric, double value) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"figure\": \"%s\", \"point\": %g, \"%s\": %.6f}",
                  JsonEscape(figure).c_str(), point, metric, value);
    writer_.AddChannelRow(channel, buf);
  }

  /// Writes all accumulated rows; safe to call more than once (later
  /// calls rewrite the file with the full row set).
  void Flush() {
    if (writer_.row_count() == 0 && writer_.channel_row_count() == 0) return;
    writer_.WriteFile("BENCH_" + name_ + ".json");
  }

 private:
  std::string name_;
  VersionedJsonWriter writer_;
};

}  // namespace bench
}  // namespace fabricsim

#endif  // FABRICSIM_BENCH_BENCH_UTIL_H_
