#ifndef FABRICSIM_BENCH_BENCH_UTIL_H_
#define FABRICSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/runner.h"
#include "src/core/sweeps.h"

namespace fabricsim {
namespace bench {

/// Baseline experiment configs for the reproduction benches. The
/// paper drives load for 180 s and repeats >=3x; we default to 30 s
/// simulated time and 2 seeds per point so every bench binary
/// finishes in seconds — pass FABRICSIM_FULL=1 in the environment to
/// run the paper-scale 180 s x 3 versions.
inline ExperimentConfig Tuned(ExperimentConfig config) {
  if (std::getenv("FABRICSIM_FULL") != nullptr) {
    config.duration = 180 * kSecond;
    config.repetitions = 3;
  } else {
    config.duration = 30 * kSecond;
    config.repetitions = 2;
  }
  return config;
}

inline ExperimentConfig BaseC1(double rate_tps = 100) {
  ExperimentConfig config = Tuned(ExperimentConfig::Defaults());
  config.arrival_rate_tps = rate_tps;
  return config;
}

inline ExperimentConfig BaseC2(double rate_tps = 100) {
  ExperimentConfig config = Tuned(ExperimentConfig::DefaultsC2());
  config.arrival_rate_tps = rate_tps;
  return config;
}

inline void Header(const char* experiment, const char* paper_expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_expectation);
  std::printf("================================================================\n");
}

/// Runs one experiment or exits with a diagnostic (benches are
/// regeneration scripts; failing silently would hide a broken config).
inline FailureReport MustRun(const ExperimentConfig& config) {
  Result<ExperimentResult> result = RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed (%s): %s\n",
                 config.Describe().c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result.value().mean;
}

}  // namespace bench
}  // namespace fabricsim

#endif  // FABRICSIM_BENCH_BENCH_UTIL_H_
