// Figure 6: average transaction latency and committed throughput at
// different block sizes (EHR, 100 tps, C2).
#include "bench/bench_util.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 6 - latency & throughput vs block size (EHR, 100 tps, C2)",
         "latency is minimal at the same block size where failures are "
         "minimal (bs=50 at 100 tps); throughput is largely insensitive "
         "to block size");

  std::printf("%10s %12s %12s %12s %12s\n", "block size", "latency(s)",
              "p99(s)", "tput(tps)", "failures%");
  for (uint32_t bs : {10u, 25u, 50u, 100u, 200u}) {
    ExperimentConfig config = BaseC2(100);
    config.fabric.block_size = bs;
    FailureReport r = MustRun(config);
    std::printf("%10u %12.3f %12.3f %12.1f %12.2f\n", bs, r.avg_latency_s,
                r.p99_latency_s, r.committed_throughput_tps,
                r.total_failure_pct);
    std::fflush(stdout);
  }
  return 0;
}
