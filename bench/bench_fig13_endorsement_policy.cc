// Figure 13 (and Table 5): effect of the endorsement policy presets
// P0-P3 on endorsement failures and latency (C2, 8 orgs).
#include "bench/bench_util.h"
#include "src/policy/policy_presets.h"

using namespace fabricsim;
using namespace fabricsim::bench;

int main() {
  Header("Figure 13 / Table 5 - endorsement policies P0-P3 (C2)",
         "P0 (all N orgs) fails most; P1 (Org0 + any, 1 sub-policy) fails "
         "less than P2 (one per half, 2 sub-policies) despite equal "
         "signature counts; sub-policies also increase latency");

  // One flat (policy, seed) job list over FABRICSIM_JOBS workers.
  ExperimentConfig base = Tuned(ExperimentConfig::Builder()
                                    .Cluster(ClusterConfig::C2())
                                    .RateTps(100)
                                    .Build());
  const std::vector<PolicyPreset> presets = {
      PolicyPreset::kP0AllOrgs, PolicyPreset::kP1OrgZeroPlusAny,
      PolicyPreset::kP2OneFromEachHalf, PolicyPreset::kP3Quorum};
  Result<std::vector<SweepPoint>> points =
      RunSweep(base, PolicyPresetSweepSpec(presets));
  if (!points.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  std::printf("%-4s %-34s %6s %10s %14s %12s\n", "id", "policy", "sigs",
              "subpols", "endorsement%", "latency(s)");
  for (size_t i = 0; i < presets.size(); ++i) {
    const SweepPoint& point = points.value()[i];
    EndorsementPolicy policy =
        MakePolicy(presets[i], base.fabric.cluster.num_orgs);
    std::string text = policy.ToString();
    if (text.size() > 33) text = text.substr(0, 30) + "...";
    std::printf("%-4s %-34s %6d %10d %14.2f %12.3f\n", point.label.c_str(),
                text.c_str(), policy.MinSignatures(),
                policy.SubPolicyCount(), point.report.endorsement_pct,
                point.report.avg_latency_s);
  }
  return 0;
}
