// Micro-benchmarks (google-benchmark) for the hot substrates: state
// database operations, Zipfian sampling, rw-set digests, conflict
// graph construction, policy evaluation and the event queue.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/ext/fabricpp/conflict_graph.h"
#include "src/policy/policy_presets.h"
#include "src/sim/environment.h"
#include "src/statedb/memory_state_db.h"

namespace fabricsim {
namespace {

void BM_StateDbGet(benchmark::State& state) {
  MemoryStateDb db;
  for (int i = 0; i < 100000; ++i) {
    db.ApplyWrite(WriteItem{"GK" + PadKey(i, 8), "value", false}, {1, 0});
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.Get("GK" + PadKey(rng.UniformU64(100000), 8)));
  }
}
BENCHMARK(BM_StateDbGet);

void BM_StateDbRangeScan(benchmark::State& state) {
  MemoryStateDb db;
  for (int i = 0; i < 100000; ++i) {
    db.ApplyWrite(WriteItem{"GK" + PadKey(i, 8), "value", false}, {1, 0});
  }
  int64_t len = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    uint64_t start = rng.UniformU64(100000 - len);
    benchmark::DoNotOptimize(
        db.GetRange("GK" + PadKey(start, 8), "GK" + PadKey(start + len, 8)));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_StateDbRangeScan)->Arg(8)->Arg(100)->Arg(1000);

void BM_ZipfianSample(benchmark::State& state) {
  ZipfianGenerator zipf(100000, 0.99);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfianSample);

void BM_RwSetDigest(benchmark::State& state) {
  ReadWriteSet rwset;
  for (int i = 0; i < state.range(0); ++i) {
    rwset.reads.push_back(ReadItem{"key" + std::to_string(i),
                                   {static_cast<uint64_t>(i), 0},
                                   true});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rwset.Digest());
  }
}
BENCHMARK(BM_RwSetDigest)->Arg(2)->Arg(16)->Arg(1000);

void BM_ConflictGraphBuild(benchmark::State& state) {
  Rng rng(1);
  std::vector<Transaction> txs;
  for (int t = 0; t < state.range(0); ++t) {
    Transaction tx;
    tx.id = static_cast<TxId>(t + 1);
    std::string key = "k" + std::to_string(rng.UniformU64(50));
    tx.rwset.reads.push_back(ReadItem{key, {0, 0}, true});
    tx.rwset.writes.push_back(WriteItem{key, "v", false});
    txs.push_back(std::move(tx));
  }
  for (auto _ : state) {
    uint64_t ops = 0;
    benchmark::DoNotOptimize(ConflictGraph::Build(txs, &ops));
  }
}
BENCHMARK(BM_ConflictGraphBuild)->Arg(10)->Arg(100)->Arg(500);

void BM_PolicyEvaluate(benchmark::State& state) {
  EndorsementPolicy policy =
      MakePolicy(PolicyPreset::kP2OneFromEachHalf,
                 static_cast<int>(state.range(0)));
  std::set<OrgId> signers;
  for (int org = 0; org < state.range(0); org += 2) signers.insert(org);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.Evaluate(signers));
  }
}
BENCHMARK(BM_PolicyEvaluate)->Arg(2)->Arg(8)->Arg(32);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    Environment env(1);
    for (int i = 0; i < 1000; ++i) {
      env.Schedule(i % 97, [] {});
    }
    env.RunAll();
    benchmark::DoNotOptimize(env.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

}  // namespace
}  // namespace fabricsim
