// Client-population subsystem tests: bitwise degeneracy of the
// population path onto the legacy per-client goldens (compat,
// replicated, multi-channel, FABRICSIM_JOBS 1 vs 4, trace exports),
// aggregated arrival-process statistics (measured rate, MMPP
// modulation, the interarrival rounding regression), aggregated-run
// determinism, streaming observability / streaming ledger consistency
// against the dense path, and config validation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/strings.h"
#include "src/core/runner.h"
#include "src/fabric/fabric_network.h"
#include "src/workload/paper_workloads.h"
#include "src/workload/population/client_population.h"
#include "src/workload/population/population.h"

namespace fabricsim {
namespace {

// Same exhaustive numeric fingerprint as channel_test.cc / fault_test.cc.
std::string Fingerprint(const FailureReport& r) {
  std::string out;
  out += StrFormat(
      "ledger=%llu valid=%llu endorse=%llu mvcc_intra=%llu "
      "mvcc_inter=%llu phantom=%llu submitted=%llu app=%llu\n",
      static_cast<unsigned long long>(r.ledger_txs),
      static_cast<unsigned long long>(r.valid_txs),
      static_cast<unsigned long long>(r.endorsement_failures),
      static_cast<unsigned long long>(r.mvcc_intra),
      static_cast<unsigned long long>(r.mvcc_inter),
      static_cast<unsigned long long>(r.phantom),
      static_cast<unsigned long long>(r.submitted_txs),
      static_cast<unsigned long long>(r.app_errors));
  out += StrFormat("pct=%.17g/%.17g/%.17g/%.17g/%.17g\n", r.total_failure_pct,
                   r.endorsement_pct, r.mvcc_pct, r.phantom_pct,
                   r.early_abort_pct);
  out += StrFormat("lat=%.17g/%.17g/%.17g tput=%.17g/%.17g\n", r.avg_latency_s,
                   r.p50_latency_s, r.p99_latency_s, r.committed_throughput_tps,
                   r.valid_throughput_tps);
  for (const ChannelFailureBreakdown& c : r.per_channel) {
    out += StrFormat("ch%d=%llu/%llu/%llu/%llu/%llu/%llu %.17g/%.17g/%.17g\n",
                     c.channel, static_cast<unsigned long long>(c.ledger_txs),
                     static_cast<unsigned long long>(c.valid_txs),
                     static_cast<unsigned long long>(c.endorsement_failures),
                     static_cast<unsigned long long>(c.mvcc_intra),
                     static_cast<unsigned long long>(c.mvcc_inter),
                     static_cast<unsigned long long>(c.phantom),
                     c.total_failure_pct, c.mvcc_pct,
                     c.committed_throughput_tps);
  }
  return out;
}

// The same pre-channel golden fingerprints channel_test.cc pins (C1
// defaults, 20 s at 100 tps, seed 42). A degenerate single-class
// population spread over the same 5 clients must keep reproducing
// them byte for byte: same per-user rate doubles, same RNG forks in
// the same order, same event sequence.
constexpr char kGoldenCompat[] =
    "ledger=1998 valid=889 endorse=21 mvcc_intra=808 mvcc_inter=280 "
    "phantom=0 submitted=1998 app=0\n"
    "pct=55.505505505505504/1.0510510510510511/54.454454454454456/0/0\n"
    "lat=0.79166268968969022/0.75911118027396884/2.02848615705734 "
    "tput=95/44.450000000000003\n";

constexpr char kGoldenReplicated[] =
    "ledger=1992 valid=899 endorse=20 mvcc_intra=796 mvcc_inter=277 "
    "phantom=0 submitted=1992 app=0\n"
    "pct=54.869477911646584/1.0040160642570282/53.865461847389561/0/0\n"
    "lat=0.78060464658634665/0.74022120304450434/2.0647142323398877 "
    "tput=95/44.950000000000003\n";

ExperimentConfig GoldenConfig() {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 20 * kSecond;
  config.arrival_rate_tps = 100;
  return config;
}

// GoldenConfig expressed as an explicit single-class population over
// the same 5 clients (all below the aggregation threshold, so every
// user expands into a per-client actor).
ExperimentConfig GoldenPopulationConfig() {
  ExperimentConfig config = GoldenConfig();
  config.population = PopulationConfig::SingleClass(
      static_cast<uint64_t>(config.fabric.cluster.num_clients),
      config.arrival_rate_tps);
  return config;
}

// ------------------------------------------------- bitwise degeneracy

TEST(PopulationTest, DegenerateSingleClassReproducesCompatFingerprint) {
  Result<FailureReport> r = RunOnce(GoldenPopulationConfig(), 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Fingerprint(r.value()), kGoldenCompat);
  EXPECT_TRUE(r.value().per_channel.empty());
}

TEST(PopulationTest, DegenerateSingleClassReproducesReplicatedFingerprint) {
  ExperimentConfig config = GoldenPopulationConfig();
  config.fabric.ordering.replicated = true;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Fingerprint(r.value()), kGoldenReplicated);
}

TEST(PopulationTest, DegeneracyHoldsAcrossChannelsAndJobs) {
  // Four sharded channels, legacy pool vs degenerate population, under
  // FABRICSIM_JOBS=1 and 4: all four fingerprints (per-channel
  // breakdowns included) must be identical.
  std::vector<std::string> fingerprints;
  for (bool population : {false, true}) {
    for (int jobs : {1, 4}) {
      SetParallelJobs(jobs);
      ExperimentConfig config =
          population ? GoldenPopulationConfig() : GoldenConfig();
      config.fabric.num_channels = 4;
      config.workload.channel_affinity.skew = 0.8;
      config.repetitions = 1;
      Result<ExperimentResult> result = RunExperiment(config);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      fingerprints.push_back(
          Fingerprint(result.value().repetitions[0]));
      SCOPED_TRACE(StrFormat("population=%d jobs=%d", population ? 1 : 0,
                             jobs));
      EXPECT_EQ(fingerprints.back(), fingerprints.front());
    }
  }
  ParallelJobsFromEnv();  // restore the ambient setting
  EXPECT_EQ(fingerprints.size(), 4u);
}

TEST(PopulationTest, DegenerateTraceExportMatchesLegacyByteForByte) {
  // Drive two networks directly (same seed, same config echo) — one
  // through the legacy StartLoad, one through an explicit degenerate
  // population — and compare the full trace exports as raw bytes.
  ExperimentConfig config = GoldenConfig();
  config.fabric.tracing = true;
  Result<std::shared_ptr<Chaincode>> chaincode =
      MakeChaincodeFor(config.workload);
  ASSERT_TRUE(chaincode.ok());

  auto run = [&](bool population) {
    Result<std::unique_ptr<WorkloadGenerator>> workload =
        MakeWorkload(config.workload, /*rich_queries=*/true);
    EXPECT_TRUE(workload.ok());
    Environment env(42);
    FabricNetwork network(config.fabric, &env, chaincode.value(),
                          std::shared_ptr<WorkloadGenerator>(
                              std::move(workload).value()));
    EXPECT_TRUE(network.Init().ok());
    if (population) {
      Status st = network.StartLoad(
          PopulationConfig::SingleClass(
              static_cast<uint64_t>(config.fabric.cluster.num_clients),
              config.arrival_rate_tps),
          config.duration);
      EXPECT_TRUE(st.ok()) << st.ToString();
    } else {
      network.StartLoad(config.arrival_rate_tps, config.duration);
    }
    env.RunAll();
    return network.tracer()->ExportJsonl("degeneracy-check");
  };

  std::string legacy = run(false);
  std::string degenerate = run(true);
  ASSERT_FALSE(legacy.empty());
  EXPECT_EQ(legacy, degenerate);
}

// ------------------------------------------------- arrival statistics

TEST(PopulationTest, ArrivalGapsReproduceTheNominalRate) {
  // Regression for the interarrival truncation bug: at 200k tps the
  // mean gap is 5 ticks, where float->int truncation inflated the
  // measured rate by ~10% (gaps lost half a tick each). Rounding plus
  // the >=1-tick clamp keeps the measured rate within a few percent.
  ArrivalProcess arrivals(200000.0, MmppConfig{}, Rng(3));
  const int n = 100000;
  double total_us = 0.0;
  for (int i = 0; i < n; ++i) {
    SimTime gap = arrivals.NextGap(0);
    ASSERT_GE(gap, 1);
    total_us += static_cast<double>(gap);
  }
  double measured_tps = 1e6 * n / total_us;
  double ratio = measured_tps / 200000.0;
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.03);
}

TEST(PopulationTest, MmppModulationPreservesTheLongRunMean) {
  // Two-state on/off process, equal sojourns, burst multiplier 2:
  // the long-run mean equals the nominal rate.
  MmppConfig mmpp = MmppConfig::OnOff(2.0, 1 * kSecond, 1 * kSecond);
  EXPECT_DOUBLE_EQ(mmpp.MeanMultiplier(), 1.0);
  ArrivalProcess arrivals(1000.0, mmpp, Rng(5));
  EXPECT_DOUBLE_EQ(arrivals.mean_rate_tps(), 1000.0);
  const int n = 200000;
  double total_us = 0.0;
  for (int i = 0; i < n; ++i) {
    total_us += static_cast<double>(arrivals.NextGap(0));
  }
  double measured_tps = 1e6 * n / total_us;
  EXPECT_GT(measured_tps, 900.0);
  EXPECT_LT(measured_tps, 1100.0);

  // A silent state really is silent: on/off with multiplier 0 halves
  // the long-run rate.
  MmppConfig onoff = MmppConfig::OnOff(2.0, 1 * kSecond, 3 * kSecond);
  EXPECT_DOUBLE_EQ(onoff.MeanMultiplier(), 0.5);
}

// ---------------------------------------------------- aggregated path

TEST(PopulationTest, AggregatedClassSubmitsAtTheAggregateRate) {
  // 100k users at 0.005 tps each == 500 tps through ONE arrival actor.
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 10 * kSecond;
  config.population = PopulationConfig::SingleClass(100000, 500.0);
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // ~5000 Poisson arrivals (sd ~71); a generous band still catches a
  // broken superposition (per-user instead of aggregate rate would be
  // off by orders of magnitude).
  EXPECT_GT(r.value().submitted_txs, 4600u);
  EXPECT_LT(r.value().submitted_txs, 5400u);

  // Aggregation is deterministic: same seed, same fingerprint.
  Result<FailureReport> again = RunOnce(config, 42);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Fingerprint(r.value()), Fingerprint(again.value()));
}

TEST(PopulationTest, MixedClassesRunSideBySide) {
  // One aggregated heavy class plus one expanded per-client class with
  // its own mix; both contribute arrivals.
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 10 * kSecond;
  BehaviourClass heavy;
  heavy.name = "heavy";
  heavy.num_users = 10000;
  heavy.per_user_tps = 0.02;  // 200 tps aggregated
  BehaviourClass analysts;
  analysts.name = "analysts";
  analysts.num_users = 3;  // expands: below the threshold
  analysts.per_user_tps = 10.0;
  analysts.mix = WorkloadMix::kReadHeavy;
  config.population.classes = {heavy, analysts};
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // ~2300 total arrivals across both classes.
  EXPECT_GT(r.value().submitted_txs, 2000u);
  EXPECT_LT(r.value().submitted_txs, 2600u);
}

// ------------------------------------- streaming paths vs dense paths

TEST(PopulationTest, StreamingPathsMatchTheDenseReport) {
  // Same run through (a) dense ledger + dense tracer and (b) streaming
  // ledger + streaming tracer: every exact count must be identical;
  // sketch-backed latency quantiles must sit within the documented
  // error of the dense estimates.
  ExperimentConfig dense_config = GoldenConfig();
  dense_config.fabric.tracing = true;
  Result<FailureReport> dense = RunOnce(dense_config, 42);
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();

  ExperimentConfig streaming_config = GoldenConfig();
  streaming_config.fabric.streaming_obs = true;
  streaming_config.fabric.streaming_ledger = true;
  Result<FailureReport> streaming = RunOnce(streaming_config, 42);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();

  const FailureReport& d = dense.value();
  const FailureReport& s = streaming.value();
  EXPECT_EQ(s.ledger_txs, d.ledger_txs);
  EXPECT_EQ(s.valid_txs, d.valid_txs);
  EXPECT_EQ(s.endorsement_failures, d.endorsement_failures);
  EXPECT_EQ(s.mvcc_intra, d.mvcc_intra);
  EXPECT_EQ(s.mvcc_inter, d.mvcc_inter);
  EXPECT_EQ(s.phantom, d.phantom);
  EXPECT_EQ(s.submitted_txs, d.submitted_txs);
  EXPECT_EQ(s.app_errors, d.app_errors);
  EXPECT_DOUBLE_EQ(s.total_failure_pct, d.total_failure_pct);
  EXPECT_DOUBLE_EQ(s.committed_throughput_tps, d.committed_throughput_tps);
  EXPECT_DOUBLE_EQ(s.valid_throughput_tps, d.valid_throughput_tps);
  // The mean is exact in both paths (sum/count over the same values).
  EXPECT_NEAR(s.avg_latency_s, d.avg_latency_s, 1e-9);
  // Quantiles: sketch guarantees 1%; the dense histogram itself is
  // approximate, so compare with a combined band.
  EXPECT_NEAR(s.p50_latency_s, d.p50_latency_s, 0.1 * d.p50_latency_s);
  EXPECT_NEAR(s.p99_latency_s, d.p99_latency_s, 0.1 * d.p99_latency_s);
}

TEST(PopulationTest, StreamingTracerStoresOnlyExemplars) {
  ExperimentConfig config = GoldenConfig();
  config.fabric.streaming_obs = true;
  Result<std::shared_ptr<Chaincode>> chaincode =
      MakeChaincodeFor(config.workload);
  ASSERT_TRUE(chaincode.ok());
  Result<std::unique_ptr<WorkloadGenerator>> workload =
      MakeWorkload(config.workload, /*rich_queries=*/true);
  ASSERT_TRUE(workload.ok());
  Environment env(42);
  FabricNetwork network(config.fabric, &env, chaincode.value(),
                        std::shared_ptr<WorkloadGenerator>(
                            std::move(workload).value()));
  ASSERT_TRUE(network.Init().ok());
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();

  const Tracer* tracer = network.tracer();
  ASSERT_NE(tracer, nullptr);
  EXPECT_TRUE(tracer->streaming());
  // ~2000 transactions observed, none of them retained as dense spans
  // once terminal; only the bounded exemplar reservoir survives.
  EXPECT_GT(tracer->size(), 1500u);
  EXPECT_EQ(tracer->stored_traces(), 0u);
  EXPECT_LE(tracer->exemplars().size(), 32u);
  EXPECT_GT(tracer->exemplars().size(), 0u);
  // Aggregates are still queryable and complete.
  const PhaseSketches& phases = tracer->phases();
  EXPECT_GT(phases.total.count(), 0u);
  EXPECT_GT(tracer->failure_counts().size(), 0u);
  EXPECT_FALSE(tracer->TopConflictingKeys(5).empty());
  // Memory footprint is a handful of sketches + <=32 exemplars, far
  // below one dense span per transaction.
  EXPECT_LT(tracer->ApproxMemoryBytes(), 512u * 1024u);
}

TEST(PopulationTest, StreamingLedgerRejectsFaultPlans) {
  ExperimentConfig config = GoldenConfig();
  config.fabric.streaming_ledger = true;
  config.fabric.faults = FaultPlan{}.Crash(/*peer=*/1, 1 * kSecond);
  Result<FailureReport> r = RunOnce(config, 42);
  EXPECT_FALSE(r.ok());
}

// ----------------------------------------------------------- validation

TEST(PopulationTest, ValidateRejectsDegenerateConfigs) {
  EXPECT_FALSE(PopulationConfig{}.Validate().ok());

  PopulationConfig zero_users = PopulationConfig::SingleClass(5, 100.0);
  zero_users.classes[0].num_users = 0;
  EXPECT_FALSE(zero_users.Validate().ok());

  PopulationConfig zero_rate = PopulationConfig::SingleClass(5, 100.0);
  zero_rate.classes[0].per_user_tps = 0.0;
  EXPECT_FALSE(zero_rate.Validate().ok());

  PopulationConfig bad_mmpp = PopulationConfig::SingleClass(5, 100.0);
  bad_mmpp.classes[0].mmpp.states = {MmppState{-1.0, 1 * kSecond},
                                     MmppState{1.0, 1 * kSecond}};
  EXPECT_FALSE(bad_mmpp.Validate().ok());

  PopulationConfig silent = PopulationConfig::SingleClass(5, 100.0);
  silent.classes[0].mmpp.states = {MmppState{0.0, 1 * kSecond},
                                   MmppState{0.0, 1 * kSecond}};
  EXPECT_FALSE(silent.Validate().ok());

  EXPECT_TRUE(PopulationConfig::SingleClass(5, 100.0).Validate().ok());

  // The network surfaces validation errors through StartLoad's status.
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 1 * kSecond;
  config.population = PopulationConfig::SingleClass(5, 100.0);
  config.population.classes[0].per_user_tps = -1.0;
  Result<FailureReport> r = RunOnce(config, 42);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace fabricsim
