#include <gtest/gtest.h>

#include "src/chaincode/genchain.h"
#include "src/chaincode/genchain_emitter.h"
#include "src/chaincode/stub.h"
#include "src/peer/committer.h"
#include "src/statedb/memory_state_db.h"

namespace fabricsim {
namespace {

TEST(GenChaincodeSpecTest, PaperDefaultShape) {
  GenChaincodeSpec spec = GenChaincodeSpec::PaperDefault();
  EXPECT_EQ(spec.functions.size(), 5u);
  EXPECT_EQ(spec.initial_keys, 100000u);
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(GenChaincodeSpecTest, ValidateRejectsBadSpecs) {
  GenChaincodeSpec empty;
  EXPECT_FALSE(empty.Validate().ok());

  GenChaincodeSpec dup = GenChaincodeSpec::PaperDefault();
  dup.functions.push_back(dup.functions[0]);
  EXPECT_EQ(dup.Validate().code(), StatusCode::kAlreadyExists);

  GenChaincodeSpec negative = GenChaincodeSpec::PaperDefault();
  negative.functions[0].reads = -1;
  EXPECT_FALSE(negative.Validate().ok());

  GenChaincodeSpec useless = GenChaincodeSpec::PaperDefault();
  useless.functions[0] = GenFunctionSpec{"noop", 0, 0, 0, 0, 0, false};
  EXPECT_FALSE(useless.Validate().ok());
}

TEST(GenFunctionSpecTest, ArgCount) {
  GenFunctionSpec fn{"mixed", 2, 1, 1, 1, 2, false};
  EXPECT_EQ(fn.ArgCount(), 2 + 1 + 1 + 1 + 4);
}

class GenChaincodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GenChaincodeSpec spec = GenChaincodeSpec::PaperDefault(/*keys=*/100);
    cc_ = std::make_unique<GenChaincode>(spec);
    ASSERT_TRUE(ApplyBootstrap(db_, cc_->BootstrapState()).ok());
  }
  MemoryStateDb db_;
  std::unique_ptr<GenChaincode> cc_;
};

TEST_F(GenChaincodeTest, BootstrapsKeySpace) {
  EXPECT_EQ(db_.Size(), 100u);
  EXPECT_TRUE(db_.Get(GenChaincode::Key(0)).has_value());
  EXPECT_TRUE(db_.Get(GenChaincode::Key(99)).has_value());
  EXPECT_FALSE(db_.Get(GenChaincode::Key(100)).has_value());
}

TEST_F(GenChaincodeTest, ReadFunction) {
  ChaincodeStub stub(db_, false);
  ASSERT_TRUE(
      cc_->Invoke(stub, Invocation{"readKeys", {GenChaincode::Key(5)}}).ok());
  EXPECT_EQ(stub.rwset().reads.size(), 1u);
  EXPECT_TRUE(stub.rwset().writes.empty());
}

TEST_F(GenChaincodeTest, InsertIsBlindWrite) {
  // Inserts must carry no read dependency (paper: insert-heavy
  // workloads avoid MVCC conflicts).
  ChaincodeStub stub(db_, false);
  ASSERT_TRUE(
      cc_->Invoke(stub, Invocation{"insertKeys", {GenChaincode::Key(500)}})
          .ok());
  EXPECT_TRUE(stub.rwset().reads.empty());
  EXPECT_EQ(stub.rwset().writes.size(), 1u);
}

TEST_F(GenChaincodeTest, UpdateIsReadModifyWrite) {
  ChaincodeStub stub(db_, false);
  ASSERT_TRUE(
      cc_->Invoke(stub, Invocation{"updateKeys", {GenChaincode::Key(7)}})
          .ok());
  EXPECT_EQ(stub.rwset().reads.size(), 1u);
  EXPECT_EQ(stub.rwset().writes.size(), 1u);
}

TEST_F(GenChaincodeTest, DeleteFunction) {
  ChaincodeStub stub(db_, false);
  ASSERT_TRUE(
      cc_->Invoke(stub, Invocation{"deleteKeys", {GenChaincode::Key(9)}})
          .ok());
  ASSERT_EQ(stub.rwset().writes.size(), 1u);
  EXPECT_TRUE(stub.rwset().writes[0].is_delete);
}

TEST_F(GenChaincodeTest, RangeReadFunction) {
  ChaincodeStub stub(db_, false);
  ASSERT_TRUE(cc_->Invoke(stub, Invocation{"rangeReadKeys",
                                           {GenChaincode::Key(10),
                                            GenChaincode::Key(14)}})
                  .ok());
  ASSERT_EQ(stub.rwset().range_queries.size(), 1u);
  EXPECT_EQ(stub.rwset().range_queries[0].reads.size(), 4u);
  EXPECT_TRUE(stub.rwset().range_queries[0].phantom_check);
}

TEST_F(GenChaincodeTest, RichVariantUsesQueryResult) {
  GenChaincodeSpec spec = GenChaincodeSpec::PaperDefault(50);
  spec.functions[4].use_rich_query = true;
  GenChaincode rich_cc(spec);
  MemoryStateDb db;
  ASSERT_TRUE(ApplyBootstrap(db, rich_cc.BootstrapState()).ok());
  ChaincodeStub stub(db, /*rich=*/true);
  ASSERT_TRUE(rich_cc
                  .Invoke(stub, Invocation{"rangeReadKeys",
                                           {GenChaincode::Key(0),
                                            GenChaincode::Key(4)}})
                  .ok());
  ASSERT_EQ(stub.rwset().range_queries.size(), 1u);
  EXPECT_FALSE(stub.rwset().range_queries[0].phantom_check);
}

TEST_F(GenChaincodeTest, RejectsMissingArgs) {
  ChaincodeStub stub(db_, false);
  EXPECT_FALSE(cc_->Invoke(stub, Invocation{"rangeReadKeys", {"one"}}).ok());
  EXPECT_FALSE(cc_->Invoke(stub, Invocation{"unknown", {}}).ok());
}

TEST_F(GenChaincodeTest, MultiActionFunction) {
  GenChaincodeSpec spec;
  spec.initial_keys = 20;
  spec.functions = {GenFunctionSpec{"combo", 2, 1, 1, 1, 1, false}};
  ASSERT_TRUE(spec.Validate().ok());
  GenChaincode cc(spec);
  MemoryStateDb db;
  ASSERT_TRUE(ApplyBootstrap(db, cc.BootstrapState()).ok());
  ChaincodeStub stub(db, false);
  Invocation inv{"combo",
                 {GenChaincode::Key(1), GenChaincode::Key(2),
                  GenChaincode::Key(30), GenChaincode::Key(3),
                  GenChaincode::Key(4), GenChaincode::Key(5),
                  GenChaincode::Key(8)}};
  ASSERT_TRUE(cc.Invoke(stub, inv).ok());
  // 2 point reads + 1 update-read.
  EXPECT_EQ(stub.rwset().reads.size(), 3u);
  // 1 insert + 1 update + 1 delete.
  EXPECT_EQ(stub.rwset().writes.size(), 3u);
  EXPECT_EQ(stub.rwset().range_queries.size(), 1u);
}

// ----------------------------------------------------------- Emitter

TEST(GenchainEmitterTest, EmitsWellFormedGo) {
  GenChaincodeSpec spec = GenChaincodeSpec::PaperDefault();
  std::string go = EmitGoChaincode(spec);
  EXPECT_NE(go.find("package main"), std::string::npos);
  EXPECT_NE(go.find("shim.ChaincodeStubInterface"), std::string::npos);
  for (const GenFunctionSpec& fn : spec.functions) {
    EXPECT_NE(go.find("func (c *GenChain) " + fn.name), std::string::npos)
        << fn.name;
    EXPECT_NE(go.find("case \"" + fn.name + "\""), std::string::npos);
  }
  EXPECT_NE(go.find("stub.GetStateByRange"), std::string::npos);
  EXPECT_NE(go.find("stub.DelState"), std::string::npos);
  // Balanced braces — cheap syntactic sanity check.
  EXPECT_EQ(std::count(go.begin(), go.end(), '{'),
            std::count(go.begin(), go.end(), '}'));
}

TEST(GenchainEmitterTest, RichQueryVariant) {
  GenChaincodeSpec spec;
  spec.functions = {GenFunctionSpec{"richScan", 0, 0, 0, 0, 1, true}};
  std::string go = EmitGoChaincode(spec);
  EXPECT_NE(go.find("stub.GetQueryResult"), std::string::npos);
  EXPECT_EQ(go.find("GetStateByRange"), std::string::npos);
}

}  // namespace
}  // namespace fabricsim
