#include <gtest/gtest.h>

#include "src/core/block_size_advisor.h"
#include "src/core/experiment.h"
#include "src/core/recommendations.h"
#include "src/core/runner.h"
#include "src/core/sweeps.h"

namespace fabricsim {
namespace {

ExperimentConfig FastConfig() {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 5 * kSecond;
  config.arrival_rate_tps = 40;
  config.repetitions = 2;
  return config;
}

TEST(ExperimentConfigTest, DefaultsMatchTable3) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  EXPECT_EQ(config.fabric.variant, FabricVariant::kFabric14);
  EXPECT_EQ(config.fabric.db_type, DatabaseType::kCouchDb);
  EXPECT_EQ(config.workload.chaincode, "ehr");
  EXPECT_EQ(config.fabric.block_size, 100u);
  EXPECT_DOUBLE_EQ(config.arrival_rate_tps, 100.0);
  EXPECT_EQ(config.fabric.cluster.num_orgs, 2);
  EXPECT_EQ(config.fabric.cluster.peers_per_org, 2);
  EXPECT_DOUBLE_EQ(config.workload.zipf_skew, 1.0);
  EXPECT_EQ(config.workload.mix, WorkloadMix::kUniform);

  ExperimentConfig c2 = ExperimentConfig::DefaultsC2();
  EXPECT_EQ(c2.fabric.cluster.num_orgs, 8);
  EXPECT_EQ(c2.fabric.cluster.peers_per_org, 4);
  EXPECT_EQ(c2.fabric.cluster.num_clients, 25);
}

TEST(ExperimentConfigTest, DescribeMentionsKeyKnobs) {
  std::string desc = ExperimentConfig::Defaults().Describe();
  EXPECT_NE(desc.find("ehr"), std::string::npos);
  EXPECT_NE(desc.find("CouchDB"), std::string::npos);
  EXPECT_NE(desc.find("bs=100"), std::string::npos);
}

TEST(MakeChaincodeForTest, AllNames) {
  for (const char* name : {"ehr", "dv", "scm", "drm", "genchain"}) {
    WorkloadConfig wc;
    wc.chaincode = name;
    EXPECT_TRUE(MakeChaincodeFor(wc).ok()) << name;
  }
  WorkloadConfig bad;
  bad.chaincode = "nope";
  EXPECT_FALSE(MakeChaincodeFor(bad).ok());
}

TEST(RunnerTest, RunsAndAverages) {
  ExperimentConfig config = FastConfig();
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().repetitions.size(), 2u);
  EXPECT_GT(result.value().mean.ledger_txs, 0u);
  // Percentages are internally consistent.
  const FailureReport& mean = result.value().mean;
  EXPECT_NEAR(mean.total_failure_pct,
              mean.endorsement_pct + mean.mvcc_pct + mean.phantom_pct +
                  mean.reorder_abort_pct,
              0.2);
}

TEST(RunnerTest, RunOnceIsDeterministic) {
  ExperimentConfig config = FastConfig();
  auto a = RunOnce(config, 99);
  auto b = RunOnce(config, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().ledger_txs, b.value().ledger_txs);
  EXPECT_DOUBLE_EQ(a.value().total_failure_pct, b.value().total_failure_pct);
}

TEST(RunnerTest, RejectsBadChaincode) {
  ExperimentConfig config = FastConfig();
  config.workload.chaincode = "bogus";
  EXPECT_FALSE(RunExperiment(config).ok());
}

TEST(FailureReportTest, AverageOfIdenticalIsIdentity) {
  FailureReport r;
  r.ledger_txs = 100;
  r.total_failure_pct = 25.0;
  r.avg_latency_s = 1.5;
  FailureReport mean = FailureReport::Average({r, r, r});
  EXPECT_EQ(mean.ledger_txs, 100u);
  EXPECT_DOUBLE_EQ(mean.total_failure_pct, 25.0);
  EXPECT_DOUBLE_EQ(mean.avg_latency_s, 1.5);
}

TEST(FailureReportTest, ToStringMentionsFailures) {
  FailureReport r;
  r.ledger_txs = 10;
  r.total_failure_pct = 50.0;
  std::string s = r.ToString();
  EXPECT_NE(s.find("failures"), std::string::npos);
  EXPECT_NE(s.find("50.00%"), std::string::npos);
}

TEST(SweepsTest, BlockSizeSweepFindsExtremes) {
  ExperimentConfig config = FastConfig();
  config.repetitions = 1;
  auto search = FindBestBlockSize(config, {10, 100});
  ASSERT_TRUE(search.ok());
  EXPECT_EQ(search.value().points.size(), 2u);
  EXPECT_LE(search.value().min_failure_pct, search.value().max_failure_pct);
  EXPECT_NE(search.value().best_block_size, 0u);
}

TEST(SweepsTest, RateSweepOrdersPoints) {
  ExperimentConfig config = FastConfig();
  config.repetitions = 1;
  auto points = RunSweep(config, ArrivalRateSweepSpec({20, 60}));
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points.value().size(), 2u);
  EXPECT_DOUBLE_EQ(points.value()[0].value, 20);
  EXPECT_GT(points.value()[1].report.ledger_txs,
            points.value()[0].report.ledger_txs);
}

// ------------------------------------------------- BlockSizeAdvisor

TEST(BlockSizeAdvisorTest, DefaultSlopeWithoutObservations) {
  BlockSizeAdvisor advisor(0.5);
  EXPECT_DOUBLE_EQ(advisor.slope(), 0.5);
  EXPECT_EQ(advisor.Recommend(100), 50u);
}

TEST(BlockSizeAdvisorTest, FitsLinearRelation) {
  BlockSizeAdvisor advisor;
  // Paper Fig. 4: best block size grows ~linearly with the rate.
  advisor.AddObservation(10, 10);
  advisor.AddObservation(50, 50);
  advisor.AddObservation(100, 100);
  advisor.AddObservation(200, 200);
  EXPECT_NEAR(advisor.slope(), 1.0, 1e-9);
  EXPECT_EQ(advisor.Recommend(150), 150u);
}

TEST(BlockSizeAdvisorTest, ClampsToBounds) {
  BlockSizeAdvisor advisor(1.0);
  EXPECT_EQ(advisor.Recommend(1), advisor.min_size);
  EXPECT_EQ(advisor.Recommend(100000), advisor.max_size);
}

TEST(BlockSizeAdvisorTest, WindowBasedRecommendation) {
  BlockSizeAdvisor advisor(0.5);
  // 1200 transactions in 10 s = 120 tps -> 60.
  EXPECT_EQ(advisor.RecommendFromWindow(1200, 10.0), 60u);
  EXPECT_EQ(advisor.RecommendFromWindow(100, 0.0), advisor.min_size);
}

TEST(BlockSizeAdvisorTest, IgnoresInvalidObservations) {
  BlockSizeAdvisor advisor(0.7);
  advisor.AddObservation(0, 100);
  advisor.AddObservation(-5, 100);
  EXPECT_EQ(advisor.observation_count(), 0u);
  EXPECT_DOUBLE_EQ(advisor.slope(), 0.7);
}

// ------------------------------------------------- Recommendations

TEST(RecommendationsTest, EndorsementRuleFires) {
  ExperimentConfig config = ExperimentConfig::DefaultsC2();
  FailureReport report;
  report.ledger_txs = 100;
  report.valid_txs = 60;
  report.endorsement_pct = 20.0;
  report.total_failure_pct = 40.0;
  auto recs = DeriveRecommendations(config, report);
  bool found = false;
  for (const auto& rec : recs) found |= rec.rule == "network-design";
  EXPECT_TRUE(found);
}

TEST(RecommendationsTest, VariantRuleSuggestsReordering) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  FailureReport report;
  report.ledger_txs = 100;
  report.valid_txs = 50;
  report.mvcc_pct = 40.0;
  report.total_failure_pct = 45.0;
  auto recs = DeriveRecommendations(config, report);
  bool found = false;
  for (const auto& rec : recs) {
    if (rec.rule == "variant") {
      found = true;
      EXPECT_NE(rec.advice.find("Fabric++"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RecommendationsTest, WarnsAgainstUselessReordering) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.fabric.variant = FabricVariant::kFabricPlusPlus;
  FailureReport report;
  report.ledger_txs = 100;
  report.valid_txs = 99;
  report.mvcc_pct = 0.5;
  auto recs = DeriveRecommendations(config, report);
  bool found = false;
  for (const auto& rec : recs) {
    if (rec.rule == "variant") {
      found = true;
      EXPECT_NE(rec.advice.find("overhead"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RecommendationsTest, PhantomRuleFires) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.workload.chaincode = "dv";
  FailureReport report;
  report.ledger_txs = 100;
  report.phantom_pct = 30.0;
  report.total_failure_pct = 30.0;
  auto recs = DeriveRecommendations(config, report);
  bool found = false;
  for (const auto& rec : recs) found |= rec.rule == "chaincode-design";
  EXPECT_TRUE(found);
}

TEST(RecommendationsTest, FormatNumbersEntries) {
  std::vector<Recommendation> recs = {{"a", "first"}, {"b", "second"}};
  std::string text = FormatRecommendations(recs);
  EXPECT_NE(text.find("1. [a] first"), std::string::npos);
  EXPECT_NE(text.find("2. [b] second"), std::string::npos);
  EXPECT_NE(FormatRecommendations({}).find("No recommendations"),
            std::string::npos);
}

}  // namespace
}  // namespace fabricsim
