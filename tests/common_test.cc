#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/strings.h"

namespace fabricsim {
namespace {

// ----------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// -------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123, 5);
  Rng b(123, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(10), 10u);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformU64Unbiased) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) counts[rng.UniformU64(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 5, kSamples / 50);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Exponential(10.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.3);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  SummaryStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 3000, 300);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(21);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

// --------------------------------------------------------- Zipfian

TEST(ZipfianTest, ThetaZeroIsUniform) {
  Rng rng(23);
  ZipfianGenerator zipf(100, 0.0);
  std::vector<int> counts(100, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.Next(rng)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 100, kSamples / 200);
  }
}

TEST(ZipfianTest, RanksAreMonotonicallyPopular) {
  Rng rng(29);
  ZipfianGenerator zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) counts[zipf.NextRank(rng)]++;
  // Rank 0 must dominate and the head must hold most of the mass.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[100]);
  int head = 0;
  for (int i = 0; i < 50; ++i) head += counts[i];
  EXPECT_GT(head, 200000 / 3);
}

TEST(ZipfianTest, SkewOneSupported) {
  // theta == 1 hits the alpha-infinite special case.
  Rng rng(31);
  ZipfianGenerator zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    uint64_t rank = zipf.NextRank(rng);
    ASSERT_LT(rank, 100u);
    counts[rank]++;
  }
  EXPECT_GT(counts[0], counts[50]);
}

TEST(ZipfianTest, HigherSkewConcentratesMore) {
  Rng rng1(37), rng2(37);
  ZipfianGenerator mild(1000, 0.5), heavy(1000, 2.0);
  int mild_rank0 = 0, heavy_rank0 = 0;
  for (int i = 0; i < 50000; ++i) {
    if (mild.NextRank(rng1) == 0) ++mild_rank0;
    if (heavy.NextRank(rng2) == 0) ++heavy_rank0;
  }
  EXPECT_GT(heavy_rank0, mild_rank0);
}

TEST(ZipfianTest, ScatterStaysInRange) {
  Rng rng(41);
  ZipfianGenerator zipf(37, 1.2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 37u);
  }
}

// ------------------------------------------------------------ Stats

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
}

TEST(SummaryStatsTest, MergeMatchesCombined) {
  SummaryStats a, b, all;
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformRange(0, 100);
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(HistogramTest, MeanAndPercentiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.mean(), 500.5, 0.01);
  EXPECT_NEAR(h.Percentile(0.5), 500, 40);
  EXPECT_NEAR(h.Percentile(0.99), 990, 80);
  EXPECT_GE(h.Percentile(1.0), h.Percentile(0.0));
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

// ---------------------------------------------------------- Strings

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f %s", 3, 2.5, "z"), "x=3 y=2.5 z");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrSplit) {
  std::vector<std::string> parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, StrTrim) {
  EXPECT_EQ(StrTrim("  hi \n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringsTest, PadKeyLexicographicOrder) {
  EXPECT_EQ(PadKey(7, 4), "0007");
  EXPECT_EQ(PadKey(12345, 4), "12345");
  // Padded keys sort numerically under lexicographic comparison.
  EXPECT_LT(PadKey(9, 4), PadKey(10, 4));
  EXPECT_LT(PadKey(99, 4), PadKey(100, 4));
}

TEST(StringsTest, FnvDeterministicAndSensitive) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
  EXPECT_NE(Fnv1aCombine(Fnv1a("a"), "b"), Fnv1aCombine(Fnv1a("b"), "a"));
  EXPECT_NE(Fnv1aCombine(1ull, uint64_t{2}), Fnv1aCombine(1ull, uint64_t{3}));
}

// --------------------------------------------------------- SimTime

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(FromSeconds(1.5), 1500000);
  EXPECT_EQ(FromMillis(2.5), 2500);
  EXPECT_DOUBLE_EQ(ToSeconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(ToMillis(kSecond), 1000.0);
}

}  // namespace
}  // namespace fabricsim
