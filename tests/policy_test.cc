#include <gtest/gtest.h>

#include "src/policy/endorsement_policy.h"
#include "src/policy/policy_parser.h"
#include "src/policy/policy_presets.h"

namespace fabricsim {
namespace {

std::set<OrgId> Orgs(std::initializer_list<OrgId> orgs) { return orgs; }

TEST(PolicyTest, SignedByLeaf) {
  EndorsementPolicy p = EndorsementPolicy::SignedBy(2);
  EXPECT_TRUE(p.Evaluate(Orgs({2})));
  EXPECT_FALSE(p.Evaluate(Orgs({1})));
  EXPECT_EQ(p.MinSignatures(), 1);
  EXPECT_EQ(p.SubPolicyCount(), 0);
  EXPECT_EQ(p.ToString(), "Org2");
}

TEST(PolicyTest, NOutOfEvaluation) {
  EndorsementPolicy p = EndorsementPolicy::NOutOf(
      2, {EndorsementPolicy::SignedBy(0), EndorsementPolicy::SignedBy(1),
          EndorsementPolicy::SignedBy(2)});
  EXPECT_TRUE(p.Evaluate(Orgs({0, 2})));
  EXPECT_TRUE(p.Evaluate(Orgs({0, 1, 2})));
  EXPECT_FALSE(p.Evaluate(Orgs({1})));
  EXPECT_FALSE(p.Evaluate(Orgs({})));
  EXPECT_EQ(p.MinSignatures(), 2);
}

TEST(PolicyTest, NestedPolicies) {
  // 2-of[1-of[Org0], 1-of[Org1, Org2]]
  EndorsementPolicy p = EndorsementPolicy::NOutOf(
      2, {EndorsementPolicy::NOutOf(1, {EndorsementPolicy::SignedBy(0)}),
          EndorsementPolicy::NOutOf(1, {EndorsementPolicy::SignedBy(1),
                                        EndorsementPolicy::SignedBy(2)})});
  EXPECT_TRUE(p.Evaluate(Orgs({0, 1})));
  EXPECT_TRUE(p.Evaluate(Orgs({0, 2})));
  EXPECT_FALSE(p.Evaluate(Orgs({1, 2})));  // Org0 is mandatory
  EXPECT_EQ(p.SubPolicyCount(), 2);
  EXPECT_EQ(p.MentionedOrgs(), Orgs({0, 1, 2}));
}

TEST(PolicyTest, VsccCostGrowsWithSignaturesAndSubPolicies) {
  EndorsementPolicy flat = EndorsementPolicy::NOutOf(
      2, {EndorsementPolicy::SignedBy(0), EndorsementPolicy::SignedBy(1)});
  EndorsementPolicy nested = EndorsementPolicy::NOutOf(
      2, {EndorsementPolicy::NOutOf(1, {EndorsementPolicy::SignedBy(0)}),
          EndorsementPolicy::NOutOf(1, {EndorsementPolicy::SignedBy(1)})});
  EXPECT_GT(nested.VsccCost(2), flat.VsccCost(2));
  EXPECT_GT(flat.VsccCost(8), flat.VsccCost(2));
}

// ------------------------------------------------------------ Parser

TEST(PolicyParserTest, ParsesLeaf) {
  auto p = PolicyParser::Parse("Org3");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().ToString(), "Org3");
}

TEST(PolicyParserTest, ParsesFlatNOutOf) {
  auto p = PolicyParser::Parse("2-of[Org0,Org1,Org2]");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().ToString(), "2-of[Org0,Org1,Org2]");
  EXPECT_TRUE(p.value().Evaluate(Orgs({1, 2})));
}

TEST(PolicyParserTest, ParsesNestedWithWhitespace) {
  auto p = PolicyParser::Parse(" 2-of[ 1-of[Org0] , 1-of[Org1, Org2] ] ");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().SubPolicyCount(), 2);
}

TEST(PolicyParserTest, RoundTripsToString) {
  const std::string text = "3-of[Org0,2-of[Org1,Org2,Org3],Org4]";
  auto p = PolicyParser::Parse(text);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().ToString(), text);
  auto p2 = PolicyParser::Parse(p.value().ToString());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2.value().ToString(), text);
}

TEST(PolicyParserTest, RejectsMalformed) {
  EXPECT_FALSE(PolicyParser::Parse("").ok());
  EXPECT_FALSE(PolicyParser::Parse("2-of[]").ok());
  EXPECT_FALSE(PolicyParser::Parse("2-of[Org0").ok());
  EXPECT_FALSE(PolicyParser::Parse("Org").ok());
  EXPECT_FALSE(PolicyParser::Parse("Org0 trailing").ok());
  // n out of range: more required than sub-policies available.
  EXPECT_FALSE(PolicyParser::Parse("3-of[Org0,Org1]").ok());
  EXPECT_FALSE(PolicyParser::Parse("0-of[Org0]").ok());
}

// ----------------------------------------------------------- Presets

TEST(PolicyPresetsTest, P0RequiresAllOrgs) {
  EndorsementPolicy p0 = MakePolicy(PolicyPreset::kP0AllOrgs, 4);
  EXPECT_TRUE(p0.Evaluate(Orgs({0, 1, 2, 3})));
  EXPECT_FALSE(p0.Evaluate(Orgs({0, 1, 2})));
  EXPECT_EQ(p0.MinSignatures(), 4);
  EXPECT_EQ(p0.SubPolicyCount(), 0);
}

TEST(PolicyPresetsTest, P1OrgZeroPlusAnyOther) {
  EndorsementPolicy p1 = MakePolicy(PolicyPreset::kP1OrgZeroPlusAny, 4);
  EXPECT_TRUE(p1.Evaluate(Orgs({0, 3})));
  EXPECT_FALSE(p1.Evaluate(Orgs({1, 2})));
  EXPECT_FALSE(p1.Evaluate(Orgs({0})));
  EXPECT_EQ(p1.MinSignatures(), 2);
  EXPECT_EQ(p1.SubPolicyCount(), 1);  // the paper: P1 has one sub-policy
}

TEST(PolicyPresetsTest, P2OneFromEachHalf) {
  EndorsementPolicy p2 = MakePolicy(PolicyPreset::kP2OneFromEachHalf, 4);
  EXPECT_TRUE(p2.Evaluate(Orgs({0, 2})));
  EXPECT_TRUE(p2.Evaluate(Orgs({1, 3})));
  EXPECT_FALSE(p2.Evaluate(Orgs({0, 1})));  // both from first half
  EXPECT_FALSE(p2.Evaluate(Orgs({2, 3})));  // both from second half
  EXPECT_EQ(p2.MinSignatures(), 2);
  EXPECT_EQ(p2.SubPolicyCount(), 2);  // the paper: P2 has two sub-policies
}

TEST(PolicyPresetsTest, P3Quorum) {
  EndorsementPolicy p3 = MakePolicy(PolicyPreset::kP3Quorum, 4);
  // Quorum of 4 orgs = 3.
  EXPECT_TRUE(p3.Evaluate(Orgs({0, 1, 2})));
  EXPECT_FALSE(p3.Evaluate(Orgs({0, 1})));
  EXPECT_EQ(p3.MinSignatures(), 3);
}

TEST(PolicyPresetsTest, EquivalentFormulations) {
  // Paper §5.1.4: "4-of"[2-of[Org0,Org1], 2-of[Org2,Org3]]... both
  // formulations require all four orgs. (The flat 4-of and the nested
  // version accept exactly the same signer sets.)
  auto nested =
      PolicyParser::Parse("2-of[2-of[Org0,Org1],2-of[Org2,Org3]]").value();
  auto flat = PolicyParser::Parse("4-of[Org0,Org1,Org2,Org3]").value();
  for (int mask = 0; mask < 16; ++mask) {
    std::set<OrgId> signers;
    for (int org = 0; org < 4; ++org) {
      if (mask & (1 << org)) signers.insert(org);
    }
    EXPECT_EQ(nested.Evaluate(signers), flat.Evaluate(signers))
        << "mask=" << mask;
  }
  // ...but the nested one costs more VSCC time (two sub-policies).
  EXPECT_GT(nested.VsccCost(4), flat.VsccCost(4));
}

TEST(PolicyTest, VsccCostSplitsSerialAndParallel) {
  EndorsementPolicy nested = EndorsementPolicy::NOutOf(
      2, {EndorsementPolicy::NOutOf(1, {EndorsementPolicy::SignedBy(0)}),
          EndorsementPolicy::NOutOf(1, {EndorsementPolicy::SignedBy(1)})});
  EXPECT_EQ(nested.VsccCost(4),
            nested.VsccParallelCost(4) + nested.VsccSerialCost());
  // The serial part grows with sub-policies; leaf policies have none.
  EXPECT_GT(nested.VsccSerialCost(), 0);
  EXPECT_EQ(EndorsementPolicy::SignedBy(0).VsccSerialCost(), 0);
}

TEST(PolicyTest, ChooseSatisfyingOrgsIsMinimalAndSatisfying) {
  for (PolicyPreset preset :
       {PolicyPreset::kP0AllOrgs, PolicyPreset::kP1OrgZeroPlusAny,
        PolicyPreset::kP2OneFromEachHalf, PolicyPreset::kP3Quorum}) {
    EndorsementPolicy policy = MakePolicy(preset, 8);
    for (uint64_t rotation = 0; rotation < 16; ++rotation) {
      std::set<OrgId> chosen = policy.ChooseSatisfyingOrgs(rotation);
      EXPECT_TRUE(policy.Evaluate(chosen))
          << PolicyPresetToString(preset) << " rotation " << rotation;
      EXPECT_EQ(static_cast<int>(chosen.size()), policy.MinSignatures())
          << PolicyPresetToString(preset);
    }
  }
}

TEST(PolicyTest, ChooseSatisfyingOrgsRotates) {
  // P1: Org0 plus any other — the "other" must rotate across calls.
  EndorsementPolicy p1 = MakePolicy(PolicyPreset::kP1OrgZeroPlusAny, 8);
  std::set<std::set<OrgId>> distinct;
  for (uint64_t rotation = 0; rotation < 8; ++rotation) {
    distinct.insert(p1.ChooseSatisfyingOrgs(rotation));
  }
  EXPECT_GT(distinct.size(), 1u);
}

TEST(PolicyPresetsTest, Names) {
  EXPECT_STREQ(PolicyPresetToString(PolicyPreset::kP0AllOrgs), "P0");
  EXPECT_STREQ(PolicyPresetToString(PolicyPreset::kP3Quorum), "P3");
}

}  // namespace
}  // namespace fabricsim
