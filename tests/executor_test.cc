// Executor / threaded-execution tests: the unified Schedule(when,
// action, ScheduleOpts) surface, the caller-participates ParallelFor,
// ValidateBlockParallel ≡ ValidateBlock on conflict-heavy blocks, and
// the hard determinism contract of ExecutionMode::kThreaded — pinned
// pre-threading golden fingerprints and trace exports must reproduce
// bitwise under commit pipelines at threads ∈ {1, 4}, across compat,
// replicated-ordering, multi-channel, and active-fault-mix runs.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/strings.h"
#include "src/core/runner.h"
#include "src/peer/validator.h"
#include "src/policy/policy_presets.h"
#include "src/sim/environment.h"
#include "src/sim/executor.h"
#include "src/statedb/memory_state_db.h"

namespace fabricsim {
namespace {

// ---------------------------------------------------- scheduling API

TEST(ExecutorScheduleTest, UnifiedScheduleMatchesLegacyShims) {
  Environment env(7);
  std::vector<int> order;
  env.Schedule(20, [&] { order.push_back(2); });
  env.Schedule(10, [&] { order.push_back(1); });
  // Absolute scheduling, including the clamp-to-now of past times.
  env.Schedule(15, [&] { order.push_back(3); }, ScheduleOpts{false, true});
  env.RunUntil(12);
  env.Schedule(5, [&] { order.push_back(4); }, ScheduleOpts{false, true});
  env.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 4, 3, 2}));
}

TEST(ExecutorScheduleTest, DaemonOptDoesNotKeepTheRunAlive) {
  Environment env(7);
  int real = 0;
  std::atomic<int> daemon_fires{0};
  std::function<void()> rearm = [&] {
    ++daemon_fires;
    env.Schedule(10, rearm, ScheduleOpts{true, false});
  };
  env.Schedule(10, rearm, ScheduleOpts{true, false});
  env.Schedule(35, [&] { ++real; });
  env.RunAll();
  EXPECT_EQ(real, 1);
  // Fired at 10/20/30 while real work remained, then quiesced.
  EXPECT_EQ(daemon_fires.load(), 3);
  EXPECT_EQ(env.now(), 35);
}

TEST(ExecutorScheduleTest, SerialModeHasNoWorkers) {
  Environment env(7);
  EXPECT_EQ(env.executor().mode(), ExecutionMode::kSerial);
  EXPECT_EQ(env.executor().threads(), 0);
  // Async degenerates to inline execution.
  bool ran = false;
  env.executor().Async([&] { ran = true; });
  EXPECT_TRUE(ran);
}

// ---------------------------------------------------- ParallelFor

TEST(ExecutorParallelForTest, CoversEveryIndexExactlyOnce) {
  Executor executor(ExecutionConfig::Threaded(4));
  EXPECT_EQ(executor.threads(), 4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  executor.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  executor.ParallelFor(0, [&](size_t) { FAIL(); });
}

TEST(ExecutorParallelForTest, NestedInsideAsyncDoesNotDeadlock) {
  // A ParallelFor issued from a pool task must complete even when the
  // pool is saturated: the caller self-drains the index space.
  Executor executor(ExecutionConfig::Threaded(2));
  std::atomic<int> total{0};
  std::atomic<int> outer_done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int t = 0; t < 4; ++t) {
    executor.Async([&] {
      executor.ParallelFor(64, [&](size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
      if (outer_done.fetch_add(1) + 1 == 4) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return outer_done.load() == 4; });
  EXPECT_EQ(total.load(), 4 * 64);
}

// ---------------------------------------------------- parallel validator

EndorsementPolicy TwoOrgPolicy() {
  return MakePolicy(PolicyPreset::kP0AllOrgs, 2);
}

Transaction MakeTx(TxId id, ReadWriteSet rwset, bool endorsed_ok = true) {
  Transaction tx;
  tx.id = id;
  tx.rwset = std::move(rwset);
  uint64_t digest = tx.rwset.Digest();
  tx.endorsements.push_back(Endorsement{0, 0, digest, true});
  tx.endorsements.push_back(
      Endorsement{1, 1, endorsed_ok ? digest : digest ^ 0xbad, true});
  return tx;
}

std::string ResultFingerprint(const ValidationOutcome& o) {
  std::string out;
  for (const TxValidationResult& r : o.results) {
    out += StrFormat(
        "%d/%d tx=%llu key=%s rf=%d rv=%llu.%u of=%d ov=%llu.%u\n",
        static_cast<int>(r.code), static_cast<int>(r.mvcc_class),
        static_cast<unsigned long long>(r.conflicting_tx),
        r.conflicting_key.c_str(), r.read_found ? 1 : 0,
        static_cast<unsigned long long>(r.read_version.block_num),
        r.read_version.tx_num, r.observed_found ? 1 : 0,
        static_cast<unsigned long long>(r.observed_version.block_num),
        r.observed_version.tx_num);
  }
  out += StrFormat("valid=%zu updates=%zu\n", o.valid_count,
                   o.state_updates.size());
  for (const auto& [write, version] : o.state_updates) {
    out += StrFormat("%s=%s del=%d @%llu.%u\n", write.key.c_str(),
                     write.value.c_str(), write.is_delete ? 1 : 0,
                     static_cast<unsigned long long>(version.block_num),
                     version.tx_num);
  }
  return out;
}

TEST(ParallelValidatorTest, MatchesSerialOnConflictHeavyBlock) {
  MemoryStateDb db;
  for (char k = 'a'; k <= 'f'; ++k) {
    db.ApplyWrite(WriteItem{std::string(1, k), "v", false}, {0, 0});
  }
  Validator validator(TwoOrgPolicy());
  Executor executor(ExecutionConfig::Threaded(4));

  Block block;
  block.number = 3;
  // Overlay-heavy mix: chained read-write conflicts on "a" (every
  // second tx must be re-validated against the overlay and fail
  // intra-block), stale reads (inter-block), VSCC failures, deletes,
  // not-found reads, and disjoint-key txs whose prechecks survive.
  for (int i = 0; i < 24; ++i) {
    ReadWriteSet rwset;
    switch (i % 6) {
      case 0:  // conflicting chain on "a"
        rwset.reads.push_back(ReadItem{"a", {0, 0}, true});
        rwset.writes.push_back(WriteItem{"a", "w", false});
        break;
      case 1:  // stale read (inter-block)
        rwset.reads.push_back(ReadItem{"b", {9, 9}, true});
        rwset.writes.push_back(WriteItem{"b", "w", false});
        break;
      case 2:  // endorser saw no key; db has one
        rwset.reads.push_back(ReadItem{"c", {}, false});
        rwset.writes.push_back(WriteItem{"g", "w", false});
        break;
      case 3:  // clean write to a per-tx key
        rwset.reads.push_back(ReadItem{"d", {0, 0}, true});
        rwset.writes.push_back(
            WriteItem{"d" + std::to_string(i), "w", false});
        break;
      case 4:  // delete then (next round) re-read of the deleted key
        rwset.reads.push_back(ReadItem{"e", {0, 0}, true});
        rwset.writes.push_back(WriteItem{"e", "", true});
        break;
      default:  // VSCC failure
        rwset.reads.push_back(ReadItem{"f", {0, 0}, true});
        rwset.writes.push_back(WriteItem{"f", "w", false});
        break;
    }
    block.txs.push_back(
        MakeTx(100 + i, std::move(rwset), /*endorsed_ok=*/i % 6 != 5));
  }
  block.results.assign(block.txs.size(), TxValidationResult{});
  // Fabric++-style pre-aborts must be passed through untouched.
  block.results[7].code = TxValidationCode::kAbortedByReordering;

  ValidationOutcome serial = validator.ValidateBlock(db, block);
  ValidationOutcome parallel =
      validator.ValidateBlockParallel(db, block, executor);
  EXPECT_EQ(ResultFingerprint(serial), ResultFingerprint(parallel));
  EXPECT_GT(serial.valid_count, 0u);
}

TEST(ParallelValidatorTest, MatchesSerialOnPhantomRangeQueries) {
  MemoryStateDb db;
  for (int i = 0; i < 10; ++i) {
    db.ApplyWrite(WriteItem{"k" + std::to_string(i), "v", false}, {0, 0});
  }
  Validator validator(TwoOrgPolicy());
  Executor executor(ExecutionConfig::Threaded(4));

  Block block;
  block.number = 2;
  // Endorser-recorded snapshot of [k0, k5).
  RangeQueryInfo rq;
  rq.start_key = "k0";
  rq.end_key = "k5";
  for (int i = 0; i < 5; ++i) {
    rq.reads.push_back(ReadItem{"k" + std::to_string(i), {0, 0}, true});
  }
  for (int i = 0; i < 8; ++i) {
    ReadWriteSet rwset;
    if (i % 2 == 0) {
      // Writer into the queried interval: later phantom checks must
      // see the overlay write and fail deterministically.
      rwset.reads.push_back(
          ReadItem{"k" + std::to_string(i % 5), {0, 0}, true});
      rwset.writes.push_back(
          WriteItem{"k" + std::to_string(i % 5), "w", false});
    } else {
      rwset.range_queries.push_back(rq);
      rwset.writes.push_back(
          WriteItem{"out" + std::to_string(i), "w", false});
    }
    block.txs.push_back(MakeTx(200 + i, std::move(rwset)));
  }
  block.results.assign(block.txs.size(), TxValidationResult{});

  ValidationOutcome serial = validator.ValidateBlock(db, block);
  ValidationOutcome parallel =
      validator.ValidateBlockParallel(db, block, executor);
  EXPECT_EQ(ResultFingerprint(serial), ResultFingerprint(parallel));
}

// ---------------------------------------------------- golden identity

// Same fingerprints channel_test.cc pins (recorded before threaded
// execution existed): default C1 config, 20 s at 100 tps, seed 42.
std::string Fingerprint(const FailureReport& r) {
  std::string out;
  out += StrFormat(
      "ledger=%llu valid=%llu endorse=%llu mvcc_intra=%llu "
      "mvcc_inter=%llu phantom=%llu submitted=%llu app=%llu\n",
      static_cast<unsigned long long>(r.ledger_txs),
      static_cast<unsigned long long>(r.valid_txs),
      static_cast<unsigned long long>(r.endorsement_failures),
      static_cast<unsigned long long>(r.mvcc_intra),
      static_cast<unsigned long long>(r.mvcc_inter),
      static_cast<unsigned long long>(r.phantom),
      static_cast<unsigned long long>(r.submitted_txs),
      static_cast<unsigned long long>(r.app_errors));
  out += StrFormat("pct=%.17g/%.17g/%.17g/%.17g/%.17g\n", r.total_failure_pct,
                   r.endorsement_pct, r.mvcc_pct, r.phantom_pct,
                   r.early_abort_pct);
  out += StrFormat("lat=%.17g/%.17g/%.17g tput=%.17g/%.17g\n", r.avg_latency_s,
                   r.p50_latency_s, r.p99_latency_s, r.committed_throughput_tps,
                   r.valid_throughput_tps);
  return out;
}

std::string FingerprintWithChannels(const FailureReport& r) {
  std::string out = Fingerprint(r);
  for (const ChannelFailureBreakdown& c : r.per_channel) {
    out += StrFormat("ch%d=%llu/%llu/%llu/%llu/%llu/%llu %.17g/%.17g/%.17g\n",
                     c.channel, static_cast<unsigned long long>(c.ledger_txs),
                     static_cast<unsigned long long>(c.valid_txs),
                     static_cast<unsigned long long>(c.endorsement_failures),
                     static_cast<unsigned long long>(c.mvcc_intra),
                     static_cast<unsigned long long>(c.mvcc_inter),
                     static_cast<unsigned long long>(c.phantom),
                     c.total_failure_pct, c.mvcc_pct,
                     c.committed_throughput_tps);
  }
  return out;
}

constexpr char kGoldenCompat[] =
    "ledger=1998 valid=889 endorse=21 mvcc_intra=808 mvcc_inter=280 "
    "phantom=0 submitted=1998 app=0\n"
    "pct=55.505505505505504/1.0510510510510511/54.454454454454456/0/0\n"
    "lat=0.79166268968969022/0.75911118027396884/2.02848615705734 "
    "tput=95/44.450000000000003\n";

constexpr char kGoldenReplicated[] =
    "ledger=1992 valid=899 endorse=20 mvcc_intra=796 mvcc_inter=277 "
    "phantom=0 submitted=1992 app=0\n"
    "pct=54.869477911646584/1.0040160642570282/53.865461847389561/0/0\n"
    "lat=0.78060464658634665/0.74022120304450434/2.0647142323398877 "
    "tput=95/44.950000000000003\n";

constexpr size_t kGoldenCompatTraceBytes = 1052535;
constexpr uint64_t kGoldenCompatTraceHash = 8293478105143936468ull;
constexpr size_t kGoldenReplicatedTraceBytes = 1046460;
constexpr uint64_t kGoldenReplicatedTraceHash = 2292966280054001386ull;

ExperimentConfig GoldenConfig() {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 20 * kSecond;
  config.arrival_rate_tps = 100;
  return config;
}

TEST(ExecutorGoldenTest, ThreadedReproducesPinnedFingerprints) {
  for (bool replicated : {false, true}) {
    for (int threads : {1, 4}) {
      ExperimentConfig config = GoldenConfig();
      config.fabric.ordering.replicated = replicated;
      config.fabric.execution = ExecutionConfig::Threaded(threads);
      Result<FailureReport> r = RunOnce(config, 42);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      SCOPED_TRACE(StrFormat("replicated=%d threads=%d", replicated ? 1 : 0,
                             threads));
      EXPECT_EQ(Fingerprint(r.value()),
                replicated ? kGoldenReplicated : kGoldenCompat);
    }
  }
}

TEST(ExecutorGoldenTest, ThreadedMatchesSerialOnSecondSeed) {
  // No pinned golden at this seed — the contract is direct equality
  // with the serial reference on a fresh run.
  for (bool replicated : {false, true}) {
    ExperimentConfig config = GoldenConfig();
    config.duration = 10 * kSecond;
    config.fabric.ordering.replicated = replicated;
    Result<FailureReport> serial = RunOnce(config, 43);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int threads : {1, 4}) {
      config.fabric.execution = ExecutionConfig::Threaded(threads);
      Result<FailureReport> threaded = RunOnce(config, 43);
      ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
      EXPECT_EQ(Fingerprint(serial.value()), Fingerprint(threaded.value()))
          << "replicated=" << replicated << " threads=" << threads;
    }
  }
}

TEST(ExecutorGoldenTest, MultiChannelThreadedMatchesSerial) {
  for (uint64_t seed : {42ull, 43ull}) {
    ExperimentConfig config = ExperimentConfig::Builder(GoldenConfig())
                                  .Channels(4)
                                  .ChannelSkew(0.9)
                                  .Duration(10 * kSecond)
                                  .Build();
    Result<FailureReport> serial = RunOnce(config, seed);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int threads : {1, 4}) {
      config.fabric.execution = ExecutionConfig::Threaded(threads);
      Result<FailureReport> threaded = RunOnce(config, seed);
      ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
      EXPECT_EQ(FingerprintWithChannels(serial.value()),
                FingerprintWithChannels(threaded.value()))
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ExecutorGoldenTest, FaultMixThreadedMatchesSerial) {
  // An actively faulty 2-channel run: a crashed-and-replayed peer
  // exercises the pipeline's interaction with block refetch, the
  // orderer pause creates bursty cuts, the org delay skews
  // endorsement. Speculation must stay invisible through all of it.
  for (uint64_t seed : {42ull, 43ull}) {
    FaultPlan plan;
    plan.Crash(/*peer=*/1, 3 * kSecond, 6 * kSecond)
        .PauseOrderer(4 * kSecond, 5 * kSecond)
        .Delay(DelayWindow{/*org=*/1, /*node=*/-1, 30 * kMillisecond,
                           5 * kMillisecond, 2 * kSecond, 8 * kSecond});
    ExperimentConfig config = ExperimentConfig::Builder(GoldenConfig())
                                  .Channels(2)
                                  .Duration(10 * kSecond)
                                  .Faults(plan)
                                  .Build();
    Result<FailureReport> serial = RunOnce(config, seed);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int threads : {1, 4}) {
      config.fabric.execution = ExecutionConfig::Threaded(threads);
      Result<FailureReport> threaded = RunOnce(config, seed);
      ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
      EXPECT_EQ(FingerprintWithChannels(serial.value()),
                FingerprintWithChannels(threaded.value()))
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(ExecutorGoldenTest, TraceExportsBitIdenticalUnderThreads) {
  // The full per-transaction trace export — every span, timestamp and
  // attribution row — must keep the pre-threading pinned bytes.
  for (bool replicated : {false, true}) {
    ExperimentConfig config = GoldenConfig();
    config.fabric.tracing = true;
    config.fabric.ordering.replicated = replicated;
    config.fabric.execution = ExecutionConfig::Threaded(4);
    config.repetitions = 1;
    Result<ExperimentResult> result = RunExperiment(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().traces.size(), 1u);
    const std::string& trace = result.value().traces[0];
    SCOPED_TRACE(StrFormat("replicated=%d", replicated ? 1 : 0));
    EXPECT_EQ(trace.size(), replicated ? kGoldenReplicatedTraceBytes
                                       : kGoldenCompatTraceBytes);
    EXPECT_EQ(Fnv1a(trace), replicated ? kGoldenReplicatedTraceHash
                                       : kGoldenCompatTraceHash);
  }
}

}  // namespace
}  // namespace fabricsim
