#include <gtest/gtest.h>

#include <vector>

#include "src/sim/environment.h"
#include "src/sim/event_queue.h"
#include "src/sim/network.h"
#include "src/sim/work_queue.h"

namespace fabricsim {
namespace {

// ------------------------------------------------------ EventQueue

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.Push(30, [&] { fired.push_back(3); });
  q.Push(10, [&] { fired.push_back(1); });
  q.Push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.Pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.Pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, PeekTime) {
  EventQueue q;
  q.Push(42, [] {});
  EXPECT_EQ(q.PeekTime(), 42);
  EXPECT_EQ(q.size(), 1u);
}

// ----------------------------------------------------- Environment

TEST(EnvironmentTest, ClockAdvancesWithEvents) {
  Environment env(1);
  SimTime seen = -1;
  env.Schedule(100, [&] { seen = env.now(); });
  env.RunAll();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(env.now(), 100);
}

TEST(EnvironmentTest, RunUntilStopsAtBoundary) {
  Environment env(1);
  int fired = 0;
  env.Schedule(50, [&] { ++fired; });
  env.Schedule(150, [&] { ++fired; });
  env.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(env.now(), 100);
  env.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(EnvironmentTest, NestedScheduling) {
  Environment env(1);
  std::vector<SimTime> times;
  env.Schedule(10, [&] {
    times.push_back(env.now());
    env.Schedule(5, [&] { times.push_back(env.now()); });
  });
  env.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
  EXPECT_EQ(env.events_executed(), 2u);
}

TEST(EnvironmentTest, NegativeDelayClampsToNow) {
  Environment env(1);
  SimTime seen = -1;
  env.Schedule(20, [&] {
    env.Schedule(-5, [&] { seen = env.now(); });
  });
  env.RunAll();
  EXPECT_EQ(seen, 20);
}

// ------------------------------------------------------- WorkQueue

TEST(WorkQueueTest, SerializesTasks) {
  Environment env(1);
  WorkQueue q("test");
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    q.Submit(
        env, [] { return SimTime{100}; },
        [&] { completions.push_back(env.now()); });
  }
  env.RunAll();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(q.total_service(), 300);
  EXPECT_EQ(q.tasks_completed(), 3u);
}

TEST(WorkQueueTest, WorkRunsAtStartTime) {
  // The at_start phase must observe the simulation state at the moment
  // the server picks the task up, not at submission.
  Environment env(1);
  WorkQueue q("test");
  SimTime start_time_second_task = -1;
  q.Submit(env, [] { return SimTime{500}; }, {});
  q.Submit(
      env,
      [&] {
        start_time_second_task = env.now();
        return SimTime{10};
      },
      {});
  env.RunAll();
  EXPECT_EQ(start_time_second_task, 500);
}

TEST(WorkQueueTest, IdleServerStartsImmediately) {
  Environment env(1);
  WorkQueue q("test");
  SimTime done_at = -1;
  env.Schedule(50, [&] {
    q.Submit(env, [] { return SimTime{25}; }, [&] { done_at = env.now(); });
  });
  env.RunAll();
  EXPECT_EQ(done_at, 75);
}

TEST(WorkQueueTest, QueueDelayTracked) {
  Environment env(1);
  WorkQueue q("test");
  q.Submit(env, [] { return SimTime{1000}; }, {});
  q.Submit(env, [] { return SimTime{0}; }, {});
  env.RunAll();
  // Second task waited 1 ms behind the first.
  EXPECT_NEAR(q.queue_delay_stats().max(), 1.0, 1e-9);
}

TEST(WorkQueueTest, DepthReflectsBacklog) {
  Environment env(1);
  WorkQueue q("test");
  q.Submit(env, [] { return SimTime{10}; }, {});
  q.Submit(env, [] { return SimTime{10}; }, {});
  EXPECT_EQ(q.depth(), 2u);
  env.RunAll();
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_FALSE(q.busy());
}

// --------------------------------------------------------- Network

TEST(NetworkTest, DelayWithinConfiguredBounds) {
  NetworkConfig config;
  config.base_latency = 1000;
  config.jitter = 200;
  config.bandwidth_bytes_per_us = 0;  // disable payload term
  Network net(config, Rng(5));
  for (int i = 0; i < 1000; ++i) {
    SimTime d = net.SampleDelay(0, 1, 0, 0);
    EXPECT_GE(d, 800);
    EXPECT_LE(d, 1200);
  }
}

TEST(NetworkTest, SelfMessagesAreFree) {
  Network net(NetworkConfig{}, Rng(5));
  EXPECT_EQ(net.SampleDelay(3, 3, 1000, 0), 0);
}

TEST(NetworkTest, PayloadAddsTransferTime) {
  NetworkConfig config;
  config.base_latency = 100;
  config.jitter = 0;
  config.bandwidth_bytes_per_us = 10.0;
  Network net(config, Rng(5));
  EXPECT_EQ(net.SampleDelay(0, 1, 1000, 0), 100 + 100);
}

TEST(NetworkTest, InjectedDelayAppliesToNode) {
  NetworkConfig config;
  config.base_latency = 100;
  config.jitter = 0;
  config.bandwidth_bytes_per_us = 0;
  Network net(config, Rng(5));
  net.InjectDelay(7, InjectedDelay{100000, 0});
  EXPECT_EQ(net.SampleDelay(0, 7, 0, 0), 100100);
  EXPECT_EQ(net.SampleDelay(7, 0, 0, 0), 100100);
  EXPECT_EQ(net.SampleDelay(0, 1, 0, 0), 100);
}

TEST(NetworkTest, InjectedDelayWindowOnlyAppliesInsideWindow) {
  NetworkConfig config;
  config.base_latency = 100;
  config.jitter = 0;
  config.bandwidth_bytes_per_us = 0;
  Network net(config, Rng(5));
  net.InjectDelay(7, InjectedDelay{100000, 0, /*from=*/kSecond,
                                   /*to=*/2 * kSecond});
  EXPECT_EQ(net.SampleDelay(0, 7, 0, 0), 100);
  EXPECT_EQ(net.SampleDelay(0, 7, 0, kSecond), 100100);
  EXPECT_EQ(net.SampleDelay(0, 7, 0, 2 * kSecond - 1), 100100);
  EXPECT_EQ(net.SampleDelay(0, 7, 0, 2 * kSecond), 100);
}

TEST(NetworkTest, LinkFaultDropsMessagesInsideWindow) {
  Environment env(1);
  Network net(NetworkConfig{}, Rng(5));
  net.AddLinkFault(LinkFaultRule{/*a=*/1, /*b=*/2, /*bidirectional=*/true,
                                 /*drop_prob=*/1.0, /*from=*/0,
                                 /*to=*/kSecond});
  int delivered = 0;
  net.Send(env, 1, 2, 0, [&]() { ++delivered; });   // dropped
  net.Send(env, 2, 1, 0, [&]() { ++delivered; });   // dropped (bidirectional)
  net.Send(env, 1, 3, 0, [&]() { ++delivered; });   // unaffected link
  env.RunAll();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.messages_dropped(), 2u);
  // Past the window the link heals.
  env.Schedule(2 * kSecond, [] {});
  env.RunAll();
  net.Send(env, 1, 2, 0, [&]() { ++delivered; });
  env.RunAll();
  EXPECT_EQ(delivered, 2);
}

TEST(NetworkTest, ProbabilisticDropUsesDedicatedFaultStream) {
  Environment env(1);
  NetworkConfig config;
  config.jitter = 0;
  Network net(config, Rng(5));
  net.set_fault_rng(Rng(99));
  net.AddLinkFault(LinkFaultRule{-1, -1, true, /*drop_prob=*/0.5, 0,
                                 kSimTimeNever});
  int delivered = 0;
  const int kSends = 2000;
  for (int i = 0; i < kSends; ++i) {
    net.Send(env, 1, 2, 0, [&]() { ++delivered; });
  }
  env.RunAll();
  EXPECT_GT(delivered, kSends / 3);
  EXPECT_LT(delivered, 2 * kSends / 3);
  EXPECT_EQ(static_cast<uint64_t>(delivered) + net.messages_dropped(),
            static_cast<uint64_t>(kSends));
}

TEST(NetworkTest, SendDeliversAfterDelay) {
  Environment env(1);
  NetworkConfig config;
  config.base_latency = 500;
  config.jitter = 0;
  config.bandwidth_bytes_per_us = 0;
  Network net(config, Rng(5));
  SimTime delivered_at = -1;
  net.Send(env, 0, 1, 0, [&] { delivered_at = env.now(); });
  env.RunAll();
  EXPECT_EQ(delivered_at, 500);
  EXPECT_EQ(net.messages_sent(), 1u);
}

}  // namespace
}  // namespace fabricsim
