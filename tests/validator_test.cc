#include <gtest/gtest.h>

#include "src/peer/committer.h"
#include "src/peer/validator.h"
#include "src/policy/policy_presets.h"
#include "src/statedb/memory_state_db.h"

namespace fabricsim {
namespace {

// Two-org P0 policy: both orgs must endorse.
EndorsementPolicy TwoOrgPolicy() {
  return MakePolicy(PolicyPreset::kP0AllOrgs, 2);
}

// Builds a transaction with consistent endorsements from both orgs.
Transaction MakeTx(TxId id, ReadWriteSet rwset) {
  Transaction tx;
  tx.id = id;
  tx.rwset = std::move(rwset);
  uint64_t digest = tx.rwset.Digest();
  tx.endorsements.push_back(Endorsement{0, 0, digest, true});
  tx.endorsements.push_back(Endorsement{1, 1, digest, true});
  return tx;
}

ReadWriteSet ReadWrite(const std::string& read_key, Version read_version,
                       const std::string& write_key) {
  ReadWriteSet rwset;
  rwset.reads.push_back(ReadItem{read_key, read_version, true});
  rwset.writes.push_back(WriteItem{write_key, "new", false});
  return rwset;
}

class ValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.ApplyWrite(WriteItem{"a", "va", false}, {0, 0});
    db_.ApplyWrite(WriteItem{"b", "vb", false}, {0, 0});
    db_.ApplyWrite(WriteItem{"c", "vc", false}, {0, 0});
  }

  Block MakeBlock(std::vector<Transaction> txs) {
    Block block;
    block.number = 1;
    block.txs = std::move(txs);
    block.results.assign(block.txs.size(), TxValidationResult{});
    return block;
  }

  MemoryStateDb db_;
  Validator validator_{TwoOrgPolicy()};
};

TEST_F(ValidatorTest, ValidTransactionCommits) {
  Block block = MakeBlock({MakeTx(1, ReadWrite("a", {0, 0}, "a"))});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kValid);
  EXPECT_EQ(outcome.valid_count, 1u);
  ASSERT_EQ(outcome.state_updates.size(), 1u);
  EXPECT_EQ(outcome.state_updates[0].second, (Version{1, 0}));
}

TEST_F(ValidatorTest, EndorsementPolicyFailureOnDigestMismatch) {
  // Org1's endorsement signed a different rw-set (divergent world
  // state): policy P0 can no longer be satisfied.
  Transaction tx = MakeTx(1, ReadWrite("a", {0, 0}, "a"));
  tx.endorsements[1].rwset_digest ^= 0xdead;
  Block block = MakeBlock({tx});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code,
            TxValidationCode::kEndorsementPolicyFailure);
  EXPECT_TRUE(outcome.state_updates.empty());
}

TEST_F(ValidatorTest, QuorumPolicyToleratesOneMismatch) {
  Validator quorum(MakePolicy(PolicyPreset::kP3Quorum, 3));  // needs 2 of 3
  Transaction tx;
  tx.id = 1;
  tx.rwset = ReadWrite("a", {0, 0}, "a");
  uint64_t digest = tx.rwset.Digest();
  tx.endorsements = {Endorsement{0, 0, digest, true},
                     Endorsement{1, 1, digest, true},
                     Endorsement{2, 2, digest ^ 1, true}};  // stale org
  Block block = MakeBlock({tx});
  ValidationOutcome outcome = quorum.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kValid);
}

TEST_F(ValidatorTest, InvalidSignatureDoesNotCount) {
  Transaction tx = MakeTx(1, ReadWrite("a", {0, 0}, "a"));
  tx.endorsements[0].signature_valid = false;
  Block block = MakeBlock({tx});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code,
            TxValidationCode::kEndorsementPolicyFailure);
}

TEST_F(ValidatorTest, InterBlockMvccConflict) {
  // The read version predates the current world state.
  db_.ApplyWrite(WriteItem{"a", "newer", false}, {5, 2});
  Block block = MakeBlock({MakeTx(1, ReadWrite("a", {0, 0}, "a"))});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kMvccReadConflict);
  EXPECT_EQ(outcome.results[0].mvcc_class, MvccClass::kInterBlock);
}

TEST_F(ValidatorTest, IntraBlockMvccConflict) {
  // Tx1 writes "a"; tx2 read "a" at the pre-block version — the
  // in-block write invalidates it (paper Eq. 3).
  Block block = MakeBlock({MakeTx(1, ReadWrite("b", {0, 0}, "a")),
                           MakeTx(2, ReadWrite("a", {0, 0}, "c"))});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kValid);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kMvccReadConflict);
  EXPECT_EQ(outcome.results[1].mvcc_class, MvccClass::kIntraBlock);
  EXPECT_EQ(outcome.results[1].conflicting_tx, 1u);
}

TEST_F(ValidatorTest, FailedTxDoesNotPoisonLaterReads) {
  // Tx1 fails (stale read) so its write must NOT invalidate tx2.
  db_.ApplyWrite(WriteItem{"b", "newer", false}, {7, 0});
  Block block = MakeBlock({MakeTx(1, ReadWrite("b", {0, 0}, "a")),
                           MakeTx(2, ReadWrite("a", {0, 0}, "c"))});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kMvccReadConflict);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kValid);
}

TEST_F(ValidatorTest, ReadOfDeletedKeyFails) {
  ReadWriteSet deleter;
  deleter.writes.push_back(WriteItem{"a", "", true});
  ReadWriteSet reader;
  reader.reads.push_back(ReadItem{"a", {0, 0}, true});
  Block block = MakeBlock({MakeTx(1, deleter), MakeTx(2, reader)});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kValid);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kMvccReadConflict);
  EXPECT_EQ(outcome.results[1].mvcc_class, MvccClass::kIntraBlock);
}

TEST_F(ValidatorTest, ReadOfMissingKeyValidWhileStillMissing) {
  ReadWriteSet rwset;
  rwset.reads.push_back(ReadItem{"ghost", {}, false});
  Block block = MakeBlock({MakeTx(1, rwset)});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kValid);
}

TEST_F(ValidatorTest, ReadOfMissingKeyFailsOnceCreated) {
  ReadWriteSet creator;
  creator.writes.push_back(WriteItem{"ghost", "now-exists", false});
  ReadWriteSet reader;
  reader.reads.push_back(ReadItem{"ghost", {}, false});
  Block block = MakeBlock({MakeTx(1, creator), MakeTx(2, reader)});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kMvccReadConflict);
}

// ----------------------------------------------------- Phantom reads

ReadWriteSet RangeRead(const StateDatabase& db, const std::string& start,
                       const std::string& end) {
  ReadWriteSet rwset;
  RangeQueryInfo rq;
  rq.start_key = start;
  rq.end_key = end;
  for (const StateEntry& e : db.GetRange(start, end)) {
    rq.reads.push_back(ReadItem{e.key, e.vv.version, true});
  }
  rwset.range_queries.push_back(rq);
  return rwset;
}

TEST_F(ValidatorTest, PhantomInsertDetected) {
  ReadWriteSet scan = RangeRead(db_, "a", "d");
  ReadWriteSet inserter;
  inserter.writes.push_back(WriteItem{"bb", "phantom", false});
  Block block = MakeBlock({MakeTx(1, inserter), MakeTx(2, scan)});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kPhantomReadConflict);
}

TEST_F(ValidatorTest, PhantomDeleteDetected) {
  ReadWriteSet scan = RangeRead(db_, "a", "d");
  ReadWriteSet deleter;
  deleter.writes.push_back(WriteItem{"b", "", true});
  Block block = MakeBlock({MakeTx(1, deleter), MakeTx(2, scan)});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kPhantomReadConflict);
}

TEST_F(ValidatorTest, PhantomUpdateDetected) {
  ReadWriteSet scan = RangeRead(db_, "a", "d");
  ReadWriteSet updater;
  updater.writes.push_back(WriteItem{"b", "changed", false});
  Block block = MakeBlock({MakeTx(1, updater), MakeTx(2, scan)});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kPhantomReadConflict);
}

TEST_F(ValidatorTest, WriteOutsideRangeDoesNotPhantom) {
  ReadWriteSet scan = RangeRead(db_, "a", "c");  // covers a, b
  ReadWriteSet writer;
  writer.writes.push_back(WriteItem{"c", "outside", false});
  Block block = MakeBlock({MakeTx(1, writer), MakeTx(2, scan)});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kValid);
}

TEST_F(ValidatorTest, RichQueryNotPhantomChecked) {
  ReadWriteSet scan = RangeRead(db_, "a", "d");
  scan.range_queries[0].phantom_check = false;  // rich query
  ReadWriteSet updater;
  updater.writes.push_back(WriteItem{"b", "changed", false});
  Block block = MakeBlock({MakeTx(1, updater), MakeTx(2, scan)});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kValid);
}

TEST_F(ValidatorTest, InterBlockPhantom) {
  ReadWriteSet scan = RangeRead(db_, "a", "d");
  db_.ApplyWrite(WriteItem{"ab", "inserted-later", false}, {9, 0});
  Block block = MakeBlock({MakeTx(1, scan)});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kPhantomReadConflict);
}

TEST_F(ValidatorTest, PreAbortedTxSkipped) {
  Block block = MakeBlock({MakeTx(1, ReadWrite("a", {0, 0}, "a"))});
  block.results[0].code = TxValidationCode::kAbortedByReordering;
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kAbortedByReordering);
  EXPECT_TRUE(outcome.state_updates.empty());
}

TEST_F(ValidatorTest, LastWriteWinsWithinBlock) {
  ReadWriteSet w1;
  w1.writes.push_back(WriteItem{"x", "first", false});
  ReadWriteSet w2;
  w2.writes.push_back(WriteItem{"x", "second", false});
  Block block = MakeBlock({MakeTx(1, w1), MakeTx(2, w2)});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kValid);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kValid);
  ASSERT_TRUE(CommitStateUpdates(db_, outcome.state_updates).ok());
  EXPECT_EQ(db_.Get("x")->value, "second");
  EXPECT_EQ(db_.Get("x")->version, (Version{1, 1}));
}

TEST_F(ValidatorTest, CommitAppliesVersions) {
  Block block = MakeBlock({MakeTx(1, ReadWrite("a", {0, 0}, "a"))});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  ASSERT_TRUE(CommitStateUpdates(db_, outcome.state_updates).ok());
  EXPECT_EQ(db_.Get("a")->version, (Version{1, 0}));
  EXPECT_EQ(db_.Get("a")->value, "new");
}

// Serializability property: the committed transactions of a block are
// equivalent to executing them serially in block order against the
// pre-block state.
TEST_F(ValidatorTest, CommittedPrefixIsSeriallyConsistent) {
  // tx1: read a write b; tx2: read b write c (conflicts with tx1's
  // write -> must fail); tx3: read c write a (c unchanged -> valid).
  Block block = MakeBlock({MakeTx(1, ReadWrite("a", {0, 0}, "b")),
                           MakeTx(2, ReadWrite("b", {0, 0}, "c")),
                           MakeTx(3, ReadWrite("c", {0, 0}, "a"))});
  ValidationOutcome outcome = validator_.ValidateBlock(db_, block);
  EXPECT_EQ(outcome.results[0].code, TxValidationCode::kValid);
  EXPECT_EQ(outcome.results[1].code, TxValidationCode::kMvccReadConflict);
  EXPECT_EQ(outcome.results[2].code, TxValidationCode::kValid);
}

}  // namespace
}  // namespace fabricsim
