// Verifies the paper's Table 2: every chaincode function performs
// exactly the documented number of read (R), write (W) and range-read
// (RR) operations. This pins the conflict footprint of the workloads
// to the paper's.
#include <gtest/gtest.h>

#include <memory>

#include "src/chaincode/digital_voting.h"
#include "src/chaincode/drm.h"
#include "src/chaincode/ehr.h"
#include "src/chaincode/registry.h"
#include "src/chaincode/stub.h"
#include "src/chaincode/supply_chain.h"
#include "src/peer/committer.h"
#include "src/statedb/memory_state_db.h"

namespace fabricsim {
namespace {

struct OpsCase {
  const char* chaincode;
  const char* function;
  std::vector<std::string> args;
  size_t reads;
  size_t writes;
  size_t range_reads;
  bool needs_couchdb;  // rich-query functions
};

std::ostream& operator<<(std::ostream& os, const OpsCase& c) {
  return os << c.chaincode << "." << c.function;
}

class ChaincodeOpsTest : public ::testing::TestWithParam<OpsCase> {};

std::shared_ptr<Chaincode> MakeChaincode(const std::string& name) {
  if (name == "ehr") return std::make_shared<EhrChaincode>();
  if (name == "dv") return std::make_shared<DigitalVotingChaincode>();
  if (name == "scm") return std::make_shared<SupplyChainChaincode>();
  if (name == "drm") return std::make_shared<DrmChaincode>();
  return nullptr;
}

TEST_P(ChaincodeOpsTest, MatchesTable2) {
  const OpsCase& c = GetParam();
  std::shared_ptr<Chaincode> chaincode = MakeChaincode(c.chaincode);
  ASSERT_NE(chaincode, nullptr);

  MemoryStateDb db;
  ASSERT_TRUE(ApplyBootstrap(db, chaincode->BootstrapState()).ok());

  ChaincodeStub stub(db, /*rich_queries_supported=*/true);
  Status st = chaincode->Invoke(stub, Invocation{c.function, c.args});
  ASSERT_TRUE(st.ok()) << st.ToString();

  EXPECT_EQ(stub.rwset().reads.size(), c.reads) << "point reads";
  EXPECT_EQ(stub.rwset().writes.size(), c.writes) << "writes";
  EXPECT_EQ(stub.rwset().range_queries.size(), c.range_reads)
      << "range reads";
  if (c.needs_couchdb) {
    // The paper's footnote: Fabric does not detect phantoms for these
    // range reads (rich queries).
    for (const RangeQueryInfo& rq : stub.rwset().range_queries) {
      EXPECT_FALSE(rq.phantom_check);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ehr, ChaincodeOpsTest,
    ::testing::Values(
        OpsCase{"ehr", "initLedger", {}, 0, 2, 0, false},
        OpsCase{"ehr", "grantProfileAccess", {"PROF0001", "ACTOR1"}, 1, 1, 0,
                false},
        OpsCase{"ehr", "revokeProfileAccess", {"PROF0002", "ACTOR1"}, 1, 1, 0,
                false},
        OpsCase{
            "ehr", "grantEhrAccess", {"EHR0003", "PROF0003", "ACTOR2"}, 2, 2,
            0, false},
        OpsCase{
            "ehr", "revokeEhrAccess", {"EHR0004", "PROF0004", "ACTOR2"}, 2, 2,
            0, false},
        OpsCase{"ehr", "addEhr", {"EHR0005", "PROF0005", "xray"}, 2, 2, 0,
                false},
        OpsCase{"ehr", "readProfile", {"PROF0006"}, 1, 0, 0, false},
        OpsCase{"ehr", "viewPartialProfile", {"PROF0007"}, 1, 0, 0, false},
        OpsCase{"ehr", "viewEHR", {"EHR0008"}, 1, 0, 0, false},
        OpsCase{"ehr", "queryEHR", {"EHR0009"}, 1, 0, 0, false}));

INSTANTIATE_TEST_SUITE_P(
    Dv, ChaincodeOpsTest,
    ::testing::Values(
        OpsCase{"dv", "initLedger", {}, 0, 3, 0, false},
        OpsCase{"dv", "vote", {"VOTER0001", "PARTY01"}, 1, 2, 2, false},
        OpsCase{"dv", "closeElctn", {}, 1, 1, 0, false},
        OpsCase{"dv", "qryParties", {}, 1, 0, 1, false},
        OpsCase{"dv", "seeResults", {}, 1, 0, 1, false}));

INSTANTIATE_TEST_SUITE_P(
    Scm, ChaincodeOpsTest,
    ::testing::Values(
        OpsCase{"scm", "initLedger", {}, 0, 2, 0, false},
        OpsCase{"scm", "pushASN", {"ASN000000", "LSP0", "LSP1"}, 0, 1, 0,
                false},
        OpsCase{"scm",
                "Ship",
                {"ASN000000", "UNIT0_00001", "UNIT1_00001"},
                2,
                2,
                0,
                false},
        OpsCase{"scm", "Unload", {"UNIT0_00002", "LSP0"}, 2, 2, 0, false},
        OpsCase{"scm", "queryASN", {"0"}, 0, 0, 1, false},
        OpsCase{"scm", "queryStock", {"4"}, 0, 0, 1, true}));

INSTANTIATE_TEST_SUITE_P(
    Drm, ChaincodeOpsTest,
    ::testing::Values(
        OpsCase{"drm", "initLedger", {}, 0, 2, 0, false},
        OpsCase{"drm", "create", {"ART0201", "RIGHTS0201", "RH0005"}, 1, 2, 0,
                false},
        OpsCase{"drm", "play", {"ART0001", "RIGHTS0001"}, 2, 1, 0, false},
        OpsCase{"drm", "queryRghts", {"ART0002", "RIGHTS0002"}, 2, 0, 0,
                false},
        OpsCase{"drm", "viewMetaData", {"ART0003"}, 1, 0, 0, false},
        OpsCase{"drm", "calcRevenue", {"RH0002"}, 0, 0, 1, true}));

// Additional behaviour checks beyond op counts.

TEST(ChaincodeBehaviourTest, DvVoteScansFullRolls) {
  DigitalVotingChaincode dv;
  MemoryStateDb db;
  ASSERT_TRUE(ApplyBootstrap(db, dv.BootstrapState()).ok());
  ChaincodeStub stub(db, true);
  ASSERT_TRUE(
      dv.Invoke(stub, Invocation{"vote", {"VOTER0500", "PARTY05"}}).ok());
  // "the vote function queries all 1000 voters" and all 12 parties.
  ASSERT_EQ(stub.rwset().range_queries.size(), 2u);
  EXPECT_EQ(stub.rwset().range_queries[0].reads.size(), 1000u);
  EXPECT_EQ(stub.rwset().range_queries[1].reads.size(), 12u);
}

TEST(ChaincodeBehaviourTest, ScmQueryAsnScansWholeLsp) {
  SupplyChainChaincode scm;
  MemoryStateDb db;
  ASSERT_TRUE(ApplyBootstrap(db, scm.BootstrapState()).ok());
  ChaincodeStub stub(db, true);
  ASSERT_TRUE(scm.Invoke(stub, Invocation{"queryASN", {"4"}}).ok());
  // LSP4 hosts 800 units (paper §4.3).
  ASSERT_EQ(stub.rwset().range_queries.size(), 1u);
  EXPECT_EQ(stub.rwset().range_queries[0].reads.size(), 800u);
}

TEST(ChaincodeBehaviourTest, ScmShipMovesUnitBetweenPrefixes) {
  SupplyChainChaincode scm;
  MemoryStateDb db;
  ASSERT_TRUE(ApplyBootstrap(db, scm.BootstrapState()).ok());
  ChaincodeStub stub(db, true);
  ASSERT_TRUE(scm.Invoke(stub, Invocation{"Ship",
                                          {"ASN000000", "UNIT0_00003",
                                           "UNIT2_00003"}})
                  .ok());
  ASSERT_EQ(stub.rwset().writes.size(), 2u);
  EXPECT_TRUE(stub.rwset().writes[0].is_delete);
  EXPECT_EQ(stub.rwset().writes[0].key, "UNIT0_00003");
  EXPECT_FALSE(stub.rwset().writes[1].is_delete);
  EXPECT_EQ(stub.rwset().writes[1].key, "UNIT2_00003");
}

TEST(ChaincodeBehaviourTest, DvVoteFailsWhenElectionClosed) {
  DigitalVotingChaincode dv;
  MemoryStateDb db;
  ASSERT_TRUE(ApplyBootstrap(db, dv.BootstrapState()).ok());
  {
    ChaincodeStub stub(db, true);
    ASSERT_TRUE(dv.Invoke(stub, Invocation{"closeElctn", {}}).ok());
    ASSERT_TRUE(CommitStateUpdates(
                    db,
                    {{stub.rwset().writes[0], Version{1, 0}}})
                    .ok());
  }
  ChaincodeStub stub(db, true);
  Status st = dv.Invoke(stub, Invocation{"vote", {"VOTER0001", "PARTY01"}});
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ChaincodeBehaviourTest, BootstrapSizes) {
  EXPECT_EQ(EhrChaincode().BootstrapState().size(), 200u);  // 100 + 100
  EXPECT_EQ(DigitalVotingChaincode().BootstrapState().size(),
            1000u + 12u + 2u);
  EXPECT_EQ(SupplyChainChaincode().BootstrapState().size(),
            5u + 400u * 4 + 800u);
  EXPECT_EQ(DrmChaincode().BootstrapState().size(), 200u + 2 * 200u);
}

TEST(ChaincodeBehaviourTest, UnknownFunctionRejected) {
  EhrChaincode ehr;
  MemoryStateDb db;
  ChaincodeStub stub(db, true);
  EXPECT_EQ(ehr.Invoke(stub, Invocation{"bogus", {}}).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fabricsim
