// End-to-end simulations of the full E-O-V pipeline: small, fast runs
// that check the system-level invariants the study depends on.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/experiment.h"
#include "src/core/failure_report.h"
#include "src/core/runner.h"
#include "src/fabric/fabric_network.h"
#include "src/ledger/ledger_parser.h"
#include "src/workload/paper_workloads.h"

namespace fabricsim {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 10 * kSecond;
  config.arrival_rate_tps = 50;
  config.repetitions = 1;
  return config;
}

// Runs one repetition and returns (report, ledger digest) for
// determinism checks.
struct RunOutput {
  FailureReport report;
  uint64_t ledger_digest = 0;
};

RunOutput RunNetwork(const ExperimentConfig& config, uint64_t seed) {
  auto chaincode = MakeChaincodeFor(config.workload).value();
  WorkloadConfig wc = config.workload;
  if (config.fabric.variant == FabricVariant::kFabricSharp) {
    wc.include_range_reads = false;
  }
  auto workload = std::shared_ptr<WorkloadGenerator>(
      std::move(MakeWorkload(wc, config.fabric.db_type ==
                                     DatabaseType::kCouchDb)
                    .value()));
  Environment env(seed);
  FabricNetwork network(config.fabric, &env, chaincode, workload);
  EXPECT_TRUE(network.Init().ok());
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();

  RunOutput out;
  out.report = BuildFailureReport(network.ledger(), network.stats(),
                                  config.duration);
  uint64_t digest = 14695981039346656037ULL;
  for (const TxRecord& rec : LedgerParser::Parse(network.ledger())) {
    digest = digest * 1099511628211ULL + rec.id;
    digest = digest * 1099511628211ULL + static_cast<uint64_t>(rec.code);
    digest = digest * 1099511628211ULL + rec.block_number;
  }
  out.ledger_digest = digest;
  return out;
}

TEST(IntegrationTest, PipelineDeliversTransactions) {
  RunOutput out = RunNetwork(SmallConfig(), 1);
  // 50 tps for 10 s: several hundred transactions must reach the chain.
  EXPECT_GT(out.report.ledger_txs, 300u);
  EXPECT_GT(out.report.valid_txs, 0u);
  EXPECT_GT(out.report.avg_latency_s, 0.0);
}

TEST(IntegrationTest, DeterministicForSameSeed) {
  ExperimentConfig config = SmallConfig();
  config.duration = 5 * kSecond;
  RunOutput a = RunNetwork(config, 7);
  RunOutput b = RunNetwork(config, 7);
  EXPECT_EQ(a.ledger_digest, b.ledger_digest);
  EXPECT_EQ(a.report.ledger_txs, b.report.ledger_txs);
  EXPECT_DOUBLE_EQ(a.report.avg_latency_s, b.report.avg_latency_s);
}

TEST(IntegrationTest, DifferentSeedsDiffer) {
  ExperimentConfig config = SmallConfig();
  config.duration = 5 * kSecond;
  RunOutput a = RunNetwork(config, 7);
  RunOutput b = RunNetwork(config, 8);
  EXPECT_NE(a.ledger_digest, b.ledger_digest);
}

TEST(IntegrationTest, ContentionProducesMvccConflicts) {
  // EHR's 100-key space at 50 tps with skew must conflict (the paper
  // reports >40% for EHR at the defaults).
  RunOutput out = RunNetwork(SmallConfig(), 3);
  EXPECT_GT(out.report.mvcc_intra + out.report.mvcc_inter, 0u);
}

TEST(IntegrationTest, LargeKeySpaceAvoidsConflicts) {
  ExperimentConfig config = SmallConfig();
  config.workload.chaincode = "genchain";
  config.workload.mix = WorkloadMix::kReadHeavy;
  config.workload.zipf_skew = 0.0;
  config.workload.genchain_initial_keys = 100000;
  RunOutput out = RunNetwork(config, 3);
  EXPECT_LT(out.report.total_failure_pct, 5.0);
}

TEST(IntegrationTest, LevelDbFasterThanCouchDb) {
  ExperimentConfig config = SmallConfig();
  config.fabric.db_type = DatabaseType::kCouchDb;
  RunOutput couch = RunNetwork(config, 5);
  config.fabric.db_type = DatabaseType::kLevelDb;
  RunOutput level = RunNetwork(config, 5);
  EXPECT_LT(level.report.avg_latency_s, couch.report.avg_latency_s);
}

TEST(IntegrationTest, ReadOnlySkipOptionReducesLedgerTraffic) {
  ExperimentConfig config = SmallConfig();
  RunOutput submit_all = RunNetwork(config, 9);
  config.fabric.submit_read_only = false;
  RunOutput skip = RunNetwork(config, 9);
  EXPECT_LT(skip.report.ledger_txs, submit_all.report.ledger_txs);
  // The skipped transactions never fail, so they are read-only ones.
  EXPECT_GT(skip.report.submitted_txs, 0u);
}

TEST(IntegrationTest, StreamchainStreamsSingleTxBlocks) {
  ExperimentConfig config = SmallConfig();
  config.fabric.variant = FabricVariant::kStreamchain;
  config.arrival_rate_tps = 20;
  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto workload = std::shared_ptr<WorkloadGenerator>(
      std::move(MakeWorkload(config.workload, true).value()));
  Environment env(11);
  FabricNetwork network(config.fabric, &env, chaincode, workload);
  ASSERT_TRUE(network.Init().ok());
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();
  for (const Block& block : network.ledger().blocks()) {
    EXPECT_EQ(block.txs.size(), 1u);
    EXPECT_EQ(block.cut_reason, BlockCutReason::kStreaming);
  }
  EXPECT_GT(network.ledger().height(), 50u);
}

TEST(IntegrationTest, FabricSharpHasNoMvccFailuresOnChain) {
  ExperimentConfig config = SmallConfig();
  config.fabric.variant = FabricVariant::kFabricSharp;
  config.workload.chaincode = "genchain";
  config.workload.mix = WorkloadMix::kUpdateHeavy;
  config.workload.genchain_initial_keys = 200;  // force contention
  RunOutput out = RunNetwork(config, 13);
  EXPECT_EQ(out.report.mvcc_intra + out.report.mvcc_inter, 0u);
  EXPECT_EQ(out.report.phantom, 0u);
  // The conflicts became early aborts instead.
  EXPECT_GT(out.report.early_aborts, 0u);
}

TEST(IntegrationTest, FabricPlusPlusReducesIntraBlockConflicts) {
  ExperimentConfig config = SmallConfig();
  config.fabric.block_size = 50;
  config.workload.chaincode = "genchain";
  config.workload.mix = WorkloadMix::kUpdateHeavy;
  config.workload.zipf_skew = 1.0;
  config.workload.genchain_initial_keys = 300;
  RunOutput stock = RunNetwork(config, 17);
  config.fabric.variant = FabricVariant::kFabricPlusPlus;
  RunOutput fpp = RunNetwork(config, 17);
  // Reordering converts intra-block conflicts into commits (or cycle
  // aborts); the raw intra-block MVCC count must drop.
  EXPECT_LT(fpp.report.mvcc_intra, std::max<uint64_t>(stock.report.mvcc_intra, 1));
}

TEST(IntegrationTest, InjectedDelayIncreasesEndorsementFailures) {
  ExperimentConfig config = SmallConfig();
  config.duration = 15 * kSecond;
  RunOutput clean = RunNetwork(config, 19);
  config.fabric.delayed_org = 1;
  config.fabric.injected_delay = 100 * kMillisecond;
  config.fabric.injected_delay_jitter = 10 * kMillisecond;
  RunOutput delayed = RunNetwork(config, 19);
  EXPECT_GE(delayed.report.endorsement_failures,
            clean.report.endorsement_failures);
  EXPECT_GT(delayed.report.avg_latency_s, clean.report.avg_latency_s);
}

TEST(IntegrationTest, LedgerBlocksAreContiguousAndComplete) {
  RunOutput out = RunNetwork(SmallConfig(), 21);
  (void)out;
  ExperimentConfig config = SmallConfig();
  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto workload = std::shared_ptr<WorkloadGenerator>(
      std::move(MakeWorkload(config.workload, true).value()));
  Environment env(21);
  FabricNetwork network(config.fabric, &env, chaincode, workload);
  ASSERT_TRUE(network.Init().ok());
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();
  uint64_t expected = 1;
  for (const Block& block : network.ledger().blocks()) {
    EXPECT_EQ(block.number, expected++);
    EXPECT_EQ(block.results.size(), block.txs.size());
    for (const TxValidationResult& r : block.results) {
      EXPECT_NE(r.code, TxValidationCode::kNotValidated);
    }
    for (const Transaction& tx : block.txs) {
      EXPECT_GE(tx.committed_time, tx.client_submit_time);
    }
  }
  // All peers converge to the same height after drain.
  for (const auto& peer : network.peers()) {
    EXPECT_EQ(peer->committed_height(), network.ledger().height());
  }
}

TEST(IntegrationTest, InitValidatesConfig) {
  ExperimentConfig config = SmallConfig();
  config.fabric.policy_text = "1-of[Org7]";  // org 7 does not exist in C1
  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto workload = std::shared_ptr<WorkloadGenerator>(
      std::move(MakeWorkload(config.workload, true).value()));
  Environment env(1);
  FabricNetwork network(config.fabric, &env, chaincode, workload);
  EXPECT_FALSE(network.Init().ok());
}

}  // namespace
}  // namespace fabricsim
