// Scenario-pack tests: asset-transfer contract semantics (ownership
// index moves, duplicate creation, phantom-checked owner scans),
// end-to-end phantom aborts under the asset mix, pinned-channel
// affinity (unit and integration), the tpcc district hotspot seen
// through failure attribution, and golden fingerprints proving the
// four paper chaincodes run byte-identically with tpcc/asset compiled
// in and catalogued.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/chaincode/asset_transfer.h"
#include "src/chaincode/composite_key.h"
#include "src/chaincode/tpcc/tpcc_schema.h"
#include "src/channels/channel_affinity.h"
#include "src/common/strings.h"
#include "src/core/runner.h"
#include "src/fabric/fabric_network.h"
#include "src/statedb/memory_state_db.h"
#include "src/statedb/rich_query.h"
#include "src/workload/paper_workloads.h"
#include "src/workload/tpcc_workload.h"

namespace fabricsim {
namespace {

// ----------------------------------------------------- asset contract

class AssetContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const WriteItem& w : cc_.BootstrapState()) {
      db_.ApplyWrite(w, {0, 0});
    }
  }

  AssetTransferChaincode cc_;
  MemoryStateDb db_;
};

TEST_F(AssetContractTest, TransferMovesOwnershipIndexBetweenSubtrees) {
  // Asset 0 bootstraps as owner0's; move it to owner7.
  ChaincodeStub stub(db_, true);
  Status status = cc_.Invoke(stub, Invocation{"transferAsset", {"0", "7"}});
  ASSERT_TRUE(status.ok()) << status.ToString();

  bool deleted_old = false, wrote_new = false, wrote_asset = false;
  for (const WriteItem& w : stub.rwset().writes) {
    if (w.key == AssetTransferChaincode::OwnedKey(0, 0) && w.is_delete) {
      deleted_old = true;
    }
    if (w.key == AssetTransferChaincode::OwnedKey(7, 0) && !w.is_delete) {
      wrote_new = true;
    }
    if (w.key == AssetTransferChaincode::AssetKey(0) && !w.is_delete) {
      wrote_asset = true;
      EXPECT_EQ(ExtractJsonField(w.value, "owner").value_or(""),
                AssetTransferChaincode::OwnerName(7));
    }
  }
  EXPECT_TRUE(deleted_old);
  EXPECT_TRUE(wrote_new);
  EXPECT_TRUE(wrote_asset);
}

TEST_F(AssetContractTest, CreateRejectsDuplicateAndMintsFreshIds) {
  ChaincodeStub dup(db_, true);
  EXPECT_EQ(cc_.Invoke(dup, Invocation{"createAsset", {"0", "1", "500"}})
                .code(),
            StatusCode::kInvalidArgument);

  ChaincodeStub fresh(db_, true);
  int next = cc_.config().assets;
  ASSERT_TRUE(cc_.Invoke(fresh, Invocation{"createAsset",
                                           {std::to_string(next), "1", "500"}})
                  .ok());
  EXPECT_EQ(fresh.rwset().writes.size(), 2u);  // asset + ownership index
}

TEST_F(AssetContractTest, QueryByOwnerIsPhantomCheckedSubtreeScan) {
  ChaincodeStub stub(db_, true);
  ASSERT_TRUE(cc_.Invoke(stub, Invocation{"queryByOwner", {"3"}}).ok());
  ASSERT_EQ(stub.rwset().range_queries.size(), 1u);
  const RangeQueryInfo& rq = stub.rwset().range_queries[0];
  EXPECT_TRUE(rq.phantom_check);
  // 400 assets over 20 owners: 20 per subtree.
  EXPECT_EQ(rq.reads.size(), 20u);
  for (const ReadItem& r : rq.reads) {
    EXPECT_EQ(CompositeKeyObjectType(r.key), "OWNED");
  }
}

TEST_F(AssetContractTest, CreditDebitAccountMaths) {
  ChaincodeStub stub(db_, true);
  ASSERT_TRUE(cc_.Invoke(stub, Invocation{"debit", {"2", "300"}}).ok());
  ASSERT_EQ(stub.rwset().writes.size(), 1u);
  EXPECT_EQ(ExtractJsonField(stub.rwset().writes[0].value, "balance")
                .value_or(""),
            "999700");
  db_.ApplyWrite(stub.rwset().writes[0], {1, 0});

  ChaincodeStub credit(db_, true);
  ASSERT_TRUE(cc_.Invoke(credit, Invocation{"credit", {"2", "50"}}).ok());
  EXPECT_EQ(ExtractJsonField(credit.rwset().writes[0].value, "balance")
                .value_or(""),
            "999750");
}

// ------------------------------------------------ end-to-end scenarios

TEST(ScenarioTest, AssetMixProvokesPhantomAborts) {
  // The composite-key pack's point: transferAsset perturbs owner
  // subtrees that queryByOwner range-scans, so phantom aborts must
  // appear alongside plain MVCC conflicts.
  ExperimentConfig config = ExperimentConfig::Builder()
                                .Chaincode("asset")
                                .Duration(20 * kSecond)
                                .RateTps(100)
                                .Build();
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().valid_txs, 0u);
  EXPECT_GT(r.value().phantom, 0u);
}

TEST(ScenarioTest, PinnedChannelRoutesEveryTransaction) {
  // Unit: a pinned affinity has exactly one visible channel, no draws.
  ChannelAffinityConfig pinned;
  pinned.pinned_channel = 1;
  pinned.skew = 1.5;             // must be overridden by the pin
  pinned.channels_per_client = 1;
  Rng rng(9);
  for (int client = 0; client < 4; ++client) {
    ChannelAffinity affinity(pinned, /*num_channels=*/3, client);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(affinity.Pick(rng), 1);
  }
  // A pin beyond the deployment clamps to the last real channel.
  pinned.pinned_channel = 9;
  ChannelAffinity clamped(pinned, /*num_channels=*/2, 0);
  EXPECT_EQ(clamped.Pick(rng), 1);

  // Integration: every committed transaction lands on the pinned
  // channel's ledger.
  ExperimentConfig config = ExperimentConfig::Builder()
                                .Chaincode("asset")
                                .Channels(2)
                                .PinnedChannel(1)
                                .Duration(10 * kSecond)
                                .RateTps(100)
                                .Build();
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().per_channel.size(), 2u);
  EXPECT_EQ(r.value().per_channel[0].ledger_txs, 0u);
  EXPECT_GT(r.value().per_channel[1].ledger_txs, 0u);
}

TEST(ScenarioTest, TpccConflictsConcentrateOnDistrictRows) {
  // The Klenik & Kocsis headline at test scale: drive tpcc with
  // tracing on and attribute conflicts per entity — DISTRICT must
  // dominate.
  ExperimentConfig config = ExperimentConfig::Builder()
                                .Chaincode("tpcc")
                                .TpccWarehouses(1)
                                .Duration(15 * kSecond)
                                .RateTps(150)
                                .Tracing()
                                .Build();
  Result<std::shared_ptr<Chaincode>> chaincode =
      MakeChaincodeFor(config.workload);
  ASSERT_TRUE(chaincode.ok());
  Result<std::unique_ptr<WorkloadGenerator>> workload =
      MakeWorkload(config.workload, true);
  ASSERT_TRUE(workload.ok());
  Environment env(42);
  FabricNetwork network(config.fabric, &env, chaincode.value(),
                        std::shared_ptr<WorkloadGenerator>(
                            std::move(workload).value()));
  ASSERT_TRUE(network.Init().ok());
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();

  ASSERT_NE(network.tracer(), nullptr);
  auto top = network.tracer()->TopConflictingKeys(1);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(tpcc::TableForKey(top[0].first), tpcc::kDistrictTable)
      << "top conflicting key not a district row";
}

// ------------------------------------------- paper-chaincode goldens

// Exhaustive numeric fingerprint (same format as channel_test.cc).
std::string Fingerprint(const FailureReport& r) {
  std::string out;
  out += StrFormat(
      "ledger=%llu valid=%llu endorse=%llu mvcc_intra=%llu "
      "mvcc_inter=%llu phantom=%llu submitted=%llu app=%llu\n",
      static_cast<unsigned long long>(r.ledger_txs),
      static_cast<unsigned long long>(r.valid_txs),
      static_cast<unsigned long long>(r.endorsement_failures),
      static_cast<unsigned long long>(r.mvcc_intra),
      static_cast<unsigned long long>(r.mvcc_inter),
      static_cast<unsigned long long>(r.phantom),
      static_cast<unsigned long long>(r.submitted_txs),
      static_cast<unsigned long long>(r.app_errors));
  out += StrFormat("pct=%.17g/%.17g/%.17g/%.17g/%.17g\n", r.total_failure_pct,
                   r.endorsement_pct, r.mvcc_pct, r.phantom_pct,
                   r.early_abort_pct);
  out += StrFormat("lat=%.17g/%.17g/%.17g tput=%.17g/%.17g\n", r.avg_latency_s,
                   r.p50_latency_s, r.p99_latency_s, r.committed_throughput_tps,
                   r.valid_throughput_tps);
  return out;
}

// Golden fingerprints of the four paper chaincodes (default C1
// config, 20 s at 100 tps, seed 42 — the channel_test.cc golden run),
// recorded with the tpcc/asset subsystems compiled in and catalogued.
// The paper chaincodes must not shift by a byte when application
// scenarios are added: the catalog is lookup-only on these paths and
// RunOnce instantiates exactly one chaincode. "ehr" deliberately
// duplicates channel_test.cc's kGoldenCompat.
struct PaperGolden {
  const char* chaincode;
  const char* fingerprint;
};

constexpr PaperGolden kPaperGoldens[] = {
    {"ehr",
     "ledger=1998 valid=889 endorse=21 mvcc_intra=808 mvcc_inter=280 "
     "phantom=0 submitted=1998 app=0\n"
     "pct=55.505505505505504/1.0510510510510511/54.454454454454456/0/0\n"
     "lat=0.79166268968969022/0.75911118027396884/2.02848615705734 "
     "tput=95/44.450000000000003\n"},
    {"dv",
     "ledger=2024 valid=296 endorse=374 mvcc_intra=0 mvcc_inter=0 "
     "phantom=1354 submitted=2024 app=0\n"
     "pct=85.37549407114625/18.478260869565219/0/66.897233201581031/0\n"
     "lat=71.500701794466451/72.41539802538037/139.56856779725715 "
     "tput=11.65/14.800000000000001\n"},
    {"scm",
     "ledger=2012 valid=1239 endorse=64 mvcc_intra=241 mvcc_inter=97 "
     "phantom=371 submitted=2012 app=0\n"
     "pct=38.419483101391648/3.1809145129224654/16.79920477137177/"
     "18.439363817097416/0\n"
     "lat=20.541065363817115/20.863695193389376/38.860728820436243 "
     "tput=31.800000000000001/61.950000000000003\n"},
    {"drm",
     "ledger=2084 valid=1673 endorse=43 mvcc_intra=265 mvcc_inter=103 "
     "phantom=0 submitted=2084 app=0\n"
     "pct=19.72168905950096/2.0633397312859887/17.658349328214971/0/0\n"
     "lat=2.6511339966410814/2.6048969902609422/6.116775407998591 "
     "tput=85/83.650000000000006\n"},
};

TEST(ScenarioTest, PaperChaincodesByteIdenticalWithTpccCompiledIn) {
  for (const PaperGolden& golden : kPaperGoldens) {
    ExperimentConfig config = ExperimentConfig::Builder()
                                  .Chaincode(golden.chaincode)
                                  .Duration(20 * kSecond)
                                  .RateTps(100)
                                  .Build();
    Result<FailureReport> r = RunOnce(config, 42);
    ASSERT_TRUE(r.ok()) << golden.chaincode << ": " << r.status().ToString();
    EXPECT_EQ(Fingerprint(r.value()), golden.fingerprint) << golden.chaincode;
  }
}

}  // namespace
}  // namespace fabricsim
