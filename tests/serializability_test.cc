// End-to-end serializability property: Fabric's optimistic concurrency
// control guarantees that the committed transactions of a run are
// equivalent to a serial execution in commit order. We verify it by
// replaying every VALID ledger transaction — re-executing the
// chaincode from scratch against a fresh database, serially, in block
// order — and comparing the resulting world state key-for-key with the
// simulated peers' final state.
#include <gtest/gtest.h>

#include <memory>

#include "src/chaincode/stub.h"
#include "src/core/experiment.h"
#include "src/fabric/fabric_network.h"
#include "src/peer/committer.h"
#include "src/statedb/memory_state_db.h"
#include "src/workload/paper_workloads.h"

namespace fabricsim {
namespace {

struct SerializabilityCase {
  const char* chaincode;
  FabricVariant variant;
  double rate;
};

std::ostream& operator<<(std::ostream& os, const SerializabilityCase& c) {
  return os << c.chaincode << "/" << FabricVariantToString(c.variant);
}

class SerializabilityTest
    : public ::testing::TestWithParam<SerializabilityCase> {};

TEST_P(SerializabilityTest, CommittedHistoryEqualsSerialReplay) {
  const SerializabilityCase& c = GetParam();

  ExperimentConfig config = ExperimentConfig::Defaults();
  config.workload.chaincode = c.chaincode;
  config.fabric.variant = c.variant;
  config.arrival_rate_tps = c.rate;
  config.duration = 8 * kSecond;
  if (c.variant == FabricVariant::kFabricSharp) {
    config.workload.include_range_reads = false;
  }

  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto workload = std::shared_ptr<WorkloadGenerator>(std::move(
      MakeWorkload(config.workload, /*rich=*/true).value()));
  Environment env(31);
  FabricNetwork network(config.fabric, &env, chaincode, workload);
  ASSERT_TRUE(network.Init().ok());
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();
  ASSERT_GT(network.ledger().height(), 0u);

  // Serial replay: re-execute every committed transaction's original
  // invocation against a fresh replica, in commit order.
  MemoryStateDb replay;
  ASSERT_TRUE(ApplyBootstrap(replay, chaincode->BootstrapState()).ok());
  uint64_t replayed = 0;
  for (const Block& block : network.ledger().blocks()) {
    for (size_t i = 0; i < block.txs.size(); ++i) {
      if (block.results[i].code != TxValidationCode::kValid) continue;
      const Transaction& tx = block.txs[i];
      ChaincodeStub stub(replay, /*rich=*/true);
      Status st = chaincode->Invoke(stub, Invocation{tx.function, tx.args});
      ASSERT_TRUE(st.ok()) << tx.function << ": " << st.ToString();
      Version version{block.number, static_cast<uint32_t>(i)};
      std::vector<std::pair<WriteItem, Version>> updates;
      for (const WriteItem& write : stub.rwset().writes) {
        updates.emplace_back(write, version);
      }
      ASSERT_TRUE(CommitStateUpdates(replay, updates).ok());
      ++replayed;
    }
  }
  ASSERT_GT(replayed, 0u);

  // Every peer's final world state must equal the serial replay,
  // values AND versions.
  for (const auto& peer : network.peers()) {
    std::vector<StateEntry> actual = peer->state().Scan();
    std::vector<StateEntry> expected = replay.Scan();
    ASSERT_EQ(actual.size(), expected.size()) << "peer " << peer->id();
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].key, expected[i].key);
      EXPECT_EQ(actual[i].vv.value, expected[i].vv.value)
          << "key " << actual[i].key << " on peer " << peer->id();
      EXPECT_EQ(actual[i].vv.version, expected[i].vv.version)
          << "key " << actual[i].key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SerializabilityTest,
    ::testing::Values(
        SerializabilityCase{"ehr", FabricVariant::kFabric14, 60},
        SerializabilityCase{"ehr", FabricVariant::kFabricPlusPlus, 60},
        SerializabilityCase{"ehr", FabricVariant::kStreamchain, 40},
        SerializabilityCase{"ehr", FabricVariant::kFabricSharp, 60},
        SerializabilityCase{"drm", FabricVariant::kFabric14, 60},
        SerializabilityCase{"drm", FabricVariant::kFabricPlusPlus, 60},
        SerializabilityCase{"scm", FabricVariant::kFabric14, 40},
        SerializabilityCase{"genchain", FabricVariant::kFabric14, 60},
        SerializabilityCase{"genchain", FabricVariant::kFabricSharp, 60}));

}  // namespace
}  // namespace fabricsim
