#include "src/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "src/core/runner.h"
#include "src/core/sweeps.h"

namespace fabricsim {
namespace {

// Saves and restores the global job count so tests can flip it freely.
class JobsGuard {
 public:
  JobsGuard() : saved_(ParallelJobs()) {}
  ~JobsGuard() { SetParallelJobs(saved_); }

 private:
  int saved_;
};

// ------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedJob) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&count] { count.fetch_add(1); });
    // No Wait(): the destructor must drain before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitIsReusableBetweenBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  for (int i = 0; i < 10; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 11);
}

// ------------------------------------------------------ ParallelFor

TEST(ParallelForTest, EmptyJobListIsANoOp) {
  int calls = 0;
  ParallelFor(0, 4, [&calls](size_t) { ++calls; });
  ParallelFor(0, 1, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, CoversEveryIndexOnceWithMoreJobsThanThreads) {
  constexpr size_t kN = 257;  // deliberately not a multiple of the pool size
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, 4, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelMapTest, PreservesSlotOrder) {
  std::vector<int> out =
      ParallelMap<int>(100, 8, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelForTest, PropagatesExceptionFromJob) {
  auto throwing = [](size_t i) {
    if (i == 7) throw std::runtime_error("job 7 failed");
  };
  EXPECT_THROW(ParallelFor(32, 4, throwing), std::runtime_error);
  EXPECT_THROW(ParallelFor(32, 1, throwing), std::runtime_error);
}

TEST(ParallelForTest, RethrowsLowestIndexException) {
  // All jobs throw; the serial path fails at index 0 first, and the
  // parallel path must surface the same (lowest-index) error.
  for (int jobs : {1, 4}) {
    try {
      ParallelFor(16, jobs, [](size_t i) {
        throw std::runtime_error("job " + std::to_string(i));
      });
      FAIL() << "expected an exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 0") << "jobs=" << jobs;
    }
  }
}

// -------------------------------------------- Determinism regression
//
// The headline guarantee of the parallel runner: FABRICSIM_JOBS=N
// produces bitwise-identical per-repetition reports to the serial
// path, which in turn matches per-seed RunOnce calls.

ExperimentConfig SmallC1() {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 5 * kSecond;
  config.arrival_rate_tps = 40;
  config.repetitions = 3;
  return config;
}

ExperimentConfig SmallC2() {
  ExperimentConfig config = ExperimentConfig::DefaultsC2();
  config.duration = 4 * kSecond;
  config.arrival_rate_tps = 30;
  config.repetitions = 2;
  return config;
}

// Field-for-field exact equality: doubles must match bit-for-bit,
// since every repetition is a deterministic function of (config, seed).
void ExpectReportsIdentical(const FailureReport& a, const FailureReport& b) {
  EXPECT_EQ(a.ledger_txs, b.ledger_txs);
  EXPECT_EQ(a.valid_txs, b.valid_txs);
  EXPECT_EQ(a.endorsement_failures, b.endorsement_failures);
  EXPECT_EQ(a.mvcc_intra, b.mvcc_intra);
  EXPECT_EQ(a.mvcc_inter, b.mvcc_inter);
  EXPECT_EQ(a.phantom, b.phantom);
  EXPECT_EQ(a.reorder_aborts, b.reorder_aborts);
  EXPECT_EQ(a.early_aborts, b.early_aborts);
  EXPECT_EQ(a.submitted_txs, b.submitted_txs);
  EXPECT_EQ(a.app_errors, b.app_errors);
  EXPECT_EQ(a.total_failure_pct, b.total_failure_pct);
  EXPECT_EQ(a.endorsement_pct, b.endorsement_pct);
  EXPECT_EQ(a.mvcc_intra_pct, b.mvcc_intra_pct);
  EXPECT_EQ(a.mvcc_inter_pct, b.mvcc_inter_pct);
  EXPECT_EQ(a.mvcc_pct, b.mvcc_pct);
  EXPECT_EQ(a.phantom_pct, b.phantom_pct);
  EXPECT_EQ(a.reorder_abort_pct, b.reorder_abort_pct);
  EXPECT_EQ(a.early_abort_pct, b.early_abort_pct);
  EXPECT_EQ(a.avg_latency_s, b.avg_latency_s);
  EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_EQ(a.committed_throughput_tps, b.committed_throughput_tps);
  EXPECT_EQ(a.valid_throughput_tps, b.valid_throughput_tps);
}

void CheckParallelMatchesSerial(const ExperimentConfig& config) {
  JobsGuard guard;

  // Ground truth: one RunOnce per seed, fully serial.
  std::vector<FailureReport> expected;
  for (int i = 0; i < config.repetitions; ++i) {
    Result<FailureReport> report =
        RunOnce(config, config.base_seed + static_cast<uint64_t>(i));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    expected.push_back(std::move(report).value());
  }

  for (int jobs : {1, 4}) {
    SetParallelJobs(jobs);
    Result<ExperimentResult> result = RunExperiment(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().repetitions.size(), expected.size())
        << "jobs=" << jobs;
    for (size_t i = 0; i < expected.size(); ++i) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs) + " repetition=" +
                   std::to_string(i));
      ExpectReportsIdentical(expected[i], result.value().repetitions[i]);
    }
  }
}

TEST(ParallelDeterminismTest, C1RepetitionsMatchSerialRunOnce) {
  CheckParallelMatchesSerial(SmallC1());
}

TEST(ParallelDeterminismTest, C2RepetitionsMatchSerialRunOnce) {
  CheckParallelMatchesSerial(SmallC2());
}

TEST(ParallelDeterminismTest, SweepIsIdenticalAcrossJobCounts) {
  JobsGuard guard;
  ExperimentConfig config = SmallC1();
  config.repetitions = 2;
  const std::vector<uint32_t> sizes = {10, 50, 100};

  SetParallelJobs(1);
  Result<std::vector<SweepPoint>> serial =
      RunSweep(config, BlockSizeSweepSpec(sizes));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  SetParallelJobs(4);
  Result<std::vector<SweepPoint>> parallel =
      RunSweep(config, BlockSizeSweepSpec(sizes));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(serial.value().size(), parallel.value().size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    SCOPED_TRACE("block size " + std::to_string(sizes[i]));
    EXPECT_DOUBLE_EQ(serial.value()[i].value, parallel.value()[i].value);
    ExpectReportsIdentical(serial.value()[i].report,
                           parallel.value()[i].report);
  }
}

TEST(ParallelDeterminismTest, ErrorsMatchSerialFirstFailure) {
  JobsGuard guard;
  ExperimentConfig config = SmallC1();
  config.workload.chaincode = "bogus";
  SetParallelJobs(4);
  Result<ExperimentResult> result = RunExperiment(config);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace fabricsim
