#include <gtest/gtest.h>

#include "src/ext/fabricpp/conflict_graph.h"
#include "src/ext/fabricpp/reorderer.h"
#include "src/peer/validator.h"
#include "src/policy/policy_presets.h"
#include "src/statedb/memory_state_db.h"

namespace fabricsim {
namespace {

Transaction Tx(TxId id, std::vector<std::string> reads,
               std::vector<std::string> writes) {
  Transaction tx;
  tx.id = id;
  for (const std::string& key : reads) {
    tx.rwset.reads.push_back(ReadItem{key, {0, 0}, true});
  }
  for (const std::string& key : writes) {
    tx.rwset.writes.push_back(WriteItem{key, "v" + key, false});
  }
  uint64_t digest = tx.rwset.Digest();
  tx.endorsements.push_back(Endorsement{0, 0, digest, true});
  tx.endorsements.push_back(Endorsement{1, 1, digest, true});
  return tx;
}

// ------------------------------------------------------ ConflictGraph

TEST(ConflictGraphTest, ReaderPointsToWriter) {
  uint64_t ops = 0;
  // tx0 reads "a" which tx1 writes: edge 0 -> 1 (reader first).
  std::vector<Transaction> txs = {Tx(10, {"a"}, {}), Tx(11, {}, {"a"})};
  ConflictGraph graph = ConflictGraph::Build(txs, &ops);
  ASSERT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.adjacency()[0], (std::vector<uint32_t>{1}));
  EXPECT_TRUE(graph.adjacency()[1].empty());
  EXPECT_GT(ops, 0u);
}

TEST(ConflictGraphTest, OwnWritesIgnored) {
  uint64_t ops = 0;
  std::vector<Transaction> txs = {Tx(1, {"a"}, {"a"})};
  ConflictGraph graph = ConflictGraph::Build(txs, &ops);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(ConflictGraphTest, RangeFootprintCreatesEdges) {
  uint64_t ops = 0;
  Transaction scanner;
  scanner.id = 1;
  RangeQueryInfo rq;
  rq.start_key = "k0";
  rq.end_key = "k9";
  rq.reads.push_back(ReadItem{"k3", {0, 0}, true});
  scanner.rwset.range_queries.push_back(rq);
  std::vector<Transaction> txs = {scanner, Tx(2, {}, {"k3"})};
  ConflictGraph graph = ConflictGraph::Build(txs, &ops);
  EXPECT_EQ(graph.adjacency()[0], (std::vector<uint32_t>{1}));
}

TEST(ConflictGraphTest, RangeIntervalCatchesInserters) {
  uint64_t ops = 0;
  Transaction scanner;
  scanner.id = 1;
  RangeQueryInfo rq;
  rq.start_key = "k0";
  rq.end_key = "k9";
  scanner.rwset.range_queries.push_back(rq);  // empty footprint
  // Writer inserts a fresh key inside the scanned interval.
  std::vector<Transaction> txs = {scanner, Tx(2, {}, {"k5"})};
  ConflictGraph graph = ConflictGraph::Build(txs, &ops);
  EXPECT_EQ(graph.adjacency()[0], (std::vector<uint32_t>{1}));
}

TEST(ConflictGraphTest, SccFindsCycle) {
  uint64_t ops = 0;
  // tx0 reads a writes b; tx1 reads b writes a -> 2-cycle.
  std::vector<Transaction> txs = {Tx(1, {"a"}, {"b"}), Tx(2, {"b"}, {"a"})};
  ConflictGraph graph = ConflictGraph::Build(txs, &ops);
  auto sccs = graph.StronglyConnectedComponents(&ops);
  size_t big = 0;
  for (const auto& scc : sccs) {
    if (scc.size() > 1) ++big;
  }
  EXPECT_EQ(big, 1u);
}

TEST(ConflictGraphTest, FvsBreaksAllCycles) {
  uint64_t ops = 0;
  std::vector<Transaction> txs = {
      Tx(1, {"a"}, {"b"}), Tx(2, {"b"}, {"c"}), Tx(3, {"c"}, {"a"}),
      Tx(4, {"x"}, {"y"})};
  ConflictGraph graph = ConflictGraph::Build(txs, &ops);
  auto aborted = graph.GreedyFeedbackVertexSet(&ops);
  EXPECT_GE(aborted.size(), 1u);
  EXPECT_LE(aborted.size(), 2u);
  std::vector<bool> alive(txs.size(), true);
  for (uint32_t idx : aborted) alive[idx] = false;
  size_t alive_count = 0;
  for (bool a : alive) alive_count += a ? 1 : 0;
  auto order = graph.TopologicalOrder(alive, &ops);
  // A complete topological order exists iff the remainder is acyclic.
  EXPECT_EQ(order.size(), alive_count);
}

TEST(ConflictGraphTest, TopologicalOrderRespectsEdges) {
  uint64_t ops = 0;
  std::vector<Transaction> txs = {Tx(1, {}, {"a"}), Tx(2, {"a"}, {})};
  ConflictGraph graph = ConflictGraph::Build(txs, &ops);
  std::vector<bool> alive(2, true);
  auto order = graph.TopologicalOrder(alive, &ops);
  ASSERT_EQ(order.size(), 2u);
  // Reader (index 1) must come before writer (index 0).
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

// --------------------------------------------------------- Reorderer

TEST(FabricPlusPlusTest, EliminatesIntraBlockConflicts) {
  // Unordered, tx2 (reads a, which tx1 writes) would fail intra-block.
  Block block;
  block.number = 1;
  block.txs = {Tx(1, {"b"}, {"a"}), Tx(2, {"a"}, {"c"})};
  block.results.assign(2, TxValidationResult{});

  MemoryStateDb db;
  db.ApplyWrite(WriteItem{"a", "va", false}, {0, 0});
  db.ApplyWrite(WriteItem{"b", "vb", false}, {0, 0});
  Validator validator(MakePolicy(PolicyPreset::kP0AllOrgs, 2));

  // Baseline: stock order loses tx2.
  ValidationOutcome before = validator.ValidateBlock(db, block);
  EXPECT_EQ(before.results[1].code, TxValidationCode::kMvccReadConflict);

  // Fabric++ reorders the reader first; both commit.
  FabricPlusPlusProcessor processor;
  SimTime cost = processor.OnBlockCut(&block, nullptr);
  EXPECT_GE(cost, 0);
  ValidationOutcome after = validator.ValidateBlock(db, block);
  EXPECT_EQ(after.valid_count, 2u);
  EXPECT_EQ(processor.stats().txs_aborted, 0u);
  // Reader (id 2) now precedes writer (id 1).
  EXPECT_EQ(block.txs[0].id, 2u);
  EXPECT_EQ(block.txs[1].id, 1u);
}

TEST(FabricPlusPlusTest, AbortsCyclesInOrderingPhase) {
  Block block;
  block.number = 1;
  block.txs = {Tx(1, {"a"}, {"b"}), Tx(2, {"b"}, {"a"})};
  block.results.assign(2, TxValidationResult{});
  FabricPlusPlusProcessor processor;
  std::vector<BlockProcessor::EarlyAbort> early_aborted;
  processor.OnBlockCut(&block, &early_aborted);
  EXPECT_EQ(processor.stats().txs_aborted, 1u);
  // The cycle member is early-aborted out of the block (Fabric++'s
  // ordering-phase abort) and tagged with the reordering code.
  ASSERT_EQ(early_aborted.size(), 1u);
  EXPECT_EQ(early_aborted[0].second, TxValidationCode::kAbortedByReordering);
  EXPECT_EQ(block.txs.size(), 1u);
  EXPECT_EQ(block.results.size(), 1u);
}

TEST(FabricPlusPlusTest, CostGrowsWithRangeFootprints) {
  // Writers touch keys outside the scanned interval so that the cost
  // difference is driven purely by the footprint size, like the
  // paper's DV/SCM scans vs genChain's 2–8-key ranges.
  auto make_block = [](size_t range_keys) {
    Block block;
    block.number = 1;
    for (int t = 0; t < 20; ++t) {
      Transaction tx;
      tx.id = static_cast<TxId>(t + 1);
      RangeQueryInfo rq;
      rq.start_key = "k00000";
      rq.end_key = "k99999";
      for (size_t i = 0; i < range_keys; ++i) {
        rq.reads.push_back(
            ReadItem{"k" + std::to_string(10000 + i), {0, 0}, true});
      }
      tx.rwset.range_queries.push_back(rq);
      tx.rwset.writes.push_back(
          WriteItem{"w" + std::to_string(t), "v", false});
      block.txs.push_back(tx);
    }
    block.results.assign(block.txs.size(), TxValidationResult{});
    return block;
  };
  FabricPlusPlusProcessor small_proc, large_proc;
  Block small = make_block(4);
  Block large = make_block(800);
  SimTime small_cost = small_proc.OnBlockCut(&small, nullptr);
  SimTime large_cost = large_proc.OnBlockCut(&large, nullptr);
  EXPECT_GT(large_cost, small_cost * 5);
}

TEST(FabricPlusPlusTest, SingletonBlockIsFree) {
  Block block;
  block.number = 1;
  block.txs = {Tx(1, {"a"}, {"b"})};
  block.results.assign(1, TxValidationResult{});
  FabricPlusPlusProcessor processor;
  EXPECT_EQ(processor.OnBlockCut(&block, nullptr), 0);
}

}  // namespace
}  // namespace fabricsim
