// Replicated-ordering tests: healthy bootstrap without elections,
// leader crash -> election -> takeover with no lost/duplicated/
// renumbered blocks, restarted-replica catch-up, follower crashes,
// single-replica groups, client failover accounting, bitwise
// determinism across FABRICSIM_JOBS and repeated seeds, and the
// fault-plan validation added for orderer crashes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/strings.h"
#include "src/core/invariants.h"
#include "src/core/runner.h"
#include "src/fabric/fabric_network.h"
#include "src/workload/paper_workloads.h"

namespace fabricsim {
namespace {

// Mirrors the fingerprint in fault_test.cc, extended with the ordering
// availability counters this PR adds.
std::string Fingerprint(const FailureReport& r) {
  std::string out;
  out += StrFormat(
      "ledger=%llu valid=%llu endorse=%llu mvcc_intra=%llu "
      "mvcc_inter=%llu phantom=%llu submitted=%llu app=%llu\n",
      static_cast<unsigned long long>(r.ledger_txs),
      static_cast<unsigned long long>(r.valid_txs),
      static_cast<unsigned long long>(r.endorsement_failures),
      static_cast<unsigned long long>(r.mvcc_intra),
      static_cast<unsigned long long>(r.mvcc_inter),
      static_cast<unsigned long long>(r.phantom),
      static_cast<unsigned long long>(r.submitted_txs),
      static_cast<unsigned long long>(r.app_errors));
  out += StrFormat(
      "ordering=%llu/%llu/%llu/%llu gap=%.17g\n",
      static_cast<unsigned long long>(r.orderer_elections),
      static_cast<unsigned long long>(r.orderer_leader_changes),
      static_cast<unsigned long long>(r.orderer_rebroadcasts),
      static_cast<unsigned long long>(r.orderer_broadcast_drops),
      r.max_interblock_gap_s);
  out += StrFormat("lat=%.17g/%.17g/%.17g tput=%.17g/%.17g\n", r.avg_latency_s,
                   r.p50_latency_s, r.p99_latency_s, r.committed_throughput_tps,
                   r.valid_throughput_tps);
  return out;
}

ExperimentConfig ReplicatedConfig(double tps = 50, SimTime duration_s = 10) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = duration_s * kSecond;
  config.arrival_rate_tps = tps;
  config.fabric.ordering.replicated = true;
  return config;
}

struct LiveRun {
  std::unique_ptr<Environment> env;
  std::unique_ptr<FabricNetwork> network;
};

LiveRun RunLive(const ExperimentConfig& config, uint64_t seed) {
  LiveRun run;
  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto workload = std::shared_ptr<WorkloadGenerator>(
      std::move(MakeWorkload(config.workload, /*rich=*/true).value()));
  run.env = std::make_unique<Environment>(seed);
  run.network = std::make_unique<FabricNetwork>(config.fabric, run.env.get(),
                                                chaincode, workload);
  EXPECT_TRUE(run.network->Init().ok());
  run.network->StartLoad(config.arrival_rate_tps, config.duration);
  run.env->RunAll();
  return run;
}

void ExpectDenseLedger(const BlockStore& ledger) {
  uint64_t expected = 1;
  for (const Block& block : ledger.blocks()) {
    EXPECT_EQ(block.number, expected++);
  }
}

TEST(RaftHealthyTest, BootstrapLeaderOrdersWithoutElections) {
  LiveRun run = RunLive(ReplicatedConfig(), 42);
  FabricNetwork& net = *run.network;
  ASSERT_NE(net.raft(), nullptr);
  EXPECT_EQ(net.raft()->size(), 3);
  // Replica 0 bootstraps as the term-1 leader; with healthy heartbeats
  // nobody ever times out, so a fault-free run pays no election.
  EXPECT_EQ(net.raft()->elections_started(), 0u);
  EXPECT_EQ(net.raft()->leader_changes(), 0u);
  EXPECT_EQ(net.raft()->leader_index(), 0);
  EXPECT_GT(net.raft()->delivered_blocks(), 0u);
  EXPECT_GT(net.ledger().height(), 0u);
  ExpectDenseLedger(net.ledger());
  // Quorum-committed before delivery: acks reached the clients and
  // every acked transaction is on the ledger.
  EXPECT_GT(net.acked_txs().size(), 0u);
  EXPECT_EQ(net.stats().orderer_rebroadcasts, 0u);
  ChainIntegrityReport report = CheckChainIntegrity(net);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RaftHealthyTest, ReplicasConvergeOnTheSameLog) {
  LiveRun run = RunLive(ReplicatedConfig(), 7);
  const RaftGroup& raft = *run.network->raft();
  const OrdererReplica* leader = raft.replica(0);
  ASSERT_EQ(leader->role(), OrdererReplica::Role::kLeader);
  for (int i = 1; i < raft.size(); ++i) {
    const OrdererReplica* follower = raft.replica(i);
    EXPECT_EQ(follower->role(), OrdererReplica::Role::kFollower);
    // Replication drains with the run: every assembled entry reached
    // every follower, term-for-term.
    ASSERT_EQ(follower->log_size(), leader->log_size()) << "replica " << i;
    for (uint64_t n = 1; n <= leader->log_size(); ++n) {
      EXPECT_EQ(follower->EntryAt(n).term, leader->EntryAt(n).term);
      EXPECT_EQ(follower->EntryAt(n).block == nullptr,
                leader->EntryAt(n).block == nullptr);
    }
    EXPECT_LE(follower->commit_index(), leader->commit_index());
  }
}

TEST(RaftFailoverTest, LeaderCrashElectsNewLeaderAndStaysDense) {
  ExperimentConfig config = ReplicatedConfig(/*tps=*/50, /*duration_s=*/14);
  config.fabric.faults.CrashLeader(4 * kSecond);
  LiveRun run = RunLive(config, 42);
  FabricNetwork& net = *run.network;
  const RaftGroup& raft = *net.raft();

  // The crash fired, an election ran, and a different replica took
  // over and kept cutting blocks.
  ASSERT_NE(net.fault_injector(), nullptr);
  ASSERT_EQ(net.fault_injector()->events().size(), 1u);
  EXPECT_EQ(net.fault_injector()->events()[0].kind,
            FaultEventRecord::Kind::kOrdererCrash);
  EXPECT_EQ(net.fault_injector()->events()[0].subject, 0);
  EXPECT_FALSE(raft.replica(0)->alive());
  EXPECT_GE(raft.elections_started(), 1u);
  EXPECT_GE(raft.leader_changes(), 1u);
  ASSERT_GE(raft.leader_index(), 1);
  EXPECT_EQ(raft.replica(raft.leader_index())->role(),
            OrdererReplica::Role::kLeader);

  // Blocks cut before the crash and after the takeover form one dense,
  // hash-consistent chain on every peer; no acked transaction was lost
  // or committed twice.
  EXPECT_GT(net.ledger().height(), 0u);
  ExpectDenseLedger(net.ledger());
  ChainIntegrityReport report = CheckChainIntegrity(net);
  EXPECT_TRUE(report.ok()) << report.Summary();

  // Clients noticed the silence and walked to the new leader.
  EXPECT_GT(net.stats().orderer_rebroadcasts, 0u);
  EXPECT_GT(net.stats().orderer_elections, 0u);
  EXPECT_GT(net.stats().orderer_leader_changes, 0u);

  // The unavailability window shows up as the widest inter-block gap.
  FailureReport fr = BuildFailureReport(net.ledger(), net.stats(),
                                        config.duration);
  EXPECT_GT(fr.max_interblock_gap_s, 0.0);
}

TEST(RaftFailoverTest, CrashedLeaderRestartsAsFollowerAndCatchesUp) {
  ExperimentConfig config = ReplicatedConfig(/*tps=*/50, /*duration_s=*/14);
  config.fabric.faults.CrashLeader(4 * kSecond, /*restart_at=*/7 * kSecond);
  LiveRun run = RunLive(config, 42);
  FabricNetwork& net = *run.network;
  const RaftGroup& raft = *net.raft();

  ASSERT_EQ(net.fault_injector()->events().size(), 2u);
  EXPECT_EQ(net.fault_injector()->events()[1].kind,
            FaultEventRecord::Kind::kOrdererRestart);
  const OrdererReplica* old_leader = raft.replica(0);
  EXPECT_TRUE(old_leader->alive());
  EXPECT_EQ(old_leader->role(), OrdererReplica::Role::kFollower);

  // The restarted replica rejoined the new leader's log: its stable
  // log survived the crash and the leader's probing appended the rest.
  ASSERT_GE(raft.leader_index(), 1);
  const OrdererReplica* leader = raft.replica(raft.leader_index());
  EXPECT_EQ(old_leader->log_size(), leader->log_size());
  EXPECT_EQ(old_leader->current_term(), leader->current_term());

  ExpectDenseLedger(net.ledger());
  ChainIntegrityReport report = CheckChainIntegrity(net);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RaftFailoverTest, FollowerCrashIsInvisibleToTheService) {
  ExperimentConfig config = ReplicatedConfig(/*tps=*/50, /*duration_s=*/10);
  config.fabric.faults.CrashOrderer(/*replica=*/2, 3 * kSecond);
  LiveRun run = RunLive(config, 42);
  FabricNetwork& net = *run.network;
  const RaftGroup& raft = *net.raft();

  // Quorum is 2 of 3: losing one follower changes nothing for clients.
  EXPECT_FALSE(raft.replica(2)->alive());
  EXPECT_EQ(raft.elections_started(), 0u);
  EXPECT_EQ(raft.leader_changes(), 0u);
  EXPECT_EQ(raft.leader_index(), 0);
  EXPECT_EQ(net.stats().orderer_broadcast_drops, 0u);
  EXPECT_GT(net.ledger().height(), 0u);
  ExpectDenseLedger(net.ledger());
  ChainIntegrityReport report = CheckChainIntegrity(net);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(RaftFailoverTest, SingleReplicaGroupOrdersAlone) {
  ExperimentConfig config = ReplicatedConfig(/*tps=*/50, /*duration_s=*/6);
  config.fabric.cluster.num_orderers = 1;
  LiveRun run = RunLive(config, 11);
  FabricNetwork& net = *run.network;
  ASSERT_NE(net.raft(), nullptr);
  EXPECT_EQ(net.raft()->size(), 1);
  EXPECT_GT(net.ledger().height(), 0u);
  ExpectDenseLedger(net.ledger());
  ChainIntegrityReport report = CheckChainIntegrity(net);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// RunOnce runs the invariant checker unconditionally; a leader-crash
// run that passed it is the end-to-end acceptance gate.
TEST(RaftDeterminismTest, LeaderCrashRunIsReproducible) {
  ExperimentConfig config = ReplicatedConfig(/*tps=*/50, /*duration_s=*/12);
  config.fabric.faults.CrashLeader(4 * kSecond, /*restart_at=*/8 * kSecond);
  Result<FailureReport> a = RunOnce(config, 42);
  Result<FailureReport> b = RunOnce(config, 42);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(Fingerprint(a.value()), Fingerprint(b.value()));
  EXPECT_GT(a.value().orderer_leader_changes, 0u);
}

TEST(RaftDeterminismTest, LeaderCrashIdenticalAcrossJobCounts) {
  ExperimentConfig config = ReplicatedConfig(/*tps=*/40, /*duration_s=*/8);
  config.repetitions = 3;
  config.fabric.faults.CrashLeader(3 * kSecond, /*restart_at=*/6 * kSecond);
  SetParallelJobs(1);
  Result<ExperimentResult> serial = RunExperiment(config);
  SetParallelJobs(4);
  Result<ExperimentResult> parallel = RunExperiment(config);
  ParallelJobsFromEnv();  // restore the ambient setting for later tests
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial.value().repetitions.size(),
            parallel.value().repetitions.size());
  for (size_t i = 0; i < serial.value().repetitions.size(); ++i) {
    EXPECT_EQ(Fingerprint(serial.value().repetitions[i]),
              Fingerprint(parallel.value().repetitions[i]))
        << "repetition " << i;
  }
  EXPECT_EQ(Fingerprint(serial.value().mean),
            Fingerprint(parallel.value().mean));
}

// Lower election timeouts shrink the unavailability window — the
// relationship bench_ordering_failover sweeps; asserted here on two
// points so a regression fails fast in CI.
TEST(RaftFailoverTest, LowerElectionTimeoutShrinksTheGap) {
  ExperimentConfig slow = ReplicatedConfig(/*tps=*/50, /*duration_s=*/14);
  slow.fabric.faults.CrashLeader(4 * kSecond);
  // Tight client-side detection so the election term dominates the
  // unavailability window instead of the ack timeout.
  slow.fabric.block_timeout = 250 * kMillisecond;
  slow.fabric.ordering.client_ack_timeout = 1 * kSecond;
  slow.fabric.ordering.election_timeout_min = 2 * kSecond;
  slow.fabric.ordering.election_timeout_max = 4 * kSecond;
  ExperimentConfig fast = slow;
  fast.fabric.ordering.election_timeout_min = 250 * kMillisecond;
  fast.fabric.ordering.election_timeout_max = 500 * kMillisecond;
  Result<FailureReport> slow_r = RunOnce(slow, 42);
  Result<FailureReport> fast_r = RunOnce(fast, 42);
  ASSERT_TRUE(slow_r.ok()) << slow_r.status().ToString();
  ASSERT_TRUE(fast_r.ok()) << fast_r.status().ToString();
  EXPECT_LT(fast_r.value().max_interblock_gap_s,
            slow_r.value().max_interblock_gap_s);
}

TEST(RaftPlanValidationTest, ErrorsNameTheOffendingRule) {
  auto init_status = [](const ExperimentConfig& config) {
    auto chaincode = MakeChaincodeFor(config.workload).value();
    auto workload = std::shared_ptr<WorkloadGenerator>(
        std::move(MakeWorkload(config.workload, true).value()));
    Environment env(1);
    FabricNetwork network(config.fabric, &env, chaincode, workload);
    return network.Init();
  };

  // Orderer crash in compat mode: named rejection.
  ExperimentConfig compat = ExperimentConfig::Defaults();
  compat.fabric.faults.CrashLeader(1 * kSecond);
  Status st = init_status(compat);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("orderer_crash[0]"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("replicated"), std::string::npos);

  // Unknown replica: the index and window identify the rule.
  ExperimentConfig bad_replica = ReplicatedConfig();
  bad_replica.fabric.faults.CrashOrderer(/*replica=*/7, 1 * kSecond);
  st = init_status(bad_replica);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("orderer_crash[0]"), std::string::npos);
  EXPECT_NE(st.ToString().find("unknown replica"), std::string::npos);

  // Crash window overlapping a pause window on the same replica is
  // ambiguous and rejected, naming both rules.
  ExperimentConfig overlap = ReplicatedConfig();
  overlap.fabric.faults.PauseOrderer(2 * kSecond, 5 * kSecond, /*replica=*/1)
      .CrashOrderer(/*replica=*/1, 3 * kSecond, /*restart_at=*/4 * kSecond);
  st = init_status(overlap);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("orderer_crash[0]"), std::string::npos);
  EXPECT_NE(st.ToString().find("orderer_pause[0]"), std::string::npos);
  EXPECT_NE(st.ToString().find("overlaps"), std::string::npos);

  // Same windows on different replicas do not conflict.
  ExperimentConfig disjoint = ReplicatedConfig();
  disjoint.fabric.faults.PauseOrderer(2 * kSecond, 5 * kSecond, /*replica=*/1)
      .CrashOrderer(/*replica=*/2, 3 * kSecond, /*restart_at=*/4 * kSecond);
  EXPECT_TRUE(init_status(disjoint).ok());

  // Leader-targeted crash (-1) conservatively conflicts with any pause.
  ExperimentConfig leader_overlap = ReplicatedConfig();
  leader_overlap.fabric.faults
      .PauseOrderer(2 * kSecond, 5 * kSecond, /*replica=*/2)
      .CrashLeader(3 * kSecond);
  EXPECT_FALSE(init_status(leader_overlap).ok());

  // Replica-targeted pause needs replicated ordering.
  ExperimentConfig compat_pause = ExperimentConfig::Defaults();
  compat_pause.fabric.faults.PauseOrderer(1 * kSecond, 2 * kSecond,
                                          /*replica=*/1);
  st = init_status(compat_pause);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("orderer_pause[0]"), std::string::npos);
}

TEST(RaftPauseTest, ReplicaTargetedPauseBuffersWithoutElection) {
  // Pausing the leader keeps its heartbeats flowing (the process is
  // alive), so no election runs — it is the legacy hiccup, not a crash.
  ExperimentConfig config = ReplicatedConfig(/*tps=*/50, /*duration_s=*/10);
  config.fabric.faults.PauseOrderer(3 * kSecond, 5 * kSecond);
  LiveRun run = RunLive(config, 31);
  FabricNetwork& net = *run.network;
  EXPECT_EQ(net.raft()->elections_started(), 0u);
  EXPECT_EQ(net.raft()->leader_index(), 0);
  EXPECT_GT(net.raft()->replica(0)->txs_deferred_while_paused(), 0u);
  ExpectDenseLedger(net.ledger());
  ChainIntegrityReport report = CheckChainIntegrity(net);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace fabricsim
