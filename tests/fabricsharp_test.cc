#include <gtest/gtest.h>

#include "src/ext/fabricsharp/dependency_tracker.h"
#include "src/ext/fabricsharp/fabricsharp.h"

namespace fabricsim {
namespace {

// Attaches a valid Org0 endorsement over the current rw-set so the
// transaction passes the test policy ("1-of[Org0]").
Transaction Endorsed(Transaction tx) {
  tx.endorsements.clear();
  tx.endorsements.push_back(Endorsement{0, 0, tx.rwset.Digest(), true});
  return tx;
}

EndorsementPolicy TestPolicy() { return EndorsementPolicy::SignedBy(0); }

Transaction ReaderTx(TxId id, const std::string& key, Version version,
                     bool found = true) {
  Transaction tx;
  tx.id = id;
  tx.rwset.reads.push_back(ReadItem{key, version, found});
  return Endorsed(std::move(tx));
}

Transaction WriterTx(TxId id, const std::string& key) {
  Transaction tx;
  tx.id = id;
  tx.rwset.writes.push_back(WriteItem{key, "v", false});
  return Endorsed(std::move(tx));
}

Block CutBlock(uint64_t number, std::vector<Transaction> txs) {
  Block block;
  block.number = number;
  block.txs = std::move(txs);
  block.results.assign(block.txs.size(), TxValidationResult{});
  return block;
}

TEST(DependencyTrackerTest, FirstSightingAdmits) {
  DependencyTracker tracker;
  EXPECT_EQ(tracker.Admit(ReaderTx(1, "k", {3, 1})),
            DependencyTracker::Decision::kAdmit);
  // Same version again: still consistent.
  EXPECT_EQ(tracker.Admit(ReaderTx(2, "k", {3, 1})),
            DependencyTracker::Decision::kAdmit);
  // Different version: stale.
  EXPECT_EQ(tracker.Admit(ReaderTx(3, "k", {2, 0})),
            DependencyTracker::Decision::kStaleRead);
}

TEST(DependencyTrackerTest, ReaderAdmittedBesidePendingWrite) {
  // A pending in-batch write does not doom readers of the current
  // version: the serializer orders them before the writer.
  DependencyTracker tracker;
  EXPECT_EQ(tracker.Admit(ReaderTx(1, "k", {0, 0})),
            DependencyTracker::Decision::kAdmit);
  EXPECT_EQ(tracker.Admit(WriterTx(2, "k")),
            DependencyTracker::Decision::kAdmit);
  EXPECT_EQ(tracker.Admit(ReaderTx(3, "k", {0, 0})),
            DependencyTracker::Decision::kAdmit);
  // But once the write is cut, old readers are hopeless.
  tracker.OnBlockCut(CutBlock(5, {WriterTx(2, "k")}));
  EXPECT_EQ(tracker.Admit(ReaderTx(4, "k", {0, 0})),
            DependencyTracker::Decision::kStaleRead);
}

TEST(DependencyTrackerTest, BlockCutFinalizesVersions) {
  DependencyTracker tracker;
  Transaction writer = WriterTx(1, "k");
  ASSERT_EQ(tracker.Admit(writer), DependencyTracker::Decision::kAdmit);
  tracker.OnBlockCut(CutBlock(7, {writer}));
  // Endorsers that saw the committed write produce version (7,0).
  EXPECT_EQ(tracker.Admit(ReaderTx(2, "k", {7, 0})),
            DependencyTracker::Decision::kAdmit);
  // Readers endorsed against the old state are aborted.
  EXPECT_EQ(tracker.Admit(ReaderTx(3, "k", {0, 0})),
            DependencyTracker::Decision::kStaleRead);
}

TEST(DependencyTrackerTest, DeleteTrackedAsNonExistent) {
  DependencyTracker tracker;
  Transaction deleter;
  deleter.id = 1;
  deleter.rwset.writes.push_back(WriteItem{"k", "", true});
  deleter = Endorsed(std::move(deleter));
  ASSERT_EQ(tracker.Admit(deleter), DependencyTracker::Decision::kAdmit);
  tracker.OnBlockCut(CutBlock(3, {deleter}));
  // A read that found the key is stale; a not-found read matches.
  EXPECT_EQ(tracker.Admit(ReaderTx(2, "k", {0, 0}, /*found=*/true)),
            DependencyTracker::Decision::kStaleRead);
  EXPECT_EQ(tracker.Admit(ReaderTx(3, "k", {3, 0}, /*found=*/false)),
            DependencyTracker::Decision::kAdmit);
}

TEST(DependencyTrackerTest, RangeQueriesUnsupported) {
  DependencyTracker tracker;
  Transaction tx;
  tx.id = 1;
  tx.rwset.range_queries.push_back(RangeQueryInfo{});
  EXPECT_EQ(tracker.Admit(tx), DependencyTracker::Decision::kRangeQuery);
}

TEST(DependencyTrackerTest, BlindWritesAlwaysAdmitted) {
  DependencyTracker tracker;
  for (TxId id = 1; id <= 10; ++id) {
    EXPECT_EQ(tracker.Admit(WriterTx(id, "unique" + std::to_string(id))),
              DependencyTracker::Decision::kAdmit);
  }
}

// --------------------------------------------------------- Processor

TEST(FabricSharpProcessorTest, AdmissionAndStats) {
  FabricSharpProcessor processor(TestPolicy());
  TxValidationCode code = TxValidationCode::kNotValidated;

  Transaction writer = WriterTx(1, "hot");
  writer.rwset.reads.push_back(ReadItem{"hot", {0, 0}, true});
  writer = Endorsed(std::move(writer));  // re-sign over the final rw-set
  EXPECT_TRUE(processor.Admit(writer, &code));
  Block block = CutBlock(1, {writer});
  std::vector<BlockProcessor::EarlyAbort> aborted;
  processor.OnBlockCut(&block, &aborted);
  EXPECT_TRUE(aborted.empty());

  // Endorsed against the pre-cut state: aborted before ordering.
  Transaction reader = ReaderTx(2, "hot", {0, 0});
  EXPECT_FALSE(processor.Admit(reader, &code));
  EXPECT_EQ(code, TxValidationCode::kAbortedNotSerializable);
  EXPECT_EQ(processor.stats().admitted, 1u);
  EXPECT_EQ(processor.stats().aborted_stale_read, 1u);

  Transaction ranger;
  ranger.id = 3;
  ranger.rwset.range_queries.push_back(RangeQueryInfo{});
  ranger = Endorsed(std::move(ranger));
  EXPECT_FALSE(processor.Admit(ranger, &code));
  EXPECT_EQ(processor.stats().aborted_range_query, 1u);
}

TEST(FabricSharpProcessorTest, ConcurrentUpdatesSerializeToOne) {
  // Two read-modify-writes of the same version form a cycle; exactly
  // one survives the cut, the other is dropped from the block.
  FabricSharpProcessor processor(TestPolicy());
  TxValidationCode code;
  auto rmw = [](TxId id) {
    Transaction tx;
    tx.id = id;
    tx.rwset.reads.push_back(ReadItem{"k", {0, 0}, true});
    tx.rwset.writes.push_back(WriteItem{"k", "v", false});
    return Endorsed(std::move(tx));
  };
  Transaction t1 = rmw(1), t2 = rmw(2);
  EXPECT_TRUE(processor.Admit(t1, &code));
  EXPECT_TRUE(processor.Admit(t2, &code));
  Block block = CutBlock(1, {t1, t2});
  std::vector<BlockProcessor::EarlyAbort> aborted;
  processor.OnBlockCut(&block, &aborted);
  EXPECT_EQ(block.txs.size(), 1u);
  EXPECT_EQ(aborted.size(), 1u);
  EXPECT_EQ(processor.stats().aborted_at_cut, 1u);
}

TEST(FabricSharpProcessorTest, ReaderSerializedBeforeWriterInBlock) {
  FabricSharpProcessor processor(TestPolicy());
  TxValidationCode code;
  Transaction writer = WriterTx(1, "k");
  Transaction reader = ReaderTx(2, "k", {0, 0});
  EXPECT_TRUE(processor.Admit(writer, &code));
  EXPECT_TRUE(processor.Admit(reader, &code));
  Block block = CutBlock(1, {writer, reader});
  std::vector<BlockProcessor::EarlyAbort> aborted;
  processor.OnBlockCut(&block, &aborted);
  ASSERT_EQ(block.txs.size(), 2u);
  EXPECT_TRUE(aborted.empty());
  // Reader (id 2) must precede writer (id 1) so MVCC passes.
  EXPECT_EQ(block.txs[0].id, 2u);
  EXPECT_EQ(block.txs[1].id, 1u);
}

TEST(FabricSharpProcessorTest, OnBlockCutChargesPerRwSet) {
  FabricSharpProcessor processor(TestPolicy());
  Block block = CutBlock(1, {WriterTx(1, "a"), WriterTx(2, "b")});
  SimTime cost = processor.OnBlockCut(&block, nullptr);
  EXPECT_GT(cost, 0);
}

// Property: after admission control, no admitted sequence can produce
// an MVCC conflict — every admitted read matches the tracker's view.
TEST(FabricSharpProcessorTest, AdmittedReadsAreAlwaysCurrent) {
  FabricSharpProcessor processor(TestPolicy());
  TxValidationCode code;
  uint64_t block_number = 1;
  Rng rng(17);
  std::vector<Transaction> pending;
  for (int i = 0; i < 500; ++i) {
    TxId id = static_cast<TxId>(i + 1);
    std::string key = "k" + std::to_string(rng.UniformU64(10));
    Transaction tx;
    tx.id = id;
    // Random reader or read-modify-writer with a random (often stale)
    // version guess.
    Version guess{rng.UniformU64(3), 0};
    tx.rwset.reads.push_back(ReadItem{key, guess, true});
    if (rng.Bernoulli(0.5)) {
      tx.rwset.writes.push_back(WriteItem{key, "v", false});
    }
    tx = Endorsed(std::move(tx));
    if (processor.Admit(tx, &code)) pending.push_back(tx);
    if (pending.size() >= 10) {
      Block block = CutBlock(block_number++, pending);
      processor.OnBlockCut(&block, nullptr);
      pending.clear();
    }
  }
  // The tracker itself never admitted a read inconsistent with its
  // view; reaching here without contradictions is the property. Spot
  // check: a deliberately stale read is rejected.
  Transaction stale = ReaderTx(9999, "k0", {999, 0});
  EXPECT_FALSE(processor.Admit(stale, &code));
}

}  // namespace
}  // namespace fabricsim
