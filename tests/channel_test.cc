// Multi-channel subsystem tests: single-channel bitwise identity
// against pre-channel golden fingerprints (compat and replicated
// ordering, report and trace export, FABRICSIM_JOBS=1 vs 4),
// ChannelWorkPool semantics (WorkQueue degeneration, per-channel
// serialization, worker budget, FIFO interference), per-channel
// chaincode namespaces, channel affinity (pinning, skew, the no-draw
// contract), fault composition across channels, per-channel failure
// breakdowns, and the versioned artifact schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/chaincode/genchain.h"
#include "src/chaincode/registry.h"
#include "src/channels/channel_affinity.h"
#include "src/channels/channel_work_pool.h"
#include "src/common/parallel.h"
#include "src/common/strings.h"
#include "src/core/runner.h"
#include "src/fabric/fabric_network.h"
#include "src/obs/json_writer.h"
#include "src/sim/work_queue.h"
#include "src/workload/paper_workloads.h"

namespace fabricsim {
namespace {

// Same exhaustive numeric fingerprint as fault_test.cc, so reports
// compare bit-for-bit against goldens recorded pre-PR.
std::string Fingerprint(const FailureReport& r) {
  std::string out;
  out += StrFormat(
      "ledger=%llu valid=%llu endorse=%llu mvcc_intra=%llu "
      "mvcc_inter=%llu phantom=%llu submitted=%llu app=%llu\n",
      static_cast<unsigned long long>(r.ledger_txs),
      static_cast<unsigned long long>(r.valid_txs),
      static_cast<unsigned long long>(r.endorsement_failures),
      static_cast<unsigned long long>(r.mvcc_intra),
      static_cast<unsigned long long>(r.mvcc_inter),
      static_cast<unsigned long long>(r.phantom),
      static_cast<unsigned long long>(r.submitted_txs),
      static_cast<unsigned long long>(r.app_errors));
  out += StrFormat("pct=%.17g/%.17g/%.17g/%.17g/%.17g\n", r.total_failure_pct,
                   r.endorsement_pct, r.mvcc_pct, r.phantom_pct,
                   r.early_abort_pct);
  out += StrFormat("lat=%.17g/%.17g/%.17g tput=%.17g/%.17g\n", r.avg_latency_s,
                   r.p50_latency_s, r.p99_latency_s, r.committed_throughput_tps,
                   r.valid_throughput_tps);
  return out;
}

// Fingerprint extended with the per-channel breakdown, for the
// multi-channel jobs-determinism check.
std::string FingerprintWithChannels(const FailureReport& r) {
  std::string out = Fingerprint(r);
  for (const ChannelFailureBreakdown& c : r.per_channel) {
    out += StrFormat("ch%d=%llu/%llu/%llu/%llu/%llu/%llu %.17g/%.17g/%.17g\n",
                     c.channel, static_cast<unsigned long long>(c.ledger_txs),
                     static_cast<unsigned long long>(c.valid_txs),
                     static_cast<unsigned long long>(c.endorsement_failures),
                     static_cast<unsigned long long>(c.mvcc_intra),
                     static_cast<unsigned long long>(c.mvcc_inter),
                     static_cast<unsigned long long>(c.phantom),
                     c.total_failure_pct, c.mvcc_pct,
                     c.committed_throughput_tps);
  }
  return out;
}

// Golden fingerprint recorded against the tree BEFORE the channel
// subsystem existed (default C1 config, 20 s at 100 tps, seed 42, the
// same run fault_test.cc pins). An explicit num_channels = 1 network
// must keep reproducing it byte-for-byte: one channel means no extra
// RNG forks, no extra draws, no event reordering.
constexpr char kGoldenCompat[] =
    "ledger=1998 valid=889 endorse=21 mvcc_intra=808 mvcc_inter=280 "
    "phantom=0 submitted=1998 app=0\n"
    "pct=55.505505505505504/1.0510510510510511/54.454454454454456/0/0\n"
    "lat=0.79166268968969022/0.75911118027396884/2.02848615705734 "
    "tput=95/44.450000000000003\n";

// Same run under replicated (Raft) ordering, recorded pre-channel.
constexpr char kGoldenReplicated[] =
    "ledger=1992 valid=899 endorse=20 mvcc_intra=796 mvcc_inter=277 "
    "phantom=0 submitted=1992 app=0\n"
    "pct=54.869477911646584/1.0040160642570282/53.865461847389561/0/0\n"
    "lat=0.78060464658634665/0.74022120304450434/2.0647142323398877 "
    "tput=95/44.950000000000003\n";

// Pre-channel trace exports of the same two runs (tracing on,
// repetitions = 1), pinned as (byte count, FNV-1a hash) — strong
// enough to catch any drift in row content, ordering or formatting.
constexpr size_t kGoldenCompatTraceBytes = 1052535;
constexpr uint64_t kGoldenCompatTraceHash = 8293478105143936468ull;
constexpr size_t kGoldenReplicatedTraceBytes = 1046460;
constexpr uint64_t kGoldenReplicatedTraceHash = 2292966280054001386ull;

ExperimentConfig GoldenConfig() {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 20 * kSecond;
  config.arrival_rate_tps = 100;
  return config;
}

// ---------------------------------------------------- golden identity

TEST(ChannelGoldenTest, ExplicitSingleChannelReproducesCompatFingerprint) {
  // Channel knobs that are meaningless with one channel (skew, client
  // pinning) must also be strict no-ops.
  ExperimentConfig config = ExperimentConfig::Builder(GoldenConfig())
                                .Channels(1)
                                .ChannelSkew(1.2)
                                .ChannelsPerClient(1)
                                .Build();
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Fingerprint(r.value()), kGoldenCompat);
  EXPECT_TRUE(r.value().per_channel.empty());
}

TEST(ChannelGoldenTest, SingleChannelReplicatedReproducesFingerprint) {
  ExperimentConfig config = GoldenConfig();
  config.fabric.ordering.replicated = true;
  config.fabric.num_channels = 1;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Fingerprint(r.value()), kGoldenReplicated);
}

TEST(ChannelGoldenTest, TraceExportsMatchPreChannelBytes) {
  for (bool replicated : {false, true}) {
    ExperimentConfig config = GoldenConfig();
    config.fabric.tracing = true;
    config.fabric.ordering.replicated = replicated;
    config.repetitions = 1;
    for (int jobs : {1, 4}) {
      SetParallelJobs(jobs);
      Result<ExperimentResult> result = RunExperiment(config);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result.value().traces.size(), 1u);
      const std::string& trace = result.value().traces[0];
      SCOPED_TRACE(StrFormat("replicated=%d jobs=%d", replicated ? 1 : 0,
                             jobs));
      EXPECT_EQ(trace.size(), replicated ? kGoldenReplicatedTraceBytes
                                         : kGoldenCompatTraceBytes);
      EXPECT_EQ(Fnv1a(trace), replicated ? kGoldenReplicatedTraceHash
                                         : kGoldenCompatTraceHash);
      // Single-channel exports keep the version-1 stamp.
      EXPECT_EQ(VersionedJsonWriter::ParseSchemaVersion(trace),
                kObsSchemaVersion);
    }
    ParallelJobsFromEnv();  // restore the ambient setting
  }
}

// ---------------------------------------------------- ChannelWorkPool

// With one channel the pool must degenerate to WorkQueue exactly:
// same completion order, same timestamps, same counters — this is the
// mechanism behind the byte-identity goldens above.
TEST(ChannelWorkPoolTest, SingleChannelMatchesWorkQueue) {
  Environment env_q(1);
  Environment env_p(1);
  WorkQueue queue("validate");
  ChannelWorkPool pool("validate", /*workers=*/3);  // spare workers idle
  std::vector<std::pair<SimTime, int>> done_q;
  std::vector<std::pair<SimTime, int>> done_p;
  for (int i = 0; i < 6; ++i) {
    SimTime at = i * 3 * kMillisecond;
    SimTime service = (7 + 2 * i) * kMillisecond;
    env_q.ScheduleAt(at, [&, i, service] {
      queue.Submit(
          env_q, [service] { return service; },
          [&, i] { done_q.push_back({env_q.now(), i}); });
    });
    env_p.ScheduleAt(at, [&, i, service] {
      pool.Submit(
          env_p, kDefaultChannel, [service] { return service; },
          [&, i] { done_p.push_back({env_p.now(), i}); });
    });
  }
  env_q.RunAll();
  env_p.RunAll();
  EXPECT_EQ(done_q, done_p);
  EXPECT_EQ(queue.total_service(), pool.total_service());
  EXPECT_EQ(queue.tasks_completed(), pool.tasks_completed());
  EXPECT_EQ(pool.channel_tasks_completed(0), queue.tasks_completed());
}

// One channel's blocks commit strictly in order even when workers are
// free: the second task of a channel waits for the first.
TEST(ChannelWorkPoolTest, TasksOfOneChannelSerialize) {
  Environment env(1);
  ChannelWorkPool pool("validate", /*workers=*/4);
  std::vector<std::pair<SimTime, int>> starts;
  for (int i = 0; i < 3; ++i) {
    pool.Submit(
        env, /*channel=*/0,
        [&, i] {
          starts.push_back({env.now(), i});
          return 10 * kMillisecond;
        },
        {});
  }
  env.RunAll();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], (std::pair<SimTime, int>{0, 0}));
  EXPECT_EQ(starts[1], (std::pair<SimTime, int>{10 * kMillisecond, 1}));
  EXPECT_EQ(starts[2], (std::pair<SimTime, int>{20 * kMillisecond, 2}));
}

// Different channels validate concurrently, but never more than the
// worker budget at once.
TEST(ChannelWorkPoolTest, WorkerBudgetCapsCrossChannelParallelism) {
  Environment env(1);
  ChannelWorkPool pool("validate", /*workers=*/2);
  std::vector<std::pair<SimTime, int>> starts;
  size_t peak_in_service = 0;
  for (int c = 0; c < 3; ++c) {
    pool.Submit(
        env, c,
        [&, c] {
          starts.push_back({env.now(), c});
          peak_in_service = std::max(peak_in_service, pool.in_service());
          return 10 * kMillisecond;
        },
        {});
  }
  env.RunAll();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], (std::pair<SimTime, int>{0, 0}));
  EXPECT_EQ(starts[1], (std::pair<SimTime, int>{0, 1}));
  // Channel 2 had to wait for a worker despite being idle itself.
  EXPECT_EQ(starts[2], (std::pair<SimTime, int>{10 * kMillisecond, 2}));
  EXPECT_LE(peak_in_service, 2u);
}

// A busy channel's queued backlog does not block a later-submitted
// idle channel (eligibility skips the FIFO head), but the shared
// workers still make the hot channel's backlog delay everyone once
// the budget is exhausted — the cross-channel interference the bench
// measures.
TEST(ChannelWorkPoolTest, IdleChannelOvertakesBusyChannelsBacklog) {
  Environment env(1);
  ChannelWorkPool pool("validate", /*workers=*/2);
  std::vector<std::pair<SimTime, std::string>> starts;
  auto task = [&](ChannelId channel, const std::string& label) {
    pool.Submit(
        env, channel,
        [&, label] {
          starts.push_back({env.now(), label});
          return 10 * kMillisecond;
        },
        {});
  };
  task(0, "hot0");
  task(0, "hot1");  // queued: channel 0 busy
  task(0, "hot2");  // queued behind hot1
  task(1, "cold0");  // submitted last, starts immediately on worker 2
  env.RunAll();
  ASSERT_EQ(starts.size(), 4u);
  EXPECT_EQ(starts[0],
            (std::pair<SimTime, std::string>{0, "hot0"}));
  EXPECT_EQ(starts[1],
            (std::pair<SimTime, std::string>{0, "cold0"}));
  EXPECT_EQ(starts[2],
            (std::pair<SimTime, std::string>{10 * kMillisecond, "hot1"}));
  EXPECT_EQ(starts[3],
            (std::pair<SimTime, std::string>{20 * kMillisecond, "hot2"}));
  EXPECT_EQ(pool.channel_tasks_completed(0), 3u);
  EXPECT_EQ(pool.channel_tasks_completed(1), 1u);
  EXPECT_GT(pool.channel_service(0), pool.channel_service(1));
}

// ----------------------------------------------- chaincode namespaces

TEST(ChannelRegistryTest, ChannelInstallationOverridesDefault) {
  ChaincodeRegistry registry;
  auto base = std::make_shared<GenChaincode>(GenChaincodeSpec::PaperDefault());
  auto override_cc =
      std::make_shared<GenChaincode>(GenChaincodeSpec::PaperDefault());
  ASSERT_TRUE(registry.Register(base).ok());
  ASSERT_TRUE(registry.Register(/*channel=*/2, override_cc).ok());
  // Channel 2 sees its own installation; channel 1 falls back to the
  // default channel's.
  EXPECT_EQ(registry.Get(2, base->name()), override_cc.get());
  EXPECT_EQ(registry.Get(1, base->name()), base.get());
  EXPECT_EQ(registry.Get(base->name()), base.get());
  EXPECT_EQ(registry.Get(1, "missing"), nullptr);
}

TEST(ChannelRegistryTest, DuplicatePerChannelInstallationRejected) {
  ChaincodeRegistry registry;
  auto a = std::make_shared<GenChaincode>(GenChaincodeSpec::PaperDefault());
  auto b = std::make_shared<GenChaincode>(GenChaincodeSpec::PaperDefault());
  ASSERT_TRUE(registry.Register(/*channel=*/1, a).ok());
  EXPECT_FALSE(registry.Register(/*channel=*/1, b).ok());
  // The same name on another channel is a distinct namespace.
  EXPECT_TRUE(registry.Register(/*channel=*/3, b).ok());
}

TEST(ChannelRegistryTest, InstalledNamesMergeChannelAndDefault) {
  ChaincodeRegistry registry = ChaincodeRegistry::CreateDefault();
  size_t default_count = registry.InstalledNames().size();
  ASSERT_GT(default_count, 0u);
  // A channel with no installations inherits everything.
  EXPECT_EQ(registry.InstalledNames(5).size(), default_count);
  // A channel-specific override of an existing name adds nothing new.
  auto cc = std::make_shared<GenChaincode>(GenChaincodeSpec::PaperDefault());
  ASSERT_TRUE(registry.Register(/*channel=*/5, cc).ok());
  EXPECT_EQ(registry.InstalledNames(5).size(), default_count);
}

// --------------------------------------------------- channel affinity

TEST(ChannelAffinityTest, SingleVisibleChannelNeverTouchesTheRng) {
  Rng drawn(123);
  Rng untouched(123);
  // Default affinity (single-channel deployment).
  ChannelAffinity none;
  EXPECT_EQ(none.Pick(drawn), kDefaultChannel);
  // Pinned to exactly one channel of a sharded network.
  ChannelAffinityConfig config;
  config.channels_per_client = 1;
  config.skew = 1.2;  // irrelevant with one visible channel
  ChannelAffinity pinned(config, /*num_channels=*/4, /*client_index=*/2);
  EXPECT_EQ(pinned.Pick(drawn), 2);
  EXPECT_EQ(pinned.Pick(drawn), 2);
  // The RNG stream is exactly where it started.
  EXPECT_EQ(drawn.NextU64(), untouched.NextU64());
}

TEST(ChannelAffinityTest, PinnedSubsetsTileTheChannelSpace) {
  ChannelAffinityConfig config;
  config.channels_per_client = 2;
  ChannelAffinity c0(config, /*num_channels=*/4, /*client_index=*/0);
  ChannelAffinity c1(config, /*num_channels=*/4, /*client_index=*/1);
  ChannelAffinity c2(config, /*num_channels=*/4, /*client_index=*/2);
  EXPECT_EQ(c0.visible(), (std::vector<ChannelId>{0, 1}));
  EXPECT_EQ(c1.visible(), (std::vector<ChannelId>{2, 3}));
  EXPECT_EQ(c2.visible(), (std::vector<ChannelId>{0, 1}));  // wraps
}

TEST(ChannelAffinityTest, SkewConcentratesPicksOnTheLowestChannel) {
  ChannelAffinityConfig config;
  config.skew = 1.2;
  ChannelAffinity affinity(config, /*num_channels=*/4, /*client_index=*/0);
  Rng rng(7);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ChannelId channel = affinity.Pick(rng);
    ASSERT_GE(channel, 0);
    ASSERT_LT(channel, 4);
    counts[static_cast<size_t>(channel)]++;
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[3] * 3);
  // Uniform spread hits every channel roughly evenly.
  ChannelAffinityConfig uniform;
  ChannelAffinity even(uniform, /*num_channels=*/4, /*client_index=*/0);
  std::vector<int> even_counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    even_counts[static_cast<size_t>(even.Pick(rng))]++;
  }
  for (int c = 0; c < 4; ++c) {
    EXPECT_GT(even_counts[static_cast<size_t>(c)], 700) << "channel " << c;
  }
}

// --------------------------------------------------- sharded networks

ExperimentConfig ShardedConfig(int channels, double skew) {
  return ExperimentConfig::Builder()
      .Channels(channels)
      .ChannelSkew(skew)
      .Duration(10 * kSecond)
      .RateTps(100)
      .Repetitions(1)
      .Build();
}

TEST(MultiChannelTest, ShardsCarryLoadAndReportBreaksDownPerChannel) {
  Result<FailureReport> r = RunOnce(ShardedConfig(4, /*skew=*/0), 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const FailureReport& report = r.value();
  ASSERT_EQ(report.per_channel.size(), 4u);
  uint64_t sum_ledger = 0;
  uint64_t sum_valid = 0;
  for (const ChannelFailureBreakdown& c : report.per_channel) {
    EXPECT_GT(c.ledger_txs, 0u) << "channel " << c.channel;
    sum_ledger += c.ledger_txs;
    sum_valid += c.valid_txs;
  }
  EXPECT_EQ(sum_ledger, report.ledger_txs);
  EXPECT_EQ(sum_valid, report.valid_txs);
  // The human-readable summary names each shard.
  std::string text = report.ToString();
  EXPECT_NE(text.find("channel 0:"), std::string::npos);
  EXPECT_NE(text.find("channel 3:"), std::string::npos);
}

TEST(MultiChannelTest, SkewedPopularityConcentratesLoadOnChannelZero) {
  Result<FailureReport> r = RunOnce(ShardedConfig(4, /*skew=*/1.2), 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().per_channel.size(), 4u);
  EXPECT_GT(r.value().per_channel[0].ledger_txs,
            2 * r.value().per_channel[3].ledger_txs);
}

TEST(MultiChannelTest, ShardingCutsIntraChannelConflicts) {
  // Same aggregate load, one hot key space vs four independent ones:
  // sharding must reduce the MVCC failure share (the paper's
  // contention mechanism, §4.5, applied per channel).
  Result<FailureReport> one = RunOnce(ShardedConfig(1, 0), 42);
  Result<FailureReport> four = RunOnce(ShardedConfig(4, 0), 42);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_TRUE(four.ok()) << four.status().ToString();
  EXPECT_LT(four.value().mvcc_pct, one.value().mvcc_pct);
}

TEST(MultiChannelTest, DeterministicAcrossJobCounts) {
  ExperimentConfig config = ShardedConfig(3, /*skew=*/0.9);
  config.repetitions = 3;
  SetParallelJobs(1);
  Result<ExperimentResult> serial = RunExperiment(config);
  SetParallelJobs(4);
  Result<ExperimentResult> parallel = RunExperiment(config);
  ParallelJobsFromEnv();  // restore the ambient setting for later tests
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial.value().repetitions.size(),
            parallel.value().repetitions.size());
  for (size_t i = 0; i < serial.value().repetitions.size(); ++i) {
    EXPECT_EQ(FingerprintWithChannels(serial.value().repetitions[i]),
              FingerprintWithChannels(parallel.value().repetitions[i]))
        << "repetition " << i;
  }
}

TEST(MultiChannelTest, ReplicatedOrderingRunsEveryChannelItsOwnRaftLog) {
  ExperimentConfig config = ShardedConfig(2, /*skew=*/0);
  config.fabric.ordering.replicated = true;
  // RunOnce runs the per-channel chain-integrity audit internally and
  // fails on any violation — ok() means every shard's chain is sound
  // and no acked transaction was lost.
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().per_channel.size(), 2u);
  EXPECT_GT(r.value().per_channel[0].ledger_txs, 0u);
  EXPECT_GT(r.value().per_channel[1].ledger_txs, 0u);
}

TEST(MultiChannelTest, DescribeMentionsChannelsOnlyWhenSharded) {
  EXPECT_EQ(ExperimentConfig::Defaults().Describe().find("channels="),
            std::string::npos);
  std::string sharded = ShardedConfig(4, 1.2).Describe();
  EXPECT_NE(sharded.find("channels=4"), std::string::npos);
  EXPECT_NE(sharded.find("cskew=1.2"), std::string::npos);
}

// ----------------------------------------------- faults x channels

// Builds a sharded network directly so per-peer, per-channel state can
// be inspected after the run.
struct DirectRun {
  std::unique_ptr<Environment> env;
  std::unique_ptr<FabricNetwork> network;
};

DirectRun RunSharded(const ExperimentConfig& config, uint64_t seed) {
  DirectRun run;
  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto workload = std::shared_ptr<WorkloadGenerator>(
      std::move(MakeWorkload(config.workload,
                             config.fabric.db_type == DatabaseType::kCouchDb)
                    .value()));
  run.env = std::make_unique<Environment>(seed);
  run.network = std::make_unique<FabricNetwork>(config.fabric, run.env.get(),
                                                chaincode, workload);
  EXPECT_TRUE(run.network->Init().ok());
  run.network->set_channel_affinity(config.workload.channel_affinity);
  run.network->StartLoad(config.arrival_rate_tps, config.duration);
  run.env->RunAll();
  return run;
}

TEST(ChannelFaultTest, PeerCrashAndCatchUpSpanEveryChannel) {
  ExperimentConfig config = ShardedConfig(3, /*skew=*/0);
  // Crash a non-reference peer mid-run; on restart it must replay the
  // blocks it missed on ALL channels, not just the default one.
  config.fabric.faults.Crash(/*peer=*/1, 3 * kSecond, /*restart_at=*/6 *
                                                          kSecond);
  DirectRun run = RunSharded(config, 42);
  const FabricNetwork& network = *run.network;
  for (int c = 0; c < 3; ++c) {
    EXPECT_GT(network.ledger(c).height(), 0u) << "channel " << c;
    EXPECT_EQ(network.peers()[1]->committed_height(c),
              network.ledger(c).height())
        << "channel " << c;
  }
}

TEST(ChannelFaultTest, OrdererPauseStallsEveryChannelsService) {
  // The ordering service is one shared process: pausing it freezes
  // block cutting on every channel, and both channels resume after.
  ExperimentConfig config = ShardedConfig(2, /*skew=*/0);
  config.fabric.faults.PauseOrderer(3 * kSecond, 6 * kSecond);
  DirectRun run = RunSharded(config, 42);
  const FabricNetwork& network = *run.network;
  for (int c = 0; c < 2; ++c) {
    bool cut_after_resume = false;
    for (const Block& block : network.ledger(c).blocks()) {
      EXPECT_FALSE(block.cut_time > 3 * kSecond + 100 * kMillisecond &&
                   block.cut_time < 6 * kSecond)
          << "channel " << c << " cut a block mid-pause at "
          << block.cut_time;
      if (block.cut_time >= 6 * kSecond) cut_after_resume = true;
    }
    EXPECT_TRUE(cut_after_resume) << "channel " << c;
  }
}

// ----------------------------------------------- versioned artifacts

TEST(VersionedArtifactTest, PlainWriterKeepsVersionOneShape) {
  VersionedJsonWriter writer("fabricsim.bench",
                             VersionedJsonWriter::Format::kDocument);
  writer.AddRow("{\"x\": 1}");
  std::string doc = writer.Render();
  EXPECT_EQ(VersionedJsonWriter::ParseSchemaVersion(doc), 1);
  EXPECT_EQ(doc.find("\"channels\""), std::string::npos);
}

TEST(VersionedArtifactTest, HardwareConcurrencyHeaderFieldIsOptIn) {
  VersionedJsonWriter plain("fabricsim.bench",
                            VersionedJsonWriter::Format::kDocument);
  plain.AddRow("{\"x\": 1}");
  // Unset writers keep the pre-annotation byte layout exactly.
  EXPECT_EQ(plain.Render().find("hardware_concurrency"), std::string::npos);

  VersionedJsonWriter annotated("fabricsim.bench",
                                VersionedJsonWriter::Format::kDocument);
  annotated.set_hardware_concurrency(48);
  annotated.AddRow("{\"x\": 1}");
  std::string doc = annotated.Render();
  EXPECT_NE(doc.find("\"hardware_concurrency\": 48"), std::string::npos);
  // The annotation lives in the header, not the rows, and leaves the
  // schema version alone.
  EXPECT_LT(doc.find("\"hardware_concurrency\""), doc.find("\"rows\""));
  EXPECT_EQ(VersionedJsonWriter::ParseSchemaVersion(doc), 1);
}

TEST(VersionedArtifactTest, ChannelRowsBumpDocumentToVersionTwo) {
  VersionedJsonWriter writer("fabricsim.bench",
                             VersionedJsonWriter::Format::kDocument);
  writer.AddRow("{\"x\": 1}");
  writer.AddChannelRow(1, "{\"tps\": 40}");
  writer.AddChannelRow(0, "{\"tps\": 60}");
  std::string doc = writer.Render();
  EXPECT_EQ(VersionedJsonWriter::ParseSchemaVersion(doc), 2);
  // Channel groups render in channel order regardless of insertion
  // order, and the v1 part of the document is still present.
  size_t c0 = doc.find("\"channel\": 0");
  size_t c1 = doc.find("\"channel\": 1");
  ASSERT_NE(c0, std::string::npos);
  ASSERT_NE(c1, std::string::npos);
  EXPECT_LT(c0, c1);
  EXPECT_NE(doc.find("\"rows\""), std::string::npos);
  EXPECT_EQ(writer.channel_row_count(), 2u);
}

TEST(VersionedArtifactTest, MultiChannelTraceStampsVersionTwo) {
  ExperimentConfig config = ShardedConfig(2, /*skew=*/0.9);
  config.fabric.tracing = true;
  Result<ExperimentResult> result = RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().traces.size(), 1u);
  const std::string& trace = result.value().traces[0];
  EXPECT_EQ(VersionedJsonWriter::ParseSchemaVersion(trace),
            kObsSchemaVersionChannels);
  // Per-channel rollups ride along in the export.
  EXPECT_NE(trace.find("\"type\": \"channel_summary\""), std::string::npos);
  EXPECT_NE(trace.find("\"channel\": 1"), std::string::npos);
}

}  // namespace
}  // namespace fabricsim
