#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/chaincode/stub.h"
#include "src/core/experiment.h"
#include "src/peer/committer.h"
#include "src/statedb/memory_state_db.h"
#include "src/workload/key_distribution.h"
#include "src/workload/paper_workloads.h"

namespace fabricsim {
namespace {

// ---------------------------------------------------- KeyDistribution

TEST(KeyDistributionTest, UniformCoversSpace) {
  KeyDistribution dist(50, 0.0);
  Rng rng(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(dist.Sample(rng));
  EXPECT_EQ(seen.size(), 50u);
}

TEST(KeyDistributionTest, SampleOtherDiffers) {
  KeyDistribution dist(10, 1.0);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    uint64_t a = dist.Sample(rng);
    EXPECT_NE(dist.SampleOther(rng, a), a);
  }
}

TEST(KeyDistributionTest, SkewConcentrates) {
  KeyDistribution skewed(1000, 2.0);
  Rng rng(3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[skewed.Sample(rng)]++;
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  // With skew 2, the hottest key takes a large share.
  EXPECT_GT(max_count, 20000 / 10);
}

// ---------------------------------------------------- Workload mixes

TEST(WorkloadMixTest, Names) {
  EXPECT_STREQ(WorkloadMixToString(WorkloadMix::kUniform), "Uniform");
  EXPECT_STREQ(WorkloadMixToString(WorkloadMix::kRangeHeavy), "RangeHeavy");
}

std::map<std::string, int> SampleFunctions(WorkloadGenerator& gen, int n) {
  Rng rng(7);
  std::map<std::string, int> counts;
  for (int i = 0; i < n; ++i) counts[gen.Next(rng).function]++;
  return counts;
}

TEST(PaperWorkloadsTest, GenChainUniformMix) {
  WorkloadConfig config;
  config.chaincode = "genchain";
  config.mix = WorkloadMix::kUniform;
  auto gen = MakeWorkload(config, true);
  ASSERT_TRUE(gen.ok());
  auto counts = SampleFunctions(*gen.value(), 10000);
  EXPECT_EQ(counts.size(), 5u);
  for (auto& [fn, c] : counts) {
    EXPECT_NEAR(c, 2000, 300) << fn;
  }
}

TEST(PaperWorkloadsTest, GenChainUpdateHeavyMix) {
  WorkloadConfig config;
  config.chaincode = "genchain";
  config.mix = WorkloadMix::kUpdateHeavy;
  auto gen = MakeWorkload(config, true);
  ASSERT_TRUE(gen.ok());
  auto counts = SampleFunctions(*gen.value(), 10000);
  // 80% updates, 5% each of the other four types (paper §4.4).
  EXPECT_NEAR(counts["updateKeys"], 8000, 400);
  EXPECT_NEAR(counts["readKeys"], 500, 200);
  EXPECT_NEAR(counts["rangeReadKeys"], 500, 200);
}

TEST(PaperWorkloadsTest, GenChainInsertsAreUnique) {
  WorkloadConfig config;
  config.chaincode = "genchain";
  config.mix = WorkloadMix::kInsertHeavy;
  auto gen = MakeWorkload(config, true);
  ASSERT_TRUE(gen.ok());
  Rng rng(9);
  std::set<std::string> insert_keys;
  for (int i = 0; i < 5000; ++i) {
    Invocation inv = gen.value()->Next(rng);
    if (inv.function != "insertKeys") continue;
    EXPECT_TRUE(insert_keys.insert(inv.args[0]).second)
        << "duplicate insert key " << inv.args[0];
  }
  EXPECT_GT(insert_keys.size(), 3000u);
}

TEST(PaperWorkloadsTest, GenChainDeletesAreUnique) {
  WorkloadConfig config;
  config.chaincode = "genchain";
  config.mix = WorkloadMix::kDeleteHeavy;
  auto gen = MakeWorkload(config, true);
  ASSERT_TRUE(gen.ok());
  Rng rng(10);
  std::set<std::string> delete_keys;
  for (int i = 0; i < 5000; ++i) {
    Invocation inv = gen.value()->Next(rng);
    if (inv.function != "deleteKeys") continue;
    EXPECT_TRUE(delete_keys.insert(inv.args[0]).second);
  }
}

TEST(PaperWorkloadsTest, GenChainStaticKeySpaceHasNoMutations) {
  // genchain_mutations = false drops insertKeys (which mints a fresh
  // key per call, growing every replica's state without bound on long
  // runs) and deleteKeys from the mix, leaving only functions that
  // touch the bootstrapped key range. bench_scale_ceiling relies on
  // this to keep the world state byte-stable for a simulated hour.
  WorkloadConfig config;
  config.chaincode = "genchain";
  config.mix = WorkloadMix::kUniform;
  config.genchain_mutations = false;
  auto gen = MakeWorkload(config, true);
  ASSERT_TRUE(gen.ok());
  auto counts = SampleFunctions(*gen.value(), 6000);
  EXPECT_EQ(counts.size(), 3u);
  EXPECT_GT(counts["readKeys"], 0);
  EXPECT_GT(counts["updateKeys"], 0);
  EXPECT_GT(counts["rangeReadKeys"], 0);
  EXPECT_EQ(counts.count("insertKeys"), 0u);
  EXPECT_EQ(counts.count("deleteKeys"), 0u);
}

TEST(PaperWorkloadsTest, GenChainRangeSizes) {
  WorkloadConfig config;
  config.chaincode = "genchain";
  config.mix = WorkloadMix::kRangeHeavy;
  config.range_sizes = {2, 4, 8};
  auto gen = MakeWorkload(config, true);
  ASSERT_TRUE(gen.ok());
  Rng rng(11);
  std::set<long long> lengths;
  for (int i = 0; i < 2000; ++i) {
    Invocation inv = gen.value()->Next(rng);
    if (inv.function != "rangeReadKeys") continue;
    long long start = std::stoll(inv.args[0].substr(2));
    long long end = std::stoll(inv.args[1].substr(2));
    lengths.insert(end - start);
  }
  EXPECT_EQ(lengths, (std::set<long long>{2, 4, 8}));
}

TEST(PaperWorkloadsTest, ExcludeRangeReadsForFabricSharp) {
  WorkloadConfig config;
  config.chaincode = "genchain";
  config.mix = WorkloadMix::kUniform;
  config.include_range_reads = false;
  auto gen = MakeWorkload(config, true);
  ASSERT_TRUE(gen.ok());
  auto counts = SampleFunctions(*gen.value(), 4000);
  EXPECT_EQ(counts.count("rangeReadKeys"), 0u);
}

TEST(PaperWorkloadsTest, UnknownChaincodeRejected) {
  WorkloadConfig config;
  config.chaincode = "bogus";
  EXPECT_FALSE(MakeWorkload(config, true).ok());
}

TEST(PaperWorkloadsTest, LevelDbExcludesRichFunctions) {
  for (const char* cc : {"scm", "drm"}) {
    WorkloadConfig config;
    config.chaincode = cc;
    auto gen = MakeWorkload(config, /*rich=*/false);
    ASSERT_TRUE(gen.ok());
    auto counts = SampleFunctions(*gen.value(), 3000);
    EXPECT_EQ(counts.count("queryStock"), 0u) << cc;
    EXPECT_EQ(counts.count("calcRevenue"), 0u) << cc;
  }
}

// Every generated invocation must execute cleanly against a
// bootstrapped world state (argument conventions match the chaincode).
class WorkloadValidityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadValidityTest, GeneratedInvocationsExecute) {
  WorkloadConfig config;
  config.chaincode = GetParam();
  config.zipf_skew = 1.0;
  auto chaincode = MakeChaincodeFor(config);
  ASSERT_TRUE(chaincode.ok());
  auto gen = MakeWorkload(config, /*rich=*/true);
  ASSERT_TRUE(gen.ok());

  MemoryStateDb db;
  ASSERT_TRUE(ApplyBootstrap(db, chaincode.value()->BootstrapState()).ok());
  Rng rng(13);
  int failures = 0;
  for (int i = 0; i < 300; ++i) {
    Invocation inv = gen.value()->Next(rng);
    ChaincodeStub stub(db, true);
    Status st = chaincode.value()->Invoke(stub, inv);
    if (!st.ok()) ++failures;
  }
  // The open-loop generator may occasionally reference stale state
  // (e.g. SCM after unloads), but the vast majority must execute.
  EXPECT_LE(failures, 3) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllChaincodes, WorkloadValidityTest,
                         ::testing::Values("ehr", "dv", "scm", "drm",
                                           "genchain"));

}  // namespace
}  // namespace fabricsim
