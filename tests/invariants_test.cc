// Chain-integrity checker unit tests over synthetic corruptions: the
// checker must catch diverging content, broken hash links, numbering
// gaps, double-committed transactions, and lost acked transactions —
// and must accept honest prefixes (crashed peers) and peers that ran
// ahead of a crashed reference peer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/invariants.h"
#include "src/ledger/block.h"
#include "src/ledger/block_store.h"

namespace fabricsim {
namespace {

Block MakeBlock(uint64_t number, std::vector<TxId> tx_ids) {
  Block block;
  block.number = number;
  for (TxId id : tx_ids) {
    Transaction tx;
    tx.id = id;
    block.txs.push_back(std::move(tx));
  }
  block.results.assign(block.txs.size(), TxValidationResult{});
  return block;
}

// A well-formed ledger of `n` blocks with one transaction each
// (tx id == block number) plus the matching peer chain records.
struct Fixture {
  BlockStore ledger;
  std::vector<PeerChainRecord> records;

  explicit Fixture(uint64_t n) {
    uint64_t prev = kChainHashSeed;
    for (uint64_t i = 1; i <= n; ++i) {
      Block block = MakeBlock(i, {static_cast<TxId>(i)});
      uint64_t content = BlockContentHash(block, block.results);
      uint64_t chain = MixChainHash(prev, content);
      records.push_back(PeerChainRecord{i, content, chain});
      prev = chain;
      EXPECT_TRUE(ledger.Append(std::move(block)).ok());
    }
  }
};

std::vector<PeerChainView> Views(const std::vector<PeerChainRecord>& a,
                                 const std::vector<PeerChainRecord>& b) {
  return {PeerChainView{0, &a}, PeerChainView{1, &b}};
}

TEST(InvariantsTest, CleanRunPasses) {
  Fixture f(5);
  ChainIntegrityReport report =
      CheckChainRecords(f.ledger, Views(f.records, f.records), nullptr);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.canonical_height, 5u);
  EXPECT_EQ(report.peers_checked, 2);
}

TEST(InvariantsTest, HonestPrefixOfACrashedPeerPasses) {
  Fixture f(5);
  std::vector<PeerChainRecord> prefix(f.records.begin(),
                                      f.records.begin() + 3);
  ChainIntegrityReport report =
      CheckChainRecords(f.ledger, Views(f.records, prefix), nullptr);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(InvariantsTest, DivergingContentHashIsCaught) {
  Fixture f(4);
  std::vector<PeerChainRecord> forged = f.records;
  forged[2].content_hash ^= 1;  // different block content at height 3
  forged[2].chain_hash = MixChainHash(forged[1].chain_hash,
                                      forged[2].content_hash);
  forged[3].chain_hash = MixChainHash(forged[2].chain_hash,
                                      forged[3].content_hash);
  ChainIntegrityReport report =
      CheckChainRecords(f.ledger, Views(f.records, forged), nullptr);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("diverges"), std::string::npos)
      << report.Summary();
  EXPECT_NE(report.Summary().find("block 3"), std::string::npos);
}

TEST(InvariantsTest, BrokenHashLinkIsCaught) {
  Fixture f(4);
  std::vector<PeerChainRecord> broken = f.records;
  broken[1].chain_hash ^= 1;  // link no longer derives from block 1
  ChainIntegrityReport report =
      CheckChainRecords(f.ledger, Views(f.records, broken), nullptr);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("chain hash broken"), std::string::npos)
      << report.Summary();
}

TEST(InvariantsTest, NumberingGapIsCaught) {
  Fixture f(4);
  std::vector<PeerChainRecord> gappy = f.records;
  gappy.erase(gappy.begin() + 1);  // peer skipped block 2
  ChainIntegrityReport report =
      CheckChainRecords(f.ledger, Views(f.records, gappy), nullptr);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("not dense"), std::string::npos)
      << report.Summary();
}

TEST(InvariantsTest, DoubleCommittedTransactionIsCaught) {
  BlockStore ledger;
  ASSERT_TRUE(ledger.Append(MakeBlock(1, {10, 11})).ok());
  ASSERT_TRUE(ledger.Append(MakeBlock(2, {12, 10})).ok());  // tx 10 again
  ChainIntegrityReport report = CheckChainRecords(ledger, {}, nullptr);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("tx 10 committed twice"), std::string::npos)
      << report.Summary();
}

TEST(InvariantsTest, LostAckedTransactionIsCaught) {
  Fixture f(3);  // commits tx ids 1..3
  std::vector<TxId> acked = {1, 2, 3, 99};  // 99 was acked, never committed
  ChainIntegrityReport report =
      CheckChainRecords(f.ledger, Views(f.records, f.records), &acked);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("acked tx 99 never committed"),
            std::string::npos)
      << report.Summary();
}

TEST(InvariantsTest, AckedCheckSkippedWhenLedgerIsBehindThePeers) {
  // Reference-peer crash: the recorded ledger stops at height 2 while
  // live peers carry 4 blocks. Acked ids beyond the ledger head are
  // unverifiable and must not raise false positives; the peers' longer
  // agreement is still audited.
  Fixture f(4);
  BlockStore short_ledger;
  ASSERT_TRUE(short_ledger.Append(MakeBlock(1, {1})).ok());
  ASSERT_TRUE(short_ledger.Append(MakeBlock(2, {2})).ok());
  std::vector<TxId> acked = {1, 2, 3, 4};
  ChainIntegrityReport report =
      CheckChainRecords(short_ledger, Views(f.records, f.records), &acked);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace fabricsim
