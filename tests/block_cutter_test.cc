#include <gtest/gtest.h>

#include "src/ordering/block_cutter.h"
#include "src/ordering/consensus.h"

namespace fabricsim {
namespace {

Transaction SmallTx(TxId id) {
  Transaction tx;
  tx.id = id;
  tx.rwset.writes.push_back(WriteItem{"key", "value", false});
  return tx;
}

TEST(BlockCutterTest, CutsAtMaxCount) {
  BlockCutter cutter(BlockCutter::Config{3, 1 << 20});
  EXPECT_TRUE(cutter.AddTransaction(SmallTx(1)).empty());
  EXPECT_TRUE(cutter.AddTransaction(SmallTx(2)).empty());
  auto batches = cutter.AddTransaction(SmallTx(3));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 3u);
  EXPECT_FALSE(cutter.HasPending());
}

TEST(BlockCutterTest, TimeoutCutTakesPending) {
  BlockCutter cutter(BlockCutter::Config{100, 1 << 20});
  cutter.AddTransaction(SmallTx(1));
  cutter.AddTransaction(SmallTx(2));
  EXPECT_EQ(cutter.pending_count(), 2u);
  auto batch = cutter.CutPending();
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(cutter.HasPending());
  EXPECT_TRUE(cutter.CutPending().empty());
}

TEST(BlockCutterTest, CutsAtMaxBytes) {
  uint64_t tx_bytes = SmallTx(1).ByteSize();
  BlockCutter cutter(
      BlockCutter::Config{1000, tx_bytes * 3 + tx_bytes / 2});
  cutter.AddTransaction(SmallTx(1));
  cutter.AddTransaction(SmallTx(2));
  cutter.AddTransaction(SmallTx(3));
  // The 4th transaction would exceed the byte limit: the pending three
  // go out first.
  auto batches = cutter.AddTransaction(SmallTx(4));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 3u);
  EXPECT_EQ(cutter.pending_count(), 1u);
}

TEST(BlockCutterTest, OversizedTxGoesAlone) {
  Transaction big;
  big.id = 99;
  for (int i = 0; i < 100; ++i) {
    big.rwset.writes.push_back(
        WriteItem{"key" + std::to_string(i), std::string(100, 'x'), false});
  }
  BlockCutter cutter(BlockCutter::Config{1000, 512});
  cutter.AddTransaction(SmallTx(1));
  auto batches = cutter.AddTransaction(std::move(big));
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 1u);  // flushed pending
  EXPECT_EQ(batches[1].size(), 1u);  // the oversized one alone
  EXPECT_EQ(batches[1][0].id, 99u);
}

TEST(BlockCutterTest, PendingBytesTracked) {
  BlockCutter cutter(BlockCutter::Config{100, 1 << 20});
  EXPECT_EQ(cutter.pending_bytes(), 0u);
  Transaction tx = SmallTx(1);
  uint64_t bytes = tx.ByteSize();
  cutter.AddTransaction(std::move(tx));
  EXPECT_EQ(cutter.pending_bytes(), bytes);
}

TEST(ConsensusModelTest, LatencyScalesWithReplicas) {
  Rng rng(3);
  ConsensusModel small(1, 4000), large(9, 4000);
  double sum_small = 0, sum_large = 0;
  for (int i = 0; i < 1000; ++i) {
    sum_small += static_cast<double>(small.SampleLatency(rng));
    sum_large += static_cast<double>(large.SampleLatency(rng));
  }
  EXPECT_GT(sum_large, sum_small);
}

TEST(ConsensusModelTest, JitterWithinBand) {
  Rng rng(5);
  ConsensusModel model(3, 4000);
  for (int i = 0; i < 1000; ++i) {
    SimTime latency = model.SampleLatency(rng);
    EXPECT_GE(latency, 4000 * 0.8 * 1.0);
    EXPECT_LE(latency, 4000 * 1.2 * 1.4);
  }
}

}  // namespace
}  // namespace fabricsim
