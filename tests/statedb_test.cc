#include <gtest/gtest.h>

#include "src/statedb/latency_profile.h"
#include "src/statedb/memory_state_db.h"
#include "src/statedb/rich_query.h"

namespace fabricsim {
namespace {

// ----------------------------------------------------- MemoryStateDb

TEST(MemoryStateDbTest, PutGetDelete) {
  MemoryStateDb db;
  EXPECT_FALSE(db.Get("k").has_value());
  ASSERT_TRUE(db.ApplyWrite(WriteItem{"k", "v1", false}, {1, 0}).ok());
  auto got = db.Get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, "v1");
  EXPECT_EQ(got->version, (Version{1, 0}));
  ASSERT_TRUE(db.ApplyWrite(WriteItem{"k", "v2", false}, {2, 3}).ok());
  EXPECT_EQ(db.Get("k")->version, (Version{2, 3}));
  ASSERT_TRUE(db.ApplyWrite(WriteItem{"k", "", true}, {3, 0}).ok());
  EXPECT_FALSE(db.Get("k").has_value());
  EXPECT_EQ(db.Size(), 0u);
}

TEST(MemoryStateDbTest, DeleteMissingIsNoop) {
  MemoryStateDb db;
  EXPECT_TRUE(db.ApplyWrite(WriteItem{"ghost", "", true}, {1, 0}).ok());
}

TEST(MemoryStateDbTest, RangeScanHalfOpen) {
  MemoryStateDb db;
  for (int i = 0; i < 10; ++i) {
    db.ApplyWrite(WriteItem{"k" + std::to_string(i), "v", false}, {1, 0});
  }
  auto range = db.GetRange("k2", "k5");
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].key, "k2");
  EXPECT_EQ(range[2].key, "k4");
}

TEST(MemoryStateDbTest, RangeScanOpenEnd) {
  MemoryStateDb db;
  db.ApplyWrite(WriteItem{"a", "1", false}, {1, 0});
  db.ApplyWrite(WriteItem{"b", "2", false}, {1, 1});
  auto range = db.GetRange("a", "");
  EXPECT_EQ(range.size(), 2u);
}

TEST(MemoryStateDbTest, ScanReturnsAllInOrder) {
  MemoryStateDb db;
  db.ApplyWrite(WriteItem{"z", "1", false}, {1, 0});
  db.ApplyWrite(WriteItem{"a", "2", false}, {1, 1});
  auto all = db.Scan();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].key, "a");
  EXPECT_EQ(all[1].key, "z");
}

// --------------------------------------------------------- JSON utils

TEST(JsonTest, BuildAndExtract) {
  std::string doc = JsonObject({{"docType", "unit"}, {"lsp", "LSP3"}});
  EXPECT_EQ(doc, "{\"docType\":\"unit\",\"lsp\":\"LSP3\"}");
  EXPECT_EQ(ExtractJsonField(doc, "docType").value_or(""), "unit");
  EXPECT_EQ(ExtractJsonField(doc, "lsp").value_or(""), "LSP3");
  EXPECT_FALSE(ExtractJsonField(doc, "missing").has_value());
}

// --------------------------------------------------------- RichQuery

TEST(RichQueryTest, ParseValidSelector) {
  auto sel = RichQuerySelector::Parse("docType==unit&lsp==LSP3");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().terms().size(), 2u);
  EXPECT_EQ(sel.value().ToString(), "docType==unit&lsp==LSP3");
}

TEST(RichQueryTest, ParseRejectsGarbage) {
  EXPECT_FALSE(RichQuerySelector::Parse("").ok());
  EXPECT_FALSE(RichQuerySelector::Parse("nonsense").ok());
  EXPECT_FALSE(RichQuerySelector::Parse("==v").ok());
}

TEST(RichQueryTest, MatchesConjunction) {
  auto sel = RichQuerySelector::Parse("docType==unit&lsp==LSP3").value();
  EXPECT_TRUE(
      sel.Matches(JsonObject({{"docType", "unit"}, {"lsp", "LSP3"}})));
  EXPECT_FALSE(
      sel.Matches(JsonObject({{"docType", "unit"}, {"lsp", "LSP1"}})));
  EXPECT_FALSE(sel.Matches(JsonObject({{"docType", "unit"}})));
}

TEST(RichQueryTest, ExecuteScansDocuments) {
  MemoryStateDb db;
  for (int i = 0; i < 6; ++i) {
    std::string lsp = i < 4 ? "LSP0" : "LSP1";
    db.ApplyWrite(
        WriteItem{"u" + std::to_string(i),
                  JsonObject({{"docType", "unit"}, {"lsp", lsp}}), false},
        {1, 0});
  }
  db.ApplyWrite(WriteItem{"meta", JsonObject({{"docType", "meta"}}), false},
                {1, 0});
  auto sel = RichQuerySelector::Parse("docType==unit&lsp==LSP0").value();
  auto hits = ExecuteRichQuery(db, sel);
  EXPECT_EQ(hits.size(), 4u);
}

// ----------------------------------------------------- LatencyProfile

TEST(LatencyProfileTest, CouchDbIsSlowerEverywhere) {
  DbLatencyProfile couch = DbLatencyProfile::CouchDb();
  DbLatencyProfile level = DbLatencyProfile::LevelDb();
  EXPECT_GT(couch.get, level.get);
  EXPECT_GT(couch.range_base, level.range_base);
  EXPECT_GT(couch.validate_per_read, level.validate_per_read);
  EXPECT_GT(couch.commit_per_write, level.commit_per_write);
  EXPECT_TRUE(couch.supports_rich_queries);
  EXPECT_FALSE(level.supports_rich_queries);
}

TEST(LatencyProfileTest, Table4PointLatencies) {
  // Paper Table 4 function-call latencies: GetState 8.3 ms vs 0.6 ms.
  EXPECT_EQ(DbLatencyProfile::CouchDb().get, FromMillis(8.3));
  EXPECT_EQ(DbLatencyProfile::LevelDb().get, FromMillis(0.6));
}

TEST(LatencyProfileTest, EndorseCostCountsOps) {
  DbLatencyProfile p = DbLatencyProfile::LevelDb();
  ReadWriteSet rwset;
  rwset.reads.push_back(ReadItem{"a", {0, 0}, true});
  rwset.reads.push_back(ReadItem{"b", {0, 0}, true});
  rwset.writes.push_back(WriteItem{"c", "v", false});
  rwset.writes.push_back(WriteItem{"d", "", true});
  SimTime expected = 2 * p.get + p.put + p.del;
  EXPECT_EQ(p.EndorseCost(rwset), expected);
}

TEST(LatencyProfileTest, RangeCostScalesWithKeys) {
  DbLatencyProfile p = DbLatencyProfile::CouchDb();
  ReadWriteSet small, large;
  RangeQueryInfo rq;
  rq.phantom_check = true;
  rq.reads.assign(2, ReadItem{"k", {0, 0}, true});
  small.range_queries.push_back(rq);
  rq.reads.assign(800, ReadItem{"k", {0, 0}, true});
  large.range_queries.push_back(rq);
  EXPECT_GT(p.EndorseCost(large), p.EndorseCost(small));
  EXPECT_GT(p.ValidateCost(large), p.ValidateCost(small));
}

TEST(LatencyProfileTest, RichQueriesNotRevalidated) {
  DbLatencyProfile p = DbLatencyProfile::CouchDb();
  ReadWriteSet rwset;
  RangeQueryInfo rich;
  rich.phantom_check = false;
  rich.reads.assign(500, ReadItem{"k", {0, 0}, true});
  rwset.range_queries.push_back(rich);
  EXPECT_EQ(p.ValidateCost(rwset), 0);
  EXPECT_GT(p.EndorseCost(rwset), 0);
}

TEST(LatencyProfileTest, CommitCost) {
  DbLatencyProfile p = DbLatencyProfile::LevelDb();
  EXPECT_EQ(p.CommitCost(0), p.commit_base);
  EXPECT_EQ(p.CommitCost(10), p.commit_base + 10 * p.commit_per_write);
}

TEST(StorageProfileTest, RamDiskIsCheaper) {
  EXPECT_LT(StorageProfile::RamDisk().commit_cost_factor,
            StorageProfile::Disk().commit_cost_factor);
}

}  // namespace
}  // namespace fabricsim
