#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/core/runner.h"
#include "src/statedb/latency_profile.h"
#include "src/statedb/memory_state_db.h"
#include "src/statedb/rich_query.h"
#include "src/statedb/state_backend.h"
#include "src/workload/ycsb.h"

namespace fabricsim {
namespace {

// ----------------------------------------------------- MemoryStateDb

TEST(MemoryStateDbTest, PutGetDelete) {
  MemoryStateDb db;
  EXPECT_FALSE(db.Get("k").has_value());
  ASSERT_TRUE(db.ApplyWrite(WriteItem{"k", "v1", false}, {1, 0}).ok());
  auto got = db.Get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, "v1");
  EXPECT_EQ(got->version, (Version{1, 0}));
  ASSERT_TRUE(db.ApplyWrite(WriteItem{"k", "v2", false}, {2, 3}).ok());
  EXPECT_EQ(db.Get("k")->version, (Version{2, 3}));
  ASSERT_TRUE(db.ApplyWrite(WriteItem{"k", "", true}, {3, 0}).ok());
  EXPECT_FALSE(db.Get("k").has_value());
  EXPECT_EQ(db.Size(), 0u);
}

TEST(MemoryStateDbTest, DeleteMissingIsNoop) {
  MemoryStateDb db;
  EXPECT_TRUE(db.ApplyWrite(WriteItem{"ghost", "", true}, {1, 0}).ok());
}

TEST(MemoryStateDbTest, RangeScanHalfOpen) {
  MemoryStateDb db;
  for (int i = 0; i < 10; ++i) {
    db.ApplyWrite(WriteItem{"k" + std::to_string(i), "v", false}, {1, 0});
  }
  auto range = db.GetRange("k2", "k5");
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].key, "k2");
  EXPECT_EQ(range[2].key, "k4");
}

TEST(MemoryStateDbTest, RangeScanOpenEnd) {
  MemoryStateDb db;
  db.ApplyWrite(WriteItem{"a", "1", false}, {1, 0});
  db.ApplyWrite(WriteItem{"b", "2", false}, {1, 1});
  auto range = db.GetRange("a", "");
  EXPECT_EQ(range.size(), 2u);
}

TEST(MemoryStateDbTest, ScanReturnsAllInOrder) {
  MemoryStateDb db;
  db.ApplyWrite(WriteItem{"z", "1", false}, {1, 0});
  db.ApplyWrite(WriteItem{"a", "2", false}, {1, 1});
  auto all = db.Scan();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].key, "a");
  EXPECT_EQ(all[1].key, "z");
}

// --------------------------------------------------------- JSON utils

TEST(JsonTest, BuildAndExtract) {
  std::string doc = JsonObject({{"docType", "unit"}, {"lsp", "LSP3"}});
  EXPECT_EQ(doc, "{\"docType\":\"unit\",\"lsp\":\"LSP3\"}");
  EXPECT_EQ(ExtractJsonField(doc, "docType").value_or(""), "unit");
  EXPECT_EQ(ExtractJsonField(doc, "lsp").value_or(""), "LSP3");
  EXPECT_FALSE(ExtractJsonField(doc, "missing").has_value());
}

// --------------------------------------------------------- RichQuery

TEST(RichQueryTest, ParseValidSelector) {
  auto sel = RichQuerySelector::Parse("docType==unit&lsp==LSP3");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.value().terms().size(), 2u);
  EXPECT_EQ(sel.value().ToString(), "docType==unit&lsp==LSP3");
}

TEST(RichQueryTest, ParseRejectsGarbage) {
  EXPECT_FALSE(RichQuerySelector::Parse("").ok());
  EXPECT_FALSE(RichQuerySelector::Parse("nonsense").ok());
  EXPECT_FALSE(RichQuerySelector::Parse("==v").ok());
}

TEST(RichQueryTest, MatchesConjunction) {
  auto sel = RichQuerySelector::Parse("docType==unit&lsp==LSP3").value();
  EXPECT_TRUE(
      sel.Matches(JsonObject({{"docType", "unit"}, {"lsp", "LSP3"}})));
  EXPECT_FALSE(
      sel.Matches(JsonObject({{"docType", "unit"}, {"lsp", "LSP1"}})));
  EXPECT_FALSE(sel.Matches(JsonObject({{"docType", "unit"}})));
}

TEST(RichQueryTest, ExecuteScansDocuments) {
  MemoryStateDb db;
  for (int i = 0; i < 6; ++i) {
    std::string lsp = i < 4 ? "LSP0" : "LSP1";
    db.ApplyWrite(
        WriteItem{"u" + std::to_string(i),
                  JsonObject({{"docType", "unit"}, {"lsp", lsp}}), false},
        {1, 0});
  }
  db.ApplyWrite(WriteItem{"meta", JsonObject({{"docType", "meta"}}), false},
                {1, 0});
  auto sel = RichQuerySelector::Parse("docType==unit&lsp==LSP0").value();
  auto hits = ExecuteRichQuery(db, sel);
  EXPECT_EQ(hits.size(), 4u);
}

// ---------------------------------------------------- StateBackend

TEST(StateBackendTest, FactoryAndNames) {
  EXPECT_EQ(AllStateBackends().size(), 3u);
  // The reference backend comes first: differential tests and benches
  // compare everything else against index 0.
  EXPECT_EQ(AllStateBackends()[0], StateBackendType::kOrderedMap);
  for (StateBackendType backend : AllStateBackends()) {
    const char* name = StateBackendTypeToString(backend);
    auto parsed = StateBackendTypeFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, backend);
    EXPECT_NE(MakeStateDb(backend), nullptr);
  }
  EXPECT_EQ(StateBackendTypeFromString("map"), StateBackendType::kOrderedMap);
  EXPECT_EQ(StateBackendTypeFromString("hash_index"),
            StateBackendType::kHashIndex);
  EXPECT_EQ(StateBackendTypeFromString("b+tree"), StateBackendType::kBTree);
  EXPECT_FALSE(StateBackendTypeFromString("rocksdb").has_value());
}

TEST(StateBackendTest, KeyInRangeIsTheRangeDefinition) {
  EXPECT_TRUE(KeyInRange("b", "a", "c"));
  EXPECT_TRUE(KeyInRange("a", "a", "c"));   // start inclusive
  EXPECT_FALSE(KeyInRange("c", "a", "c"));  // end exclusive
  EXPECT_TRUE(KeyInRange("z", "a", ""));    // empty end = to end of space
  EXPECT_TRUE(KeyInRange("a", "", ""));     // empty start = from the front
  EXPECT_FALSE(KeyInRange("a", "b", ""));
}

// Every backend must present the exact same observable behaviour; these
// tests run the full contract against each of them in turn.
class AllBackendsTest : public ::testing::TestWithParam<StateBackendType> {};

INSTANTIATE_TEST_SUITE_P(
    StateDb, AllBackendsTest, ::testing::ValuesIn(AllStateBackends()),
    [](const ::testing::TestParamInfo<StateBackendType>& info) {
      return std::string(StateBackendTypeToString(info.param));
    });

TEST_P(AllBackendsTest, PointOps) {
  auto db = MakeStateDb(GetParam());
  EXPECT_FALSE(db->Get("k").has_value());
  EXPECT_FALSE(db->GetVersion("k").has_value());
  ASSERT_TRUE(db->ApplyWrite(WriteItem{"k", "v1", false}, {1, 0}).ok());
  ASSERT_TRUE(db->Get("k").has_value());
  EXPECT_EQ(db->Get("k")->value, "v1");
  EXPECT_EQ(*db->GetVersion("k"), (Version{1, 0}));
  // In-place update: value and version replaced, size unchanged.
  ASSERT_TRUE(db->ApplyWrite(WriteItem{"k", "v2", false}, {2, 3}).ok());
  EXPECT_EQ(db->Get("k")->value, "v2");
  EXPECT_EQ(*db->GetVersion("k"), (Version{2, 3}));
  EXPECT_EQ(db->Size(), 1u);
}

TEST_P(AllBackendsTest, DeletesAreAbsoluteEverywhere) {
  auto db = MakeStateDb(GetParam());
  for (int i = 0; i < 8; ++i) {
    db->ApplyWrite(WriteItem{"k" + std::to_string(i), "v", false}, {1, 0});
  }
  ASSERT_TRUE(db->ApplyWrite(WriteItem{"k3", "", true}, {2, 0}).ok());
  // The deleted key must be invisible to every read path alike.
  EXPECT_FALSE(db->Get("k3").has_value());
  EXPECT_FALSE(db->GetVersion("k3").has_value());
  EXPECT_EQ(db->Size(), 7u);
  for (const StateEntry& entry : db->GetRange("k0", "k9")) {
    EXPECT_NE(entry.key, "k3");
  }
  for (const StateEntry& entry : db->Scan()) {
    EXPECT_NE(entry.key, "k3");
  }
  db->ForEachEntry([](const std::string& key, const VersionedValue&) {
    EXPECT_NE(key, "k3");
  });
  db->ForEachVersionInRange("", "", [](const std::string& key, Version) {
    EXPECT_NE(key, "k3");
  });
  // Deleting a missing key is a no-op returning OK.
  EXPECT_TRUE(db->ApplyWrite(WriteItem{"ghost", "", true}, {2, 1}).ok());
  EXPECT_EQ(db->Size(), 7u);
  // A deleted key can be re-inserted and becomes fully visible again.
  ASSERT_TRUE(db->ApplyWrite(WriteItem{"k3", "back", false}, {3, 0}).ok());
  EXPECT_EQ(db->Get("k3")->value, "back");
  EXPECT_EQ(db->Size(), 8u);
}

TEST_P(AllBackendsTest, RangeSemantics) {
  auto db = MakeStateDb(GetParam());
  for (int i = 0; i < 10; ++i) {
    db->ApplyWrite(WriteItem{"k" + std::to_string(i), "v", false}, {1, 0});
  }
  auto range = db->GetRange("k2", "k5");  // half-open
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].key, "k2");
  EXPECT_EQ(range[2].key, "k4");
  EXPECT_EQ(db->GetRange("k7", "").size(), 3u);   // empty end = to end
  EXPECT_EQ(db->GetRange("", "k2").size(), 2u);   // empty start = from front
  EXPECT_EQ(db->GetRange("", "").size(), 10u);    // the whole key space
  EXPECT_TRUE(db->GetRange("k5", "k5").empty());  // degenerate interval
  EXPECT_TRUE(db->GetRange("x", "y").empty());    // past the last key
  // Strictly ascending enumeration everywhere.
  auto all = db->Scan();
  ASSERT_EQ(all.size(), 10u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].key, all[i].key);
  }
}

TEST_P(AllBackendsTest, SurvivesGrowthAndTombstoneChurn) {
  // Enough keys to force several hash-table doublings and B+-tree leaf
  // splits; then delete-heavy churn to pile up tombstones and trigger
  // the same-size rehash purge, then re-insert over the graves.
  auto db = MakeStateDb(GetParam());
  std::map<std::string, VersionedValue> reference;
  auto put = [&](uint64_t i, uint32_t tx) {
    std::string key = YcsbDriver::Key(i);
    db->ApplyWrite(WriteItem{key, "v" + std::to_string(tx), false}, {1, tx});
    reference[key] = VersionedValue{"v" + std::to_string(tx), {1, tx}};
  };
  auto del = [&](uint64_t i) {
    std::string key = YcsbDriver::Key(i);
    db->ApplyWrite(WriteItem{key, "", true}, {2, 0});
    reference.erase(key);
  };
  for (uint64_t i = 0; i < 5000; ++i) put(i, 0);
  for (uint64_t i = 0; i < 5000; i += 2) del(i);
  for (uint64_t i = 1; i < 5000; i += 4) del(i);
  for (uint64_t i = 0; i < 5000; i += 8) put(i, 7);
  ASSERT_EQ(db->Size(), reference.size());
  auto all = db->Scan();
  ASSERT_EQ(all.size(), reference.size());
  auto it = reference.begin();
  for (const StateEntry& entry : all) {
    EXPECT_EQ(entry.key, it->first);
    EXPECT_EQ(entry.vv.value, it->second.value);
    EXPECT_EQ(entry.vv.version, it->second.version);
    ++it;
  }
}

// ------------------------------------------- randomized differential

// Drives identical seeded op sequences through every backend and an
// ordered-map reference, comparing full observable state at interval
// checkpoints. Key space is kept small so deletes, re-inserts and
// ranges collide constantly.
void RunDifferential(uint64_t seed, double delete_frac, double range_frac) {
  constexpr uint64_t kKeySpace = 160;
  constexpr int kOps = 4000;
  std::vector<std::unique_ptr<StateDatabase>> dbs;
  for (StateBackendType backend : AllStateBackends()) {
    dbs.push_back(MakeStateDb(backend));
  }
  std::map<std::string, VersionedValue> reference;
  Rng rng(seed, /*stream=*/55);

  auto check = [&](int op) {
    const auto golden = dbs[0]->Scan();
    ASSERT_EQ(golden.size(), reference.size()) << "op " << op;
    auto it = reference.begin();
    for (const StateEntry& entry : golden) {
      ASSERT_EQ(entry.key, it->first) << "op " << op;
      ASSERT_EQ(entry.vv.value, it->second.value) << "op " << op;
      ASSERT_EQ(entry.vv.version, it->second.version) << "op " << op;
      ++it;
    }
    for (size_t b = 1; b < dbs.size(); ++b) {
      SCOPED_TRACE(StrFormat("backend=%s op=%d",
                             StateBackendTypeToString(AllStateBackends()[b]),
                             op));
      ASSERT_EQ(dbs[b]->Size(), dbs[0]->Size());
      const auto scan = dbs[b]->Scan();
      ASSERT_EQ(scan.size(), golden.size());
      for (size_t i = 0; i < scan.size(); ++i) {
        ASSERT_EQ(scan[i].key, golden[i].key);
        ASSERT_EQ(scan[i].vv.value, golden[i].vv.value);
        ASSERT_EQ(scan[i].vv.version, golden[i].vv.version);
      }
    }
  };

  for (int op = 0; op < kOps; ++op) {
    double p = rng.UniformDouble();
    if (p < range_frac) {
      // Range probe (including empty start/end forms) — compared
      // directly across backends.
      uint64_t a = rng.UniformU64(kKeySpace), b = rng.UniformU64(kKeySpace);
      std::string lo = rng.Bernoulli(0.1) ? "" : YcsbDriver::Key(std::min(a, b));
      std::string hi = rng.Bernoulli(0.1) ? "" : YcsbDriver::Key(std::max(a, b));
      const auto golden = dbs[0]->GetRange(lo, hi);
      for (size_t b2 = 1; b2 < dbs.size(); ++b2) {
        const auto got = dbs[b2]->GetRange(lo, hi);
        ASSERT_EQ(got.size(), golden.size())
            << StateBackendTypeToString(AllStateBackends()[b2]) << " ["
            << lo << ", " << hi << ") op " << op;
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].key, golden[i].key);
          ASSERT_EQ(got[i].vv.version, golden[i].vv.version);
        }
      }
    } else if (p < range_frac + delete_frac) {
      std::string key = YcsbDriver::Key(rng.UniformU64(kKeySpace));
      for (auto& db : dbs) {
        ASSERT_TRUE(db->ApplyWrite(WriteItem{key, "", true},
                                   {3, static_cast<uint32_t>(op)})
                        .ok());
      }
      reference.erase(key);
    } else {
      std::string key = YcsbDriver::Key(rng.UniformU64(kKeySpace));
      std::string value = "v" + std::to_string(op);
      Version version{2, static_cast<uint32_t>(op)};
      for (auto& db : dbs) {
        ASSERT_TRUE(db->ApplyWrite(WriteItem{key, value, false}, version).ok());
      }
      reference[key] = VersionedValue{value, version};
    }
    if (op % 97 == 0) check(op);
  }
  check(kOps);
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(StateDbSeeds, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST_P(DifferentialTest, DeleteHeavyMix) {
  RunDifferential(GetParam(), /*delete_frac=*/0.45, /*range_frac=*/0.05);
}

TEST_P(DifferentialTest, RangeHeavyMix) {
  RunDifferential(GetParam(), /*delete_frac=*/0.15, /*range_frac=*/0.40);
}

// ------------------------------------------------------- YCSB driver

TEST(YcsbTest, WorkloadNamesRoundTrip) {
  for (YcsbWorkload workload :
       {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC, YcsbWorkload::kD,
        YcsbWorkload::kE, YcsbWorkload::kF}) {
    auto parsed = YcsbWorkloadFromString(YcsbWorkloadToString(workload));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, workload);
  }
  EXPECT_FALSE(YcsbWorkloadFromString("G").has_value());
  EXPECT_FALSE(YcsbWorkloadFromString("").has_value());
}

TEST(YcsbTest, KeysAreOrderedAndFixedWidth) {
  EXPECT_EQ(YcsbDriver::Key(0), "user0000000000");
  EXPECT_EQ(YcsbDriver::Key(1234), "user0000001234");
  EXPECT_LT(YcsbDriver::Key(9), YcsbDriver::Key(10));  // lexicographic==numeric
}

TEST(YcsbTest, LoadPopulatesRecordCount) {
  YcsbConfig config;
  config.record_count = 500;
  config.value_size = 16;
  YcsbDriver driver(config);
  auto db = MakeStateDb(StateBackendType::kHashIndex);
  ASSERT_TRUE(driver.Load(*db).ok());
  EXPECT_EQ(db->Size(), 500u);
  auto got = db->Get(YcsbDriver::Key(123));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value.size(), 16u);
  EXPECT_EQ(got->version, (Version{0, 123}));
}

TEST(YcsbTest, MixesExecuteTheConfiguredOpCounts) {
  for (YcsbWorkload workload :
       {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC, YcsbWorkload::kD,
        YcsbWorkload::kE, YcsbWorkload::kF}) {
    YcsbConfig config;
    config.workload = workload;
    config.record_count = 400;
    config.operation_count = 2000;
    config.value_size = 8;
    YcsbDriver driver(config);
    auto db = MakeStateDb(StateBackendType::kOrderedMap);
    ASSERT_TRUE(driver.Load(*db).ok());
    YcsbCounts counts = driver.Run(*db);
    uint64_t total = counts.reads + counts.updates + counts.inserts +
                     counts.scans + counts.read_modify_writes;
    EXPECT_EQ(total, 2000u) << YcsbWorkloadToString(workload);
    // Every keyed read targets a loaded (or just-inserted) key.
    EXPECT_EQ(counts.read_hits, counts.reads);
    switch (workload) {
      case YcsbWorkload::kC:
        EXPECT_EQ(counts.reads, 2000u);
        break;
      case YcsbWorkload::kE:
        EXPECT_GT(counts.scans, 1700u);
        EXPECT_GT(counts.scanned_entries, counts.scans);
        break;
      case YcsbWorkload::kF:
        EXPECT_GT(counts.read_modify_writes, 0u);
        break;
      default:
        break;
    }
  }
}

TEST(YcsbTest, ChecksumIsDeterministicAndBackendInvariant) {
  for (YcsbWorkload workload :
       {YcsbWorkload::kA, YcsbWorkload::kD, YcsbWorkload::kE}) {
    YcsbConfig config;
    config.workload = workload;
    config.record_count = 300;
    config.operation_count = 1500;
    config.value_size = 8;
    std::vector<uint64_t> checksums;
    for (StateBackendType backend : AllStateBackends()) {
      YcsbDriver driver(config);
      auto db = MakeStateDb(backend);
      ASSERT_TRUE(driver.Load(*db).ok());
      checksums.push_back(driver.Run(*db).checksum);
    }
    for (uint64_t checksum : checksums) {
      EXPECT_EQ(checksum, checksums[0]) << YcsbWorkloadToString(workload);
    }
    // And re-running the reference backend reproduces the checksum.
    YcsbDriver again(config);
    auto db = MakeStateDb(StateBackendType::kOrderedMap);
    ASSERT_TRUE(again.Load(*db).ok());
    EXPECT_EQ(again.Run(*db).checksum, checksums[0]);
  }
}

// ------------------------------------------- full-network regression

// Same exhaustive numeric fingerprint as channel_test.cc / fault_test.cc.
std::string ReportFingerprint(const FailureReport& r) {
  std::string out;
  out += StrFormat(
      "ledger=%llu valid=%llu endorse=%llu mvcc_intra=%llu "
      "mvcc_inter=%llu phantom=%llu submitted=%llu app=%llu\n",
      static_cast<unsigned long long>(r.ledger_txs),
      static_cast<unsigned long long>(r.valid_txs),
      static_cast<unsigned long long>(r.endorsement_failures),
      static_cast<unsigned long long>(r.mvcc_intra),
      static_cast<unsigned long long>(r.mvcc_inter),
      static_cast<unsigned long long>(r.phantom),
      static_cast<unsigned long long>(r.submitted_txs),
      static_cast<unsigned long long>(r.app_errors));
  out += StrFormat("pct=%.17g/%.17g/%.17g/%.17g/%.17g\n", r.total_failure_pct,
                   r.endorsement_pct, r.mvcc_pct, r.phantom_pct,
                   r.early_abort_pct);
  out += StrFormat("lat=%.17g/%.17g/%.17g tput=%.17g/%.17g\n", r.avg_latency_s,
                   r.p50_latency_s, r.p99_latency_s, r.committed_throughput_tps,
                   r.valid_throughput_tps);
  return out;
}

TEST(StateBackendNetworkTest, Fig07StyleRunIsBitIdenticalUnderEveryBackend) {
  // The backend is a data-structure swap below the simulation: a full
  // E-O-V run (fig07-style MVCC-conflict config, range queries and
  // deletes included via the scm chaincode) must produce the same
  // FailureReport to the last bit whichever backend holds the state.
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 10 * kSecond;
  config.arrival_rate_tps = 100;
  config.fabric.block_size = 100;
  config.workload.chaincode = "scm";
  std::vector<std::string> fingerprints;
  for (StateBackendType backend : AllStateBackends()) {
    config.fabric.state_backend = backend;
    Result<FailureReport> r = RunOnce(config, 42);
    ASSERT_TRUE(r.ok()) << StateBackendTypeToString(backend);
    fingerprints.push_back(ReportFingerprint(r.value()));
  }
  for (size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[i], fingerprints[0])
        << StateBackendTypeToString(AllStateBackends()[i]);
  }
  // A run must actually have happened (guard against vacuous identity).
  Result<FailureReport> sanity = RunOnce(config, 42);
  ASSERT_TRUE(sanity.ok());
  EXPECT_GT(sanity.value().ledger_txs, 0u);
}

TEST(StateBackendNetworkTest, DescribeOnlyMentionsNonDefaultBackends) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  EXPECT_EQ(config.Describe().find("backend="), std::string::npos);
  config.fabric.state_backend = StateBackendType::kHashIndex;
  EXPECT_NE(config.Describe().find("backend=hash"), std::string::npos);
}

// ----------------------------------------------------- LatencyProfile

TEST(LatencyProfileTest, CouchDbIsSlowerEverywhere) {
  DbLatencyProfile couch = DbLatencyProfile::CouchDb();
  DbLatencyProfile level = DbLatencyProfile::LevelDb();
  EXPECT_GT(couch.get, level.get);
  EXPECT_GT(couch.range_base, level.range_base);
  EXPECT_GT(couch.validate_per_read, level.validate_per_read);
  EXPECT_GT(couch.commit_per_write, level.commit_per_write);
  EXPECT_TRUE(couch.supports_rich_queries);
  EXPECT_FALSE(level.supports_rich_queries);
}

TEST(LatencyProfileTest, Table4PointLatencies) {
  // Paper Table 4 function-call latencies: GetState 8.3 ms vs 0.6 ms.
  EXPECT_EQ(DbLatencyProfile::CouchDb().get, FromMillis(8.3));
  EXPECT_EQ(DbLatencyProfile::LevelDb().get, FromMillis(0.6));
}

TEST(LatencyProfileTest, EndorseCostCountsOps) {
  DbLatencyProfile p = DbLatencyProfile::LevelDb();
  ReadWriteSet rwset;
  rwset.reads.push_back(ReadItem{"a", {0, 0}, true});
  rwset.reads.push_back(ReadItem{"b", {0, 0}, true});
  rwset.writes.push_back(WriteItem{"c", "v", false});
  rwset.writes.push_back(WriteItem{"d", "", true});
  SimTime expected = 2 * p.get + p.put + p.del;
  EXPECT_EQ(p.EndorseCost(rwset), expected);
}

TEST(LatencyProfileTest, RangeCostScalesWithKeys) {
  DbLatencyProfile p = DbLatencyProfile::CouchDb();
  ReadWriteSet small, large;
  RangeQueryInfo rq;
  rq.phantom_check = true;
  rq.reads.assign(2, ReadItem{"k", {0, 0}, true});
  small.range_queries.push_back(rq);
  rq.reads.assign(800, ReadItem{"k", {0, 0}, true});
  large.range_queries.push_back(rq);
  EXPECT_GT(p.EndorseCost(large), p.EndorseCost(small));
  EXPECT_GT(p.ValidateCost(large), p.ValidateCost(small));
}

TEST(LatencyProfileTest, RichQueriesNotRevalidated) {
  DbLatencyProfile p = DbLatencyProfile::CouchDb();
  ReadWriteSet rwset;
  RangeQueryInfo rich;
  rich.phantom_check = false;
  rich.reads.assign(500, ReadItem{"k", {0, 0}, true});
  rwset.range_queries.push_back(rich);
  EXPECT_EQ(p.ValidateCost(rwset), 0);
  EXPECT_GT(p.EndorseCost(rwset), 0);
}

TEST(LatencyProfileTest, CommitCost) {
  DbLatencyProfile p = DbLatencyProfile::LevelDb();
  EXPECT_EQ(p.CommitCost(0), p.commit_base);
  EXPECT_EQ(p.CommitCost(10), p.commit_base + 10 * p.commit_per_write);
}

TEST(StorageProfileTest, RamDiskIsCheaper) {
  EXPECT_LT(StorageProfile::RamDisk().commit_cost_factor,
            StorageProfile::Disk().commit_cost_factor);
}

}  // namespace
}  // namespace fabricsim
