// Actor-level tests for the Peer: endorsement queueing, out-of-order
// block buffering, validation-cache sharing, and the FabricSharp
// snapshot view.
#include <gtest/gtest.h>

#include <memory>

#include "src/chaincode/genchain.h"
#include "src/peer/peer.h"
#include "src/policy/policy_presets.h"

namespace fabricsim {
namespace {

class PeerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<Environment>(7);
    net_ = std::make_unique<Network>(NetworkConfig{}, Rng(7));
    chaincode_ = std::make_unique<GenChaincode>(
        GenChaincodeSpec::PaperDefault(/*keys=*/50));
  }

  Peer::Params BaseParams() {
    Peer::Params params;
    params.id = 0;
    params.org = 0;
    params.node = 1;
    params.env = env_.get();
    params.net = net_.get();
    params.chaincode = chaincode_.get();
    params.policy = MakePolicy(PolicyPreset::kP0AllOrgs, 2);
    params.db_profile = DbLatencyProfile::LevelDb();
    params.timing = TimingConfig{};
    params.timing.peer_service_jitter = 0;  // deterministic for tests
    params.rng = Rng(7);
    return params;
  }

  std::shared_ptr<Block> MakeWriterBlock(uint64_t number,
                                         const std::string& key) {
    auto block = std::make_shared<Block>();
    block->number = number;
    Transaction tx;
    tx.id = number;
    tx.rwset.writes.push_back(WriteItem{key, "v" + std::to_string(number),
                                        false});
    uint64_t digest = tx.rwset.Digest();
    tx.endorsements.push_back(Endorsement{0, 0, digest, true});
    tx.endorsements.push_back(Endorsement{1, 1, digest, true});
    block->txs.push_back(std::move(tx));
    block->results.assign(1, TxValidationResult{});
    return block;
  }

  std::unique_ptr<Environment> env_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<GenChaincode> chaincode_;
};

TEST_F(PeerTest, EndorsesAgainstBootstrappedState) {
  Peer peer(BaseParams());
  ASSERT_TRUE(peer.Bootstrap(chaincode_->BootstrapState()).ok());

  ProposalResponse got;
  ProposalRequest request;
  request.tx_id = 42;
  request.invocation = Invocation{"readKeys", {GenChaincode::Key(3)}};
  request.reply = [&](const ProposalResponse& r) { got = r; };
  peer.HandleProposal(std::move(request));
  env_->RunAll();

  EXPECT_EQ(got.tx_id, 42u);
  EXPECT_TRUE(got.app_ok);
  ASSERT_EQ(got.rwset.reads.size(), 1u);
  EXPECT_TRUE(got.rwset.reads[0].found);
  EXPECT_EQ(got.rwset.reads[0].version, kBootstrapVersion);
  EXPECT_EQ(got.endorsement.org_id, 0);
  EXPECT_EQ(got.endorsement.rwset_digest, got.rwset.Digest());
}

TEST_F(PeerTest, EndorsementTakesDbAndSigningTime) {
  Peer peer(BaseParams());
  ASSERT_TRUE(peer.Bootstrap(chaincode_->BootstrapState()).ok());
  SimTime completion = -1;
  ProposalRequest request;
  request.invocation = Invocation{"readKeys", {GenChaincode::Key(0)}};
  request.reply = [&](const ProposalResponse&) { completion = env_->now(); };
  peer.HandleProposal(std::move(request));
  env_->RunAll();
  TimingConfig timing;
  SimTime expected = timing.proposal_overhead +
                     DbLatencyProfile::LevelDb().get +
                     timing.endorsement_sign_cost;
  EXPECT_EQ(completion, expected);
}

TEST_F(PeerTest, OutOfOrderBlocksAreBuffered) {
  Peer peer(BaseParams());
  ASSERT_TRUE(peer.Bootstrap(chaincode_->BootstrapState()).ok());
  std::string key = GenChaincode::Key(1);

  // Deliver block 2 before block 1 (network reordering).
  peer.HandleBlock(MakeWriterBlock(2, key));
  env_->RunAll();
  EXPECT_EQ(peer.committed_height(), 0u);  // still waiting for block 1

  peer.HandleBlock(MakeWriterBlock(1, key));
  env_->RunAll();
  EXPECT_EQ(peer.committed_height(), 2u);
  // Block 2's write won (applied last).
  EXPECT_EQ(peer.state().Get(key)->value, "v2");
  EXPECT_EQ(peer.state().Get(key)->version, (Version{2, 0}));
}

TEST_F(PeerTest, CommitCallbackFiresInOrder) {
  Peer::Params params = BaseParams();
  std::vector<uint64_t> committed;
  params.on_commit = [&](ChannelId, uint64_t number,
                         const ValidationOutcome&) {
    committed.push_back(number);
  };
  Peer peer(std::move(params));
  ASSERT_TRUE(peer.Bootstrap(chaincode_->BootstrapState()).ok());
  peer.HandleBlock(MakeWriterBlock(3, GenChaincode::Key(0)));
  peer.HandleBlock(MakeWriterBlock(1, GenChaincode::Key(0)));
  peer.HandleBlock(MakeWriterBlock(2, GenChaincode::Key(0)));
  env_->RunAll();
  EXPECT_EQ(committed, (std::vector<uint64_t>{1, 2, 3}));
}

TEST_F(PeerTest, ValidationCacheSharedAcrossPeers) {
  ValidationOutcomeCache cache(/*consumers=*/2);
  int computations = 0;

  Peer::Params p1 = BaseParams();
  p1.validation_cache = &cache;
  Peer::Params p2 = BaseParams();
  p2.id = 1;
  p2.node = 2;
  p2.validation_cache = &cache;
  Peer peer1(std::move(p1));
  Peer peer2(std::move(p2));
  ASSERT_TRUE(peer1.Bootstrap(chaincode_->BootstrapState()).ok());
  ASSERT_TRUE(peer2.Bootstrap(chaincode_->BootstrapState()).ok());

  // Count computations via the cache API directly.
  auto outcome_a = cache.GetOrCompute(7, [&] {
    ++computations;
    return ValidationOutcome{};
  });
  auto outcome_b = cache.GetOrCompute(7, [&] {
    ++computations;
    return ValidationOutcome{};
  });
  EXPECT_EQ(computations, 1);
  EXPECT_EQ(outcome_a.get(), outcome_b.get());
  // Entry is dropped after the last consumer.
  EXPECT_EQ(cache.live_entries(), 0u);

  auto block = MakeWriterBlock(1, GenChaincode::Key(4));
  peer1.HandleBlock(block);
  peer2.HandleBlock(block);
  env_->RunAll();
  EXPECT_EQ(peer1.committed_height(), 1u);
  EXPECT_EQ(peer2.committed_height(), 1u);
  EXPECT_EQ(cache.live_entries(), 0u);
  EXPECT_EQ(peer1.state().Get(GenChaincode::Key(4))->value,
            peer2.state().Get(GenChaincode::Key(4))->value);
}

TEST_F(PeerTest, FabricSharpSnapshotViewLagsCommittedState) {
  Peer::Params params = BaseParams();
  params.variant = FabricVariant::kFabricSharp;
  params.snapshot_interval = 500 * kMillisecond;
  Peer peer(std::move(params));
  ASSERT_TRUE(peer.Bootstrap(chaincode_->BootstrapState()).ok());
  std::string key = GenChaincode::Key(9);

  peer.HandleBlock(MakeWriterBlock(1, key));
  // Run only until the validation commit completes, but before the
  // snapshot refresh (which happens up to 500 ms later).
  env_->RunUntil(90 * kMillisecond);
  ASSERT_EQ(peer.committed_height(), 1u);
  EXPECT_EQ(peer.state().Get(key)->value, "v1");
  // The endorsement view still serves the bootstrap value.
  EXPECT_NE(&peer.endorse_view(), &peer.state());
  EXPECT_EQ(peer.endorse_view().Get(key)->version, kBootstrapVersion);

  env_->RunAll();  // snapshot refresh applies
  EXPECT_EQ(peer.endorse_view().Get(key)->value, "v1");
}

TEST_F(PeerTest, VirtualBlockGroupAmortizesFixedCommitCosts) {
  // With a virtual block boundary of 2, only every second block pays
  // the fixed commit costs (state-DB batch + ledger fsync).
  Peer::Params grouped = BaseParams();
  grouped.virtual_block_group = 2;
  Peer peer_grouped(std::move(grouped));
  Peer peer_plain(BaseParams());
  ASSERT_TRUE(peer_grouped.Bootstrap(chaincode_->BootstrapState()).ok());
  ASSERT_TRUE(peer_plain.Bootstrap(chaincode_->BootstrapState()).ok());
  for (uint64_t n = 1; n <= 4; ++n) {
    peer_grouped.HandleBlock(MakeWriterBlock(n, GenChaincode::Key(2)));
    peer_plain.HandleBlock(MakeWriterBlock(n, GenChaincode::Key(2)));
  }
  env_->RunAll();
  EXPECT_EQ(peer_grouped.committed_height(), 4u);
  EXPECT_EQ(peer_plain.committed_height(), 4u);
  // Both end in the same state, but the grouped peer spent less
  // validation service time (2 of 4 fixed charges skipped).
  EXPECT_EQ(peer_grouped.state().Get(GenChaincode::Key(2))->value,
            peer_plain.state().Get(GenChaincode::Key(2))->value);
  EXPECT_LT(peer_grouped.validate_queue().total_service(),
            peer_plain.validate_queue().total_service());
}

TEST_F(PeerTest, StockVariantSharesEndorseView) {
  Peer peer(BaseParams());
  EXPECT_EQ(&peer.endorse_view(), &peer.state());
}

}  // namespace
}  // namespace fabricsim
