// Fault-injection subsystem tests: empty-plan bitwise identity against
// pre-PR golden fingerprints, DelayWindow equivalence with the legacy
// delayed_org knob, determinism across FABRICSIM_JOBS under an active
// fault mix, crash/restart catch-up correctness, orderer pause/resume,
// plan validation, and the retry-amplification experiment.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/strings.h"
#include "src/core/runner.h"
#include "src/fabric/fabric_network.h"
#include "src/workload/paper_workloads.h"

namespace fabricsim {
namespace {

// Exhaustive numeric fingerprint of a report: integer counters plus
// %.17g-rendered doubles, so two reports compare bit-for-bit. The
// format matches the generator that produced the golden strings below
// against the pre-PR tree.
std::string Fingerprint(const FailureReport& r) {
  std::string out;
  out += StrFormat(
      "ledger=%llu valid=%llu endorse=%llu mvcc_intra=%llu "
      "mvcc_inter=%llu phantom=%llu submitted=%llu app=%llu\n",
      static_cast<unsigned long long>(r.ledger_txs),
      static_cast<unsigned long long>(r.valid_txs),
      static_cast<unsigned long long>(r.endorsement_failures),
      static_cast<unsigned long long>(r.mvcc_intra),
      static_cast<unsigned long long>(r.mvcc_inter),
      static_cast<unsigned long long>(r.phantom),
      static_cast<unsigned long long>(r.submitted_txs),
      static_cast<unsigned long long>(r.app_errors));
  out += StrFormat("pct=%.17g/%.17g/%.17g/%.17g/%.17g\n", r.total_failure_pct,
                   r.endorsement_pct, r.mvcc_pct, r.phantom_pct,
                   r.early_abort_pct);
  out += StrFormat("lat=%.17g/%.17g/%.17g tput=%.17g/%.17g\n", r.avg_latency_s,
                   r.p50_latency_s, r.p99_latency_s, r.committed_throughput_tps,
                   r.valid_throughput_tps);
  return out;
}

// Golden fingerprints recorded against the tree BEFORE the fault
// subsystem existed (default C1 config, 20 s at 100 tps, seed 42).
// An empty FaultPlan must keep reproducing these byte-for-byte: the
// fault layer is required to be a strict no-op when unused — no extra
// RNG draws, no extra events, no perturbed fork streams.
constexpr char kGoldenDefault[] =
    "ledger=1998 valid=889 endorse=21 mvcc_intra=808 mvcc_inter=280 "
    "phantom=0 submitted=1998 app=0\n"
    "pct=55.505505505505504/1.0510510510510511/54.454454454454456/0/0\n"
    "lat=0.79166268968969022/0.75911118027396884/2.02848615705734 "
    "tput=95/44.450000000000003\n";

// Same config with the paper's Fig. 16 chaos: 100 ± 10 ms injected on
// org 1, recorded through the legacy delayed_org knob pre-PR. Both the
// legacy knob and the DelayWindow rewiring must reproduce it exactly.
constexpr char kGoldenDelayedOrg[] =
    "ledger=1998 valid=794 endorse=134 mvcc_intra=556 mvcc_inter=514 "
    "phantom=0 submitted=1998 app=0\n"
    "pct=60.26026026026026/6.706706706706707/53.553553553553556/0/0\n"
    "lat=0.98395471171171112/0.95217126197147772/2.2089206563091031 "
    "tput=95/39.700000000000003\n";

ExperimentConfig GoldenConfig() {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 20 * kSecond;
  config.arrival_rate_tps = 100;
  return config;
}

TEST(FaultGoldenTest, EmptyPlanReproducesPrePrFingerprint) {
  Result<FailureReport> r = RunOnce(GoldenConfig(), 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Fingerprint(r.value()), kGoldenDefault);
}

TEST(FaultGoldenTest, LegacyDelayedOrgKnobStillReproducesFingerprint) {
  ExperimentConfig config = GoldenConfig();
  config.fabric.delayed_org = 1;
  config.fabric.injected_delay = 100 * kMillisecond;
  config.fabric.injected_delay_jitter = 10 * kMillisecond;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Fingerprint(r.value()), kGoldenDelayedOrg);
}

// The Fig. 16 rewiring: a whole-run DelayWindow over org 1 must be
// draw-for-draw identical to the legacy delayed_org construction path.
TEST(FaultGoldenTest, DelayWindowMatchesLegacyDelayedOrg) {
  ExperimentConfig config = GoldenConfig();
  DelayWindow window;
  window.org = 1;
  window.extra = 100 * kMillisecond;
  window.jitter = 10 * kMillisecond;
  config.fabric.faults.Delay(window);
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Fingerprint(r.value()), kGoldenDelayedOrg);
}

// A chaos mix exercising every fault type plus client retries and
// MVCC resubmission. Used for the jobs-determinism check.
ExperimentConfig ChaosConfig() {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 8 * kSecond;
  config.arrival_rate_tps = 60;
  config.repetitions = 3;
  config.fabric.retry.endorse_timeout = 400 * kMillisecond;
  config.fabric.retry.max_endorse_retries = 2;
  config.fabric.retry.resubmit_on_mvcc = true;
  DelayWindow window;
  window.org = 1;
  window.extra = 50 * kMillisecond;
  window.jitter = 5 * kMillisecond;
  window.from = 2 * kSecond;
  window.to = 5 * kSecond;
  LinkFaultRule lossy;  // orderer <-> first client, 5% loss mid-run
  lossy.a = 0;
  lossy.b = 5;
  lossy.drop_prob = 0.05;
  lossy.from = 2 * kSecond;
  lossy.to = 6 * kSecond;
  config.fabric.faults.Delay(window)
      .Crash(/*peer=*/1, 3 * kSecond, /*restart_at=*/5 * kSecond)
      .PauseOrderer(4 * kSecond, 4500 * kMillisecond)
      .DropLink(lossy);
  return config;
}

TEST(FaultDeterminismTest, IdenticalAcrossJobCountsUnderActiveFaults) {
  ExperimentConfig config = ChaosConfig();
  SetParallelJobs(1);
  Result<ExperimentResult> serial = RunExperiment(config);
  SetParallelJobs(4);
  Result<ExperimentResult> parallel = RunExperiment(config);
  ParallelJobsFromEnv();  // restore the ambient setting for later tests
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial.value().repetitions.size(),
            parallel.value().repetitions.size());
  for (size_t i = 0; i < serial.value().repetitions.size(); ++i) {
    EXPECT_EQ(Fingerprint(serial.value().repetitions[i]),
              Fingerprint(parallel.value().repetitions[i]))
        << "repetition " << i;
  }
  EXPECT_EQ(Fingerprint(serial.value().mean),
            Fingerprint(parallel.value().mean));
}

// Builds a live network so actor state (peers, orderer, injector) can
// be inspected after the run.
struct LiveRun {
  std::unique_ptr<Environment> env;
  std::unique_ptr<FabricNetwork> network;
};

LiveRun RunLive(const ExperimentConfig& config, uint64_t seed) {
  LiveRun run;
  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto workload = std::shared_ptr<WorkloadGenerator>(
      std::move(MakeWorkload(config.workload, /*rich=*/true).value()));
  run.env = std::make_unique<Environment>(seed);
  run.network = std::make_unique<FabricNetwork>(config.fabric, run.env.get(),
                                                chaincode, workload);
  EXPECT_TRUE(run.network->Init().ok());
  run.network->StartLoad(config.arrival_rate_tps, config.duration);
  run.env->RunAll();
  return run;
}

std::vector<StateEntry> SortedState(const StateDatabase& db) {
  std::vector<StateEntry> entries = db.Scan();
  std::sort(entries.begin(), entries.end(),
            [](const StateEntry& a, const StateEntry& b) {
              return a.key < b.key;
            });
  return entries;
}

TEST(FaultCrashTest, RestartedPeerCatchesUpToHealthyReplicas) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 10 * kSecond;
  config.arrival_rate_tps = 50;
  // Retries let transactions routed to the dead peer complete via the
  // org's next round-robin peer instead of hanging forever.
  config.fabric.retry.endorse_timeout = 500 * kMillisecond;
  config.fabric.faults.Crash(/*peer=*/1, 3 * kSecond,
                             /*restart_at=*/6 * kSecond);
  LiveRun run = RunLive(config, 23);
  FabricNetwork& net = *run.network;

  ASSERT_NE(net.fault_injector(), nullptr);
  const std::vector<FaultEventRecord>& events = net.fault_injector()->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultEventRecord::Kind::kPeerCrash);
  EXPECT_EQ(events[0].at, 3 * kSecond);
  EXPECT_EQ(events[1].kind, FaultEventRecord::Kind::kPeerRestart);
  EXPECT_EQ(events[1].at, 6 * kSecond);

  const Peer& crashed = *net.peers()[1];
  EXPECT_TRUE(crashed.alive());
  EXPECT_GT(crashed.blocks_replayed(), 0u);
  EXPECT_GT(crashed.proposals_dropped() + crashed.blocks_dropped(), 0u);
  EXPECT_GT(net.stats().endorse_retries, 0u);

  // Every replica — including the crashed-then-restarted one — ends at
  // the canonical height with an identical world state.
  ASSERT_GT(net.ledger().height(), 0u);
  std::vector<StateEntry> reference = SortedState(net.peers()[0]->state());
  for (const auto& peer : net.peers()) {
    EXPECT_EQ(peer->committed_height(), net.ledger().height())
        << "peer " << peer->id();
    std::vector<StateEntry> state = SortedState(peer->state());
    ASSERT_EQ(state.size(), reference.size()) << "peer " << peer->id();
    for (size_t i = 0; i < state.size(); ++i) {
      EXPECT_EQ(state[i].key, reference[i].key);
      EXPECT_EQ(state[i].vv.value, reference[i].vv.value);
      EXPECT_EQ(state[i].vv.version, reference[i].vv.version);
    }
  }
}

TEST(FaultCrashTest, PeerDeadForRestOfRunStaysBehind) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 6 * kSecond;
  config.arrival_rate_tps = 50;
  config.fabric.retry.endorse_timeout = 500 * kMillisecond;
  config.fabric.faults.Crash(/*peer=*/3, 2 * kSecond);  // never restarts
  LiveRun run = RunLive(config, 29);
  const Peer& dead = *run.network->peers()[3];
  EXPECT_FALSE(dead.alive());
  EXPECT_GT(dead.blocks_dropped(), 0u);
  EXPECT_LT(dead.committed_height(), run.network->ledger().height());
}

TEST(FaultOrdererTest, PauseBuffersAndResumeDrainsInOrder) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 8 * kSecond;
  config.arrival_rate_tps = 50;
  config.fabric.faults.PauseOrderer(2 * kSecond, 4 * kSecond);
  LiveRun run = RunLive(config, 31);
  FabricNetwork& net = *run.network;

  EXPECT_FALSE(net.orderer().paused());
  EXPECT_GT(net.orderer().txs_deferred_while_paused(), 0u);
  ASSERT_EQ(net.fault_injector()->events().size(), 2u);
  EXPECT_EQ(net.fault_injector()->events()[0].kind,
            FaultEventRecord::Kind::kOrdererPause);
  EXPECT_EQ(net.fault_injector()->events()[1].kind,
            FaultEventRecord::Kind::kOrdererResume);

  // Nothing is lost: the buffered envelopes are ordered after resume
  // and the chain stays dense.
  uint64_t expected = 1;
  for (const Block& block : net.ledger().blocks()) {
    EXPECT_EQ(block.number, expected++);
  }
  for (const auto& peer : net.peers()) {
    EXPECT_EQ(peer->committed_height(), net.ledger().height());
  }
}

TEST(FaultPartitionTest, HardPartitionDropsMessagesDeterministically) {
  // Partition the orderer from org 1's peers mid-run: block deliveries
  // into that org are dropped during the window. There is no
  // retransmit in the model, so org 1's delivery pipeline stalls at
  // the first lost block — its peers keep endorsing on stale state,
  // which is exactly the silent-degradation mode the paper describes.
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 6 * kSecond;
  config.arrival_rate_tps = 100;
  config.fabric.faults.Partition(/*side_a=*/{0}, /*side_b=*/{3, 4},
                                 2 * kSecond, 3 * kSecond);
  LiveRun a = RunLive(config, 37);
  LiveRun b = RunLive(config, 37);
  EXPECT_GT(a.network->net().messages_dropped(), 0u);
  EXPECT_EQ(a.network->net().messages_dropped(),
            b.network->net().messages_dropped());
  EXPECT_EQ(Fingerprint(BuildFailureReport(a.network->ledger(),
                                           a.network->stats(),
                                           config.duration)),
            Fingerprint(BuildFailureReport(b.network->ledger(),
                                           b.network->stats(),
                                           config.duration)));
}

TEST(FaultPlanTest, InstallRejectsInvalidPlans) {
  ExperimentConfig base = ExperimentConfig::Defaults();
  base.duration = 1 * kSecond;
  auto expect_init = [&](const FaultPlan& plan, bool ok) {
    ExperimentConfig config = base;
    config.fabric.faults = plan;
    auto chaincode = MakeChaincodeFor(config.workload).value();
    auto workload = std::shared_ptr<WorkloadGenerator>(
        std::move(MakeWorkload(config.workload, true).value()));
    Environment env(1);
    FabricNetwork network(config.fabric, &env, chaincode, workload);
    EXPECT_EQ(network.Init().ok(), ok);
  };

  expect_init(FaultPlan{}.Crash(/*peer=*/99, 1 * kSecond), false);
  expect_init(FaultPlan{}.Crash(/*peer=*/1, 2 * kSecond, 1 * kSecond), false);
  expect_init(FaultPlan{}.PauseOrderer(2 * kSecond, 1 * kSecond), false);

  DelayWindow both;  // org and node are mutually exclusive
  both.org = 0;
  both.node = 1;
  both.extra = kMillisecond;
  expect_init(FaultPlan{}.Delay(both), false);

  DelayWindow inverted;
  inverted.org = 0;
  inverted.extra = kMillisecond;
  inverted.from = 2 * kSecond;
  inverted.to = 1 * kSecond;
  expect_init(FaultPlan{}.Delay(inverted), false);

  LinkFaultRule bad_prob;
  bad_prob.a = 0;
  bad_prob.b = 1;
  bad_prob.drop_prob = 1.5;
  expect_init(FaultPlan{}.DropLink(bad_prob), false);

  DelayWindow good;
  good.org = 1;
  good.extra = kMillisecond;
  expect_init(FaultPlan{}.Delay(good), true);
}

TEST(FaultPlanTest, NeedsFaultRngOnlyForProbabilisticRules) {
  EXPECT_FALSE(FaultPlan{}.NeedsFaultRng());
  FaultPlan hard;
  hard.Partition({0}, {1}, 0, kSecond);  // p = 1: no randomness
  EXPECT_FALSE(hard.NeedsFaultRng());
  LinkFaultRule lossy;
  lossy.a = 0;
  lossy.b = 1;
  lossy.drop_prob = 0.5;
  FaultPlan soft;
  soft.DropLink(lossy);
  EXPECT_TRUE(soft.NeedsFaultRng());
}

// The paper-motivated loop: resubmitting MVCC-failed transactions
// feeds contended writes back into the pipeline, raising the MVCC
// conflict share instead of masking it.
TEST(RetryAmplificationTest, ResubmissionRaisesMvccConflictShare) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 10 * kSecond;
  config.arrival_rate_tps = 100;
  Result<FailureReport> baseline = RunOnce(config, 42);
  ASSERT_TRUE(baseline.ok());

  config.fabric.retry.resubmit_on_mvcc = true;
  config.fabric.retry.max_resubmits = 2;
  Result<FailureReport> amplified = RunOnce(config, 42);
  ASSERT_TRUE(amplified.ok());

  EXPECT_EQ(baseline.value().resubmissions, 0u);
  EXPECT_GT(amplified.value().resubmissions, 0u);
  // Resubmissions add load: more transactions reach the ledger, and
  // the extra attempts hit the same hot keys.
  EXPECT_GT(amplified.value().ledger_txs, baseline.value().ledger_txs);
  EXPECT_GT(amplified.value().mvcc_intra + amplified.value().mvcc_inter,
            baseline.value().mvcc_intra + baseline.value().mvcc_inter);
}

}  // namespace
}  // namespace fabricsim
