#include <gtest/gtest.h>

#include "src/ledger/block_store.h"
#include "src/ledger/ledger_parser.h"
#include "src/ledger/rwset.h"
#include "src/ledger/transaction.h"
#include "src/ledger/version.h"

namespace fabricsim {
namespace {

// ---------------------------------------------------------- Version

TEST(VersionTest, Ordering) {
  Version a{1, 0}, b{1, 1}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Version{1, 0}));
  EXPECT_NE(a, b);
  EXPECT_EQ(a.ToString(), "v1.0");
}

// ------------------------------------------------------------ RwSet

TEST(RwSetTest, DigestStableAndOrderSensitive) {
  ReadWriteSet a;
  a.reads.push_back(ReadItem{"k1", {1, 0}, true});
  a.reads.push_back(ReadItem{"k2", {1, 1}, true});
  ReadWriteSet b = a;
  EXPECT_EQ(a.Digest(), b.Digest());
  std::swap(b.reads[0], b.reads[1]);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(RwSetTest, DigestSensitiveToVersions) {
  ReadWriteSet a, b;
  a.reads.push_back(ReadItem{"k", {1, 0}, true});
  b.reads.push_back(ReadItem{"k", {2, 0}, true});
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(RwSetTest, DigestSensitiveToFoundFlag) {
  ReadWriteSet a, b;
  a.reads.push_back(ReadItem{"k", {0, 0}, true});
  b.reads.push_back(ReadItem{"k", {0, 0}, false});
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(RwSetTest, DigestCoversWritesAndRanges) {
  ReadWriteSet a;
  a.writes.push_back(WriteItem{"k", "v", false});
  ReadWriteSet b = a;
  b.writes[0].is_delete = true;
  EXPECT_NE(a.Digest(), b.Digest());

  ReadWriteSet c = a;
  RangeQueryInfo rq;
  rq.start_key = "a";
  rq.end_key = "z";
  rq.reads.push_back(ReadItem{"m", {3, 1}, true});
  c.range_queries.push_back(rq);
  EXPECT_NE(a.Digest(), c.Digest());
}

TEST(RwSetTest, ReadOnlyAndCounts) {
  ReadWriteSet s;
  s.reads.push_back(ReadItem{"k", {0, 0}, true});
  EXPECT_TRUE(s.IsReadOnly());
  RangeQueryInfo rq;
  rq.reads.push_back(ReadItem{"a", {0, 0}, true});
  rq.reads.push_back(ReadItem{"b", {0, 0}, true});
  s.range_queries.push_back(rq);
  EXPECT_EQ(s.TotalReadCount(), 3u);
  s.writes.push_back(WriteItem{"k", "v", false});
  EXPECT_FALSE(s.IsReadOnly());
  EXPECT_GT(s.ByteSize(), 0u);
}

// ------------------------------------------------------- BlockStore

Block MakeBlock(uint64_t number, std::vector<TxValidationCode> codes) {
  Block block;
  block.number = number;
  for (size_t i = 0; i < codes.size(); ++i) {
    Transaction tx;
    tx.id = number * 100 + i;
    tx.client_submit_time = 10;
    tx.committed_time = 110;
    block.txs.push_back(tx);
    TxValidationResult result;
    result.code = codes[i];
    if (codes[i] == TxValidationCode::kMvccReadConflict) {
      result.mvcc_class = i % 2 == 0 ? MvccClass::kIntraBlock
                                     : MvccClass::kInterBlock;
    }
    block.results.push_back(result);
  }
  return block;
}

TEST(BlockStoreTest, AppendsContiguously) {
  BlockStore store;
  EXPECT_TRUE(store.Append(MakeBlock(1, {TxValidationCode::kValid})).ok());
  EXPECT_TRUE(store.Append(MakeBlock(2, {TxValidationCode::kValid})).ok());
  EXPECT_EQ(store.height(), 2u);
  EXPECT_EQ(store.TotalTransactions(), 2u);
}

TEST(BlockStoreTest, RejectsGaps) {
  BlockStore store;
  Status st = store.Append(MakeBlock(2, {TxValidationCode::kValid}));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(BlockStoreTest, RejectsMismatchedResults) {
  BlockStore store;
  Block block = MakeBlock(1, {TxValidationCode::kValid});
  block.results.clear();
  EXPECT_EQ(store.Append(std::move(block)).code(),
            StatusCode::kInvalidArgument);
}

TEST(BlockStoreTest, GetBlockBounds) {
  BlockStore store;
  ASSERT_TRUE(store.Append(MakeBlock(1, {TxValidationCode::kValid})).ok());
  EXPECT_NE(store.GetBlock(1), nullptr);
  EXPECT_EQ(store.GetBlock(0), nullptr);
  EXPECT_EQ(store.GetBlock(2), nullptr);
}

// ----------------------------------------------------- LedgerParser

TEST(LedgerParserTest, SummarizesFailureTypes) {
  BlockStore store;
  ASSERT_TRUE(store
                  .Append(MakeBlock(
                      1, {TxValidationCode::kValid,
                          TxValidationCode::kEndorsementPolicyFailure,
                          TxValidationCode::kMvccReadConflict,   // intra (i=2)
                          TxValidationCode::kMvccReadConflict,   // inter (i=3)
                          TxValidationCode::kPhantomReadConflict,
                          TxValidationCode::kAbortedByReordering}))
                  .ok());
  LedgerSummary summary = LedgerParser::Summarize(store);
  EXPECT_EQ(summary.total, 6u);
  EXPECT_EQ(summary.valid, 1u);
  EXPECT_EQ(summary.endorsement_policy_failures, 1u);
  EXPECT_EQ(summary.mvcc_intra_block, 1u);
  EXPECT_EQ(summary.mvcc_inter_block, 1u);
  EXPECT_EQ(summary.mvcc_total(), 2u);
  EXPECT_EQ(summary.phantom_read_conflicts, 1u);
  EXPECT_EQ(summary.reordering_aborts, 1u);
  EXPECT_EQ(summary.failed(), 5u);
}

TEST(LedgerParserTest, RecordsCarryLatency) {
  BlockStore store;
  ASSERT_TRUE(store.Append(MakeBlock(1, {TxValidationCode::kValid})).ok());
  std::vector<TxRecord> records = LedgerParser::Parse(store);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].TotalLatency(), 100);
  EXPECT_EQ(records[0].block_number, 1u);
  EXPECT_EQ(records[0].tx_index, 0u);
}

TEST(TxValidationCodeTest, Names) {
  EXPECT_STREQ(TxValidationCodeToString(TxValidationCode::kValid), "VALID");
  EXPECT_STREQ(
      TxValidationCodeToString(TxValidationCode::kMvccReadConflict),
      "MVCC_READ_CONFLICT");
  EXPECT_STREQ(
      TxValidationCodeToString(TxValidationCode::kAbortedNotSerializable),
      "ABORTED_NOT_SERIALIZABLE");
}

}  // namespace
}  // namespace fabricsim
