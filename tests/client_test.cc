// Actor-level tests for the client: proposal fan-out to minimal
// policy-satisfying sets, digest-majority envelope assembly, app-error
// drops, and read-only skipping.
#include <gtest/gtest.h>

#include <memory>

#include "src/chaincode/genchain.h"
#include "src/client/client.h"
#include "src/policy/policy_presets.h"

namespace fabricsim {
namespace {

// A workload that always issues the same invocation.
class FixedWorkload : public WorkloadGenerator {
 public:
  explicit FixedWorkload(Invocation inv) : inv_(std::move(inv)) {}
  Invocation Next(Rng&) override { return inv_; }
  std::string chaincode() const override { return "genChain"; }

 private:
  Invocation inv_;
};

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<Environment>(11);
    net_ = std::make_unique<Network>(NetworkConfig{}, Rng(11));
    chaincode_ = std::make_unique<GenChaincode>(
        GenChaincodeSpec::PaperDefault(/*keys=*/20));
  }

  // Builds `num_orgs` x 1 peers and an orderer; returns the client.
  void BuildNetwork(int num_orgs, EndorsementPolicy policy,
                    Invocation inv, bool submit_read_only = true) {
    policy_ = std::make_unique<EndorsementPolicy>(policy);
    for (int org = 0; org < num_orgs; ++org) {
      Peer::Params params;
      params.id = org;
      params.org = org;
      params.node = 1 + org;
      params.env = env_.get();
      params.net = net_.get();
      params.chaincode = chaincode_.get();
      params.policy = *policy_;
      params.db_profile = DbLatencyProfile::LevelDb();
      params.timing.peer_service_jitter = 0;
      params.rng = Rng(100 + static_cast<uint64_t>(org));
      peers_.push_back(std::make_unique<Peer>(std::move(params)));
      EXPECT_TRUE(
          peers_.back()->Bootstrap(chaincode_->BootstrapState()).ok());
      peers_by_org_.push_back({peers_.back().get()});
    }

    Orderer::Params oparams;
    oparams.node = 0;
    oparams.env = env_.get();
    oparams.net = net_.get();
    oparams.cutter = BlockCutter::Config{1, 1 << 20};
    oparams.timing = TimingConfig{};
    oparams.rng = Rng(55);
    for (auto& peer : peers_) {
      Peer* p = peer.get();
      oparams.peers.push_back(Orderer::Params::PeerEndpoint{
          p->node(), [p](std::shared_ptr<const Block> block) {
            p->HandleBlock(std::move(block));
          }});
    }
    orderer_ = std::make_unique<Orderer>(std::move(oparams));

    Client::Params cparams;
    cparams.id = 0;
    cparams.node = 100;
    cparams.env = env_.get();
    cparams.net = net_.get();
    workload_ = std::make_unique<FixedWorkload>(std::move(inv));
    cparams.workload = workload_.get();
    cparams.policy = policy_.get();
    cparams.peers_by_org = peers_by_org_;
    cparams.orderer = orderer_.get();
    cparams.orderer_node = 0;
    cparams.rng = Rng(77);
    cparams.arrival_rate_tps = arrival_rate_tps_;
    cparams.load_end_time = load_end_;
    cparams.submit_read_only = submit_read_only;
    cparams.stats = &stats_;
    cparams.tx_id_counter = &tx_counter_;
    client_ = std::make_unique<Client>(std::move(cparams));
    client_->Start();
  }

  std::unique_ptr<Environment> env_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<GenChaincode> chaincode_;
  std::unique_ptr<EndorsementPolicy> policy_;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<std::vector<Peer*>> peers_by_org_;
  std::unique_ptr<Orderer> orderer_;
  std::unique_ptr<WorkloadGenerator> workload_;
  std::unique_ptr<Client> client_;
  RunStats stats_;
  TxId tx_counter_ = 0;
  double arrival_rate_tps_ = 100;
  SimTime load_end_ = 200 * kMillisecond;
};

TEST_F(ClientTest, PolicyReferencingMissingOrgsDoesNotCrash) {
  // The P0 preset clamps to two orgs; on a one-org network the policy
  // then references Org1, which has no peer vector at all. The client
  // must treat it like an org with no endorsers (previously an
  // out-of-bounds read).
  BuildNetwork(1, MakePolicy(PolicyPreset::kP0AllOrgs, 1),
               Invocation{"readKeys", {GenChaincode::Key(0)}});
  env_->RunAll();
  EXPECT_GT(stats_.txs_generated, 0u);
  // Org0 answers every proposal; the unsatisfiable 2-of policy is the
  // validators' problem (ENDORSEMENT_POLICY_FAILURE), not a crash.
  EXPECT_EQ(orderer_->txs_received(), stats_.txs_submitted);
}

TEST_F(ClientTest, ArrivalClockTracksTheConfiguredRate) {
  // Regression for the interarrival truncation bug: at 200k tps the
  // mean exponential gap is 5 ticks, and float->int truncation chopped
  // ~half a tick off every gap — the measured submission rate ran ~10%
  // hot. Round-to-nearest (clamped to >= 1 tick) keeps the realized
  // rate within a few percent of nominal.
  arrival_rate_tps_ = 200000;
  load_end_ = 100 * kMillisecond;
  BuildNetwork(2, MakePolicy(PolicyPreset::kP0AllOrgs, 2),
               Invocation{"readKeys", {GenChaincode::Key(0)}});
  env_->RunAll();
  // Nominal: 20000 arrivals in the window (Poisson sd ~141). The >=1
  // clamp biases the realized rate ~2% low at this gap scale; the old
  // truncation put it ~10% HIGH (22k+), well outside this band.
  EXPECT_GT(stats_.txs_generated, 19000u);
  EXPECT_LT(stats_.txs_generated, 20500u);
}

TEST_F(ClientTest, SubmitsEndToEnd) {
  BuildNetwork(2, MakePolicy(PolicyPreset::kP0AllOrgs, 2),
               Invocation{"updateKeys", {GenChaincode::Key(1)}});
  env_->RunAll();
  EXPECT_GT(stats_.txs_generated, 10u);
  EXPECT_EQ(stats_.txs_submitted, stats_.txs_generated);
  EXPECT_EQ(stats_.app_errors, 0u);
  // Every submitted transaction was ordered and delivered.
  EXPECT_EQ(orderer_->txs_received(), stats_.txs_submitted);
  EXPECT_GT(peers_[0]->committed_height(), 0u);
}

TEST_F(ClientTest, P0TargetsAllOrgs) {
  BuildNetwork(3, MakePolicy(PolicyPreset::kP0AllOrgs, 3),
               Invocation{"readKeys", {GenChaincode::Key(0)}});
  env_->RunAll();
  // Every org's (single) peer served an endorsement for every tx.
  for (auto& peer : peers_) {
    EXPECT_EQ(peer->endorse_queue().tasks_completed(), stats_.txs_generated);
  }
}

TEST_F(ClientTest, P1TargetsMinimalRotatingSet) {
  // P1 over 3 orgs: Org0 plus one rotating other — Org0 sees every
  // proposal, Org1/Org2 roughly half each.
  BuildNetwork(3, MakePolicy(PolicyPreset::kP1OrgZeroPlusAny, 3),
               Invocation{"readKeys", {GenChaincode::Key(0)}});
  env_->RunAll();
  uint64_t total = stats_.txs_generated;
  EXPECT_EQ(peers_[0]->endorse_queue().tasks_completed(), total);
  uint64_t org1 = peers_[1]->endorse_queue().tasks_completed();
  uint64_t org2 = peers_[2]->endorse_queue().tasks_completed();
  EXPECT_EQ(org1 + org2, total);
  EXPECT_GT(org1, 0u);
  EXPECT_GT(org2, 0u);
}

TEST_F(ClientTest, AppErrorsAreDroppedBeforeOrdering) {
  // Unknown function -> every endorsement responds with an error.
  BuildNetwork(2, MakePolicy(PolicyPreset::kP0AllOrgs, 2),
               Invocation{"noSuchFunction", {}});
  env_->RunAll();
  EXPECT_GT(stats_.app_errors, 0u);
  EXPECT_EQ(stats_.app_errors, stats_.txs_generated);
  EXPECT_EQ(stats_.txs_submitted, 0u);
  EXPECT_EQ(orderer_->txs_received(), 0u);
}

TEST_F(ClientTest, ReadOnlySkippedWhenConfigured) {
  BuildNetwork(2, MakePolicy(PolicyPreset::kP0AllOrgs, 2),
               Invocation{"readKeys", {GenChaincode::Key(2)}},
               /*submit_read_only=*/false);
  env_->RunAll();
  EXPECT_GT(stats_.read_only_skipped, 0u);
  EXPECT_EQ(stats_.read_only_skipped, stats_.txs_generated);
  EXPECT_EQ(stats_.txs_submitted, 0u);
}

TEST_F(ClientTest, ReadOnlySubmittedByDefault) {
  BuildNetwork(2, MakePolicy(PolicyPreset::kP0AllOrgs, 2),
               Invocation{"readKeys", {GenChaincode::Key(2)}});
  env_->RunAll();
  EXPECT_EQ(stats_.read_only_skipped, 0u);
  EXPECT_EQ(stats_.txs_submitted, stats_.txs_generated);
}

}  // namespace
}  // namespace fabricsim
