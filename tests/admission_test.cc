// Overload-protection subsystem tests (src/admission): unit coverage
// of the circuit breaker, retry budget, CoDel control law and backoff
// cap; default-off bitwise identity against the pre-PR golden; deadline
// propagation through all three pipeline phases; endorser queue
// policies; orderer backpressure; determinism across execution modes
// and job counts with protection active; and composition with fault
// plans and surge-window populations.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/admission/admission.h"
#include "src/common/parallel.h"
#include "src/common/strings.h"
#include "src/core/runner.h"
#include "src/fabric/fabric_network.h"
#include "src/ledger/ledger_parser.h"
#include "src/workload/paper_workloads.h"
#include "src/workload/population/population.h"

namespace fabricsim {
namespace {

// Same exhaustive fingerprint as fault_test.cc, so identity statements
// here mean exactly what they mean there.
std::string Fingerprint(const FailureReport& r) {
  std::string out;
  out += StrFormat(
      "ledger=%llu valid=%llu endorse=%llu mvcc_intra=%llu "
      "mvcc_inter=%llu phantom=%llu submitted=%llu app=%llu\n",
      static_cast<unsigned long long>(r.ledger_txs),
      static_cast<unsigned long long>(r.valid_txs),
      static_cast<unsigned long long>(r.endorsement_failures),
      static_cast<unsigned long long>(r.mvcc_intra),
      static_cast<unsigned long long>(r.mvcc_inter),
      static_cast<unsigned long long>(r.phantom),
      static_cast<unsigned long long>(r.submitted_txs),
      static_cast<unsigned long long>(r.app_errors));
  out += StrFormat("pct=%.17g/%.17g/%.17g/%.17g/%.17g\n", r.total_failure_pct,
                   r.endorsement_pct, r.mvcc_pct, r.phantom_pct,
                   r.early_abort_pct);
  out += StrFormat("lat=%.17g/%.17g/%.17g tput=%.17g/%.17g\n", r.avg_latency_s,
                   r.p50_latency_s, r.p99_latency_s, r.committed_throughput_tps,
                   r.valid_throughput_tps);
  return out;
}

// Admission counters appended for determinism comparisons of protected
// runs (two runs must agree on every shed/expired/breaker count, not
// just on the ledger).
std::string AdmissionFingerprint(const FailureReport& r) {
  return Fingerprint(r) +
         StrFormat("adm=%llu/%llu/%llu/%llu/%llu/%llu/%llu/%llu\n",
                   static_cast<unsigned long long>(r.admission_shed),
                   static_cast<unsigned long long>(r.deadline_expired_endorse),
                   static_cast<unsigned long long>(r.deadline_expired_order),
                   static_cast<unsigned long long>(r.deadline_expired_commit),
                   static_cast<unsigned long long>(r.orderer_throttled),
                   static_cast<unsigned long long>(r.breaker_rejected),
                   static_cast<unsigned long long>(r.breaker_opens),
                   static_cast<unsigned long long>(r.retry_budget_denials));
}

// Pre-PR golden of the default C1 config (20 s at 100 tps, seed 42) —
// the same constant fault_test.cc pins. A default-constructed
// AdmissionConfig must keep reproducing it byte-for-byte.
constexpr char kGoldenDefault[] =
    "ledger=1998 valid=889 endorse=21 mvcc_intra=808 mvcc_inter=280 "
    "phantom=0 submitted=1998 app=0\n"
    "pct=55.505505505505504/1.0510510510510511/54.454454454454456/0/0\n"
    "lat=0.79166268968969022/0.75911118027396884/2.02848615705734 "
    "tput=95/44.450000000000003\n";

ExperimentConfig GoldenConfig() {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 20 * kSecond;
  config.arrival_rate_tps = 100;
  return config;
}

// Saturating base: ~5x the pipeline's capacity, short enough to keep
// the suite fast.
ExperimentConfig OverloadConfig(double rate_tps = 1000.0) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 6 * kSecond;
  config.arrival_rate_tps = rate_tps;
  config.repetitions = 1;
  return config;
}

// ---------------------------------------------------------------------
// Unit: circuit breaker.

TEST(CircuitBreakerTest, OpensAtThresholdRejectsThenRecovers) {
  CircuitBreakerConfig config;
  config.enabled = true;
  config.window = 4;
  config.open_threshold = 0.5;
  config.open_duration = 1 * kSecond;
  config.half_open_probes = 2;
  AdmissionStats stats;
  CircuitBreaker breaker(config, &stats);

  // 2 failures in a window of 4 meets the 0.5 threshold.
  breaker.RecordSuccess(0);
  breaker.RecordFailure(0);
  breaker.RecordSuccess(0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(stats.breaker_opens, 1u);

  // Open: rejects until open_duration elapses.
  EXPECT_FALSE(breaker.AllowSubmit(10 * kMillisecond));
  EXPECT_FALSE(breaker.AllowSubmit(999 * kMillisecond));

  // Half-open: exactly half_open_probes submissions pass.
  EXPECT_TRUE(breaker.AllowSubmit(1 * kSecond));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowSubmit(1 * kSecond));
  EXPECT_FALSE(breaker.AllowSubmit(1 * kSecond));  // probe budget spent

  // All probes succeed -> closed again.
  breaker.RecordSuccess(1 * kSecond);
  breaker.RecordSuccess(1 * kSecond);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowSubmit(1 * kSecond));
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensImmediately) {
  CircuitBreakerConfig config;
  config.enabled = true;
  config.window = 2;
  config.open_threshold = 0.5;
  config.open_duration = 1 * kSecond;
  config.half_open_probes = 3;
  AdmissionStats stats;
  CircuitBreaker breaker(config, &stats);

  breaker.RecordFailure(0);
  breaker.RecordFailure(0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  ASSERT_TRUE(breaker.AllowSubmit(1 * kSecond));  // half-open probe
  breaker.RecordFailure(1 * kSecond);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(stats.breaker_opens, 2u);
  // The re-open restarts the open_duration clock.
  EXPECT_FALSE(breaker.AllowSubmit(1900 * kMillisecond));
  EXPECT_TRUE(breaker.AllowSubmit(2 * kSecond));
}

// ---------------------------------------------------------------------
// Unit: retry budget.

TEST(RetryBudgetTest, EarnsPerSubmissionSpendsPerRetry) {
  RetryBudgetConfig config;
  config.enabled = true;
  config.ratio = 0.5;
  config.capacity = 2.0;
  RetryBudget budget(config);

  // Starts full: capacity retries available.
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());  // empty

  // Two first-attempt submissions earn one retry at ratio 0.5.
  budget.OnSubmit();
  EXPECT_FALSE(budget.TrySpend());
  budget.OnSubmit();
  EXPECT_TRUE(budget.TrySpend());

  // Earning saturates at capacity.
  for (int i = 0; i < 100; ++i) budget.OnSubmit();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
}

// ---------------------------------------------------------------------
// Unit: CoDel control law.

TEST(CoDelTest, NoDropsBelowTarget) {
  CoDelState codel;
  const SimTime target = 5 * kMillisecond;
  const SimTime interval = 100 * kMillisecond;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(codel.ShouldDrop(/*sojourn=*/1 * kMillisecond,
                                  /*now=*/i * kMillisecond, target, interval));
  }
  EXPECT_EQ(codel.drops(), 0u);
}

TEST(CoDelTest, SustainedStandingQueueShedsAtIncreasingRate) {
  CoDelState codel;
  const SimTime target = 5 * kMillisecond;
  const SimTime interval = 100 * kMillisecond;
  uint64_t drops = 0;
  // 10 s of dequeues every 10 ms, each having waited 50 ms: a standing
  // queue well above target for many intervals.
  for (int i = 0; i < 1000; ++i) {
    if (codel.ShouldDrop(/*sojourn=*/50 * kMillisecond,
                         /*now=*/i * 10 * kMillisecond, target, interval)) {
      ++drops;
    }
  }
  EXPECT_GT(drops, 5u);  // control law accelerates past one drop/interval
  EXPECT_EQ(codel.drops(), drops);

  // Once sojourns fall below target the dropping state disarms.
  uint64_t post_drops = 0;
  for (int i = 1000; i < 1200; ++i) {
    if (codel.ShouldDrop(/*sojourn=*/1 * kMillisecond,
                         /*now=*/i * 10 * kMillisecond, target, interval)) {
      ++post_drops;
    }
  }
  EXPECT_EQ(post_drops, 0u);
}

// ---------------------------------------------------------------------
// Unit: capped exponential backoff (regression — the uncapped loop
// scheduled multi-hour virtual sleeps at high retry counts).

TEST(BackoffCapTest, ExponentialBackoffIsCappedAtMaxBackoff) {
  ClientRetryPolicy retry;
  retry.endorse_timeout = 1 * kSecond;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff = 30 * kSecond;
  EXPECT_EQ(retry.BackoffForAttempt(0), 1 * kSecond);
  EXPECT_EQ(retry.BackoffForAttempt(1), 2 * kSecond);
  EXPECT_EQ(retry.BackoffForAttempt(4), 16 * kSecond);
  EXPECT_EQ(retry.BackoffForAttempt(5), 30 * kSecond);   // 32 s capped
  EXPECT_EQ(retry.BackoffForAttempt(20), 30 * kSecond);  // 12 days uncapped
  // Attempt counts that would overflow double exponentiation stay at
  // the cap instead of wrapping.
  EXPECT_EQ(retry.BackoffForAttempt(4000), 30 * kSecond);
}

TEST(BackoffCapTest, StockConfigsNeverReachTheCap) {
  // The default retry budget (2 retries) tops out at 4x the timeout —
  // far under the 30 s default cap, so pre-cap runs are unchanged.
  ClientRetryPolicy retry;
  retry.endorse_timeout = 400 * kMillisecond;
  EXPECT_EQ(retry.BackoffForAttempt(retry.max_endorse_retries),
            1600 * kMillisecond);
}

// ---------------------------------------------------------------------
// Unit: surge windows.

TEST(SurgeWindowTest, ValidationRejectsMalformedAndOverlappingWindows) {
  PopulationConfig population = PopulationConfig::SingleClass(100, 100.0);
  population.classes[0].surges.push_back(
      SurgeWindow{2 * kSecond, 1 * kSecond, 5.0});  // end < start
  EXPECT_FALSE(population.Validate().ok());

  population.classes[0].surges.clear();
  population.classes[0].surges.push_back(
      SurgeWindow{1 * kSecond, 3 * kSecond, 5.0});
  population.classes[0].surges.push_back(
      SurgeWindow{2 * kSecond, 4 * kSecond, 2.0});  // overlaps the first
  EXPECT_FALSE(population.Validate().ok());

  population.classes[0].surges.clear();
  population.classes[0].surges.push_back(
      SurgeWindow{1 * kSecond, 3 * kSecond, 5.0});
  population.classes[0].surges.push_back(
      SurgeWindow{3 * kSecond, 4 * kSecond, 0.0});  // back-to-back is fine
  EXPECT_TRUE(population.Validate().ok());
}

TEST(SurgeWindowTest, SurgeMultipliesArrivalRateInsideTheWindowOnly) {
  // 100 tps base, 10x surge during [10 s, 20 s): counting arrivals per
  // region over a 30 s horizon should show the surge clearly.
  std::vector<SurgeWindow> surges{SurgeWindow{10 * kSecond, 20 * kSecond, 10.0}};
  ArrivalProcess arrivals(100.0, MmppConfig{}, Rng(7), surges);
  SimTime now = 0;
  uint64_t before = 0, during = 0, after = 0;
  while (now < 30 * kSecond) {
    now += arrivals.NextGap(now);
    if (now < 10 * kSecond) {
      ++before;
    } else if (now < 20 * kSecond) {
      ++during;
    } else if (now < 30 * kSecond) {
      ++after;
    }
  }
  // ~1000 arrivals before, ~10000 during, ~1000 after. Loose 3-sigma
  // style bounds keep the test deterministic-seed-proof.
  EXPECT_GT(before, 800u);
  EXPECT_LT(before, 1200u);
  EXPECT_GT(during, 9000u);
  EXPECT_LT(during, 11000u);
  EXPECT_GT(after, 800u);
  EXPECT_LT(after, 1200u);
}

TEST(SurgeWindowTest, ZeroMultiplierSilencesTheWindow) {
  std::vector<SurgeWindow> surges{SurgeWindow{1 * kSecond, 2 * kSecond, 0.0}};
  ArrivalProcess arrivals(1000.0, MmppConfig{}, Rng(11), surges);
  SimTime now = 0;
  uint64_t inside = 0;
  while (now < 3 * kSecond) {
    now += arrivals.NextGap(now);
    if (now >= 1 * kSecond && now < 2 * kSecond) ++inside;
  }
  EXPECT_EQ(inside, 0u);
}

// ---------------------------------------------------------------------
// Golden identity: a default AdmissionConfig must be a strict no-op.

TEST(AdmissionGoldenTest, DisabledConfigReproducesPrePrFingerprint) {
  ExperimentConfig config = GoldenConfig();
  config.fabric.admission = AdmissionConfig{};  // explicitly disabled
  ASSERT_FALSE(config.fabric.admission.enabled());
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Fingerprint(r.value()), kGoldenDefault);
  EXPECT_FALSE(r.value().has_admission);
}

TEST(AdmissionGoldenTest, DescribeOmitsDisabledAdmission) {
  ExperimentConfig config = GoldenConfig();
  std::string base = config.Describe();
  config.fabric.admission = AdmissionConfig{};
  EXPECT_EQ(config.Describe(), base);
  config.fabric.admission.tx_deadline = 2 * kSecond;
  config.fabric.admission.breaker.enabled = true;
  EXPECT_NE(config.Describe().find("admission=ttl=2.0s,breaker"),
            std::string::npos)
      << config.Describe();
}

// ---------------------------------------------------------------------
// Integration: deadline propagation.

TEST(AdmissionIntegrationTest, DeadlinesExpireUnderSaturation) {
  ExperimentConfig config = OverloadConfig();
  config.fabric.admission.tx_deadline = 2 * kSecond;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const FailureReport& report = r.value();
  EXPECT_TRUE(report.has_admission);
  // Under 5x overload latency blows through a 2 s TTL somewhere in the
  // pipeline — at least one of the three phases must be expiring.
  uint64_t expired = report.deadline_expired_endorse +
                     report.deadline_expired_order +
                     report.deadline_expired_commit;
  EXPECT_GT(expired, 0u) << AdmissionFingerprint(report);
}

TEST(AdmissionIntegrationTest, CommitPhaseDeadlinesReachTheLedger) {
  // A TTL just above the healthy commit latency: endorsement succeeds,
  // but ordering/commit queueing under overload pushes cut_time past
  // the deadline — those transactions land on the chain marked
  // DEADLINE_EXPIRED_COMMIT.
  ExperimentConfig config = OverloadConfig(/*rate_tps=*/500.0);
  config.fabric.admission.tx_deadline = 3 * kSecond;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().deadline_expired_commit, 0u)
      << AdmissionFingerprint(r.value());
}

// ---------------------------------------------------------------------
// Integration: endorser queue policies.

TEST(AdmissionIntegrationTest, RejectNewShedsAtBoundedEndorseQueue) {
  ExperimentConfig config = OverloadConfig();
  config.fabric.admission.endorse_policy = AdmissionQueuePolicy::kRejectNew;
  config.fabric.admission.max_endorse_queue_depth = 16;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().admission_shed, 0u) << AdmissionFingerprint(r.value());
  // Sojourn/depth sketches observed traffic.
  EXPECT_GT(r.value().endorse_depth_max, 0.0);
}

TEST(AdmissionIntegrationTest, DropOldestShedsAtBoundedEndorseQueue) {
  ExperimentConfig config = OverloadConfig();
  config.fabric.admission.endorse_policy = AdmissionQueuePolicy::kDropOldest;
  config.fabric.admission.max_endorse_queue_depth = 16;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().admission_shed, 0u) << AdmissionFingerprint(r.value());
}

TEST(AdmissionIntegrationTest, CoDelShedsOnSustainedSojourn) {
  ExperimentConfig config = OverloadConfig();
  config.fabric.admission.endorse_policy = AdmissionQueuePolicy::kCoDel;
  config.fabric.admission.codel_target = 5 * kMillisecond;
  config.fabric.admission.codel_interval = 100 * kMillisecond;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // CoDel's drop rate accelerates as interval/sqrt(n); at sustained 5x
  // overload it sheds a substantial stream (hundreds over 6 s), though
  // unlike the depth-bounded policies it cannot fully drain the
  // standing queue — it is an AQM, not admission control.
  EXPECT_GT(r.value().admission_shed, 100u) << AdmissionFingerprint(r.value());
}

// ---------------------------------------------------------------------
// Integration: orderer backpressure (compat broadcast path).

TEST(AdmissionIntegrationTest, BoundedOrdererIngressThrottles) {
  ExperimentConfig config = OverloadConfig();
  // Stock ingress absorbs 25k tps (40 us/tx) and never queues at these
  // rates; the saturated endorse phase delivers ~150 tps downstream, so
  // ordering must serve slower than that (10 ms/tx = 100 tps) to be the
  // bottleneck backpressure exists for.
  config.fabric.timing.orderer_per_tx_cost = 10 * kMillisecond;
  config.fabric.admission.max_orderer_queue_depth = 4;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().orderer_throttled, 0u) << AdmissionFingerprint(r.value());
}

// ---------------------------------------------------------------------
// Integration: circuit breaker + retry budget under the full stack.

AdmissionConfig FullProtection() {
  AdmissionConfig admission;
  admission.tx_deadline = 3 * kSecond;
  admission.endorse_policy = AdmissionQueuePolicy::kRejectNew;
  admission.max_endorse_queue_depth = 256;
  admission.max_orderer_queue_depth = 256;
  admission.breaker.enabled = true;
  admission.retry_budget.enabled = true;
  return admission;
}

TEST(AdmissionIntegrationTest, BreakerOpensUnderSustainedOverload) {
  ExperimentConfig config = OverloadConfig(/*rate_tps=*/2000.0);
  // Deadlines without queue bounds: the endorse queue grows until every
  // proposal expires at dequeue, and the breaker's window fills with
  // failures. Queue sheds deliberately do not count as failures (a
  // bounded queue answering within one RTT is healthy), so this is the
  // configuration where the breaker is the only line of defence.
  config.fabric.admission.tx_deadline = 2 * kSecond;
  config.fabric.admission.breaker.enabled = true;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r.value().breaker_opens, 1u) << AdmissionFingerprint(r.value());
  EXPECT_GT(r.value().breaker_rejected, 0u);
}

TEST(AdmissionIntegrationTest, RetryBudgetBoundsRetriesUnderOverload) {
  ExperimentConfig config = OverloadConfig();
  config.fabric.retry.endorse_timeout = 300 * kMillisecond;
  config.fabric.retry.resubmit_on_mvcc = true;
  config.fabric.admission.retry_budget.enabled = true;
  config.fabric.admission.retry_budget.ratio = 0.05;
  config.fabric.admission.retry_budget.capacity = 2.0;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().retry_budget_denials, 0u)
      << AdmissionFingerprint(r.value());
}

// ---------------------------------------------------------------------
// Determinism with protection active.

TEST(AdmissionDeterminismTest, ProtectedRunIdenticalAcrossExecutionModes) {
  ExperimentConfig config = OverloadConfig(/*rate_tps=*/600.0);
  config.fabric.admission = FullProtection();
  Result<FailureReport> serial = RunOnce(config, 42);
  config.fabric.execution = ExecutionConfig::Threaded(4);
  Result<FailureReport> threaded = RunOnce(config, 42);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_EQ(AdmissionFingerprint(serial.value()),
            AdmissionFingerprint(threaded.value()));
}

TEST(AdmissionDeterminismTest, ProtectedMultiChannelIdenticalAcrossModes) {
  ExperimentConfig config = OverloadConfig(/*rate_tps=*/600.0);
  config.fabric.num_channels = 4;
  config.fabric.admission = FullProtection();
  Result<FailureReport> serial = RunOnce(config, 42);
  config.fabric.execution = ExecutionConfig::Threaded(4);
  Result<FailureReport> threaded = RunOnce(config, 42);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_EQ(AdmissionFingerprint(serial.value()),
            AdmissionFingerprint(threaded.value()));
}

TEST(AdmissionDeterminismTest, ProtectedRunIdenticalAcrossJobCounts) {
  ExperimentConfig config = OverloadConfig(/*rate_tps=*/600.0);
  config.fabric.admission = FullProtection();
  config.repetitions = 2;
  SetParallelJobs(1);
  Result<ExperimentResult> serial = RunExperiment(config);
  SetParallelJobs(4);
  Result<ExperimentResult> parallel = RunExperiment(config);
  ParallelJobsFromEnv();
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial.value().repetitions.size(),
            parallel.value().repetitions.size());
  for (size_t i = 0; i < serial.value().repetitions.size(); ++i) {
    EXPECT_EQ(AdmissionFingerprint(serial.value().repetitions[i]),
              AdmissionFingerprint(parallel.value().repetitions[i]))
        << "repetition " << i;
  }
}

// ---------------------------------------------------------------------
// Composition: protection + replicated ordering, fault plans, surges.

TEST(AdmissionCompositionTest, DeadlinesAndShedingComposeWithRaftOrdering) {
  ExperimentConfig config = OverloadConfig(/*rate_tps=*/600.0);
  config.fabric.ordering.replicated = true;
  config.fabric.admission.tx_deadline = 3 * kSecond;
  config.fabric.admission.endorse_policy = AdmissionQueuePolicy::kRejectNew;
  config.fabric.admission.max_endorse_queue_depth = 16;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  uint64_t protected_drops = r.value().admission_shed +
                             r.value().deadline_expired_endorse +
                             r.value().deadline_expired_commit;
  EXPECT_GT(protected_drops, 0u) << AdmissionFingerprint(r.value());
}

TEST(AdmissionCompositionTest, PeerCrashDuringSaturationShedsAtSurvivors) {
  // A peer crashes mid-saturation while its org is the only endorsing
  // choice for some proposals; admission keeps the survivors' queues
  // bounded and the run (with the chain-integrity audit built into
  // RunOnce) completes cleanly.
  ExperimentConfig config = OverloadConfig(/*rate_tps=*/600.0);
  config.fabric.retry.endorse_timeout = 400 * kMillisecond;
  config.fabric.admission.endorse_policy = AdmissionQueuePolicy::kRejectNew;
  config.fabric.admission.max_endorse_queue_depth = 16;
  config.fabric.faults.Crash(/*peer=*/1, 2 * kSecond,
                             /*restart_at=*/4 * kSecond);
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().admission_shed, 0u) << AdmissionFingerprint(r.value());
  EXPECT_GT(r.value().valid_txs, 0u);
}

TEST(AdmissionCompositionTest, SurgePopulationTriggersSheddingDuringSpike) {
  // 100 users at a healthy aggregate rate, with a 10x surge window in
  // the middle of the run: protection sheds during the spike and the
  // run completes.
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 6 * kSecond;
  config.repetitions = 1;
  PopulationConfig population = PopulationConfig::SingleClass(100, 150.0);
  population.classes[0].surges.push_back(
      SurgeWindow{2 * kSecond, 4 * kSecond, 10.0});
  config.population = population;
  config.fabric.admission.endorse_policy = AdmissionQueuePolicy::kRejectNew;
  config.fabric.admission.max_endorse_queue_depth = 16;
  Result<FailureReport> r = RunOnce(config, 42);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().admission_shed, 0u) << AdmissionFingerprint(r.value());
}

// Timely goodput: valid transactions that committed within the SLA,
// per second of offered load. In a lossless FIFO pipeline overload
// never shows up as lost throughput — everything commits eventually
// during the drain — it shows up as latency, so raw
// valid_throughput_tps cannot distinguish collapse from health. This
// is the metric bench_overload_collapse sweeps.
double TimelyGoodputTps(const ExperimentConfig& config, uint64_t seed,
                        SimTime sla) {
  auto chaincode = MakeChaincodeFor(config.workload).value();
  auto workload = std::shared_ptr<WorkloadGenerator>(
      MakeWorkload(config.workload,
                   config.fabric.db_type == DatabaseType::kCouchDb)
          .value());
  Environment env(seed);
  FabricNetwork network(config.fabric, &env, chaincode, workload);
  EXPECT_TRUE(network.Init().ok());
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();
  uint64_t timely = 0;
  for (const TxRecord& rec : LedgerParser::Parse(network.ledger())) {
    if (rec.code == TxValidationCode::kValid && rec.TotalLatency() <= sla) {
      ++timely;
    }
  }
  return static_cast<double>(timely) /
         (static_cast<double>(config.duration) / kSecond);
}

// Protection must actually protect: at ~13x overload the full stack
// keeps timely goodput (SLA = deadline) at or above the unprotected
// pipeline's, while keeping committed latency inside the deadline
// instead of tens of seconds.
TEST(AdmissionIntegrationTest, ProtectedGoodputAtLeastUnprotectedAtOverload) {
  const SimTime kSla = 3 * kSecond;
  ExperimentConfig unprotected = OverloadConfig(/*rate_tps=*/2000.0);
  double base = TimelyGoodputTps(unprotected, 42, kSla);

  ExperimentConfig guarded = unprotected;
  guarded.fabric.admission = FullProtection();
  double shielded = TimelyGoodputTps(guarded, 42, kSla);

  EXPECT_GE(shielded, base)
      << "timely goodput: protected " << shielded << " tps vs unprotected "
      << base << " tps";
  // The unprotected pipeline must be genuinely collapsed at this rate
  // (only the first instants of load commit inside the SLA), or the
  // comparison above is vacuous.
  Result<FailureReport> raw = RunOnce(unprotected, 42);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_GT(raw.value().avg_latency_s, 10.0);
}

}  // namespace
}  // namespace fabricsim
