#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "src/common/parallel.h"
#include "src/core/experiment.h"
#include "src/core/runner.h"
#include "src/core/sweeps.h"
#include "src/fabric/fabric_network.h"
#include "src/ledger/ledger_parser.h"
#include "src/obs/json_writer.h"
#include "src/workload/paper_workloads.h"

namespace fabricsim {
namespace {

ExperimentConfig FastConfig() {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 5 * kSecond;
  config.arrival_rate_tps = 40;
  config.repetitions = 2;
  return config;
}

/// Hot-key configuration that reliably produces MVCC conflicts in a
/// short run: update-heavy genChain over a small, strongly skewed key
/// space.
ExperimentConfig ConflictConfig() {
  ExperimentConfig config = ExperimentConfig::Builder()
                                .Chaincode("genchain")
                                .Mix(WorkloadMix::kUpdateHeavy)
                                .ZipfSkew(1.5)
                                .RateTps(100)
                                .Duration(10 * kSecond)
                                .Repetitions(1)
                                .Tracing()
                                .Build();
  config.workload.genchain_initial_keys = 500;
  return config;
}

/// Drives one traced network to completion and keeps it alive so the
/// tracer can be queried.
struct TracedRun {
  std::unique_ptr<Environment> env;
  std::unique_ptr<FabricNetwork> network;
};

TracedRun RunTraced(const ExperimentConfig& config, uint64_t seed) {
  auto chaincode = MakeChaincodeFor(config.workload);
  EXPECT_TRUE(chaincode.ok());
  auto workload = MakeWorkload(config.workload, /*rich_queries=*/true);
  EXPECT_TRUE(workload.ok());
  TracedRun run;
  run.env = std::make_unique<Environment>(seed);
  run.network = std::make_unique<FabricNetwork>(
      config.fabric, run.env.get(), chaincode.value(),
      std::shared_ptr<WorkloadGenerator>(std::move(workload).value()));
  EXPECT_TRUE(run.network->Init().ok());
  run.network->StartLoad(config.arrival_rate_tps, config.duration);
  run.env->RunAll();
  return run;
}

TEST(TraceTest, SpanChainCompleteAndTelescopes) {
  ExperimentConfig config = ConflictConfig();
  TracedRun run = RunTraced(config, 7);
  const Tracer* tracer = run.network->tracer();
  ASSERT_NE(tracer, nullptr);

  std::vector<TxRecord> records = LedgerParser::Parse(run.network->ledger());
  ASSERT_GT(records.size(), 0u);
  for (const TxRecord& rec : records) {
    const TxTrace* trace = tracer->Find(rec.id);
    ASSERT_NE(trace, nullptr) << "ledger tx " << rec.id << " untraced";
    EXPECT_EQ(trace->terminal, TraceTerminal::kLedger);
    EXPECT_EQ(trace->final_code, rec.code);
    EXPECT_EQ(trace->block_number, rec.block_number);
    EXPECT_EQ(trace->tx_index, rec.tx_index);

    // Complete span chain, in causal order.
    EXPECT_GT(trace->client_submit, 0);
    EXPECT_FALSE(trace->endorsers.empty());
    for (const EndorserSpan& span : trace->endorsers) {
      EXPECT_GE(span.request_sent, trace->client_submit);
      EXPECT_GT(span.response_received, span.request_sent);
    }
    EXPECT_GE(trace->endorsed, trace->client_submit);
    EXPECT_GE(trace->orderer_enqueue, trace->endorsed);
    EXPECT_GE(trace->block_cut, trace->orderer_enqueue);
    EXPECT_GE(trace->committed, trace->block_cut);

    // Spans agree with the parsed ledger timestamps.
    EXPECT_EQ(trace->client_submit, rec.submit_time);
    EXPECT_EQ(trace->endorsed, rec.endorsed_time);
    EXPECT_EQ(trace->committed, rec.committed_time);

    // The three phases telescope into the end-to-end latency.
    EXPECT_EQ(trace->EndorsePhase() + trace->OrderingPhase() +
                  trace->CommitPhase(),
              trace->TotalLatency());
    EXPECT_EQ(trace->TotalLatency(), rec.TotalLatency());
  }

  // The aggregate histograms saw exactly the ledger transactions.
  EXPECT_EQ(tracer->phases().total.count(), records.size());
}

TEST(TraceTest, FailedTxsHaveAttribution) {
  ExperimentConfig config = ConflictConfig();
  TracedRun run = RunTraced(config, 11);
  const Tracer* tracer = run.network->tracer();
  ASSERT_NE(tracer, nullptr);

  size_t failed = 0;
  size_t keyed = 0;
  for (const TxTrace* trace : tracer->SortedTraces()) {
    if (trace->terminal != TraceTerminal::kLedger ||
        trace->final_code == TxValidationCode::kValid) {
      continue;
    }
    ++failed;
    ASSERT_TRUE(trace->failure != nullptr)
        << "failed tx " << trace->id << " has no attribution";
    const FailureAttribution& why = *trace->failure;
    EXPECT_EQ(why.code, trace->final_code);
    EXPECT_EQ(why.block_number, trace->block_number);
    if (why.code == TxValidationCode::kMvccReadConflict ||
        why.code == TxValidationCode::kPhantomReadConflict) {
      EXPECT_FALSE(why.conflicting_key.empty())
          << "conflict without a key on tx " << trace->id;
      // The offending write is identified either by the observed
      // version's (block, tx) coordinates or, intra-block, by the
      // invalidating transaction id.
      EXPECT_TRUE(why.observed_found || why.conflicting_tx != 0);
      ++keyed;
    }
  }
  ASSERT_GT(failed, 0u) << "conflict config produced no failures";
  ASSERT_GT(keyed, 0u) << "no MVCC/phantom attribution produced";
  EXPECT_FALSE(tracer->TopConflictingKeys(5).empty());
}

TEST(TraceTest, DisabledTracingReproducesSeedReports) {
  ExperimentConfig off = FastConfig();
  off.fabric.tracing = false;
  ExperimentConfig on = off;
  on.fabric.tracing = true;

  auto a = RunOnce(off, 42);
  auto b = RunOnce(on, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The tracer is a pure observer: every simulated quantity matches
  // bit for bit; only the phase breakdown is extra.
  EXPECT_EQ(a.value().ledger_txs, b.value().ledger_txs);
  EXPECT_EQ(a.value().valid_txs, b.value().valid_txs);
  EXPECT_EQ(a.value().endorsement_failures, b.value().endorsement_failures);
  EXPECT_EQ(a.value().mvcc_intra, b.value().mvcc_intra);
  EXPECT_EQ(a.value().mvcc_inter, b.value().mvcc_inter);
  EXPECT_EQ(a.value().phantom, b.value().phantom);
  EXPECT_EQ(a.value().submitted_txs, b.value().submitted_txs);
  EXPECT_EQ(a.value().app_errors, b.value().app_errors);
  EXPECT_DOUBLE_EQ(a.value().total_failure_pct, b.value().total_failure_pct);
  EXPECT_DOUBLE_EQ(a.value().avg_latency_s, b.value().avg_latency_s);
  EXPECT_DOUBLE_EQ(a.value().p99_latency_s, b.value().p99_latency_s);
  EXPECT_DOUBLE_EQ(a.value().committed_throughput_tps,
                   b.value().committed_throughput_tps);
  EXPECT_FALSE(a.value().has_phase_breakdown);
  EXPECT_TRUE(b.value().has_phase_breakdown);
  // ToString of the disabled report never mentions the phases line.
  EXPECT_EQ(a.value().ToString().find("phases:"), std::string::npos);
  EXPECT_NE(b.value().ToString().find("phases:"), std::string::npos);
}

TEST(TraceTest, TraceExportIdenticalAcrossJobCounts) {
  ExperimentConfig config = FastConfig();
  config.fabric.tracing = true;

  SetParallelJobs(1);
  auto serial = RunExperiment(config);
  SetParallelJobs(4);
  auto parallel = RunExperiment(config);
  ParallelJobsFromEnv();

  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial.value().traces.size(), 2u);
  ASSERT_EQ(parallel.value().traces.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(serial.value().traces[i].empty());
    // Bitwise identical JSONL regardless of the worker count.
    EXPECT_EQ(serial.value().traces[i], parallel.value().traces[i]);
  }
  // Untraced runs carry no trace payload.
  config.fabric.tracing = false;
  auto untraced = RunExperiment(config);
  ASSERT_TRUE(untraced.ok());
  EXPECT_TRUE(untraced.value().traces.empty());
}

TEST(TraceTest, ExportJsonlIsVersioned) {
  ExperimentConfig config = ConflictConfig();
  TracedRun run = RunTraced(config, 3);
  const Tracer* tracer = run.network->tracer();
  ASSERT_NE(tracer, nullptr);

  std::string jsonl = tracer->ExportJsonl("test config");
  std::string header = jsonl.substr(0, jsonl.find('\n'));
  EXPECT_NE(header.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(header.find("\"kind\": \"fabricsim.trace\""), std::string::npos);
  EXPECT_NE(header.find("test config"), std::string::npos);
  // One line per traced tx plus the header and peer-commit rows.
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_GE(lines, 1 + tracer->size());
}

TEST(BuilderTest, FluentMatchesManualConfig) {
  ExperimentConfig manual = ExperimentConfig::DefaultsC2();
  manual.fabric.block_size = 50;
  manual.arrival_rate_tps = 150;
  manual.duration = 20 * kSecond;
  manual.repetitions = 4;
  manual.base_seed = 9;
  manual.workload.chaincode = "dv";
  manual.workload.mix = WorkloadMix::kReadHeavy;
  manual.workload.zipf_skew = 0.5;
  manual.fabric.variant = FabricVariant::kFabricPlusPlus;
  manual.fabric.db_type = DatabaseType::kLevelDb;
  manual.fabric.submit_read_only = false;

  ExperimentConfig fluent = ExperimentConfig::Builder()
                                .Cluster(ClusterConfig::C2())
                                .BlockSize(50)
                                .RateTps(150)
                                .Duration(20 * kSecond)
                                .Repetitions(4)
                                .Seed(9)
                                .Chaincode("dv")
                                .Mix(WorkloadMix::kReadHeavy)
                                .ZipfSkew(0.5)
                                .Variant(FabricVariant::kFabricPlusPlus)
                                .Database(DatabaseType::kLevelDb)
                                .SubmitReadOnly(false)
                                .Build();
  EXPECT_EQ(fluent.Describe(), manual.Describe());
  EXPECT_EQ(fluent.fabric.submit_read_only, manual.fabric.submit_read_only);
  EXPECT_EQ(fluent.duration, manual.duration);
  EXPECT_EQ(fluent.repetitions, manual.repetitions);
  EXPECT_EQ(fluent.base_seed, manual.base_seed);
}

TEST(BuilderTest, PolicyPresetResolvesAgainstFinalCluster) {
  // Policy() before Cluster(): the preset must still be instantiated
  // for the final (C2, 8-org) topology at Build() time.
  ExperimentConfig config = ExperimentConfig::Builder()
                                .Policy(PolicyPreset::kP3Quorum)
                                .Cluster(ClusterConfig::C2())
                                .Build();
  EXPECT_EQ(config.fabric.policy_text,
            MakePolicy(PolicyPreset::kP3Quorum, 8).ToString());
  // PolicyText() overrides a previously chosen preset.
  ExperimentConfig raw = ExperimentConfig::Builder()
                             .Policy(PolicyPreset::kP3Quorum)
                             .PolicyText("Org0")
                             .Build();
  EXPECT_EQ(raw.fabric.policy_text, "Org0");
}

TEST(SweepTest, UnifiedSweepProducesLabeledOrderedPoints) {
  ExperimentConfig config = FastConfig();
  const std::vector<uint32_t> sizes = {50, 100};

  auto generic = RunSweep(config, BlockSizeSweepSpec(sizes));
  ASSERT_TRUE(generic.ok());
  ASSERT_EQ(generic.value().size(), 2u);
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_DOUBLE_EQ(generic.value()[i].value,
                     static_cast<double>(sizes[i]));
    EXPECT_EQ(generic.value()[i].label,
              "block_size=" + std::to_string(sizes[i]));
    EXPECT_GT(generic.value()[i].report.ledger_txs, 0u);
  }
}

TEST(SweepTest, PolicySpecLabelsAndSpecErrors) {
  SweepSpec policies = PolicyPresetSweepSpec(
      {PolicyPreset::kP0AllOrgs, PolicyPreset::kP3Quorum});
  ASSERT_EQ(policies.labels.size(), 2u);
  EXPECT_EQ(policies.labels[0], "P0");
  EXPECT_EQ(policies.labels[1], "P3");

  // A spec without an apply function is rejected up front.
  SweepSpec broken;
  broken.parameter = "nothing";
  broken.values = {1.0};
  EXPECT_FALSE(RunSweep(FastConfig(), broken).ok());
  // Mismatched labels are rejected too.
  SweepSpec mislabeled = BlockSizeSweepSpec({10, 20});
  mislabeled.labels = {"only-one"};
  EXPECT_FALSE(RunSweep(FastConfig(), mislabeled).ok());
}

}  // namespace
}  // namespace fabricsim
