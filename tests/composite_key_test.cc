#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/chaincode/composite_key.h"
#include "src/chaincode/stub.h"
#include "src/common/strings.h"
#include "src/statedb/memory_state_db.h"

namespace fabricsim {
namespace {

TEST(CompositeKeyTest, RoundTripsPlainAttributes) {
  std::string key = MakeCompositeKey("ORDER", {"0001", "02", "00000042"});
  std::string type;
  std::vector<std::string> attrs;
  ASSERT_TRUE(SplitCompositeKey(key, &type, &attrs));
  EXPECT_EQ(type, "ORDER");
  EXPECT_EQ(attrs, (std::vector<std::string>{"0001", "02", "00000042"}));
  EXPECT_EQ(CompositeKeyObjectType(key), "ORDER");
}

TEST(CompositeKeyTest, RoundTripsEmptyAndNoAttributes) {
  std::string type;
  std::vector<std::string> attrs;
  ASSERT_TRUE(SplitCompositeKey(MakeCompositeKey("T", {}), &type, &attrs));
  EXPECT_EQ(type, "T");
  EXPECT_TRUE(attrs.empty());
  ASSERT_TRUE(SplitCompositeKey(MakeCompositeKey("T", {""}), &type, &attrs));
  EXPECT_EQ(attrs, (std::vector<std::string>{""}));
}

TEST(CompositeKeyTest, RoundTripsReservedBytesLosslessly) {
  // Attributes containing the separator/escape bytes themselves must
  // survive the escaping round trip (the documented contract).
  std::vector<std::string> nasty = {
      std::string(1, kCompositeKeySep), std::string(1, kCompositeKeyEsc),
      std::string("a") + kCompositeKeySep + "b" + kCompositeKeyEsc + "c",
      std::string(2, kCompositeKeyEsc) + kCompositeKeySep};
  std::string key = MakeCompositeKey("NASTY", nasty);
  std::string type;
  std::vector<std::string> attrs;
  ASSERT_TRUE(SplitCompositeKey(key, &type, &attrs));
  EXPECT_EQ(type, "NASTY");
  EXPECT_EQ(attrs, nasty);
}

TEST(CompositeKeyTest, RejectsMalformedKeys) {
  std::string type;
  std::vector<std::string> attrs;
  // No trailing separator.
  EXPECT_FALSE(SplitCompositeKey("plainkey", &type, &attrs));
  // Dangling escape byte at the end of an attribute.
  std::string dangling = MakeCompositeKey("T", {"a"});
  dangling.insert(dangling.size() - 1, 1, kCompositeKeyEsc);
  EXPECT_FALSE(SplitCompositeKey(dangling, &type, &attrs));
  // Unknown escape sequence.
  std::string unknown = MakeCompositeKey("T", {"a"});
  unknown.insert(unknown.size() - 2, std::string(1, kCompositeKeyEsc) + "x");
  EXPECT_FALSE(SplitCompositeKey(unknown, &type, &attrs));
  EXPECT_EQ(CompositeKeyObjectType("plainkey"), "");
}

TEST(CompositeKeyTest, LexicographicOrderMatchesTupleOrder) {
  // Fixed-width attributes: key order == tuple order, the property
  // every range scan in the tpcc/asset schemas depends on.
  std::vector<std::string> keys;
  for (int w = 0; w < 3; ++w) {
    for (int d = 0; d < 3; ++d) {
      keys.push_back(
          MakeCompositeKey("D", {PadKey(w, 4), PadKey(d, 2)}));
    }
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(CompositeKeyTest, PrefixesDoNotBleedAcrossAttributes) {
  // ("T",{"1"}) must not cover ("T",{"10"}): the trailing separator
  // terminates each attribute.
  auto [start, end] = CompositeKeyRange("T", {"1"});
  std::string k1x = MakeCompositeKey("T", {"1", "x"});
  std::string k10 = MakeCompositeKey("T", {"10"});
  EXPECT_TRUE(start <= k1x && k1x < end);
  EXPECT_FALSE(start <= k10 && k10 < end);
}

TEST(CompositeKeyTest, PartialCompositeScanCoversExactlyOneSubtree) {
  MemoryStateDb db;
  Version v{1, 0};
  for (int w = 0; w < 2; ++w) {
    for (int d = 0; d < 3; ++d) {
      db.ApplyWrite(
          WriteItem{MakeCompositeKey("DIST", {PadKey(w, 4), PadKey(d, 2)}),
                    "v", false},
          v);
    }
  }
  // Same object-type prefix, different table: must not be scanned.
  db.ApplyWrite(WriteItem{MakeCompositeKey("DISTX", {"0000"}), "v", false}, v);

  ChaincodeStub stub(db, true);
  std::vector<StateEntry> sub =
      stub.GetStateByPartialCompositeKey("DIST", {PadKey(0, 4)});
  EXPECT_EQ(sub.size(), 3u);
  for (const StateEntry& e : sub) {
    EXPECT_EQ(CompositeKeyObjectType(e.key), "DIST");
  }
  std::vector<StateEntry> all = stub.GetStateByPartialCompositeKey("DIST", {});
  EXPECT_EQ(all.size(), 6u);
  // Scan order is tuple order.
  EXPECT_TRUE(std::is_sorted(
      all.begin(), all.end(),
      [](const StateEntry& a, const StateEntry& b) { return a.key < b.key; }));
  // The footprint is recorded as a phantom-checked range query.
  ASSERT_EQ(stub.rwset().range_queries.size(), 2u);
  EXPECT_TRUE(stub.rwset().range_queries[0].phantom_check);
  EXPECT_EQ(stub.rwset().range_queries[0].reads.size(), 3u);
}

TEST(CompositeKeyTest, StubStaticsDelegate) {
  std::string key = ChaincodeStub::CreateCompositeKey("T", {"a", "b"});
  std::string type;
  std::vector<std::string> attrs;
  ASSERT_TRUE(ChaincodeStub::SplitCompositeKey(key, &type, &attrs));
  EXPECT_EQ(type, "T");
  EXPECT_EQ(attrs, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace fabricsim
