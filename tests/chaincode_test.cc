#include <gtest/gtest.h>

#include <algorithm>

#include "src/chaincode/ehr.h"
#include "src/chaincode/registry.h"
#include "src/chaincode/stub.h"
#include "src/statedb/memory_state_db.h"

namespace fabricsim {
namespace {

class StubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.ApplyWrite(WriteItem{"k1", "v1", false}, {3, 7});
    db_.ApplyWrite(WriteItem{"k2", "v2", false}, {4, 1});
  }
  MemoryStateDb db_;
};

TEST_F(StubTest, GetStateRecordsVersion) {
  ChaincodeStub stub(db_, true);
  EXPECT_EQ(stub.GetState("k1").value_or(""), "v1");
  ASSERT_EQ(stub.rwset().reads.size(), 1u);
  EXPECT_EQ(stub.rwset().reads[0].key, "k1");
  EXPECT_EQ(stub.rwset().reads[0].version, (Version{3, 7}));
  EXPECT_TRUE(stub.rwset().reads[0].found);
}

TEST_F(StubTest, MissingKeyRecordedAsNotFound) {
  ChaincodeStub stub(db_, true);
  EXPECT_FALSE(stub.GetState("ghost").has_value());
  ASSERT_EQ(stub.rwset().reads.size(), 1u);
  EXPECT_FALSE(stub.rwset().reads[0].found);
}

TEST_F(StubTest, NoReadYourOwnWrites) {
  // Fabric semantics: writes are buffered; reads always hit committed
  // state.
  ChaincodeStub stub(db_, true);
  stub.PutState("k1", "updated");
  EXPECT_EQ(stub.GetState("k1").value_or(""), "v1");
  stub.PutState("fresh", "new");
  EXPECT_FALSE(stub.GetState("fresh").has_value());
}

TEST_F(StubTest, WritesBufferedNotApplied) {
  ChaincodeStub stub(db_, true);
  stub.PutState("k9", "v9");
  stub.DelState("k1");
  EXPECT_FALSE(db_.Get("k9").has_value());
  EXPECT_TRUE(db_.Get("k1").has_value());
  ASSERT_EQ(stub.rwset().writes.size(), 2u);
  EXPECT_FALSE(stub.rwset().writes[0].is_delete);
  EXPECT_TRUE(stub.rwset().writes[1].is_delete);
}

TEST_F(StubTest, RangeQueryRecordsFootprint) {
  ChaincodeStub stub(db_, true);
  auto entries = stub.GetStateByRange("k1", "k3");
  EXPECT_EQ(entries.size(), 2u);
  ASSERT_EQ(stub.rwset().range_queries.size(), 1u);
  const RangeQueryInfo& rq = stub.rwset().range_queries[0];
  EXPECT_TRUE(rq.phantom_check);
  EXPECT_EQ(rq.start_key, "k1");
  EXPECT_EQ(rq.end_key, "k3");
  ASSERT_EQ(rq.reads.size(), 2u);
  EXPECT_EQ(rq.reads[0].version, (Version{3, 7}));
  // Range footprints are not point reads.
  EXPECT_TRUE(stub.rwset().reads.empty());
}

TEST_F(StubTest, RichQueryNotPhantomChecked) {
  MemoryStateDb db;
  db.ApplyWrite(WriteItem{"d1", JsonObject({{"docType", "x"}}), false},
                {1, 0});
  ChaincodeStub stub(db, true);
  auto result = stub.GetQueryResult("docType==x");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 1u);
  ASSERT_EQ(stub.rwset().range_queries.size(), 1u);
  EXPECT_FALSE(stub.rwset().range_queries[0].phantom_check);
}

TEST_F(StubTest, RichQueryRequiresCouchDb) {
  ChaincodeStub stub(db_, /*rich_queries_supported=*/false);
  auto result = stub.GetQueryResult("docType==x");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(StubTest, TakeRwsetMoves) {
  ChaincodeStub stub(db_, true);
  stub.GetState("k1");
  ReadWriteSet rwset = stub.TakeRwset();
  EXPECT_EQ(rwset.reads.size(), 1u);
}

// --------------------------------------------------------- Registry

TEST(RegistryTest, DefaultHasAllCataloguedChaincodes) {
  ChaincodeRegistry registry = ChaincodeRegistry::CreateDefault();
  for (const char* name :
       {"ehr", "dv", "scm", "drm", "genChain", "tpcc", "asset"}) {
    EXPECT_NE(registry.Get(name), nullptr) << name;
  }
  EXPECT_EQ(registry.Get("nope"), nullptr);
  EXPECT_EQ(registry.InstalledNames().size(), 7u);
}

TEST(RegistryTest, FactoryHookAddsChaincodeWithoutFactorySwitchEdits) {
  // A chaincode registered through the catalog hook must be reachable
  // through every name-based entry point, with zero factory-switch
  // edits. EHR under an alias doubles as the custom implementation.
  ChaincodeFactory factory;
  factory.make_chaincode = [](const WorkloadConfig&) {
    return std::make_shared<EhrChaincode>();
  };
  ASSERT_TRUE(RegisterChaincodeFactory("custom-ehr", factory).ok());
  // Duplicate names are rejected.
  EXPECT_EQ(RegisterChaincodeFactory("custom-ehr", factory).code(),
            StatusCode::kAlreadyExists);

  std::vector<std::string> names = RegisteredChaincodeNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "custom-ehr"), names.end());
  EXPECT_TRUE(FindChaincodeFactory("custom-ehr").has_value());

  // Restore the catalog before other tests count it.
  ASSERT_TRUE(UnregisterChaincodeFactory("custom-ehr").ok());
  EXPECT_FALSE(FindChaincodeFactory("custom-ehr").has_value());
  EXPECT_EQ(UnregisterChaincodeFactory("custom-ehr").code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, UnknownChaincodeErrorListsAvailableNames) {
  std::string message = UnknownChaincodeError("bogus");
  EXPECT_NE(message.find("unknown chaincode: bogus"), std::string::npos);
  for (const char* name :
       {"asset", "dv", "drm", "ehr", "genchain", "scm", "tpcc"}) {
    EXPECT_NE(message.find(name), std::string::npos) << name;
  }
}

TEST(RegistryTest, RejectsDuplicatesAndNull) {
  ChaincodeRegistry registry = ChaincodeRegistry::CreateDefault();
  EXPECT_EQ(registry.Register(nullptr).code(), StatusCode::kInvalidArgument);
  auto dup = std::make_shared<EhrChaincode>();
  EXPECT_EQ(registry.Register(dup).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace fabricsim
