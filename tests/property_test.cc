// Parameterized property sweeps over the substrates: randomized
// inputs, structural invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/core/runner.h"
#include "src/ext/fabricpp/conflict_graph.h"
#include "src/faults/fault_plan.h"
#include "src/ordering/block_cutter.h"
#include "src/peer/committer.h"
#include "src/peer/validator.h"
#include "src/policy/policy_presets.h"
#include "src/statedb/memory_state_db.h"

namespace fabricsim {
namespace {

// ------------------------------------------------ BlockCutter sweeps

class BlockCutterPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BlockCutterPropertyTest, EveryTxCutExactlyOnceInOrder) {
  uint32_t max_count = GetParam();
  BlockCutter cutter(BlockCutter::Config{max_count, 1 << 20});
  Rng rng(max_count);
  std::vector<TxId> cut_order;
  TxId next_id = 1;
  for (int round = 0; round < 500; ++round) {
    Transaction tx;
    tx.id = next_id++;
    tx.rwset.writes.push_back(WriteItem{"k", "v", false});
    for (auto& batch : cutter.AddTransaction(std::move(tx))) {
      for (Transaction& t : batch) cut_order.push_back(t.id);
    }
    if (rng.Bernoulli(0.05)) {  // random timeout fires
      for (Transaction& t : cutter.CutPending()) cut_order.push_back(t.id);
    }
  }
  for (Transaction& t : cutter.CutPending()) cut_order.push_back(t.id);
  ASSERT_EQ(cut_order.size(), 500u);
  for (size_t i = 0; i < cut_order.size(); ++i) {
    EXPECT_EQ(cut_order[i], i + 1);  // FIFO, no loss, no duplication
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockCutterPropertyTest,
                         ::testing::Values(1u, 2u, 7u, 64u, 1000u));

// --------------------------------------------- ConflictGraph sweeps

class ConflictGraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ConflictGraphPropertyTest, FvsAlwaysLeavesAcyclicGraph) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Transaction> txs;
    int n = 5 + static_cast<int>(rng.UniformU64(40));
    for (int t = 0; t < n; ++t) {
      Transaction tx;
      tx.id = static_cast<TxId>(t + 1);
      int ops = 1 + static_cast<int>(rng.UniformU64(3));
      for (int o = 0; o < ops; ++o) {
        std::string key = "k" + std::to_string(rng.UniformU64(8));
        if (rng.Bernoulli(0.5)) {
          tx.rwset.reads.push_back(ReadItem{key, {0, 0}, true});
        } else {
          tx.rwset.writes.push_back(WriteItem{key, "v", false});
        }
      }
      txs.push_back(std::move(tx));
    }
    uint64_t ops = 0;
    ConflictGraph graph = ConflictGraph::Build(txs, &ops);
    std::vector<uint32_t> aborted = graph.GreedyFeedbackVertexSet(&ops);
    std::vector<bool> alive(txs.size(), true);
    for (uint32_t idx : aborted) alive[idx] = false;
    size_t alive_count = 0;
    for (bool a : alive) alive_count += a ? 1 : 0;
    // A full topological order exists iff the survivors are acyclic.
    std::vector<uint32_t> order = graph.TopologicalOrder(alive, &ops);
    EXPECT_EQ(order.size(), alive_count);
    // And the order respects every surviving edge.
    std::vector<size_t> position(txs.size(), 0);
    for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    for (uint32_t u = 0; u < txs.size(); ++u) {
      if (!alive[u]) continue;
      for (uint32_t v : graph.adjacency()[u]) {
        if (!alive[v]) continue;
        EXPECT_LT(position[u], position[v]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictGraphPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ----------------------------------- Validator vs serial-replay sweep

class ValidatorPropertyTest : public ::testing::TestWithParam<int> {};

// For random blocks over a small key space: committing the validator's
// chosen transactions serially must yield exactly the final state the
// committer produces, and every valid transaction's reads must match
// the serial pre-state (serializability of the committed subsequence).
TEST_P(ValidatorPropertyTest, CommittedSubsequenceIsSerial) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977);
  Validator validator(MakePolicy(PolicyPreset::kP0AllOrgs, 2));

  MemoryStateDb db;
  for (int k = 0; k < 6; ++k) {
    db.ApplyWrite(WriteItem{"k" + std::to_string(k), "init", false}, {0, 0});
  }

  // Random block: transactions read/write random keys with versions
  // sampled from {current, stale}.
  Block block;
  block.number = 1;
  for (int t = 0; t < 30; ++t) {
    Transaction tx;
    tx.id = static_cast<TxId>(t + 1);
    std::string key = "k" + std::to_string(rng.UniformU64(6));
    Version version = rng.Bernoulli(0.8) ? Version{0, 0} : Version{9, 9};
    tx.rwset.reads.push_back(ReadItem{key, version, true});
    if (rng.Bernoulli(0.7)) {
      std::string wkey = "k" + std::to_string(rng.UniformU64(6));
      tx.rwset.writes.push_back(
          WriteItem{wkey, "w" + std::to_string(t), false});
    }
    uint64_t digest = tx.rwset.Digest();
    tx.endorsements = {Endorsement{0, 0, digest, true},
                       Endorsement{1, 1, digest, true}};
    block.txs.push_back(std::move(tx));
  }
  block.results.assign(block.txs.size(), TxValidationResult{});

  ValidationOutcome outcome = validator.ValidateBlock(db, block);

  // Serial replay of the valid subsequence.
  MemoryStateDb serial;
  for (int k = 0; k < 6; ++k) {
    serial.ApplyWrite(WriteItem{"k" + std::to_string(k), "init", false},
                      {0, 0});
  }
  for (uint32_t i = 0; i < block.txs.size(); ++i) {
    if (outcome.results[i].code != TxValidationCode::kValid) continue;
    const Transaction& tx = block.txs[i];
    // Serializability: each committed read must see exactly the
    // version it was endorsed with.
    for (const ReadItem& read : tx.rwset.reads) {
      auto vv = serial.Get(read.key);
      ASSERT_TRUE(vv.has_value());
      EXPECT_EQ(vv->version, read.version) << "tx " << tx.id;
    }
    for (const WriteItem& write : tx.rwset.writes) {
      serial.ApplyWrite(write, Version{1, i});
    }
  }
  ASSERT_TRUE(CommitStateUpdates(db, outcome.state_updates).ok());
  std::vector<StateEntry> got = db.Scan();
  std::vector<StateEntry> want = serial.Scan();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key);
    EXPECT_EQ(got[i].vv.value, want[i].vv.value);
    EXPECT_EQ(got[i].vv.version, want[i].vv.version);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorPropertyTest,
                         ::testing::Range(1, 9));

// ---------------------------------------------- Policy random sweeps

TEST(PolicyPropertyTest, EvaluateMatchesBruteForceSemantics) {
  // For random 2-level policies over 5 orgs, Evaluate must equal the
  // recursive definition computed independently.
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    int num_subs = 2 + static_cast<int>(rng.UniformU64(3));
    std::vector<EndorsementPolicy> subs;
    std::vector<std::set<OrgId>> sub_orgs;
    for (int s = 0; s < num_subs; ++s) {
      int num_leaves = 1 + static_cast<int>(rng.UniformU64(3));
      std::vector<EndorsementPolicy> leaves;
      std::set<OrgId> orgs;
      for (int l = 0; l < num_leaves; ++l) {
        OrgId org = static_cast<OrgId>(rng.UniformU64(5));
        leaves.push_back(EndorsementPolicy::SignedBy(org));
        orgs.insert(org);
      }
      int k = 1 + static_cast<int>(rng.UniformU64(leaves.size()));
      subs.push_back(EndorsementPolicy::NOutOf(k, leaves));
      sub_orgs.push_back(orgs);
      (void)k;
    }
    int n = 1 + static_cast<int>(rng.UniformU64(subs.size()));
    std::vector<int> sub_needs;
    for (const auto& sub : subs) sub_needs.push_back(sub.MinSignatures());
    EndorsementPolicy policy = EndorsementPolicy::NOutOf(n, subs);

    for (int mask = 0; mask < 32; ++mask) {
      std::set<OrgId> signers;
      for (int org = 0; org < 5; ++org) {
        if (mask & (1 << org)) signers.insert(org);
      }
      // Reference: count satisfied sub-policies by direct evaluation.
      int satisfied = 0;
      for (const auto& sub : subs) {
        if (sub.Evaluate(signers)) ++satisfied;
      }
      EXPECT_EQ(policy.Evaluate(signers), satisfied >= n);
    }
  }
}

// ----------------------- Chain integrity under chaos (regression)

// RunOnce audits every run with the chain-integrity checker and turns
// a violation into an Internal error, so "the run succeeded" is the
// property: no fault mix may leave diverging peer chains, non-dense
// numbering, double-committed or lost-acked transactions.
class ChaosIntegrityPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

// The PR 3 chaos mix (compat single-leader ordering): org delay, peer
// crash + restart, orderer pause, lossy client link, retries and MVCC
// resubmission all active at once.
TEST_P(ChaosIntegrityPropertyTest, CompatFaultMixKeepsTheChainSound) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 8 * kSecond;
  config.arrival_rate_tps = 60;
  config.fabric.retry.endorse_timeout = 400 * kMillisecond;
  config.fabric.retry.max_endorse_retries = 2;
  config.fabric.retry.resubmit_on_mvcc = true;
  DelayWindow window;
  window.org = 1;
  window.extra = 50 * kMillisecond;
  window.jitter = 5 * kMillisecond;
  window.from = 2 * kSecond;
  window.to = 5 * kSecond;
  LinkFaultRule lossy;  // orderer <-> first client, 5% loss mid-run
  lossy.a = 0;
  lossy.b = 5;
  lossy.drop_prob = 0.05;
  lossy.from = 2 * kSecond;
  lossy.to = 6 * kSecond;
  config.fabric.faults.Delay(window)
      .Crash(/*peer=*/1, 3 * kSecond, /*restart_at=*/5 * kSecond)
      .PauseOrderer(4 * kSecond, 4500 * kMillisecond)
      .DropLink(lossy);
  Result<FailureReport> report = RunOnce(config, GetParam());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().ledger_txs, 0u);
}

// Replicated ordering under a leader crash layered with a peer crash
// and an org-wide delay: failover plus client re-broadcasts must not
// lose or double-commit any acked transaction on any peer.
TEST_P(ChaosIntegrityPropertyTest, LeaderCrashMixKeepsTheChainSound) {
  ExperimentConfig config = ExperimentConfig::Defaults();
  config.duration = 10 * kSecond;
  config.arrival_rate_tps = 50;
  config.fabric.ordering.replicated = true;
  config.fabric.retry.resubmit_on_mvcc = true;
  DelayWindow window;
  window.org = 0;
  window.extra = 20 * kMillisecond;
  window.jitter = 2 * kMillisecond;
  window.from = 1 * kSecond;
  window.to = 6 * kSecond;
  config.fabric.faults.Delay(window)
      .Crash(/*peer=*/2, 4 * kSecond, /*restart_at=*/7 * kSecond)
      .CrashLeader(3 * kSecond, /*restart_at=*/6 * kSecond);
  Result<FailureReport> report = RunOnce(config, GetParam());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().ledger_txs, 0u);
  EXPECT_GE(report.value().orderer_elections, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosIntegrityPropertyTest,
                         ::testing::Values(1u, 11u, 23u, 42u));

}  // namespace
}  // namespace fabricsim
