// Actor-level tests for the ordering service: cut triggers, timeout
// cancellation, streaming mode, delivery, and processor integration.
#include <gtest/gtest.h>

#include <memory>

#include "src/ordering/orderer.h"

namespace fabricsim {
namespace {

Transaction SimpleTx(TxId id) {
  Transaction tx;
  tx.id = id;
  tx.rwset.writes.push_back(WriteItem{"k" + std::to_string(id), "v", false});
  return tx;
}

class OrdererTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<Environment>(5);
    net_ = std::make_unique<Network>(NetworkConfig{}, Rng(5));
  }

  Orderer::Params BaseParams(uint32_t block_size) {
    Orderer::Params params;
    params.node = 0;
    params.env = env_.get();
    params.net = net_.get();
    params.cutter = BlockCutter::Config{block_size, 1 << 20};
    params.block_timeout = 2 * kSecond;
    params.timing = TimingConfig{};
    params.consensus = ConsensusModel(3, 4000);
    params.rng = Rng(5);
    params.peers.push_back(Orderer::Params::PeerEndpoint{
        1, [this](std::shared_ptr<const Block> block) {
          delivered_.push_back(std::move(block));
        }});
    return params;
  }

  std::unique_ptr<Environment> env_;
  std::unique_ptr<Network> net_;
  std::vector<std::shared_ptr<const Block>> delivered_;
};

TEST_F(OrdererTest, CutsAtBlockSize) {
  Orderer orderer(BaseParams(3));
  for (TxId id = 1; id <= 7; ++id) orderer.SubmitTransaction(SimpleTx(id));
  env_->RunUntil(1 * kSecond);  // before the 2 s timeout
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[0]->txs.size(), 3u);
  EXPECT_EQ(delivered_[0]->number, 1u);
  EXPECT_EQ(delivered_[1]->number, 2u);
  EXPECT_EQ(delivered_[0]->cut_reason, BlockCutReason::kMaxCount);
  // The 7th transaction waits for the timeout.
  env_->RunAll();
  ASSERT_EQ(delivered_.size(), 3u);
  EXPECT_EQ(delivered_[2]->txs.size(), 1u);
  EXPECT_EQ(delivered_[2]->cut_reason, BlockCutReason::kTimeout);
}

TEST_F(OrdererTest, TimeoutCancelledByFullBlock) {
  Orderer orderer(BaseParams(2));
  orderer.SubmitTransaction(SimpleTx(1));
  orderer.SubmitTransaction(SimpleTx(2));  // cuts immediately
  env_->RunAll();
  // Only one block: the timeout for the first tx must not fire an
  // empty or duplicate cut.
  EXPECT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(orderer.blocks_cut(), 1u);
}

TEST_F(OrdererTest, OrderedTimeStamped) {
  Orderer orderer(BaseParams(1));
  orderer.SubmitTransaction(SimpleTx(1));
  env_->RunAll();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_GT(delivered_[0]->txs[0].ordered_time, 0);
}

TEST_F(OrdererTest, StreamingCutsEveryTransaction) {
  Orderer::Params params = BaseParams(100);
  params.streaming = true;
  Orderer orderer(std::move(params));
  for (TxId id = 1; id <= 5; ++id) orderer.SubmitTransaction(SimpleTx(id));
  env_->RunAll();
  ASSERT_EQ(delivered_.size(), 5u);
  for (const auto& block : delivered_) {
    EXPECT_EQ(block->txs.size(), 1u);
    EXPECT_EQ(block->cut_reason, BlockCutReason::kStreaming);
  }
}

TEST_F(OrdererTest, DeliveryWaitsForConsensusLatency) {
  Orderer orderer(BaseParams(1));
  orderer.SubmitTransaction(SimpleTx(1));
  // Consensus adds >= 0.8 * 4 ms * (1 + 0.3): nothing delivered after
  // only 1 ms.
  env_->RunUntil(1 * kMillisecond);
  EXPECT_TRUE(delivered_.empty());
  env_->RunAll();
  EXPECT_EQ(delivered_.size(), 1u);
}

// Processor that rejects even transaction ids and drops the rest's
// block content at cut when asked.
class RejectEvenProcessor : public BlockProcessor {
 public:
  bool Admit(const Transaction& tx, TxValidationCode* code) override {
    if (tx.id % 2 == 0) {
      *code = TxValidationCode::kAbortedNotSerializable;
      return false;
    }
    return true;
  }
};

TEST_F(OrdererTest, ProcessorAdmissionRejects) {
  Orderer::Params params = BaseParams(2);
  RejectEvenProcessor processor;
  params.processor = &processor;
  std::vector<TxId> aborted_ids;
  params.on_early_abort = [&](const Transaction& tx, TxValidationCode code) {
    EXPECT_EQ(code, TxValidationCode::kAbortedNotSerializable);
    aborted_ids.push_back(tx.id);
  };
  Orderer orderer(std::move(params));
  for (TxId id = 1; id <= 4; ++id) orderer.SubmitTransaction(SimpleTx(id));
  env_->RunAll();
  EXPECT_EQ(aborted_ids, (std::vector<TxId>{2, 4}));
  EXPECT_EQ(orderer.txs_early_aborted(), 2u);
  ASSERT_EQ(delivered_.size(), 1u);  // odd ids 1 and 3 form one block
  EXPECT_EQ(delivered_[0]->txs.size(), 2u);
}

// Processor that drops every transaction at cut time.
class DropAllProcessor : public BlockProcessor {
 public:
  SimTime OnBlockCut(Block* block,
                     std::vector<EarlyAbort>* early_aborted) override {
    for (Transaction& tx : block->txs) {
      early_aborted->emplace_back(std::move(tx),
                                  TxValidationCode::kAbortedNotSerializable);
    }
    block->txs.clear();
    block->results.clear();
    return 0;
  }
};

TEST_F(OrdererTest, FullyAbortedBlockIsNotDelivered) {
  Orderer::Params params = BaseParams(2);
  DropAllProcessor processor;
  params.processor = &processor;
  Orderer orderer(std::move(params));
  orderer.SubmitTransaction(SimpleTx(1));
  orderer.SubmitTransaction(SimpleTx(2));
  // An undelivered cut must not consume a block number.
  env_->RunAll();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(orderer.txs_early_aborted(), 2u);
  EXPECT_EQ(orderer.blocks_cut(), 0u);

  Orderer::Params params2 = BaseParams(2);
  params2.processor = nullptr;
  Orderer orderer2(std::move(params2));
  orderer2.SubmitTransaction(SimpleTx(3));
  orderer2.SubmitTransaction(SimpleTx(4));
  env_->RunAll();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0]->number, 1u);
}

// Processor that drops the whole content of its Nth cut (0-based) and
// passes every other block through — the all-aborted-in-the-middle
// shape a reordering/early-abort variant can produce under contention.
class DropNthCutProcessor : public BlockProcessor {
 public:
  explicit DropNthCutProcessor(int drop_index) : drop_index_(drop_index) {}

  SimTime OnBlockCut(Block* block,
                     std::vector<EarlyAbort>* early_aborted) override {
    if (cut_index_++ != drop_index_) return 0;
    for (Transaction& tx : block->txs) {
      early_aborted->emplace_back(std::move(tx),
                                  TxValidationCode::kAbortedNotSerializable);
    }
    block->txs.clear();
    block->results.clear();
    return 0;
  }

 private:
  int drop_index_;
  int cut_index_ = 0;
};

// Regression for the block-number-reuse bug: the orderer used to stamp
// the number before the all-aborted check and roll the counter back
// afterwards, so an aborted cut in mid-stream left a stamped-but-free
// number behind. Delivered numbers must stay dense and monotone with
// an all-aborted cut between two delivered ones.
TEST_F(OrdererTest, AllAbortedCutKeepsBlockNumbersDenseAndMonotone) {
  Orderer::Params params = BaseParams(2);
  DropNthCutProcessor processor(/*drop_index=*/1);
  params.processor = &processor;
  Orderer orderer(std::move(params));
  for (TxId id = 1; id <= 6; ++id) orderer.SubmitTransaction(SimpleTx(id));
  env_->RunAll();
  EXPECT_EQ(orderer.txs_early_aborted(), 2u);
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[0]->number, 1u);
  EXPECT_EQ(delivered_[1]->number, 2u);
  EXPECT_EQ(orderer.blocks_cut(), 2u);
  // The surviving cuts carry the txs around the aborted batch.
  EXPECT_EQ(delivered_[0]->txs[0].id, 1u);
  EXPECT_EQ(delivered_[1]->txs[0].id, 5u);
}

// A pause that spans an armed batch timeout swallows the firing; the
// batched transaction must not wait forever, so Resume() re-arms and
// the cut lands one full block_timeout after the resume — never at the
// stale pre-pause deadline.
TEST_F(OrdererTest, PauseSwallowsArmedTimeoutAndResumeReArms) {
  Orderer orderer(BaseParams(10));
  orderer.SubmitTransaction(SimpleTx(1));  // arms the 2 s timeout
  env_->ScheduleAt(1 * kSecond, [&]() { orderer.Pause(); });
  env_->ScheduleAt(3 * kSecond, [&]() { orderer.Resume(); });
  // The original deadline (t = 2 s) falls inside the pause: nothing may
  // be delivered before the resume.
  env_->RunUntil(2900 * kMillisecond);
  EXPECT_TRUE(delivered_.empty());
  env_->RunAll();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0]->cut_reason, BlockCutReason::kTimeout);
  // Re-armed at resume: cut at ~5 s, not the swallowed 2 s deadline.
  EXPECT_GE(delivered_[0]->cut_time, 5 * kSecond);
}

// Resume() before the armed timeout's deadline must not arm a second
// timer: the original deadline stays live and fires exactly once.
TEST_F(OrdererTest, ResumeBeforeDeadlineDoesNotDoubleArm) {
  Orderer orderer(BaseParams(10));
  orderer.SubmitTransaction(SimpleTx(1));  // arms the 2 s timeout
  env_->ScheduleAt(500 * kMillisecond, [&]() { orderer.Pause(); });
  env_->ScheduleAt(1 * kSecond, [&]() { orderer.Resume(); });
  env_->RunAll();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(orderer.blocks_cut(), 1u);
  EXPECT_EQ(delivered_[0]->cut_reason, BlockCutReason::kTimeout);
  // The pre-pause deadline held: ~2 s, not re-armed to 3 s.
  EXPECT_GE(delivered_[0]->cut_time, 2 * kSecond);
  EXPECT_LT(delivered_[0]->cut_time, 2 * kSecond + 500 * kMillisecond);
}

// Backlog flushed at Resume() fills a block and cuts by size; the
// pre-pause timeout generation is stale by then and must not fire a
// premature cut for the remainder.
TEST_F(OrdererTest, ResumeFlushCutCancelsStaleTimeoutGeneration) {
  Orderer orderer(BaseParams(2));
  orderer.SubmitTransaction(SimpleTx(1));  // arms the 2 s timeout
  env_->ScheduleAt(1 * kSecond, [&]() { orderer.Pause(); });
  env_->ScheduleAt(1200 * kMillisecond, [&]() {
    orderer.SubmitTransaction(SimpleTx(2));  // deferred to the backlog
    orderer.SubmitTransaction(SimpleTx(3));
  });
  env_->ScheduleAt(1500 * kMillisecond, [&]() { orderer.Resume(); });
  env_->RunAll();
  EXPECT_EQ(orderer.txs_deferred_while_paused(), 2u);
  ASSERT_EQ(delivered_.size(), 2u);
  // Flush cuts {1, 2} by size just after the resume.
  EXPECT_EQ(delivered_[0]->cut_reason, BlockCutReason::kMaxCount);
  EXPECT_EQ(delivered_[0]->txs.size(), 2u);
  // Tx 3 waits for a fresh timeout armed at the size cut (~3.5 s). If
  // the stale pre-pause timer (deadline 2 s) fired, the cut would land
  // a good second earlier.
  EXPECT_EQ(delivered_[1]->cut_reason, BlockCutReason::kTimeout);
  EXPECT_EQ(delivered_[1]->txs[0].id, 3u);
  EXPECT_GE(delivered_[1]->cut_time, 3400 * kMillisecond);
}

TEST_F(OrdererTest, IngressCountsTransactions) {
  Orderer orderer(BaseParams(10));
  for (TxId id = 1; id <= 4; ++id) orderer.SubmitTransaction(SimpleTx(id));
  env_->RunAll();
  EXPECT_EQ(orderer.txs_received(), 4u);
}

}  // namespace
}  // namespace fabricsim
