// TPC-C subsystem tests: contract semantics (NewOrder sequencing and
// invalid-item rollback, Payment balance maths, Delivery backlog
// consumption, read-only transactions), workload mix shape, and the
// determinism regression (bitwise-identical reports across
// FABRICSIM_JOBS 1/4 and serial/threaded execution).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/chaincode/tpcc/tpcc_chaincode.h"
#include "src/common/parallel.h"
#include "src/common/strings.h"
#include "src/core/runner.h"
#include "src/statedb/memory_state_db.h"
#include "src/statedb/rich_query.h"
#include "src/workload/tpcc_workload.h"

namespace fabricsim {
namespace {

class TpccContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const WriteItem& w : cc_.BootstrapState()) {
      db_.ApplyWrite(w, {0, 0});
    }
  }

  /// Commits `stub`'s buffered writes into the world state (what the
  /// validation phase would do for a valid transaction).
  void Commit(ChaincodeStub& stub, Version version) {
    for (const WriteItem& w : stub.TakeRwset().writes) {
      db_.ApplyWrite(w, version);
    }
  }

  std::optional<std::string> WrittenValue(const ChaincodeStub& stub,
                                          const std::string& key) {
    for (const WriteItem& w : stub.rwset().writes) {
      if (w.key == key && !w.is_delete) return w.value;
    }
    return std::nullopt;
  }

  TpccChaincode cc_;
  MemoryStateDb db_;
};

Invocation MakeNewOrder(int w, int d, int c,
                        std::vector<std::pair<int, int>> lines) {
  Invocation inv{"NewOrder",
                 {std::to_string(w), std::to_string(d), std::to_string(c),
                  std::to_string(lines.size())}};
  for (auto [item, qty] : lines) {
    inv.args.push_back(std::to_string(item));
    inv.args.push_back(std::to_string(qty));
  }
  return inv;
}

TEST_F(TpccContractTest, NewOrderSequencesOnDistrictRow) {
  ChaincodeStub stub(db_, true);
  Status status = cc_.Invoke(stub, MakeNewOrder(0, 3, 5, {{1, 3}, {2, 4}}));
  ASSERT_TRUE(status.ok()) << status.ToString();

  // d_next_o_id read from committed state (0) and written back as 1.
  std::optional<std::string> dist =
      WrittenValue(stub, tpcc::DistrictKey(0, 3));
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ(ExtractJsonField(*dist, "next_o_id").value_or(""), "1");

  // Order 0 materializes: ORDER + NEWORDER + one ORDERLINE per line.
  EXPECT_TRUE(WrittenValue(stub, tpcc::OrderKey(0, 3, 0)).has_value());
  EXPECT_TRUE(WrittenValue(stub, tpcc::NewOrderKey(0, 3, 0)).has_value());
  EXPECT_TRUE(WrittenValue(stub, tpcc::OrderLineKey(0, 3, 0, 0)).has_value());
  EXPECT_TRUE(WrittenValue(stub, tpcc::OrderLineKey(0, 3, 0, 1)).has_value());
  // Footprint: (3 + 2n) reads, (3 + 2n) writes for n lines.
  EXPECT_EQ(stub.rwset().reads.size(), 7u);
  EXPECT_EQ(stub.rwset().writes.size(), 7u);

  // The next NewOrder in the same district continues the sequence.
  Commit(stub, {1, 0});
  ChaincodeStub stub2(db_, true);
  ASSERT_TRUE(cc_.Invoke(stub2, MakeNewOrder(0, 3, 6, {{7, 1}})).ok());
  std::optional<std::string> dist2 =
      WrittenValue(stub2, tpcc::DistrictKey(0, 3));
  ASSERT_TRUE(dist2.has_value());
  EXPECT_EQ(ExtractJsonField(*dist2, "next_o_id").value_or(""), "2");
  EXPECT_TRUE(WrittenValue(stub2, tpcc::OrderKey(0, 3, 1)).has_value());
}

TEST_F(TpccContractTest, NewOrderInvalidItemRollsBack) {
  // TPC-C §2.4.1.5 / §2.4.2.3: an unused item id fails the transaction
  // after its reads — the error status fails endorsement, so no write
  // ever reaches the orderer.
  ChaincodeStub stub(db_, true);
  int invalid = cc_.config().items;  // first never-bootstrapped id
  Status status = cc_.Invoke(stub, MakeNewOrder(0, 0, 0, {{1, 2},
                                                          {invalid, 1}}));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(stub.rwset().writes.empty());
  // Both item reads happened (the second recorded as not-found).
  ASSERT_EQ(stub.rwset().reads.size(), 2u);
  EXPECT_TRUE(stub.rwset().reads[0].found);
  EXPECT_FALSE(stub.rwset().reads[1].found);
}

TEST_F(TpccContractTest, PaymentBalanceMaths) {
  ChaincodeStub stub(db_, true);
  Status status = cc_.Invoke(
      stub, Invocation{"Payment", {"1", "2", "9", "250"}});
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(stub.rwset().reads.size(), 3u);
  EXPECT_EQ(stub.rwset().writes.size(), 2u);

  std::optional<std::string> cust =
      WrittenValue(stub, tpcc::CustomerKey(1, 2, 9));
  ASSERT_TRUE(cust.has_value());
  EXPECT_EQ(ExtractJsonField(*cust, "balance").value_or(""), "-250");
  EXPECT_EQ(ExtractJsonField(*cust, "ytd_payment").value_or(""), "250");
  EXPECT_EQ(ExtractJsonField(*cust, "payments").value_or(""), "1");

  std::optional<std::string> dist =
      WrittenValue(stub, tpcc::DistrictKey(1, 2));
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ(ExtractJsonField(*dist, "ytd").value_or(""), "250");
  // Payment must NOT touch the order sequence.
  EXPECT_EQ(ExtractJsonField(*dist, "next_o_id").value_or(""), "0");

  // The warehouse row is read but never written: ytd accounting lives
  // in the district row so the single warehouse row stays conflict-free.
  EXPECT_FALSE(WrittenValue(stub, tpcc::WarehouseKey(1)).has_value());

  // Second payment compounds on committed state.
  Commit(stub, {1, 0});
  ChaincodeStub stub2(db_, true);
  ASSERT_TRUE(
      cc_.Invoke(stub2, Invocation{"Payment", {"1", "2", "9", "100"}}).ok());
  std::optional<std::string> cust2 =
      WrittenValue(stub2, tpcc::CustomerKey(1, 2, 9));
  ASSERT_TRUE(cust2.has_value());
  EXPECT_EQ(ExtractJsonField(*cust2, "balance").value_or(""), "-350");
  EXPECT_EQ(ExtractJsonField(*cust2, "payments").value_or(""), "2");
}

TEST_F(TpccContractTest, DeliveryConsumesBacklogAndCreditsCustomer) {
  // Commit one NewOrder, then deliver it.
  ChaincodeStub seed(db_, true);
  ASSERT_TRUE(cc_.Invoke(seed, MakeNewOrder(0, 0, 4, {{1, 2}, {2, 2}})).ok());
  Commit(seed, {1, 0});

  ChaincodeStub stub(db_, true);
  Status status = cc_.Invoke(stub, Invocation{"Delivery", {"0", "0", "7"}});
  ASSERT_TRUE(status.ok()) << status.ToString();

  // The NEWORDER entry is deleted, the order gains its carrier, the
  // customer is credited per line.
  bool deleted = false;
  for (const WriteItem& w : stub.rwset().writes) {
    if (w.key == tpcc::NewOrderKey(0, 0, 0)) deleted = w.is_delete;
  }
  EXPECT_TRUE(deleted);
  std::optional<std::string> order = WrittenValue(stub, tpcc::OrderKey(0, 0, 0));
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(ExtractJsonField(*order, "carrier").value_or(""), "7");
  std::optional<std::string> cust =
      WrittenValue(stub, tpcc::CustomerKey(0, 0, 4));
  ASSERT_TRUE(cust.has_value());
  EXPECT_EQ(ExtractJsonField(*cust, "balance").value_or(""), "1000");
  // The backlog scan is phantom-checked.
  ASSERT_EQ(stub.rwset().range_queries.size(), 1u);
  EXPECT_TRUE(stub.rwset().range_queries[0].phantom_check);

  // An empty district delivers nothing but keeps the scan footprint.
  ChaincodeStub empty(db_, true);
  ASSERT_TRUE(cc_.Invoke(empty, Invocation{"Delivery", {"1", "5", "2"}}).ok());
  EXPECT_TRUE(empty.rwset().writes.empty());
  EXPECT_EQ(empty.rwset().range_queries.size(), 1u);
}

TEST_F(TpccContractTest, ReadOnlyTransactionsWriteNothing) {
  // Commit an order so OrderStatus/StockLevel have lines to scan.
  ChaincodeStub seed(db_, true);
  ASSERT_TRUE(cc_.Invoke(seed, MakeNewOrder(0, 1, 2, {{3, 5}})).ok());
  Commit(seed, {1, 0});

  ChaincodeStub status_stub(db_, true);
  ASSERT_TRUE(
      cc_.Invoke(status_stub, Invocation{"OrderStatus", {"0", "1", "2", "0"}})
          .ok());
  EXPECT_TRUE(status_stub.rwset().writes.empty());
  EXPECT_EQ(status_stub.rwset().reads.size(), 2u);
  ASSERT_EQ(status_stub.rwset().range_queries.size(), 1u);
  EXPECT_EQ(status_stub.rwset().range_queries[0].reads.size(), 1u);

  ChaincodeStub level_stub(db_, true);
  ASSERT_TRUE(
      cc_.Invoke(level_stub, Invocation{"StockLevel", {"0", "1", "15"}}).ok());
  EXPECT_TRUE(level_stub.rwset().writes.empty());
  // District read + one stock read for the single scanned item.
  EXPECT_EQ(level_stub.rwset().reads.size(), 2u);
  EXPECT_EQ(level_stub.rwset().range_queries.size(), 1u);
}

TEST_F(TpccContractTest, UnknownFunctionRejected) {
  ChaincodeStub stub(db_, true);
  EXPECT_EQ(cc_.Invoke(stub, Invocation{"Refund", {}}).code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ workload

TEST(TpccWorkloadTest, MixMatchesKlenikWeights) {
  WorkloadConfig config;
  config.chaincode = "tpcc";
  config.zipf_skew = 0.0;
  std::unique_ptr<WorkloadGenerator> workload = MakeTpccWorkload(config);
  ASSERT_NE(workload, nullptr);
  EXPECT_EQ(workload->chaincode(), "tpcc");

  Rng rng(123);
  const int kDraws = 20000;
  std::map<std::string, int> counts;
  int invalid_neworders = 0;
  for (int i = 0; i < kDraws; ++i) {
    Invocation inv = workload->Next(rng);
    ++counts[inv.function];
    if (inv.function == "NewOrder") {
      // The invalid transaction names the first unused item id as its
      // last item.
      if (inv.args[inv.args.size() - 2] ==
          std::to_string(config.tpcc.items)) {
        ++invalid_neworders;
      }
    }
  }
  // 45 / 43 / 4 / 4 / 4 within sampling tolerance.
  EXPECT_NEAR(counts["NewOrder"] / static_cast<double>(kDraws), 0.45, 0.02);
  EXPECT_NEAR(counts["Payment"] / static_cast<double>(kDraws), 0.43, 0.02);
  EXPECT_NEAR(counts["Delivery"] / static_cast<double>(kDraws), 0.04, 0.01);
  EXPECT_NEAR(counts["OrderStatus"] / static_cast<double>(kDraws), 0.04, 0.01);
  EXPECT_NEAR(counts["StockLevel"] / static_cast<double>(kDraws), 0.04, 0.01);
  // ~1% of NewOrders carry the invalid item.
  EXPECT_NEAR(invalid_neworders / static_cast<double>(counts["NewOrder"]),
              0.01, 0.008);
}

TEST(TpccWorkloadTest, ArgumentsStayInSchemaBounds) {
  WorkloadConfig config;
  config.chaincode = "tpcc";
  std::unique_ptr<WorkloadGenerator> workload = MakeTpccWorkload(config);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    Invocation inv = workload->Next(rng);
    ASSERT_GE(inv.args.size(), 3u);
    int w = std::stoi(inv.args[0]);
    int d = std::stoi(inv.args[1]);
    EXPECT_GE(w, 0);
    EXPECT_LT(w, config.tpcc.warehouses);
    EXPECT_GE(d, 0);
    EXPECT_LT(d, config.tpcc.districts_per_warehouse);
    if (inv.function == "NewOrder") {
      int n = std::stoi(inv.args[3]);
      EXPECT_GE(n, 5);
      EXPECT_LE(n, 15);
      ASSERT_EQ(inv.args.size(), static_cast<size_t>(4 + 2 * n));
    }
  }
}

// --------------------------------------------------- determinism

// Same exhaustive numeric fingerprint as channel_test.cc / fault_test.cc.
std::string Fingerprint(const FailureReport& r) {
  std::string out;
  out += StrFormat(
      "ledger=%llu valid=%llu endorse=%llu mvcc_intra=%llu "
      "mvcc_inter=%llu phantom=%llu submitted=%llu app=%llu\n",
      static_cast<unsigned long long>(r.ledger_txs),
      static_cast<unsigned long long>(r.valid_txs),
      static_cast<unsigned long long>(r.endorsement_failures),
      static_cast<unsigned long long>(r.mvcc_intra),
      static_cast<unsigned long long>(r.mvcc_inter),
      static_cast<unsigned long long>(r.phantom),
      static_cast<unsigned long long>(r.submitted_txs),
      static_cast<unsigned long long>(r.app_errors));
  out += StrFormat("pct=%.17g/%.17g/%.17g/%.17g/%.17g\n", r.total_failure_pct,
                   r.endorsement_pct, r.mvcc_pct, r.phantom_pct,
                   r.early_abort_pct);
  out += StrFormat("lat=%.17g/%.17g/%.17g tput=%.17g/%.17g\n", r.avg_latency_s,
                   r.p50_latency_s, r.p99_latency_s, r.committed_throughput_tps,
                   r.valid_throughput_tps);
  return out;
}

TEST(TpccDeterminismTest, BitwiseIdenticalAcrossJobsAndExecutionModes) {
  ExperimentConfig config = ExperimentConfig::Builder()
                                .Chaincode("tpcc")
                                .Duration(10 * kSecond)
                                .RateTps(100)
                                .Repetitions(1)
                                .Seed(7)
                                .Build();
  Result<FailureReport> reference = RunOnce(config, 7);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  std::string golden = Fingerprint(reference.value());
  // A real mix produces failures AND successes; a degenerate run would
  // make the determinism check vacuous.
  EXPECT_GT(reference.value().valid_txs, 0u);
  EXPECT_GT(reference.value().mvcc_intra + reference.value().mvcc_inter, 0u);

  int saved_jobs = ParallelJobs();
  for (int jobs : {1, 4}) {
    SetParallelJobs(jobs);
    Result<ExperimentResult> result = RunExperiment(config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(Fingerprint(result.value().repetitions[0]), golden)
        << "jobs=" << jobs;
  }
  SetParallelJobs(saved_jobs);

  for (int threads : {2, 4}) {
    ExperimentConfig threaded = ExperimentConfig::Builder(config)
                                    .ThreadedExecution(threads)
                                    .Build();
    Result<FailureReport> result = RunOnce(threaded, 7);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(Fingerprint(result.value()), golden) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace fabricsim
