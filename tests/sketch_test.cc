// Streaming-statistics substrate tests: QuantileSketch accuracy
// against exact quantiles (and the dense Histogram) on adversarial
// distributions, merge/order independence, memory bounds, the
// Histogram::Percentile observed-range clamp, Rng::Exponential's
// degenerate-mean guard, and the ReservoirSampler contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/reservoir.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"

namespace fabricsim {
namespace {

// Exact q-quantile of a value multiset under the sketch's rank
// convention: the sample at rank ceil(q * n) (1-based, min rank 1).
double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  size_t target = static_cast<size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  if (target == 0) target = 1;
  return values[target - 1];
}

// Asserts that the sketch reports every checked quantile within its
// documented relative-error bound of the exact quantile.
void ExpectAccurate(const QuantileSketch& sketch,
                    const std::vector<double>& values,
                    const std::string& label) {
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    double exact = ExactQuantile(values, q);
    double estimate = sketch.Percentile(q);
    SCOPED_TRACE(StrFormat("%s q=%.3f exact=%.9g est=%.9g", label.c_str(), q,
                           exact, estimate));
    if (exact <= QuantileSketch::kMinTracked) {
      // Sub-threshold values collapse into the exact zero bucket; the
      // clamp still keeps the answer inside the observed range.
      EXPECT_GE(estimate, sketch.min());
      EXPECT_LE(estimate, sketch.max());
      continue;
    }
    EXPECT_NEAR(estimate, exact, QuantileSketch::kRelativeError * exact);
  }
}

TEST(SketchTest, AccurateOnLogUniformSpan) {
  // 12 decades in one stream — the case fixed-range histograms lose.
  Rng rng(7);
  std::vector<double> values;
  QuantileSketch sketch;
  for (int i = 0; i < 20000; ++i) {
    double v = std::pow(10.0, rng.UniformRange(-3.0, 9.0));
    values.push_back(v);
    sketch.Add(v);
  }
  ExpectAccurate(sketch, values, "log-uniform");
}

TEST(SketchTest, AccurateOnHeavyTail) {
  // Pareto(alpha=0.5): infinite variance, a tail that dense buckets
  // truncate into one overflow bin.
  Rng rng(11);
  std::vector<double> values;
  QuantileSketch sketch;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.UniformDouble();
    if (u >= 1.0) u = 0.5;
    double v = std::pow(1.0 - u, -2.0);  // alpha = 0.5
    values.push_back(v);
    sketch.Add(v);
  }
  ExpectAccurate(sketch, values, "pareto");
}

TEST(SketchTest, AccurateOnBimodalWithZeros) {
  // Two far-apart modes plus exact zeros and negatives (clamped into
  // the zero bucket) — quantiles must never interpolate between modes.
  Rng rng(13);
  std::vector<double> values;
  QuantileSketch sketch;
  for (int i = 0; i < 15000; ++i) {
    double v;
    double u = rng.UniformDouble();
    if (u < 0.1) {
      v = 0.0;
    } else if (u < 0.6) {
      v = 0.01 * (1.0 + 0.001 * rng.UniformDouble());
    } else {
      v = 1e7 * (1.0 + 0.001 * rng.UniformDouble());
    }
    values.push_back(v);
    sketch.Add(v);
  }
  sketch.Add(-3.0);  // clamped: counts as zero, drags min to 0 only
  values.push_back(0.0);
  ExpectAccurate(sketch, values, "bimodal");
  // Nothing between the modes is ever reported.
  double p70 = sketch.Percentile(0.7);
  EXPECT_TRUE(p70 < 0.02 || p70 > 9e6) << p70;
}

TEST(SketchTest, MatchesDenseHistogramOnLatencyShapedData) {
  // On data inside the Histogram's designed range both estimators must
  // agree with the exact answer (and hence each other) to a few
  // percent — the sketch is a drop-in for the dense path here.
  Rng rng(17);
  std::vector<double> values;
  QuantileSketch sketch;
  Histogram dense;
  for (int i = 0; i < 30000; ++i) {
    double v = rng.Exponential(250.0);  // latency-ish ms
    values.push_back(v);
    sketch.Add(v);
    dense.Add(v);
  }
  for (double q : {0.5, 0.9, 0.99}) {
    double exact = ExactQuantile(values, q);
    EXPECT_NEAR(sketch.Percentile(q), exact, 0.01 * exact);
    EXPECT_NEAR(dense.Percentile(q), exact, 0.05 * exact);
  }
  EXPECT_DOUBLE_EQ(sketch.mean(), dense.mean());
}

TEST(SketchTest, MergeEquivalentToSingleStream) {
  // Shard a stream three ways, merge, and compare against the
  // single-sketch result: bit-identical everything. The streaming
  // tracer relies on this to fold per-phase shards.
  Rng rng(19);
  QuantileSketch whole;
  QuantileSketch shards[3];
  for (int i = 0; i < 9999; ++i) {
    double v = std::pow(10.0, rng.UniformRange(-2.0, 6.0));
    whole.Add(v);
    shards[i % 3].Add(v);
  }
  QuantileSketch merged;
  for (const QuantileSketch& shard : shards) merged.Merge(shard);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.bucket_count(), whole.bucket_count());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(q), whole.Percentile(q)) << q;
  }
}

TEST(SketchTest, InsertionOrderNeverMatters) {
  // Determinism contract: state is a pure function of the multiset.
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(rng.Exponential(42.0));
  }
  QuantileSketch forward;
  for (double v : values) forward.Add(v);
  QuantileSketch backward;
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    backward.Add(*it);
  }
  for (double q : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(forward.Percentile(q), backward.Percentile(q));
  }
  EXPECT_EQ(forward.count(), backward.count());
  EXPECT_EQ(forward.bucket_count(), backward.bucket_count());
}

TEST(SketchTest, MemoryStaysBoundedUnderMillionsOfSamples) {
  // O(log(max/min)) buckets regardless of stream length: a million
  // samples across 12 decades must stay under the bucket ceiling and
  // a few tens of kilobytes.
  Rng rng(29);
  QuantileSketch sketch;
  for (int i = 0; i < 1000000; ++i) {
    sketch.Add(std::pow(10.0, rng.UniformRange(-3.0, 9.0)));
  }
  EXPECT_EQ(sketch.count(), 1000000u);
  EXPECT_LE(sketch.bucket_count(), QuantileSketch::kMaxBuckets);
  EXPECT_LT(sketch.ApproxMemoryBytes(), 200u * 1024u);
}

TEST(SketchTest, EmptyAndSingletonSketches) {
  QuantileSketch empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
  EXPECT_EQ(empty.mean(), 0.0);

  QuantileSketch one;
  one.Add(123.456);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(one.Percentile(q), 123.456) << q;
  }
  EXPECT_EQ(one.min(), 123.456);
  EXPECT_EQ(one.max(), 123.456);
}

// ------------------------------------------- Histogram percentile clamp

TEST(SketchTest, HistogramPercentileClampedToObservedRange) {
  // A single sample: every percentile IS that sample, not a bucket
  // edge (the pre-fix interpolation invented values outside the data).
  Histogram single;
  single.Add(7.3);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(single.Percentile(q), 7.3) << q;
  }

  // Overflow bucket: the top percentile reports the observed max, not
  // the bucket's nominal (unbounded) edge.
  Histogram overflow;
  overflow.Add(1.0);
  overflow.Add(1e12);
  EXPECT_EQ(overflow.Percentile(1.0), 1e12);
  EXPECT_GE(overflow.Percentile(0.0), 1.0);

  // General streams never report outside [min, max].
  Rng rng(31);
  Histogram h;
  double lo = 1e300, hi = 0.0;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Exponential(3.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    h.Add(v);
  }
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.Percentile(q), lo) << q;
    EXPECT_LE(h.Percentile(q), hi) << q;
  }
}

// --------------------------------------------- Rng::Exponential guard

TEST(SketchTest, ExponentialGuardsDegenerateMeans) {
  Rng rng(37);
  uint64_t before = Rng(37).NextU64();
  EXPECT_EQ(rng.Exponential(0.0), 0.0);
  EXPECT_EQ(rng.Exponential(-5.0), 0.0);
  EXPECT_EQ(rng.Exponential(std::nan("")), 0.0);
  // Degenerate means consume no randomness: the next draw matches a
  // fresh generator's first draw.
  EXPECT_EQ(rng.NextU64(), before);
  // Healthy means stay positive and finite.
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Exponential(2.5);
    EXPECT_GE(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
  }
}

// -------------------------------------------------- reservoir sampler

TEST(SketchTest, ReservoirKeepsBoundedUniformSample) {
  ReservoirSampler<int> reservoir(64, /*seed=*/99);
  for (int i = 0; i < 100000; ++i) reservoir.Offer(i);
  EXPECT_EQ(reservoir.items().size(), 64u);
  EXPECT_EQ(reservoir.seen(), 100000u);
  // Roughly uniform over the stream: the retained mean sits near the
  // stream midpoint (binomial bound, generous band).
  double mean = 0.0;
  for (int v : reservoir.items()) mean += v;
  mean /= 64.0;
  EXPECT_GT(mean, 25000.0);
  EXPECT_LT(mean, 75000.0);

  // Deterministic for a fixed seed and stream.
  ReservoirSampler<int> again(64, /*seed=*/99);
  for (int i = 0; i < 100000; ++i) again.Offer(i);
  EXPECT_EQ(reservoir.items(), again.items());

  // Zero capacity stays empty without crashing.
  ReservoirSampler<int> none(0, /*seed=*/1);
  for (int i = 0; i < 100; ++i) none.Offer(i);
  EXPECT_TRUE(none.items().empty());
}

}  // namespace
}  // namespace fabricsim
