#ifndef FABRICSIM_OBS_TRACER_H_
#define FABRICSIM_OBS_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/reservoir.h"
#include "src/common/stats.h"
#include "src/obs/trace.h"

namespace fabricsim {

/// Aggregate per-phase latency sinks over ledger transactions, held as
/// mergeable quantile sketches (milliseconds). Sketch state is a pure
/// function of the multiset of added values, so aggregates are
/// identical whether they were folded in streaming or rebuilt from
/// dense traces.
struct PhaseSketches {
  QuantileSketch endorse;   ///< client submit -> all endorsements collected
  QuantileSketch ordering;  ///< endorsed -> block cut
  QuantileSketch commit;    ///< block cut -> committed on the reference peer
  QuantileSketch total;     ///< end-to-end

  size_t ApproxMemoryBytes() const {
    return endorse.ApproxMemoryBytes() + ordering.ApproxMemoryBytes() +
           commit.ApproxMemoryBytes() + total.ApproxMemoryBytes();
  }
};

/// How the tracer stores what it observes.
struct TracerOptions {
  /// Dense mode (default) keeps every span of every transaction — the
  /// full-fidelity export the analysis tools consume, with memory
  /// linear in transaction count. Streaming mode keeps only the
  /// in-flight window: terminal events fold the trace into bounded
  /// aggregates (phase sketches, failure counters, conflict-key
  /// counts, per-channel roll-ups) plus a reservoir of failure
  /// exemplars, then drop it — memory stays flat no matter how long
  /// the run is.
  bool streaming = false;
  /// Failure exemplars retained in streaming mode (reservoir-sampled
  /// uniformly over all failed transactions).
  size_t exemplar_capacity = 32;
  /// Seed of the reservoir's private RNG. Never touches simulation
  /// streams, so toggling exemplars cannot perturb a run.
  uint64_t exemplar_seed = 0x0b5e;
};

/// Records per-transaction lifecycle traces from the DES actors. The
/// simulation layers hold a `Tracer*` that is nullptr when tracing is
/// disabled — every hook call sits behind a null check, so the
/// disabled path costs one predictable branch and the simulated
/// behaviour (event order, RNG draws, timestamps) is identical either
/// way: the tracer only observes, it never schedules events or draws
/// randomness (the exemplar reservoir has its own RNG).
class Tracer {
 public:
  Tracer() : Tracer(TracerOptions()) {}
  explicit Tracer(const TracerOptions& options);

  bool streaming() const { return streaming_; }

  // --- recording hooks (called by client/ordering/peer/fabric) -------
  // The per-event hooks on the DES hot path are defined inline: after
  // Touch() collapses to an array index they are a handful of stores,
  // and inlining keeps the enabled-tracing overhead within the <5%
  // budget enforced by bench_trace_overhead.
  void OnClientSubmit(TxId id, const std::string& function, ChannelId channel,
                      SimTime now) {
    TxTrace& trace = Touch(id);
    trace.function = function;
    trace.channel = channel;
    trace.client_submit = now;
  }
  void OnEndorseRequest(TxId id, PeerId peer, OrgId org, uint32_t attempt,
                        SimTime now) {
    TxTrace& trace = Touch(id);
    if (trace.endorsers.empty()) trace.endorsers.reserve(4);
    EndorserSpan span;
    span.peer_id = peer;
    span.org_id = org;
    span.attempt = attempt;
    span.request_sent = now;
    trace.endorsers.push_back(span);
  }
  void OnEndorseResponse(TxId id, PeerId peer, SimTime now) {
    TxTrace& trace = Touch(id);
    for (EndorserSpan& span : trace.endorsers) {
      if (span.peer_id == peer && span.response_received == 0) {
        span.response_received = now;
        return;
      }
    }
  }
  void OnEndorsed(TxId id, bool read_only, SimTime now) {
    TxTrace& trace = Touch(id);
    trace.read_only = read_only;
    trace.endorsed = now;
  }
  /// Client-side drop: app error, read-only skip, no endorsers, or
  /// endorsement-retry exhaustion. Terminal — in streaming mode the
  /// trace is folded and released here.
  void OnClientDrop(TxId id, TraceTerminal reason, SimTime now) {
    (void)now;
    Touch(id).terminal = reason;
    if (streaming_) FoldTerminal(id);
  }
  /// The client re-proposed after an endorsement timeout; `attempt` is
  /// the new (1-based) retry round.
  void OnClientRetry(TxId id, uint32_t attempt, SimTime now) {
    (void)now;
    Touch(id).retries = attempt;
  }
  /// An MVCC-failed transaction was resubmitted as `new_id`. The
  /// failed transaction is already terminal (RecordCommit folds before
  /// the resubmit delivery fires), so streaming mode must not Touch()
  /// it back into existence — the back-link is best-effort there.
  void OnResubmit(TxId failed_id, TxId new_id, SimTime now) {
    (void)now;
    if (streaming_) {
      auto it = live_.find(failed_id);
      if (it != live_.end()) it->second.resubmitted_as = new_id;
    } else {
      Touch(failed_id).resubmitted_as = new_id;
    }
    Touch(new_id).resubmit_of = failed_id;
  }
  /// A fault transition fired (peer crash/restart, orderer
  /// pause/resume). `kind` must point at a static string.
  void OnFaultEvent(const char* kind, int32_t subject, SimTime now) {
    fault_events_.push_back(FaultEventRow{kind, subject, now});
  }
  /// A replicated-ordering consensus transition (election started,
  /// leader elected). `kind` must point at a static string.
  void OnRaftEvent(const char* kind, int32_t replica, uint64_t term,
                   SimTime now) {
    raft_events_.push_back(RaftEventRow{kind, replica, term, now});
  }
  void OnOrdererEnqueue(TxId id, SimTime now) {
    Touch(id).orderer_enqueue = now;
  }
  /// Ordering-phase abort (Fabric++ / FabricSharp); never on chain.
  void OnEarlyAbort(TxId id, TxValidationCode code, SimTime now);
  /// Overload-protection drop (shed / deadline-expired / throttled /
  /// breaker-rejected). Terminal; files an attribution record carrying
  /// the admission failure class so the export answers "why did this
  /// transaction fail" for protection casualties too.
  void OnAdmissionDrop(TxId id, TraceTerminal terminal, TxValidationCode code,
                       SimTime now);
  void OnBlockCut(TxId id, uint64_t block_number, uint32_t tx_index,
                  SimTime now) {
    TxTrace& trace = Touch(id);
    trace.block_number = block_number;
    trace.tx_index = tx_index;
    trace.block_cut = now;
  }
  /// Validation verdict + commit on the reference peer. Completes the
  /// span chain and, for failed transactions, files the attribution
  /// record carried in `result`.
  void OnCommit(TxId id, uint64_t block_number, uint32_t tx_index,
                const TxValidationResult& result, SimTime now);
  /// Block commit completion on any peer (commit-skew observability).
  /// Block numbers are dense per channel, so the channel is part of
  /// the block identity. Not recorded in streaming mode: the
  /// (channel, block, peer) map grows with run length.
  void OnPeerCommit(PeerId peer, ChannelId channel, uint64_t block_number,
                    SimTime now);

  /// Declares how many channels the traced network hosts. Multi-
  /// channel exports are stamped schema version 2 and carry
  /// per-channel summary rows; 1 (the default) keeps the version-1
  /// export byte-identical.
  void set_num_channels(int num_channels) {
    num_channels_ = num_channels < 1 ? 1 : num_channels;
  }
  int num_channels() const { return num_channels_; }

  // --- queries -------------------------------------------------------
  /// Transactions observed (ever touched) — not bounded by what is
  /// still stored in streaming mode.
  size_t size() const { return size_; }
  /// Transactions currently held in memory: all of them in dense mode,
  /// only the in-flight window in streaming mode.
  size_t stored_traces() const {
    return streaming_ ? live_.size() : size_;
  }
  /// Dense mode: any observed trace. Streaming mode: in-flight traces
  /// only (terminal ones have been folded and released).
  const TxTrace* Find(TxId id) const;
  /// Dense mode: all traces ordered by transaction id. Streaming mode:
  /// the retained failure exemplars, id-ordered. Deterministic.
  std::vector<const TxTrace*> SortedTraces() const;
  /// Per-phase latency sketches over ledger transactions. Dense mode
  /// computes them lazily from the recorded traces (the hot-path hooks
  /// only record raw spans); streaming mode maintains them eagerly at
  /// terminal events. Both fold the same values in the same (id-dense
  /// commit) order, so the sketches agree bit-for-bit.
  const PhaseSketches& phases() const {
    if (aggregates_dirty_) RebuildAggregates();
    return phases_;
  }
  /// Failure-class counters over ledger + early-aborted transactions.
  /// Lazily derived in dense mode, eagerly maintained in streaming.
  const std::map<TxValidationCode, uint64_t>& failure_counts() const {
    if (aggregates_dirty_) RebuildAggregates();
    return failure_counts_;
  }
  /// Per-peer commit time of each block, in (channel, block, peer)
  /// order. Single-channel runs use channel 0, preserving the legacy
  /// (block, peer) iteration order. Always empty in streaming mode.
  const std::map<std::tuple<ChannelId, uint64_t, PeerId>, SimTime>&
  peer_commits() const {
    return peer_commits_;
  }
  /// Failure exemplars retained by the streaming reservoir (empty in
  /// dense mode — there, every trace is already stored).
  const std::vector<TxTrace>& exemplars() const { return exemplars_.items(); }
  uint64_t failures_offered_to_reservoir() const { return exemplars_.seen(); }
  /// Fault transitions observed, in simulated-time order.
  struct FaultEventRow {
    const char* kind;
    int32_t subject;
    SimTime at;
  };
  const std::vector<FaultEventRow>& fault_events() const {
    return fault_events_;
  }
  /// Consensus transitions observed, in simulated-time order.
  struct RaftEventRow {
    const char* kind;
    int32_t replica;
    uint64_t term;
    SimTime at;
  };
  const std::vector<RaftEventRow>& raft_events() const {
    return raft_events_;
  }
  /// The keys most often named in MVCC/phantom failure attributions,
  /// most-conflicting first (ties broken by key for determinism).
  std::vector<std::pair<std::string, uint64_t>> TopConflictingKeys(
      size_t limit) const;

  /// Bytes of trace storage currently held (slots, spans, aggregate
  /// sketches, reservoir, event logs). An estimate — container
  /// bookkeeping is approximated — but faithful to growth: dense mode
  /// grows linearly with transactions, streaming mode stays flat.
  size_t ApproxMemoryBytes() const;

  /// Renders the whole trace as JSONL: a versioned header line, one
  /// row per transaction (sorted by id), then one row per (block,
  /// peer) commit. `config_echo` is echoed in the header. Streaming
  /// exports replace the full per-transaction body with one
  /// streaming_summary row plus the exemplar rows.
  std::string ExportJsonl(const std::string& config_echo) const;

 private:
  /// Per-channel failure roll-up (multi-channel exports; maintained
  /// eagerly in streaming mode, derived from traces in dense mode).
  struct ChannelCounts {
    uint64_t ledger = 0, valid = 0, endorse = 0, mvcc = 0, phantom = 0,
             early_abort = 0;
  };

  TxTrace& Touch(TxId id) {
    if (streaming_) {
      TxTrace& trace = live_[id];
      if (trace.id == 0 && id != 0) {
        trace.id = id;
        ++size_;
      }
      return trace;
    }
    if (id >= traces_.size()) traces_.resize(id + 1);
    TxTrace& trace = traces_[id];
    if (trace.id == 0 && id != 0) {
      trace.id = id;
      ++size_;
    }
    return trace;
  }

  /// Streaming mode: folds a terminal trace into the aggregates (and
  /// the failure reservoir) and releases its live_ slot.
  void FoldTerminal(TxId id);
  void CountIntoChannel(const TxTrace& trace);

  /// Transaction ids are a dense counter starting at 1 (see
  /// Client::Submit), so dense-mode traces are stored in a vector
  /// indexed by id — every hook is an array index instead of a hash
  /// lookup, and iteration is already in id order. Slot 0 and any gap
  /// slots stay default-constructed (id == 0) and are skipped by the
  /// queries. Streaming mode keeps only in-flight traces, keyed by id
  /// in live_.
  /// Recomputes phases_ and failure_counts_ from traces_ (dense mode
  /// only). Scans in id order, so the result is deterministic.
  void RebuildAggregates() const;

  const bool streaming_;
  std::vector<TxTrace> traces_;           ///< dense mode storage
  std::unordered_map<TxId, TxTrace> live_;  ///< streaming in-flight window
  size_t size_ = 0;  ///< number of transactions ever observed
  std::map<std::tuple<ChannelId, uint64_t, PeerId>, SimTime> peer_commits_;
  std::vector<FaultEventRow> fault_events_;
  std::vector<RaftEventRow> raft_events_;
  int num_channels_ = 1;
  ReservoirSampler<TxTrace> exemplars_;
  /// Streaming-only eager aggregates (always empty in dense mode,
  /// which derives them from traces_ on demand instead).
  std::vector<ChannelCounts> channel_counts_;
  std::map<std::string, uint64_t> conflict_key_counts_;
  /// Dense mode: caches over traces_, rebuilt on demand — keeping
  /// sketch/map updates off the per-commit hot path. Streaming mode:
  /// maintained eagerly (aggregates_dirty_ stays false).
  mutable bool aggregates_dirty_ = false;
  mutable std::map<TxValidationCode, uint64_t> failure_counts_;
  mutable PhaseSketches phases_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_OBS_TRACER_H_
