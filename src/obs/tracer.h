#ifndef FABRICSIM_OBS_TRACER_H_
#define FABRICSIM_OBS_TRACER_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/trace.h"

namespace fabricsim {

/// Aggregate per-phase latency sinks over ledger transactions.
/// Histograms are in milliseconds.
struct PhaseHistograms {
  Histogram endorse;   ///< client submit -> all endorsements collected
  Histogram ordering;  ///< endorsed -> block cut
  Histogram commit;    ///< block cut -> committed on the reference peer
  Histogram total;     ///< end-to-end
};

/// Records per-transaction lifecycle traces from the DES actors. The
/// simulation layers hold a `Tracer*` that is nullptr when tracing is
/// disabled — every hook call sits behind a null check, so the
/// disabled path costs one predictable branch and the simulated
/// behaviour (event order, RNG draws, timestamps) is identical either
/// way: the tracer only observes, it never schedules events or draws
/// randomness.
class Tracer {
 public:
  Tracer() { traces_.reserve(4096); }

  // --- recording hooks (called by client/ordering/peer/fabric) -------
  // The per-event hooks on the DES hot path are defined inline: after
  // Touch() collapses to an array index they are a handful of stores,
  // and inlining keeps the enabled-tracing overhead within the <5%
  // budget enforced by bench_trace_overhead.
  void OnClientSubmit(TxId id, const std::string& function, ChannelId channel,
                      SimTime now) {
    TxTrace& trace = Touch(id);
    trace.function = function;
    trace.channel = channel;
    trace.client_submit = now;
  }
  void OnEndorseRequest(TxId id, PeerId peer, OrgId org, uint32_t attempt,
                        SimTime now) {
    TxTrace& trace = Touch(id);
    if (trace.endorsers.empty()) trace.endorsers.reserve(4);
    EndorserSpan span;
    span.peer_id = peer;
    span.org_id = org;
    span.attempt = attempt;
    span.request_sent = now;
    trace.endorsers.push_back(span);
  }
  void OnEndorseResponse(TxId id, PeerId peer, SimTime now) {
    TxTrace& trace = Touch(id);
    for (EndorserSpan& span : trace.endorsers) {
      if (span.peer_id == peer && span.response_received == 0) {
        span.response_received = now;
        return;
      }
    }
  }
  void OnEndorsed(TxId id, bool read_only, SimTime now) {
    TxTrace& trace = Touch(id);
    trace.read_only = read_only;
    trace.endorsed = now;
  }
  /// Client-side drop: app error, read-only skip, no endorsers, or
  /// endorsement-retry exhaustion.
  void OnClientDrop(TxId id, TraceTerminal reason, SimTime now) {
    (void)now;
    Touch(id).terminal = reason;
  }
  /// The client re-proposed after an endorsement timeout; `attempt` is
  /// the new (1-based) retry round.
  void OnClientRetry(TxId id, uint32_t attempt, SimTime now) {
    (void)now;
    Touch(id).retries = attempt;
  }
  /// An MVCC-failed transaction was resubmitted as `new_id`.
  void OnResubmit(TxId failed_id, TxId new_id, SimTime now) {
    (void)now;
    Touch(failed_id).resubmitted_as = new_id;
    Touch(new_id).resubmit_of = failed_id;
  }
  /// A fault transition fired (peer crash/restart, orderer
  /// pause/resume). `kind` must point at a static string.
  void OnFaultEvent(const char* kind, int32_t subject, SimTime now) {
    fault_events_.push_back(FaultEventRow{kind, subject, now});
  }
  /// A replicated-ordering consensus transition (election started,
  /// leader elected). `kind` must point at a static string.
  void OnRaftEvent(const char* kind, int32_t replica, uint64_t term,
                   SimTime now) {
    raft_events_.push_back(RaftEventRow{kind, replica, term, now});
  }
  void OnOrdererEnqueue(TxId id, SimTime now) {
    Touch(id).orderer_enqueue = now;
  }
  /// Ordering-phase abort (Fabric++ / FabricSharp); never on chain.
  void OnEarlyAbort(TxId id, TxValidationCode code, SimTime now);
  void OnBlockCut(TxId id, uint64_t block_number, uint32_t tx_index,
                  SimTime now) {
    TxTrace& trace = Touch(id);
    trace.block_number = block_number;
    trace.tx_index = tx_index;
    trace.block_cut = now;
  }
  /// Validation verdict + commit on the reference peer. Completes the
  /// span chain and, for failed transactions, files the attribution
  /// record carried in `result`.
  void OnCommit(TxId id, uint64_t block_number, uint32_t tx_index,
                const TxValidationResult& result, SimTime now);
  /// Block commit completion on any peer (commit-skew observability).
  /// Block numbers are dense per channel, so the channel is part of
  /// the block identity.
  void OnPeerCommit(PeerId peer, ChannelId channel, uint64_t block_number,
                    SimTime now);

  /// Declares how many channels the traced network hosts. Multi-
  /// channel exports are stamped schema version 2 and carry
  /// per-channel summary rows; 1 (the default) keeps the version-1
  /// export byte-identical.
  void set_num_channels(int num_channels) {
    num_channels_ = num_channels < 1 ? 1 : num_channels;
  }
  int num_channels() const { return num_channels_; }

  // --- queries -------------------------------------------------------
  size_t size() const { return size_; }
  const TxTrace* Find(TxId id) const;
  /// All traces ordered by transaction id (deterministic).
  std::vector<const TxTrace*> SortedTraces() const;
  /// Per-phase latency histograms over ledger transactions. Computed
  /// lazily from the recorded traces: the hot-path hooks only record
  /// raw spans, aggregation happens at query time.
  const PhaseHistograms& phases() const {
    if (aggregates_dirty_) RebuildAggregates();
    return phases_;
  }
  /// Failure-class counters over ledger + early-aborted transactions.
  /// Lazily derived from the traces, like phases().
  const std::map<TxValidationCode, uint64_t>& failure_counts() const {
    if (aggregates_dirty_) RebuildAggregates();
    return failure_counts_;
  }
  /// Per-peer commit time of each block, in (channel, block, peer)
  /// order. Single-channel runs use channel 0, preserving the legacy
  /// (block, peer) iteration order.
  const std::map<std::tuple<ChannelId, uint64_t, PeerId>, SimTime>&
  peer_commits() const {
    return peer_commits_;
  }
  /// Fault transitions observed, in simulated-time order.
  struct FaultEventRow {
    const char* kind;
    int32_t subject;
    SimTime at;
  };
  const std::vector<FaultEventRow>& fault_events() const {
    return fault_events_;
  }
  /// Consensus transitions observed, in simulated-time order.
  struct RaftEventRow {
    const char* kind;
    int32_t replica;
    uint64_t term;
    SimTime at;
  };
  const std::vector<RaftEventRow>& raft_events() const {
    return raft_events_;
  }
  /// The keys most often named in MVCC/phantom failure attributions,
  /// most-conflicting first (ties broken by key for determinism).
  std::vector<std::pair<std::string, uint64_t>> TopConflictingKeys(
      size_t limit) const;

  /// Renders the whole trace as JSONL: a versioned header line, one
  /// row per transaction (sorted by id), then one row per (block,
  /// peer) commit. `config_echo` is echoed in the header.
  std::string ExportJsonl(const std::string& config_echo) const;

 private:
  TxTrace& Touch(TxId id) {
    if (id >= traces_.size()) traces_.resize(id + 1);
    TxTrace& trace = traces_[id];
    if (trace.id == 0 && id != 0) {
      trace.id = id;
      ++size_;
    }
    return trace;
  }

  /// Transaction ids are a dense counter starting at 1 (see
  /// Client::Submit), so traces are stored in a vector indexed by id —
  /// every hook is an array index instead of a hash lookup, and
  /// iteration is already in id order. Slot 0 and any gap slots stay
  /// default-constructed (id == 0) and are skipped by the queries.
  /// Recomputes phases_ and failure_counts_ from traces_. Scans in id
  /// order, so the result is deterministic.
  void RebuildAggregates() const;

  std::vector<TxTrace> traces_;
  size_t size_ = 0;  ///< number of touched (non-default) slots
  std::map<std::tuple<ChannelId, uint64_t, PeerId>, SimTime> peer_commits_;
  std::vector<FaultEventRow> fault_events_;
  std::vector<RaftEventRow> raft_events_;
  int num_channels_ = 1;
  /// Aggregates are caches over traces_, rebuilt on demand — keeping
  /// histogram/map updates off the per-commit hot path.
  mutable bool aggregates_dirty_ = false;
  mutable std::map<TxValidationCode, uint64_t> failure_counts_;
  mutable PhaseHistograms phases_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_OBS_TRACER_H_
