#include "src/obs/trace.h"

#include "src/common/strings.h"
#include "src/obs/json_writer.h"

namespace fabricsim {

const char* TraceTerminalToString(TraceTerminal terminal) {
  switch (terminal) {
    case TraceTerminal::kInFlight:
      return "in_flight";
    case TraceTerminal::kLedger:
      return "ledger";
    case TraceTerminal::kAppError:
      return "app_error";
    case TraceTerminal::kReadOnlySkipped:
      return "read_only_skipped";
    case TraceTerminal::kEarlyAborted:
      return "early_aborted";
    case TraceTerminal::kNoEndorsers:
      return "no_endorsers";
    case TraceTerminal::kEndorseTimeout:
      return "endorse_timeout";
    case TraceTerminal::kOrdererUnavailable:
      return "orderer_unavailable";
    case TraceTerminal::kAdmissionShed:
      return "admission_shed";
    case TraceTerminal::kDeadlineExpired:
      return "deadline_expired";
    case TraceTerminal::kOrdererThrottled:
      return "orderer_throttled";
    case TraceTerminal::kBreakerRejected:
      return "breaker_rejected";
  }
  return "unknown";
}

namespace {

std::string VersionJson(const Version& v) {
  return StrFormat("{\"block\": %llu, \"tx\": %u}",
                   static_cast<unsigned long long>(v.block_num), v.tx_num);
}

}  // namespace

std::string TxTrace::ToJson() const {
  std::string out = StrFormat(
      "{\"type\": \"tx\", \"id\": %llu, \"function\": \"%s\", "
      "\"read_only\": %s, \"terminal\": \"%s\", \"code\": \"%s\"",
      static_cast<unsigned long long>(id), JsonEscape(function).c_str(),
      read_only ? "true" : "false", TraceTerminalToString(terminal),
      TxValidationCodeToString(final_code));
  if (channel != 0) {
    out += StrFormat(", \"channel\": %d", channel);
  }
  if (block_number != 0) {
    out += StrFormat(", \"block\": %llu, \"index\": %u",
                     static_cast<unsigned long long>(block_number), tx_index);
  }
  // Retry/resubmission fields only appear when used, so fault-free
  // exports stay byte-identical to the previous schema.
  if (retries != 0) {
    out += StrFormat(", \"retries\": %u", retries);
  }
  if (resubmit_of != 0) {
    out += StrFormat(", \"resubmit_of\": %llu",
                     static_cast<unsigned long long>(resubmit_of));
  }
  if (resubmitted_as != 0) {
    out += StrFormat(", \"resubmitted_as\": %llu",
                     static_cast<unsigned long long>(resubmitted_as));
  }
  out += StrFormat(", \"spans\": {\"submit\": %lld",
                   static_cast<long long>(client_submit));
  out += ", \"endorsers\": [";
  for (size_t i = 0; i < endorsers.size(); ++i) {
    const EndorserSpan& e = endorsers[i];
    out += StrFormat(
        "%s{\"peer\": %d, \"org\": %d, \"sent\": %lld, \"received\": %lld",
        i == 0 ? "" : ", ", e.peer_id, e.org_id,
        static_cast<long long>(e.request_sent),
        static_cast<long long>(e.response_received));
    if (e.attempt != 0) out += StrFormat(", \"attempt\": %u", e.attempt);
    out += "}";
  }
  out += "]";
  if (endorsed != 0) {
    out += StrFormat(", \"endorsed\": %lld", static_cast<long long>(endorsed));
  }
  if (orderer_enqueue != 0) {
    out += StrFormat(", \"orderer_enqueue\": %lld",
                     static_cast<long long>(orderer_enqueue));
  }
  if (block_cut != 0) {
    out += StrFormat(", \"block_cut\": %lld",
                     static_cast<long long>(block_cut));
  }
  if (committed != 0) {
    out += StrFormat(", \"committed\": %lld",
                     static_cast<long long>(committed));
  }
  out += "}";
  if (failure != nullptr) {
    const FailureAttribution& f = *failure;
    out += StrFormat(", \"failure\": {\"class\": \"%s\"",
                     TxValidationCodeToString(f.code));
    if (f.mvcc_class != MvccClass::kNone) {
      out += StrFormat(", \"mvcc_class\": \"%s\"",
                       f.mvcc_class == MvccClass::kIntraBlock ? "intra_block"
                                                              : "inter_block");
    }
    if (!f.conflicting_key.empty()) {
      out += StrFormat(", \"key\": \"%s\"",
                       JsonEscape(f.conflicting_key).c_str());
      out += ", \"read_version\": ";
      out += f.read_found ? VersionJson(f.read_version) : "null";
      out += ", \"observed_version\": ";
      out += f.observed_found ? VersionJson(f.observed_version) : "null";
    }
    if (f.conflicting_tx != 0) {
      out += StrFormat(", \"conflicting_tx\": %llu",
                       static_cast<unsigned long long>(f.conflicting_tx));
    }
    if (f.block_number != 0) {
      out += StrFormat(", \"block\": %llu",
                       static_cast<unsigned long long>(f.block_number));
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace fabricsim
