#ifndef FABRICSIM_OBS_TRACE_H_
#define FABRICSIM_OBS_TRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/ledger/block.h"

namespace fabricsim {

/// One endorsement round trip observed from the client: proposal sent
/// to one peer, response received back (flow steps 1-2).
struct EndorserSpan {
  PeerId peer_id = -1;
  OrgId org_id = -1;
  /// Proposal round that sent this request (0 = first; >0 are retries
  /// after an endorsement timeout).
  uint32_t attempt = 0;
  SimTime request_sent = 0;
  SimTime response_received = 0;  ///< 0 while in flight
};

/// How a traced transaction left the pipeline.
enum class TraceTerminal : uint8_t {
  /// Still somewhere in the pipeline (only possible mid-run).
  kInFlight = 0,
  /// Reached the ledger — committed or failed validation; final_code
  /// says which.
  kLedger,
  /// Dropped by the client: an endorser returned a chaincode error.
  kAppError,
  /// Read-only transaction not submitted for ordering
  /// (recommendation #4 flow).
  kReadOnlySkipped,
  /// Aborted during the ordering phase (Fabric++ cycle removal or
  /// FabricSharp serializability check); never reached the ledger.
  kEarlyAborted,
  /// Dropped at submission: no organization had an endorsing peer.
  kNoEndorsers,
  /// Abandoned by the client after exhausting its endorsement retry
  /// budget (only with a ClientRetryPolicy timeout configured).
  kEndorseTimeout,
  /// Abandoned by the client after exhausting its ordering-broadcast
  /// budget: no orderer replica acked the envelope (replicated ordering
  /// mode only).
  kOrdererUnavailable,
  /// Shed by an endorser's bounded admission queue (overload
  /// protection); the client fast-fails the transaction.
  kAdmissionShed,
  /// The client deadline expired before the transaction reached the
  /// ledger — noticed at an endorser queue or at orderer ingress.
  kDeadlineExpired,
  /// Rejected by the orderer's bounded broadcast ingress; the client
  /// received an explicit throttle signal.
  kOrdererThrottled,
  /// Suppressed at the source: the client's circuit breaker was open
  /// when the submission was due.
  kBreakerRejected,
};

const char* TraceTerminalToString(TraceTerminal terminal);

/// Why a transaction failed, resolved to the concrete conflict: the
/// failure class plus — for MVCC and phantom conflicts — the key whose
/// version check failed, the version the endorser read, and the
/// version validation observed (whose (block, tx) coordinates name the
/// offending writer). This is the per-transaction answer to the
/// paper's title question.
struct FailureAttribution {
  TxValidationCode code = TxValidationCode::kNotValidated;
  MvccClass mvcc_class = MvccClass::kNone;
  /// MVCC/phantom: the first key whose version check failed.
  std::string conflicting_key;
  /// Version the endorser recorded for the key (meaningful when
  /// read_found).
  bool read_found = false;
  Version read_version;
  /// Version found at validation time (meaningful when
  /// observed_found). Its (block_num, tx_num) identify the
  /// invalidating write.
  bool observed_found = false;
  Version observed_version;
  /// Intra-block conflicts: id of the invalidating transaction.
  TxId conflicting_tx = 0;
  /// Block in which the transaction was invalidated (0 for aborts that
  /// never reached the ledger).
  uint64_t block_number = 0;
};

/// The full lifecycle trace of one transaction: timestamped phase
/// spans along the execute-order-validate pipeline plus the failure
/// attribution for aborted transactions. All timestamps are absolute
/// simulated time; 0 means "never reached that phase".
struct TxTrace {
  TxId id = 0;
  /// Channel the transaction was submitted on. Serialized only when
  /// nonzero, so single-channel exports keep the version-1 row layout
  /// byte-for-byte.
  ChannelId channel = 0;
  std::string function;
  bool read_only = false;
  TraceTerminal terminal = TraceTerminal::kInFlight;
  TxValidationCode final_code = TxValidationCode::kNotValidated;
  uint64_t block_number = 0;
  uint32_t tx_index = 0;
  /// Endorsement re-proposal rounds this transaction needed (0 = none).
  uint32_t retries = 0;
  /// Resubmission chain links (0 = none): the failed transaction this
  /// one re-attempts, and the fresh transaction that re-attempted this
  /// one after it failed with an MVCC/phantom conflict.
  TxId resubmit_of = 0;
  TxId resubmitted_as = 0;

  // --- phase spans ---------------------------------------------------
  SimTime client_submit = 0;    ///< proposals sent to the endorsers
  std::vector<EndorserSpan> endorsers;
  SimTime endorsed = 0;         ///< all endorsement responses collected
  SimTime orderer_enqueue = 0;  ///< envelope arrived at the orderer
  SimTime block_cut = 0;        ///< placed into a block
  SimTime committed = 0;        ///< validated & committed (reference peer)

  /// Heap-allocated (set only for failed transactions) to keep the
  /// common-case TxTrace slot small — trace storage is the dominant
  /// cost of enabled tracing, so slot size directly bounds the
  /// bench_trace_overhead budget.
  std::unique_ptr<FailureAttribution> failure;

  /// Phase durations. They telescope: Endorse + Ordering + Commit ==
  /// TotalLatency for every ledger transaction.
  SimTime EndorsePhase() const { return endorsed - client_submit; }
  /// Collect + submit network hop + orderer queueing + block cutting.
  SimTime OrderingPhase() const { return block_cut - endorsed; }
  /// Consensus + delivery + validation + state-DB/ledger commit.
  SimTime CommitPhase() const { return committed - block_cut; }
  SimTime TotalLatency() const { return committed - client_submit; }

  /// Renders the trace as one JSONL row object.
  std::string ToJson() const;
};

}  // namespace fabricsim

#endif  // FABRICSIM_OBS_TRACE_H_
