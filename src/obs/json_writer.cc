#include "src/obs/json_writer.h"

#include <cstdio>
#include <utility>

namespace fabricsim {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

VersionedJsonWriter::VersionedJsonWriter(std::string kind, Format format)
    : kind_(std::move(kind)), format_(format) {}

void VersionedJsonWriter::AddRow(std::string row_json) {
  rows_.push_back(std::move(row_json));
}

std::string VersionedJsonWriter::Header() const {
  std::string header = "\"schema_version\": " +
                       std::to_string(kObsSchemaVersion) + ", \"kind\": \"" +
                       JsonEscape(kind_) + "\", \"config\": \"" +
                       JsonEscape(config_echo_) + "\"";
  return header;
}

std::string VersionedJsonWriter::Render() const {
  std::string out;
  if (format_ == Format::kJsonl) {
    out += "{" + Header() + "}\n";
    for (const std::string& row : rows_) {
      out += row;
      out += '\n';
    }
    return out;
  }
  out += "{\n  " + Header() + ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows_.size(); ++i) {
    out += "    " + rows_[i];
    if (i + 1 < rows_.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

bool VersionedJsonWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::string rendered = Render();
  std::fwrite(rendered.data(), 1, rendered.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace fabricsim
