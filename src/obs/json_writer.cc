#include "src/obs/json_writer.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace fabricsim {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

VersionedJsonWriter::VersionedJsonWriter(std::string kind, Format format)
    : kind_(std::move(kind)), format_(format) {}

void VersionedJsonWriter::set_schema_version(int version) {
  if (version < kObsSchemaVersion) version = kObsSchemaVersion;
  schema_version_ = version;
}

void VersionedJsonWriter::AddRow(std::string row_json) {
  rows_.push_back(std::move(row_json));
}

void VersionedJsonWriter::AddChannelRow(int channel, std::string row_json) {
  channel_rows_[channel].push_back(std::move(row_json));
  if (schema_version_ < kObsSchemaVersionChannels) {
    schema_version_ = kObsSchemaVersionChannels;
  }
}

size_t VersionedJsonWriter::channel_row_count() const {
  size_t count = 0;
  for (const auto& [channel, rows] : channel_rows_) count += rows.size();
  return count;
}

std::string VersionedJsonWriter::Header() const {
  std::string header = "\"schema_version\": " +
                       std::to_string(schema_version_) + ", \"kind\": \"" +
                       JsonEscape(kind_) + "\", \"config\": \"" +
                       JsonEscape(config_echo_) + "\"";
  if (hardware_concurrency_ > 0) {
    header += ", \"hardware_concurrency\": " +
              std::to_string(hardware_concurrency_);
  }
  return header;
}

std::string VersionedJsonWriter::Render() const {
  std::string out;
  if (format_ == Format::kJsonl) {
    out += "{" + Header() + "}\n";
    for (const std::string& row : rows_) {
      out += row;
      out += '\n';
    }
    for (const auto& [channel, rows] : channel_rows_) {
      for (const std::string& row : rows) {
        out += row;
        out += '\n';
      }
    }
    return out;
  }
  out += "{\n  " + Header() + ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows_.size(); ++i) {
    out += "    " + rows_[i];
    if (i + 1 < rows_.size()) out += ',';
    out += '\n';
  }
  out += "  ]";
  if (!channel_rows_.empty()) {
    out += ",\n  \"channels\": [\n";
    size_t rendered = 0;
    for (const auto& [channel, rows] : channel_rows_) {
      out += "    {\"channel\": " + std::to_string(channel) +
             ", \"rows\": [\n";
      for (size_t i = 0; i < rows.size(); ++i) {
        out += "      " + rows[i];
        if (i + 1 < rows.size()) out += ',';
        out += '\n';
      }
      out += "    ]}";
      if (++rendered < channel_rows_.size()) out += ',';
      out += '\n';
    }
    out += "  ]";
  }
  out += "\n}\n";
  return out;
}

int VersionedJsonWriter::ParseSchemaVersion(const std::string& artifact) {
  static const char kField[] = "\"schema_version\":";
  size_t pos = artifact.find(kField);
  if (pos == std::string::npos) return -1;
  pos += sizeof(kField) - 1;
  while (pos < artifact.size() &&
         std::isspace(static_cast<unsigned char>(artifact[pos]))) {
    ++pos;
  }
  if (pos >= artifact.size() ||
      !std::isdigit(static_cast<unsigned char>(artifact[pos]))) {
    return -1;
  }
  return std::atoi(artifact.c_str() + pos);
}

bool VersionedJsonWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::string rendered = Render();
  std::fwrite(rendered.data(), 1, rendered.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace fabricsim
