#include "src/obs/tracer.h"

#include <algorithm>
#include <memory>

#include "src/common/strings.h"
#include "src/obs/json_writer.h"

namespace fabricsim {

Tracer::Tracer(const TracerOptions& options)
    : streaming_(options.streaming),
      exemplars_(options.streaming ? options.exemplar_capacity : 0,
                 options.exemplar_seed) {
  if (!streaming_) traces_.reserve(4096);
}

void Tracer::OnEarlyAbort(TxId id, TxValidationCode code, SimTime now) {
  (void)now;
  TxTrace& trace = Touch(id);
  trace.terminal = TraceTerminal::kEarlyAborted;
  trace.final_code = code;
  auto failure = std::make_unique<FailureAttribution>();
  failure->code = code;
  trace.failure = std::move(failure);
  if (streaming_) {
    FoldTerminal(id);
    return;
  }
  aggregates_dirty_ = true;
}

void Tracer::OnAdmissionDrop(TxId id, TraceTerminal terminal,
                             TxValidationCode code, SimTime now) {
  (void)now;
  TxTrace& trace = Touch(id);
  trace.terminal = terminal;
  trace.final_code = code;
  auto failure = std::make_unique<FailureAttribution>();
  failure->code = code;
  trace.failure = std::move(failure);
  if (streaming_) {
    FoldTerminal(id);
    return;
  }
  aggregates_dirty_ = true;
}

void Tracer::OnCommit(TxId id, uint64_t block_number, uint32_t tx_index,
                      const TxValidationResult& result, SimTime now) {
  TxTrace& trace = Touch(id);
  trace.terminal = TraceTerminal::kLedger;
  trace.final_code = result.code;
  trace.block_number = block_number;
  trace.tx_index = tx_index;
  trace.committed = now;
  if (result.code != TxValidationCode::kValid) {
    auto failure = std::make_unique<FailureAttribution>();
    failure->code = result.code;
    failure->mvcc_class = result.mvcc_class;
    failure->conflicting_key = result.conflicting_key;
    failure->read_found = result.read_found;
    failure->read_version = result.read_version;
    failure->observed_found = result.observed_found;
    failure->observed_version = result.observed_version;
    failure->conflicting_tx = result.conflicting_tx;
    failure->block_number = block_number;
    trace.failure = std::move(failure);
  }
  if (streaming_) {
    FoldTerminal(id);
    return;
  }
  aggregates_dirty_ = true;
}

void Tracer::CountIntoChannel(const TxTrace& trace) {
  if (trace.channel < 0) return;
  size_t c = static_cast<size_t>(trace.channel);
  if (c >= channel_counts_.size()) channel_counts_.resize(c + 1);
  ChannelCounts& counts = channel_counts_[c];
  if (trace.terminal == TraceTerminal::kLedger) {
    ++counts.ledger;
    switch (trace.final_code) {
      case TxValidationCode::kValid:
        ++counts.valid;
        break;
      case TxValidationCode::kEndorsementPolicyFailure:
        ++counts.endorse;
        break;
      case TxValidationCode::kMvccReadConflict:
        ++counts.mvcc;
        break;
      case TxValidationCode::kPhantomReadConflict:
        ++counts.phantom;
        break;
      default:
        break;
    }
  } else if (trace.terminal == TraceTerminal::kEarlyAborted) {
    ++counts.early_abort;
  }
}

void Tracer::FoldTerminal(TxId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  TxTrace& trace = it->second;
  if (trace.terminal == TraceTerminal::kLedger) {
    ++failure_counts_[trace.final_code];
    phases_.endorse.Add(ToMillis(trace.EndorsePhase()));
    phases_.ordering.Add(ToMillis(trace.OrderingPhase()));
    phases_.commit.Add(ToMillis(trace.CommitPhase()));
    phases_.total.Add(ToMillis(trace.TotalLatency()));
  } else if (trace.terminal == TraceTerminal::kEarlyAborted) {
    ++failure_counts_[trace.final_code];
  }
  CountIntoChannel(trace);
  if (trace.failure != nullptr) {
    if (!trace.failure->conflicting_key.empty()) {
      ++conflict_key_counts_[trace.failure->conflicting_key];
    }
    exemplars_.Offer(std::move(trace));
  }
  live_.erase(it);
}

void Tracer::RebuildAggregates() const {
  phases_ = PhaseSketches();
  failure_counts_.clear();
  for (const TxTrace& trace : traces_) {
    if (trace.id == 0) continue;
    if (trace.terminal == TraceTerminal::kLedger) {
      ++failure_counts_[trace.final_code];
      phases_.endorse.Add(ToMillis(trace.EndorsePhase()));
      phases_.ordering.Add(ToMillis(trace.OrderingPhase()));
      phases_.commit.Add(ToMillis(trace.CommitPhase()));
      phases_.total.Add(ToMillis(trace.TotalLatency()));
    } else if (trace.terminal == TraceTerminal::kEarlyAborted) {
      ++failure_counts_[trace.final_code];
    }
  }
  aggregates_dirty_ = false;
}

void Tracer::OnPeerCommit(PeerId peer, ChannelId channel,
                          uint64_t block_number, SimTime now) {
  if (streaming_) return;
  peer_commits_[{channel, block_number, peer}] = now;
}

const TxTrace* Tracer::Find(TxId id) const {
  if (streaming_) {
    auto it = live_.find(id);
    return it == live_.end() ? nullptr : &it->second;
  }
  if (id == 0 || id >= traces_.size()) return nullptr;
  const TxTrace& trace = traces_[id];
  return trace.id == id ? &trace : nullptr;
}

std::vector<const TxTrace*> Tracer::SortedTraces() const {
  std::vector<const TxTrace*> sorted;
  if (streaming_) {
    sorted.reserve(exemplars_.items().size());
    for (const TxTrace& trace : exemplars_.items()) sorted.push_back(&trace);
    std::sort(sorted.begin(), sorted.end(),
              [](const TxTrace* a, const TxTrace* b) { return a->id < b->id; });
    return sorted;
  }
  // traces_ is indexed by id, so a linear scan is already id-ordered.
  sorted.reserve(size_);
  for (const TxTrace& trace : traces_) {
    if (trace.id != 0) sorted.push_back(&trace);
  }
  return sorted;
}

std::vector<std::pair<std::string, uint64_t>> Tracer::TopConflictingKeys(
    size_t limit) const {
  std::map<std::string, uint64_t> counts;
  if (streaming_) {
    counts = conflict_key_counts_;
  } else {
    for (const TxTrace& trace : traces_) {
      if (trace.id != 0 && trace.failure != nullptr &&
          !trace.failure->conflicting_key.empty()) {
        ++counts[trace.failure->conflicting_key];
      }
    }
  }
  std::vector<std::pair<std::string, uint64_t>> ranked(counts.begin(),
                                                       counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > limit) ranked.resize(limit);
  return ranked;
}

size_t Tracer::ApproxMemoryBytes() const {
  // Per-trace cost: the slot plus a typical 4-endorser span vector and
  // the occasional failure record (counted for every slot — this is an
  // upper-bound estimate, not an allocator audit).
  constexpr size_t kPerTrace =
      sizeof(TxTrace) + 4 * sizeof(EndorserSpan) + sizeof(FailureAttribution);
  size_t bytes = sizeof(*this);
  if (streaming_) {
    bytes += live_.size() * (kPerTrace + 4 * sizeof(void*));
    bytes += exemplars_.items().capacity() * kPerTrace;
    bytes += channel_counts_.capacity() * sizeof(ChannelCounts);
    for (const auto& [key, count] : conflict_key_counts_) {
      (void)count;
      bytes += key.capacity() + sizeof(uint64_t) + 4 * sizeof(void*);
    }
  } else {
    bytes += traces_.capacity() * sizeof(TxTrace);
    bytes += size_ * (4 * sizeof(EndorserSpan));
    bytes += peer_commits_.size() *
             (sizeof(std::tuple<ChannelId, uint64_t, PeerId>) +
              sizeof(SimTime) + 4 * sizeof(void*));
  }
  bytes += phases_.ApproxMemoryBytes();
  bytes += fault_events_.capacity() * sizeof(FaultEventRow);
  bytes += raft_events_.capacity() * sizeof(RaftEventRow);
  for (const auto& [code, count] : failure_counts_) {
    (void)code;
    (void)count;
    bytes += sizeof(TxValidationCode) + sizeof(uint64_t) + 4 * sizeof(void*);
  }
  return bytes;
}

std::string Tracer::ExportJsonl(const std::string& config_echo) const {
  VersionedJsonWriter writer("fabricsim.trace",
                             VersionedJsonWriter::Format::kJsonl);
  writer.set_config_echo(config_echo);
  if (num_channels_ > 1) {
    writer.set_schema_version(kObsSchemaVersionChannels);
  }
  if (streaming_) {
    // The full per-transaction body is gone (that is the point); the
    // export leads with the bounded roll-up, then the sampled failure
    // exemplars as ordinary transaction rows.
    const PhaseSketches& sketches = phases();
    writer.AddRow(StrFormat(
        "{\"type\": \"streaming_summary\", \"txs_observed\": %zu, "
        "\"in_flight\": %zu, \"failures_seen\": %llu, \"exemplars\": %zu, "
        "\"total_p50_ms\": %.3f, \"total_p99_ms\": %.3f}",
        size_, live_.size(),
        static_cast<unsigned long long>(exemplars_.seen()),
        exemplars_.items().size(), sketches.total.Percentile(0.5),
        sketches.total.Percentile(0.99)));
  }
  for (const TxTrace* trace : SortedTraces()) {
    writer.AddRow(trace->ToJson());
  }
  for (const auto& [key, time] : peer_commits_) {
    ChannelId channel = std::get<0>(key);
    std::string row = "{\"type\": \"peer_commit\", ";
    if (channel != 0) row += StrFormat("\"channel\": %d, ", channel);
    row += StrFormat(
        "\"block\": %llu, \"peer\": %d, \"committed\": %lld}",
        static_cast<unsigned long long>(std::get<1>(key)), std::get<2>(key),
        static_cast<long long>(time));
    writer.AddRow(std::move(row));
  }
  for (const FaultEventRow& event : fault_events_) {
    writer.AddRow(StrFormat(
        "{\"type\": \"fault\", \"kind\": \"%s\", \"subject\": %d, "
        "\"at\": %lld}",
        event.kind, event.subject, static_cast<long long>(event.at)));
  }
  for (const RaftEventRow& event : raft_events_) {
    writer.AddRow(StrFormat(
        "{\"type\": \"raft\", \"kind\": \"%s\", \"replica\": %d, "
        "\"term\": %llu, \"at\": %lld}",
        event.kind, event.replica,
        static_cast<unsigned long long>(event.term),
        static_cast<long long>(event.at)));
  }
  // Multi-channel exports close with one summary row per channel — the
  // failure-class roll-up sliced by shard (schema version 2 only, so
  // single-channel exports stay byte-identical to version 1).
  if (num_channels_ > 1) {
    std::vector<ChannelCounts> per_channel(
        static_cast<size_t>(num_channels_));
    if (streaming_) {
      for (size_t c = 0; c < channel_counts_.size() && c < per_channel.size();
           ++c) {
        per_channel[c] = channel_counts_[c];
      }
    } else {
      for (const TxTrace& trace : traces_) {
        if (trace.id == 0) continue;
        if (trace.channel < 0 ||
            static_cast<size_t>(trace.channel) >= per_channel.size()) {
          continue;
        }
        ChannelCounts& counts =
            per_channel[static_cast<size_t>(trace.channel)];
        if (trace.terminal == TraceTerminal::kLedger) {
          ++counts.ledger;
          switch (trace.final_code) {
            case TxValidationCode::kValid:
              ++counts.valid;
              break;
            case TxValidationCode::kEndorsementPolicyFailure:
              ++counts.endorse;
              break;
            case TxValidationCode::kMvccReadConflict:
              ++counts.mvcc;
              break;
            case TxValidationCode::kPhantomReadConflict:
              ++counts.phantom;
              break;
            default:
              break;
          }
        } else if (trace.terminal == TraceTerminal::kEarlyAborted) {
          ++counts.early_abort;
        }
      }
    }
    for (size_t c = 0; c < per_channel.size(); ++c) {
      const ChannelCounts& counts = per_channel[c];
      writer.AddRow(StrFormat(
          "{\"type\": \"channel_summary\", \"channel\": %zu, "
          "\"ledger_txs\": %llu, \"valid\": %llu, \"endorsement\": %llu, "
          "\"mvcc\": %llu, \"phantom\": %llu, \"early_aborted\": %llu}",
          c, static_cast<unsigned long long>(counts.ledger),
          static_cast<unsigned long long>(counts.valid),
          static_cast<unsigned long long>(counts.endorse),
          static_cast<unsigned long long>(counts.mvcc),
          static_cast<unsigned long long>(counts.phantom),
          static_cast<unsigned long long>(counts.early_abort)));
    }
  }
  return writer.Render();
}

}  // namespace fabricsim
