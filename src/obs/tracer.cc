#include "src/obs/tracer.h"

#include <algorithm>
#include <memory>

#include "src/common/strings.h"
#include "src/obs/json_writer.h"

namespace fabricsim {

void Tracer::OnEarlyAbort(TxId id, TxValidationCode code, SimTime now) {
  (void)now;
  TxTrace& trace = Touch(id);
  trace.terminal = TraceTerminal::kEarlyAborted;
  trace.final_code = code;
  auto failure = std::make_unique<FailureAttribution>();
  failure->code = code;
  trace.failure = std::move(failure);
  aggregates_dirty_ = true;
}

void Tracer::OnCommit(TxId id, uint64_t block_number, uint32_t tx_index,
                      const TxValidationResult& result, SimTime now) {
  TxTrace& trace = Touch(id);
  trace.terminal = TraceTerminal::kLedger;
  trace.final_code = result.code;
  trace.block_number = block_number;
  trace.tx_index = tx_index;
  trace.committed = now;
  if (result.code != TxValidationCode::kValid) {
    auto failure = std::make_unique<FailureAttribution>();
    failure->code = result.code;
    failure->mvcc_class = result.mvcc_class;
    failure->conflicting_key = result.conflicting_key;
    failure->read_found = result.read_found;
    failure->read_version = result.read_version;
    failure->observed_found = result.observed_found;
    failure->observed_version = result.observed_version;
    failure->conflicting_tx = result.conflicting_tx;
    failure->block_number = block_number;
    trace.failure = std::move(failure);
  }
  aggregates_dirty_ = true;
}

void Tracer::RebuildAggregates() const {
  phases_ = PhaseHistograms();
  failure_counts_.clear();
  for (const TxTrace& trace : traces_) {
    if (trace.id == 0) continue;
    if (trace.terminal == TraceTerminal::kLedger) {
      ++failure_counts_[trace.final_code];
      phases_.endorse.Add(ToMillis(trace.EndorsePhase()));
      phases_.ordering.Add(ToMillis(trace.OrderingPhase()));
      phases_.commit.Add(ToMillis(trace.CommitPhase()));
      phases_.total.Add(ToMillis(trace.TotalLatency()));
    } else if (trace.terminal == TraceTerminal::kEarlyAborted) {
      ++failure_counts_[trace.final_code];
    }
  }
  aggregates_dirty_ = false;
}

void Tracer::OnPeerCommit(PeerId peer, uint64_t block_number, SimTime now) {
  peer_commits_[{block_number, peer}] = now;
}

const TxTrace* Tracer::Find(TxId id) const {
  if (id == 0 || id >= traces_.size()) return nullptr;
  const TxTrace& trace = traces_[id];
  return trace.id == id ? &trace : nullptr;
}

std::vector<const TxTrace*> Tracer::SortedTraces() const {
  // traces_ is indexed by id, so a linear scan is already id-ordered.
  std::vector<const TxTrace*> sorted;
  sorted.reserve(size_);
  for (const TxTrace& trace : traces_) {
    if (trace.id != 0) sorted.push_back(&trace);
  }
  return sorted;
}

std::vector<std::pair<std::string, uint64_t>> Tracer::TopConflictingKeys(
    size_t limit) const {
  std::map<std::string, uint64_t> counts;
  for (const TxTrace& trace : traces_) {
    if (trace.id != 0 && trace.failure != nullptr &&
        !trace.failure->conflicting_key.empty()) {
      ++counts[trace.failure->conflicting_key];
    }
  }
  std::vector<std::pair<std::string, uint64_t>> ranked(counts.begin(),
                                                       counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > limit) ranked.resize(limit);
  return ranked;
}

std::string Tracer::ExportJsonl(const std::string& config_echo) const {
  VersionedJsonWriter writer("fabricsim.trace",
                             VersionedJsonWriter::Format::kJsonl);
  writer.set_config_echo(config_echo);
  for (const TxTrace* trace : SortedTraces()) {
    writer.AddRow(trace->ToJson());
  }
  for (const auto& [key, time] : peer_commits_) {
    writer.AddRow(StrFormat(
        "{\"type\": \"peer_commit\", \"block\": %llu, \"peer\": %d, "
        "\"committed\": %lld}",
        static_cast<unsigned long long>(key.first), key.second,
        static_cast<long long>(time)));
  }
  for (const FaultEventRow& event : fault_events_) {
    writer.AddRow(StrFormat(
        "{\"type\": \"fault\", \"kind\": \"%s\", \"subject\": %d, "
        "\"at\": %lld}",
        event.kind, event.subject, static_cast<long long>(event.at)));
  }
  for (const RaftEventRow& event : raft_events_) {
    writer.AddRow(StrFormat(
        "{\"type\": \"raft\", \"kind\": \"%s\", \"replica\": %d, "
        "\"term\": %llu, \"at\": %lld}",
        event.kind, event.replica,
        static_cast<unsigned long long>(event.term),
        static_cast<long long>(event.at)));
  }
  return writer.Render();
}

}  // namespace fabricsim
