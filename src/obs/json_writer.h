#ifndef FABRICSIM_OBS_JSON_WRITER_H_
#define FABRICSIM_OBS_JSON_WRITER_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace fabricsim {

/// Base schema version stamped into machine-readable artifacts the
/// simulator emits (bench JSON and trace JSONL). Bump on any change to
/// the row layout so downstream tooling can dispatch on it.
inline constexpr int kObsSchemaVersion = 1;

/// Schema version for artifacts carrying per-channel result arrays
/// (multi-channel runs). Version-1 consumers keyed on the top-level
/// fields keep working: the header layout and the "rows" array are
/// unchanged, version 2 only *adds* the optional "channels" section
/// (documents) / channel-tagged rows (JSONL).
inline constexpr int kObsSchemaVersionChannels = 2;

/// Escapes a string for inclusion inside a JSON string literal
/// (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Buffers JSON object rows and renders them behind a versioned
/// header. One writer serves both artifact shapes:
///  * kDocument: a single JSON object
///      {"schema_version": N, "kind": "...", "config": "...",
///       "rows": [ ... ]}
///    used for the BENCH_*.json files, and
///  * kJsonl: a header line followed by one row object per line,
///    used for transaction-trace exports.
/// Sharing the writer keeps every artifact self-describing: the same
/// schema_version + kind + config echo appears in each.
///
/// Version 2 documents additionally carry per-channel result arrays:
///   {"schema_version": 2, ..., "rows": [...],
///    "channels": [ {"channel": 0, "rows": [...]}, ... ]}
/// Adding any per-channel row bumps the stamped version to 2
/// automatically; plain writers keep emitting version 1 byte-for-byte.
class VersionedJsonWriter {
 public:
  enum class Format { kDocument, kJsonl };

  VersionedJsonWriter(std::string kind, Format format);

  /// Human-readable echo of the generating configuration (e.g.
  /// ExperimentConfig::Describe()), emitted in the header.
  void set_config_echo(std::string echo) { config_echo_ = std::move(echo); }

  /// Overrides the stamped schema version (>= kObsSchemaVersion).
  /// Normally implicit: version 1 unless per-channel rows are added.
  void set_schema_version(int version);

  /// Opt-in header annotation recording the host's logical core count
  /// (e.g. std::thread::hardware_concurrency()). When set (> 0) the
  /// header gains a "hardware_concurrency" field so scaling artifacts
  /// are self-describing — a 1-core CI runner's numbers carry their
  /// own explanation. Unset writers render byte-identically to before
  /// the field existed, keeping trace goldens stable.
  void set_hardware_concurrency(unsigned cores) {
    hardware_concurrency_ = cores;
  }

  unsigned hardware_concurrency() const { return hardware_concurrency_; }

  int schema_version() const { return schema_version_; }

  /// Appends one complete JSON object (no trailing newline).
  void AddRow(std::string row_json);

  /// Appends one complete JSON object to `channel`'s result array.
  /// Implies schema version >= 2. In kDocument format channel rows
  /// render grouped under "channels"; in kJsonl they follow the
  /// regular rows, one per line, in (channel, insertion) order.
  void AddChannelRow(int channel, std::string row_json);

  size_t row_count() const { return rows_.size(); }

  size_t channel_row_count() const;

  /// Renders the full artifact into a string.
  std::string Render() const;

  /// Renders and writes to `path`. Returns false (and prints to
  /// stderr) when the file cannot be written.
  bool WriteFile(const std::string& path) const;

  /// Extracts the "schema_version" stamp from a rendered artifact
  /// (document or JSONL); -1 when the artifact carries none. Lets
  /// tooling dispatch between version-1 and version-2 shapes without a
  /// full JSON parser.
  static int ParseSchemaVersion(const std::string& artifact);

 private:
  std::string Header() const;

  std::string kind_;
  Format format_;
  std::string config_echo_;
  int schema_version_ = kObsSchemaVersion;
  /// 0 = omit the header field (the pre-annotation byte layout).
  unsigned hardware_concurrency_ = 0;
  std::vector<std::string> rows_;
  /// channel -> rows, ordered by channel for deterministic rendering.
  std::map<int, std::vector<std::string>> channel_rows_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_OBS_JSON_WRITER_H_
