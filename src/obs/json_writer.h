#ifndef FABRICSIM_OBS_JSON_WRITER_H_
#define FABRICSIM_OBS_JSON_WRITER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace fabricsim {

/// Schema version stamped into every machine-readable artifact the
/// simulator emits (bench JSON and trace JSONL). Bump on any change to
/// the row layout so downstream tooling can dispatch on it.
inline constexpr int kObsSchemaVersion = 1;

/// Escapes a string for inclusion inside a JSON string literal
/// (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Buffers JSON object rows and renders them behind a versioned
/// header. One writer serves both artifact shapes:
///  * kDocument: a single JSON object
///      {"schema_version": N, "kind": "...", "config": "...",
///       "rows": [ ... ]}
///    used for the BENCH_*.json files, and
///  * kJsonl: a header line followed by one row object per line,
///    used for transaction-trace exports.
/// Sharing the writer keeps every artifact self-describing: the same
/// schema_version + kind + config echo appears in each.
class VersionedJsonWriter {
 public:
  enum class Format { kDocument, kJsonl };

  VersionedJsonWriter(std::string kind, Format format);

  /// Human-readable echo of the generating configuration (e.g.
  /// ExperimentConfig::Describe()), emitted in the header.
  void set_config_echo(std::string echo) { config_echo_ = std::move(echo); }

  /// Appends one complete JSON object (no trailing newline).
  void AddRow(std::string row_json);

  size_t row_count() const { return rows_.size(); }

  /// Renders the full artifact into a string.
  std::string Render() const;

  /// Renders and writes to `path`. Returns false (and prints to
  /// stderr) when the file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  std::string Header() const;

  std::string kind_;
  Format format_;
  std::string config_echo_;
  std::vector<std::string> rows_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_OBS_JSON_WRITER_H_
