#include "src/faults/fault_injector.h"

#include <utility>

#include "src/obs/tracer.h"

namespace fabricsim {

const char* FaultEventKindName(FaultEventRecord::Kind kind) {
  switch (kind) {
    case FaultEventRecord::Kind::kPeerCrash:
      return "peer_crash";
    case FaultEventRecord::Kind::kPeerRestart:
      return "peer_restart";
    case FaultEventRecord::Kind::kOrdererPause:
      return "orderer_pause";
    case FaultEventRecord::Kind::kOrdererResume:
      return "orderer_resume";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan, Actors actors)
    : plan_(std::move(plan)), actors_(std::move(actors)) {}

void FaultInjector::Fire(FaultEventRecord::Kind kind, int32_t subject) {
  SimTime now = actors_.env->now();
  events_.push_back(FaultEventRecord{kind, subject, now});
  if (Tracer* tracer = actors_.env->tracer()) {
    tracer->OnFaultEvent(FaultEventKindName(kind), subject, now);
  }
}

Status FaultInjector::Install() {
  if (installed_) {
    return Status::FailedPrecondition("fault plan already installed");
  }
  installed_ = true;

  for (const DelayWindow& window : plan_.delay_windows) {
    if ((window.org >= 0) == (window.node >= 0)) {
      return Status::InvalidArgument(
          "delay window must target exactly one of org or node");
    }
    if (window.from >= window.to) {
      return Status::InvalidArgument("delay window is empty (from >= to)");
    }
    InjectedDelay delay{window.extra, window.jitter, window.from, window.to};
    if (window.node >= 0) {
      actors_.net->InjectDelay(window.node, delay);
      continue;
    }
    if (static_cast<size_t>(window.org) >= actors_.peers_by_org.size() ||
        actors_.peers_by_org[static_cast<size_t>(window.org)].empty()) {
      return Status::OutOfRange("delay window targets an unknown org");
    }
    for (Peer* peer : actors_.peers_by_org[static_cast<size_t>(window.org)]) {
      actors_.net->InjectDelay(peer->node(), delay);
    }
  }

  for (const LinkFaultRule& rule : plan_.link_faults) {
    if (rule.from >= rule.to) {
      return Status::InvalidArgument("link fault window is empty (from >= to)");
    }
    if (rule.drop_prob < 0.0 || rule.drop_prob > 1.0) {
      return Status::InvalidArgument("link fault drop_prob outside [0, 1]");
    }
    if (rule.drop_prob > 0.0 && rule.drop_prob < 1.0 &&
        !actors_.net->has_fault_rng()) {
      return Status::FailedPrecondition(
          "probabilistic link fault requires a fault RNG in the network");
    }
    actors_.net->AddLinkFault(rule);
  }

  for (const PeerCrashFault& crash : plan_.peer_crashes) {
    if (crash.peer < 0 ||
        static_cast<size_t>(crash.peer) >= actors_.peers.size()) {
      return Status::OutOfRange("crash fault targets an unknown peer");
    }
    if (crash.restart_at != kSimTimeNever && crash.restart_at <= crash.at) {
      return Status::InvalidArgument("peer restart precedes its crash");
    }
    Peer* peer = actors_.peers[static_cast<size_t>(crash.peer)];
    actors_.env->ScheduleAt(crash.at, [this, peer]() {
      peer->Crash();
      Fire(FaultEventRecord::Kind::kPeerCrash, peer->id());
    });
    if (crash.restart_at != kSimTimeNever) {
      actors_.env->ScheduleAt(crash.restart_at, [this, peer]() {
        peer->Restart();
        Fire(FaultEventRecord::Kind::kPeerRestart, peer->id());
      });
    }
  }

  for (const OrdererPauseFault& pause : plan_.orderer_pauses) {
    if (actors_.orderer == nullptr) {
      return Status::FailedPrecondition(
          "orderer pause scheduled without an orderer");
    }
    if (pause.resume_at != kSimTimeNever && pause.resume_at <= pause.at) {
      return Status::InvalidArgument("orderer resume precedes its pause");
    }
    actors_.env->ScheduleAt(pause.at, [this]() {
      actors_.orderer->Pause();
      Fire(FaultEventRecord::Kind::kOrdererPause, -1);
    });
    if (pause.resume_at != kSimTimeNever) {
      actors_.env->ScheduleAt(pause.resume_at, [this]() {
        actors_.orderer->Resume();
        Fire(FaultEventRecord::Kind::kOrdererResume, -1);
      });
    }
  }

  return Status::OK();
}

}  // namespace fabricsim
