#include "src/faults/fault_injector.h"

#include <memory>
#include <utility>

#include "src/common/strings.h"
#include "src/obs/tracer.h"

namespace fabricsim {

const char* FaultEventKindName(FaultEventRecord::Kind kind) {
  switch (kind) {
    case FaultEventRecord::Kind::kPeerCrash:
      return "peer_crash";
    case FaultEventRecord::Kind::kPeerRestart:
      return "peer_restart";
    case FaultEventRecord::Kind::kOrdererPause:
      return "orderer_pause";
    case FaultEventRecord::Kind::kOrdererResume:
      return "orderer_resume";
    case FaultEventRecord::Kind::kOrdererCrash:
      return "orderer_crash";
    case FaultEventRecord::Kind::kOrdererRestart:
      return "orderer_restart";
  }
  return "unknown";
}

namespace {

/// Names one plan rule in a validation error: kind, index within its
/// list, and the rule's time window — so a rejected 30-rule chaos plan
/// points at the exact offender.
std::string RuleRef(const char* kind, size_t index, SimTime from, SimTime to) {
  std::string window =
      StrFormat("[%.3fs, ", static_cast<double>(from) / 1e6);
  window += to == kSimTimeNever
                ? "never)"
                : StrFormat("%.3fs)", static_cast<double>(to) / 1e6);
  return StrFormat("%s[%zu] window %s", kind, index, window.c_str());
}

/// [a_from, a_to) intersects [b_from, b_to)? kSimTimeNever is +inf.
bool WindowsOverlap(SimTime a_from, SimTime a_to, SimTime b_from,
                    SimTime b_to) {
  return a_from < b_to && b_from < a_to;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, Actors actors)
    : plan_(std::move(plan)), actors_(std::move(actors)) {}

void FaultInjector::Fire(FaultEventRecord::Kind kind, int32_t subject) {
  SimTime now = actors_.env->now();
  events_.push_back(FaultEventRecord{kind, subject, now});
  if (Tracer* tracer = actors_.env->tracer()) {
    tracer->OnFaultEvent(FaultEventKindName(kind), subject, now);
  }
}

int FaultInjector::ResolveOrdererReplica(int requested) const {
  if (requested >= 0) return requested;
  // Leader-targeted: whichever replica leads right now; during an
  // election, fall back to the last known leader.
  int leader = actors_.raft->leader_index();
  if (leader < 0) leader = actors_.raft->last_known_leader();
  return leader < 0 ? 0 : leader;
}

Status FaultInjector::Install() {
  if (installed_) {
    return Status::FailedPrecondition("fault plan already installed");
  }
  installed_ = true;

  // Normalize the two ways of handing over the ordering service: the
  // legacy singleton fields and the per-channel vectors each imply the
  // other, so rule validation can use the singletons and rule firing
  // can loop over the vectors.
  if (actors_.orderers.empty() && actors_.orderer != nullptr) {
    actors_.orderers.push_back(actors_.orderer);
  }
  if (actors_.rafts.empty() && actors_.raft != nullptr) {
    actors_.rafts.push_back(actors_.raft);
  }
  if (actors_.orderer == nullptr && !actors_.orderers.empty()) {
    actors_.orderer = actors_.orderers.front();
  }
  if (actors_.raft == nullptr && !actors_.rafts.empty()) {
    actors_.raft = actors_.rafts.front();
  }

  for (size_t i = 0; i < plan_.delay_windows.size(); ++i) {
    const DelayWindow& window = plan_.delay_windows[i];
    std::string ref = RuleRef("delay_window", i, window.from, window.to);
    if ((window.org >= 0) == (window.node >= 0)) {
      return Status::InvalidArgument(
          ref + ": must target exactly one of org or node");
    }
    if (window.from >= window.to) {
      return Status::InvalidArgument(ref + ": empty window (from >= to)");
    }
    InjectedDelay delay{window.extra, window.jitter, window.from, window.to};
    if (window.node >= 0) {
      actors_.net->InjectDelay(window.node, delay);
      continue;
    }
    if (static_cast<size_t>(window.org) >= actors_.peers_by_org.size() ||
        actors_.peers_by_org[static_cast<size_t>(window.org)].empty()) {
      return Status::OutOfRange(ref + ": targets an unknown org");
    }
    for (Peer* peer : actors_.peers_by_org[static_cast<size_t>(window.org)]) {
      actors_.net->InjectDelay(peer->node(), delay);
    }
  }

  for (size_t i = 0; i < plan_.link_faults.size(); ++i) {
    const LinkFaultRule& rule = plan_.link_faults[i];
    std::string ref = RuleRef("link_fault", i, rule.from, rule.to);
    if (rule.from >= rule.to) {
      return Status::InvalidArgument(ref + ": empty window (from >= to)");
    }
    if (rule.drop_prob < 0.0 || rule.drop_prob > 1.0) {
      return Status::InvalidArgument(ref + ": drop_prob outside [0, 1]");
    }
    if (rule.drop_prob > 0.0 && rule.drop_prob < 1.0 &&
        !actors_.net->has_fault_rng()) {
      return Status::FailedPrecondition(
          ref + ": probabilistic link fault requires a fault RNG in the "
                "network");
    }
    actors_.net->AddLinkFault(rule);
  }

  for (size_t i = 0; i < plan_.peer_crashes.size(); ++i) {
    const PeerCrashFault& crash = plan_.peer_crashes[i];
    std::string ref = RuleRef("peer_crash", i, crash.at, crash.restart_at);
    if (crash.peer < 0 ||
        static_cast<size_t>(crash.peer) >= actors_.peers.size()) {
      return Status::OutOfRange(ref + ": targets an unknown peer");
    }
    if (crash.restart_at != kSimTimeNever && crash.restart_at <= crash.at) {
      return Status::InvalidArgument(ref + ": restart precedes the crash");
    }
    Peer* peer = actors_.peers[static_cast<size_t>(crash.peer)];
    actors_.env->ScheduleAt(crash.at, [this, peer]() {
      peer->Crash();
      Fire(FaultEventRecord::Kind::kPeerCrash, peer->id());
    });
    if (crash.restart_at != kSimTimeNever) {
      actors_.env->ScheduleAt(crash.restart_at, [this, peer]() {
        peer->Restart();
        Fire(FaultEventRecord::Kind::kPeerRestart, peer->id());
      });
    }
  }

  for (size_t i = 0; i < plan_.orderer_pauses.size(); ++i) {
    const OrdererPauseFault& pause = plan_.orderer_pauses[i];
    std::string ref = RuleRef("orderer_pause", i, pause.at, pause.resume_at);
    if (pause.resume_at != kSimTimeNever && pause.resume_at <= pause.at) {
      return Status::InvalidArgument(ref + ": resume precedes the pause");
    }
    if (actors_.raft != nullptr) {
      if (pause.replica < -1 || pause.replica >= actors_.raft->size()) {
        return Status::OutOfRange(ref + ": targets an unknown replica");
      }
      int requested = pause.replica;
      // A leader-targeted pause resolves its replica at fire time; the
      // resume must hit the same replica even if leadership moved in
      // between, so the resolved index is carried over.
      auto target = std::make_shared<int>(-1);
      actors_.env->ScheduleAt(pause.at, [this, requested, target]() {
        int replica = ResolveOrdererReplica(requested);
        *target = replica;
        // The replica is one orderer *process* hosting every channel's
        // log: pausing it pauses that replica in every group.
        for (RaftGroup* raft : actors_.rafts) {
          raft->replica(replica)->Pause();
        }
        Fire(FaultEventRecord::Kind::kOrdererPause, replica);
      });
      if (pause.resume_at != kSimTimeNever) {
        actors_.env->ScheduleAt(pause.resume_at, [this, target]() {
          if (*target < 0) return;
          for (RaftGroup* raft : actors_.rafts) {
            raft->replica(*target)->Resume();
          }
          Fire(FaultEventRecord::Kind::kOrdererResume, *target);
        });
      }
      continue;
    }
    if (pause.replica != -1) {
      return Status::FailedPrecondition(
          ref + ": replica-targeted pause requires replicated ordering");
    }
    if (actors_.orderer == nullptr) {
      return Status::FailedPrecondition(ref + ": scheduled without an orderer");
    }
    actors_.env->ScheduleAt(pause.at, [this]() {
      for (Orderer* orderer : actors_.orderers) orderer->Pause();
      Fire(FaultEventRecord::Kind::kOrdererPause, -1);
    });
    if (pause.resume_at != kSimTimeNever) {
      actors_.env->ScheduleAt(pause.resume_at, [this]() {
        for (Orderer* orderer : actors_.orderers) orderer->Resume();
        Fire(FaultEventRecord::Kind::kOrdererResume, -1);
      });
    }
  }

  for (size_t i = 0; i < plan_.orderer_crashes.size(); ++i) {
    const OrdererCrashFault& crash = plan_.orderer_crashes[i];
    std::string ref = RuleRef("orderer_crash", i, crash.at, crash.restart_at);
    if (actors_.raft == nullptr) {
      return Status::FailedPrecondition(
          ref + ": orderer crash requires replicated ordering");
    }
    if (crash.replica < -1 || crash.replica >= actors_.raft->size()) {
      return Status::OutOfRange(ref + ": targets an unknown replica");
    }
    if (crash.restart_at != kSimTimeNever && crash.restart_at <= crash.at) {
      return Status::InvalidArgument(ref + ": restart precedes the crash");
    }
    // Crashing a paused process is ill-defined in the plan language: a
    // pause promises buffered-and-flushed envelopes, a crash destroys
    // the buffer. Reject the ambiguity instead of picking silently. A
    // leader-targeted rule (replica -1) is resolved only at fire time,
    // so it conservatively conflicts with every pause window.
    for (size_t j = 0; j < plan_.orderer_pauses.size(); ++j) {
      const OrdererPauseFault& pause = plan_.orderer_pauses[j];
      bool same_replica = crash.replica < 0 || pause.replica < 0 ||
                          crash.replica == pause.replica;
      if (same_replica && WindowsOverlap(crash.at, crash.restart_at,
                                         pause.at, pause.resume_at)) {
        return Status::InvalidArgument(
            ref + ": overlaps " +
            RuleRef("orderer_pause", j, pause.at, pause.resume_at) +
            " on the same replica");
      }
    }
    int requested = crash.replica;
    // The leader is resolved when the crash fires; the restart must hit
    // the same replica, so the resolved index is carried over.
    auto target = std::make_shared<int>(-1);
    actors_.env->ScheduleAt(crash.at, [this, requested, target]() {
      int replica = ResolveOrdererReplica(requested);
      *target = replica;
      // One crashed orderer process takes that replica down in every
      // channel's group.
      for (RaftGroup* raft : actors_.rafts) {
        raft->replica(replica)->Crash();
      }
      Fire(FaultEventRecord::Kind::kOrdererCrash, replica);
    });
    if (crash.restart_at != kSimTimeNever) {
      actors_.env->ScheduleAt(crash.restart_at, [this, target]() {
        if (*target < 0) return;
        for (RaftGroup* raft : actors_.rafts) {
          raft->replica(*target)->Restart();
        }
        Fire(FaultEventRecord::Kind::kOrdererRestart, *target);
      });
    }
  }

  return Status::OK();
}

}  // namespace fabricsim
