#ifndef FABRICSIM_FAULTS_FAULT_INJECTOR_H_
#define FABRICSIM_FAULTS_FAULT_INJECTOR_H_

#include <vector>

#include "src/common/status.h"
#include "src/faults/fault_plan.h"
#include "src/ordering/orderer.h"
#include "src/ordering/raft_group.h"
#include "src/peer/peer.h"
#include "src/sim/environment.h"
#include "src/sim/network.h"

namespace fabricsim {

/// One fault transition that actually fired during the run, in
/// simulated-time order. `subject` is the peer id for peer events and
/// -1 for orderer events.
struct FaultEventRecord {
  enum class Kind {
    kPeerCrash,
    kPeerRestart,
    kOrdererPause,
    kOrdererResume,
    kOrdererCrash,
    kOrdererRestart,
  };
  Kind kind;
  int32_t subject = -1;
  SimTime at = 0;
};

const char* FaultEventKindName(FaultEventRecord::Kind kind);

/// Translates a FaultPlan into concrete actions against the simulated
/// testbed: delay windows and loss rules are installed in the Network
/// up front, while crash/restart and pause/resume transitions are
/// scheduled as DES events that flip the actors at their fault times.
/// The injector only observes and schedules — it owns no actors — and
/// records every transition it fires for reporting and tests.
class FaultInjector {
 public:
  struct Actors {
    Environment* env = nullptr;
    Network* net = nullptr;
    /// All peers, indexed by PeerId.
    std::vector<Peer*> peers;
    /// Peers grouped by organization (for org-targeted delay windows).
    std::vector<std::vector<Peer*>> peers_by_org;
    Orderer* orderer = nullptr;
    /// Replicated ordering service; nullptr in compat mode. Orderer
    /// crash faults and replica-targeted pauses require it.
    RaftGroup* raft = nullptr;
    /// Multi-channel networks: every channel's ordering service
    /// (index = channel; exactly one of the two vectors is populated,
    /// matching the mode). An ordering fault hits the shared orderer
    /// *process*, so it fires against every channel's service at once.
    /// When empty, the singleton fields above are used.
    std::vector<Orderer*> orderers;
    std::vector<RaftGroup*> rafts;
  };

  FaultInjector(FaultPlan plan, Actors actors);

  /// Validates the plan against the actors and installs it. Must be
  /// called once, before the simulation starts (all fault times are
  /// absolute). Probabilistic loss rules additionally require a fault
  /// RNG in the network (the harness forks one when needed).
  Status Install();

  const FaultPlan& plan() const { return plan_; }

  /// Transitions fired so far, in simulated-time order.
  const std::vector<FaultEventRecord>& events() const { return events_; }

 private:
  void Fire(FaultEventRecord::Kind kind, int32_t subject);
  /// Resolves a plan rule's replica target at fire time: >= 0 is taken
  /// literally, -1 means the current leader (falling back to the last
  /// known leader during an election).
  int ResolveOrdererReplica(int requested) const;

  FaultPlan plan_;
  Actors actors_;
  std::vector<FaultEventRecord> events_;
  bool installed_ = false;
};

}  // namespace fabricsim

#endif  // FABRICSIM_FAULTS_FAULT_INJECTOR_H_
