#ifndef FABRICSIM_FAULTS_FAULT_PLAN_H_
#define FABRICSIM_FAULTS_FAULT_PLAN_H_

#include <vector>

#include "src/common/sim_time.h"
#include "src/ledger/transaction.h"
#include "src/sim/network.h"

namespace fabricsim {

/// Pumba-style delay window: every message into or out of the targeted
/// peers pays extra ± jitter while now is in [from, to). Target either
/// all peers of an organization (org >= 0) or one simulation node
/// (node >= 0); exactly one must be set. A window spanning the whole
/// run over one org is the generalization of the paper's Fig. 16
/// setup (100 ± 10 ms on one organization).
struct DelayWindow {
  OrgId org = -1;
  NodeId node = -1;
  SimTime extra = 0;
  SimTime jitter = 0;
  SimTime from = 0;
  SimTime to = kSimTimeNever;
};

/// Crash-stop of one peer: at `at` the peer stops endorsing and
/// committing (proposals and block deliveries are dropped on the
/// floor, exactly as silent as real Fabric); at `restart_at` it comes
/// back and catches up by replaying the blocks it missed from the
/// canonical chain. kSimTimeNever = never restarts.
struct PeerCrashFault {
  PeerId peer = -1;
  SimTime at = 0;
  SimTime restart_at = kSimTimeNever;
};

/// The ordering service stops cutting blocks during [at, resume_at):
/// envelopes arriving while paused are buffered at ingress and flushed
/// in arrival order on resume (a Kafka/Raft leader hiccup, not a
/// message loss).
struct OrdererPauseFault {
  SimTime at = 0;
  SimTime resume_at = kSimTimeNever;
  /// Replicated ordering: which replica to pause (-1 = the leader at
  /// fire time). Compat single-orderer mode requires -1.
  int replica = -1;
};

/// Crash-stop of one orderer replica (replicated ordering mode only):
/// at `at` the replica's process dies — volatile state (cutter
/// contents, pending client acks) is lost, the replicated log / term /
/// vote survive as Raft stable storage — and at `restart_at` it comes
/// back as a follower and catches up through the leader's log probing.
/// Unlike OrdererPauseFault, a crashed leader stops heartbeating, so
/// the group runs an election. kLeader targets whichever replica leads
/// at fire time.
struct OrdererCrashFault {
  static constexpr int kLeader = -1;
  int replica = kLeader;
  SimTime at = 0;
  SimTime restart_at = kSimTimeNever;
};

/// A deterministic, time-windowed fault schedule for one run. All
/// event times are absolute simulated time. An empty plan is the
/// healthy testbed: installing it is a strict no-op — no extra RNG
/// draws, no extra scheduled events — so results are bitwise identical
/// to a build without the fault subsystem.
struct FaultPlan {
  std::vector<DelayWindow> delay_windows;
  std::vector<PeerCrashFault> peer_crashes;
  std::vector<OrdererPauseFault> orderer_pauses;
  std::vector<OrdererCrashFault> orderer_crashes;
  std::vector<LinkFaultRule> link_faults;

  bool empty() const {
    return delay_windows.empty() && peer_crashes.empty() &&
           orderer_pauses.empty() && orderer_crashes.empty() &&
           link_faults.empty();
  }

  /// True when some link fault needs randomness (drop probability
  /// strictly between 0 and 1); such plans get a dedicated fault RNG
  /// stream forked at network construction.
  bool NeedsFaultRng() const;

  // Fluent helpers so a chaos scenario reads as one expression.
  FaultPlan& Delay(DelayWindow window);
  FaultPlan& Crash(PeerId peer, SimTime at, SimTime restart_at = kSimTimeNever);
  FaultPlan& PauseOrderer(SimTime at, SimTime resume_at = kSimTimeNever,
                          int replica = -1);
  /// Crash-stop one orderer replica (replicated ordering mode).
  FaultPlan& CrashOrderer(int replica, SimTime at,
                          SimTime restart_at = kSimTimeNever);
  /// Crash-stop whichever replica is leading at fire time.
  FaultPlan& CrashLeader(SimTime at, SimTime restart_at = kSimTimeNever);
  FaultPlan& DropLink(LinkFaultRule rule);
  /// Hard partition: every link between a node of `side_a` and a node
  /// of `side_b` drops all messages during [from, to).
  FaultPlan& Partition(const std::vector<NodeId>& side_a,
                       const std::vector<NodeId>& side_b, SimTime from,
                       SimTime to);
};

}  // namespace fabricsim

#endif  // FABRICSIM_FAULTS_FAULT_PLAN_H_
