#include "src/faults/fault_plan.h"

namespace fabricsim {

bool FaultPlan::NeedsFaultRng() const {
  for (const LinkFaultRule& rule : link_faults) {
    if (rule.drop_prob > 0.0 && rule.drop_prob < 1.0) return true;
  }
  return false;
}

FaultPlan& FaultPlan::Delay(DelayWindow window) {
  delay_windows.push_back(window);
  return *this;
}

FaultPlan& FaultPlan::Crash(PeerId peer, SimTime at, SimTime restart_at) {
  peer_crashes.push_back(PeerCrashFault{peer, at, restart_at});
  return *this;
}

FaultPlan& FaultPlan::PauseOrderer(SimTime at, SimTime resume_at,
                                   int replica) {
  orderer_pauses.push_back(OrdererPauseFault{at, resume_at, replica});
  return *this;
}

FaultPlan& FaultPlan::CrashOrderer(int replica, SimTime at,
                                   SimTime restart_at) {
  orderer_crashes.push_back(OrdererCrashFault{replica, at, restart_at});
  return *this;
}

FaultPlan& FaultPlan::CrashLeader(SimTime at, SimTime restart_at) {
  orderer_crashes.push_back(
      OrdererCrashFault{OrdererCrashFault::kLeader, at, restart_at});
  return *this;
}

FaultPlan& FaultPlan::DropLink(LinkFaultRule rule) {
  link_faults.push_back(rule);
  return *this;
}

FaultPlan& FaultPlan::Partition(const std::vector<NodeId>& side_a,
                                const std::vector<NodeId>& side_b,
                                SimTime from, SimTime to) {
  for (NodeId a : side_a) {
    for (NodeId b : side_b) {
      link_faults.push_back(LinkFaultRule{a, b, /*bidirectional=*/true,
                                          /*drop_prob=*/1.0, from, to});
    }
  }
  return *this;
}

}  // namespace fabricsim
