#ifndef FABRICSIM_STATEDB_HASH_STATE_DB_H_
#define FABRICSIM_STATEDB_HASH_STATE_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/statedb/state_database.h"

namespace fabricsim {

/// Open-addressing hash implementation of StateDatabase, in the style
/// of Halo's cache-friendly hash index: a flat power-of-two slot array
/// probed linearly, 64-bit FNV-1a key hashes compared before any
/// string comparison, tombstone deletes, and growth by doubling. Point
/// ops (Get / GetVersion / ApplyWrite) are O(1) and touch one cache
/// line of slot metadata in the common case.
///
/// Ordered reads (GetRange, Scan, ForEachVersionInRange, ForEachEntry)
/// are served from a lazily maintained sorted index with two regimes:
///
///  * **Bulk (index invalid).** No ordered read since the last write
///    burst: writes do zero index maintenance, and the next ordered
///    read rebuilds the index in one O(n log n) sort. Bulk loads and
///    point-only phases never pay for ordering.
///  * **Incremental (index valid).** Inserts go into a small sorted
///    insert buffer merged on the fly during reads; deletes bump a
///    per-entry generation so stale index pairs are skipped without
///    touching the index. Once buffer + dead pairs exceed live/64 the
///    index drops back to bulk mode, so maintenance cost stays O(n/64)
///    per write worst case and zero when nobody scans.
///
/// In-place updates (commit-time version bumps of existing keys — the
/// hottest write path) never touch the index in either regime.
/// Workloads that interleave inserts with scans (YCSB E) pay one
/// amortized rebuild per n/64 writes; pure scans after a burst pay one
/// sort.
class HashStateDb : public StateDatabase {
 public:
  HashStateDb();

  std::optional<VersionedValue> Get(const std::string& key) const override;
  std::optional<Version> GetVersion(const std::string& key) const override;
  std::vector<StateEntry> GetRange(const std::string& start_key,
                                   const std::string& end_key) const override;
  void ForEachVersionInRange(
      const std::string& start_key, const std::string& end_key,
      const std::function<void(const std::string& key, Version version)>& fn)
      const override;
  Status ApplyWrite(const WriteItem& write, Version version) override;
  size_t Size() const override { return live_; }
  std::vector<StateEntry> Scan() const override;
  void ForEachEntry(
      const std::function<void(const std::string& key,
                               const VersionedValue& vv)>& fn) const override;

 private:
  struct Entry {
    std::string key;
    VersionedValue vv;
    /// Bumped on every delete of this entry; index pairs carry the
    /// generation they were created under, so a pair whose generation
    /// no longer matches is stale and skipped during iteration.
    uint32_t gen = 0;
  };
  /// One probe slot. `ref` indexes entries_, or holds one of the two
  /// sentinels below. The cached hash makes probe-chain comparisons
  /// cheap: the full key is only compared on a 64-bit hash match.
  struct Slot {
    uint64_t hash = 0;
    uint32_t ref = kEmpty;
  };
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr uint32_t kTombstone = 0xFFFFFFFEu;

  static uint64_t HashKey(const std::string& key);

  /// Returns the slot index holding `key`, or SIZE_MAX when absent.
  size_t FindSlot(const std::string& key, uint64_t hash) const;

  /// Grows (or rehashes in place to purge tombstones) so one more
  /// insert keeps the occupied fraction, tombstones included, at or
  /// below kMaxLoadNum/kMaxLoadDen.
  void EnsureCapacityForInsert();
  void Rehash(size_t new_capacity);

  /// An index pair packs (entry generation << 32 | entry ref); the
  /// pair is live iff its generation still matches the entry's.
  static uint64_t Pack(uint32_t gen, uint32_t ref) {
    return (static_cast<uint64_t>(gen) << 32) | ref;
  }
  static uint32_t RefOf(uint64_t pair) { return static_cast<uint32_t>(pair); }
  static uint32_t GenOf(uint64_t pair) {
    return static_cast<uint32_t>(pair >> 32);
  }
  bool PairLive(uint64_t pair) const {
    return entries_[RefOf(pair)].gen == GenOf(pair);
  }
  const std::string& KeyOf(uint64_t pair) const {
    return entries_[RefOf(pair)].key;
  }

  /// Rebuilds the sorted index from the slot array if it is invalid.
  void EnsureIndex() const;

  /// Drops back to bulk mode once the insert buffer plus dead pairs
  /// outgrow live_/64, reclaiming dead entries' memory.
  void MaybeInvalidateIndex();

  /// Iterates live entries in [start_key, end_key) ascending by key,
  /// merging the main index with the insert buffer on the fly.
  template <typename Fn>
  void ForRange(const std::string& start_key, const std::string& end_key,
                Fn&& fn) const;

  static constexpr size_t kMinCapacity = 64;
  static constexpr size_t kMaxLoadNum = 5;  // max load factor 5/8,
  static constexpr size_t kMaxLoadDen = 8;  // tombstones included

  std::vector<Slot> slots_;
  size_t mask_ = 0;       // capacity - 1 (capacity is a power of two)
  size_t occupied_ = 0;   // live + tombstone slots
  size_t live_ = 0;       // live keys

  std::vector<Entry> entries_;      // slot refs point here
  std::vector<uint32_t> free_;      // reusable holes in entries_

  /// Main sorted index: (gen, ref) pairs ascending by key, possibly
  /// containing stale pairs (skipped via the generation check). Only
  /// meaningful while index_valid_; mutable because ordered reads
  /// rebuild it lazily.
  mutable std::vector<uint64_t> sorted_;
  /// Inserts since the last rebuild, kept sorted by key.
  mutable std::vector<uint64_t> pending_;
  mutable bool index_valid_ = false;
  /// Entries deleted while the index was valid: their key strings are
  /// retained (stale pairs still compare by them) and their memory is
  /// reclaimed at the next invalidation. Empty whenever the index is
  /// invalid.
  std::vector<uint32_t> dead_refs_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_STATEDB_HASH_STATE_DB_H_
