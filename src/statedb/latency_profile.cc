#include "src/statedb/latency_profile.h"

#include <algorithm>

namespace fabricsim {

const char* DatabaseTypeToString(DatabaseType type) {
  switch (type) {
    case DatabaseType::kLevelDb:
      return "LevelDB";
    case DatabaseType::kCouchDb:
      return "CouchDB";
  }
  return "unknown";
}

DbLatencyProfile DbLatencyProfile::LevelDb() {
  DbLatencyProfile p;
  p.type = DatabaseType::kLevelDb;
  p.get = FromMillis(0.6);
  p.put = FromMillis(0.5);
  p.del = FromMillis(0.6);
  p.range_base = FromMillis(1.0);
  p.range_per_key = FromMillis(0.05);
  p.range_bulk_per_key = FromMillis(0.01);
  p.rich_base = 0;  // unsupported
  p.rich_per_doc = 0;
  p.validate_per_read = FromMillis(0.05);
  p.validate_range_base = FromMillis(0.5);
  p.validate_range_per_key = FromMillis(0.005);
  p.commit_per_write = FromMillis(0.2);
  p.commit_base = FromMillis(12.0);
  p.supports_rich_queries = false;
  return p;
}

DbLatencyProfile DbLatencyProfile::CouchDb() {
  DbLatencyProfile p;
  p.type = DatabaseType::kCouchDb;
  p.get = FromMillis(8.3);
  p.put = FromMillis(0.8);
  p.del = FromMillis(1.2);
  p.range_base = FromMillis(80.0);
  p.range_per_key = FromMillis(1.0);
  p.range_bulk_per_key = FromMillis(0.05);
  p.rich_base = FromMillis(60.0);
  p.rich_per_doc = FromMillis(0.08);
  p.validate_per_read = FromMillis(0.4);
  p.validate_range_base = FromMillis(5.0);
  p.validate_range_per_key = FromMillis(0.02);
  p.commit_per_write = FromMillis(1.0);
  p.commit_base = FromMillis(70.0);
  p.supports_rich_queries = true;
  return p;
}

SimTime DbLatencyProfile::EndorseCost(const ReadWriteSet& rwset) const {
  SimTime cost = 0;
  cost += static_cast<SimTime>(rwset.reads.size()) * get;
  for (const WriteItem& w : rwset.writes) cost += w.is_delete ? del : put;
  for (const RangeQueryInfo& rq : rwset.range_queries) {
    if (rq.phantom_check) {
      auto n = static_cast<SimTime>(rq.reads.size());
      SimTime detail = std::min<SimTime>(n, range_detail_keys);
      cost += range_base + detail * range_per_key +
              (n - detail) * range_bulk_per_key;
    } else {
      cost += rich_base + static_cast<SimTime>(rq.reads.size()) * rich_per_doc;
    }
  }
  return cost;
}

SimTime DbLatencyProfile::ValidateCost(const ReadWriteSet& rwset) const {
  SimTime cost = static_cast<SimTime>(rwset.reads.size()) * validate_per_read;
  for (const RangeQueryInfo& rq : rwset.range_queries) {
    if (!rq.phantom_check) continue;  // rich queries are not re-executed
    cost += validate_range_base +
            static_cast<SimTime>(rq.reads.size()) * validate_range_per_key;
  }
  return cost;
}

SimTime DbLatencyProfile::CommitCost(size_t write_count) const {
  return commit_base + static_cast<SimTime>(write_count) * commit_per_write;
}

}  // namespace fabricsim
