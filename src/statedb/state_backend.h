#ifndef FABRICSIM_STATEDB_STATE_BACKEND_H_
#define FABRICSIM_STATEDB_STATE_BACKEND_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/statedb/state_database.h"

namespace fabricsim {

/// Which data structure implements the StateDatabase interface for a
/// peer's per-channel world-state replicas. Orthogonal to DatabaseType
/// (the *cost model* — LevelDB vs CouchDB latency profiles): the
/// backend decides how fast the simulator itself executes state ops,
/// the profile decides how much simulated time they are charged. Any
/// backend composes with any profile, and all backends produce
/// bit-identical simulation results (see the semantics contract in
/// state_database.h).
enum class StateBackendType {
  /// std::map reference implementation — the default, kept for
  /// bitwise-identical reproduction of all paper figures.
  kOrderedMap,
  /// Cache-friendly open-addressing hash table (linear probing,
  /// FNV-1a, tombstone deletes, power-of-two growth) with a lazily
  /// rebuilt sorted index for range scans. O(1) point ops; the fastest
  /// choice for point-heavy workloads and million-key state.
  kHashIndex,
  /// B+-tree with fat sorted-array leaves: cache-friendly ordered
  /// index, O(log n) point ops with far fewer pointer hops than the
  /// ordered map, and range scans that walk the leaf chain.
  kBTree,
};

const char* StateBackendTypeToString(StateBackendType backend);

/// Parses "ordered_map" / "hash" / "btree" (the ToString spellings are
/// also accepted). nullopt on anything else.
std::optional<StateBackendType> StateBackendTypeFromString(
    const std::string& name);

/// All selectable backends, ordered-map reference first — the backend
/// sweep order used by benches and differential tests.
const std::vector<StateBackendType>& AllStateBackends();

/// Factory: creates an empty state database of the given backend.
std::unique_ptr<StateDatabase> MakeStateDb(StateBackendType backend);

/// Creates an open-addressing hash state database.
std::unique_ptr<StateDatabase> MakeHashStateDb();

/// Creates a B+-tree (fat-leaf ordered index) state database.
std::unique_ptr<StateDatabase> MakeBTreeStateDb();

}  // namespace fabricsim

#endif  // FABRICSIM_STATEDB_STATE_BACKEND_H_
