#include "src/statedb/state_backend.h"

#include "src/statedb/btree_state_db.h"
#include "src/statedb/hash_state_db.h"
#include "src/statedb/memory_state_db.h"

namespace fabricsim {

const char* StateBackendTypeToString(StateBackendType backend) {
  switch (backend) {
    case StateBackendType::kOrderedMap:
      return "ordered_map";
    case StateBackendType::kHashIndex:
      return "hash";
    case StateBackendType::kBTree:
      return "btree";
  }
  return "unknown";
}

std::optional<StateBackendType> StateBackendTypeFromString(
    const std::string& name) {
  if (name == "ordered_map" || name == "map") {
    return StateBackendType::kOrderedMap;
  }
  if (name == "hash" || name == "hash_index") {
    return StateBackendType::kHashIndex;
  }
  if (name == "btree" || name == "b+tree") return StateBackendType::kBTree;
  return std::nullopt;
}

const std::vector<StateBackendType>& AllStateBackends() {
  static const std::vector<StateBackendType> kAll = {
      StateBackendType::kOrderedMap, StateBackendType::kHashIndex,
      StateBackendType::kBTree};
  return kAll;
}

std::unique_ptr<StateDatabase> MakeStateDb(StateBackendType backend) {
  switch (backend) {
    case StateBackendType::kOrderedMap:
      return MakeMemoryStateDb();
    case StateBackendType::kHashIndex:
      return MakeHashStateDb();
    case StateBackendType::kBTree:
      return MakeBTreeStateDb();
  }
  return MakeMemoryStateDb();
}

}  // namespace fabricsim
