#ifndef FABRICSIM_STATEDB_MEMORY_STATE_DB_H_
#define FABRICSIM_STATEDB_MEMORY_STATE_DB_H_

#include <map>
#include <string>

#include "src/statedb/state_database.h"

namespace fabricsim {

/// Ordered in-memory implementation of StateDatabase. Each peer owns
/// one instance; replicas diverge transiently while blocks are in
/// flight, which is exactly the world-state inconsistency that causes
/// endorsement policy failures.
class MemoryStateDb : public StateDatabase {
 public:
  std::optional<VersionedValue> Get(const std::string& key) const override;
  std::optional<Version> GetVersion(const std::string& key) const override;
  std::vector<StateEntry> GetRange(const std::string& start_key,
                                   const std::string& end_key) const override;
  void ForEachVersionInRange(
      const std::string& start_key, const std::string& end_key,
      const std::function<void(const std::string& key, Version version)>& fn)
      const override;
  Status ApplyWrite(const WriteItem& write, Version version) override;
  size_t Size() const override { return map_.size(); }
  std::vector<StateEntry> Scan() const override;

 private:
  std::map<std::string, VersionedValue> map_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_STATEDB_MEMORY_STATE_DB_H_
