#ifndef FABRICSIM_STATEDB_MEMORY_STATE_DB_H_
#define FABRICSIM_STATEDB_MEMORY_STATE_DB_H_

#include <map>
#include <string>

#include "src/statedb/state_database.h"

namespace fabricsim {

/// Ordered std::map implementation of StateDatabase — the reference
/// backend (StateBackendType::kOrderedMap) and the default: all paper
/// figures are pinned to it bit for bit. Each peer owns one instance
/// per channel; replicas diverge transiently while blocks are in
/// flight, which is exactly the world-state inconsistency that causes
/// endorsement policy failures.
class MemoryStateDb : public StateDatabase {
 public:
  std::optional<VersionedValue> Get(const std::string& key) const override;
  std::optional<Version> GetVersion(const std::string& key) const override;
  std::vector<StateEntry> GetRange(const std::string& start_key,
                                   const std::string& end_key) const override;
  void ForEachVersionInRange(
      const std::string& start_key, const std::string& end_key,
      const std::function<void(const std::string& key, Version version)>& fn)
      const override;
  Status ApplyWrite(const WriteItem& write, Version version) override;
  size_t Size() const override { return map_.size(); }
  std::vector<StateEntry> Scan() const override;
  void ForEachEntry(
      const std::function<void(const std::string& key,
                               const VersionedValue& vv)>& fn) const override;

 private:
  std::map<std::string, VersionedValue> map_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_STATEDB_MEMORY_STATE_DB_H_
