#include "src/statedb/rich_query.h"

#include "src/common/strings.h"

namespace fabricsim {

std::string JsonObject(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : fields) {
    if (!first) out += ",";
    first = false;
    out += "\"" + k + "\":\"" + v + "\"";
  }
  out += "}";
  return out;
}

std::optional<std::string> ExtractJsonField(const std::string& doc,
                                            const std::string& field) {
  std::string needle = "\"" + field + "\":\"";
  size_t pos = doc.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  size_t start = pos + needle.size();
  size_t end = doc.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return doc.substr(start, end - start);
}

Result<RichQuerySelector> RichQuerySelector::Parse(
    const std::string& selector) {
  RichQuerySelector out;
  for (const std::string& raw : StrSplit(selector, '&')) {
    std::string term = StrTrim(raw);
    if (term.empty()) continue;
    size_t pos = term.find("==");
    if (pos == std::string::npos || pos == 0) {
      return Status::InvalidArgument("bad selector term: " + term);
    }
    out.terms_.emplace_back(StrTrim(term.substr(0, pos)),
                            StrTrim(term.substr(pos + 2)));
  }
  if (out.terms_.empty()) {
    return Status::InvalidArgument("empty selector");
  }
  return out;
}

bool RichQuerySelector::Matches(const std::string& doc) const {
  for (const auto& [field, value] : terms_) {
    std::optional<std::string> got = ExtractJsonField(doc, field);
    if (!got.has_value() || *got != value) return false;
  }
  return true;
}

std::string RichQuerySelector::ToString() const {
  std::string out;
  for (const auto& [field, value] : terms_) {
    if (!out.empty()) out += "&";
    out += field + "==" + value;
  }
  return out;
}

std::vector<StateEntry> ExecuteRichQuery(const StateDatabase& db,
                                         const RichQuerySelector& selector) {
  // Streamed via the visitor: only the matching documents are copied,
  // instead of materializing the whole world state per query.
  std::vector<StateEntry> out;
  db.ForEachEntry([&](const std::string& key, const VersionedValue& vv) {
    if (selector.Matches(vv.value)) out.push_back(StateEntry{key, vv});
  });
  return out;
}

}  // namespace fabricsim
