#include "src/statedb/memory_state_db.h"

namespace fabricsim {

std::optional<VersionedValue> MemoryStateDb::Get(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::optional<Version> MemoryStateDb::GetVersion(
    const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second.version;
}

std::vector<StateEntry> MemoryStateDb::GetRange(
    const std::string& start_key, const std::string& end_key) const {
  std::vector<StateEntry> out;
  auto it = map_.lower_bound(start_key);
  auto end = end_key.empty() ? map_.end() : map_.lower_bound(end_key);
  for (; it != end; ++it) {
    out.push_back(StateEntry{it->first, it->second});
  }
  return out;
}

void MemoryStateDb::ForEachVersionInRange(
    const std::string& start_key, const std::string& end_key,
    const std::function<void(const std::string& key, Version version)>& fn)
    const {
  auto it = map_.lower_bound(start_key);
  auto end = end_key.empty() ? map_.end() : map_.lower_bound(end_key);
  for (; it != end; ++it) fn(it->first, it->second.version);
}

Status MemoryStateDb::ApplyWrite(const WriteItem& write, Version version) {
  if (write.is_delete) {
    map_.erase(write.key);
    return Status::OK();
  }
  map_[write.key] = VersionedValue{write.value, version};
  return Status::OK();
}

std::vector<StateEntry> MemoryStateDb::Scan() const {
  std::vector<StateEntry> out;
  out.reserve(map_.size());
  for (const auto& [key, vv] : map_) out.push_back(StateEntry{key, vv});
  return out;
}

void MemoryStateDb::ForEachEntry(
    const std::function<void(const std::string& key, const VersionedValue& vv)>&
        fn) const {
  for (const auto& [key, vv] : map_) fn(key, vv);
}

std::unique_ptr<StateDatabase> MakeMemoryStateDb() {
  return std::make_unique<MemoryStateDb>();
}

}  // namespace fabricsim
