#include "src/statedb/hash_state_db.h"

#include <algorithm>
#include <utility>

namespace fabricsim {

HashStateDb::HashStateDb() : slots_(kMinCapacity), mask_(kMinCapacity - 1) {}

uint64_t HashStateDb::HashKey(const std::string& key) {
  // FNV-1a, 64-bit.
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

size_t HashStateDb::FindSlot(const std::string& key, uint64_t hash) const {
  size_t i = static_cast<size_t>(hash) & mask_;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.ref == kEmpty) return SIZE_MAX;
    if (slot.ref != kTombstone && slot.hash == hash &&
        entries_[slot.ref].key == key) {
      return i;
    }
    i = (i + 1) & mask_;
  }
}

void HashStateDb::EnsureCapacityForInsert() {
  size_t capacity = slots_.size();
  if ((occupied_ + 1) * kMaxLoadDen <= capacity * kMaxLoadNum) return;
  // Double while the live keys would fill more than a third of the
  // table (short probe chains are what buys the point-op speedup);
  // otherwise rehash at the same size, which purges the tombstones
  // that triggered the overflow.
  size_t new_capacity = capacity;
  while ((live_ + 1) * 3 > new_capacity) new_capacity *= 2;
  Rehash(new_capacity);
}

void HashStateDb::Rehash(size_t new_capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_capacity, Slot{});
  mask_ = new_capacity - 1;
  for (const Slot& slot : old) {
    if (slot.ref == kEmpty || slot.ref == kTombstone) continue;
    size_t i = static_cast<size_t>(slot.hash) & mask_;
    while (slots_[i].ref != kEmpty) i = (i + 1) & mask_;
    slots_[i] = slot;
  }
  occupied_ = live_;
}

std::optional<VersionedValue> HashStateDb::Get(const std::string& key) const {
  size_t slot = FindSlot(key, HashKey(key));
  if (slot == SIZE_MAX) return std::nullopt;
  return entries_[slots_[slot].ref].vv;
}

std::optional<Version> HashStateDb::GetVersion(const std::string& key) const {
  size_t slot = FindSlot(key, HashKey(key));
  if (slot == SIZE_MAX) return std::nullopt;
  return entries_[slots_[slot].ref].vv.version;
}

Status HashStateDb::ApplyWrite(const WriteItem& write, Version version) {
  uint64_t hash = HashKey(write.key);
  if (write.is_delete) {
    size_t slot = FindSlot(write.key, hash);
    if (slot == SIZE_MAX) return Status::OK();
    uint32_t ref = slots_[slot].ref;
    slots_[slot].ref = kTombstone;  // stays occupied for probe chains
    --live_;
    if (index_valid_) {
      // Stale-ify any index pairs for this entry; keep the key string
      // (stale pairs still binary-search by it) until the next
      // invalidation reclaims the entry.
      ++entries_[ref].gen;
      entries_[ref].vv = VersionedValue{};
      dead_refs_.push_back(ref);
      MaybeInvalidateIndex();
    } else {
      uint32_t gen = entries_[ref].gen + 1;
      entries_[ref] = Entry{};  // release the key/value heap memory
      entries_[ref].gen = gen;
      free_.push_back(ref);
    }
    return Status::OK();
  }
  size_t slot = FindSlot(write.key, hash);
  if (slot != SIZE_MAX) {
    // In-place update: the key set is unchanged, so the sorted index
    // stays valid — commit-time version bumps never pay for ordering.
    entries_[slots_[slot].ref].vv = VersionedValue{write.value, version};
    return Status::OK();
  }
  EnsureCapacityForInsert();
  uint32_t ref;
  if (!free_.empty()) {
    ref = free_.back();
    free_.pop_back();
    entries_[ref].key = write.key;
    entries_[ref].vv = VersionedValue{write.value, version};
  } else {
    ref = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{write.key, VersionedValue{write.value, version}});
  }
  size_t i = static_cast<size_t>(hash) & mask_;
  while (true) {
    Slot& s = slots_[i];
    if (s.ref == kEmpty || s.ref == kTombstone) {
      if (s.ref == kEmpty) ++occupied_;
      s = Slot{hash, ref};
      break;
    }
    i = (i + 1) & mask_;
  }
  ++live_;
  if (index_valid_) {
    uint64_t pair = Pack(entries_[ref].gen, ref);
    auto it = std::lower_bound(pending_.begin(), pending_.end(),
                               entries_[ref].key,
                               [this](uint64_t p, const std::string& key) {
                                 return KeyOf(p) < key;
                               });
    pending_.insert(it, pair);
    MaybeInvalidateIndex();
  }
  return Status::OK();
}

void HashStateDb::MaybeInvalidateIndex() {
  if (pending_.size() + dead_refs_.size() <=
      std::max<size_t>(64, live_ / 64)) {
    return;
  }
  index_valid_ = false;
  sorted_.clear();
  pending_.clear();
  for (uint32_t ref : dead_refs_) {
    uint32_t gen = entries_[ref].gen;
    entries_[ref] = Entry{};  // now safe: no index pair references it
    entries_[ref].gen = gen;
    free_.push_back(ref);
  }
  dead_refs_.clear();
}

void HashStateDb::EnsureIndex() const {
  if (index_valid_) return;
  sorted_.clear();
  sorted_.reserve(live_);
  for (const Slot& slot : slots_) {
    if (slot.ref != kEmpty && slot.ref != kTombstone) {
      sorted_.push_back(Pack(entries_[slot.ref].gen, slot.ref));
    }
  }
  std::sort(sorted_.begin(), sorted_.end(), [this](uint64_t a, uint64_t b) {
    return KeyOf(a) < KeyOf(b);
  });
  pending_.clear();
  index_valid_ = true;
}

template <typename Fn>
void HashStateDb::ForRange(const std::string& start_key,
                           const std::string& end_key, Fn&& fn) const {
  EnsureIndex();
  auto key_less = [this](uint64_t pair, const std::string& key) {
    return KeyOf(pair) < key;
  };
  auto a = start_key.empty()
               ? sorted_.begin()
               : std::lower_bound(sorted_.begin(), sorted_.end(), start_key,
                                  key_less);
  auto b = start_key.empty()
               ? pending_.begin()
               : std::lower_bound(pending_.begin(), pending_.end(), start_key,
                                  key_less);
  // Two-way merge of the main index and the insert buffer; stale pairs
  // (generation mismatch) are skipped. A key can appear as one live
  // pair at most: re-inserting a deleted key stale-ifies the old pair.
  while (a != sorted_.end() || b != pending_.end()) {
    uint64_t pair;
    if (b == pending_.end() ||
        (a != sorted_.end() && !(KeyOf(*b) < KeyOf(*a)))) {
      pair = *a++;
    } else {
      pair = *b++;
    }
    if (!end_key.empty() && KeyOf(pair) >= end_key) break;
    if (!PairLive(pair)) continue;
    fn(entries_[RefOf(pair)]);
  }
}

std::vector<StateEntry> HashStateDb::GetRange(const std::string& start_key,
                                              const std::string& end_key)
    const {
  std::vector<StateEntry> out;
  ForRange(start_key, end_key, [&out](const Entry& entry) {
    out.push_back(StateEntry{entry.key, entry.vv});
  });
  return out;
}

void HashStateDb::ForEachVersionInRange(
    const std::string& start_key, const std::string& end_key,
    const std::function<void(const std::string& key, Version version)>& fn)
    const {
  ForRange(start_key, end_key,
           [&fn](const Entry& entry) { fn(entry.key, entry.vv.version); });
}

std::vector<StateEntry> HashStateDb::Scan() const {
  std::vector<StateEntry> out;
  out.reserve(live_);
  ForRange("", "", [&out](const Entry& entry) {
    out.push_back(StateEntry{entry.key, entry.vv});
  });
  return out;
}

void HashStateDb::ForEachEntry(
    const std::function<void(const std::string& key, const VersionedValue& vv)>&
        fn) const {
  ForRange("", "",
           [&fn](const Entry& entry) { fn(entry.key, entry.vv); });
}

std::unique_ptr<StateDatabase> MakeHashStateDb() {
  return std::make_unique<HashStateDb>();
}

}  // namespace fabricsim
