#ifndef FABRICSIM_STATEDB_BTREE_STATE_DB_H_
#define FABRICSIM_STATEDB_BTREE_STATE_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/statedb/state_database.h"

namespace fabricsim {

/// B+-tree implementation of StateDatabase with fat sorted-array
/// leaves: every leaf holds up to kLeafCapacity entries contiguously,
/// so a point lookup is a short walk down shallow inner nodes followed
/// by one binary search over a cache-resident array, and a range scan
/// is a linear walk along the chained leaves — no per-key pointer
/// chasing, unlike the std::map reference backend whose every step is
/// a cache miss on a fresh tree node.
///
/// Writes keep the tree balanced only on the way up (leaf/inner splits
/// at capacity); deletes erase within the leaf and tolerate underfull
/// leaves, which keeps the delete path trivial at the cost of sparse
/// leaves under delete-heavy churn — the right trade for world state,
/// where deletes are rare and ranges are hot (phantom re-scans).
class BTreeStateDb : public StateDatabase {
 public:
  BTreeStateDb();
  ~BTreeStateDb() override;

  std::optional<VersionedValue> Get(const std::string& key) const override;
  std::optional<Version> GetVersion(const std::string& key) const override;
  std::vector<StateEntry> GetRange(const std::string& start_key,
                                   const std::string& end_key) const override;
  void ForEachVersionInRange(
      const std::string& start_key, const std::string& end_key,
      const std::function<void(const std::string& key, Version version)>& fn)
      const override;
  Status ApplyWrite(const WriteItem& write, Version version) override;
  size_t Size() const override { return size_; }
  std::vector<StateEntry> Scan() const override;
  void ForEachEntry(
      const std::function<void(const std::string& key,
                               const VersionedValue& vv)>& fn) const override;

 private:
  struct Entry {
    std::string key;
    VersionedValue vv;
  };
  /// One tree node; leaves use `entries` + `next`, inner nodes use
  /// `keys` + `children` (keys[i] is the smallest key reachable under
  /// children[i+1]).
  struct Node {
    bool is_leaf = true;
    std::vector<Entry> entries;                   // leaf payload, sorted
    Node* next = nullptr;                         // leaf chain, key order
    std::vector<std::string> keys;                // inner separators
    std::vector<std::unique_ptr<Node>> children;  // keys.size() + 1
  };
  /// Result of an insert that overflowed a child: the new right
  /// sibling and the separator key that now splits the pair.
  struct Split {
    std::string separator;
    std::unique_ptr<Node> right;
  };

  static constexpr size_t kLeafCapacity = 64;
  static constexpr size_t kInnerCapacity = 32;  // max children per inner

  /// Leaf that would contain `key` if present.
  const Node* FindLeaf(const std::string& key) const;
  /// Leftmost leaf (smallest keys); nullptr when empty.
  const Node* FirstLeaf() const;

  /// Inserts or updates under `node`; returns a Split when `node`
  /// overflowed and the caller must graft the new sibling.
  std::unique_ptr<Split> Insert(Node* node, const std::string& key,
                                const std::string& value, Version version);

  template <typename Fn>
  void ForRange(const std::string& start_key, const std::string& end_key,
                Fn&& fn) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_STATEDB_BTREE_STATE_DB_H_
