#include "src/statedb/btree_state_db.h"

#include <algorithm>
#include <utility>

namespace fabricsim {
namespace {

/// Binary search for `key` inside a leaf's sorted entry array.
template <typename Entries>
auto LeafLowerBound(Entries& entries, const std::string& key) {
  return std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& entry, const std::string& k) { return entry.key < k; });
}

}  // namespace

BTreeStateDb::BTreeStateDb() : root_(std::make_unique<Node>()) {}

BTreeStateDb::~BTreeStateDb() = default;

const BTreeStateDb::Node* BTreeStateDb::FindLeaf(
    const std::string& key) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    size_t idx = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[idx].get();
  }
  return node;
}

const BTreeStateDb::Node* BTreeStateDb::FirstLeaf() const {
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  return node;
}

std::optional<VersionedValue> BTreeStateDb::Get(const std::string& key) const {
  const Node* leaf = FindLeaf(key);
  auto it = LeafLowerBound(leaf->entries, key);
  if (it == leaf->entries.end() || it->key != key) return std::nullopt;
  return it->vv;
}

std::optional<Version> BTreeStateDb::GetVersion(const std::string& key) const {
  const Node* leaf = FindLeaf(key);
  auto it = LeafLowerBound(leaf->entries, key);
  if (it == leaf->entries.end() || it->key != key) return std::nullopt;
  return it->vv.version;
}

std::unique_ptr<BTreeStateDb::Split> BTreeStateDb::Insert(
    Node* node, const std::string& key, const std::string& value,
    Version version) {
  if (node->is_leaf) {
    auto it = LeafLowerBound(node->entries, key);
    if (it != node->entries.end() && it->key == key) {
      it->vv = VersionedValue{value, version};
      return nullptr;
    }
    node->entries.insert(it, Entry{key, VersionedValue{value, version}});
    ++size_;
    if (node->entries.size() <= kLeafCapacity) return nullptr;
    auto right = std::make_unique<Node>();
    size_t mid = node->entries.size() / 2;
    right->entries.assign(std::make_move_iterator(node->entries.begin() +
                                                  static_cast<long>(mid)),
                          std::make_move_iterator(node->entries.end()));
    node->entries.resize(mid);
    right->next = node->next;
    node->next = right.get();
    auto split = std::make_unique<Split>();
    split->separator = right->entries.front().key;
    split->right = std::move(right);
    return split;
  }
  size_t idx = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  std::unique_ptr<Split> child_split =
      Insert(node->children[idx].get(), key, value, version);
  if (child_split == nullptr) return nullptr;
  node->keys.insert(node->keys.begin() + static_cast<long>(idx),
                    std::move(child_split->separator));
  node->children.insert(node->children.begin() + static_cast<long>(idx) + 1,
                        std::move(child_split->right));
  if (node->children.size() <= kInnerCapacity) return nullptr;
  auto right = std::make_unique<Node>();
  right->is_leaf = false;
  size_t mid = node->keys.size() / 2;
  auto split = std::make_unique<Split>();
  split->separator = std::move(node->keys[mid]);
  right->keys.assign(
      std::make_move_iterator(node->keys.begin() + static_cast<long>(mid) + 1),
      std::make_move_iterator(node->keys.end()));
  right->children.assign(std::make_move_iterator(node->children.begin() +
                                                 static_cast<long>(mid) + 1),
                         std::make_move_iterator(node->children.end()));
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  split->right = std::move(right);
  return split;
}

Status BTreeStateDb::ApplyWrite(const WriteItem& write, Version version) {
  if (write.is_delete) {
    // Erase within the leaf; underfull (even empty) leaves are left in
    // place — separators and the leaf chain stay valid, lookups that
    // land there simply find nothing.
    Node* node = root_.get();
    while (!node->is_leaf) {
      size_t idx = static_cast<size_t>(
          std::upper_bound(node->keys.begin(), node->keys.end(), write.key) -
          node->keys.begin());
      node = node->children[idx].get();
    }
    auto it = LeafLowerBound(node->entries, write.key);
    if (it != node->entries.end() && it->key == write.key) {
      node->entries.erase(it);
      --size_;
    }
    return Status::OK();
  }
  std::unique_ptr<Split> split =
      Insert(root_.get(), write.key, write.value, version);
  if (split != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->keys.push_back(std::move(split->separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  return Status::OK();
}

template <typename Fn>
void BTreeStateDb::ForRange(const std::string& start_key,
                            const std::string& end_key, Fn&& fn) const {
  const Node* leaf = FindLeaf(start_key);
  auto it = LeafLowerBound(leaf->entries, start_key);
  while (leaf != nullptr) {
    for (; it != leaf->entries.end(); ++it) {
      if (!end_key.empty() && it->key >= end_key) return;
      fn(*it);
    }
    leaf = leaf->next;
    if (leaf != nullptr) it = leaf->entries.begin();
  }
}

std::vector<StateEntry> BTreeStateDb::GetRange(const std::string& start_key,
                                               const std::string& end_key)
    const {
  std::vector<StateEntry> out;
  ForRange(start_key, end_key, [&out](const Entry& entry) {
    out.push_back(StateEntry{entry.key, entry.vv});
  });
  return out;
}

void BTreeStateDb::ForEachVersionInRange(
    const std::string& start_key, const std::string& end_key,
    const std::function<void(const std::string& key, Version version)>& fn)
    const {
  ForRange(start_key, end_key,
           [&fn](const Entry& entry) { fn(entry.key, entry.vv.version); });
}

std::vector<StateEntry> BTreeStateDb::Scan() const {
  std::vector<StateEntry> out;
  out.reserve(size_);
  for (const Node* leaf = FirstLeaf(); leaf != nullptr; leaf = leaf->next) {
    for (const Entry& entry : leaf->entries) {
      out.push_back(StateEntry{entry.key, entry.vv});
    }
  }
  return out;
}

void BTreeStateDb::ForEachEntry(
    const std::function<void(const std::string& key, const VersionedValue& vv)>&
        fn) const {
  for (const Node* leaf = FirstLeaf(); leaf != nullptr; leaf = leaf->next) {
    for (const Entry& entry : leaf->entries) fn(entry.key, entry.vv);
  }
}

std::unique_ptr<StateDatabase> MakeBTreeStateDb() {
  return std::make_unique<BTreeStateDb>();
}

}  // namespace fabricsim
