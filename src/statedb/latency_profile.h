#ifndef FABRICSIM_STATEDB_LATENCY_PROFILE_H_
#define FABRICSIM_STATEDB_LATENCY_PROFILE_H_

#include <cstddef>
#include <string>

#include "src/common/sim_time.h"
#include "src/ledger/rwset.h"

namespace fabricsim {

/// Which state database backs the peers (paper §4.5 control variable).
enum class DatabaseType {
  kLevelDb,  ///< embedded in the peer process; get/put is ~µs–sub-ms
  kCouchDb,  ///< external process reached over REST; every op pays IPC
};

const char* DatabaseTypeToString(DatabaseType type);

/// Service-time model for the two state databases, calibrated to the
/// per-chaincode-call latencies the paper reports in Table 4
/// (GetState 8.3 ms CouchDB vs 0.6 ms LevelDB, GetRange 88 ms vs
/// 1.4 ms, ...). These costs are charged to the peer's work queue for
/// every endorsement, validation and commit, which is how the CouchDB
/// queueing collapse under range-heavy load emerges.
struct DbLatencyProfile {
  DatabaseType type = DatabaseType::kCouchDb;

  /// Endorsement-time GetState.
  SimTime get = 0;
  /// Endorsement-time PutState (buffered into the write set; cheap for
  /// both databases — Table 4: 0.8 ms vs 0.5 ms).
  SimTime put = 0;
  /// Endorsement-time DelState.
  SimTime del = 0;
  /// Range scan: fixed cost, detailed per-key cost for the first
  /// `range_detail_keys` results, then a cheaper bulk streaming rate —
  /// large scans are paginated, they do not pay the per-request
  /// round-trip per key.
  SimTime range_base = 0;
  SimTime range_per_key = 0;
  SimTime range_bulk_per_key = 0;
  int range_detail_keys = 32;
  /// Rich (JSON selector) query: fixed + per-scanned-document cost.
  /// Only CouchDB supports rich queries.
  SimTime rich_base = 0;
  SimTime rich_per_doc = 0;

  /// Validation-time version check per read-set entry. Fabric reads
  /// committed versions back from the state DB in bulk, so this is
  /// cheaper than a full get but still far more expensive for CouchDB.
  SimTime validate_per_read = 0;
  /// Validation-time phantom re-scan of a range query: the committer
  /// only needs keys+versions (an index read), not the documents.
  SimTime validate_range_base = 0;
  SimTime validate_range_per_key = 0;
  /// Commit-time cost per applied write.
  SimTime commit_per_write = 0;
  /// Fixed commit cost per block (state DB batch + ledger append).
  SimTime commit_base = 0;

  /// Whether rich queries are supported (CouchDB only).
  bool supports_rich_queries = false;

  static DbLatencyProfile LevelDb();
  static DbLatencyProfile CouchDb();

  /// Cost of generating `rwset` at endorsement time (sum of op costs).
  SimTime EndorseCost(const ReadWriteSet& rwset) const;

  /// Cost of validating `rwset` (MVCC checks + phantom re-scans).
  SimTime ValidateCost(const ReadWriteSet& rwset) const;

  /// Cost of committing `write_count` writes.
  SimTime CommitCost(size_t write_count) const;
};

/// Storage profile for the ledger/world-state medium (Streamchain's
/// RAM-disk requirement, §5.3.3). Scales commit costs.
struct StorageProfile {
  /// Multiplier on commit costs (1.0 = normal disk).
  double commit_cost_factor = 1.0;
  static StorageProfile Disk() { return StorageProfile{1.0}; }
  static StorageProfile RamDisk() { return StorageProfile{0.06}; }
};

}  // namespace fabricsim

#endif  // FABRICSIM_STATEDB_LATENCY_PROFILE_H_
