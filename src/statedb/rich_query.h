#ifndef FABRICSIM_STATEDB_RICH_QUERY_H_
#define FABRICSIM_STATEDB_RICH_QUERY_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/statedb/state_database.h"

namespace fabricsim {

/// Serializes a flat string-field map into a JSON object, e.g.
/// JsonObject({{"docType","unit"},{"lsp","LSP3"}}). Chaincode values
/// are stored in this format so CouchDB-style rich queries can select
/// on fields.
std::string JsonObject(
    const std::vector<std::pair<std::string, std::string>>& fields);

/// Extracts a top-level string field from a flat JSON object produced
/// by JsonObject(). nullopt when the field is absent.
std::optional<std::string> ExtractJsonField(const std::string& doc,
                                            const std::string& field);

/// A CouchDB-selector-like equality query: `field==value` terms joined
/// with '&', e.g. "docType==unit&lsp==LSP3". This is the subset of
/// Mango selectors the paper's chaincodes need (queryStock,
/// calcRevenue). Rich queries scan every document and are *not*
/// re-executed at validation — no phantom read detection (paper
/// §5.1.2), exactly like Fabric's GetQueryResult.
class RichQuerySelector {
 public:
  static Result<RichQuerySelector> Parse(const std::string& selector);

  /// True when every equality term matches the document.
  bool Matches(const std::string& doc) const;

  const std::vector<std::pair<std::string, std::string>>& terms() const {
    return terms_;
  }
  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, std::string>> terms_;
};

/// Runs the selector over the whole store (document scan), returning
/// matching entries in key order.
std::vector<StateEntry> ExecuteRichQuery(const StateDatabase& db,
                                         const RichQuerySelector& selector);

}  // namespace fabricsim

#endif  // FABRICSIM_STATEDB_RICH_QUERY_H_
