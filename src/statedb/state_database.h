#ifndef FABRICSIM_STATEDB_STATE_DATABASE_H_
#define FABRICSIM_STATEDB_STATE_DATABASE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ledger/rwset.h"
#include "src/ledger/version.h"

namespace fabricsim {

/// A value in the world state together with the version of the
/// transaction that last wrote it (paper Definition 3).
struct VersionedValue {
  std::string value;
  Version version;
};

/// One world-state entry: key + versioned value.
struct StateEntry {
  std::string key;
  VersionedValue vv;
};

/// Abstract versioned key-value store backing a peer's world state.
///
/// This interface is pure data-plane: it performs the operation
/// immediately and keeps no notion of time. The *cost* of each
/// operation (the LevelDB-embedded vs CouchDB-over-REST gap the paper
/// measures in Table 4) is modelled separately by DbLatencyProfile and
/// charged by the simulation actors that call into the store.
///
/// ## Semantics contract (every backend MUST agree, bit for bit)
///
/// Backends are interchangeable data structures behind one observable
/// behaviour; the randomized differential test in tests/statedb_test.cc
/// enforces this contract across all of them:
///
///  * **Deletes are absolute.** After ApplyWrite of a delete, the key
///    is absent from Get, GetVersion, GetRange, ForEachVersionInRange,
///    Size, Scan and ForEachEntry alike — a backend that keeps a
///    tombstone internally (the open-addressing hash does) must never
///    let it leak into any read path. Deleting a missing key is a
///    no-op returning OK.
///  * **Range queries are half-open [start_key, end_key)** over the
///    lexicographic key order. An *empty* end_key means "to the end of
///    the key space" (Fabric's GetStateByRange semantics) — it is NOT
///    the empty interval. An empty start_key starts at the first key.
///  * **Order is total and deterministic.** GetRange, Scan,
///    ForEachVersionInRange and ForEachEntry enumerate strictly
///    ascending by key, so two backends fed identical writes produce
///    byte-identical scans, digests and phantom re-scan verdicts.
class StateDatabase {
 public:
  virtual ~StateDatabase() = default;

  /// Point lookup. nullopt when the key does not exist.
  virtual std::optional<VersionedValue> Get(const std::string& key) const = 0;

  /// Version-only point lookup. The validator's MVCC check only
  /// compares versions, so this avoids copying the value payload on
  /// the hottest read path. Default delegates to Get(); backends
  /// should override with a copy-free lookup.
  virtual std::optional<Version> GetVersion(const std::string& key) const;

  /// Range scan over [start_key, end_key), in key order. An empty
  /// end_key means "to the end of the key space" (Fabric semantics).
  virtual std::vector<StateEntry> GetRange(const std::string& start_key,
                                           const std::string& end_key)
      const = 0;

  /// Version-only range iteration over [start_key, end_key), in key
  /// order, used by the validator's phantom-read re-scan — no key or
  /// value strings are materialized. Default delegates to GetRange().
  virtual void ForEachVersionInRange(
      const std::string& start_key, const std::string& end_key,
      const std::function<void(const std::string& key, Version version)>& fn)
      const;

  /// Applies one write (upsert or delete) committed at `version`.
  virtual Status ApplyWrite(const WriteItem& write, Version version) = 0;

  /// Number of live keys.
  virtual size_t Size() const = 0;

  /// All entries, ascending by key (used by tests and tooling that
  /// want a materialized snapshot). Prefer ForEachEntry on hot paths.
  virtual std::vector<StateEntry> Scan() const = 0;

  /// Streaming visitation of every entry, ascending by key, without
  /// materializing a copy of the world state (rich queries scan every
  /// document; a Scan()-based implementation would copy all of it per
  /// query). Default delegates to Scan(); backends should override
  /// with a copy-free walk.
  virtual void ForEachEntry(
      const std::function<void(const std::string& key,
                               const VersionedValue& vv)>& fn) const;
};

/// True when `key` falls inside the half-open range [start_key,
/// end_key), where an empty end_key extends the range to the end of
/// the key space. THE definition of Fabric range semantics — every
/// backend and the validator's phantom re-scan agree by construction
/// by sharing it.
inline bool KeyInRange(const std::string& key, const std::string& start_key,
                       const std::string& end_key) {
  return key >= start_key && (end_key.empty() || key < end_key);
}

/// Creates an in-memory ordered-map state database.
std::unique_ptr<StateDatabase> MakeMemoryStateDb();

}  // namespace fabricsim

#endif  // FABRICSIM_STATEDB_STATE_DATABASE_H_
