#ifndef FABRICSIM_STATEDB_STATE_DATABASE_H_
#define FABRICSIM_STATEDB_STATE_DATABASE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ledger/rwset.h"
#include "src/ledger/version.h"

namespace fabricsim {

/// A value in the world state together with the version of the
/// transaction that last wrote it (paper Definition 3).
struct VersionedValue {
  std::string value;
  Version version;
};

/// One world-state entry: key + versioned value.
struct StateEntry {
  std::string key;
  VersionedValue vv;
};

/// Abstract versioned key-value store backing a peer's world state.
///
/// This interface is pure data-plane: it performs the operation
/// immediately and keeps no notion of time. The *cost* of each
/// operation (the LevelDB-embedded vs CouchDB-over-REST gap the paper
/// measures in Table 4) is modelled separately by DbLatencyProfile and
/// charged by the simulation actors that call into the store.
class StateDatabase {
 public:
  virtual ~StateDatabase() = default;

  /// Point lookup. nullopt when the key does not exist.
  virtual std::optional<VersionedValue> Get(const std::string& key) const = 0;

  /// Version-only point lookup. The validator's MVCC check only
  /// compares versions, so this avoids copying the value payload on
  /// the hottest read path. Default delegates to Get(); backends
  /// should override with a copy-free lookup.
  virtual std::optional<Version> GetVersion(const std::string& key) const;

  /// Range scan over [start_key, end_key), in key order. An empty
  /// end_key means "to the end of the key space" (Fabric semantics).
  virtual std::vector<StateEntry> GetRange(const std::string& start_key,
                                           const std::string& end_key)
      const = 0;

  /// Version-only range iteration over [start_key, end_key), in key
  /// order, used by the validator's phantom-read re-scan — no key or
  /// value strings are materialized. Default delegates to GetRange().
  virtual void ForEachVersionInRange(
      const std::string& start_key, const std::string& end_key,
      const std::function<void(const std::string& key, Version version)>& fn)
      const;

  /// Applies one write (upsert or delete) committed at `version`.
  virtual Status ApplyWrite(const WriteItem& write, Version version) = 0;

  /// Number of live keys.
  virtual size_t Size() const = 0;

  /// All entries (used by rich queries, which scan documents).
  virtual std::vector<StateEntry> Scan() const = 0;
};

/// Creates an in-memory ordered-map state database.
std::unique_ptr<StateDatabase> MakeMemoryStateDb();

}  // namespace fabricsim

#endif  // FABRICSIM_STATEDB_STATE_DATABASE_H_
