#include "src/statedb/state_database.h"

namespace fabricsim {

std::optional<Version> StateDatabase::GetVersion(
    const std::string& key) const {
  std::optional<VersionedValue> vv = Get(key);
  if (!vv.has_value()) return std::nullopt;
  return vv->version;
}

void StateDatabase::ForEachVersionInRange(
    const std::string& start_key, const std::string& end_key,
    const std::function<void(const std::string& key, Version version)>& fn)
    const {
  for (const StateEntry& e : GetRange(start_key, end_key)) {
    fn(e.key, e.vv.version);
  }
}

void StateDatabase::ForEachEntry(
    const std::function<void(const std::string& key, const VersionedValue& vv)>&
        fn) const {
  for (const StateEntry& e : Scan()) fn(e.key, e.vv);
}

}  // namespace fabricsim
