#include "src/statedb/state_database.h"

namespace fabricsim {
// Interface only; factory lives in memory_state_db.cc.
}  // namespace fabricsim
