#include "src/ordering/raft_group.h"

#include <algorithm>
#include <utility>

#include "src/obs/tracer.h"
#include "src/sim/environment.h"

namespace fabricsim {

namespace {

// Control-plane message sizes on the wire (bytes). Entries ship the
// serialized block payload on top of the framing.
constexpr uint64_t kVoteBytes = 64;
constexpr uint64_t kVoteReplyBytes = 48;
constexpr uint64_t kAckBytes = 48;

uint64_t AppendEntriesBytes(const AppendEntriesMsg& msg) {
  uint64_t bytes = 96;
  for (const RaftLogEntry& entry : msg.entries) {
    bytes += 32 + (entry.block != nullptr ? entry.block->ByteSize() : 0);
  }
  return bytes;
}

}  // namespace

OrdererReplica::OrdererReplica(Params params)
    : index_(params.index),
      node_(params.node),
      channel_(params.channel),
      env_(params.env),
      net_(params.net),
      group_(params.group),
      cutter_(params.cutter),
      block_timeout_(params.block_timeout),
      timing_(params.timing),
      ordering_(params.ordering),
      rng_(std::move(params.rng)),
      streaming_(params.streaming),
      processor_(params.processor),
      queue_("orderer") {
  // Bootstrap: the whole group starts agreeing that replica 0 leads
  // term 1, so a healthy run pays no startup election.
  voted_for_ = 0;
  if (params.bootstrap_leader) {
    // next_index_/match_index_ are sized by the RaftGroup constructor
    // once the group's replica count is final.
    role_ = Role::kLeader;
    ArmHeartbeat();
  } else {
    ArmElectionTimer();
  }
}

int OrdererReplica::Quorum() const { return group_->size() / 2 + 1; }

// --- client ingress ---------------------------------------------------

void OrdererReplica::SubmitTransaction(Transaction tx, AckFn ack) {
  if (!alive_ || role_ != Role::kLeader) {
    // A dead process or a follower: the envelope vanishes, exactly as
    // silent as gRPC against a stopped orderer. The client's ack
    // timeout drives it to the next replica.
    ++txs_dropped_not_leader_;
    return;
  }
  ++txs_received_;
  if (Tracer* tracer = env_->tracer()) {
    tracer->OnOrdererEnqueue(tx.id, env_->now());
  }
  // Rebroadcast deduplication: the same envelope may arrive again when
  // the first ack was slow or lost. An already-committed transaction is
  // re-acked; a logged or in-progress one just refreshes its ack.
  auto logged = tx_log_index_.find(tx.id);
  if (logged != tx_log_index_.end()) {
    if (logged->second <= commit_index_) {
      if (ack) ack(tx.id, true);
    } else if (ack) {
      pending_acks_[tx.id] = std::move(ack);
    }
    return;
  }
  if (pending_ingress_.count(tx.id) > 0) {
    if (ack) pending_acks_[tx.id] = std::move(ack);
    return;
  }
  pending_ingress_.insert(tx.id);
  if (ack) pending_acks_[tx.id] = std::move(ack);
  if (paused_) {
    ++txs_deferred_while_paused_;
    paused_backlog_.push_back(std::move(tx));
    return;
  }
  Ingest(std::move(tx));
}

void OrdererReplica::Ingest(Transaction tx) {
  auto shared_tx = std::make_shared<Transaction>(std::move(tx));
  uint64_t generation = ingress_generation_;
  queue_.Submit(
      *env_,
      [this]() -> SimTime {
        return alive_ ? timing_.orderer_per_tx_cost : 0;
      },
      [this, shared_tx, generation]() {
        if (generation != ingress_generation_ || !alive_ ||
            role_ != Role::kLeader) {
          return;  // crashed or deposed since the envelope queued
        }
        TxValidationCode reject_code = TxValidationCode::kNotValidated;
        if (processor_ != nullptr &&
            !processor_->Admit(*shared_tx, &reject_code)) {
          ++txs_early_aborted_;
          pending_ingress_.erase(shared_tx->id);
          if (Tracer* tracer = env_->tracer()) {
            tracer->OnEarlyAbort(shared_tx->id, reject_code, env_->now());
          }
          if (group_->on_early_abort_) {
            group_->on_early_abort_(*shared_tx, reject_code);
          }
          // Definitive verdict: tell the client so it stops
          // re-broadcasting a transaction that can never commit.
          ResolveAck(shared_tx->id, false);
          return;
        }
        HandleAdmitted(std::move(*shared_tx));
      });
}

void OrdererReplica::HandleAdmitted(Transaction tx) {
  if (streaming_) {
    std::vector<Transaction> single;
    single.push_back(std::move(tx));
    CutBlock(std::move(single), BlockCutReason::kStreaming);
    return;
  }
  uint32_t max_count = cutter_.config().max_count;
  for (std::vector<Transaction>& batch :
       cutter_.AddTransaction(std::move(tx))) {
    BlockCutReason reason = batch.size() >= max_count
                                ? BlockCutReason::kMaxCount
                                : BlockCutReason::kMaxBytes;
    ++timeout_generation_;  // cancel any armed timeout
    timeout_armed_ = false;
    CutBlock(std::move(batch), reason);
  }
  if (cutter_.HasPending() && !timeout_armed_) ArmTimeout();
}

void OrdererReplica::ArmTimeout() {
  timeout_armed_ = true;
  uint64_t generation = timeout_generation_;
  env_->Schedule(block_timeout_, [this, generation]() {
    if (generation != timeout_generation_) return;  // cancelled by a cut
    timeout_armed_ = false;
    ++timeout_generation_;
    if (!alive_ || paused_ || role_ != Role::kLeader) return;
    if (cutter_.HasPending()) {
      CutBlock(cutter_.CutPending(), BlockCutReason::kTimeout);
    }
  });
}

void OrdererReplica::CutBlock(std::vector<Transaction> txs,
                              BlockCutReason reason) {
  auto block = std::make_shared<Block>();
  // Dense numbering over the block entries of this replica's log. A
  // deposed leader's uncommitted entries are truncated before they can
  // deliver, so a reused number never reaches a peer twice.
  block->number = block_count_ + 1;
  block->channel = channel_;
  block->cut_time = env_->now();
  block->cut_reason = reason;
  block->txs = std::move(txs);
  for (Transaction& tx : block->txs) tx.ordered_time = env_->now();
  block->results.assign(block->txs.size(), TxValidationResult{});

  SimTime processor_cost = 0;
  if (processor_ != nullptr) {
    std::vector<BlockProcessor::EarlyAbort> early_aborted;
    processor_cost = processor_->OnBlockCut(block.get(), &early_aborted);
    txs_early_aborted_ += early_aborted.size();
    for (const BlockProcessor::EarlyAbort& abort : early_aborted) {
      pending_ingress_.erase(abort.first.id);
      if (Tracer* tracer = env_->tracer()) {
        tracer->OnEarlyAbort(abort.first.id, abort.second, env_->now());
      }
      if (group_->on_early_abort_) {
        group_->on_early_abort_(abort.first, abort.second);
      }
      ResolveAck(abort.first.id, false);
    }
    if (block->txs.empty()) {
      return;  // everything aborted at the cut; no entry, no number
    }
  }
  ++blocks_cut_;

  log_.push_back(RaftLogEntry{block, current_term_});
  ++block_count_;
  uint64_t entry_index = LastIndex();
  for (const Transaction& tx : block->txs) {
    pending_ingress_.erase(tx.id);
    tx_log_index_[tx.id] = entry_index;
  }

  // Assembly/signing/egress occupies the serial queue as in the legacy
  // Orderer; the entry only becomes replicatable (and thus commitable)
  // once the work is done. Replication replaces the sampled
  // ConsensusModel latency of compat mode.
  SimTime assembly =
      timing_.orderer_per_block_cost + processor_cost +
      static_cast<SimTime>(group_->peers_.size() +
                           static_cast<size_t>(group_->size() - 1)) *
          timing_.orderer_per_msg_cost;
  uint64_t term_at_cut = current_term_;
  queue_.Submit(
      *env_, [this, assembly]() -> SimTime { return alive_ ? assembly : 0; },
      [this, entry_index, term_at_cut]() {
        if (!alive_ || role_ != Role::kLeader ||
            current_term_ != term_at_cut) {
          // Crashed or deposed mid-assembly: the entry stays in the
          // log unshipped; if it survives leadership changes it ships
          // later, otherwise it is truncated — either way it was never
          // delivered.
          return;
        }
        if (entry_index > replicatable_index_) {
          replicatable_index_ = entry_index;
        }
        if (group_->size() == 1) {
          TryAdvanceCommit();
        } else {
          BroadcastAppendEntries();
        }
      });
}

// --- pause / crash ----------------------------------------------------

void OrdererReplica::Pause() { paused_ = true; }

void OrdererReplica::Resume() {
  if (!paused_) return;
  paused_ = false;
  if (!alive_) return;
  std::vector<Transaction> backlog = std::move(paused_backlog_);
  paused_backlog_.clear();
  if (role_ == Role::kLeader) {
    for (Transaction& tx : backlog) Ingest(std::move(tx));
    // A timeout that fired mid-pause was swallowed; transactions
    // batched before the pause must not wait forever.
    if (cutter_.HasPending() && !timeout_armed_) ArmTimeout();
  } else {
    // Deposed while paused: the buffered envelopes can no longer be
    // ordered here; the clients' rebroadcasts find the new leader.
    for (const Transaction& tx : backlog) pending_ingress_.erase(tx.id);
  }
}

void OrdererReplica::ClearVolatileIngress() {
  ++ingress_generation_;
  ++timeout_generation_;
  timeout_armed_ = false;
  cutter_.CutPending();  // discard pending batch contents
  pending_ingress_.clear();
  pending_acks_.clear();
  paused_backlog_.clear();
  last_acked_commit_ = commit_index_;
}

void OrdererReplica::Crash() {
  if (!alive_) return;
  alive_ = false;
  paused_ = false;
  votes_received_ = 0;
  ++election_generation_;
  ++heartbeat_generation_;
  // Volatile state dies with the process; current_term_, voted_for_,
  // the log and commit_index_ model Raft's persisted state.
  ClearVolatileIngress();
  role_ = Role::kFollower;
  group_->NoteCrash(index_);
}

void OrdererReplica::Restart() {
  if (alive_) return;
  alive_ = true;
  role_ = Role::kFollower;
  ArmElectionTimer();
}

// --- Raft: elections --------------------------------------------------

void OrdererReplica::ArmElectionTimer() {
  ++election_generation_;
  uint64_t generation = election_generation_;
  SimTime delay = static_cast<SimTime>(rng_.UniformRange(
      static_cast<double>(ordering_.election_timeout_min),
      static_cast<double>(ordering_.election_timeout_max)));
  if (delay < 1) delay = 1;
  // Daemon: the timeout matters only while the run still has work in
  // flight — it must not keep a finished simulation alive.
  env_->ScheduleDaemon(delay, [this, generation]() {
    if (generation != election_generation_) return;  // reset in the meantime
    if (!alive_ || role_ == Role::kLeader) return;
    StartElection();
  });
}

void OrdererReplica::StartElection() {
  role_ = Role::kCandidate;
  ++current_term_;
  voted_for_ = index_;
  votes_received_ = 1;
  group_->NoteElectionStarted(index_, current_term_);
  ArmElectionTimer();  // retry on a split vote
  if (votes_received_ >= Quorum()) {
    BecomeLeader();  // single-replica group
    return;
  }
  RequestVoteMsg msg;
  msg.term = current_term_;
  msg.candidate = index_;
  msg.last_index = LastIndex();
  msg.last_term = TermAt(LastIndex());
  auto shared = std::make_shared<RequestVoteMsg>(msg);
  for (int i = 0; i < group_->size(); ++i) {
    if (i == index_) continue;
    OrdererReplica* target = group_->replica(i);
    net_->Send(*env_, node_, target->node(), kVoteBytes,
               [target, shared]() { target->HandleRequestVote(*shared); });
  }
}

void OrdererReplica::MaybeAdoptTerm(uint64_t term) {
  if (term <= current_term_) return;
  current_term_ = term;
  voted_for_ = -1;
  if (role_ == Role::kLeader) {
    ++heartbeat_generation_;
    // A deposed leader's cutter contents and unresolved client acks
    // are volatile; the clients recover via rebroadcast.
    ClearVolatileIngress();
  }
  role_ = Role::kFollower;
  votes_received_ = 0;
  ArmElectionTimer();
}

void OrdererReplica::HandleRequestVote(const RequestVoteMsg& msg) {
  if (!alive_) return;
  MaybeAdoptTerm(msg.term);
  // Election restriction (§5.4.1): only vote for candidates whose log
  // is at least as up to date, so every elected leader holds all
  // committed entries.
  bool up_to_date =
      msg.last_term > TermAt(LastIndex()) ||
      (msg.last_term == TermAt(LastIndex()) && msg.last_index >= LastIndex());
  bool grant = msg.term == current_term_ &&
               (voted_for_ == -1 || voted_for_ == msg.candidate) && up_to_date;
  if (grant) {
    voted_for_ = msg.candidate;
    ArmElectionTimer();
  }
  VoteReplyMsg reply;
  reply.term = current_term_;
  reply.voter = index_;
  reply.granted = grant;
  OrdererReplica* target = group_->replica(msg.candidate);
  auto shared = std::make_shared<VoteReplyMsg>(reply);
  net_->Send(*env_, node_, target->node(), kVoteReplyBytes,
             [target, shared]() { target->HandleVoteReply(*shared); });
}

void OrdererReplica::HandleVoteReply(const VoteReplyMsg& msg) {
  if (!alive_) return;
  MaybeAdoptTerm(msg.term);
  if (role_ != Role::kCandidate || msg.term != current_term_ || !msg.granted) {
    return;
  }
  ++votes_received_;
  if (votes_received_ >= Quorum()) BecomeLeader();
}

void OrdererReplica::BecomeLeader() {
  role_ = Role::kLeader;
  votes_received_ = 0;
  ++election_generation_;  // leaders run no election timer
  group_->NoteLeaderElected(index_, current_term_);
  size_t n = static_cast<size_t>(group_->size());
  next_index_.assign(n, LastIndex() + 1);
  match_index_.assign(n, 0);
  // Everything inherited was assembled by a previous leader.
  replicatable_index_ = LastIndex();
  // §5.4.2 barrier: append and commit a no-op of this term to learn
  // which inherited entries are committed (a leader may never count
  // replicas for prior-term entries directly).
  log_.push_back(RaftLogEntry{nullptr, current_term_});
  replicatable_index_ = LastIndex();
  TryAdvanceCommit();  // immediate for a single-replica group
  BroadcastAppendEntries();
  ArmHeartbeat();
}

// --- Raft: replication ------------------------------------------------

void OrdererReplica::ArmHeartbeat() {
  uint64_t generation = heartbeat_generation_;
  // Daemon: a leader heartbeats forever; the re-arming chain must not
  // block quiescence once the workload has drained.
  env_->ScheduleDaemon(ordering_.heartbeat_interval, [this, generation]() {
    if (generation != heartbeat_generation_) return;
    if (!alive_ || role_ != Role::kLeader) return;
    BroadcastAppendEntries();
    ArmHeartbeat();
  });
}

void OrdererReplica::BroadcastAppendEntries() {
  for (int i = 0; i < group_->size(); ++i) {
    if (i == index_) continue;
    SendAppendEntries(i);
  }
}

void OrdererReplica::SendAppendEntries(int follower) {
  auto msg = std::make_shared<AppendEntriesMsg>();
  msg->term = current_term_;
  msg->leader = index_;
  uint64_t next = next_index_[static_cast<size_t>(follower)];
  msg->prev_index = next - 1;
  msg->prev_term = TermAt(msg->prev_index);
  for (uint64_t i = next; i <= replicatable_index_; ++i) {
    msg->entries.push_back(log_[i - 1]);
  }
  msg->leader_commit = commit_index_;
  OrdererReplica* target = group_->replica(follower);
  net_->Send(*env_, node_, target->node(), AppendEntriesBytes(*msg),
             [target, msg]() { target->HandleAppendEntries(*msg); });
}

void OrdererReplica::SendAppendAck(int leader, bool success, uint64_t match) {
  auto msg = std::make_shared<AppendAckMsg>();
  msg->term = current_term_;
  msg->follower = index_;
  msg->success = success;
  msg->match = match;
  OrdererReplica* target = group_->replica(leader);
  net_->Send(*env_, node_, target->node(), kAckBytes,
             [target, msg]() { target->HandleAppendAck(*msg); });
}

void OrdererReplica::AppendReplicatedEntry(const RaftLogEntry& entry) {
  log_.push_back(entry);
  if (entry.block != nullptr) {
    ++block_count_;
    uint64_t index = LastIndex();
    for (const Transaction& tx : entry.block->txs) {
      tx_log_index_[tx.id] = index;
    }
  }
}

void OrdererReplica::TruncateFrom(uint64_t index) {
  for (uint64_t i = index; i <= LastIndex(); ++i) {
    const RaftLogEntry& entry = log_[i - 1];
    if (entry.block != nullptr) {
      --block_count_;
      for (const Transaction& tx : entry.block->txs) {
        tx_log_index_.erase(tx.id);
      }
    }
  }
  log_.resize(index - 1);
  if (replicatable_index_ > LastIndex()) replicatable_index_ = LastIndex();
}

void OrdererReplica::HandleAppendEntries(const AppendEntriesMsg& msg) {
  if (!alive_) return;
  if (msg.term < current_term_) {
    SendAppendAck(msg.leader, /*success=*/false, /*match=*/0);
    return;
  }
  MaybeAdoptTerm(msg.term);
  if (role_ == Role::kCandidate) {
    // Equal term: an established leader exists; yield.
    role_ = Role::kFollower;
    votes_received_ = 0;
  }
  ArmElectionTimer();

  if (msg.prev_index > LastIndex() ||
      TermAt(msg.prev_index) != msg.prev_term) {
    // Log mismatch: hint where our log could still agree so the leader
    // skips the one-index-at-a-time walk.
    uint64_t hint = std::min(
        LastIndex(), msg.prev_index == 0 ? 0 : msg.prev_index - 1);
    SendAppendAck(msg.leader, /*success=*/false, hint);
    return;
  }
  uint64_t index = msg.prev_index;
  for (const RaftLogEntry& entry : msg.entries) {
    ++index;
    if (index <= LastIndex()) {
      if (TermAt(index) == entry.term) continue;  // already present
      TruncateFrom(index);  // conflicting suffix from a deposed leader
    }
    AppendReplicatedEntry(entry);
  }
  uint64_t last_new = msg.prev_index + msg.entries.size();
  if (msg.leader_commit > commit_index_) {
    commit_index_ =
        std::max(commit_index_, std::min(msg.leader_commit, last_new));
  }
  // Followers never deliver: the group floor is driven by the leader,
  // and every replica's committed prefix is identical anyway.
  SendAppendAck(msg.leader, /*success=*/true, last_new);
}

void OrdererReplica::HandleAppendAck(const AppendAckMsg& msg) {
  if (!alive_) return;
  MaybeAdoptTerm(msg.term);
  if (role_ != Role::kLeader || msg.term != current_term_) return;
  size_t follower = static_cast<size_t>(msg.follower);
  if (msg.success) {
    if (msg.match > match_index_[follower]) {
      match_index_[follower] = msg.match;
      next_index_[follower] = msg.match + 1;
      TryAdvanceCommit();
    }
    if (next_index_[follower] <= replicatable_index_) {
      SendAppendEntries(msg.follower);  // keep a lagging follower moving
    }
  } else {
    uint64_t next =
        std::min(next_index_[follower] - 1, msg.match + 1);
    next_index_[follower] = next < 1 ? 1 : next;
    SendAppendEntries(msg.follower);
  }
}

void OrdererReplica::TryAdvanceCommit() {
  // Only entries of the current term may be committed by counting
  // replicas (§5.4.2); earlier entries commit transitively. Scanning
  // down from the newest replicatable entry, everything above the
  // term boundary is own-term.
  uint64_t new_commit = commit_index_;
  for (uint64_t n = replicatable_index_; n > commit_index_; --n) {
    if (TermAt(n) != current_term_) break;
    int count = 1;  // self
    for (size_t i = 0; i < match_index_.size(); ++i) {
      if (static_cast<int>(i) == index_) continue;
      if (match_index_[i] >= n) ++count;
    }
    if (count >= Quorum()) {
      new_commit = n;
      break;
    }
  }
  if (new_commit == commit_index_) return;
  commit_index_ = new_commit;
  AckCommitted();
  group_->DeliverUpTo(this, commit_index_);
}

void OrdererReplica::AckCommitted() {
  for (uint64_t i = last_acked_commit_ + 1; i <= commit_index_; ++i) {
    const RaftLogEntry& entry = log_[i - 1];
    if (entry.block == nullptr) continue;
    for (const Transaction& tx : entry.block->txs) {
      ResolveAck(tx.id, true);
    }
  }
  last_acked_commit_ = commit_index_;
}

void OrdererReplica::ResolveAck(TxId id, bool accepted) {
  auto it = pending_acks_.find(id);
  if (it == pending_acks_.end()) return;
  AckFn ack = std::move(it->second);
  pending_acks_.erase(it);
  if (ack) ack(id, accepted);
}

// --- RaftGroup --------------------------------------------------------

RaftGroup::RaftGroup(Params params)
    : env_(params.env),
      net_(params.net),
      peers_(std::move(params.peers)),
      on_block_cut_(std::move(params.on_block_cut)),
      on_early_abort_(std::move(params.on_early_abort)),
      elections_sink_(params.elections_sink),
      leader_changes_sink_(params.leader_changes_sink) {
  int n = params.num_replicas < 1 ? 1 : params.num_replicas;
  replicas_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    OrdererReplica::Params rp;
    rp.index = i;
    rp.node = params.node_base + i;
    rp.channel = params.channel;
    rp.env = params.env;
    rp.net = params.net;
    rp.group = this;
    rp.cutter = params.cutter;
    rp.block_timeout = params.block_timeout;
    rp.timing = params.timing;
    rp.ordering = params.ordering;
    rp.streaming = params.streaming;
    rp.processor = params.processor;
    if (static_cast<size_t>(i) < params.replica_rngs.size()) {
      rp.rng = std::move(params.replica_rngs[static_cast<size_t>(i)]);
    }
    rp.bootstrap_leader = i == 0;
    replicas_.push_back(std::make_unique<OrdererReplica>(std::move(rp)));
  }
  // The bootstrap leader could not size its per-follower bookkeeping
  // before the group's replica count was final.
  OrdererReplica* boot = replicas_.front().get();
  boot->next_index_.assign(replicas_.size(), 1);
  boot->match_index_.assign(replicas_.size(), 0);
}

uint64_t RaftGroup::txs_received() const {
  uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->txs_received();
  return total;
}

uint64_t RaftGroup::txs_early_aborted() const {
  uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->txs_early_aborted();
  return total;
}

void RaftGroup::DeliverUpTo(OrdererReplica* leader, uint64_t commit_index) {
  while (delivered_index_ < commit_index) {
    ++delivered_index_;
    const RaftLogEntry& entry = leader->EntryAt(delivered_index_);
    if (entry.block == nullptr) continue;
    std::shared_ptr<Block> block = entry.block;
    ++delivered_blocks_;
    if (Tracer* tracer = env_->tracer()) {
      for (uint32_t i = 0; i < block->txs.size(); ++i) {
        tracer->OnBlockCut(block->txs[i].id, block->number, i, env_->now());
      }
    }
    if (on_block_cut_) on_block_cut_(block);
    std::shared_ptr<const Block> const_block = block;
    for (const Orderer::Params::PeerEndpoint& peer : peers_) {
      net_->Send(*env_, leader->node(), peer.node, block->ByteSize(),
                 [deliver = peer.deliver, const_block]() {
                   deliver(const_block);
                 });
    }
  }
}

void RaftGroup::NoteElectionStarted(int replica, uint64_t term) {
  ++elections_started_;
  if (elections_sink_ != nullptr) ++*elections_sink_;
  if (Tracer* tracer = env_->tracer()) {
    tracer->OnRaftEvent("election_started", replica, term, env_->now());
  }
}

void RaftGroup::NoteLeaderElected(int replica, uint64_t term) {
  leader_index_ = replica;
  last_known_leader_ = replica;
  ++leader_changes_;
  if (leader_changes_sink_ != nullptr) ++*leader_changes_sink_;
  if (Tracer* tracer = env_->tracer()) {
    tracer->OnRaftEvent("leader_elected", replica, term, env_->now());
  }
}

void RaftGroup::NoteCrash(int replica) {
  if (leader_index_ == replica) {
    last_known_leader_ = replica;
    leader_index_ = -1;
  }
}

}  // namespace fabricsim
