#include "src/ordering/block_cutter.h"

#include <utility>

namespace fabricsim {

std::vector<std::vector<Transaction>> BlockCutter::AddTransaction(
    Transaction tx) {
  std::vector<std::vector<Transaction>> batches;
  uint64_t tx_bytes = tx.ByteSize();

  if (tx_bytes >= config_.max_bytes) {
    // Oversized message: flush pending, then emit the big one alone.
    if (!pending_.empty()) batches.push_back(CutPending());
    std::vector<Transaction> alone;
    alone.push_back(std::move(tx));
    batches.push_back(std::move(alone));
    return batches;
  }

  if (pending_bytes_ + tx_bytes > config_.max_bytes && !pending_.empty()) {
    batches.push_back(CutPending());
  }

  pending_.push_back(std::move(tx));
  pending_bytes_ += tx_bytes;

  if (pending_.size() >= config_.max_count) {
    batches.push_back(CutPending());
  }
  return batches;
}

std::vector<Transaction> BlockCutter::CutPending() {
  std::vector<Transaction> batch = std::move(pending_);
  pending_.clear();
  pending_bytes_ = 0;
  return batch;
}

}  // namespace fabricsim
