#ifndef FABRICSIM_ORDERING_ORDERER_H_
#define FABRICSIM_ORDERING_ORDERER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/admission/admission.h"
#include "src/common/rng.h"
#include "src/fabric/network_config.h"
#include "src/ledger/block.h"
#include "src/ordering/block_cutter.h"
#include "src/ordering/consensus.h"
#include "src/sim/network.h"
#include "src/sim/work_queue.h"

namespace fabricsim {

/// Variant hook inside the ordering service. Stock Fabric 1.4 uses the
/// default (pass-through) behaviour; Fabric++ plugs in reordering at
/// block cut, FabricSharp plugs in serializability admission control.
class BlockProcessor {
 public:
  virtual ~BlockProcessor() = default;

  /// Called when a transaction reaches the orderer, before it enters
  /// the cutter. Return false to abort it immediately (FabricSharp's
  /// early abort); set *reject_code accordingly.
  virtual bool Admit(const Transaction& tx, TxValidationCode* reject_code) {
    (void)tx;
    (void)reject_code;
    return true;
  }

  /// A transaction dropped during the ordering phase, tagged with the
  /// abort reason (kAbortedByReordering for Fabric++ cycle aborts,
  /// kAbortedNotSerializable for FabricSharp).
  using EarlyAbort = std::pair<Transaction, TxValidationCode>;

  /// Called once the block content is fixed, before delivery. May
  /// reorder block->txs, pre-mark block->results (size must match
  /// txs), and remove transactions from the block entirely by moving
  /// them into *early_aborted — both Fabric++ and FabricSharp abort in
  /// the ordering phase, so such transactions never reach the ledger.
  /// Returns extra ordering service time this processing costs.
  virtual SimTime OnBlockCut(Block* block,
                             std::vector<EarlyAbort>* early_aborted) {
    (void)block;
    (void)early_aborted;
    return 0;
  }
};

/// The ordering service (flow steps 4–5), modelled as its Kafka/Raft
/// leader: ingress per-transaction handling, block cutting by
/// size/bytes/timeout, consensus latency, and per-peer delivery over
/// the network. Ingress and block assembly/egress share one serial
/// work queue, which is what saturates under Streamchain's
/// one-transaction-per-block streaming.
class Orderer {
 public:
  struct Params {
    NodeId node = 0;
    /// Channel this ordering pipeline serves: stamped on every block
    /// it cuts. One Orderer instance exists per channel, all sharing
    /// the same orderer node id (one ordering *service*, one cutter
    /// per channel — exactly Fabric's layout).
    ChannelId channel = 0;
    Environment* env = nullptr;
    Network* net = nullptr;
    BlockCutter::Config cutter;
    SimTime block_timeout = 2 * kSecond;
    TimingConfig timing;
    /// Defaults derive from the cluster/timing presets (3 orderers,
    /// 4 ms Kafka round trip) instead of repeating the literals here —
    /// a changed ClusterConfig default can't silently diverge from the
    /// consensus layer.
    ConsensusModel consensus{ClusterConfig().num_orderers,
                             TimingConfig().consensus_latency};
    Rng rng{1, 1};
    /// When true, every transaction is cut into its own block
    /// immediately (Streamchain).
    bool streaming = false;
    BlockProcessor* processor = nullptr;  // may be null
    /// Delivery targets: node ids + block handlers of all peers.
    struct PeerEndpoint {
      NodeId node;
      std::function<void(std::shared_ptr<const Block>)> deliver;
    };
    std::vector<PeerEndpoint> peers;
    /// Invoked when the canonical block is cut (used by the harness to
    /// retain block ownership for the global ledger).
    std::function<void(std::shared_ptr<Block>)> on_block_cut;
    /// Invoked when a transaction is early-aborted at the orderer.
    std::function<void(const Transaction&, TxValidationCode)> on_early_abort;
    /// Overload protection (src/admission): bounded broadcast ingress
    /// and deadline drops. Null = legacy unbounded ingress.
    const AdmissionConfig* admission = nullptr;
    AdmissionStats* admission_stats = nullptr;
  };

  explicit Orderer(Params params);

  /// Handles a transaction submitted by a client (already delivered
  /// through the network).
  void SubmitTransaction(Transaction tx);

  /// Backpressure-aware submission: when the bounded broadcast ingress
  /// is full, the envelope is rejected and `on_throttle` is invoked
  /// (the client routes it back over the network as an explicit
  /// throttle signal). With no admission bound configured this is
  /// exactly SubmitTransaction.
  void SubmitTransaction(Transaction tx, const std::function<void()>& on_throttle);

  /// Envelopes rejected by the bounded ingress.
  uint64_t txs_throttled() const { return txs_throttled_; }
  /// Envelopes dropped at ingress because their deadline had passed.
  uint64_t txs_deadline_dropped() const { return txs_deadline_dropped_; }

  /// Fault injection: the ordering service stops processing. Arriving
  /// envelopes are buffered at ingress (clients see no error, only
  /// latency — a Raft leader election or Kafka hiccup); block cutting
  /// and timeouts are suspended. Work already on the serial queue
  /// drains.
  void Pause();

  /// Ends a pause: buffered envelopes are flushed in arrival order and
  /// the batch timeout is re-armed if the cutter holds transactions.
  void Resume();

  bool paused() const { return paused_; }

  uint64_t blocks_cut() const { return next_block_number_ - 1; }
  uint64_t txs_received() const { return txs_received_; }
  uint64_t txs_early_aborted() const { return txs_early_aborted_; }
  /// Envelopes that arrived during a pause and waited for the resume.
  uint64_t txs_deferred_while_paused() const {
    return txs_deferred_while_paused_;
  }
  const WorkQueue& queue() const { return queue_; }

 private:
  void Ingest(Transaction tx);
  void HandleAdmitted(Transaction tx);
  void CutBlock(std::vector<Transaction> txs, BlockCutReason reason);
  void ArmTimeout();

  NodeId node_;
  ChannelId channel_;
  Environment* env_;
  Network* net_;
  BlockCutter cutter_;
  SimTime block_timeout_;
  TimingConfig timing_;
  ConsensusModel consensus_;
  Rng rng_;
  bool streaming_;
  BlockProcessor* processor_;
  std::vector<Params::PeerEndpoint> peers_;
  std::function<void(std::shared_ptr<Block>)> on_block_cut_;
  std::function<void(const Transaction&, TxValidationCode)> on_early_abort_;
  const AdmissionConfig* admission_ = nullptr;
  AdmissionStats* admission_stats_ = nullptr;

  WorkQueue queue_;
  uint64_t next_block_number_ = 1;
  uint64_t txs_received_ = 0;
  uint64_t txs_early_aborted_ = 0;
  uint64_t timeout_generation_ = 0;
  bool timeout_armed_ = false;
  bool paused_ = false;
  std::vector<Transaction> paused_backlog_;
  uint64_t txs_deferred_while_paused_ = 0;
  uint64_t txs_throttled_ = 0;
  uint64_t txs_deadline_dropped_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_ORDERING_ORDERER_H_
