#include "src/ordering/orderer.h"

#include <utility>

#include "src/obs/tracer.h"
#include "src/sim/environment.h"

namespace fabricsim {

Orderer::Orderer(Params params)
    : node_(params.node),
      channel_(params.channel),
      env_(params.env),
      net_(params.net),
      cutter_(params.cutter),
      block_timeout_(params.block_timeout),
      timing_(params.timing),
      consensus_(params.consensus),
      rng_(std::move(params.rng)),
      streaming_(params.streaming),
      processor_(params.processor),
      peers_(std::move(params.peers)),
      on_block_cut_(std::move(params.on_block_cut)),
      on_early_abort_(std::move(params.on_early_abort)),
      queue_("orderer") {
  if (params.admission != nullptr && params.admission->enabled()) {
    admission_ = params.admission;
    admission_stats_ = params.admission_stats;
  }
}

void Orderer::SubmitTransaction(Transaction tx) {
  ++txs_received_;
  if (Tracer* tracer = env_->tracer()) {
    tracer->OnOrdererEnqueue(tx.id, env_->now());
  }
  if (paused_) {
    ++txs_deferred_while_paused_;
    paused_backlog_.push_back(std::move(tx));
    return;
  }
  Ingest(std::move(tx));
}

void Orderer::SubmitTransaction(Transaction tx,
                                const std::function<void()>& on_throttle) {
  // Backpressure applies at the broadcast boundary only: a paused
  // orderer still buffers silently (the client sees latency, not an
  // error — exactly the legacy pause semantics).
  if (admission_ != nullptr && admission_->max_orderer_queue_depth > 0 &&
      !paused_ &&
      queue_.depth() >= static_cast<size_t>(
                            admission_->max_orderer_queue_depth)) {
    ++txs_throttled_;
    if (admission_stats_ != nullptr) ++admission_stats_->orderer_throttled;
    if (on_throttle) on_throttle();
    return;
  }
  SubmitTransaction(std::move(tx));
}

void Orderer::Pause() { paused_ = true; }

void Orderer::Resume() {
  if (!paused_) return;
  paused_ = false;
  std::vector<Transaction> backlog = std::move(paused_backlog_);
  paused_backlog_.clear();
  for (Transaction& tx : backlog) Ingest(std::move(tx));
  // A timeout that fired mid-pause was swallowed; transactions batched
  // before the pause must not wait forever.
  if (cutter_.HasPending() && !timeout_armed_) ArmTimeout();
}

void Orderer::Ingest(Transaction tx) {
  auto shared_tx = std::make_shared<Transaction>(std::move(tx));
  queue_.Submit(
      *env_, [this]() -> SimTime { return timing_.orderer_per_tx_cost; },
      [this, shared_tx]() {
        if (shared_tx->deadline > 0 && env_->now() > shared_tx->deadline) {
          // The client stopped caring while the envelope queued at
          // ingress: drop it before it occupies a block slot and a
          // validation pass on every peer.
          ++txs_deadline_dropped_;
          if (admission_stats_ != nullptr) {
            ++admission_stats_->deadline_expired_order;
          }
          if (Tracer* tracer = env_->tracer()) {
            tracer->OnAdmissionDrop(shared_tx->id,
                                    TraceTerminal::kDeadlineExpired,
                                    TxValidationCode::kDeadlineExpiredOrder,
                                    env_->now());
          }
          return;
        }
        TxValidationCode reject_code = TxValidationCode::kNotValidated;
        if (processor_ != nullptr &&
            !processor_->Admit(*shared_tx, &reject_code)) {
          ++txs_early_aborted_;
          if (Tracer* tracer = env_->tracer()) {
            tracer->OnEarlyAbort(shared_tx->id, reject_code, env_->now());
          }
          if (on_early_abort_) on_early_abort_(*shared_tx, reject_code);
          return;
        }
        HandleAdmitted(std::move(*shared_tx));
      });
}

void Orderer::HandleAdmitted(Transaction tx) {
  if (streaming_) {
    // Streamchain: no batching — every transaction streams through as
    // its own unit.
    std::vector<Transaction> single;
    single.push_back(std::move(tx));
    CutBlock(std::move(single), BlockCutReason::kStreaming);
    return;
  }
  uint32_t max_count = cutter_.config().max_count;
  for (std::vector<Transaction>& batch : cutter_.AddTransaction(std::move(tx))) {
    BlockCutReason reason = batch.size() >= max_count
                                ? BlockCutReason::kMaxCount
                                : BlockCutReason::kMaxBytes;
    ++timeout_generation_;  // cancel any armed timeout
    timeout_armed_ = false;
    CutBlock(std::move(batch), reason);
  }
  if (cutter_.HasPending() && !timeout_armed_) ArmTimeout();
}

void Orderer::ArmTimeout() {
  timeout_armed_ = true;
  uint64_t generation = timeout_generation_;
  env_->Schedule(block_timeout_, [this, generation]() {
    if (generation != timeout_generation_) return;  // cancelled by a cut
    timeout_armed_ = false;
    ++timeout_generation_;
    if (paused_) return;  // swallowed; Resume() re-arms if needed
    if (cutter_.HasPending()) {
      CutBlock(cutter_.CutPending(), BlockCutReason::kTimeout);
    }
  });
}

void Orderer::CutBlock(std::vector<Transaction> txs, BlockCutReason reason) {
  auto block = std::make_shared<Block>();
  // The number is provisional until the cut is known to deliver (the
  // block processor may abort every transaction): delivered numbers
  // must stay dense and monotone, so the counter only advances for
  // blocks that actually ship.
  block->number = next_block_number_;
  block->channel = channel_;
  block->cut_time = env_->now();
  block->cut_reason = reason;
  block->txs = std::move(txs);
  for (Transaction& tx : block->txs) tx.ordered_time = env_->now();
  block->results.assign(block->txs.size(), TxValidationResult{});

  SimTime processor_cost = 0;
  if (processor_ != nullptr) {
    std::vector<BlockProcessor::EarlyAbort> early_aborted;
    processor_cost = processor_->OnBlockCut(block.get(), &early_aborted);
    txs_early_aborted_ += early_aborted.size();
    if (Tracer* tracer = env_->tracer()) {
      for (const BlockProcessor::EarlyAbort& abort : early_aborted) {
        tracer->OnEarlyAbort(abort.first.id, abort.second, env_->now());
      }
    }
    if (on_early_abort_) {
      for (const BlockProcessor::EarlyAbort& abort : early_aborted) {
        on_early_abort_(abort.first, abort.second);
      }
    }
    if (block->txs.empty()) {
      return;  // everything aborted at the cut; no number consumed
    }
  }
  ++next_block_number_;

  if (Tracer* tracer = env_->tracer()) {
    for (uint32_t i = 0; i < block->txs.size(); ++i) {
      tracer->OnBlockCut(block->txs[i].id, block->number, i, env_->now());
    }
  }

  if (on_block_cut_) on_block_cut_(block);

  // Block assembly, signing and per-peer egress occupy the orderer's
  // serial queue; consensus agreement is pipelined on top.
  SimTime assembly = timing_.orderer_per_block_cost + processor_cost +
                     static_cast<SimTime>(peers_.size()) *
                         timing_.orderer_per_msg_cost;
  SimTime consensus_latency = consensus_.SampleLatency(rng_);
  queue_.Submit(
      *env_, [assembly]() -> SimTime { return assembly; },
      [this, block, consensus_latency]() {
        env_->Schedule(consensus_latency, [this, block]() {
          for (const Params::PeerEndpoint& peer : peers_) {
            net_->Send(*env_, node_, peer.node, block->ByteSize(),
                       [deliver = peer.deliver, block]() { deliver(block); });
          }
        });
      });
}

}  // namespace fabricsim
