#ifndef FABRICSIM_ORDERING_BLOCK_CUTTER_H_
#define FABRICSIM_ORDERING_BLOCK_CUTTER_H_

#include <cstdint>
#include <vector>

#include "src/ledger/transaction.h"

namespace fabricsim {

/// Pure block-cutting logic, mirroring Fabric's orderer batch cutter:
/// a batch is emitted when (a) it reaches `max_count` transactions,
/// (b) accumulated payload reaches `max_bytes`, or (c) the batch
/// timeout fires (driven by the caller via CutPending). An oversized
/// transaction first flushes the pending batch, then goes out alone —
/// the same corner case Fabric handles.
class BlockCutter {
 public:
  struct Config {
    uint32_t max_count = 100;
    uint64_t max_bytes = 100ull << 20;
  };

  explicit BlockCutter(Config config) : config_(config) {}

  /// Adds a transaction; returns zero or more complete batches that
  /// must be cut now, in order.
  std::vector<std::vector<Transaction>> AddTransaction(Transaction tx);

  /// Cuts whatever is pending (timeout path). May be empty.
  std::vector<Transaction> CutPending();

  bool HasPending() const { return !pending_.empty(); }
  size_t pending_count() const { return pending_.size(); }
  uint64_t pending_bytes() const { return pending_bytes_; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<Transaction> pending_;
  uint64_t pending_bytes_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_ORDERING_BLOCK_CUTTER_H_
