#ifndef FABRICSIM_ORDERING_CONSENSUS_H_
#define FABRICSIM_ORDERING_CONSENSUS_H_

#include "src/common/rng.h"
#include "src/common/sim_time.h"

namespace fabricsim {

/// Latency model of the replicated ordering service (the paper uses
/// Kafka; Fabric 1.4 also ships Raft). Consensus is pipelined, so it
/// adds delivery delay without occupying the orderer's serial
/// resources: one produce/consume round trip to the cluster plus
/// jitter, growing mildly with the replica count.
class ConsensusModel {
 public:
  ConsensusModel(int num_orderers, SimTime base_latency)
      : num_orderers_(num_orderers < 1 ? 1 : num_orderers),
        base_latency_(base_latency) {}

  /// Per-block agreement latency sample.
  SimTime SampleLatency(Rng& rng) const {
    double extra = 0.15 * static_cast<double>(num_orderers_ - 1);
    double base = static_cast<double>(base_latency_) * (1.0 + extra);
    return static_cast<SimTime>(rng.UniformRange(base * 0.8, base * 1.2));
  }

  int num_orderers() const { return num_orderers_; }

 private:
  int num_orderers_;
  SimTime base_latency_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_ORDERING_CONSENSUS_H_
