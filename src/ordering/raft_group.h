#ifndef FABRICSIM_ORDERING_RAFT_GROUP_H_
#define FABRICSIM_ORDERING_RAFT_GROUP_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/fabric/network_config.h"
#include "src/ledger/block.h"
#include "src/ordering/block_cutter.h"
#include "src/ordering/orderer.h"
#include "src/sim/network.h"
#include "src/sim/work_queue.h"

namespace fabricsim {

class RaftGroup;

/// One slot of the replicated block log. `block == nullptr` marks a
/// leadership no-op barrier (Raft §5.4.2: a fresh leader commits one
/// entry of its own term to learn which inherited entries are
/// committed); block numbers are dense over the non-no-op entries.
struct RaftLogEntry {
  std::shared_ptr<Block> block;
  uint64_t term = 0;
};

/// Raft control-plane messages between orderer replicas. They travel
/// through the simulated Network like any other traffic, so partitions,
/// link loss and delay windows apply to consensus as well.
struct AppendEntriesMsg {
  uint64_t term = 0;
  int leader = 0;
  uint64_t prev_index = 0;  ///< log index immediately before `entries`
  uint64_t prev_term = 0;
  std::vector<RaftLogEntry> entries;  ///< empty = heartbeat
  uint64_t leader_commit = 0;
};

struct AppendAckMsg {
  uint64_t term = 0;
  int follower = 0;
  bool success = false;
  /// On success: highest index now known replicated on the follower.
  /// On failure: the follower's best hint for where logs still match
  /// (min(own log length, prev_index - 1)), so the leader can skip the
  /// one-at-a-time backoff.
  uint64_t match = 0;
};

struct RequestVoteMsg {
  uint64_t term = 0;
  int candidate = 0;
  uint64_t last_index = 0;
  uint64_t last_term = 0;
};

struct VoteReplyMsg {
  uint64_t term = 0;
  int voter = 0;
  bool granted = false;
};

/// One ordering-service replica: the ingress/cutting half mirrors the
/// legacy Orderer (serial work queue, BlockCutter, batch timeout with
/// generation-guarded cancellation, pause/resume), the consensus half
/// is Raft — randomized election timeouts drawn from this replica's own
/// seeded RNG stream, leader-based log replication, and quorum commit.
/// Only the current leader ingests client envelopes and cuts blocks;
/// envelopes hitting a follower or a crashed replica vanish silently,
/// exactly like gRPC against a dead orderer, and the client recovers
/// through its ack-timeout rebroadcast.
class OrdererReplica {
 public:
  enum class Role { kFollower, kCandidate, kLeader };

  /// Client ack callback: invoked once the transaction's block is
  /// quorum-committed (accepted=true) or the transaction was
  /// early-aborted at ordering (accepted=false, it will never commit).
  using AckFn = std::function<void(TxId, bool accepted)>;

  struct Params {
    int index = 0;
    NodeId node = 0;
    /// Channel this replica's log orders; stamped on every cut block.
    ChannelId channel = 0;
    Environment* env = nullptr;
    Network* net = nullptr;
    RaftGroup* group = nullptr;
    BlockCutter::Config cutter;
    SimTime block_timeout = 2 * kSecond;
    TimingConfig timing;
    OrderingConfig ordering;
    Rng rng{1, 1};
    bool streaming = false;
    BlockProcessor* processor = nullptr;  // shared; only the leader calls it
    /// Bootstrap role: replica 0 starts as the term-1 leader so a
    /// healthy run needs no startup election.
    bool bootstrap_leader = false;
  };

  explicit OrdererReplica(Params params);

  /// Client ingress. The ack fires when the transaction's block is
  /// quorum-committed; re-broadcasts of an already-logged transaction
  /// are deduplicated by id (an already-committed one is re-acked
  /// immediately — the first ack may have been lost).
  void SubmitTransaction(Transaction tx, AckFn ack);

  // --- Raft message handlers (invoked via network delivery) ----------
  void HandleAppendEntries(const AppendEntriesMsg& msg);
  void HandleAppendAck(const AppendAckMsg& msg);
  void HandleRequestVote(const RequestVoteMsg& msg);
  void HandleVoteReply(const VoteReplyMsg& msg);

  // --- fault hooks ----------------------------------------------------
  /// Crash-stop: volatile state (cutter contents, pending client acks,
  /// pause backlog) is lost; the replicated log, current term, vote and
  /// commit index survive, modelling Raft's stable storage.
  void Crash();
  /// Restarts a crashed replica as a follower; it catches up through
  /// the leader's regular AppendEntries probing.
  void Restart();
  /// Legacy-compatible hiccup: ingress buffers, cutting suspends, but
  /// heartbeats keep flowing (the process is alive), so no election.
  void Pause();
  void Resume();

  // --- queries --------------------------------------------------------
  bool alive() const { return alive_; }
  bool paused() const { return paused_; }
  Role role() const { return role_; }
  int index() const { return index_; }
  NodeId node() const { return node_; }
  uint64_t current_term() const { return current_term_; }
  uint64_t commit_index() const { return commit_index_; }
  uint64_t log_size() const { return log_.size(); }
  uint64_t blocks_cut() const { return blocks_cut_; }
  uint64_t txs_received() const { return txs_received_; }
  uint64_t txs_early_aborted() const { return txs_early_aborted_; }
  /// Envelopes dropped because this replica was not the leader (or was
  /// down) when they arrived — the client's rebroadcast signal.
  uint64_t txs_dropped_not_leader() const { return txs_dropped_not_leader_; }
  uint64_t txs_deferred_while_paused() const {
    return txs_deferred_while_paused_;
  }
  const WorkQueue& queue() const { return queue_; }

  /// 1-based log access for the group's delivery scan.
  const RaftLogEntry& EntryAt(uint64_t index) const {
    return log_[index - 1];
  }

 private:
  friend class RaftGroup;

  uint64_t LastIndex() const { return log_.size(); }
  uint64_t TermAt(uint64_t index) const {
    return index == 0 ? 0 : log_[index - 1].term;
  }
  int Quorum() const;

  void Ingest(Transaction tx);
  void HandleAdmitted(Transaction tx);
  void CutBlock(std::vector<Transaction> txs, BlockCutReason reason);
  void ArmTimeout();
  void ArmElectionTimer();
  void ArmHeartbeat();
  void StartElection();
  void BecomeLeader();
  /// Adopts a higher term seen in any message: step down to follower,
  /// clear the vote. A deposed leader loses its volatile ingress state
  /// (cutter contents, pending acks) — clients recover via rebroadcast.
  void MaybeAdoptTerm(uint64_t term);
  /// Drops everything a real process would lose on crash/deposition:
  /// cutter contents, queued ingress, pause backlog, pending acks.
  void ClearVolatileIngress();
  /// Appends an entry received from the leader (follower side).
  void AppendReplicatedEntry(const RaftLogEntry& entry);
  void TruncateFrom(uint64_t index);
  void BroadcastAppendEntries();
  void SendAppendEntries(int follower);
  void SendAppendAck(int leader, bool success, uint64_t match);
  void TryAdvanceCommit();
  void AckCommitted();
  /// Invokes and removes the pending ack for `id`, if any.
  void ResolveAck(TxId id, bool accepted);

  int index_;
  NodeId node_;
  ChannelId channel_;
  Environment* env_;
  Network* net_;
  RaftGroup* group_;
  BlockCutter cutter_;
  SimTime block_timeout_;
  TimingConfig timing_;
  OrderingConfig ordering_;
  Rng rng_;
  bool streaming_;
  BlockProcessor* processor_;

  WorkQueue queue_;

  // --- Raft state (survives Crash(), i.e. stable storage) -------------
  uint64_t current_term_ = 1;
  int voted_for_ = -1;
  std::vector<RaftLogEntry> log_;
  uint64_t commit_index_ = 0;
  /// Non-no-op entries in log_ — the next cut block gets number
  /// block_count_ + 1, keeping delivered numbers dense.
  uint64_t block_count_ = 0;
  /// tx id -> log index, for rebroadcast deduplication.
  std::unordered_map<TxId, uint64_t> tx_log_index_;

  // --- volatile state -------------------------------------------------
  Role role_ = Role::kFollower;
  bool alive_ = true;
  int votes_received_ = 0;
  std::vector<uint64_t> next_index_;   // leader only
  std::vector<uint64_t> match_index_;  // leader only
  /// Entries at index <= this are fully assembled (signed, serialized)
  /// and may be shipped to followers / counted for commit. A leader's
  /// freshly cut block only becomes replicatable when its assembly
  /// task finishes on the serial queue.
  uint64_t replicatable_index_ = 0;
  uint64_t election_generation_ = 0;
  uint64_t heartbeat_generation_ = 0;
  uint64_t last_acked_commit_ = 0;
  std::unordered_map<TxId, AckFn> pending_acks_;
  /// Transactions accepted at ingress but not yet in the log (queued on
  /// the work queue or sitting in the cutter) — rebroadcast dedup.
  std::unordered_set<TxId> pending_ingress_;

  // --- cutter state (mirrors Orderer) ---------------------------------
  /// Bumped on crash/deposition so queued ingress tasks of the old
  /// incarnation die instead of cutting into the wrong term.
  uint64_t ingress_generation_ = 0;
  uint64_t timeout_generation_ = 0;
  bool timeout_armed_ = false;
  bool paused_ = false;
  std::vector<Transaction> paused_backlog_;

  // --- counters -------------------------------------------------------
  uint64_t txs_received_ = 0;
  uint64_t txs_early_aborted_ = 0;
  uint64_t txs_dropped_not_leader_ = 0;
  uint64_t txs_deferred_while_paused_ = 0;
  uint64_t blocks_cut_ = 0;
};

/// The replicated ordering service: owns N OrdererReplica actors, the
/// shared delivery edge to the peers, and the group-wide delivered
/// floor that guarantees each committed block is handed to the fabric
/// exactly once (and in order) no matter how leadership moves.
class RaftGroup {
 public:
  struct Params {
    Environment* env = nullptr;
    Network* net = nullptr;
    /// Channel this group orders (one Raft group per channel; all
    /// groups share the same orderer node ids).
    ChannelId channel = 0;
    int num_replicas = 3;
    NodeId node_base = 0;  ///< replica i gets node id node_base + i
    BlockCutter::Config cutter;
    SimTime block_timeout = 2 * kSecond;
    TimingConfig timing;
    OrderingConfig ordering;
    bool streaming = false;
    BlockProcessor* processor = nullptr;
    /// One pre-forked RNG per replica (harness forks streams 3000+i).
    std::vector<Rng> replica_rngs;
    /// Delivery targets, identical to the legacy Orderer's endpoints.
    std::vector<Orderer::Params::PeerEndpoint> peers;
    std::function<void(std::shared_ptr<Block>)> on_block_cut;
    std::function<void(const Transaction&, TxValidationCode)> on_early_abort;
    /// Optional counters inside the harness RunStats.
    uint64_t* elections_sink = nullptr;
    uint64_t* leader_changes_sink = nullptr;
  };

  explicit RaftGroup(Params params);

  int size() const { return static_cast<int>(replicas_.size()); }
  OrdererReplica* replica(int i) { return replicas_[static_cast<size_t>(i)].get(); }
  const OrdererReplica* replica(int i) const {
    return replicas_[static_cast<size_t>(i)].get();
  }

  /// Current leader replica index, or -1 during an election.
  int leader_index() const { return leader_index_; }
  /// Last replica known to lead (for leader-targeted faults fired while
  /// an election is in progress).
  int last_known_leader() const { return last_known_leader_; }

  uint64_t delivered_blocks() const { return delivered_blocks_; }
  uint64_t elections_started() const { return elections_started_; }
  /// Leadership handovers after bootstrap.
  uint64_t leader_changes() const { return leader_changes_; }

  /// Sum of txs received across replicas (leader ingress only counts
  /// once; rebroadcast duplicates are deduplicated at the replica).
  uint64_t txs_received() const;
  uint64_t txs_early_aborted() const;
  uint64_t blocks_cut() const { return delivered_blocks_; }

 private:
  friend class OrdererReplica;

  /// Delivers every committed-but-undelivered entry of `leader`'s log
  /// to the peers, advancing the group floor. Log-matching + the
  /// election restriction guarantee any leader's committed prefix is
  /// identical, so the floor makes delivery exactly-once and in-order
  /// across failovers.
  void DeliverUpTo(OrdererReplica* leader, uint64_t commit_index);
  void NoteElectionStarted(int replica, uint64_t term);
  void NoteLeaderElected(int replica, uint64_t term);
  void NoteCrash(int replica);

  Environment* env_;
  Network* net_;
  std::vector<Orderer::Params::PeerEndpoint> peers_;
  std::function<void(std::shared_ptr<Block>)> on_block_cut_;
  std::function<void(const Transaction&, TxValidationCode)> on_early_abort_;
  uint64_t* elections_sink_;
  uint64_t* leader_changes_sink_;

  std::vector<std::unique_ptr<OrdererReplica>> replicas_;
  uint64_t delivered_index_ = 0;   ///< log index floor
  uint64_t delivered_blocks_ = 0;  ///< block number floor
  int leader_index_ = 0;
  int last_known_leader_ = 0;
  uint64_t elections_started_ = 0;
  uint64_t leader_changes_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_ORDERING_RAFT_GROUP_H_
