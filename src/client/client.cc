#include "src/client/client.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/obs/tracer.h"

namespace fabricsim {

Client::Client(Params params) : p_(std::move(params)) {}

void Client::Start() { ScheduleNextArrival(); }

void Client::ScheduleNextArrival() {
  double mean_us = 1e6 / p_.arrival_rate_tps;
  SimTime gap = static_cast<SimTime>(p_.rng.Exponential(mean_us));
  if (gap < 1) gap = 1;
  p_.env->Schedule(gap, [this]() {
    if (p_.env->now() > p_.load_end_time) return;  // load phase over
    SubmitOne();
    ScheduleNextArrival();
  });
}

void Client::SubmitOne() {
  TxId tx_id = ++(*p_.tx_id_counter);
  ++p_.stats->txs_generated;

  PendingTx pending;
  pending.invocation = p_.workload->Next(p_.rng);
  pending.submit_time = p_.env->now();
  if (Tracer* tracer = p_.env->tracer()) {
    tracer->OnClientSubmit(tx_id, pending.invocation.function, p_.env->now());
  }

  // One endorsing peer per organization of a minimal policy-
  // satisfying set (service-discovery style), round-robin within the
  // org (flow step 1). For P0 (all orgs) this is every organization.
  std::vector<Peer*> targets;
  for (OrgId org : p_.policy->ChooseSatisfyingOrgs(round_robin_)) {
    const std::vector<Peer*>& org_peers =
        p_.peers_by_org[static_cast<size_t>(org)];
    if (org_peers.empty()) continue;
    targets.push_back(org_peers[round_robin_ % org_peers.size()]);
  }
  ++round_robin_;
  pending.expected = targets.size();
  in_flight_.emplace(tx_id, std::move(pending));

  for (Peer* peer : targets) {
    ProposalRequest request;
    request.tx_id = tx_id;
    request.invocation = in_flight_[tx_id].invocation;
    NodeId peer_node = peer->node();
    if (Tracer* tracer = p_.env->tracer()) {
      tracer->OnEndorseRequest(tx_id, peer->id(), peer->org(), p_.env->now());
    }
    request.reply = [this, peer_node](const ProposalResponse& response) {
      uint64_t bytes = response.rwset.ByteSize() + 96;
      // Large rw-sets (DV/SCM range scans) make responses heavy; ship
      // one copy through the network callback.
      auto shared = std::make_shared<ProposalResponse>(response);
      p_.net->Send(*p_.env, peer_node, p_.node, bytes,
                   [this, shared]() { OnEndorsement(std::move(*shared)); });
    };
    p_.net->Send(*p_.env, p_.node, peer_node, 300,
                 [peer, request = std::move(request)]() mutable {
                   peer->HandleProposal(std::move(request));
                 });
  }
}

void Client::OnEndorsement(ProposalResponse response) {
  auto it = in_flight_.find(response.tx_id);
  if (it == in_flight_.end()) return;
  if (Tracer* tracer = p_.env->tracer()) {
    tracer->OnEndorseResponse(response.tx_id, response.endorsement.peer_id,
                              p_.env->now());
  }
  it->second.responses.push_back(std::move(response));
  if (it->second.responses.size() < it->second.expected) return;
  PendingTx pending = std::move(it->second);
  TxId tx_id = it->first;
  in_flight_.erase(it);
  FinalizeTx(tx_id, std::move(pending));
}

void Client::FinalizeTx(TxId tx_id, PendingTx pending) {
  // Any chaincode-level error response makes the client drop the
  // transaction (it can never gather a valid endorsement set).
  for (const ProposalResponse& r : pending.responses) {
    if (!r.app_ok) {
      ++p_.stats->app_errors;
      if (Tracer* tracer = p_.env->tracer()) {
        tracer->OnClientDrop(tx_id, TraceTerminal::kAppError, p_.env->now());
      }
      return;
    }
  }

  // Pick the largest digest-consistent endorsement group and attach
  // that group's rw-set as the envelope payload. The paper's default
  // flow skips the optional client-side consistency check (step 3), so
  // mismatching signatures travel along and fail VSCC later.
  std::map<uint64_t, size_t> group_counts;
  for (const ProposalResponse& r : pending.responses) {
    group_counts[r.endorsement.rwset_digest]++;
  }
  uint64_t best_digest = 0;
  size_t best_count = 0;
  for (const ProposalResponse& r : pending.responses) {
    size_t count = group_counts[r.endorsement.rwset_digest];
    if (count > best_count) {
      best_count = count;
      best_digest = r.endorsement.rwset_digest;
    }
  }

  Transaction tx;
  tx.id = tx_id;
  tx.chaincode = p_.workload->chaincode();
  tx.function = pending.invocation.function;
  tx.args = pending.invocation.args;
  tx.client_submit_time = pending.submit_time;
  tx.endorsed_time = p_.env->now();
  bool rwset_attached = false;
  for (ProposalResponse& r : pending.responses) {
    if (!rwset_attached && r.endorsement.rwset_digest == best_digest) {
      tx.rwset = std::move(r.rwset);
      rwset_attached = true;
    }
    tx.endorsements.push_back(r.endorsement);
  }
  tx.read_only = tx.rwset.IsReadOnly();
  if (Tracer* tracer = p_.env->tracer()) {
    tracer->OnEndorsed(tx_id, tx.read_only, p_.env->now());
  }

  if (tx.read_only && !p_.submit_read_only) {
    // Recommendation #4: the query result is already known after the
    // execution phase; skip ordering.
    ++p_.stats->read_only_skipped;
    if (Tracer* tracer = p_.env->tracer()) {
      tracer->OnClientDrop(tx_id, TraceTerminal::kReadOnlySkipped,
                           p_.env->now());
    }
    return;
  }

  ++p_.stats->txs_submitted;
  SimTime collect_cost =
      p_.timing.client_collect_cost *
      static_cast<SimTime>(pending.responses.size());
  uint64_t bytes = tx.ByteSize();
  auto shared_tx = std::make_shared<Transaction>(std::move(tx));
  p_.env->Schedule(collect_cost, [this, shared_tx, bytes]() {
    p_.net->Send(*p_.env, p_.node, p_.orderer_node, bytes,
                 [this, shared_tx]() {
                   p_.orderer->SubmitTransaction(std::move(*shared_tx));
                 });
  });
}

}  // namespace fabricsim
