#include "src/client/client.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>

#include "src/obs/tracer.h"

namespace fabricsim {

Client::Client(Params params) : p_(std::move(params)) {
  // A disabled config is treated as absent, so harnesses may plumb the
  // pointer unconditionally without engaging any protection path.
  if (p_.admission != nullptr && !p_.admission->enabled()) {
    p_.admission = nullptr;
  }
  if (p_.admission != nullptr) {
    if (p_.admission->breaker.enabled) {
      breaker_.emplace(p_.admission->breaker, p_.admission_stats);
    }
    if (p_.admission->retry_budget.enabled) {
      retry_budget_.emplace(p_.admission->retry_budget);
    }
  }
}

void Client::Start() { ScheduleNextArrival(); }

void Client::RecordOutcomeSuccess() {
  if (breaker_.has_value()) breaker_->RecordSuccess(p_.env->now());
}

void Client::RecordOutcomeFailure() {
  if (breaker_.has_value()) breaker_->RecordFailure(p_.env->now());
}

void Client::ScheduleNextArrival() {
  double mean_us = 1e6 / p_.arrival_rate_tps;
  // Round the exponential draw to the nearest tick. Truncating it
  // (the old static_cast) floored every gap, which at high per-client
  // rates (mean gap of a few ticks) inflated the effective arrival
  // rate by ~10% and piled same-timestamp submissions; rounding is
  // unbiased to within half a tick. The >= 1 clamp keeps arrivals
  // strictly ordered.
  SimTime gap = static_cast<SimTime>(std::llround(p_.rng.Exponential(mean_us)));
  if (gap < 1) gap = 1;
  p_.env->Schedule(gap, [this]() {
    if (p_.env->now() > p_.load_end_time) return;  // load phase over
    SubmitOne();
    ScheduleNextArrival();
  });
}

void Client::SubmitOne() {
  if (breaker_.has_value() && !breaker_->AllowSubmit(p_.env->now())) {
    // Open breaker: the submission is suppressed at the source — the
    // cheapest place to shed load. No transaction id is consumed (the
    // proposal never exists anywhere downstream).
    if (p_.admission_stats != nullptr) {
      ++p_.admission_stats->breaker_rejected;
    }
    return;
  }
  TxId tx_id = ++(*p_.tx_id_counter);
  ++p_.stats->txs_generated;
  // The channel draw precedes the invocation draw; with one visible
  // channel Pick() consumes no randomness, so single-channel runs see
  // the exact legacy RNG stream.
  ChannelId channel = p_.affinity.Pick(p_.rng);
  Submit(tx_id, p_.workload->Next(p_.rng), /*resubmit_count=*/0, channel);
}

void Client::Submit(TxId tx_id, Invocation invocation, int resubmit_count,
                    ChannelId channel) {
  PendingTx pending;
  pending.invocation = std::move(invocation);
  pending.channel = channel;
  pending.submit_time = p_.env->now();
  pending.rr_base = round_robin_;
  pending.resubmit_count = resubmit_count;
  if (p_.admission != nullptr && p_.admission->deadlines_enabled()) {
    pending.deadline = p_.env->now() + p_.admission->tx_deadline;
  }
  if (retry_budget_.has_value() && resubmit_count == 0) {
    retry_budget_->OnSubmit();
  }
  if (Tracer* tracer = p_.env->tracer()) {
    tracer->OnClientSubmit(tx_id, pending.invocation.function, channel,
                           p_.env->now());
  }

  // One endorsing peer per organization of a minimal policy-
  // satisfying set (service-discovery style), round-robin within the
  // org (flow step 1). For P0 (all orgs) this is every organization.
  std::vector<Peer*> targets;
  for (OrgId org : p_.policy->ChooseSatisfyingOrgs(round_robin_)) {
    // A policy may reference orgs beyond the deployed cluster (e.g. a
    // preset instantiated for more orgs than exist); treat them like
    // orgs with no endorsing peers instead of indexing out of bounds.
    if (org < 0 || static_cast<size_t>(org) >= p_.peers_by_org.size()) {
      continue;
    }
    const std::vector<Peer*>& org_peers =
        p_.peers_by_org[static_cast<size_t>(org)];
    if (org_peers.empty()) continue;
    targets.push_back(org_peers[round_robin_ % org_peers.size()]);
    pending.proposed_orgs.push_back(org);
  }
  ++round_robin_;
  if (targets.empty()) {
    // No org has an endorsing peer, so an endorsement set can never be
    // gathered. Drop now instead of parking the transaction in
    // in_flight_ forever (the entry used to leak).
    ++p_.stats->txs_dropped_no_endorsers;
    if (Tracer* tracer = p_.env->tracer()) {
      tracer->OnClientDrop(tx_id, TraceTerminal::kNoEndorsers, p_.env->now());
    }
    return;
  }
  if (p_.admission != nullptr) pending.proposed_peers = targets;
  in_flight_.emplace(tx_id, std::move(pending));

  for (Peer* peer : targets) SendProposal(tx_id, peer, /*attempt=*/0);
  if (p_.retry.retries_enabled()) ScheduleEndorseTimeout(tx_id, 0);
}

void Client::SendProposal(TxId tx_id, Peer* peer, int attempt) {
  ProposalRequest request;
  request.tx_id = tx_id;
  request.channel = in_flight_[tx_id].channel;
  request.invocation = in_flight_[tx_id].invocation;
  request.deadline = in_flight_[tx_id].deadline;
  NodeId peer_node = peer->node();
  if (Tracer* tracer = p_.env->tracer()) {
    tracer->OnEndorseRequest(tx_id, peer->id(), peer->org(), attempt,
                             p_.env->now());
  }
  request.reply = [this, peer_node](const ProposalResponse& response) {
    uint64_t bytes = response.rwset.ByteSize() + 96;
    // Large rw-sets (DV/SCM range scans) make responses heavy; ship
    // one copy through the network callback.
    auto shared = std::make_shared<ProposalResponse>(response);
    p_.net->Send(*p_.env, peer_node, p_.node, bytes,
                 [this, shared]() { OnEndorsement(std::move(*shared)); });
  };
  p_.net->Send(*p_.env, p_.node, peer_node, 300,
               [peer, request = std::move(request)]() mutable {
                 peer->HandleProposal(std::move(request));
               });
}

void Client::ScheduleEndorseTimeout(TxId tx_id, int attempt) {
  // Deterministic capped exponential backoff: attempt k waits
  // min(endorse_timeout * backoff_multiplier^k, max_backoff). No
  // jitter draw, so retry bookkeeping never perturbs the RNG streams.
  SimTime wait = p_.retry.BackoffForAttempt(attempt);
  p_.env->Schedule(wait, [this, tx_id, attempt]() {
    OnEndorseTimeout(tx_id, attempt);
  });
}

void Client::OnEndorseTimeout(TxId tx_id, int attempt) {
  auto it = in_flight_.find(tx_id);
  if (it == in_flight_.end()) return;        // completed in the meantime
  PendingTx& pending = it->second;
  if (pending.attempt != attempt) return;    // stale: a retry is running
  bool budget_denied = false;
  if (attempt < p_.retry.max_endorse_retries &&
      retry_budget_.has_value() && !retry_budget_->TrySpend()) {
    // Token bucket is dry: under sustained failure the retry share of
    // offered load is capped instead of amplifying the overload.
    budget_denied = true;
    if (p_.admission_stats != nullptr) {
      ++p_.admission_stats->retry_budget_denials;
    }
  }
  if (attempt >= p_.retry.max_endorse_retries || budget_denied) {
    ++p_.stats->endorse_timeouts;
    if (Tracer* tracer = p_.env->tracer()) {
      tracer->OnClientDrop(tx_id, TraceTerminal::kEndorseTimeout,
                           p_.env->now());
    }
    CancelOutstanding(tx_id, pending);
    in_flight_.erase(it);
    RecordOutcomeFailure();
    return;
  }
  int next_attempt = attempt + 1;
  pending.attempt = next_attempt;
  ++p_.stats->endorse_retries;
  if (Tracer* tracer = p_.env->tracer()) {
    tracer->OnClientRetry(tx_id, static_cast<uint32_t>(next_attempt),
                          p_.env->now());
  }
  // Re-propose only to the orgs that never answered, each via its next
  // round-robin peer — a dead or slow endorser is routed around.
  for (OrgId org : pending.proposed_orgs) {
    bool answered = false;
    for (const ProposalResponse& r : pending.responses) {
      if (r.endorsement.org_id == org) {
        answered = true;
        break;
      }
    }
    if (answered) continue;
    const std::vector<Peer*>& org_peers =
        p_.peers_by_org[static_cast<size_t>(org)];
    Peer* peer = org_peers[(pending.rr_base +
                            static_cast<uint64_t>(next_attempt)) %
                           org_peers.size()];
    if (p_.admission != nullptr) pending.proposed_peers.push_back(peer);
    SendProposal(tx_id, peer, next_attempt);
  }
  ScheduleEndorseTimeout(tx_id, next_attempt);
}

void Client::OnEndorsement(ProposalResponse response) {
  auto it = in_flight_.find(response.tx_id);
  if (it == in_flight_.end()) return;
  if (Tracer* tracer = p_.env->tracer()) {
    tracer->OnEndorseResponse(response.tx_id, response.endorsement.peer_id,
                              p_.env->now());
  }
  if (response.reject != ProposalReject::kNone) {
    OnEndorseReject(response.tx_id, response.reject);
    return;
  }
  PendingTx& pending = it->second;
  for (const ProposalResponse& r : pending.responses) {
    if (r.endorsement.peer_id == response.endorsement.peer_id) {
      // Duplicate endorser: a retried proposal can hit the same peer
      // again (round-robin wrap in a small org) and yield two
      // responses. Counting both used to fake policy coverage with a
      // single signer; keep the first only.
      return;
    }
  }
  pending.responses.push_back(std::move(response));
  // Complete once every targeted org has answered — with one target
  // peer per org and no retries this is exactly the legacy "all
  // responses arrived" criterion.
  for (OrgId org : pending.proposed_orgs) {
    bool answered = false;
    for (const ProposalResponse& r : pending.responses) {
      if (r.endorsement.org_id == org) {
        answered = true;
        break;
      }
    }
    if (!answered) return;
  }
  PendingTx done = std::move(it->second);
  TxId tx_id = it->first;
  in_flight_.erase(it);
  FinalizeTx(tx_id, std::move(done));
}

void Client::OnEndorseReject(TxId tx_id, ProposalReject why) {
  auto it = in_flight_.find(tx_id);
  if (it == in_flight_.end()) return;
  // Fast-fail: the first refusal kills the transaction. Re-proposing
  // into a queue that just shed us would feed the overload, and an
  // expired transaction is unsalvageable by definition. Any pending
  // timeout finds in_flight_ empty and does nothing. Sibling proposals
  // still queued at the other orgs are cancelled so a dead transaction
  // stops consuming endorsement capacity there (the cancel is a no-op
  // at the org that refused).
  PendingTx pending = std::move(it->second);
  in_flight_.erase(it);
  CancelOutstanding(tx_id, pending);
  if (why == ProposalReject::kExpired) {
    if (p_.admission_stats != nullptr) {
      ++p_.admission_stats->client_expired_drops;
    }
    if (Tracer* tracer = p_.env->tracer()) {
      tracer->OnAdmissionDrop(tx_id, TraceTerminal::kDeadlineExpired,
                              TxValidationCode::kDeadlineExpiredEndorse,
                              p_.env->now());
    }
    // An expired deadline means the backend is too slow to be useful —
    // exactly the sickness signal the breaker watches for.
    RecordOutcomeFailure();
  } else {
    if (p_.admission_stats != nullptr) {
      ++p_.admission_stats->client_shed_drops;
    }
    if (Tracer* tracer = p_.env->tracer()) {
      tracer->OnClientDrop(tx_id, TraceTerminal::kAdmissionShed,
                           p_.env->now());
    }
    // Deliberately NOT a breaker failure: a shed is a *healthy* backend
    // bounding its own queue and answering within one RTT. Tripping on
    // sheds would turn graceful degradation into a full outage — the
    // breaker is reserved for unresponsiveness (expiry, timeouts,
    // ordering throttle).
  }
}

void Client::CancelOutstanding(TxId tx_id, const PendingTx& pending) {
  // The cancel rides the network like any other control message; by
  // the time it lands each sibling is either still queued (husked,
  // a full chaincode simulation saved) or already served (no-op).
  // proposed_peers is only ever populated on the admission path, so
  // this never adds events — or network RNG draws — to a default run.
  for (Peer* peer : pending.proposed_peers) {
    NodeId peer_node = peer->node();
    p_.net->Send(*p_.env, p_.node, peer_node, 64,
                 [peer, tx_id]() { peer->CancelProposal(tx_id); });
  }
}

void Client::OnOrdererThrottle(TxId tx_id) {
  // The envelope was fully endorsed but the ordering service pushed
  // back. Drop the transaction and let the breaker slow the source;
  // blindly re-broadcasting is exactly the retry storm this subsystem
  // exists to prevent.
  if (p_.admission_stats != nullptr) {
    ++p_.admission_stats->client_throttle_drops;
  }
  if (p_.resubmit_registry != nullptr) {
    p_.resubmit_registry->erase(tx_id);
    resubmit_meta_.erase(tx_id);
  }
  if (Tracer* tracer = p_.env->tracer()) {
    tracer->OnClientDrop(tx_id, TraceTerminal::kOrdererThrottled,
                         p_.env->now());
  }
  RecordOutcomeFailure();
}

void Client::FinalizeTx(TxId tx_id, PendingTx pending) {
  // Any chaincode-level error response makes the client drop the
  // transaction (it can never gather a valid endorsement set).
  for (const ProposalResponse& r : pending.responses) {
    if (!r.app_ok) {
      ++p_.stats->app_errors;
      if (Tracer* tracer = p_.env->tracer()) {
        tracer->OnClientDrop(tx_id, TraceTerminal::kAppError, p_.env->now());
      }
      return;
    }
  }

  // Pick the largest digest-consistent endorsement group and attach
  // that group's rw-set as the envelope payload. The paper's default
  // flow skips the optional client-side consistency check (step 3), so
  // mismatching signatures travel along and fail VSCC later.
  std::map<uint64_t, size_t> group_counts;
  for (const ProposalResponse& r : pending.responses) {
    group_counts[r.endorsement.rwset_digest]++;
  }
  uint64_t best_digest = 0;
  size_t best_count = 0;
  for (const ProposalResponse& r : pending.responses) {
    size_t count = group_counts[r.endorsement.rwset_digest];
    if (count > best_count) {
      best_count = count;
      best_digest = r.endorsement.rwset_digest;
    }
  }

  Transaction tx;
  tx.id = tx_id;
  tx.channel = pending.channel;
  tx.chaincode = p_.workload->chaincode();
  tx.function = pending.invocation.function;
  tx.args = pending.invocation.args;
  tx.client_submit_time = pending.submit_time;
  tx.deadline = pending.deadline;
  tx.endorsed_time = p_.env->now();
  bool rwset_attached = false;
  for (ProposalResponse& r : pending.responses) {
    if (!rwset_attached && r.endorsement.rwset_digest == best_digest) {
      tx.rwset = std::move(r.rwset);
      rwset_attached = true;
    }
    tx.endorsements.push_back(r.endorsement);
  }
  tx.read_only = tx.rwset.IsReadOnly();
  if (Tracer* tracer = p_.env->tracer()) {
    tracer->OnEndorsed(tx_id, tx.read_only, p_.env->now());
  }

  if (tx.read_only && !p_.submit_read_only) {
    // Recommendation #4: the query result is already known after the
    // execution phase; skip ordering.
    ++p_.stats->read_only_skipped;
    if (Tracer* tracer = p_.env->tracer()) {
      tracer->OnClientDrop(tx_id, TraceTerminal::kReadOnlySkipped,
                           p_.env->now());
    }
    return;
  }

  ++p_.stats->txs_submitted;
  // Breaker success = the transaction made it through endorsement to
  // the ordering handoff. A later throttle adds a failure outcome, so
  // a fully throttled pipeline still trips the breaker.
  RecordOutcomeSuccess();
  if (p_.resubmit_registry != nullptr) {
    // Register for commit feedback so an MVCC failure can trigger a
    // resubmission; the harness routes the verdict back via
    // OnCommittedResult.
    (*p_.resubmit_registry)[tx_id] = this;
    resubmit_meta_[tx_id] = ResubmitMeta{pending.invocation,
                                         pending.resubmit_count,
                                         pending.channel};
  }
  SimTime collect_cost =
      p_.timing.client_collect_cost *
      static_cast<SimTime>(pending.responses.size());
  uint64_t bytes = tx.ByteSize();
  ChannelId channel = pending.channel;
  auto shared_tx = std::make_shared<Transaction>(std::move(tx));
  const std::vector<Params::OrdererEndpoint>& endpoints =
      EndpointsFor(channel);
  if (!endpoints.empty()) {
    // Replicated ordering: keep the envelope around until a replica
    // acks it, starting at the channel's last known leader.
    int replica = LeaderHintFor(channel) % static_cast<int>(endpoints.size());
    awaiting_order_ack_[tx_id] = PendingOrder{shared_tx, replica, 0, channel};
    p_.env->Schedule(collect_cost, [this, tx_id, replica]() {
      BroadcastToOrderer(tx_id, replica, /*attempt=*/0);
    });
    return;
  }
  Orderer* orderer = p_.channel_orderers.empty()
                         ? p_.orderer
                         : p_.channel_orderers[static_cast<size_t>(channel)];
  if (p_.admission != nullptr && p_.admission->orderer_bounded()) {
    // Backpressure-aware handoff: a rejected envelope produces an
    // explicit throttle signal that rides back over the network.
    p_.env->Schedule(collect_cost, [this, shared_tx, bytes, orderer]() {
      TxId id = shared_tx->id;
      p_.net->Send(
          *p_.env, p_.node, p_.orderer_node, bytes,
          [this, orderer, shared_tx, id]() {
            orderer->SubmitTransaction(
                std::move(*shared_tx), [this, id]() {
                  p_.net->Send(*p_.env, p_.orderer_node, p_.node, 48,
                               [this, id]() { OnOrdererThrottle(id); });
                });
          });
    });
    return;
  }
  p_.env->Schedule(collect_cost, [this, shared_tx, bytes, orderer]() {
    p_.net->Send(*p_.env, p_.node, p_.orderer_node, bytes,
                 [orderer, shared_tx]() {
                   orderer->SubmitTransaction(std::move(*shared_tx));
                 });
  });
}

const std::vector<Client::Params::OrdererEndpoint>& Client::EndpointsFor(
    ChannelId channel) const {
  if (!p_.channel_orderer_endpoints.empty()) {
    return p_.channel_orderer_endpoints[static_cast<size_t>(channel)];
  }
  return p_.orderer_endpoints;
}

int& Client::LeaderHintFor(ChannelId channel) {
  size_t index = static_cast<size_t>(channel);
  if (index >= leader_hints_.size()) leader_hints_.resize(index + 1, 0);
  return leader_hints_[index];
}

void Client::BroadcastToOrderer(TxId tx_id, int replica, int attempt) {
  auto it = awaiting_order_ack_.find(tx_id);
  if (it == awaiting_order_ack_.end()) return;
  const Params::OrdererEndpoint& endpoint =
      EndpointsFor(it->second.channel)[static_cast<size_t>(replica)];
  std::shared_ptr<Transaction> tx = it->second.tx;
  NodeId endpoint_node = endpoint.node;
  // The ack travels back over the network like a Fabric broadcast
  // response; a crashed or deposed replica simply never sends it.
  auto ack = [this, endpoint_node, replica](TxId id, bool accepted) {
    p_.net->Send(*p_.env, endpoint_node, p_.node, 48,
                 [this, id, accepted, replica]() {
                   OnOrdererAck(id, accepted, replica);
                 });
  };
  uint64_t bytes = tx->ByteSize();
  auto submit = endpoint.submit;
  p_.net->Send(*p_.env, p_.node, endpoint_node, bytes,
               [tx, ack, submit]() { submit(*tx, ack); });
  p_.env->Schedule(p_.orderer_ack_timeout, [this, tx_id, attempt]() {
    OnOrdererAckTimeout(tx_id, attempt);
  });
}

void Client::OnOrdererAck(TxId tx_id, bool accepted, int replica) {
  auto it = awaiting_order_ack_.find(tx_id);
  if (it == awaiting_order_ack_.end()) return;  // duplicate/stale ack
  ChannelId channel = it->second.channel;
  awaiting_order_ack_.erase(it);
  LeaderHintFor(channel) = replica;
  if (accepted) {
    if (p_.acked_txs_by_channel != nullptr) {
      (*p_.acked_txs_by_channel)[static_cast<size_t>(channel)].push_back(
          tx_id);
    } else if (p_.acked_txs != nullptr) {
      p_.acked_txs->push_back(tx_id);
    }
  }
}

void Client::OnOrdererAckTimeout(TxId tx_id, int attempt) {
  auto it = awaiting_order_ack_.find(tx_id);
  if (it == awaiting_order_ack_.end()) return;  // acked in the meantime
  PendingOrder& pending = it->second;
  if (pending.attempt != attempt) return;  // a newer broadcast is armed
  if (attempt >= p_.max_orderer_rebroadcasts) {
    ++p_.stats->orderer_broadcast_drops;
    if (Tracer* tracer = p_.env->tracer()) {
      tracer->OnClientDrop(tx_id, TraceTerminal::kOrdererUnavailable,
                           p_.env->now());
    }
    awaiting_order_ack_.erase(it);
    return;
  }
  // Silence from the current replica: assume it is down or deposed and
  // walk to the next one. The walk revisits every replica, so the new
  // leader is found wherever it landed.
  pending.attempt = attempt + 1;
  pending.replica = (pending.replica + 1) %
                    static_cast<int>(EndpointsFor(pending.channel).size());
  ++p_.stats->orderer_rebroadcasts;
  BroadcastToOrderer(tx_id, pending.replica, pending.attempt);
}

void Client::OnCommittedResult(TxId tx_id, TxValidationCode code) {
  auto it = resubmit_meta_.find(tx_id);
  if (it == resubmit_meta_.end()) return;
  ResubmitMeta meta = std::move(it->second);
  resubmit_meta_.erase(it);
  if (code != TxValidationCode::kMvccReadConflict &&
      code != TxValidationCode::kPhantomReadConflict) {
    return;  // committed, or failed for a non-retryable reason
  }
  if (meta.resubmit_count >= p_.retry.max_resubmits) return;
  if (retry_budget_.has_value() && !retry_budget_->TrySpend()) {
    // No tokens: the resubmission is skipped — MVCC retry
    // amplification is bounded at the source under overload.
    if (p_.admission_stats != nullptr) {
      ++p_.admission_stats->retry_budget_denials;
    }
    return;
  }
  ++p_.stats->resubmissions;
  TxId new_id = ++(*p_.tx_id_counter);
  ++p_.stats->txs_generated;
  if (Tracer* tracer = p_.env->tracer()) {
    tracer->OnResubmit(tx_id, new_id, p_.env->now());
  }
  auto invocation = std::make_shared<Invocation>(std::move(meta.invocation));
  int next_count = meta.resubmit_count + 1;
  ChannelId channel = meta.channel;
  // The resubmission re-executes against fresh state — it is a brand
  // new transaction to the rest of the pipeline (on the original
  // channel), and can of course conflict again (retry amplification).
  p_.env->Schedule(p_.retry.resubmit_backoff,
                   [this, new_id, invocation, next_count, channel]() {
                     Submit(new_id, std::move(*invocation), next_count,
                            channel);
                   });
}

}  // namespace fabricsim
