#ifndef FABRICSIM_CLIENT_CLIENT_H_
#define FABRICSIM_CLIENT_CLIENT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/ordering/orderer.h"
#include "src/peer/peer.h"
#include "src/policy/endorsement_policy.h"
#include "src/workload/workload_generator.h"

namespace fabricsim {

/// Client-side counters that never reach the ledger. Everything else
/// is measured by parsing the blockchain (paper §4.5).
struct RunStats {
  uint64_t txs_generated = 0;
  uint64_t txs_submitted = 0;
  /// Endorsement responses carrying a chaincode error; the client
  /// drops such transactions (not one of the paper's failure types).
  uint64_t app_errors = 0;
  /// Read-only transactions not submitted for ordering (only when the
  /// client is configured per the paper's recommendation #4).
  uint64_t read_only_skipped = 0;
  /// FabricSharp early aborts: rejected before/at ordering, never on
  /// the blockchain.
  uint64_t early_aborts_not_serializable = 0;
  /// Fabric++ cycle aborts in the ordering phase, never on the
  /// blockchain.
  uint64_t early_aborts_by_reordering = 0;
};

/// An open-loop client process (Caliper worker analogue): draws
/// invocations from the shared workload, collects endorsements from
/// one peer per organization mentioned in the policy, assembles the
/// envelope and submits it for ordering.
class Client {
 public:
  struct Params {
    int id = 0;
    NodeId node = 0;
    Environment* env = nullptr;
    Network* net = nullptr;
    WorkloadGenerator* workload = nullptr;
    const EndorsementPolicy* policy = nullptr;
    /// peers_by_org[org] lists the endorsing peers of that org; the
    /// client round-robins within each org.
    std::vector<std::vector<Peer*>> peers_by_org;
    Orderer* orderer = nullptr;
    NodeId orderer_node = 0;
    TimingConfig timing;
    Rng rng{1, 1};
    /// This client's share of the total arrival rate.
    double arrival_rate_tps = 20.0;
    /// Submissions stop at this simulated time; in-flight work drains.
    SimTime load_end_time = 0;
    bool submit_read_only = true;
    RunStats* stats = nullptr;
    /// Shared monotonic transaction-id counter across clients.
    TxId* tx_id_counter = nullptr;
  };

  explicit Client(Params params);

  /// Schedules the first arrival.
  void Start();

 private:
  struct PendingTx {
    Invocation invocation;
    SimTime submit_time = 0;
    size_t expected = 0;
    std::vector<ProposalResponse> responses;
  };

  void ScheduleNextArrival();
  void SubmitOne();
  void OnEndorsement(ProposalResponse response);
  void FinalizeTx(TxId tx_id, PendingTx pending);

  Params p_;
  std::unordered_map<TxId, PendingTx> in_flight_;
  uint64_t round_robin_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CLIENT_CLIENT_H_
