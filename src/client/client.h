#ifndef FABRICSIM_CLIENT_CLIENT_H_
#define FABRICSIM_CLIENT_CLIENT_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/admission/admission.h"
#include "src/channels/channel_affinity.h"
#include "src/common/rng.h"
#include "src/ordering/orderer.h"
#include "src/peer/peer.h"
#include "src/policy/endorsement_policy.h"
#include "src/workload/workload_generator.h"

namespace fabricsim {

class Client;

/// Client-side counters that never reach the ledger. Everything else
/// is measured by parsing the blockchain (paper §4.5).
struct RunStats {
  uint64_t txs_generated = 0;
  uint64_t txs_submitted = 0;
  /// Endorsement responses carrying a chaincode error; the client
  /// drops such transactions (not one of the paper's failure types).
  uint64_t app_errors = 0;
  /// Read-only transactions not submitted for ordering (only when the
  /// client is configured per the paper's recommendation #4).
  uint64_t read_only_skipped = 0;
  /// FabricSharp early aborts: rejected before/at ordering, never on
  /// the blockchain.
  uint64_t early_aborts_not_serializable = 0;
  /// Fabric++ cycle aborts in the ordering phase, never on the
  /// blockchain.
  uint64_t early_aborts_by_reordering = 0;
  /// Transactions dropped at submission because no organization had an
  /// endorsing peer to target.
  uint64_t txs_dropped_no_endorsers = 0;
  /// Endorsement re-proposal rounds sent after a timeout.
  uint64_t endorse_retries = 0;
  /// Transactions abandoned after exhausting the retry budget.
  uint64_t endorse_timeouts = 0;
  /// MVCC/phantom-failed transactions resubmitted as fresh ones.
  uint64_t resubmissions = 0;
  /// Envelope re-broadcasts to another orderer replica after an ack
  /// timeout (replicated ordering mode only).
  uint64_t orderer_rebroadcasts = 0;
  /// Envelopes abandoned after exhausting the re-broadcast budget — the
  /// ordering service was unavailable for the whole window.
  uint64_t orderer_broadcast_drops = 0;
  /// Raft elections started / leaderships established (incremented by
  /// the ordering service through the harness sinks).
  uint64_t orderer_elections = 0;
  uint64_t orderer_leader_changes = 0;
};

/// An open-loop client process (Caliper worker analogue): draws
/// invocations from the shared workload, collects endorsements from
/// one peer per organization mentioned in the policy, assembles the
/// envelope and submits it for ordering.
///
/// Two opt-in robustness behaviours (ClientRetryPolicy, both off by
/// default): a per-attempt endorsement timeout that re-proposes to the
/// org's next round-robin peer with exponential backoff, and
/// resubmission of MVCC-failed transactions as fresh transactions.
class Client {
 public:
  struct Params {
    int id = 0;
    NodeId node = 0;
    Environment* env = nullptr;
    Network* net = nullptr;
    WorkloadGenerator* workload = nullptr;
    const EndorsementPolicy* policy = nullptr;
    /// peers_by_org[org] lists the endorsing peers of that org; the
    /// client round-robins within each org.
    std::vector<std::vector<Peer*>> peers_by_org;
    Orderer* orderer = nullptr;
    NodeId orderer_node = 0;
    /// Multi-channel compat ordering: one Orderer per channel (all
    /// sharing the orderer node). When non-empty, submissions for
    /// channel c go to channel_orderers[c]; when empty, `orderer`
    /// serves the single-channel path unchanged.
    std::vector<Orderer*> channel_orderers;
    /// Replicated ordering: one endpoint per orderer replica. When
    /// non-empty the client broadcasts envelopes here (with ack-timeout
    /// failover) instead of through `orderer`; the legacy single-
    /// orderer path above stays byte-identical when this is empty.
    struct OrdererEndpoint {
      NodeId node = 0;
      /// Hands the envelope to the replica together with the client's
      /// ack callback (invoked at quorum commit or early abort).
      std::function<void(Transaction, std::function<void(TxId, bool)>)>
          submit;
    };
    std::vector<OrdererEndpoint> orderer_endpoints;
    /// Multi-channel replicated ordering: per-channel endpoint sets
    /// (index = channel). When non-empty it replaces
    /// `orderer_endpoints`, and each channel tracks its own leader
    /// hint — a failover on a hot channel never misroutes a cold one.
    std::vector<std::vector<OrdererEndpoint>> channel_orderer_endpoints;
    /// How long to wait for the ordering ack before re-broadcasting to
    /// the next replica (replicated mode only).
    SimTime orderer_ack_timeout = 0;
    /// Re-broadcast budget per envelope before giving up.
    int max_orderer_rebroadcasts = 0;
    /// Harness sink: ids of transactions whose ordering ack reached
    /// this client (the invariant checker proves none were lost).
    std::vector<TxId>* acked_txs = nullptr;
    /// Per-channel variant of `acked_txs` (index = channel) for
    /// multi-channel runs; when set it wins over `acked_txs`.
    std::vector<std::vector<TxId>>* acked_txs_by_channel = nullptr;
    /// Which channels this client submits to and how it spreads load
    /// across them. The default pins everything to channel 0 without
    /// consuming randomness.
    ChannelAffinity affinity;
    TimingConfig timing;
    Rng rng{1, 1};
    /// This client's share of the total arrival rate.
    double arrival_rate_tps = 20.0;
    /// Submissions stop at this simulated time; in-flight work drains.
    SimTime load_end_time = 0;
    bool submit_read_only = true;
    RunStats* stats = nullptr;
    /// Shared monotonic transaction-id counter across clients.
    TxId* tx_id_counter = nullptr;
    ClientRetryPolicy retry;
    /// Shared tx -> owning-client routing table for commit feedback,
    /// owned by the harness. nullptr unless resubmission is enabled —
    /// submitted transaction ids are registered here so the harness can
    /// deliver each transaction's validation verdict back to its
    /// client.
    std::unordered_map<TxId, Client*>* resubmit_registry = nullptr;
    /// Overload protection (src/admission): deadline stamping, the
    /// per-client circuit breaker and retry budget, and handling of
    /// shed/throttle signals. Null (or a disabled config) reproduces
    /// the unprotected client exactly.
    const AdmissionConfig* admission = nullptr;
    AdmissionStats* admission_stats = nullptr;
  };

  explicit Client(Params params);

  /// Schedules the first arrival.
  void Start();

  /// Draws and submits one transaction immediately, without arming the
  /// client's own Poisson clock. The aggregated population actor
  /// (src/workload/population) owns the arrival process for large
  /// behaviour classes and drives its embedded Client through this —
  /// the entire endorsement/ordering/retry/resubmission machinery is
  /// reused per arrival instead of per client object.
  void SubmitNow() { SubmitOne(); }

  /// Commit feedback from the harness (resubmission mode only): the
  /// registered transaction was validated with `code` on the reference
  /// peer. MVCC/phantom failures within budget are resubmitted as
  /// fresh transactions after the configured backoff.
  void OnCommittedResult(TxId tx_id, TxValidationCode code);

 private:
  struct PendingTx {
    Invocation invocation;
    /// Channel drawn (via the affinity model) at submission; carried
    /// through endorsement, ordering, and any resubmission.
    ChannelId channel = 0;
    SimTime submit_time = 0;
    /// Absolute client deadline stamped at first submission (overload
    /// protection); 0 = none.
    SimTime deadline = 0;
    /// Orgs actually targeted (those with at least one peer); complete
    /// once every one of them has responded.
    std::vector<OrgId> proposed_orgs;
    /// Every peer a proposal was sent to (first round and retries), so
    /// an abandoned transaction can cancel its still-queued siblings
    /// (admission path only — never touched otherwise).
    std::vector<Peer*> proposed_peers;
    /// Round-robin cursor at first submission; retry k re-proposes to
    /// peer (rr_base + k) % org_size of each unanswered org.
    uint64_t rr_base = 0;
    /// Current proposal round (0 = first). Stale timeouts compare
    /// against it.
    int attempt = 0;
    /// How many resubmissions preceded this transaction.
    int resubmit_count = 0;
    std::vector<ProposalResponse> responses;
  };

  /// Invocation + budget retained for commit feedback (resubmission
  /// mode only; erased when the verdict arrives).
  struct ResubmitMeta {
    Invocation invocation;
    int resubmit_count = 0;
    ChannelId channel = 0;
  };

  void ScheduleNextArrival();
  void SubmitOne();
  /// Proposes `invocation` under a fresh transaction id; shared by
  /// first submissions and resubmissions.
  void Submit(TxId tx_id, Invocation invocation, int resubmit_count,
              ChannelId channel);
  void SendProposal(TxId tx_id, Peer* peer, int attempt);
  void ScheduleEndorseTimeout(TxId tx_id, int attempt);
  void OnEndorseTimeout(TxId tx_id, int attempt);
  void OnEndorsement(ProposalResponse response);
  void FinalizeTx(TxId tx_id, PendingTx pending);
  /// An endorser refused the proposal (shed or deadline-expired): the
  /// client fast-fails the transaction instead of waiting out the
  /// timeout — overload feedback must travel faster than the overload.
  void OnEndorseReject(TxId tx_id, ProposalReject why);
  /// Cancellation propagation: tells every proposed peer to husk any
  /// sibling proposal of an abandoned transaction, so dead work stops
  /// consuming endorsement capacity. Admission path only.
  void CancelOutstanding(TxId tx_id, const PendingTx& pending);
  /// The orderer's bounded ingress rejected the envelope.
  void OnOrdererThrottle(TxId tx_id);
  /// Breaker outcome feedback (no-ops when no breaker is configured).
  void RecordOutcomeSuccess();
  void RecordOutcomeFailure();

  /// Replicated-ordering failover: envelope awaiting its ordering ack.
  struct PendingOrder {
    std::shared_ptr<Transaction> tx;
    int replica = 0;  ///< endpoint index of the current attempt
    int attempt = 0;  ///< broadcast round (staleness guard)
    ChannelId channel = 0;
  };
  void BroadcastToOrderer(TxId tx_id, int replica, int attempt);
  void OnOrdererAck(TxId tx_id, bool accepted, int replica);
  void OnOrdererAckTimeout(TxId tx_id, int attempt);
  /// Replica endpoints serving `channel` (the shared single-channel
  /// set unless per-channel sets are configured).
  const std::vector<Params::OrdererEndpoint>& EndpointsFor(
      ChannelId channel) const;
  int& LeaderHintFor(ChannelId channel);

  Params p_;
  /// Overload protection state (engaged only when Params::admission is
  /// an enabled config).
  std::optional<CircuitBreaker> breaker_;
  std::optional<RetryBudget> retry_budget_;
  std::unordered_map<TxId, PendingTx> in_flight_;
  std::unordered_map<TxId, ResubmitMeta> resubmit_meta_;
  std::unordered_map<TxId, PendingOrder> awaiting_order_ack_;
  /// Last endpoint that acked, per channel — new envelopes start there
  /// instead of rediscovering the leader.
  std::vector<int> leader_hints_ = std::vector<int>(1, 0);
  uint64_t round_robin_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CLIENT_CLIENT_H_
