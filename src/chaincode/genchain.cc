#include "src/chaincode/genchain.h"

#include <set>

#include "src/common/strings.h"
#include "src/statedb/rich_query.h"

namespace fabricsim {

GenChaincodeSpec GenChaincodeSpec::PaperDefault(uint64_t initial_keys) {
  GenChaincodeSpec spec;
  spec.initial_keys = initial_keys;
  spec.functions = {
      GenFunctionSpec{"readKeys", 1, 0, 0, 0, 0, false},
      GenFunctionSpec{"insertKeys", 0, 1, 0, 0, 0, false},
      GenFunctionSpec{"updateKeys", 0, 0, 1, 0, 0, false},
      GenFunctionSpec{"deleteKeys", 0, 0, 0, 1, 0, false},
      GenFunctionSpec{"rangeReadKeys", 0, 0, 0, 0, 1, false},
  };
  return spec;
}

Status GenChaincodeSpec::Validate() const {
  if (functions.empty()) {
    return Status::InvalidArgument("spec has no functions");
  }
  std::set<std::string> names;
  for (const GenFunctionSpec& f : functions) {
    if (f.name.empty()) {
      return Status::InvalidArgument("function with empty name");
    }
    if (!names.insert(f.name).second) {
      return Status::AlreadyExists("duplicate function " + f.name);
    }
    if (f.reads < 0 || f.inserts < 0 || f.updates < 0 || f.deletes < 0 ||
        f.range_reads < 0) {
      return Status::InvalidArgument("negative action count in " + f.name);
    }
    if (f.ArgCount() == 0) {
      return Status::InvalidArgument("function " + f.name + " does nothing");
    }
  }
  return Status::OK();
}

GenChaincode::GenChaincode(GenChaincodeSpec spec) : spec_(std::move(spec)) {}

std::string GenChaincode::Key(uint64_t index) {
  return "GK" + PadKey(index, 8);
}

std::vector<WriteItem> GenChaincode::BootstrapState() const {
  std::vector<WriteItem> writes;
  writes.reserve(spec_.initial_keys);
  for (uint64_t i = 0; i < spec_.initial_keys; ++i) {
    writes.push_back(WriteItem{
        Key(i),
        JsonObject({{"docType", "gk"}, {"payload", PadKey(i, 16)}}),
        false});
  }
  return writes;
}

std::vector<std::string> GenChaincode::Functions() const {
  std::vector<std::string> names;
  names.reserve(spec_.functions.size());
  for (const GenFunctionSpec& f : spec_.functions) names.push_back(f.name);
  return names;
}

Status GenChaincode::Invoke(ChaincodeStub& stub, const Invocation& inv) {
  const GenFunctionSpec* fn = nullptr;
  for (const GenFunctionSpec& f : spec_.functions) {
    if (f.name == inv.function) {
      fn = &f;
      break;
    }
  }
  if (fn == nullptr) {
    return Status::InvalidArgument("genchain: unknown function " +
                                   inv.function);
  }
  if (static_cast<int>(inv.args.size()) < fn->ArgCount()) {
    return Status::InvalidArgument(
        StrFormat("genchain %s: need %d args, got %zu", fn->name.c_str(),
                  fn->ArgCount(), inv.args.size()));
  }
  size_t arg = 0;
  for (int i = 0; i < fn->reads; ++i) {
    stub.GetState(inv.args[arg++]);
  }
  for (int i = 0; i < fn->inserts; ++i) {
    // Blind write of a fresh key: no read dependency, so inserts never
    // suffer MVCC conflicts — the effect the paper measures for
    // insert-heavy workloads.
    const std::string& key = inv.args[arg++];
    stub.PutState(key, JsonObject({{"docType", "gk"}, {"payload", key}}));
  }
  for (int i = 0; i < fn->updates; ++i) {
    // Read-modify-write: this is the conflict-prone action.
    const std::string& key = inv.args[arg++];
    std::optional<std::string> value = stub.GetState(key);
    std::string payload =
        value.has_value() ? ExtractJsonField(*value, "payload").value_or("")
                          : "";
    stub.PutState(key, JsonObject({{"docType", "gk"},
                                   {"payload", payload + "u"}}));
  }
  for (int i = 0; i < fn->deletes; ++i) {
    const std::string& key = inv.args[arg++];
    stub.DelState(key);
  }
  for (int i = 0; i < fn->range_reads; ++i) {
    const std::string& start = inv.args[arg++];
    const std::string& end = inv.args[arg++];
    if (fn->use_rich_query) {
      Result<std::vector<StateEntry>> result =
          stub.GetQueryResult("docType==gk");
      if (!result.ok()) return result.status();
    } else {
      stub.GetStateByRange(start, end);
    }
  }
  return Status::OK();
}

}  // namespace fabricsim
