#ifndef FABRICSIM_CHAINCODE_SUPPLY_CHAIN_H_
#define FABRICSIM_CHAINCODE_SUPPLY_CHAIN_H_

#include "src/chaincode/chaincode.h"

namespace fabricsim {

/// Supply Chain Management chaincode (paper §4.3, Table 2), after
/// Perboli et al.
///
/// Five logistic service providers (LSPs): LSP0..LSP3 hold 400
/// logistic units each, LSP4 holds 800. Units are keyed
/// "UNIT<lsp>_<gtin>" so a range read over the "UNIT<lsp>_" prefix
/// retrieves every unit currently at an LSP (the queryASN query —
/// 400 to 800 keys, which is what breaks Fabric++'s reordering).
/// Shipping moves a unit between prefixes (delete + insert), so it
/// perturbs two LSP ranges at once.
///
/// Function → operation footprint (Table 2):
///   initLedger  2xW         pushASN     1xW
///   Ship        2xR, 2xW    Unload      2xR, 2xW
///   queryASN    1xRR        queryStock  1xRR*  (rich; no phantom check)
class SupplyChainChaincode : public Chaincode {
 public:
  /// `unit_counts[l]` is the number of bootstrapped units at LSP l.
  SupplyChainChaincode(std::vector<int> unit_counts = {400, 400, 400, 400,
                                                       800});

  std::string name() const override { return "scm"; }
  std::vector<WriteItem> BootstrapState() const override;
  Status Invoke(ChaincodeStub& stub, const Invocation& inv) override;
  std::vector<std::string> Functions() const override;

  int num_lsps() const { return static_cast<int>(unit_counts_.size()); }
  const std::vector<int>& unit_counts() const { return unit_counts_; }

  static std::string LspKey(int lsp);
  static std::string UnitKey(int lsp, int gtin);
  static std::string UnitPrefix(int lsp);
  static std::string AsnKey(int asn);

 private:
  std::vector<int> unit_counts_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_SUPPLY_CHAIN_H_
