#ifndef FABRICSIM_CHAINCODE_DIGITAL_VOTING_H_
#define FABRICSIM_CHAINCODE_DIGITAL_VOTING_H_

#include "src/chaincode/chaincode.h"

namespace fabricsim {

/// Digital Voting chaincode (paper §4.3, Table 2), after Yavuz et al.
///
/// 1000 voters (keys "VOTER<nnnn>") and 12 parties (keys "PARTY<nn>")
/// are bootstrapped. `vote` range-reads all voters and all parties
/// (the paper: "the vote function queries all 1000 voters"), which is
/// why DV shows the highest phantom-read rates of all chaincodes.
///
/// Function → operation footprint (Table 2):
///   initLedger   3xW
///   vote         1xR, 2xRR, 2xW
///   closeElctn   1xR, 1xW
///   qryParties   1xR, 1xRR
///   seeResults   1xR, 1xRR
class DigitalVotingChaincode : public Chaincode {
 public:
  DigitalVotingChaincode(int num_voters = 1000, int num_parties = 12);

  std::string name() const override { return "dv"; }
  std::vector<WriteItem> BootstrapState() const override;
  Status Invoke(ChaincodeStub& stub, const Invocation& inv) override;
  std::vector<std::string> Functions() const override;

  int num_voters() const { return num_voters_; }
  int num_parties() const { return num_parties_; }

  static std::string VoterKey(int index);
  static std::string PartyKey(int index);

 private:
  int num_voters_;
  int num_parties_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_DIGITAL_VOTING_H_
