#include "src/chaincode/digital_voting.h"

#include "src/common/strings.h"
#include "src/statedb/rich_query.h"

namespace fabricsim {

DigitalVotingChaincode::DigitalVotingChaincode(int num_voters, int num_parties)
    : num_voters_(num_voters), num_parties_(num_parties) {}

std::string DigitalVotingChaincode::VoterKey(int index) {
  return "VOTER" + PadKey(static_cast<uint64_t>(index), 4);
}

std::string DigitalVotingChaincode::PartyKey(int index) {
  return "PARTY" + PadKey(static_cast<uint64_t>(index), 2);
}

std::vector<WriteItem> DigitalVotingChaincode::BootstrapState() const {
  std::vector<WriteItem> writes;
  writes.push_back(WriteItem{
      "ELECTION", JsonObject({{"docType", "election"}, {"status", "open"}}),
      false});
  writes.push_back(WriteItem{
      "ELECTION_META",
      JsonObject({{"docType", "meta"},
                  {"parties", std::to_string(num_parties_)}}),
      false});
  for (int i = 0; i < num_voters_; ++i) {
    writes.push_back(WriteItem{
        VoterKey(i),
        JsonObject(
            {{"docType", "voter"}, {"voted", "no"}, {"ballots", "0"}}),
        false});
  }
  for (int i = 0; i < num_parties_; ++i) {
    writes.push_back(WriteItem{
        PartyKey(i),
        JsonObject({{"docType", "party"}, {"votes", "0"}}), false});
  }
  return writes;
}

std::vector<std::string> DigitalVotingChaincode::Functions() const {
  return {"initLedger", "vote", "closeElctn", "qryParties", "seeResults"};
}

Status DigitalVotingChaincode::Invoke(ChaincodeStub& stub,
                                      const Invocation& inv) {
  if (inv.function == "initLedger") {
    stub.PutState("ELECTION",
                  JsonObject({{"docType", "election"}, {"status", "open"}}));
    stub.PutState("ELECTION_META",
                  JsonObject({{"docType", "meta"},
                              {"parties", std::to_string(num_parties_)}}));
    stub.PutState("VOTE_LOG",
                  JsonObject({{"docType", "log"}, {"entries", "0"}}));
    return Status::OK();
  }
  if (inv.function == "vote") {
    if (inv.args.size() < 2) {
      return Status::InvalidArgument("vote: need voter and party key");
    }
    std::optional<std::string> election = stub.GetState("ELECTION");
    if (!election.has_value() ||
        ExtractJsonField(*election, "status").value_or("") != "open") {
      return Status::FailedPrecondition("election not open");
    }
    // Scan the full voter roll and the party list; the footprint of
    // both range reads is what drives DV's phantom conflicts.
    std::vector<StateEntry> voters =
        stub.GetStateByRange(VoterKey(0), "VOTER~");
    std::vector<StateEntry> parties =
        stub.GetStateByRange(PartyKey(0), "PARTY~");
    const std::string& voter_key = inv.args[0];
    const std::string& party_key = inv.args[1];
    std::string voter_doc;
    for (const StateEntry& e : voters) {
      if (e.key == voter_key) {
        voter_doc = e.vv.value;
        break;
      }
    }
    if (voter_doc.empty()) return Status::NotFound("unknown " + voter_key);
    std::string party_doc;
    for (const StateEntry& e : parties) {
      if (e.key == party_key) {
        party_doc = e.vv.value;
        break;
      }
    }
    if (party_doc.empty()) return Status::NotFound("unknown " + party_key);
    // A repeat ballot is recorded (and flagged) rather than rejected so
    // that the write footprint stays 2xW; the study cares about the
    // concurrency footprint, and an open-loop workload would otherwise
    // exhaust 1000 voters within seconds.
    long long ballots =
        std::stoll(ExtractJsonField(voter_doc, "ballots").value_or("0")) + 1;
    stub.PutState(voter_key,
                  JsonObject({{"docType", "voter"},
                              {"voted", "yes"},
                              {"ballots", std::to_string(ballots)}}));
    long long votes =
        std::stoll(ExtractJsonField(party_doc, "votes").value_or("0")) + 1;
    stub.PutState(party_key, JsonObject({{"docType", "party"},
                                         {"votes", std::to_string(votes)}}));
    return Status::OK();
  }
  if (inv.function == "closeElctn") {
    std::optional<std::string> election = stub.GetState("ELECTION");
    if (!election.has_value()) return Status::NotFound("no election");
    stub.PutState("ELECTION", JsonObject({{"docType", "election"},
                                          {"status", "closed"}}));
    return Status::OK();
  }
  if (inv.function == "qryParties") {
    stub.GetState("ELECTION_META");
    stub.GetStateByRange(PartyKey(0), "PARTY~");
    return Status::OK();
  }
  if (inv.function == "seeResults") {
    stub.GetState("ELECTION");
    stub.GetStateByRange(PartyKey(0), "PARTY~");
    return Status::OK();
  }
  return Status::InvalidArgument("dv: unknown function " + inv.function);
}

}  // namespace fabricsim
