#include "src/chaincode/asset_transfer.h"

#include <string>

#include "src/chaincode/composite_key.h"
#include "src/common/strings.h"
#include "src/statedb/rich_query.h"

namespace fabricsim {

namespace {
constexpr char kAssetTable[] = "ASSET";
constexpr char kOwnedTable[] = "OWNED";
constexpr char kAcctTable[] = "ACCT";

std::string AssetDoc(const std::string& owner, long long value) {
  return JsonObject({{"docType", "asset"},
                     {"owner", owner},
                     {"value", std::to_string(value)}});
}
}  // namespace

AssetTransferChaincode::AssetTransferChaincode(AssetTransferConfig config)
    : config_(config) {}

std::string AssetTransferChaincode::AssetKey(int asset) {
  return MakeCompositeKey(kAssetTable,
                          {PadKey(static_cast<uint64_t>(asset), 6)});
}

std::string AssetTransferChaincode::OwnerName(int owner) {
  return "owner" + PadKey(static_cast<uint64_t>(owner), 3);
}

std::string AssetTransferChaincode::OwnedKey(int owner, int asset) {
  return MakeCompositeKey(
      kOwnedTable, {OwnerName(owner), PadKey(static_cast<uint64_t>(asset), 6)});
}

std::string AssetTransferChaincode::AccountKey(int account) {
  return MakeCompositeKey(kAcctTable,
                          {PadKey(static_cast<uint64_t>(account), 4)});
}

std::vector<WriteItem> AssetTransferChaincode::BootstrapState() const {
  std::vector<WriteItem> writes;
  int owners = config_.owners < 1 ? 1 : config_.owners;
  for (int a = 0; a < config_.assets; ++a) {
    int owner = a % owners;
    writes.push_back(WriteItem{
        AssetKey(a), AssetDoc(OwnerName(owner), 100 + (a * 17) % 900), false});
    writes.push_back(WriteItem{
        OwnedKey(owner, a), JsonObject({{"docType", "owned"}}), false});
  }
  for (int acct = 0; acct < owners; ++acct) {
    writes.push_back(WriteItem{
        AccountKey(acct),
        JsonObject({{"docType", "acct"}, {"balance", "1000000"}}), false});
  }
  return writes;
}

std::vector<std::string> AssetTransferChaincode::Functions() const {
  return {"createAsset", "transferAsset", "readAsset", "queryByOwner",
          "credit",      "debit"};
}

Status AssetTransferChaincode::Invoke(ChaincodeStub& stub,
                                      const Invocation& inv) {
  const auto& args = inv.args;
  auto need = [&](size_t n) -> Status {
    if (args.size() < n) {
      return Status::InvalidArgument(inv.function + ": expected " +
                                     std::to_string(n) + " args");
    }
    return Status::OK();
  };

  if (inv.function == "createAsset") {
    // args: asset id, owner index, value
    FABRICSIM_RETURN_NOT_OK(need(3));
    int asset = std::stoi(args[0]);
    int owner = std::stoi(args[1]);
    std::optional<std::string> existing = stub.GetState(AssetKey(asset));
    if (existing.has_value()) {
      return Status::InvalidArgument(
          StrFormat("createAsset: asset %d already exists", asset));
    }
    stub.PutState(AssetKey(asset),
                  AssetDoc(OwnerName(owner), std::stoll(args[2])));
    stub.PutState(OwnedKey(owner, asset),
                  JsonObject({{"docType", "owned"}}));
    return Status::OK();
  }
  if (inv.function == "transferAsset") {
    // args: asset id, new owner index
    FABRICSIM_RETURN_NOT_OK(need(2));
    int asset = std::stoi(args[0]);
    int to = std::stoi(args[1]);
    std::optional<std::string> doc = stub.GetState(AssetKey(asset));
    if (!doc.has_value()) {
      return Status::NotFound(
          StrFormat("transferAsset: no asset %d", asset));
    }
    std::string from = ExtractJsonField(*doc, "owner").value_or("");
    long long value =
        std::stoll(ExtractJsonField(*doc, "value").value_or("0"));
    // Moving the index entry between subtrees is what perturbs the two
    // owners' queryByOwner ranges (delete from one, insert into the
    // other) — the phantom source.
    stub.DelState(MakeCompositeKey(
        kOwnedTable, {from, PadKey(static_cast<uint64_t>(asset), 6)}));
    stub.PutState(OwnedKey(to, asset), JsonObject({{"docType", "owned"}}));
    stub.PutState(AssetKey(asset), AssetDoc(OwnerName(to), value));
    return Status::OK();
  }
  if (inv.function == "readAsset") {
    FABRICSIM_RETURN_NOT_OK(need(1));
    stub.GetState(AssetKey(std::stoi(args[0])));
    return Status::OK();
  }
  if (inv.function == "queryByOwner") {
    // args: owner index — phantom-checked scan of one owner's subtree.
    FABRICSIM_RETURN_NOT_OK(need(1));
    stub.GetStateByPartialCompositeKey(kOwnedTable,
                                       {OwnerName(std::stoi(args[0]))});
    return Status::OK();
  }
  if (inv.function == "credit" || inv.function == "debit") {
    // args: account index, amount_cents. Overdrafts are allowed: the
    // cross-channel pack needs the second leg to be retryable forever,
    // so balance checks live with the client, not the contract.
    FABRICSIM_RETURN_NOT_OK(need(2));
    int acct = std::stoi(args[0]);
    long long amount = std::stoll(args[1]);
    std::optional<std::string> doc = stub.GetState(AccountKey(acct));
    if (!doc.has_value()) {
      return Status::NotFound(StrFormat("%s: no account %d",
                                        inv.function.c_str(), acct));
    }
    long long balance =
        std::stoll(ExtractJsonField(*doc, "balance").value_or("0"));
    balance += inv.function == "credit" ? amount : -amount;
    stub.PutState(AccountKey(acct),
                  JsonObject({{"docType", "acct"},
                              {"balance", std::to_string(balance)}}));
    return Status::OK();
  }
  return Status::InvalidArgument("asset: unknown function " + inv.function);
}

}  // namespace fabricsim
