#ifndef FABRICSIM_CHAINCODE_EHR_H_
#define FABRICSIM_CHAINCODE_EHR_H_

#include "src/chaincode/chaincode.h"

namespace fabricsim {

/// Electronic Health Records chaincode (paper §4.3, Table 2).
///
/// Manages access credentials for patient profiles and health records;
/// the records themselves live off-chain. The world state is
/// bootstrapped with `num_patients` profiles (keys "PROF<nnnn>") and
/// the same number of health records (keys "EHR<nnnn>"), 100 each by
/// default — intentionally small to induce conflicts.
///
/// Function → operation footprint (Table 2):
///   initLedger            2xW      addEhr               2xR, 2xW
///   grantProfileAccess    1xR,1xW  readProfile          1xR
///   revokeProfileAccess   1xR,1xW  viewPartialProfile   1xR
///   revokeEhrAccess       2xR,2xW  viewEHR              1xR
///   grantEhrAccess        2xR,2xW  queryEHR             1xR
class EhrChaincode : public Chaincode {
 public:
  explicit EhrChaincode(int num_patients = 100);

  std::string name() const override { return "ehr"; }
  std::vector<WriteItem> BootstrapState() const override;
  Status Invoke(ChaincodeStub& stub, const Invocation& inv) override;
  std::vector<std::string> Functions() const override;

  int num_patients() const { return num_patients_; }

  /// Key helpers shared with the workload generator.
  static std::string ProfileKey(int index);
  static std::string RecordKey(int index);

 private:
  int num_patients_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_EHR_H_
