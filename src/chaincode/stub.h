#ifndef FABRICSIM_CHAINCODE_STUB_H_
#define FABRICSIM_CHAINCODE_STUB_H_

#include <optional>
#include <string>
#include <vector>

#include "src/chaincode/composite_key.h"
#include "src/common/status.h"
#include "src/ledger/rwset.h"
#include "src/statedb/rich_query.h"
#include "src/statedb/state_database.h"

namespace fabricsim {

/// The chaincode-facing API, mirroring Fabric's shim.ChaincodeStub.
///
/// Semantics copied from Fabric's transaction simulator:
///  * GetState always reads the *committed* world state — a chaincode
///    never sees its own buffered writes within one invocation.
///  * PutState/DelState only append to the write set; the world state
///    is untouched until the validation phase applies it.
///  * GetStateByRange records the whole observed interval for phantom
///    read validation.
///  * GetQueryResult (rich query) requires CouchDB and is NOT
///    re-validated — no phantom detection, like the real shim.
class ChaincodeStub {
 public:
  /// `db` is the endorsing peer's world-state replica;
  /// `rich_queries_supported` reflects the configured database type.
  ChaincodeStub(const StateDatabase& db, bool rich_queries_supported);

  /// Point read; records (key, observed version) in the read set.
  /// nullopt when the key does not exist (still recorded, found=false).
  std::optional<std::string> GetState(const std::string& key);

  /// Buffers an upsert into the write set.
  void PutState(const std::string& key, std::string value);

  /// Buffers a delete into the write set.
  void DelState(const std::string& key);

  /// Range scan over [start_key, end_key); records the full footprint
  /// for phantom validation.
  std::vector<StateEntry> GetStateByRange(const std::string& start_key,
                                          const std::string& end_key);

  /// Rich selector query (CouchDB only). The result footprint is
  /// recorded with phantom_check=false.
  Result<std::vector<StateEntry>> GetQueryResult(const std::string& selector);

  /// Prefix scan over the composite keys of `object_type` whose first
  /// attributes equal `partial_attributes` (Fabric's
  /// GetStateByPartialCompositeKey). A plain GetStateByRange over
  /// CompositeKeyRange(), so the footprint is phantom-checked like any
  /// range read.
  std::vector<StateEntry> GetStateByPartialCompositeKey(
      const std::string& object_type,
      const std::vector<std::string>& partial_attributes);

  /// Shared composite-key helpers (see src/chaincode/composite_key.h
  /// for the layout and separator-escaping contract). Statics on the
  /// stub so chaincode reads like its Fabric counterpart.
  static std::string CreateCompositeKey(
      const std::string& object_type,
      const std::vector<std::string>& attributes) {
    return MakeCompositeKey(object_type, attributes);
  }
  static bool SplitCompositeKey(const std::string& key,
                                std::string* object_type,
                                std::vector<std::string>* attributes) {
    return ::fabricsim::SplitCompositeKey(key, object_type, attributes);
  }

  /// The accumulated read/write set.
  const ReadWriteSet& rwset() const { return rwset_; }
  ReadWriteSet TakeRwset() { return std::move(rwset_); }

  bool rich_queries_supported() const { return rich_queries_supported_; }

 private:
  const StateDatabase& db_;
  bool rich_queries_supported_;
  ReadWriteSet rwset_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_STUB_H_
