#include "src/chaincode/tpcc/tpcc_chaincode.h"

#include <algorithm>
#include <set>
#include <string>

#include "src/chaincode/composite_key.h"
#include "src/common/strings.h"
#include "src/statedb/rich_query.h"

namespace fabricsim {

using tpcc::CustomerKey;
using tpcc::DistrictKey;
using tpcc::ItemKey;
using tpcc::NewOrderKey;
using tpcc::OrderKey;
using tpcc::OrderLineKey;
using tpcc::StockKey;
using tpcc::WarehouseKey;

namespace {

long long FieldInt(const std::string& doc, const char* field) {
  return std::stoll(ExtractJsonField(doc, field).value_or("0"));
}

std::string DistrictDoc(int tax_bp, long long ytd, long long next_o_id) {
  return JsonObject({{"docType", "district"},
                     {"tax_bp", std::to_string(tax_bp)},
                     {"ytd", std::to_string(ytd)},
                     {"next_o_id", std::to_string(next_o_id)}});
}

std::string CustomerDoc(long long balance, long long ytd_payment,
                        long long payments) {
  return JsonObject({{"docType", "customer"},
                     {"balance", std::to_string(balance)},
                     {"ytd_payment", std::to_string(ytd_payment)},
                     {"payments", std::to_string(payments)}});
}

std::string StockDoc(long long quantity, long long ytd, long long order_cnt) {
  return JsonObject({{"docType", "stock"},
                     {"quantity", std::to_string(quantity)},
                     {"ytd", std::to_string(ytd)},
                     {"order_cnt", std::to_string(order_cnt)}});
}

std::string OrderDoc(int c_id, int ol_cnt, const std::string& carrier) {
  return JsonObject({{"docType", "order"},
                     {"c_id", std::to_string(c_id)},
                     {"ol_cnt", std::to_string(ol_cnt)},
                     {"carrier", carrier}});
}

}  // namespace

TpccChaincode::TpccChaincode(TpccConfig config) : config_(config) {}

std::vector<WriteItem> TpccChaincode::BootstrapState() const {
  std::vector<WriteItem> writes;
  for (int i = 0; i < config_.items; ++i) {
    writes.push_back(WriteItem{
        ItemKey(i),
        JsonObject({{"docType", "item"},
                    {"price", std::to_string(tpcc::ItemPriceCents(i))}}),
        false});
  }
  for (int w = 0; w < config_.warehouses; ++w) {
    writes.push_back(WriteItem{
        WarehouseKey(w),
        JsonObject({{"docType", "warehouse"},
                    {"tax_bp", std::to_string(tpcc::WarehouseTaxBp(w))},
                    {"ytd", "0"}}),
        false});
    for (int d = 0; d < config_.districts_per_warehouse; ++d) {
      writes.push_back(WriteItem{
          DistrictKey(w, d), DistrictDoc(tpcc::DistrictTaxBp(w, d), 0, 0),
          false});
      for (int c = 0; c < config_.customers_per_district; ++c) {
        writes.push_back(
            WriteItem{CustomerKey(w, d, c), CustomerDoc(0, 0, 0), false});
      }
    }
    for (int i = 0; i < config_.items; ++i) {
      writes.push_back(WriteItem{
          StockKey(w, i),
          StockDoc(tpcc::InitialStockQuantity(w, i), 0, 0), false});
    }
  }
  return writes;
}

std::vector<std::string> TpccChaincode::Functions() const {
  return {"NewOrder", "Payment", "Delivery", "OrderStatus", "StockLevel"};
}

Status TpccChaincode::Invoke(ChaincodeStub& stub, const Invocation& inv) {
  if (inv.function == "NewOrder") return NewOrder(stub, inv.args);
  if (inv.function == "Payment") return Payment(stub, inv.args);
  if (inv.function == "Delivery") return Delivery(stub, inv.args);
  if (inv.function == "OrderStatus") return OrderStatus(stub, inv.args);
  if (inv.function == "StockLevel") return StockLevel(stub, inv.args);
  return Status::InvalidArgument("tpcc: unknown function " + inv.function);
}

// args: w, d, c, n, then n (item, quantity) pairs.
Status TpccChaincode::NewOrder(ChaincodeStub& stub,
                               const std::vector<std::string>& args) {
  if (args.size() < 4) {
    return Status::InvalidArgument("NewOrder: expected at least 4 args");
  }
  int w = std::stoi(args[0]);
  int d = std::stoi(args[1]);
  int c = std::stoi(args[2]);
  int n = std::stoi(args[3]);
  if (n < 1 || args.size() < static_cast<size_t>(4 + 2 * n)) {
    return Status::InvalidArgument("NewOrder: expected " +
                                   std::to_string(4 + 2 * std::max(n, 1)) +
                                   " args");
  }

  // Item reads come first (TPC-C §2.4.2.3: the 1% invalid-item
  // transaction performs its reads, then rolls back). The error status
  // fails endorsement, so none of the writes below reach the orderer —
  // the simulator's application-level rollback.
  std::vector<int> prices(n);
  for (int l = 0; l < n; ++l) {
    int item = std::stoi(args[4 + 2 * l]);
    std::optional<std::string> doc = stub.GetState(ItemKey(item));
    if (!doc.has_value()) {
      return Status::NotFound(StrFormat(
          "NewOrder: item %d does not exist; transaction rolled back", item));
    }
    prices[l] = static_cast<int>(FieldInt(*doc, "price"));
  }

  std::optional<std::string> wh = stub.GetState(WarehouseKey(w));
  std::optional<std::string> dist = stub.GetState(DistrictKey(w, d));
  if (!wh.has_value() || !dist.has_value()) {
    return Status::NotFound(StrFormat("NewOrder: warehouse %d / district %d "
                                      "not bootstrapped", w, d));
  }
  // The district row is the hotspot: o_id comes from the committed
  // d_next_o_id (never from per-client state, so every endorser derives
  // the same id), and writing it back incremented makes the row a
  // sequence counter that every concurrent NewOrder in this district
  // conflicts on.
  long long o_id = FieldInt(*dist, "next_o_id");
  stub.PutState(DistrictKey(w, d),
                DistrictDoc(static_cast<int>(FieldInt(*dist, "tax_bp")),
                            FieldInt(*dist, "ytd"), o_id + 1));
  std::optional<std::string> cust = stub.GetState(CustomerKey(w, d, c));
  if (!cust.has_value()) {
    return Status::NotFound(StrFormat("NewOrder: no customer %d", c));
  }

  int o = static_cast<int>(o_id);
  stub.PutState(OrderKey(w, d, o), OrderDoc(c, n, ""));
  stub.PutState(NewOrderKey(w, d, o),
                JsonObject({{"docType", "neworder"}}));
  for (int l = 0; l < n; ++l) {
    int item = std::stoi(args[4 + 2 * l]);
    int qty = std::stoi(args[5 + 2 * l]);
    std::optional<std::string> stock = stub.GetState(StockKey(w, item));
    long long s_qty = stock.has_value() ? FieldInt(*stock, "quantity") : 0;
    // TPC-C §2.4.2.2: restock by 91 when the shelf would drop below 10.
    long long new_qty =
        s_qty - qty >= 10 ? s_qty - qty : s_qty - qty + 91;
    stub.PutState(StockKey(w, item),
                  StockDoc(new_qty,
                           (stock.has_value() ? FieldInt(*stock, "ytd") : 0) +
                               qty,
                           (stock.has_value()
                                ? FieldInt(*stock, "order_cnt") : 0) + 1));
    stub.PutState(OrderLineKey(w, d, o, l),
                  JsonObject({{"docType", "orderline"},
                              {"i_id", std::to_string(item)},
                              {"qty", std::to_string(qty)},
                              {"amount",
                               std::to_string(1LL * qty * prices[l])}}));
  }
  return Status::OK();
}

// args: w, d, c, amount_cents.
Status TpccChaincode::Payment(ChaincodeStub& stub,
                              const std::vector<std::string>& args) {
  if (args.size() < 4) {
    return Status::InvalidArgument("Payment: expected 4 args");
  }
  int w = std::stoi(args[0]);
  int d = std::stoi(args[1]);
  int c = std::stoi(args[2]);
  long long amount = std::stoll(args[3]);

  std::optional<std::string> wh = stub.GetState(WarehouseKey(w));
  std::optional<std::string> dist = stub.GetState(DistrictKey(w, d));
  std::optional<std::string> cust = stub.GetState(CustomerKey(w, d, c));
  if (!wh.has_value() || !dist.has_value() || !cust.has_value()) {
    return Status::NotFound(
        StrFormat("Payment: missing row for w=%d d=%d c=%d", w, d, c));
  }
  // Port decision: the warehouse row stays immutable (tax only) and
  // ytd accounting lives entirely in the district row (w_ytd is the
  // sum of its districts' d_ytd, derivable at read time). Accumulating
  // w_ytd on the one warehouse row would serialize every Payment in
  // the warehouse AND kill every NewOrder that read w_tax — the
  // classic Fabric hot-row anti-pattern, and it would bury the
  // district signal Klenik & Kocsis's analysis attributes the
  // conflicts to. Payment therefore writes the same district row
  // NewOrder sequences on, doubling down on the district hotspot.
  stub.PutState(DistrictKey(w, d),
                DistrictDoc(static_cast<int>(FieldInt(*dist, "tax_bp")),
                            FieldInt(*dist, "ytd") + amount,
                            FieldInt(*dist, "next_o_id")));
  stub.PutState(CustomerKey(w, d, c),
                CustomerDoc(FieldInt(*cust, "balance") - amount,
                            FieldInt(*cust, "ytd_payment") + amount,
                            FieldInt(*cust, "payments") + 1));
  return Status::OK();
}

// args: w, d, carrier id.
Status TpccChaincode::Delivery(ChaincodeStub& stub,
                               const std::vector<std::string>& args) {
  if (args.size() < 3) {
    return Status::InvalidArgument("Delivery: expected 3 args");
  }
  int w = std::stoi(args[0]);
  int d = std::stoi(args[1]);
  const std::string& carrier = args[2];

  // Phantom-checked scan of the district's NEWORDER backlog: a
  // concurrent NewOrder committing into this range between endorsement
  // and validation fails this transaction with PHANTOM_READ_CONFLICT.
  std::vector<StateEntry> backlog = stub.GetStateByPartialCompositeKey(
      tpcc::kNewOrderTable,
      {PadKey(static_cast<uint64_t>(w), 4),
       PadKey(static_cast<uint64_t>(d), 2)});
  int delivered = 0;
  for (const StateEntry& entry : backlog) {
    if (delivered >= kDeliveryBatch) break;
    std::string type;
    std::vector<std::string> attrs;
    if (!SplitCompositeKey(entry.key, &type, &attrs) || attrs.size() != 3) {
      continue;
    }
    int o = std::stoi(attrs[2]);
    stub.DelState(entry.key);
    std::optional<std::string> order = stub.GetState(OrderKey(w, d, o));
    if (!order.has_value()) continue;
    int c = static_cast<int>(FieldInt(*order, "c_id"));
    int ol_cnt = static_cast<int>(FieldInt(*order, "ol_cnt"));
    stub.PutState(OrderKey(w, d, o), OrderDoc(c, ol_cnt, carrier));
    std::optional<std::string> cust = stub.GetState(CustomerKey(w, d, c));
    if (cust.has_value()) {
      // Flat per-line credit instead of re-scanning the order lines:
      // keeps Delivery's footprint O(batch) rather than O(batch x
      // lines) while still writing the customer row TPC-C requires.
      stub.PutState(CustomerKey(w, d, c),
                    CustomerDoc(FieldInt(*cust, "balance") + 500LL * ol_cnt,
                                FieldInt(*cust, "ytd_payment"),
                                FieldInt(*cust, "payments")));
    }
    ++delivered;
  }
  return Status::OK();
}

// args: w, d, c, o (the generator's optimistic guess of a recent
// order; a stale guess still records the read dependency).
Status TpccChaincode::OrderStatus(ChaincodeStub& stub,
                                  const std::vector<std::string>& args) {
  if (args.size() < 4) {
    return Status::InvalidArgument("OrderStatus: expected 4 args");
  }
  int w = std::stoi(args[0]);
  int d = std::stoi(args[1]);
  int c = std::stoi(args[2]);
  int o = std::stoi(args[3]);
  stub.GetState(CustomerKey(w, d, c));
  stub.GetState(OrderKey(w, d, o));
  stub.GetStateByPartialCompositeKey(
      tpcc::kOrderLineTable,
      {PadKey(static_cast<uint64_t>(w), 4), PadKey(static_cast<uint64_t>(d), 2),
       PadKey(static_cast<uint64_t>(o), 8)});
  return Status::OK();
}

// args: w, d, threshold.
Status TpccChaincode::StockLevel(ChaincodeStub& stub,
                                 const std::vector<std::string>& args) {
  if (args.size() < 3) {
    return Status::InvalidArgument("StockLevel: expected 3 args");
  }
  int w = std::stoi(args[0]);
  int d = std::stoi(args[1]);
  long long threshold = std::stoll(args[2]);

  // Read-only, yet it reads the district sequence row — so it cannot
  // write-conflict with anything but still dies of MVCC_READ_CONFLICT
  // whenever a NewOrder/Payment for the district commits first. This
  // is the paper's "read-only transactions are not safe" observation.
  std::optional<std::string> dist = stub.GetState(DistrictKey(w, d));
  if (!dist.has_value()) {
    return Status::NotFound(StrFormat("StockLevel: no district %d/%d", w, d));
  }
  long long next_o = FieldInt(*dist, "next_o_id");
  long long lo = std::max(0LL, next_o - 10);
  // Order-line keys sort by (w, d, o, line), so the last-10-orders
  // window is one contiguous range: [prefix(w,d,lo), prefix(w,d,next)).
  std::vector<StateEntry> lines = stub.GetStateByRange(
      MakeCompositeKey(tpcc::kOrderLineTable,
                       {PadKey(static_cast<uint64_t>(w), 4),
                        PadKey(static_cast<uint64_t>(d), 2),
                        PadKey(static_cast<uint64_t>(lo), 8)}),
      MakeCompositeKey(tpcc::kOrderLineTable,
                       {PadKey(static_cast<uint64_t>(w), 4),
                        PadKey(static_cast<uint64_t>(d), 2),
                        PadKey(static_cast<uint64_t>(next_o), 8)}));
  std::set<int> items;
  for (const StateEntry& line : lines) {
    if (items.size() >= 20) break;  // bounded footprint
    items.insert(
        static_cast<int>(FieldInt(line.vv.value, "i_id")));
  }
  long long low = 0;
  for (int item : items) {
    std::optional<std::string> stock = stub.GetState(StockKey(w, item));
    if (stock.has_value() && FieldInt(*stock, "quantity") < threshold) ++low;
  }
  (void)low;  // the count is the client's answer; only the reads matter here
  return Status::OK();
}

}  // namespace fabricsim
