#include "src/chaincode/tpcc/tpcc_schema.h"

#include "src/chaincode/composite_key.h"
#include "src/common/strings.h"

namespace fabricsim {
namespace tpcc {

// Pad widths chosen so the simulator-scale defaults never overflow a
// column (and a 10^8 order counter outlasts any feasible run length).
namespace {
constexpr int kWPad = 4;
constexpr int kDPad = 2;
constexpr int kCPad = 5;
constexpr int kOPad = 8;
constexpr int kLPad = 2;
constexpr int kIPad = 5;
}  // namespace

std::string WarehouseKey(int w) {
  return MakeCompositeKey(kWarehouseTable, {PadKey(w, kWPad)});
}

std::string DistrictKey(int w, int d) {
  return MakeCompositeKey(kDistrictTable, {PadKey(w, kWPad), PadKey(d, kDPad)});
}

std::string CustomerKey(int w, int d, int c) {
  return MakeCompositeKey(
      kCustomerTable, {PadKey(w, kWPad), PadKey(d, kDPad), PadKey(c, kCPad)});
}

std::string OrderKey(int w, int d, int o) {
  return MakeCompositeKey(
      kOrderTable, {PadKey(w, kWPad), PadKey(d, kDPad), PadKey(o, kOPad)});
}

std::string NewOrderKey(int w, int d, int o) {
  return MakeCompositeKey(
      kNewOrderTable, {PadKey(w, kWPad), PadKey(d, kDPad), PadKey(o, kOPad)});
}

std::string OrderLineKey(int w, int d, int o, int line) {
  return MakeCompositeKey(kOrderLineTable,
                          {PadKey(w, kWPad), PadKey(d, kDPad),
                           PadKey(o, kOPad), PadKey(line, kLPad)});
}

std::string StockKey(int w, int i) {
  return MakeCompositeKey(kStockTable, {PadKey(w, kWPad), PadKey(i, kIPad)});
}

std::string ItemKey(int i) {
  return MakeCompositeKey(kItemTable, {PadKey(i, kIPad)});
}

std::string TableForKey(const std::string& key) {
  return CompositeKeyObjectType(key);
}

// Synthetic catalogue values: arbitrary but fixed functions of the id,
// so every peer (and every re-run) bootstraps identical world state
// without consuming randomness.
int ItemPriceCents(int i) { return 100 + (i * 37) % 9901; }

int WarehouseTaxBp(int w) { return (w * 731) % 2001; }

int DistrictTaxBp(int w, int d) { return (w * 731 + d * 137) % 2001; }

int InitialStockQuantity(int w, int i) { return 10 + (w * 13 + i * 7) % 91; }

}  // namespace tpcc
}  // namespace fabricsim
