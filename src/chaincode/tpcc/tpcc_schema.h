#ifndef FABRICSIM_CHAINCODE_TPCC_TPCC_SCHEMA_H_
#define FABRICSIM_CHAINCODE_TPCC_TPCC_SCHEMA_H_

#include <string>

#include "src/workload/workload_spec.h"

namespace fabricsim {
namespace tpcc {

/// Composite-key layout of the TPC-C entities. Every table is one
/// object type; numeric attributes are zero-padded so lexicographic
/// key order equals (warehouse, district, order, line) tuple order and
/// partial-composite range scans enumerate exactly one subtree.
///
/// Conflict topology (the reason this schema exists): NewOrder reads
/// AND writes its district row (d_next_o_id), Payment reads AND writes
/// the same row (d_ytd), and StockLevel reads it (d_next_o_id) — so
/// 88%+ of the standard mix funnels through warehouses x 10 district
/// rows. That concentration is the MVCC hotspot Klenik & Kocsis
/// measured on real Fabric, and what bench_tpcc reproduces.
inline constexpr char kWarehouseTable[] = "WAREHOUSE";
inline constexpr char kDistrictTable[] = "DISTRICT";
inline constexpr char kCustomerTable[] = "CUSTOMER";
inline constexpr char kOrderTable[] = "ORDER";
inline constexpr char kNewOrderTable[] = "NEWORDER";
inline constexpr char kOrderLineTable[] = "ORDERLINE";
inline constexpr char kStockTable[] = "STOCK";
inline constexpr char kItemTable[] = "ITEM";

std::string WarehouseKey(int w);
std::string DistrictKey(int w, int d);
std::string CustomerKey(int w, int d, int c);
std::string OrderKey(int w, int d, int o);
std::string NewOrderKey(int w, int d, int o);
std::string OrderLineKey(int w, int d, int o, int line);
std::string StockKey(int w, int i);
std::string ItemKey(int i);

/// Table (object type) a state key belongs to, or "" for keys outside
/// the TPC-C schema — the classifier behind per-entity failure
/// attribution: "which table's keys conflict?".
std::string TableForKey(const std::string& key);

/// Deterministic synthetic field values (no RNG at bootstrap: every
/// peer replica must bootstrap byte-identically).
int ItemPriceCents(int i);
int WarehouseTaxBp(int w);     ///< basis points
int DistrictTaxBp(int w, int d);
int InitialStockQuantity(int w, int i);

}  // namespace tpcc
}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_TPCC_TPCC_SCHEMA_H_
