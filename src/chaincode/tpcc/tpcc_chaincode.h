#ifndef FABRICSIM_CHAINCODE_TPCC_TPCC_CHAINCODE_H_
#define FABRICSIM_CHAINCODE_TPCC_TPCC_CHAINCODE_H_

#include "src/chaincode/chaincode.h"
#include "src/chaincode/tpcc/tpcc_schema.h"

namespace fabricsim {

/// TPC-C order-entry chaincode, after Klenik & Kocsis ("Porting a
/// benchmark with a classic workload to blockchain: TPC-C on
/// Hyperledger Fabric"). The five TPC-C transactions run against
/// composite-keyed WAREHOUSE / DISTRICT / CUSTOMER / ORDER / NEWORDER /
/// ORDERLINE / STOCK / ITEM tables (src/chaincode/tpcc/tpcc_schema.h).
///
/// The point of the port is the conflict structure, not the pricing
/// maths: NewOrder reads d_next_o_id from its district row and writes
/// it back incremented — the row is a sequence counter, so any two
/// NewOrders for the same district in flight together conflict — and
/// Payment writes d_ytd on the *same* row. With the standard 45/43 mix
/// that funnels ~88% of transactions through warehouses x 10 district
/// rows, which under Fabric's optimistic execute-order-validate
/// pipeline shows up as MVCC_READ_CONFLICT concentrated on DISTRICT
/// keys, rising with block size (larger blocks = wider conflict
/// window). Money is integer cents throughout: endorsement compares
/// rw-sets byte-for-byte, so float formatting must never enter state.
///
/// Function → operation footprint (n = order lines, B = delivery batch):
///   NewOrder    (3+2n)xR, (3+2n)xW   (invalid item: reads only, error)
///   Payment     3xR, 2xW  (warehouse row read-only: ytd lives in the
///                          district row; see Payment in the .cc)
///   Delivery    1xRR, ≤2B xR, ≤3B xW  (phantom-checked NEWORDER scan)
///   OrderStatus 2xR, 1xRR             (read-only)
///   StockLevel  (1+dist)xR, 1xRR      (read-only; reads the hot
///                                      district row → MVCC victim)
class TpccChaincode : public Chaincode {
 public:
  explicit TpccChaincode(TpccConfig config = {});

  std::string name() const override { return "tpcc"; }
  std::vector<WriteItem> BootstrapState() const override;
  Status Invoke(ChaincodeStub& stub, const Invocation& inv) override;
  std::vector<std::string> Functions() const override;

  const TpccConfig& config() const { return config_; }

  /// Delivery consumes up to this many oldest NEWORDER entries per
  /// call. 20 keeps consumption capacity (4% x 20) ahead of production
  /// (45%), so the backlog — and with it Delivery's scan footprint —
  /// stays bounded over arbitrarily long runs.
  static constexpr int kDeliveryBatch = 20;

 private:
  Status NewOrder(ChaincodeStub& stub, const std::vector<std::string>& args);
  Status Payment(ChaincodeStub& stub, const std::vector<std::string>& args);
  Status Delivery(ChaincodeStub& stub, const std::vector<std::string>& args);
  Status OrderStatus(ChaincodeStub& stub,
                     const std::vector<std::string>& args);
  Status StockLevel(ChaincodeStub& stub, const std::vector<std::string>& args);

  TpccConfig config_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_TPCC_TPCC_CHAINCODE_H_
