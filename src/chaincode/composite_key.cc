#include "src/chaincode/composite_key.h"

namespace fabricsim {

namespace {

void AppendEscaped(const std::string& attribute, std::string* out) {
  for (char c : attribute) {
    if (c == kCompositeKeyEsc) {
      out->push_back(kCompositeKeyEsc);
      out->push_back('e');
    } else if (c == kCompositeKeySep) {
      out->push_back(kCompositeKeyEsc);
      out->push_back('s');
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string MakeCompositeKey(const std::string& object_type,
                             const std::vector<std::string>& attributes) {
  std::string key;
  key.reserve(object_type.size() + attributes.size() * 8 + 1);
  AppendEscaped(object_type, &key);
  key.push_back(kCompositeKeySep);
  for (const std::string& attribute : attributes) {
    AppendEscaped(attribute, &key);
    key.push_back(kCompositeKeySep);
  }
  return key;
}

bool SplitCompositeKey(const std::string& key, std::string* object_type,
                       std::vector<std::string>* attributes) {
  object_type->clear();
  attributes->clear();
  std::string piece;
  bool first = true;
  for (size_t i = 0; i < key.size(); ++i) {
    char c = key[i];
    if (c == kCompositeKeyEsc) {
      if (i + 1 >= key.size()) return false;  // dangling escape
      char tag = key[++i];
      if (tag == 'e') {
        piece.push_back(kCompositeKeyEsc);
      } else if (tag == 's') {
        piece.push_back(kCompositeKeySep);
      } else {
        return false;  // unknown escape
      }
    } else if (c == kCompositeKeySep) {
      if (first) {
        *object_type = piece;
        first = false;
      } else {
        attributes->push_back(piece);
      }
      piece.clear();
    } else {
      piece.push_back(c);
    }
  }
  // A well-formed composite key ends in a separator, so the final
  // piece must be empty — and the object type must have been seen.
  return piece.empty() && !first;
}

std::pair<std::string, std::string> CompositeKeyRange(
    const std::string& object_type,
    const std::vector<std::string>& partial_attributes) {
  std::string start = MakeCompositeKey(object_type, partial_attributes);
  // Every key extending `start` differs from `end` first at start's
  // final separator byte (SEP < SEP+1), so [start, end) contains
  // exactly the keys with this prefix — the bytes after the prefix
  // never get compared.
  std::string end = start;
  end.back() = static_cast<char>(kCompositeKeySep + 1);
  return {std::move(start), std::move(end)};
}

std::string CompositeKeyObjectType(const std::string& key) {
  std::string object_type;
  std::string piece;
  for (size_t i = 0; i < key.size(); ++i) {
    char c = key[i];
    if (c == kCompositeKeyEsc) {
      if (i + 1 >= key.size()) return "";
      char tag = key[++i];
      if (tag == 'e') {
        piece.push_back(kCompositeKeyEsc);
      } else if (tag == 's') {
        piece.push_back(kCompositeKeySep);
      } else {
        return "";
      }
    } else if (c == kCompositeKeySep) {
      return piece;
    } else {
      piece.push_back(c);
    }
  }
  return "";  // no separator: not a composite key
}

}  // namespace fabricsim
