#include "src/chaincode/registry.h"

#include <algorithm>

#include "src/chaincode/digital_voting.h"
#include "src/chaincode/drm.h"
#include "src/chaincode/ehr.h"
#include "src/chaincode/genchain.h"
#include "src/chaincode/supply_chain.h"
#include "src/common/strings.h"

namespace fabricsim {

Status ChaincodeRegistry::Register(std::shared_ptr<Chaincode> chaincode) {
  return Register(kDefaultChannel, std::move(chaincode));
}

Status ChaincodeRegistry::Register(ChannelId channel,
                                   std::shared_ptr<Chaincode> chaincode) {
  if (chaincode == nullptr) {
    return Status::InvalidArgument("null chaincode");
  }
  std::string name = chaincode->name();
  if (!chaincodes_.emplace(std::make_pair(channel, name), std::move(chaincode))
           .second) {
    return Status::AlreadyExists(
        StrFormat("chaincode already installed on channel %d: %s", channel,
                  name.c_str()));
  }
  return Status::OK();
}

Chaincode* ChaincodeRegistry::Get(const std::string& name) const {
  return Get(kDefaultChannel, name);
}

Chaincode* ChaincodeRegistry::Get(ChannelId channel,
                                  const std::string& name) const {
  auto it = chaincodes_.find(std::make_pair(channel, name));
  if (it != chaincodes_.end()) return it->second.get();
  if (channel != kDefaultChannel) {
    it = chaincodes_.find(std::make_pair(kDefaultChannel, name));
    if (it != chaincodes_.end()) return it->second.get();
  }
  return nullptr;
}

std::vector<std::string> ChaincodeRegistry::InstalledNames() const {
  return InstalledNames(kDefaultChannel);
}

std::vector<std::string> ChaincodeRegistry::InstalledNames(
    ChannelId channel) const {
  std::vector<std::string> names;
  for (const auto& [key, cc] : chaincodes_) {
    if (key.first != channel && key.first != kDefaultChannel) continue;
    names.push_back(key.second);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

ChaincodeRegistry ChaincodeRegistry::CreateDefault() {
  ChaincodeRegistry registry;
  registry.Register(std::make_shared<EhrChaincode>());
  registry.Register(std::make_shared<DigitalVotingChaincode>());
  registry.Register(std::make_shared<SupplyChainChaincode>());
  registry.Register(std::make_shared<DrmChaincode>());
  registry.Register(
      std::make_shared<GenChaincode>(GenChaincodeSpec::PaperDefault()));
  return registry;
}

}  // namespace fabricsim
