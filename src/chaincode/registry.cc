#include "src/chaincode/registry.h"

#include "src/chaincode/digital_voting.h"
#include "src/chaincode/drm.h"
#include "src/chaincode/ehr.h"
#include "src/chaincode/genchain.h"
#include "src/chaincode/supply_chain.h"

namespace fabricsim {

Status ChaincodeRegistry::Register(std::shared_ptr<Chaincode> chaincode) {
  if (chaincode == nullptr) {
    return Status::InvalidArgument("null chaincode");
  }
  std::string name = chaincode->name();
  if (!chaincodes_.emplace(name, std::move(chaincode)).second) {
    return Status::AlreadyExists("chaincode already installed: " + name);
  }
  return Status::OK();
}

Chaincode* ChaincodeRegistry::Get(const std::string& name) const {
  auto it = chaincodes_.find(name);
  return it == chaincodes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ChaincodeRegistry::InstalledNames() const {
  std::vector<std::string> names;
  names.reserve(chaincodes_.size());
  for (const auto& [name, cc] : chaincodes_) names.push_back(name);
  return names;
}

ChaincodeRegistry ChaincodeRegistry::CreateDefault() {
  ChaincodeRegistry registry;
  registry.Register(std::make_shared<EhrChaincode>());
  registry.Register(std::make_shared<DigitalVotingChaincode>());
  registry.Register(std::make_shared<SupplyChainChaincode>());
  registry.Register(std::make_shared<DrmChaincode>());
  registry.Register(
      std::make_shared<GenChaincode>(GenChaincodeSpec::PaperDefault()));
  return registry;
}

}  // namespace fabricsim
