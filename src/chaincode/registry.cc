#include "src/chaincode/registry.h"

#include <algorithm>
#include <mutex>

#include "src/chaincode/asset_transfer.h"
#include "src/chaincode/digital_voting.h"
#include "src/chaincode/drm.h"
#include "src/chaincode/ehr.h"
#include "src/chaincode/genchain.h"
#include "src/chaincode/supply_chain.h"
#include "src/chaincode/tpcc/tpcc_chaincode.h"
#include "src/common/strings.h"
#include "src/workload/tpcc_workload.h"

namespace fabricsim {

namespace {

struct Catalog {
  std::mutex mu;
  std::map<std::string, ChaincodeFactory> entries;
};

// Built-ins are written straight into the map (not through
// RegisterChaincodeFactory, which would re-enter the function-local
// static below mid-initialisation).
void RegisterBuiltins(std::map<std::string, ChaincodeFactory>& entries) {
  entries["ehr"] = {[](const WorkloadConfig&) {
                      return std::make_shared<EhrChaincode>();
                    },
                    {}};
  entries["dv"] = {[](const WorkloadConfig&) {
                     return std::make_shared<DigitalVotingChaincode>();
                   },
                   {}};
  entries["scm"] = {[](const WorkloadConfig&) {
                      return std::make_shared<SupplyChainChaincode>();
                    },
                    {}};
  entries["drm"] = {[](const WorkloadConfig&) {
                      return std::make_shared<DrmChaincode>();
                    },
                    {}};
  entries["genchain"] = {[](const WorkloadConfig& config) {
                           return std::make_shared<GenChaincode>(
                               GenChaincodeSpec::PaperDefault(
                                   config.genchain_initial_keys));
                         },
                         {}};
  // The four paper chaincodes keep their generators inside
  // MakeWorkload()'s switch (their mixes predate the catalog); tpcc
  // and asset register the full pair, exercising the same path a
  // user-added chaincode would.
  entries["tpcc"] = {[](const WorkloadConfig& config) {
                       return std::make_shared<TpccChaincode>(config.tpcc);
                     },
                     [](const WorkloadConfig& config, bool) {
                       return MakeTpccWorkload(config);
                     }};
  entries["asset"] = {[](const WorkloadConfig& config) {
                        return std::make_shared<AssetTransferChaincode>(
                            config.asset);
                      },
                      [](const WorkloadConfig& config, bool) {
                        return MakeAssetTransferWorkload(config);
                      }};
}

Catalog& GetCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    RegisterBuiltins(c->entries);
    return c;
  }();
  return *catalog;
}

}  // namespace

Status RegisterChaincodeFactory(const std::string& name,
                                ChaincodeFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("chaincode factory name must be non-empty");
  }
  if (!factory.make_chaincode) {
    return Status::InvalidArgument("chaincode factory for " + name +
                                   " has no make_chaincode");
  }
  Catalog& catalog = GetCatalog();
  std::lock_guard<std::mutex> lock(catalog.mu);
  if (!catalog.entries.emplace(name, std::move(factory)).second) {
    return Status::AlreadyExists("chaincode factory already registered: " +
                                 name);
  }
  return Status::OK();
}

Status UnregisterChaincodeFactory(const std::string& name) {
  Catalog& catalog = GetCatalog();
  std::lock_guard<std::mutex> lock(catalog.mu);
  if (catalog.entries.erase(name) == 0) {
    return Status::NotFound("no chaincode factory registered: " + name);
  }
  return Status::OK();
}

std::vector<std::string> RegisteredChaincodeNames() {
  Catalog& catalog = GetCatalog();
  std::lock_guard<std::mutex> lock(catalog.mu);
  std::vector<std::string> names;
  names.reserve(catalog.entries.size());
  for (const auto& [name, factory] : catalog.entries) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::optional<ChaincodeFactory> FindChaincodeFactory(const std::string& name) {
  Catalog& catalog = GetCatalog();
  std::lock_guard<std::mutex> lock(catalog.mu);
  auto it = catalog.entries.find(name == "genChain" ? "genchain" : name);
  if (it == catalog.entries.end()) return std::nullopt;
  return it->second;
}

std::string UnknownChaincodeError(const std::string& name) {
  std::string message = "unknown chaincode: " + name + " (available: ";
  bool first = true;
  for (const std::string& available : RegisteredChaincodeNames()) {
    if (!first) message += ", ";
    message += available;
    first = false;
  }
  return message + ")";
}

Status ChaincodeRegistry::Register(std::shared_ptr<Chaincode> chaincode) {
  return Register(kDefaultChannel, std::move(chaincode));
}

Status ChaincodeRegistry::Register(ChannelId channel,
                                   std::shared_ptr<Chaincode> chaincode) {
  if (chaincode == nullptr) {
    return Status::InvalidArgument("null chaincode");
  }
  std::string name = chaincode->name();
  if (!chaincodes_.emplace(std::make_pair(channel, name), std::move(chaincode))
           .second) {
    return Status::AlreadyExists(
        StrFormat("chaincode already installed on channel %d: %s", channel,
                  name.c_str()));
  }
  return Status::OK();
}

Chaincode* ChaincodeRegistry::Get(const std::string& name) const {
  return Get(kDefaultChannel, name);
}

Chaincode* ChaincodeRegistry::Get(ChannelId channel,
                                  const std::string& name) const {
  auto it = chaincodes_.find(std::make_pair(channel, name));
  if (it != chaincodes_.end()) return it->second.get();
  if (channel != kDefaultChannel) {
    it = chaincodes_.find(std::make_pair(kDefaultChannel, name));
    if (it != chaincodes_.end()) return it->second.get();
  }
  return nullptr;
}

std::vector<std::string> ChaincodeRegistry::InstalledNames() const {
  return InstalledNames(kDefaultChannel);
}

std::vector<std::string> ChaincodeRegistry::InstalledNames(
    ChannelId channel) const {
  std::vector<std::string> names;
  for (const auto& [key, cc] : chaincodes_) {
    if (key.first != channel && key.first != kDefaultChannel) continue;
    names.push_back(key.second);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

ChaincodeRegistry ChaincodeRegistry::CreateDefault() {
  ChaincodeRegistry registry;
  // Every catalogued factory, built from a default WorkloadConfig.
  // Installed under the chaincode's own name() (which is why genchain
  // appears as "genChain" here).
  WorkloadConfig defaults;
  for (const std::string& name : RegisteredChaincodeNames()) {
    std::optional<ChaincodeFactory> factory = FindChaincodeFactory(name);
    if (factory.has_value()) {
      registry.Register(factory->make_chaincode(defaults));
    }
  }
  return registry;
}

}  // namespace fabricsim
