#ifndef FABRICSIM_CHAINCODE_DRM_H_
#define FABRICSIM_CHAINCODE_DRM_H_

#include "src/chaincode/chaincode.h"

namespace fabricsim {

/// Digital Rights Management chaincode (paper §4.3, Table 2).
///
/// 200 artworks (keys "ART<nnnn>", metadata in a dot-blockchain-media-
/// style document) and 200 right holders ("RH<nnnn>", industry-
/// standard IPI-like ids). Royalty metadata lives on chain; revenue of
/// a right holder is computed with a rich query over their artworks
/// (calcRevenue — not phantom-checked, per the shim caveat).
///
/// Function → operation footprint (Table 2):
///   initLedger    2xW        create       1xR, 2xW
///   play          2xR, 1xW   queryRghts   2xR
///   viewMetaData  1xR        calcRevenue  1xRR* (rich)
class DrmChaincode : public Chaincode {
 public:
  DrmChaincode(int num_artworks = 200, int num_right_holders = 200);

  std::string name() const override { return "drm"; }
  std::vector<WriteItem> BootstrapState() const override;
  Status Invoke(ChaincodeStub& stub, const Invocation& inv) override;
  std::vector<std::string> Functions() const override;

  int num_artworks() const { return num_artworks_; }
  int num_right_holders() const { return num_right_holders_; }

  static std::string ArtworkKey(int index);
  static std::string RightsKey(int index);
  static std::string HolderKey(int index);
  static std::string HolderId(int index);

 private:
  int num_artworks_;
  int num_right_holders_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_DRM_H_
