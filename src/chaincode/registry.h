#ifndef FABRICSIM_CHAINCODE_REGISTRY_H_
#define FABRICSIM_CHAINCODE_REGISTRY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/chaincode/chaincode.h"
#include "src/common/status.h"

namespace fabricsim {

/// Maps installed chaincode names to implementations. Chaincodes are
/// stateless (all state flows through the stub), so one shared
/// instance serves every peer.
class ChaincodeRegistry {
 public:
  /// Registers a chaincode under its name(). Fails on duplicates.
  Status Register(std::shared_ptr<Chaincode> chaincode);

  /// Looks up a chaincode; nullptr when not installed.
  Chaincode* Get(const std::string& name) const;

  std::vector<std::string> InstalledNames() const;

  /// Registry with the paper's four use-case chaincodes plus the
  /// default genChain.
  static ChaincodeRegistry CreateDefault();

 private:
  std::unordered_map<std::string, std::shared_ptr<Chaincode>> chaincodes_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_REGISTRY_H_
