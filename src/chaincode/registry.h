#ifndef FABRICSIM_CHAINCODE_REGISTRY_H_
#define FABRICSIM_CHAINCODE_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/channels/channel_types.h"
#include "src/chaincode/chaincode.h"
#include "src/common/status.h"

namespace fabricsim {

/// Maps installed chaincode names to implementations. Chaincodes are
/// stateless (all state flows through the stub), so one shared
/// instance serves every peer.
///
/// Installations are keyed by (channel, name), mirroring Fabric where
/// chaincode is instantiated per channel: the same name may bind to
/// different implementations on different channels. Lookups fall back
/// to the default channel's installation when the channel has no
/// channel-specific one, so a chaincode registered the legacy way
/// (channel-less) serves every channel.
class ChaincodeRegistry {
 public:
  /// Registers a chaincode under its name() on the default channel.
  /// Fails on duplicates.
  Status Register(std::shared_ptr<Chaincode> chaincode);

  /// Registers a chaincode on one channel. Fails when that (channel,
  /// name) pair is already taken.
  Status Register(ChannelId channel, std::shared_ptr<Chaincode> chaincode);

  /// Looks up a chaincode on the default channel; nullptr when not
  /// installed.
  Chaincode* Get(const std::string& name) const;

  /// Looks up a chaincode as seen from `channel`: the channel-specific
  /// installation if there is one, else the default channel's.
  Chaincode* Get(ChannelId channel, const std::string& name) const;

  /// Names installed on the default channel.
  std::vector<std::string> InstalledNames() const;

  /// Names visible from `channel` (channel-specific plus inherited
  /// default-channel installations), sorted, deduplicated.
  std::vector<std::string> InstalledNames(ChannelId channel) const;

  /// Registry with the paper's four use-case chaincodes plus the
  /// default genChain.
  static ChaincodeRegistry CreateDefault();

 private:
  /// Ordered map so InstalledNames() is deterministic.
  std::map<std::pair<ChannelId, std::string>, std::shared_ptr<Chaincode>>
      chaincodes_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_REGISTRY_H_
