#ifndef FABRICSIM_CHAINCODE_REGISTRY_H_
#define FABRICSIM_CHAINCODE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/channels/channel_types.h"
#include "src/chaincode/chaincode.h"
#include "src/common/status.h"
#include "src/workload/workload_spec.h"

namespace fabricsim {

class WorkloadGenerator;

/// How a named chaincode — and optionally its canned workload — is
/// built from a WorkloadConfig. Registered factories are first-class
/// citizens of the name-based plumbing: CreateDefault() installs them,
/// MakeChaincodeFor() / MakeWorkload() resolve them, and the unknown-
/// name diagnostic lists them. Adding a chaincode therefore means one
/// RegisterChaincodeFactory() call, not edits to every factory switch.
struct ChaincodeFactory {
  /// Builds the contract (required).
  std::function<std::shared_ptr<Chaincode>(const WorkloadConfig&)>
      make_chaincode;
  /// Builds the workload generator; may be empty for chaincodes driven
  /// only by hand-built generators (MakeWorkload() then rejects the
  /// name). The bool is rich_queries_supported.
  std::function<std::unique_ptr<WorkloadGenerator>(const WorkloadConfig&,
                                                   bool)>
      make_workload;
};

/// Registers a factory under `name`. Thread-safe; fails on duplicate
/// names (the seven built-ins are pre-registered).
Status RegisterChaincodeFactory(const std::string& name,
                                ChaincodeFactory factory);

/// Removes a registered factory (test teardown hook — built-ins can be
/// removed too, so tests must restore what they take). Fails when
/// `name` is not registered.
Status UnregisterChaincodeFactory(const std::string& name);

/// Sorted names of every registered factory.
std::vector<std::string> RegisteredChaincodeNames();

/// Looks up a factory by name ("genChain" is accepted as an alias of
/// "genchain"); nullopt when unknown. Returns a copy so the caller
/// holds no reference into the catalog.
std::optional<ChaincodeFactory> FindChaincodeFactory(
    const std::string& name);

/// Diagnostic for an unknown chaincode name, listing what is
/// available: "unknown chaincode: x (available: asset, dv, ...)".
std::string UnknownChaincodeError(const std::string& name);

/// Maps installed chaincode names to implementations. Chaincodes are
/// stateless (all state flows through the stub), so one shared
/// instance serves every peer.
///
/// Installations are keyed by (channel, name), mirroring Fabric where
/// chaincode is instantiated per channel: the same name may bind to
/// different implementations on different channels. Lookups fall back
/// to the default channel's installation when the channel has no
/// channel-specific one, so a chaincode registered the legacy way
/// (channel-less) serves every channel.
class ChaincodeRegistry {
 public:
  /// Registers a chaincode under its name() on the default channel.
  /// Fails on duplicates.
  Status Register(std::shared_ptr<Chaincode> chaincode);

  /// Registers a chaincode on one channel. Fails when that (channel,
  /// name) pair is already taken.
  Status Register(ChannelId channel, std::shared_ptr<Chaincode> chaincode);

  /// Looks up a chaincode on the default channel; nullptr when not
  /// installed.
  Chaincode* Get(const std::string& name) const;

  /// Looks up a chaincode as seen from `channel`: the channel-specific
  /// installation if there is one, else the default channel's.
  Chaincode* Get(ChannelId channel, const std::string& name) const;

  /// Names installed on the default channel.
  std::vector<std::string> InstalledNames() const;

  /// Names visible from `channel` (channel-specific plus inherited
  /// default-channel installations), sorted, deduplicated.
  std::vector<std::string> InstalledNames(ChannelId channel) const;

  /// Registry with every catalogued chaincode built from default
  /// configs: the paper's four use-case chaincodes, the default
  /// genChain, and whatever RegisterChaincodeFactory() added (tpcc and
  /// asset ride in this way).
  static ChaincodeRegistry CreateDefault();

 private:
  /// Ordered map so InstalledNames() is deterministic.
  std::map<std::pair<ChannelId, std::string>, std::shared_ptr<Chaincode>>
      chaincodes_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_REGISTRY_H_
