#ifndef FABRICSIM_CHAINCODE_CHAINCODE_H_
#define FABRICSIM_CHAINCODE_CHAINCODE_H_

#include <string>
#include <vector>

#include "src/chaincode/stub.h"
#include "src/common/status.h"

namespace fabricsim {

/// One chaincode invocation request: the function plus its arguments
/// (keys are pre-resolved by the workload generator so that every
/// endorser simulates the exact same logical operation).
struct Invocation {
  std::string function;
  std::vector<std::string> args;
};

/// Base class for smart contracts ("chaincode" in Fabric jargon).
/// Implementations must be deterministic functions of (stub, inv):
/// every endorsing peer runs the same invocation against its own
/// world-state replica.
class Chaincode {
 public:
  virtual ~Chaincode() = default;

  /// Chaincode name as installed on the channel.
  virtual std::string name() const = 0;

  /// World-state bootstrap entries, applied to every peer's replica
  /// at version (0,0) before the run starts (the paper's "initially
  /// populate the world state").
  virtual std::vector<WriteItem> BootstrapState() const = 0;

  /// Simulates one invocation, accumulating the rw-set in `stub`.
  virtual Status Invoke(ChaincodeStub& stub, const Invocation& inv) = 0;

  /// Names of the invocable functions (for diagnostics / Table 2).
  virtual std::vector<std::string> Functions() const = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_CHAINCODE_H_
