#include "src/chaincode/stub.h"

namespace fabricsim {

ChaincodeStub::ChaincodeStub(const StateDatabase& db,
                             bool rich_queries_supported)
    : db_(db), rich_queries_supported_(rich_queries_supported) {}

std::optional<std::string> ChaincodeStub::GetState(const std::string& key) {
  std::optional<VersionedValue> vv = db_.Get(key);
  ReadItem item;
  item.key = key;
  if (vv.has_value()) {
    item.version = vv->version;
    item.found = true;
  } else {
    item.found = false;
  }
  rwset_.reads.push_back(std::move(item));
  if (!vv.has_value()) return std::nullopt;
  return vv->value;
}

void ChaincodeStub::PutState(const std::string& key, std::string value) {
  rwset_.writes.push_back(WriteItem{key, std::move(value), false});
}

void ChaincodeStub::DelState(const std::string& key) {
  rwset_.writes.push_back(WriteItem{key, "", true});
}

std::vector<StateEntry> ChaincodeStub::GetStateByRange(
    const std::string& start_key, const std::string& end_key) {
  std::vector<StateEntry> entries = db_.GetRange(start_key, end_key);
  RangeQueryInfo info;
  info.start_key = start_key;
  info.end_key = end_key;
  info.phantom_check = true;
  info.reads.reserve(entries.size());
  for (const StateEntry& e : entries) {
    info.reads.push_back(ReadItem{e.key, e.vv.version, true});
  }
  rwset_.range_queries.push_back(std::move(info));
  return entries;
}

std::vector<StateEntry> ChaincodeStub::GetStateByPartialCompositeKey(
    const std::string& object_type,
    const std::vector<std::string>& partial_attributes) {
  auto [start, end] = CompositeKeyRange(object_type, partial_attributes);
  return GetStateByRange(start, end);
}

Result<std::vector<StateEntry>> ChaincodeStub::GetQueryResult(
    const std::string& selector) {
  if (!rich_queries_supported_) {
    return Status::Unimplemented(
        "rich queries require CouchDB as the state database");
  }
  Result<RichQuerySelector> parsed = RichQuerySelector::Parse(selector);
  if (!parsed.ok()) return parsed.status();
  std::vector<StateEntry> entries = ExecuteRichQuery(db_, parsed.value());
  RangeQueryInfo info;
  info.phantom_check = false;  // Fabric does not re-execute rich queries
  info.rich_selector = selector;
  info.reads.reserve(entries.size());
  for (const StateEntry& e : entries) {
    info.reads.push_back(ReadItem{e.key, e.vv.version, true});
  }
  rwset_.range_queries.push_back(std::move(info));
  return entries;
}

}  // namespace fabricsim
