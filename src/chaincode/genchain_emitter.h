#ifndef FABRICSIM_CHAINCODE_GENCHAIN_EMITTER_H_
#define FABRICSIM_CHAINCODE_GENCHAIN_EMITTER_H_

#include <string>

#include "src/chaincode/genchain.h"

namespace fabricsim {

/// Emits syntactically valid Go chaincode source implementing a
/// GenChaincodeSpec against the Fabric 1.4 shim — the textual output
/// of the paper's chaincode generator (§4.4: "The final output is a
/// syntactically correct chaincode with the user-specified chaincode
/// functions"). The emitted code is a faithful external representation
/// of what GenChaincode interprets in-process.
std::string EmitGoChaincode(const GenChaincodeSpec& spec);

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_GENCHAIN_EMITTER_H_
