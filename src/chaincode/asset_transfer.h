#ifndef FABRICSIM_CHAINCODE_ASSET_TRANSFER_H_
#define FABRICSIM_CHAINCODE_ASSET_TRANSFER_H_

#include "src/chaincode/chaincode.h"
#include "src/workload/workload_spec.h"

namespace fabricsim {

/// Composite-key asset-transfer chaincode (scenario packs in
/// examples/), after Fabric's asset-transfer-basic sample grown to the
/// patterns the application-requirements literature actually exercises:
/// a secondary index and account rows.
///
/// State layout (all composite keys, src/chaincode/composite_key.h):
///   ("ASSET", {id})         -> {owner, value}       the asset record
///   ("OWNED", {owner, id})  -> {}                   ownership index
///   ("ACCT",  {account})    -> {balance}            cash accounts
///
/// The OWNED index is the interesting part: transferAsset moves an
/// index entry between two owners' subtrees, and queryByOwner is a
/// phantom-checked partial-composite scan over one subtree — so a
/// transfer committing between a query's endorsement and validation
/// fails the query with PHANTOM_READ_CONFLICT even though the two
/// transactions touch no common key. That is the abort class the
/// composite-key scenario pack provokes on purpose.
///
/// credit/debit exist for the cross-channel pack: each channel's
/// ledger holds its own ACCT rows and a client-side two-leg transfer
/// debits on one channel and credits on the other (atomicity is the
/// client's problem — exactly as on real Fabric, where cross-channel
/// invocations are not transactional).
///
/// Function → operation footprint:
///   createAsset   1xR, 2xW     transferAsset  1xR, 3xW
///   readAsset     1xR          queryByOwner   1xRR (phantom-checked)
///   credit        1xR, 1xW     debit          1xR, 1xW
class AssetTransferChaincode : public Chaincode {
 public:
  explicit AssetTransferChaincode(AssetTransferConfig config = {});

  std::string name() const override { return "asset"; }
  std::vector<WriteItem> BootstrapState() const override;
  Status Invoke(ChaincodeStub& stub, const Invocation& inv) override;
  std::vector<std::string> Functions() const override;

  const AssetTransferConfig& config() const { return config_; }

  static std::string AssetKey(int asset);
  static std::string OwnedKey(int owner, int asset);
  static std::string AccountKey(int account);
  static std::string OwnerName(int owner);

 private:
  AssetTransferConfig config_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_ASSET_TRANSFER_H_
