#include "src/chaincode/supply_chain.h"

#include "src/common/strings.h"
#include "src/statedb/rich_query.h"

namespace fabricsim {

SupplyChainChaincode::SupplyChainChaincode(std::vector<int> unit_counts)
    : unit_counts_(std::move(unit_counts)) {}

std::string SupplyChainChaincode::LspKey(int lsp) {
  return StrFormat("LSP%d", lsp);
}

std::string SupplyChainChaincode::UnitPrefix(int lsp) {
  return StrFormat("UNIT%d_", lsp);
}

std::string SupplyChainChaincode::UnitKey(int lsp, int gtin) {
  return UnitPrefix(lsp) + PadKey(static_cast<uint64_t>(gtin), 5);
}

std::string SupplyChainChaincode::AsnKey(int asn) {
  return "ASN" + PadKey(static_cast<uint64_t>(asn), 6);
}

std::vector<WriteItem> SupplyChainChaincode::BootstrapState() const {
  std::vector<WriteItem> writes;
  int gtin = 0;
  for (int lsp = 0; lsp < num_lsps(); ++lsp) {
    writes.push_back(WriteItem{
        LspKey(lsp),
        JsonObject({{"docType", "lsp"},
                    {"units", std::to_string(unit_counts_[lsp])}}),
        false});
    for (int u = 0; u < unit_counts_[lsp]; ++u, ++gtin) {
      writes.push_back(WriteItem{
          UnitKey(lsp, gtin),
          JsonObject({{"docType", "unit"},
                      {"lsp", "LSP" + std::to_string(lsp)},
                      {"gtin", PadKey(static_cast<uint64_t>(gtin), 5)},
                      {"sscc", "S" + PadKey(static_cast<uint64_t>(gtin), 8)}}),
          false});
    }
  }
  return writes;
}

std::vector<std::string> SupplyChainChaincode::Functions() const {
  return {"initLedger", "pushASN", "Ship", "Unload", "queryASN", "queryStock"};
}

Status SupplyChainChaincode::Invoke(ChaincodeStub& stub,
                                    const Invocation& inv) {
  const auto& args = inv.args;
  auto need = [&](size_t n) -> Status {
    if (args.size() < n) {
      return Status::InvalidArgument(inv.function + ": expected " +
                                     std::to_string(n) + " args");
    }
    return Status::OK();
  };

  if (inv.function == "initLedger") {
    stub.PutState("SCM_META", JsonObject({{"docType", "meta"},
                                          {"lsps",
                                           std::to_string(num_lsps())}}));
    stub.PutState("SCM_ASN_SEQ",
                  JsonObject({{"docType", "meta"}, {"next", "0"}}));
    return Status::OK();
  }
  if (inv.function == "pushASN") {
    FABRICSIM_RETURN_NOT_OK(need(3));  // asn key, from lsp, to lsp
    stub.PutState(args[0], JsonObject({{"docType", "asn"},
                                       {"from", args[1]},
                                       {"to", args[2]}}));
    return Status::OK();
  }
  if (inv.function == "Ship") {
    // args: asn key, unit key at origin, unit key at destination
    FABRICSIM_RETURN_NOT_OK(need(3));
    std::optional<std::string> asn = stub.GetState(args[0]);
    std::optional<std::string> unit = stub.GetState(args[1]);
    // A missing unit (moved by a concurrent shipment) is shipped as a
    // pass-through unit: the reads above already recorded the
    // dependency, and keeping the 2xR/2xW footprint stable is what the
    // study's workload requires.
    std::string to_lsp =
        asn.has_value() ? ExtractJsonField(*asn, "to").value_or("") : "";
    std::string gtin =
        unit.has_value() ? ExtractJsonField(*unit, "gtin").value_or("") : "";
    std::string sscc =
        unit.has_value() ? ExtractJsonField(*unit, "sscc").value_or("") : "";
    // Moving between prefixes: remove at origin, insert at destination.
    stub.DelState(args[1]);
    stub.PutState(args[2], JsonObject({{"docType", "unit"},
                                       {"lsp", to_lsp},
                                       {"gtin", gtin},
                                       {"sscc", sscc}}));
    return Status::OK();
  }
  if (inv.function == "Unload") {
    // args: unit key, lsp key
    FABRICSIM_RETURN_NOT_OK(need(2));
    std::optional<std::string> unit = stub.GetState(args[0]);
    std::optional<std::string> lsp = stub.GetState(args[1]);
    if (!lsp.has_value()) {
      return Status::NotFound("missing lsp " + args[1]);
    }
    // Missing units are tolerated (see Ship above); the delete below
    // is then a no-op write that keeps the footprint stable.
    long long units =
        std::stoll(ExtractJsonField(*lsp, "units").value_or("0"));
    if (units > 0) --units;
    stub.DelState(args[0]);  // extract the embedded trade items
    stub.PutState(args[1], JsonObject({{"docType", "lsp"},
                                       {"units", std::to_string(units)}}));
    return Status::OK();
  }
  if (inv.function == "queryASN") {
    // args: lsp index as string — scan all units of that LSP.
    FABRICSIM_RETURN_NOT_OK(need(1));
    int lsp = std::stoi(args[0]);
    stub.GetStateByRange(UnitPrefix(lsp), UnitPrefix(lsp) + "~");
    return Status::OK();
  }
  if (inv.function == "queryStock") {
    // Rich query (CouchDB only); not phantom-checked by Fabric.
    FABRICSIM_RETURN_NOT_OK(need(1));
    Result<std::vector<StateEntry>> result =
        stub.GetQueryResult("docType==unit&lsp==LSP" + args[0]);
    if (!result.ok()) return result.status();
    return Status::OK();
  }
  return Status::InvalidArgument("scm: unknown function " + inv.function);
}

}  // namespace fabricsim
