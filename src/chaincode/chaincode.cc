#include "src/chaincode/chaincode.h"

namespace fabricsim {
// Chaincode is an interface; nothing to define here.
}  // namespace fabricsim
