#include "src/chaincode/drm.h"

#include "src/common/strings.h"
#include "src/statedb/rich_query.h"

namespace fabricsim {

DrmChaincode::DrmChaincode(int num_artworks, int num_right_holders)
    : num_artworks_(num_artworks), num_right_holders_(num_right_holders) {}

std::string DrmChaincode::ArtworkKey(int index) {
  return "ART" + PadKey(static_cast<uint64_t>(index), 4);
}

std::string DrmChaincode::RightsKey(int index) {
  return "RIGHTS" + PadKey(static_cast<uint64_t>(index), 4);
}

std::string DrmChaincode::HolderKey(int index) {
  return "RH" + PadKey(static_cast<uint64_t>(index), 4);
}

std::string DrmChaincode::HolderId(int index) {
  // IPI-style 11-digit "interested party information" number.
  return "I" + PadKey(static_cast<uint64_t>(index) + 10000000000ULL, 11);
}

std::vector<WriteItem> DrmChaincode::BootstrapState() const {
  std::vector<WriteItem> writes;
  for (int i = 0; i < num_right_holders_; ++i) {
    writes.push_back(WriteItem{
        HolderKey(i),
        JsonObject({{"docType", "holder"},
                    {"ipi", HolderId(i)},
                    {"revenue", "0"}}),
        false});
  }
  for (int i = 0; i < num_artworks_; ++i) {
    int holder = i % num_right_holders_;
    writes.push_back(WriteItem{
        ArtworkKey(i),
        JsonObject({{"docType", "art"},
                    {"format", "dotBC"},
                    {"artist", HolderKey(holder)},
                    {"plays", "0"}}),
        false});
    writes.push_back(WriteItem{
        RightsKey(i),
        JsonObject({{"docType", "rights"},
                    {"art", ArtworkKey(i)},
                    {"holder", HolderKey(holder)}}),
        false});
  }
  return writes;
}

std::vector<std::string> DrmChaincode::Functions() const {
  return {"initLedger",  "create",      "play",
          "queryRghts",  "viewMetaData", "calcRevenue"};
}

Status DrmChaincode::Invoke(ChaincodeStub& stub, const Invocation& inv) {
  const auto& args = inv.args;
  auto need = [&](size_t n) -> Status {
    if (args.size() < n) {
      return Status::InvalidArgument(inv.function + ": expected " +
                                     std::to_string(n) + " args");
    }
    return Status::OK();
  };

  if (inv.function == "initLedger") {
    stub.PutState("DRM_META", JsonObject({{"docType", "meta"},
                                          {"format", "dotBC"}}));
    stub.PutState("DRM_SEQ",
                  JsonObject({{"docType", "meta"},
                              {"artworks", std::to_string(num_artworks_)}}));
    return Status::OK();
  }
  if (inv.function == "create") {
    // args: artwork key, rights key, holder key
    FABRICSIM_RETURN_NOT_OK(need(3));
    std::optional<std::string> holder = stub.GetState(args[2]);
    if (!holder.has_value()) return Status::NotFound("no holder " + args[2]);
    stub.PutState(args[0], JsonObject({{"docType", "art"},
                                       {"format", "dotBC"},
                                       {"artist", args[2]},
                                       {"plays", "0"}}));
    stub.PutState(args[1], JsonObject({{"docType", "rights"},
                                       {"art", args[0]},
                                       {"holder", args[2]}}));
    return Status::OK();
  }
  if (inv.function == "play") {
    // args: artwork key, rights key
    FABRICSIM_RETURN_NOT_OK(need(2));
    std::optional<std::string> art = stub.GetState(args[0]);
    std::optional<std::string> rights = stub.GetState(args[1]);
    if (!art.has_value() || !rights.has_value()) {
      return Status::NotFound("missing artwork or rights");
    }
    long long plays =
        std::stoll(ExtractJsonField(*art, "plays").value_or("0")) + 1;
    std::string artist = ExtractJsonField(*art, "artist").value_or("");
    stub.PutState(args[0], JsonObject({{"docType", "art"},
                                       {"format", "dotBC"},
                                       {"artist", artist},
                                       {"plays", std::to_string(plays)}}));
    return Status::OK();
  }
  if (inv.function == "queryRghts") {
    FABRICSIM_RETURN_NOT_OK(need(2));
    stub.GetState(args[0]);
    stub.GetState(args[1]);
    return Status::OK();
  }
  if (inv.function == "viewMetaData") {
    FABRICSIM_RETURN_NOT_OK(need(1));
    stub.GetState(args[0]);
    return Status::OK();
  }
  if (inv.function == "calcRevenue") {
    // args: holder key. Rich query over the holder's artworks.
    FABRICSIM_RETURN_NOT_OK(need(1));
    Result<std::vector<StateEntry>> result =
        stub.GetQueryResult("docType==art&artist==" + args[0]);
    if (!result.ok()) return result.status();
    return Status::OK();
  }
  return Status::InvalidArgument("drm: unknown function " + inv.function);
}

}  // namespace fabricsim
