#ifndef FABRICSIM_CHAINCODE_GENCHAIN_H_
#define FABRICSIM_CHAINCODE_GENCHAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaincode/chaincode.h"
#include "src/common/status.h"

namespace fabricsim {

/// Specification of one generated chaincode function: how many of each
/// action type it performs, in the fixed order reads → inserts →
/// updates → deletes → range reads. This mirrors the input of the
/// paper's chaincode generator (§4.4).
struct GenFunctionSpec {
  std::string name;
  int reads = 0;
  int inserts = 0;
  int updates = 0;
  int deletes = 0;
  int range_reads = 0;
  /// When true, range reads are issued as CouchDB rich queries
  /// (GetQueryResult) instead of GetStateByRange — no phantom checks.
  bool use_rich_query = false;

  /// Number of key arguments this function consumes (see the argument
  /// convention on GenChaincode::Invoke).
  int ArgCount() const {
    return reads + inserts + updates + deletes + 2 * range_reads;
  }
};

/// Full chaincode specification: functions plus the size of the
/// bootstrapped key space.
struct GenChaincodeSpec {
  std::string name = "genChain";
  std::vector<GenFunctionSpec> functions;
  /// Keys "GK<00000000>".."GK<initial_keys-1>" are bootstrapped. The
  /// paper uses 100,000 keys to keep conflict rates low by default.
  uint64_t initial_keys = 100000;

  /// The paper's genChain: five functions, one action each —
  /// readKeys, insertKeys, updateKeys, deleteKeys, rangeReadKeys.
  static GenChaincodeSpec PaperDefault(uint64_t initial_keys = 100000);

  /// Validates that the spec is well-formed (non-empty, unique
  /// function names, non-negative action counts).
  Status Validate() const;
};

/// Interpreter for generated chaincodes: a Chaincode whose functions
/// execute the action lists of a GenChaincodeSpec.
///
/// Argument convention for Invoke: args supplies one key per read /
/// insert / update / delete action (in spec order) and a (start, end)
/// key pair per range read, appended in that order.
class GenChaincode : public Chaincode {
 public:
  explicit GenChaincode(GenChaincodeSpec spec);

  std::string name() const override { return spec_.name; }
  std::vector<WriteItem> BootstrapState() const override;
  Status Invoke(ChaincodeStub& stub, const Invocation& inv) override;
  std::vector<std::string> Functions() const override;

  const GenChaincodeSpec& spec() const { return spec_; }

  /// Bootstrapped key for index i: "GK" + zero-padded index.
  static std::string Key(uint64_t index);

 private:
  GenChaincodeSpec spec_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_GENCHAIN_H_
