#ifndef FABRICSIM_CHAINCODE_COMPOSITE_KEY_H_
#define FABRICSIM_CHAINCODE_COMPOSITE_KEY_H_

#include <string>
#include <utility>
#include <vector>

namespace fabricsim {

/// Composite keys, mirroring Fabric's CreateCompositeKey /
/// SplitCompositeKey shim helpers: a typed key assembled from an
/// object type plus an ordered attribute list, laid out so that
/// lexicographic key order (what GetStateByRange sees) equals
/// attribute-tuple order, and so that a partial attribute list is an
/// exact string prefix of every key that extends it.
///
/// Layout:
///   objectType SEP attr1 SEP attr2 SEP ... attrN SEP
///
/// SEP is 0x1f (ASCII unit separator; Fabric uses U+0000, which would
/// truncate every %s diagnostic in this codebase). The trailing SEP
/// after every attribute is what makes prefix scans exact: the range
/// for ("ORDER", {w}) is [..w SEP, ..w SEP+1), which contains
/// ("ORDER", {w, o}) for every o but not ("ORDER", {w2}) for any
/// w2 != w sharing a digit prefix.
///
/// Separator escaping: attributes may contain arbitrary bytes. The
/// two reserved bytes are escaped as two-byte sequences
///   0x1e (ESC) -> ESC 'e'        0x1f (SEP) -> ESC 's'
/// which makes MakeCompositeKey / SplitCompositeKey a lossless round
/// trip for every input. CAVEAT (documented contract, unit-tested):
/// escaping preserves range-scan ordering only for attributes free of
/// the reserved bytes — an attribute containing a raw SEP sorts by its
/// escaped form. Every key builder in this repository uses plain
/// alphanumeric attributes, where order is exact.
constexpr char kCompositeKeySep = '\x1f';
constexpr char kCompositeKeyEsc = '\x1e';

/// Assembles a composite key. Never fails: reserved bytes in
/// attributes are escaped (see above).
std::string MakeCompositeKey(const std::string& object_type,
                             const std::vector<std::string>& attributes);

/// Splits a composite key back into (object_type, attributes),
/// undoing the escaping. Returns false when `key` is not a
/// well-formed composite key (missing trailing separator or a
/// dangling escape byte); outputs are unspecified then.
bool SplitCompositeKey(const std::string& key, std::string* object_type,
                       std::vector<std::string>* attributes);

/// Half-open [start, end) range covering exactly the composite keys
/// whose object type matches and whose first attributes equal
/// `partial_attributes` (Fabric's GetStateByPartialCompositeKey).
/// Pass an empty list to cover the whole object type.
std::pair<std::string, std::string> CompositeKeyRange(
    const std::string& object_type,
    const std::vector<std::string>& partial_attributes);

/// Object type of a composite key ("" when `key` has none) — the
/// cheap classifier used for per-entity failure attribution: which
/// table does a conflicting key belong to.
std::string CompositeKeyObjectType(const std::string& key);

}  // namespace fabricsim

#endif  // FABRICSIM_CHAINCODE_COMPOSITE_KEY_H_
