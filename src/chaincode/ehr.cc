#include "src/chaincode/ehr.h"

#include "src/common/strings.h"
#include "src/statedb/rich_query.h"

namespace fabricsim {

EhrChaincode::EhrChaincode(int num_patients) : num_patients_(num_patients) {}

std::string EhrChaincode::ProfileKey(int index) {
  return "PROF" + PadKey(static_cast<uint64_t>(index), 4);
}

std::string EhrChaincode::RecordKey(int index) {
  return "EHR" + PadKey(static_cast<uint64_t>(index), 4);
}

std::vector<WriteItem> EhrChaincode::BootstrapState() const {
  std::vector<WriteItem> writes;
  for (int i = 0; i < num_patients_; ++i) {
    writes.push_back(WriteItem{
        ProfileKey(i),
        JsonObject({{"docType", "profile"},
                    {"patient", "P" + PadKey(static_cast<uint64_t>(i), 4)},
                    {"access", ""}}),
        false});
    writes.push_back(WriteItem{
        RecordKey(i),
        JsonObject({{"docType", "ehr"},
                    {"patient", "P" + PadKey(static_cast<uint64_t>(i), 4)},
                    {"access", ""},
                    {"entries", "0"}}),
        false});
  }
  return writes;
}

std::vector<std::string> EhrChaincode::Functions() const {
  return {"initLedger",      "grantProfileAccess", "revokeProfileAccess",
          "revokeEhrAccess", "grantEhrAccess",     "addEhr",
          "readProfile",     "viewPartialProfile", "viewEHR",
          "queryEHR"};
}

namespace {

// Rewrites the "access" field of a profile/record document.
std::string WithAccess(const std::string& doc, const std::string& actor) {
  std::string patient = ExtractJsonField(doc, "patient").value_or("");
  std::string doc_type = ExtractJsonField(doc, "docType").value_or("");
  return JsonObject(
      {{"docType", doc_type}, {"patient", patient}, {"access", actor}});
}

}  // namespace

Status EhrChaincode::Invoke(ChaincodeStub& stub, const Invocation& inv) {
  const auto& args = inv.args;
  auto need = [&](size_t n) -> Status {
    if (args.size() < n) {
      return Status::InvalidArgument(inv.function + ": expected " +
                                     std::to_string(n) + " args");
    }
    return Status::OK();
  };

  if (inv.function == "initLedger") {
    stub.PutState("EHR_META", JsonObject({{"docType", "meta"},
                                          {"version", "1"}}));
    stub.PutState("EHR_COUNT",
                  JsonObject({{"docType", "meta"},
                              {"patients", std::to_string(num_patients_)}}));
    return Status::OK();
  }
  if (inv.function == "grantProfileAccess" ||
      inv.function == "revokeProfileAccess") {
    FABRICSIM_RETURN_NOT_OK(need(2));  // profile key, actor id
    std::optional<std::string> doc = stub.GetState(args[0]);
    if (!doc.has_value()) {
      return Status::NotFound("no profile " + args[0]);
    }
    const std::string actor =
        inv.function == "grantProfileAccess" ? args[1] : "";
    stub.PutState(args[0], WithAccess(*doc, actor));
    return Status::OK();
  }
  if (inv.function == "grantEhrAccess" || inv.function == "revokeEhrAccess") {
    FABRICSIM_RETURN_NOT_OK(need(3));  // record key, profile key, actor
    std::optional<std::string> record = stub.GetState(args[0]);
    std::optional<std::string> profile = stub.GetState(args[1]);
    if (!record.has_value() || !profile.has_value()) {
      return Status::NotFound("missing record or profile");
    }
    const std::string actor = inv.function == "grantEhrAccess" ? args[2] : "";
    stub.PutState(args[0], WithAccess(*record, actor));
    stub.PutState(args[1], WithAccess(*profile, actor));
    return Status::OK();
  }
  if (inv.function == "addEhr") {
    FABRICSIM_RETURN_NOT_OK(need(3));  // record key, profile key, payload
    std::optional<std::string> record = stub.GetState(args[0]);
    std::optional<std::string> profile = stub.GetState(args[1]);
    if (!profile.has_value()) {
      return Status::NotFound("no profile " + args[1]);
    }
    std::string entries = "1";
    if (record.has_value()) {
      entries = std::to_string(
          std::stoll(ExtractJsonField(*record, "entries").value_or("0")) + 1);
    }
    std::string patient = ExtractJsonField(*profile, "patient").value_or("");
    stub.PutState(args[0], JsonObject({{"docType", "ehr"},
                                       {"patient", patient},
                                       {"access", ""},
                                       {"entries", entries},
                                       {"payload", args[2]}}));
    stub.PutState(args[1], WithAccess(*profile, "provider"));
    return Status::OK();
  }
  if (inv.function == "readProfile" || inv.function == "viewPartialProfile") {
    FABRICSIM_RETURN_NOT_OK(need(1));
    stub.GetState(args[0]);
    return Status::OK();
  }
  if (inv.function == "viewEHR" || inv.function == "queryEHR") {
    FABRICSIM_RETURN_NOT_OK(need(1));
    stub.GetState(args[0]);
    return Status::OK();
  }
  return Status::InvalidArgument("ehr: unknown function " + inv.function);
}

}  // namespace fabricsim
