#include "src/admission/admission.h"

#include <cmath>

namespace fabricsim {

const char* AdmissionQueuePolicyToString(AdmissionQueuePolicy policy) {
  switch (policy) {
    case AdmissionQueuePolicy::kNone:
      return "none";
    case AdmissionQueuePolicy::kRejectNew:
      return "reject_new";
    case AdmissionQueuePolicy::kDropOldest:
      return "drop_oldest";
    case AdmissionQueuePolicy::kCoDel:
      return "codel";
  }
  return "unknown";
}

bool CircuitBreaker::AllowSubmit(SimTime now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ < config_.open_duration) return false;
      state_ = State::kHalfOpen;
      probes_issued_ = 0;
      probe_successes_ = 0;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_issued_ >= config_.half_open_probes) return false;
      ++probes_issued_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(SimTime now) {
  (void)now;
  if (state_ == State::kHalfOpen) {
    ++probe_successes_;
    if (probe_successes_ >= config_.half_open_probes) {
      // Every probe made it through: the downstream congestion has
      // cleared. Close and start a fresh window.
      state_ = State::kClosed;
      window_outcomes_ = 0;
      window_failures_ = 0;
    }
    return;
  }
  if (state_ != State::kClosed) return;
  ++window_outcomes_;
  if (window_outcomes_ >= config_.window) {
    window_outcomes_ = 0;
    window_failures_ = 0;
  }
}

void CircuitBreaker::RecordFailure(SimTime now) {
  if (state_ == State::kHalfOpen) {
    // A probe failed: the overload persists; back off for another full
    // open_duration.
    Trip(now);
    return;
  }
  if (state_ != State::kClosed) return;
  ++window_outcomes_;
  ++window_failures_;
  if (window_outcomes_ >= config_.window) {
    double failure_share = static_cast<double>(window_failures_) /
                           static_cast<double>(window_outcomes_);
    window_outcomes_ = 0;
    window_failures_ = 0;
    if (failure_share >= config_.open_threshold) Trip(now);
  }
}

void CircuitBreaker::Trip(SimTime now) {
  state_ = State::kOpen;
  opened_at_ = now;
  window_outcomes_ = 0;
  window_failures_ = 0;
  if (stats_ != nullptr) ++stats_->breaker_opens;
}

SimTime CoDelState::ControlLaw(SimTime t, SimTime interval, uint32_t count) {
  return t + static_cast<SimTime>(
                 static_cast<double>(interval) /
                 std::sqrt(static_cast<double>(count == 0 ? 1 : count)));
}

bool CoDelState::ShouldDrop(SimTime sojourn, SimTime now, SimTime target,
                            SimTime interval) {
  bool ok_to_drop = false;
  if (sojourn < target) {
    // Sojourn dipped below target: the standing queue is gone.
    first_above_time_ = 0;
  } else {
    if (first_above_time_ == 0) {
      first_above_time_ = now + interval;
    } else if (now >= first_above_time_) {
      ok_to_drop = true;
    }
  }

  if (dropping_) {
    if (!ok_to_drop) {
      dropping_ = false;
      return false;
    }
    if (now >= drop_next_) {
      ++count_;
      ++total_drops_;
      drop_next_ = ControlLaw(drop_next_, interval, count_);
      return true;
    }
    return false;
  }

  if (ok_to_drop) {
    dropping_ = true;
    // Restart drop spacing from the recent rate when the last drop
    // spell ended recently, per the CoDel pseudocode.
    uint32_t delta = count_ - last_count_;
    count_ = (delta > 1 && now - drop_next_ < 16 * interval) ? delta : 1;
    ++total_drops_;
    drop_next_ = ControlLaw(now, interval, count_);
    last_count_ = count_;
    return true;
  }
  return false;
}

}  // namespace fabricsim
