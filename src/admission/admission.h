#ifndef FABRICSIM_ADMISSION_ADMISSION_H_
#define FABRICSIM_ADMISSION_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/ledger/transaction.h"

namespace fabricsim {

/// How an endorsing peer bounds its shared serial endorsement queue.
enum class AdmissionQueuePolicy : uint8_t {
  /// Unbounded queue (legacy behaviour).
  kNone = 0,
  /// Arrivals beyond max_endorse_queue_depth are rejected immediately
  /// with a shed response — the client learns at one network RTT
  /// instead of after a full queue drain.
  kRejectNew,
  /// Arrivals beyond the bound evict the *oldest* queued proposal
  /// (which has absorbed the most staleness and is the most likely to
  /// fail MVCC anyway); the newcomer is admitted.
  kDropOldest,
  /// CoDel-style sojourn-time shedding at dequeue: while queueing
  /// delay stays above `codel_target` for a full `codel_interval`,
  /// proposals are dropped at an increasing rate (interval/sqrt(n))
  /// until the standing queue drains.
  kCoDel,
};

const char* AdmissionQueuePolicyToString(AdmissionQueuePolicy policy);

/// Client-side circuit breaker over submission outcomes. Deterministic
/// by construction: tumbling count windows, fixed open duration and a
/// fixed half-open probe budget — no wall clocks, no jitter draws.
struct CircuitBreakerConfig {
  bool enabled = false;
  /// Outcomes per evaluation window (closed state).
  uint32_t window = 20;
  /// Failure share within one window that opens the breaker.
  double open_threshold = 0.5;
  /// How long an open breaker rejects submissions outright.
  SimTime open_duration = 2 * kSecond;
  /// Probe submissions allowed in the half-open state; all must
  /// succeed to close the breaker again, any failure re-opens it.
  uint32_t half_open_probes = 3;
};

/// Token-bucket retry budget: retries (endorsement re-proposals and
/// MVCC resubmissions) spend one token each; tokens are earned as a
/// fraction of first-attempt submissions. Caps the retry share of
/// offered load at ratio/(1+ratio) under sustained failure.
struct RetryBudgetConfig {
  bool enabled = false;
  /// Tokens earned per first-attempt submission.
  double ratio = 0.2;
  /// Token-bucket ceiling (burst allowance).
  double capacity = 10.0;
};

/// Overload-protection knobs for one run. Everything is off by
/// default; a default-constructed config leaves the simulation
/// bitwise identical to a build without the admission subsystem.
struct AdmissionConfig {
  /// Client-stamped time-to-live per transaction: a transaction whose
  /// deadline (submit time + tx_deadline) has passed is early-aborted
  /// at the endorser queue, the orderer ingress, or validation —
  /// whichever notices first — instead of burning further work.
  /// 0 disables deadlines.
  SimTime tx_deadline = 0;

  /// Endorser queue policy + bound.
  AdmissionQueuePolicy endorse_policy = AdmissionQueuePolicy::kNone;
  /// Queue-depth bound for kRejectNew / kDropOldest (queued + busy).
  /// 0 keeps the queue unbounded even if a policy is set.
  uint32_t max_endorse_queue_depth = 0;
  /// CoDel control-law parameters (kCoDel only).
  SimTime codel_target = 5 * kMillisecond;
  SimTime codel_interval = 100 * kMillisecond;

  /// Orderer broadcast-ingress bound: envelopes arriving while the
  /// ordering queue holds this many entries are rejected with a
  /// throttle signal back to the client. 0 = unbounded (legacy).
  uint32_t max_orderer_queue_depth = 0;

  CircuitBreakerConfig breaker;
  RetryBudgetConfig retry_budget;

  bool deadlines_enabled() const { return tx_deadline > 0; }
  bool endorse_bounded() const {
    return endorse_policy != AdmissionQueuePolicy::kNone &&
           (endorse_policy == AdmissionQueuePolicy::kCoDel ||
            max_endorse_queue_depth > 0);
  }
  bool orderer_bounded() const { return max_orderer_queue_depth > 0; }
  /// True when any protection mechanism is active. False reproduces
  /// the unprotected pipeline exactly.
  bool enabled() const {
    return deadlines_enabled() || endorse_bounded() || orderer_bounded() ||
           breaker.enabled || retry_budget.enabled;
  }
};

/// Run-wide overload-protection counters, owned by the harness and
/// shared by peers, orderers and clients. Only allocated when
/// AdmissionConfig::enabled() — a null stats pointer everywhere is the
/// legacy pipeline.
struct AdmissionStats {
  /// Proposals shed at endorser queues (all policies).
  uint64_t endorse_shed = 0;
  /// Proposals whose deadline had already passed when the endorser
  /// reached them (at arrival or at dequeue).
  uint64_t deadline_expired_endorse = 0;
  /// Sibling proposals turned into zero-cost husks by cancellation
  /// propagation: the client abandoned the transaction after another
  /// org refused it, so the work queued here was already dead.
  uint64_t endorse_cancelled = 0;
  /// Envelopes dropped at orderer ingress because the deadline passed
  /// while they queued.
  uint64_t deadline_expired_order = 0;
  /// Envelopes rejected by the bounded orderer ingress.
  uint64_t orderer_throttled = 0;
  /// Fresh submissions suppressed while a breaker was open (or its
  /// half-open probe budget was spent).
  uint64_t breaker_rejected = 0;
  /// Closed->open breaker transitions across all clients/classes.
  uint64_t breaker_opens = 0;
  /// Retries/resubmissions skipped because the token bucket was empty.
  uint64_t retry_budget_denials = 0;

  /// Transaction-level client drops (one per abandoned transaction,
  /// versus the per-event producer counters above: a transaction
  /// proposed to several orgs dies on its *first* refusal).
  uint64_t client_shed_drops = 0;      ///< abandoned on a shed response
  uint64_t client_expired_drops = 0;   ///< abandoned on an expired response
  uint64_t client_throttle_drops = 0;  ///< abandoned on an orderer throttle

  /// Per-org endorser sheds (index = OrgId); sized lazily.
  std::vector<uint64_t> shed_by_org;

  /// Sojourn time (ms) of every proposal that reached the head of an
  /// endorsement queue, shed or served — the congestion signal CoDel
  /// acts on.
  QuantileSketch endorse_sojourn_ms;
  /// Endorsement queue depth observed at each proposal arrival.
  QuantileSketch endorse_depth;

  void NoteShed(OrgId org) {
    ++endorse_shed;
    if (org >= 0) {
      if (static_cast<size_t>(org) >= shed_by_org.size()) {
        shed_by_org.resize(static_cast<size_t>(org) + 1, 0);
      }
      ++shed_by_org[static_cast<size_t>(org)];
    }
  }

  /// Total transactions cut short by overload protection before
  /// validation (excludes commit-phase deadline failures, which the
  /// ledger itself records).
  uint64_t TotalDropped() const {
    return endorse_shed + deadline_expired_endorse + deadline_expired_order +
           orderer_throttled + breaker_rejected;
  }
};

/// Token bucket for retry spending. Deterministic: pure arithmetic on
/// the client's own submission/outcome sequence.
class RetryBudget {
 public:
  explicit RetryBudget(const RetryBudgetConfig& config)
      : config_(config), tokens_(config.capacity) {}

  /// A first-attempt submission earns `ratio` tokens.
  void OnSubmit() {
    tokens_ = tokens_ + config_.ratio;
    if (tokens_ > config_.capacity) tokens_ = config_.capacity;
  }

  /// Spends one token for a retry; false when the bucket is empty
  /// (the caller must skip the retry).
  bool TrySpend() {
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  RetryBudgetConfig config_;
  double tokens_;
};

/// Deterministic circuit breaker (closed / open / half-open).
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(const CircuitBreakerConfig& config, AdmissionStats* stats)
      : config_(config), stats_(stats) {}

  /// Whether a fresh submission may proceed at `now`. Open breakers
  /// reject until open_duration elapses, then admit up to
  /// half_open_probes probe submissions.
  bool AllowSubmit(SimTime now);

  /// Outcome feedback: success = envelope handed to ordering; failure
  /// = deadline expired, endorsement timed out, or ordering throttled.
  /// Fast-fail queue sheds are deliberately neither: a bounded queue
  /// rejecting within one RTT is a healthy backend, and tripping on
  /// sheds would turn graceful degradation into a client-side outage.
  void RecordSuccess(SimTime now);
  void RecordFailure(SimTime now);

  State state() const { return state_; }

 private:
  void Trip(SimTime now);

  CircuitBreakerConfig config_;
  AdmissionStats* stats_;
  State state_ = State::kClosed;
  uint32_t window_outcomes_ = 0;
  uint32_t window_failures_ = 0;
  SimTime opened_at_ = 0;
  uint32_t probes_issued_ = 0;
  uint32_t probe_successes_ = 0;
};

/// CoDel control law over endorsement-queue sojourn times (Nichols &
/// Jacobson), evaluated at each dequeue. Deterministic: driven purely
/// by simulated sojourn times.
class CoDelState {
 public:
  /// Returns true when the proposal dequeued at `now` after `sojourn`
  /// in queue should be shed.
  bool ShouldDrop(SimTime sojourn, SimTime now, SimTime target,
                  SimTime interval);

  uint64_t drops() const { return total_drops_; }

 private:
  static SimTime ControlLaw(SimTime t, SimTime interval, uint32_t count);

  /// When the sojourn first exceeded target (0 = below target now).
  SimTime first_above_time_ = 0;
  bool dropping_ = false;
  SimTime drop_next_ = 0;
  uint32_t count_ = 0;
  uint32_t last_count_ = 0;
  uint64_t total_drops_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_ADMISSION_ADMISSION_H_
