#ifndef FABRICSIM_CORE_RUNNER_H_
#define FABRICSIM_CORE_RUNNER_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/experiment.h"
#include "src/core/failure_report.h"

namespace fabricsim {

/// Mean + per-repetition reports for one experiment.
struct ExperimentResult {
  FailureReport mean;
  std::vector<FailureReport> repetitions;
  /// Per-repetition lifecycle trace exports (versioned JSONL), parallel
  /// to `repetitions`. Empty unless config.fabric.tracing was set; the
  /// strings are deterministic for a given config, independent of
  /// FABRICSIM_JOBS.
  std::vector<std::string> traces;
};

/// Runs one experiment: builds a fresh network per repetition (seeds
/// base_seed, base_seed+1, ...), drives the load, drains the pipeline
/// and parses the blockchain. Repetitions fan out over ParallelJobs()
/// worker threads (FABRICSIM_JOBS env knob; 1 = serial); each
/// repetition owns its seed, Environment and network, and results land
/// in pre-sized slots, so the output is bitwise identical to the
/// serial run. Deterministic for a given config.
Result<ExperimentResult> RunExperiment(const ExperimentConfig& config);

/// Runs a batch of experiments (e.g. the points of a sweep) as ONE
/// flat (config, repetition) job list fanned out over ParallelJobs()
/// threads — so a 5-point x 3-repetition sweep exposes 15 independent
/// jobs instead of 3 at a time. Results are order-preserving:
/// out[i] corresponds to configs[i]. On failure, returns the error of
/// the lexicographically first failing (config, repetition), which is
/// exactly the error the serial loop would have hit first.
Result<std::vector<ExperimentResult>> RunExperiments(
    const std::vector<ExperimentConfig>& configs);

/// Single-repetition convenience used by tests and examples.
Result<FailureReport> RunOnce(const ExperimentConfig& config, uint64_t seed);

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_RUNNER_H_
