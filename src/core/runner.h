#ifndef FABRICSIM_CORE_RUNNER_H_
#define FABRICSIM_CORE_RUNNER_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/experiment.h"
#include "src/core/failure_report.h"

namespace fabricsim {

/// Mean + per-repetition reports for one experiment.
struct ExperimentResult {
  FailureReport mean;
  std::vector<FailureReport> repetitions;
};

/// Runs one experiment: builds a fresh network per repetition (seeds
/// base_seed, base_seed+1, ...), drives the load, drains the pipeline
/// and parses the blockchain. Deterministic for a given config.
Result<ExperimentResult> RunExperiment(const ExperimentConfig& config);

/// Single-repetition convenience used by tests and examples.
Result<FailureReport> RunOnce(const ExperimentConfig& config, uint64_t seed);

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_RUNNER_H_
