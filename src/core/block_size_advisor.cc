#include "src/core/block_size_advisor.h"

#include <algorithm>
#include <cmath>

namespace fabricsim {

BlockSizeAdvisor::BlockSizeAdvisor(double default_slope)
    : default_slope_(default_slope) {}

void BlockSizeAdvisor::AddObservation(double rate_tps,
                                      uint32_t best_block_size) {
  if (rate_tps <= 0) return;
  observations_.push_back(
      Observation{rate_tps, static_cast<double>(best_block_size)});
}

double BlockSizeAdvisor::slope() const {
  if (observations_.empty()) return default_slope_;
  // Least squares through the origin: slope = sum(x*y) / sum(x^2).
  double xy = 0.0;
  double xx = 0.0;
  for (const Observation& obs : observations_) {
    xy += obs.rate * obs.best;
    xx += obs.rate * obs.rate;
  }
  if (xx <= 0) return default_slope_;
  return xy / xx;
}

uint32_t BlockSizeAdvisor::Recommend(double rate_tps) const {
  double recommended = slope() * std::max(rate_tps, 0.0);
  double clamped = std::clamp(recommended, static_cast<double>(min_size),
                              static_cast<double>(max_size));
  return static_cast<uint32_t>(std::lround(clamped));
}

uint32_t BlockSizeAdvisor::RecommendFromWindow(uint64_t txs_in_window,
                                               double window_seconds) const {
  if (window_seconds <= 0) return min_size;
  double rate = static_cast<double>(txs_in_window) / window_seconds;
  return Recommend(rate);
}

}  // namespace fabricsim
