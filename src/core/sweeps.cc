#include "src/core/sweeps.h"

namespace fabricsim {

std::vector<uint32_t> DefaultBlockSizes() { return {10, 25, 50, 100, 200}; }

Result<std::vector<BlockSizePoint>> SweepBlockSizes(
    ExperimentConfig config, const std::vector<uint32_t>& sizes) {
  std::vector<BlockSizePoint> points;
  for (uint32_t size : sizes) {
    config.fabric.block_size = size;
    Result<ExperimentResult> result = RunExperiment(config);
    if (!result.ok()) return result.status();
    points.push_back(BlockSizePoint{size, std::move(result).value().mean});
  }
  return points;
}

Result<BlockSizeSearch> FindBestBlockSize(ExperimentConfig config,
                                          const std::vector<uint32_t>& sizes) {
  Result<std::vector<BlockSizePoint>> points =
      SweepBlockSizes(std::move(config), sizes);
  if (!points.ok()) return points.status();
  BlockSizeSearch search;
  search.points = std::move(points).value();
  bool first = true;
  for (const BlockSizePoint& point : search.points) {
    double pct = point.report.total_failure_pct;
    if (first || pct < search.min_failure_pct) {
      search.min_failure_pct = pct;
      search.best_block_size = point.block_size;
    }
    if (first || pct > search.max_failure_pct) {
      search.max_failure_pct = pct;
      search.worst_block_size = point.block_size;
    }
    first = false;
  }
  return search;
}

Result<std::vector<RatePoint>> SweepArrivalRates(
    ExperimentConfig config, const std::vector<double>& rates) {
  std::vector<RatePoint> points;
  for (double rate : rates) {
    config.arrival_rate_tps = rate;
    Result<ExperimentResult> result = RunExperiment(config);
    if (!result.ok()) return result.status();
    points.push_back(RatePoint{rate, std::move(result).value().mean});
  }
  return points;
}

}  // namespace fabricsim
