#include "src/core/sweeps.h"

#include <utility>

namespace fabricsim {

std::vector<uint32_t> DefaultBlockSizes() { return {10, 25, 50, 100, 200}; }

Result<std::vector<BlockSizePoint>> SweepBlockSizes(
    ExperimentConfig config, const std::vector<uint32_t>& sizes) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(sizes.size());
  for (uint32_t size : sizes) {
    config.fabric.block_size = size;
    configs.push_back(config);
  }
  Result<std::vector<ExperimentResult>> results = RunExperiments(configs);
  if (!results.ok()) return results.status();
  std::vector<BlockSizePoint> points;
  points.reserve(sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    points.push_back(
        BlockSizePoint{sizes[i], std::move(results.value()[i].mean)});
  }
  return points;
}

Result<BlockSizeSearch> FindBestBlockSize(ExperimentConfig config,
                                          const std::vector<uint32_t>& sizes) {
  Result<std::vector<BlockSizePoint>> points =
      SweepBlockSizes(std::move(config), sizes);
  if (!points.ok()) return points.status();
  BlockSizeSearch search;
  search.points = std::move(points).value();
  bool first = true;
  for (const BlockSizePoint& point : search.points) {
    double pct = point.report.total_failure_pct;
    if (first || pct < search.min_failure_pct) {
      search.min_failure_pct = pct;
      search.best_block_size = point.block_size;
    }
    if (first || pct > search.max_failure_pct) {
      search.max_failure_pct = pct;
      search.worst_block_size = point.block_size;
    }
    first = false;
  }
  return search;
}

Result<std::vector<RatePoint>> SweepArrivalRates(
    ExperimentConfig config, const std::vector<double>& rates) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(rates.size());
  for (double rate : rates) {
    config.arrival_rate_tps = rate;
    configs.push_back(config);
  }
  Result<std::vector<ExperimentResult>> results = RunExperiments(configs);
  if (!results.ok()) return results.status();
  std::vector<RatePoint> points;
  points.reserve(rates.size());
  for (size_t i = 0; i < rates.size(); ++i) {
    points.push_back(RatePoint{rates[i], std::move(results.value()[i].mean)});
  }
  return points;
}

Result<std::vector<OrgCountPoint>> SweepOrgCounts(
    ExperimentConfig config, const std::vector<int>& org_counts) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(org_counts.size());
  for (int orgs : org_counts) {
    config.fabric.cluster.num_orgs = orgs;
    configs.push_back(config);
  }
  Result<std::vector<ExperimentResult>> results = RunExperiments(configs);
  if (!results.ok()) return results.status();
  std::vector<OrgCountPoint> points;
  points.reserve(org_counts.size());
  for (size_t i = 0; i < org_counts.size(); ++i) {
    points.push_back(
        OrgCountPoint{org_counts[i], std::move(results.value()[i].mean)});
  }
  return points;
}

Result<std::vector<PolicyPoint>> SweepPolicyPresets(
    ExperimentConfig config, const std::vector<PolicyPreset>& presets) {
  std::vector<PolicyPoint> points(presets.size());
  std::vector<ExperimentConfig> configs;
  configs.reserve(presets.size());
  for (size_t i = 0; i < presets.size(); ++i) {
    points[i].preset = presets[i];
    points[i].policy = MakePolicy(presets[i], config.fabric.cluster.num_orgs);
    config.fabric.policy_text = points[i].policy.ToString();
    configs.push_back(config);
  }
  Result<std::vector<ExperimentResult>> results = RunExperiments(configs);
  if (!results.ok()) return results.status();
  for (size_t i = 0; i < presets.size(); ++i) {
    points[i].report = std::move(results.value()[i].mean);
  }
  return points;
}

}  // namespace fabricsim
