#include "src/core/sweeps.h"

#include <utility>

#include "src/common/strings.h"

namespace fabricsim {

std::vector<uint32_t> DefaultBlockSizes() { return {10, 25, 50, 100, 200}; }

Result<std::vector<SweepPoint>> RunSweep(const ExperimentConfig& base,
                                         const SweepSpec& spec) {
  if (!spec.apply) {
    return Status::InvalidArgument("sweep spec has no apply function");
  }
  if (!spec.labels.empty() && spec.labels.size() != spec.values.size()) {
    return Status::InvalidArgument(
        "sweep labels must be empty or parallel to values");
  }

  std::vector<SweepPoint> points;
  std::vector<ExperimentConfig> configs;
  points.reserve(spec.values.size());
  configs.reserve(spec.values.size());
  for (size_t i = 0; i < spec.values.size(); ++i) {
    SweepPoint point;
    point.value = spec.values[i];
    point.label = spec.labels.empty()
                      ? StrFormat("%s=%g", spec.parameter.c_str(),
                                  spec.values[i])
                      : spec.labels[i];
    ExperimentConfig config = base;
    FABRICSIM_RETURN_NOT_OK(spec.apply(&config, spec.values[i], i));
    configs.push_back(std::move(config));
    points.push_back(std::move(point));
  }

  Result<std::vector<ExperimentResult>> results = RunExperiments(configs);
  if (!results.ok()) return results.status();
  for (size_t i = 0; i < points.size(); ++i) {
    points[i].report = std::move(results.value()[i].mean);
  }
  return points;
}

SweepSpec BlockSizeSweepSpec(const std::vector<uint32_t>& sizes) {
  SweepSpec spec;
  spec.parameter = "block_size";
  for (uint32_t size : sizes) {
    spec.values.push_back(static_cast<double>(size));
  }
  spec.apply = [](ExperimentConfig* config, double value, size_t) {
    config->fabric.block_size = static_cast<uint32_t>(value);
    return Status::OK();
  };
  return spec;
}

SweepSpec ArrivalRateSweepSpec(const std::vector<double>& rates) {
  SweepSpec spec;
  spec.parameter = "arrival_rate_tps";
  spec.values = rates;
  spec.apply = [](ExperimentConfig* config, double value, size_t) {
    config->arrival_rate_tps = value;
    return Status::OK();
  };
  return spec;
}

SweepSpec OrgCountSweepSpec(const std::vector<int>& org_counts) {
  SweepSpec spec;
  spec.parameter = "num_orgs";
  for (int orgs : org_counts) {
    spec.values.push_back(static_cast<double>(orgs));
  }
  spec.apply = [](ExperimentConfig* config, double value, size_t) {
    config->fabric.cluster.num_orgs = static_cast<int>(value);
    return Status::OK();
  };
  return spec;
}

SweepSpec PolicyPresetSweepSpec(const std::vector<PolicyPreset>& presets) {
  SweepSpec spec;
  spec.parameter = "policy";
  for (size_t i = 0; i < presets.size(); ++i) {
    spec.values.push_back(static_cast<double>(i));
    spec.labels.push_back(PolicyPresetToString(presets[i]));
  }
  // Capture the presets by value: the spec may outlive the argument.
  spec.apply = [presets](ExperimentConfig* config, double, size_t index) {
    config->fabric.policy_text =
        MakePolicy(presets[index], config->fabric.cluster.num_orgs).ToString();
    return Status::OK();
  };
  return spec;
}

// --- derived searches ------------------------------------------------

Result<BlockSizeSearch> FindBestBlockSize(ExperimentConfig config,
                                          const std::vector<uint32_t>& sizes) {
  Result<std::vector<SweepPoint>> sweep =
      RunSweep(config, BlockSizeSweepSpec(sizes));
  if (!sweep.ok()) return sweep.status();
  BlockSizeSearch search;
  search.points = std::move(sweep).value();
  bool first = true;
  for (const SweepPoint& point : search.points) {
    uint32_t block_size = static_cast<uint32_t>(point.value);
    double pct = point.report.total_failure_pct;
    if (first || pct < search.min_failure_pct) {
      search.min_failure_pct = pct;
      search.best_block_size = block_size;
    }
    if (first || pct > search.max_failure_pct) {
      search.max_failure_pct = pct;
      search.worst_block_size = block_size;
    }
    first = false;
  }
  return search;
}

}  // namespace fabricsim
