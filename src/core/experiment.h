#ifndef FABRICSIM_CORE_EXPERIMENT_H_
#define FABRICSIM_CORE_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/chaincode/chaincode.h"
#include "src/common/status.h"
#include "src/fabric/network_config.h"
#include "src/workload/workload_spec.h"

namespace fabricsim {

/// One experiment = one Fabric configuration + one workload + a load
/// profile, repeated over several seeds (the paper repeats every
/// experiment at least 3 times and reports averages).
struct ExperimentConfig {
  FabricConfig fabric;
  WorkloadConfig workload;
  double arrival_rate_tps = 100.0;
  /// Load phase duration in simulated time. The paper drives load for
  /// 3 minutes; 60 s is statistically equivalent here and keeps the
  /// full sweep suite fast. In-flight work always drains fully.
  SimTime duration = 60 * kSecond;
  int repetitions = 3;
  uint64_t base_seed = 42;

  /// Paper Table 3 defaults: Fabric 1.4, EHR, CouchDB, block size 100,
  /// 100 tps, policy P0, C1 cluster (2 orgs x 2 peers), Zipf skew 1,
  /// uniform workload.
  static ExperimentConfig Defaults();

  /// Same defaults on the C2 cluster (8 orgs x 4 peers, 25 clients).
  static ExperimentConfig DefaultsC2();

  /// One-line description for report headers.
  std::string Describe() const;
};

/// Instantiates the chaincode the workload refers to, with key-space
/// parameters taken from the workload config (genChain) or the paper's
/// defaults (use-case chaincodes).
Result<std::shared_ptr<Chaincode>> MakeChaincodeFor(
    const WorkloadConfig& workload);

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_EXPERIMENT_H_
