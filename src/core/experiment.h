#ifndef FABRICSIM_CORE_EXPERIMENT_H_
#define FABRICSIM_CORE_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/chaincode/chaincode.h"
#include "src/common/status.h"
#include "src/fabric/network_config.h"
#include "src/policy/policy_presets.h"
#include "src/workload/population/population.h"
#include "src/workload/workload_spec.h"

namespace fabricsim {

/// One experiment = one Fabric configuration + one workload + a load
/// profile, repeated over several seeds (the paper repeats every
/// experiment at least 3 times and reports averages).
struct ExperimentConfig {
  FabricConfig fabric;
  WorkloadConfig workload;
  /// Behaviour-class client population. When empty (the default) the
  /// run uses the legacy flat client pool driven by arrival_rate_tps;
  /// when set it replaces arrival_rate_tps/cluster.num_clients as the
  /// load model (per-class rates, retry policies, channel affinities,
  /// chaincode mixes, optional MMPP modulation — aggregated above the
  /// population's threshold).
  PopulationConfig population;
  double arrival_rate_tps = 100.0;
  /// Load phase duration in simulated time. The paper drives load for
  /// 3 minutes; 60 s is statistically equivalent here and keeps the
  /// full sweep suite fast. In-flight work always drains fully.
  SimTime duration = 60 * kSecond;
  int repetitions = 3;
  uint64_t base_seed = 42;

  /// Paper Table 3 defaults: Fabric 1.4, EHR, CouchDB, block size 100,
  /// 100 tps, policy P0, C1 cluster (2 orgs x 2 peers), Zipf skew 1,
  /// uniform workload.
  static ExperimentConfig Defaults();

  /// Same defaults on the C2 cluster (8 orgs x 4 peers, 25 clients).
  static ExperimentConfig DefaultsC2();

  /// One-line description for report headers.
  std::string Describe() const;

  class Builder;
};

/// Fluent construction of experiment configurations, so a bench figure
/// reads as one declarative expression:
///
///   ExperimentConfig config = ExperimentConfig::Builder()
///                                 .Cluster(ClusterConfig::C2())
///                                 .BlockSize(100)
///                                 .RateTps(150)
///                                 .Policy(PolicyPreset::kP3Quorum)
///                                 .Build();
///
/// Starts from ExperimentConfig::Defaults(); every setter overrides
/// one knob. Policy presets are resolved against the final
/// organization count at Build() time, so Policy() and Cluster() may
/// be called in either order.
class ExperimentConfig::Builder {
 public:
  /// Starts from the paper's Table 3 defaults.
  Builder() : config_(ExperimentConfig::Defaults()) {}
  /// Starts from an existing configuration.
  explicit Builder(ExperimentConfig base) : config_(std::move(base)) {}

  Builder& Variant(FabricVariant variant) {
    config_.fabric.variant = variant;
    return *this;
  }
  Builder& Cluster(ClusterConfig cluster) {
    config_.fabric.cluster = cluster;
    return *this;
  }
  Builder& Database(DatabaseType db_type) {
    config_.fabric.db_type = db_type;
    return *this;
  }
  /// State-backend data structure for every peer replica. Any choice
  /// yields bit-identical simulation results; non-default backends
  /// change only wall-clock speed and memory.
  Builder& StateBackend(StateBackendType backend) {
    config_.fabric.state_backend = backend;
    return *this;
  }
  Builder& BlockSize(uint32_t block_size) {
    config_.fabric.block_size = block_size;
    return *this;
  }
  Builder& BlockTimeout(SimTime timeout) {
    config_.fabric.block_timeout = timeout;
    return *this;
  }
  /// Policy preset, instantiated for the final org count at Build().
  Builder& Policy(PolicyPreset preset) {
    policy_preset_ = preset;
    return *this;
  }
  /// Raw policy text (PolicyParser grammar); overrides Policy().
  Builder& PolicyText(std::string text) {
    policy_preset_.reset();
    config_.fabric.policy_text = std::move(text);
    return *this;
  }
  Builder& Chaincode(std::string name) {
    config_.workload.chaincode = std::move(name);
    return *this;
  }
  Builder& Mix(WorkloadMix mix) {
    config_.workload.mix = mix;
    return *this;
  }
  Builder& ZipfSkew(double skew) {
    config_.workload.zipf_skew = skew;
    return *this;
  }
  Builder& RateTps(double tps) {
    config_.arrival_rate_tps = tps;
    return *this;
  }
  Builder& Duration(SimTime duration) {
    config_.duration = duration;
    return *this;
  }
  Builder& Repetitions(int repetitions) {
    config_.repetitions = repetitions;
    return *this;
  }
  Builder& Seed(uint64_t seed) {
    config_.base_seed = seed;
    return *this;
  }
  Builder& Tracing(bool on = true) {
    config_.fabric.tracing = on;
    return *this;
  }
  /// Behaviour-class population (replaces the flat RateTps() client
  /// pool; see ExperimentConfig::population).
  Builder& Population(PopulationConfig population) {
    config_.population = std::move(population);
    return *this;
  }
  /// Memory-bounded streaming tracer (sketches + failure exemplars
  /// instead of dense per-transaction spans).
  Builder& StreamingObservability(bool on = true) {
    config_.fabric.streaming_obs = on;
    return *this;
  }
  /// Fold commits into streaming aggregates instead of retaining the
  /// canonical ledger (incompatible with fault plans).
  Builder& StreamingLedger(bool on = true) {
    config_.fabric.streaming_ledger = on;
    return *this;
  }
  Builder& SubmitReadOnly(bool on) {
    config_.fabric.submit_read_only = on;
    return *this;
  }
  /// Deterministic fault schedule for every repetition of the run.
  Builder& Faults(FaultPlan plan) {
    config_.fabric.faults = std::move(plan);
    return *this;
  }
  /// Client endorsement-retry / MVCC-resubmission policy.
  Builder& Retry(ClientRetryPolicy retry) {
    config_.fabric.retry = retry;
    return *this;
  }
  /// Overload protection (deadlines, admission control, backpressure,
  /// circuit breaker, retry budget). The default — a disabled config —
  /// reproduces the unprotected pipeline bitwise.
  Builder& Admission(AdmissionConfig admission) {
    config_.fabric.admission = admission;
    return *this;
  }
  /// Replicated (Raft) ordering service configuration. Set
  /// ordering.replicated = true to leave compat mode.
  Builder& ReplicatedOrdering(OrderingConfig ordering) {
    config_.fabric.ordering = ordering;
    return *this;
  }
  /// Intra-run execution mode. Simulator-performance only: results
  /// are bitwise identical in every mode.
  Builder& Execution(ExecutionConfig execution) {
    config_.fabric.execution = execution;
    return *this;
  }
  /// Shorthand for Execution(ExecutionConfig::Threaded(threads)).
  Builder& ThreadedExecution(int threads = 0) {
    config_.fabric.execution = ExecutionConfig::Threaded(threads);
    return *this;
  }
  /// Number of channels the network hosts (sharded ledgers). 1 (the
  /// default) is the classic single-channel network.
  Builder& Channels(int num_channels) {
    config_.fabric.num_channels = num_channels;
    return *this;
  }
  /// Zipf exponent of channel popularity (0 = uniform spread).
  Builder& ChannelSkew(double skew) {
    config_.workload.channel_affinity.skew = skew;
    return *this;
  }
  /// Pins every client to a subset of this many channels (0 = all
  /// channels visible to every client).
  Builder& ChannelsPerClient(int channels_per_client) {
    config_.workload.channel_affinity.channels_per_client =
        channels_per_client;
    return *this;
  }
  /// Pins every client to exactly this channel (scenario packs aim one
  /// behaviour class at one channel's ledger this way).
  Builder& PinnedChannel(int channel) {
    config_.workload.channel_affinity.pinned_channel = channel;
    return *this;
  }
  /// tpcc only: warehouse count, the TPC-C hotspot sweep knob (W
  /// warehouses = W x 10 district rows carrying ~88% of the mix).
  Builder& TpccWarehouses(int warehouses) {
    config_.workload.tpcc.warehouses = warehouses;
    return *this;
  }

  ExperimentConfig Build() const {
    ExperimentConfig config = config_;
    if (policy_preset_.has_value()) {
      config.fabric.policy_text =
          MakePolicy(*policy_preset_, config.fabric.cluster.num_orgs)
              .ToString();
    }
    return config;
  }

 private:
  ExperimentConfig config_;
  std::optional<PolicyPreset> policy_preset_;
};

/// Instantiates the chaincode the workload refers to, with key-space
/// parameters taken from the workload config (genChain) or the paper's
/// defaults (use-case chaincodes).
Result<std::shared_ptr<Chaincode>> MakeChaincodeFor(
    const WorkloadConfig& workload);

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_EXPERIMENT_H_
