#ifndef FABRICSIM_CORE_RECOMMENDATIONS_H_
#define FABRICSIM_CORE_RECOMMENDATIONS_H_

#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/failure_report.h"

namespace fabricsim {

/// One actionable recommendation derived from a measured report.
struct Recommendation {
  /// Which of the paper's §6.1 rules fired (stable identifier).
  std::string rule;
  std::string advice;
};

/// Encodes the paper's "Insights & Recommendations" (§6.1) as a rule
/// engine over a measured failure report:
///  1. adapt block size to the observed arrival rate;
///  2. fewer orgs / fewer signatures / fewer sub-policies when
///     endorsement failures dominate;
///  3. avoid rich and range queries (LevelDB, smaller ranges) when
///     phantoms or CouchDB latency dominate;
///  4. batch or skip read-only submissions;
///  plus variant guidance (Fabric++/FabricSharp only pay off when
///  there is reordering potential; Streamchain only at low rates).
std::vector<Recommendation> DeriveRecommendations(
    const ExperimentConfig& config, const FailureReport& report);

/// Renders recommendations as a numbered list.
std::string FormatRecommendations(const std::vector<Recommendation>& recs);

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_RECOMMENDATIONS_H_
