#ifndef FABRICSIM_CORE_BLOCK_SIZE_ADVISOR_H_
#define FABRICSIM_CORE_BLOCK_SIZE_ADVISOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fabricsim {

/// Adaptive block-size controller — an implementation of the paper's
/// first future-research direction (§6.2): monitor the transaction
/// arrival rate and adapt the block size dynamically.
///
/// The paper observes an approximately linear relation between the
/// arrival rate and the best block size (Fig. 4), with a
/// chaincode-dependent slope. The advisor therefore fits
///   best_block_size ≈ slope * arrival_rate
/// by least squares through the origin over calibration observations
/// (e.g. from FindBestBlockSize sweeps), and falls back to a
/// conservative default slope when uncalibrated.
class BlockSizeAdvisor {
 public:
  /// `default_slope` is the blocks-per-(tps) ratio used before any
  /// observation; 0.5 corresponds to cutting ~2 blocks per second.
  explicit BlockSizeAdvisor(double default_slope = 0.5);

  /// Records that `best_block_size` minimized failures at `rate_tps`.
  void AddObservation(double rate_tps, uint32_t best_block_size);

  /// Recommends a block size for the given arrival rate, clamped to
  /// [min_size, max_size].
  uint32_t Recommend(double rate_tps) const;

  /// Feeds a window of observed inter-arrival counts (e.g. from the
  /// last monitoring interval) and returns the recommendation for the
  /// measured rate — the "monitor and adapt" loop.
  uint32_t RecommendFromWindow(uint64_t txs_in_window,
                               double window_seconds) const;

  double slope() const;
  size_t observation_count() const { return observations_.size(); }

  uint32_t min_size = 10;
  uint32_t max_size = 500;

 private:
  struct Observation {
    double rate;
    double best;
  };
  double default_slope_;
  std::vector<Observation> observations_;
};

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_BLOCK_SIZE_ADVISOR_H_
