#include "src/core/failure_report.h"

#include <algorithm>

#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/ledger/ledger_stats.h"
#include "src/obs/tracer.h"

namespace fabricsim {

namespace {

/// Counts, failure percentages, stats-side counters and throughput —
/// the part of the report that is a pure function of (summary, stats,
/// window length), shared by the parsed-ledger and streaming builds so
/// both produce identical numbers from identical counts.
void FillFromSummary(FailureReport& report, const LedgerSummary& summary,
                     const RunStats& stats, double seconds) {
  report.ledger_txs = summary.total;
  report.valid_txs = summary.valid;
  report.endorsement_failures = summary.endorsement_policy_failures;
  report.mvcc_intra = summary.mvcc_intra_block;
  report.mvcc_inter = summary.mvcc_inter_block;
  report.phantom = summary.phantom_read_conflicts;
  // Fabric++ aborts in the ordering phase; they normally never reach
  // the ledger, but blocks pre-marked by custom processors may still
  // carry them — count both sources.
  report.reorder_aborts =
      summary.reordering_aborts + stats.early_aborts_by_reordering;
  report.early_aborts = stats.early_aborts_not_serializable;
  report.submitted_txs = stats.txs_submitted;
  report.app_errors = stats.app_errors;
  report.dropped_no_endorsers = stats.txs_dropped_no_endorsers;
  report.endorse_retries = stats.endorse_retries;
  report.endorse_timeouts = stats.endorse_timeouts;
  report.resubmissions = stats.resubmissions;
  report.orderer_rebroadcasts = stats.orderer_rebroadcasts;
  report.orderer_broadcast_drops = stats.orderer_broadcast_drops;
  report.orderer_elections = stats.orderer_elections;
  report.orderer_leader_changes = stats.orderer_leader_changes;
  // Commit-phase deadline expirations live on the chain like any other
  // validation failure; nonzero only when deadlines were enabled.
  report.deadline_expired_commit = summary.deadline_expired;

  if (summary.total > 0) {
    double n = static_cast<double>(summary.total);
    report.total_failure_pct =
        100.0 * static_cast<double>(summary.failed()) / n;
    report.endorsement_pct =
        100.0 * static_cast<double>(summary.endorsement_policy_failures) / n;
    report.mvcc_intra_pct =
        100.0 * static_cast<double>(summary.mvcc_intra_block) / n;
    report.mvcc_inter_pct =
        100.0 * static_cast<double>(summary.mvcc_inter_block) / n;
    report.mvcc_pct = report.mvcc_intra_pct + report.mvcc_inter_pct;
    report.phantom_pct =
        100.0 * static_cast<double>(summary.phantom_read_conflicts) / n;
  }
  if (stats.txs_submitted > 0) {
    report.early_abort_pct =
        100.0 * static_cast<double>(stats.early_aborts_not_serializable) /
        static_cast<double>(stats.txs_submitted);
    report.reorder_abort_pct =
        100.0 *
        (static_cast<double>(summary.reordering_aborts) +
         static_cast<double>(stats.early_aborts_by_reordering)) /
        static_cast<double>(stats.txs_submitted);
  }
  if (seconds > 0) {
    report.valid_throughput_tps =
        static_cast<double>(summary.valid) / seconds;
  }
}

/// Per-phase breakdown from the tracer's sketches (both build paths).
void FillPhases(FailureReport& report, const Tracer* tracer) {
  if (tracer == nullptr || tracer->phases().total.count() == 0) return;
  const PhaseSketches& phases = tracer->phases();
  report.has_phase_breakdown = true;
  report.endorse_avg_s = phases.endorse.mean() / 1000.0;
  report.endorse_p99_s = phases.endorse.Percentile(0.99) / 1000.0;
  report.ordering_avg_s = phases.ordering.mean() / 1000.0;
  report.ordering_p99_s = phases.ordering.Percentile(0.99) / 1000.0;
  report.commit_avg_s = phases.commit.mean() / 1000.0;
  report.commit_p99_s = phases.commit.Percentile(0.99) / 1000.0;
}

/// Overload-protection section (both build paths). A null `admission`
/// — every unprotected run — leaves the report untouched.
void FillAdmission(FailureReport& report, const AdmissionStats* admission) {
  if (admission == nullptr) return;
  report.has_admission = true;
  report.admission_shed = admission->endorse_shed;
  report.admission_cancelled = admission->endorse_cancelled;
  report.deadline_expired_endorse = admission->deadline_expired_endorse;
  report.deadline_expired_order = admission->deadline_expired_order;
  report.orderer_throttled = admission->orderer_throttled;
  report.breaker_rejected = admission->breaker_rejected;
  report.breaker_opens = admission->breaker_opens;
  report.retry_budget_denials = admission->retry_budget_denials;
  if (admission->endorse_sojourn_ms.count() > 0) {
    report.endorse_sojourn_p50_ms = admission->endorse_sojourn_ms.Percentile(0.5);
    report.endorse_sojourn_p99_ms = admission->endorse_sojourn_ms.Percentile(0.99);
  }
  if (admission->endorse_depth.count() > 0) {
    report.endorse_depth_mean = admission->endorse_depth.mean();
    report.endorse_depth_max = admission->endorse_depth.max();
  }
}

}  // namespace

FailureReport BuildFailureReport(const BlockStore& ledger,
                                 const RunStats& stats,
                                 SimTime load_duration,
                                 const Tracer* tracer,
                                 const AdmissionStats* admission) {
  return BuildFailureReport(std::vector<const BlockStore*>{&ledger}, stats,
                            load_duration, tracer, admission);
}

FailureReport BuildFailureReport(const std::vector<const BlockStore*>& ledgers,
                                 const RunStats& stats,
                                 SimTime load_duration,
                                 const Tracer* tracer,
                                 const AdmissionStats* admission) {
  FailureReport report;
  double seconds = ToSeconds(load_duration);
  // Aggregate counts sum over every channel's chain; with exactly one
  // ledger every accumulation below reduces to the same arithmetic the
  // single-ledger report always did, keeping it bitwise stable.
  LedgerSummary summary;
  Histogram latencies;
  uint64_t committed_in_window = 0;
  for (size_t c = 0; c < ledgers.size(); ++c) {
    const BlockStore& ledger = *ledgers[c];
    LedgerSummary channel_summary = LedgerParser::Summarize(ledger);
    summary.Merge(channel_summary);

    uint64_t channel_committed_in_window = 0;
    for (const TxRecord& rec : LedgerParser::Parse(ledger)) {
      latencies.Add(ToMillis(rec.TotalLatency()));
      if (rec.committed_time <= load_duration) ++channel_committed_in_window;
    }
    committed_in_window += channel_committed_in_window;

    // Ordering-availability proxy: the widest silence between
    // consecutive block cuts on any one channel's chain.
    SimTime prev_cut = kSimTimeNever;
    for (const auto& block : ledger.blocks()) {
      if (prev_cut != kSimTimeNever && block.cut_time > prev_cut) {
        double gap = ToSeconds(block.cut_time - prev_cut);
        if (gap > report.max_interblock_gap_s) {
          report.max_interblock_gap_s = gap;
        }
      }
      prev_cut = block.cut_time;
    }

    if (ledgers.size() > 1) {
      ChannelFailureBreakdown slice;
      slice.channel = static_cast<int>(c);
      slice.ledger_txs = channel_summary.total;
      slice.valid_txs = channel_summary.valid;
      slice.endorsement_failures = channel_summary.endorsement_policy_failures;
      slice.mvcc_intra = channel_summary.mvcc_intra_block;
      slice.mvcc_inter = channel_summary.mvcc_inter_block;
      slice.phantom = channel_summary.phantom_read_conflicts;
      if (channel_summary.total > 0) {
        double n = static_cast<double>(channel_summary.total);
        slice.total_failure_pct =
            100.0 * static_cast<double>(channel_summary.failed()) / n;
        slice.mvcc_pct =
            100.0 * static_cast<double>(channel_summary.mvcc_total()) / n;
      }
      if (seconds > 0) {
        slice.committed_throughput_tps =
            static_cast<double>(channel_committed_in_window) / seconds;
      }
      report.per_channel.push_back(slice);
    }
  }
  FillFromSummary(report, summary, stats, seconds);

  // Latency over all ledger transactions (failed and successful), and
  // the count of transactions that committed within the load window
  // (the throughput the paper measures; commits during the drain
  // phase of a saturated system do not count).
  if (latencies.count() > 0) {
    report.avg_latency_s = latencies.mean() / 1000.0;
    report.p50_latency_s = latencies.Percentile(0.5) / 1000.0;
    report.p99_latency_s = latencies.Percentile(0.99) / 1000.0;
  }
  if (seconds > 0) {
    report.committed_throughput_tps =
        static_cast<double>(committed_in_window) / seconds;
  }

  FillPhases(report, tracer);
  FillAdmission(report, admission);
  return report;
}

FailureReport BuildFailureReport(const StreamingLedgerStats& ledger_stats,
                                 const RunStats& stats,
                                 SimTime load_duration,
                                 const Tracer* tracer,
                                 const AdmissionStats* admission) {
  FailureReport report;
  double seconds = ToSeconds(load_duration);
  FillFromSummary(report, ledger_stats.summary(), stats, seconds);
  report.max_interblock_gap_s = ledger_stats.max_interblock_gap_s();

  const QuantileSketch& latencies = ledger_stats.latency_ms();
  if (latencies.count() > 0) {
    report.avg_latency_s = latencies.mean() / 1000.0;
    report.p50_latency_s = latencies.Percentile(0.5) / 1000.0;
    report.p99_latency_s = latencies.Percentile(0.99) / 1000.0;
  }
  if (seconds > 0) {
    report.committed_throughput_tps =
        static_cast<double>(ledger_stats.committed_in_window()) / seconds;
  }

  if (ledger_stats.num_channels() > 1) {
    for (int c = 0; c < ledger_stats.num_channels(); ++c) {
      const LedgerSummary& channel_summary = ledger_stats.channel_summary(c);
      ChannelFailureBreakdown slice;
      slice.channel = c;
      slice.ledger_txs = channel_summary.total;
      slice.valid_txs = channel_summary.valid;
      slice.endorsement_failures = channel_summary.endorsement_policy_failures;
      slice.mvcc_intra = channel_summary.mvcc_intra_block;
      slice.mvcc_inter = channel_summary.mvcc_inter_block;
      slice.phantom = channel_summary.phantom_read_conflicts;
      if (channel_summary.total > 0) {
        double n = static_cast<double>(channel_summary.total);
        slice.total_failure_pct =
            100.0 * static_cast<double>(channel_summary.failed()) / n;
        slice.mvcc_pct =
            100.0 * static_cast<double>(channel_summary.mvcc_total()) / n;
      }
      if (seconds > 0) {
        slice.committed_throughput_tps =
            static_cast<double>(ledger_stats.committed_in_window(c)) / seconds;
      }
      report.per_channel.push_back(slice);
    }
  }

  FillPhases(report, tracer);
  FillAdmission(report, admission);
  return report;
}

FailureReport FailureReport::Average(
    const std::vector<FailureReport>& reports) {
  FailureReport mean;
  if (reports.empty()) return mean;
  double n = static_cast<double>(reports.size());
  auto avg_u = [&](auto getter) {
    double sum = 0;
    for (const FailureReport& r : reports) {
      sum += static_cast<double>(getter(r));
    }
    return static_cast<uint64_t>(sum / n + 0.5);
  };
  auto avg_d = [&](auto getter) {
    double sum = 0;
    for (const FailureReport& r : reports) sum += getter(r);
    return sum / n;
  };
  mean.ledger_txs = avg_u([](const auto& r) { return r.ledger_txs; });
  mean.valid_txs = avg_u([](const auto& r) { return r.valid_txs; });
  mean.endorsement_failures =
      avg_u([](const auto& r) { return r.endorsement_failures; });
  mean.mvcc_intra = avg_u([](const auto& r) { return r.mvcc_intra; });
  mean.mvcc_inter = avg_u([](const auto& r) { return r.mvcc_inter; });
  mean.phantom = avg_u([](const auto& r) { return r.phantom; });
  mean.reorder_aborts = avg_u([](const auto& r) { return r.reorder_aborts; });
  mean.early_aborts = avg_u([](const auto& r) { return r.early_aborts; });
  mean.submitted_txs = avg_u([](const auto& r) { return r.submitted_txs; });
  mean.app_errors = avg_u([](const auto& r) { return r.app_errors; });
  mean.dropped_no_endorsers =
      avg_u([](const auto& r) { return r.dropped_no_endorsers; });
  mean.endorse_retries = avg_u([](const auto& r) { return r.endorse_retries; });
  mean.endorse_timeouts =
      avg_u([](const auto& r) { return r.endorse_timeouts; });
  mean.resubmissions = avg_u([](const auto& r) { return r.resubmissions; });
  mean.orderer_rebroadcasts =
      avg_u([](const auto& r) { return r.orderer_rebroadcasts; });
  mean.orderer_broadcast_drops =
      avg_u([](const auto& r) { return r.orderer_broadcast_drops; });
  mean.orderer_elections =
      avg_u([](const auto& r) { return r.orderer_elections; });
  mean.orderer_leader_changes =
      avg_u([](const auto& r) { return r.orderer_leader_changes; });
  bool all_admission = true;
  for (const FailureReport& r : reports) all_admission &= r.has_admission;
  if (all_admission) {
    mean.has_admission = true;
    mean.admission_shed = avg_u([](const auto& r) { return r.admission_shed; });
    mean.admission_cancelled =
        avg_u([](const auto& r) { return r.admission_cancelled; });
    mean.deadline_expired_endorse =
        avg_u([](const auto& r) { return r.deadline_expired_endorse; });
    mean.deadline_expired_order =
        avg_u([](const auto& r) { return r.deadline_expired_order; });
    mean.deadline_expired_commit =
        avg_u([](const auto& r) { return r.deadline_expired_commit; });
    mean.orderer_throttled =
        avg_u([](const auto& r) { return r.orderer_throttled; });
    mean.breaker_rejected =
        avg_u([](const auto& r) { return r.breaker_rejected; });
    mean.breaker_opens = avg_u([](const auto& r) { return r.breaker_opens; });
    mean.retry_budget_denials =
        avg_u([](const auto& r) { return r.retry_budget_denials; });
    mean.endorse_sojourn_p50_ms =
        avg_d([](const auto& r) { return r.endorse_sojourn_p50_ms; });
    mean.endorse_sojourn_p99_ms =
        avg_d([](const auto& r) { return r.endorse_sojourn_p99_ms; });
    mean.endorse_depth_mean =
        avg_d([](const auto& r) { return r.endorse_depth_mean; });
    mean.endorse_depth_max =
        avg_d([](const auto& r) { return r.endorse_depth_max; });
  }
  mean.total_failure_pct =
      avg_d([](const auto& r) { return r.total_failure_pct; });
  mean.endorsement_pct = avg_d([](const auto& r) { return r.endorsement_pct; });
  mean.mvcc_intra_pct = avg_d([](const auto& r) { return r.mvcc_intra_pct; });
  mean.mvcc_inter_pct = avg_d([](const auto& r) { return r.mvcc_inter_pct; });
  mean.mvcc_pct = avg_d([](const auto& r) { return r.mvcc_pct; });
  mean.phantom_pct = avg_d([](const auto& r) { return r.phantom_pct; });
  mean.reorder_abort_pct =
      avg_d([](const auto& r) { return r.reorder_abort_pct; });
  mean.early_abort_pct = avg_d([](const auto& r) { return r.early_abort_pct; });
  mean.avg_latency_s = avg_d([](const auto& r) { return r.avg_latency_s; });
  mean.p50_latency_s = avg_d([](const auto& r) { return r.p50_latency_s; });
  mean.p99_latency_s = avg_d([](const auto& r) { return r.p99_latency_s; });
  mean.committed_throughput_tps =
      avg_d([](const auto& r) { return r.committed_throughput_tps; });
  mean.valid_throughput_tps =
      avg_d([](const auto& r) { return r.valid_throughput_tps; });
  mean.max_interblock_gap_s =
      avg_d([](const auto& r) { return r.max_interblock_gap_s; });
  bool all_phases = true;
  for (const FailureReport& r : reports) all_phases &= r.has_phase_breakdown;
  if (all_phases) {
    mean.has_phase_breakdown = true;
    mean.endorse_avg_s = avg_d([](const auto& r) { return r.endorse_avg_s; });
    mean.endorse_p99_s = avg_d([](const auto& r) { return r.endorse_p99_s; });
    mean.ordering_avg_s = avg_d([](const auto& r) { return r.ordering_avg_s; });
    mean.ordering_p99_s = avg_d([](const auto& r) { return r.ordering_p99_s; });
    mean.commit_avg_s = avg_d([](const auto& r) { return r.commit_avg_s; });
    mean.commit_p99_s = avg_d([](const auto& r) { return r.commit_p99_s; });
  }
  // Per-channel slices average element-wise when every repetition saw
  // the same channel layout (they always do — the layout is part of
  // the config); mismatched shapes leave the mean's slices empty.
  bool same_channels = true;
  for (const FailureReport& r : reports) {
    same_channels &= r.per_channel.size() == reports[0].per_channel.size();
  }
  if (same_channels && !reports[0].per_channel.empty()) {
    for (size_t c = 0; c < reports[0].per_channel.size(); ++c) {
      ChannelFailureBreakdown slice;
      slice.channel = reports[0].per_channel[c].channel;
      auto cavg_u = [&](auto getter) {
        double sum = 0;
        for (const FailureReport& r : reports) {
          sum += static_cast<double>(getter(r.per_channel[c]));
        }
        return static_cast<uint64_t>(sum / n + 0.5);
      };
      auto cavg_d = [&](auto getter) {
        double sum = 0;
        for (const FailureReport& r : reports) sum += getter(r.per_channel[c]);
        return sum / n;
      };
      slice.ledger_txs = cavg_u([](const auto& s) { return s.ledger_txs; });
      slice.valid_txs = cavg_u([](const auto& s) { return s.valid_txs; });
      slice.endorsement_failures =
          cavg_u([](const auto& s) { return s.endorsement_failures; });
      slice.mvcc_intra = cavg_u([](const auto& s) { return s.mvcc_intra; });
      slice.mvcc_inter = cavg_u([](const auto& s) { return s.mvcc_inter; });
      slice.phantom = cavg_u([](const auto& s) { return s.phantom; });
      slice.total_failure_pct =
          cavg_d([](const auto& s) { return s.total_failure_pct; });
      slice.mvcc_pct = cavg_d([](const auto& s) { return s.mvcc_pct; });
      slice.committed_throughput_tps =
          cavg_d([](const auto& s) { return s.committed_throughput_tps; });
      mean.per_channel.push_back(slice);
    }
  }
  return mean;
}

std::string FailureReport::ToString() const {
  std::string out;
  out += StrFormat(
      "ledger txs: %llu (valid %llu) | submitted %llu | app errors %llu\n",
      static_cast<unsigned long long>(ledger_txs),
      static_cast<unsigned long long>(valid_txs),
      static_cast<unsigned long long>(submitted_txs),
      static_cast<unsigned long long>(app_errors));
  out += StrFormat(
      "failures: total %.2f%% | endorsement %.2f%% | mvcc %.2f%% "
      "(intra %.2f%%, inter %.2f%%) | phantom %.2f%%",
      total_failure_pct, endorsement_pct, mvcc_pct, mvcc_intra_pct,
      mvcc_inter_pct, phantom_pct);
  if (reorder_aborts > 0) {
    out += StrFormat(" | reorder-aborts %.2f%%", reorder_abort_pct);
  }
  if (early_aborts > 0) {
    out += StrFormat(" | early-aborts %.2f%% of submitted", early_abort_pct);
  }
  out += StrFormat(
      "\nlatency: avg %.3fs p50 %.3fs p99 %.3fs | throughput: %.1f tps "
      "committed, %.1f tps valid\n",
      avg_latency_s, p50_latency_s, p99_latency_s, committed_throughput_tps,
      valid_throughput_tps);
  if (dropped_no_endorsers > 0 || endorse_retries > 0 ||
      endorse_timeouts > 0 || resubmissions > 0) {
    out += StrFormat(
        "client: retries %llu | timeouts %llu | resubmissions %llu | "
        "no-endorsers %llu\n",
        static_cast<unsigned long long>(endorse_retries),
        static_cast<unsigned long long>(endorse_timeouts),
        static_cast<unsigned long long>(resubmissions),
        static_cast<unsigned long long>(dropped_no_endorsers));
  }
  if (orderer_rebroadcasts > 0 || orderer_broadcast_drops > 0 ||
      orderer_elections > 0 || orderer_leader_changes > 0) {
    out += StrFormat(
        "ordering: elections %llu | leader changes %llu | rebroadcasts %llu "
        "| drops %llu | max gap %.3fs\n",
        static_cast<unsigned long long>(orderer_elections),
        static_cast<unsigned long long>(orderer_leader_changes),
        static_cast<unsigned long long>(orderer_rebroadcasts),
        static_cast<unsigned long long>(orderer_broadcast_drops),
        max_interblock_gap_s);
  }
  if (has_phase_breakdown) {
    out += StrFormat(
        "phases: endorse avg %.3fs p99 %.3fs | ordering avg %.3fs p99 %.3fs "
        "| commit avg %.3fs p99 %.3fs\n",
        endorse_avg_s, endorse_p99_s, ordering_avg_s, ordering_p99_s,
        commit_avg_s, commit_p99_s);
  }
  if (has_admission) {
    out += StrFormat(
        "admission: shed %llu (cancelled %llu) | expired "
        "endorse/order/commit %llu/%llu/%llu "
        "| throttled %llu | breaker rejects %llu (opens %llu) | budget "
        "denials %llu\n",
        static_cast<unsigned long long>(admission_shed),
        static_cast<unsigned long long>(admission_cancelled),
        static_cast<unsigned long long>(deadline_expired_endorse),
        static_cast<unsigned long long>(deadline_expired_order),
        static_cast<unsigned long long>(deadline_expired_commit),
        static_cast<unsigned long long>(orderer_throttled),
        static_cast<unsigned long long>(breaker_rejected),
        static_cast<unsigned long long>(breaker_opens),
        static_cast<unsigned long long>(retry_budget_denials));
    out += StrFormat(
        "admission queue: sojourn p50 %.1fms p99 %.1fms | depth mean %.1f "
        "max %.0f\n",
        endorse_sojourn_p50_ms, endorse_sojourn_p99_ms, endorse_depth_mean,
        endorse_depth_max);
  }
  for (const ChannelFailureBreakdown& slice : per_channel) {
    out += StrFormat(
        "channel %d: ledger %llu (valid %llu) | failures %.2f%% "
        "(mvcc %.2f%%) | %.1f tps committed\n",
        slice.channel, static_cast<unsigned long long>(slice.ledger_txs),
        static_cast<unsigned long long>(slice.valid_txs),
        slice.total_failure_pct, slice.mvcc_pct,
        slice.committed_throughput_tps);
  }
  return out;
}

}  // namespace fabricsim
