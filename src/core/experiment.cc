#include "src/core/experiment.h"

#include "src/chaincode/registry.h"
#include "src/common/strings.h"

namespace fabricsim {

ExperimentConfig ExperimentConfig::Defaults() {
  ExperimentConfig config;
  config.fabric.variant = FabricVariant::kFabric14;
  config.fabric.cluster = ClusterConfig::C1();
  config.fabric.db_type = DatabaseType::kCouchDb;
  config.fabric.block_size = 100;
  config.workload.chaincode = "ehr";
  config.workload.mix = WorkloadMix::kUniform;
  config.workload.zipf_skew = 1.0;
  config.arrival_rate_tps = 100.0;
  return config;
}

ExperimentConfig ExperimentConfig::DefaultsC2() {
  ExperimentConfig config = Defaults();
  config.fabric.cluster = ClusterConfig::C2();
  return config;
}

std::string ExperimentConfig::Describe() const {
  std::string description = StrFormat(
      "%s | %s | %s | bs=%u | %.0f tps | %d orgs x %d peers | skew=%.1f | %s",
      FabricVariantToString(fabric.variant), workload.chaincode.c_str(),
      DatabaseTypeToString(fabric.db_type), fabric.block_size,
      arrival_rate_tps, fabric.cluster.num_orgs, fabric.cluster.peers_per_org,
      workload.zipf_skew, WorkloadMixToString(workload.mix));
  // Only multi-channel runs mention channels: single-channel report
  // headers must match the pre-channel output byte for byte.
  if (fabric.num_channels > 1) {
    description += StrFormat(" | channels=%d cskew=%.1f",
                             fabric.num_channels,
                             workload.channel_affinity.skew);
  }
  // Only non-default backends are mentioned: default-backend report
  // headers must match the pre-backend output byte for byte.
  if (fabric.state_backend != StateBackendType::kOrderedMap) {
    description += StrFormat(
        " | backend=%s", StateBackendTypeToString(fabric.state_backend));
  }
  // Population / streaming knobs are echoed only when engaged, for the
  // same byte-stability reason.
  if (!population.empty()) {
    description += StrFormat(
        " | population=%zu classes, %llu users, %.0f tps",
        population.classes.size(),
        static_cast<unsigned long long>(population.TotalUsers()),
        population.TotalRateTps());
  }
  if (fabric.streaming_obs) description += " | streaming-obs";
  if (fabric.streaming_ledger) description += " | streaming-ledger";
  if (!workload.genchain_mutations) description += " | static-keys";
  // Overload protection is echoed only when some mechanism is on:
  // unprotected report headers stay byte-stable.
  if (fabric.admission.enabled()) {
    description += " | admission=";
    bool first = true;
    auto append = [&](std::string part) {
      if (!first) description += ",";
      description += part;
      first = false;
    };
    if (fabric.admission.deadlines_enabled()) {
      append(StrFormat("ttl=%.1fs", ToSeconds(fabric.admission.tx_deadline)));
    }
    if (fabric.admission.endorse_bounded()) {
      append(StrFormat(
          "%s", AdmissionQueuePolicyToString(fabric.admission.endorse_policy)));
    }
    if (fabric.admission.orderer_bounded()) {
      append(StrFormat("ob=%u", fabric.admission.max_orderer_queue_depth));
    }
    if (fabric.admission.breaker.enabled) append("breaker");
    if (fabric.admission.retry_budget.enabled) append("budget");
  }
  return description;
}

Result<std::shared_ptr<Chaincode>> MakeChaincodeFor(
    const WorkloadConfig& workload) {
  // Fully catalog-driven: built-ins and RegisterChaincodeFactory()
  // additions resolve identically, and the error enumerates what
  // exists instead of leaving the caller to guess.
  std::optional<ChaincodeFactory> factory =
      FindChaincodeFactory(workload.chaincode);
  if (!factory.has_value()) {
    return Status::InvalidArgument(UnknownChaincodeError(workload.chaincode));
  }
  return factory->make_chaincode(workload);
}

}  // namespace fabricsim
