#include "src/core/runner.h"

#include <memory>

#include "src/fabric/fabric_network.h"
#include "src/workload/paper_workloads.h"

namespace fabricsim {

Result<FailureReport> RunOnce(const ExperimentConfig& config, uint64_t seed) {
  Result<std::shared_ptr<Chaincode>> chaincode =
      MakeChaincodeFor(config.workload);
  if (!chaincode.ok()) return chaincode.status();

  bool rich = config.fabric.db_type == DatabaseType::kCouchDb;
  WorkloadConfig workload_config = config.workload;
  if (config.fabric.variant == FabricVariant::kFabricSharp) {
    // FabricSharp does not support range queries (paper §5.4.3).
    workload_config.include_range_reads = false;
  }
  Result<std::unique_ptr<WorkloadGenerator>> workload =
      MakeWorkload(workload_config, rich);
  if (!workload.ok()) return workload.status();

  Environment env(seed);
  FabricNetwork network(config.fabric, &env, chaincode.value(),
                        std::shared_ptr<WorkloadGenerator>(
                            std::move(workload).value()));
  FABRICSIM_RETURN_NOT_OK(network.Init());
  network.StartLoad(config.arrival_rate_tps, config.duration);
  env.RunAll();
  return BuildFailureReport(network.ledger(), network.stats(),
                            config.duration);
}

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  ExperimentResult result;
  int reps = config.repetitions < 1 ? 1 : config.repetitions;
  for (int i = 0; i < reps; ++i) {
    Result<FailureReport> report =
        RunOnce(config, config.base_seed + static_cast<uint64_t>(i));
    if (!report.ok()) return report.status();
    result.repetitions.push_back(std::move(report).value());
  }
  result.mean = FailureReport::Average(result.repetitions);
  return result;
}

}  // namespace fabricsim
