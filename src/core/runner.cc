#include "src/core/runner.h"

#include <memory>
#include <optional>
#include <utility>

#include "src/common/parallel.h"
#include "src/core/invariants.h"
#include "src/fabric/fabric_network.h"
#include "src/workload/paper_workloads.h"

namespace fabricsim {

namespace {

/// Report + optional trace export of one (config, seed) run.
struct RunArtifacts {
  FailureReport report;
  std::string trace_jsonl;  ///< empty unless config.fabric.tracing
};

Result<RunArtifacts> RunOnceArtifacts(const ExperimentConfig& config,
                                      uint64_t seed) {
  Result<std::shared_ptr<Chaincode>> chaincode =
      MakeChaincodeFor(config.workload);
  if (!chaincode.ok()) return chaincode.status();

  bool rich = config.fabric.db_type == DatabaseType::kCouchDb;
  WorkloadConfig workload_config = config.workload;
  if (config.fabric.variant == FabricVariant::kFabricSharp) {
    // FabricSharp does not support range queries (paper §5.4.3).
    workload_config.include_range_reads = false;
  }
  Result<std::unique_ptr<WorkloadGenerator>> workload =
      MakeWorkload(workload_config, rich);
  if (!workload.ok()) return workload.status();

  Environment env(seed, config.fabric.execution);
  FabricNetwork network(config.fabric, &env, chaincode.value(),
                        std::shared_ptr<WorkloadGenerator>(
                            std::move(workload).value()));
  FABRICSIM_RETURN_NOT_OK(network.Init());
  network.set_channel_affinity(config.workload.channel_affinity);
  if (config.population.empty()) {
    network.StartLoad(config.arrival_rate_tps, config.duration);
  } else {
    // Per-class chaincode mixes are resolved here (the network layer
    // knows nothing about WorkloadConfig): a class with a mix override
    // gets its own generator over the same chaincode/key-space config,
    // classes without one share the run's generator (nullptr entry).
    std::vector<std::shared_ptr<WorkloadGenerator>> class_workloads;
    for (const BehaviourClass& bc : config.population.classes) {
      if (!bc.mix.has_value()) {
        class_workloads.push_back(nullptr);
        continue;
      }
      WorkloadConfig class_config = workload_config;
      class_config.mix = *bc.mix;
      Result<std::unique_ptr<WorkloadGenerator>> class_workload =
          MakeWorkload(class_config, rich);
      if (!class_workload.ok()) return class_workload.status();
      class_workloads.push_back(std::shared_ptr<WorkloadGenerator>(
          std::move(class_workload).value()));
    }
    FABRICSIM_RETURN_NOT_OK(network.StartLoad(
        config.population, config.duration, std::move(class_workloads)));
  }
  env.RunAll();
  // Chain-integrity audit, unconditional on every run (healthy or
  // chaotic): byte-identical dense hash chains on all peers, no acked
  // transaction lost or committed twice. A violation is a simulator
  // bug, never a legitimate result — fail the run loudly. Streaming-
  // ledger runs are the one exception: the audit parses the retained
  // canonical ledger, which streaming mode deliberately discards
  // (which is also why streaming_ledger rejects fault plans).
  if (!config.fabric.streaming_ledger) {
    ChainIntegrityReport integrity = CheckChainIntegrity(network);
    if (!integrity.ok()) {
      return Status::Internal("chain integrity violated: " +
                              integrity.Summary());
    }
  }
  RunArtifacts artifacts;
  if (network.ledger_stats() != nullptr) {
    artifacts.report = BuildFailureReport(
        *network.ledger_stats(), network.stats(), config.duration,
        network.tracer(), network.admission_stats());
  } else {
    std::vector<const BlockStore*> ledgers;
    ledgers.reserve(network.num_channels());
    for (int c = 0; c < network.num_channels(); ++c) {
      ledgers.push_back(&network.ledger(c));
    }
    artifacts.report =
        BuildFailureReport(ledgers, network.stats(), config.duration,
                           network.tracer(), network.admission_stats());
  }
  if (network.tracer() != nullptr) {
    artifacts.trace_jsonl = network.tracer()->ExportJsonl(config.Describe());
  }
  return artifacts;
}

/// One (config, repetition) unit of the flat job list.
struct RepetitionJob {
  const ExperimentConfig* config;
  size_t config_index;
  uint64_t seed;
};

}  // namespace

Result<FailureReport> RunOnce(const ExperimentConfig& config, uint64_t seed) {
  Result<RunArtifacts> artifacts = RunOnceArtifacts(config, seed);
  if (!artifacts.ok()) return artifacts.status();
  return std::move(artifacts.value().report);
}

Result<std::vector<ExperimentResult>> RunExperiments(
    const std::vector<ExperimentConfig>& configs) {
  // Flatten points x repetitions so the pool sees every independent
  // DES instance at once.
  std::vector<RepetitionJob> jobs;
  for (size_t c = 0; c < configs.size(); ++c) {
    const ExperimentConfig& config = configs[c];
    int reps = config.repetitions < 1 ? 1 : config.repetitions;
    for (int r = 0; r < reps; ++r) {
      jobs.push_back(RepetitionJob{&config, c,
                                   config.base_seed + static_cast<uint64_t>(r)});
    }
  }

  // Each job writes only its own pre-sized slot; slot order (config,
  // then repetition) is fixed up front, so assembly below is
  // independent of worker scheduling.
  std::vector<std::optional<Result<RunArtifacts>>> slots(jobs.size());
  ParallelFor(jobs.size(), ParallelJobs(), [&](size_t i) {
    slots[i] = RunOnceArtifacts(*jobs[i].config, jobs[i].seed);
  });

  std::vector<ExperimentResult> results(configs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    Result<RunArtifacts>& artifacts = *slots[i];
    // Slots are scanned in (config, repetition) order, so the first
    // error seen here is the first error the serial loop would hit.
    if (!artifacts.ok()) return artifacts.status();
    ExperimentResult& result = results[jobs[i].config_index];
    result.repetitions.push_back(std::move(artifacts.value().report));
    if (jobs[i].config->fabric.tracing) {
      result.traces.push_back(std::move(artifacts.value().trace_jsonl));
    }
  }
  for (ExperimentResult& result : results) {
    result.mean = FailureReport::Average(result.repetitions);
  }
  return results;
}

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  Result<std::vector<ExperimentResult>> results = RunExperiments({config});
  if (!results.ok()) return results.status();
  return std::move(results.value().front());
}

}  // namespace fabricsim
