#include "src/core/recommendations.h"

#include "src/common/strings.h"

namespace fabricsim {

std::vector<Recommendation> DeriveRecommendations(
    const ExperimentConfig& config, const FailureReport& report) {
  std::vector<Recommendation> recs;

  const bool mvcc_dominant =
      report.mvcc_pct >= 5.0 && report.mvcc_pct >= report.endorsement_pct;

  if (report.total_failure_pct >= 5.0) {
    recs.push_back(Recommendation{
        "block-size",
        StrFormat("Monitor the arrival rate (currently %.0f tps) and adapt "
                  "the block size (currently %u): the paper measured up to "
                  "60%% fewer failures at the best block size.",
                  config.arrival_rate_tps, config.fabric.block_size)});
  }

  if (report.endorsement_pct >= 1.0) {
    recs.push_back(Recommendation{
        "network-design",
        StrFormat("Endorsement policy failures are %.1f%%: reduce the number "
                  "of organizations (%d) and endorsement signatures, and "
                  "flatten sub-policies — world-state inconsistency grows "
                  "with every additional replica and sub-policy search "
                  "space.",
                  report.endorsement_pct, config.fabric.cluster.num_orgs)});
  }

  if (report.phantom_pct >= 1.0) {
    recs.push_back(Recommendation{
        "chaincode-design",
        StrFormat("Phantom read conflicts are %.1f%%: redesign the chaincode "
                  "to avoid range queries (e.g. maintain aggregate keys "
                  "instead of scanning), since no parameter tuning resolves "
                  "phantoms.",
                  report.phantom_pct)});
  }

  if (config.fabric.db_type == DatabaseType::kCouchDb) {
    recs.push_back(Recommendation{
        "database-type",
        "CouchDB is configured: if the chaincode can live without rich "
        "queries, switch to LevelDB — it is embedded in the peer and cuts "
        "both latency and failure rates (paper Table 4)."});
  }

  if (config.fabric.submit_read_only && report.valid_txs > 0) {
    recs.push_back(Recommendation{
        "client-design",
        "Read-only transactions are being submitted for ordering; their "
        "results are final after the execution phase, so skip or batch them "
        "unless an on-chain audit record is required."});
  }

  if (mvcc_dominant && config.fabric.variant == FabricVariant::kFabric14) {
    recs.push_back(Recommendation{
        "variant",
        StrFormat("MVCC read conflicts are %.1f%%: the workload has "
                  "reordering potential — consider Fabric++ (with large "
                  "blocks and small ranges) or FabricSharp (no range "
                  "queries).",
                  report.mvcc_pct)});
  }
  if (!mvcc_dominant && config.fabric.variant != FabricVariant::kFabric14) {
    recs.push_back(Recommendation{
        "variant",
        "Few MVCC conflicts: reordering-based variants add overhead without "
        "benefit on this workload (the paper measured net increases for "
        "insert-/delete-heavy mixes); plain Fabric 1.4 may serve better."});
  }
  if (config.fabric.variant == FabricVariant::kStreamchain &&
      config.arrival_rate_tps > 100) {
    recs.push_back(Recommendation{
        "variant",
        "Streamchain saturates beyond ~100-150 tps (per-transaction "
        "streaming overhead); choose it only for low-traffic networks."});
  }

  if (config.workload.zipf_skew >= 1.0 && mvcc_dominant) {
    recs.push_back(Recommendation{
        "data-model",
        StrFormat("Key accesses are skewed (Zipf %.1f) and conflicts are "
                  "high: split hot keys into finer-grained keys (e.g. "
                  "per-record-type suffixes) so concurrent updates stop "
                  "colliding.",
                  config.workload.zipf_skew)});
  }

  return recs;
}

std::string FormatRecommendations(const std::vector<Recommendation>& recs) {
  if (recs.empty()) return "No recommendations: the configuration is sound.\n";
  std::string out;
  int i = 1;
  for (const Recommendation& rec : recs) {
    out += StrFormat("%d. [%s] %s\n", i++, rec.rule.c_str(),
                     rec.advice.c_str());
  }
  return out;
}

}  // namespace fabricsim
