#ifndef FABRICSIM_CORE_FAILURE_REPORT_H_
#define FABRICSIM_CORE_FAILURE_REPORT_H_

#include <string>
#include <vector>

#include "src/admission/admission.h"
#include "src/client/client.h"
#include "src/ledger/ledger_parser.h"

namespace fabricsim {

class Tracer;
class StreamingLedgerStats;

/// Failure-class slice of one channel's ledger (multi-channel runs
/// only): the same blockchain-parsed counts as the aggregate report,
/// restricted to one shard.
struct ChannelFailureBreakdown {
  int channel = 0;
  uint64_t ledger_txs = 0;
  uint64_t valid_txs = 0;
  uint64_t endorsement_failures = 0;
  uint64_t mvcc_intra = 0;
  uint64_t mvcc_inter = 0;
  uint64_t phantom = 0;
  double total_failure_pct = 0;
  double mvcc_pct = 0;
  double committed_throughput_tps = 0;
};

/// Aggregated metrics of one run, computed by parsing the blockchain
/// after the experiment (paper §4.5): failure percentages per type,
/// average total transaction latency over successful *and* failed
/// transactions, and committed transaction throughput.
struct FailureReport {
  // Counts.
  uint64_t ledger_txs = 0;        ///< transactions on the blockchain
  uint64_t valid_txs = 0;
  uint64_t endorsement_failures = 0;
  uint64_t mvcc_intra = 0;
  uint64_t mvcc_inter = 0;
  uint64_t phantom = 0;
  uint64_t reorder_aborts = 0;    ///< Fabric++ in-block aborts
  uint64_t early_aborts = 0;      ///< FabricSharp, never on chain
  uint64_t submitted_txs = 0;
  uint64_t app_errors = 0;

  // Client-robustness counters (all zero unless a ClientRetryPolicy or
  // a fault plan is active; zero values are omitted from ToString()).
  uint64_t dropped_no_endorsers = 0;  ///< no org had an endorsing peer
  uint64_t endorse_retries = 0;       ///< re-proposal rounds after timeouts
  uint64_t endorse_timeouts = 0;      ///< abandoned after retry budget
  uint64_t resubmissions = 0;         ///< MVCC failures resubmitted

  // Ordering-availability counters (all zero in compat single-leader
  // mode; zero values are omitted from ToString()).
  uint64_t orderer_rebroadcasts = 0;    ///< failovers to another replica
  uint64_t orderer_broadcast_drops = 0; ///< rebroadcast budget exhausted
  uint64_t orderer_elections = 0;       ///< Raft elections started
  uint64_t orderer_leader_changes = 0;  ///< distinct leader takeovers

  // Overload-protection section (src/admission). Only populated —
  // and only printed — when the run had an enabled AdmissionConfig;
  // unprotected runs produce byte-identical reports.
  bool has_admission = false;
  uint64_t admission_shed = 0;             ///< proposals shed at endorsers
  uint64_t admission_cancelled = 0;        ///< dead siblings husked early
  uint64_t deadline_expired_endorse = 0;   ///< TTL passed at the endorser
  uint64_t deadline_expired_order = 0;     ///< TTL passed at orderer ingress
  uint64_t deadline_expired_commit = 0;    ///< TTL passed at validation
  uint64_t orderer_throttled = 0;          ///< bounded-ingress rejections
  uint64_t breaker_rejected = 0;           ///< submissions suppressed open
  uint64_t breaker_opens = 0;              ///< closed->open transitions
  uint64_t retry_budget_denials = 0;       ///< retries skipped, empty bucket
  double endorse_sojourn_p50_ms = 0;       ///< endorse-queue wait quantiles
  double endorse_sojourn_p99_ms = 0;
  double endorse_depth_mean = 0;           ///< queue depth at arrival
  double endorse_depth_max = 0;

  // Percentages of ledger transactions.
  double total_failure_pct = 0;
  double endorsement_pct = 0;
  double mvcc_intra_pct = 0;
  double mvcc_inter_pct = 0;
  double mvcc_pct = 0;
  double phantom_pct = 0;
  double reorder_abort_pct = 0;
  /// Early aborts as a percentage of submitted transactions.
  double early_abort_pct = 0;

  // Latency in seconds, over all ledger transactions.
  double avg_latency_s = 0;
  double p50_latency_s = 0;
  double p99_latency_s = 0;

  // Throughput in tps over the load duration.
  double committed_throughput_tps = 0;  ///< ledger txs / duration
  double valid_throughput_tps = 0;      ///< valid txs / duration

  /// Largest gap between consecutive block cut times on the ledger, in
  /// seconds. Under a leader crash this is the ordering-unavailability
  /// window (detection + election + takeover); in healthy runs it
  /// tracks the batch timeout. Zero when fewer than two blocks.
  double max_interblock_gap_s = 0;

  /// Per-phase latency breakdown (execute / order / validate+commit),
  /// only populated when the run had lifecycle tracing enabled. The
  /// three phases telescope: endorse + ordering + commit = total.
  bool has_phase_breakdown = false;
  double endorse_avg_s = 0;
  double endorse_p99_s = 0;
  double ordering_avg_s = 0;
  double ordering_p99_s = 0;
  double commit_avg_s = 0;
  double commit_p99_s = 0;

  /// Per-channel slices, one entry per channel, in channel order.
  /// Empty for single-channel runs — their report (and its ToString())
  /// is byte-identical to the pre-channel simulator's.
  std::vector<ChannelFailureBreakdown> per_channel;

  /// Element-wise mean of several runs (the paper's >=3 repetitions).
  static FailureReport Average(const std::vector<FailureReport>& reports);

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

/// Builds the report from a parsed ledger plus the client-side
/// counters. `load_duration` is the length of the submission phase.
/// When `tracer` is non-null (run had tracing enabled), the report
/// additionally carries the per-phase latency breakdown; a null tracer
/// produces output identical to a build without the obs subsystem.
/// Likewise `admission`: non-null adds the overload-protection
/// section, null reproduces the unprotected report byte-for-byte.
FailureReport BuildFailureReport(const BlockStore& ledger,
                                 const RunStats& stats,
                                 SimTime load_duration,
                                 const Tracer* tracer = nullptr,
                                 const AdmissionStats* admission = nullptr);

/// Multi-channel variant: one ledger per channel, in channel order.
/// The aggregate metrics sum/merge across every channel's chain; with
/// more than one ledger the report additionally carries the
/// per-channel breakdown. Passing exactly one ledger is arithmetic-
/// identical to the single-ledger overload.
FailureReport BuildFailureReport(const std::vector<const BlockStore*>& ledgers,
                                 const RunStats& stats,
                                 SimTime load_duration,
                                 const Tracer* tracer = nullptr,
                                 const AdmissionStats* admission = nullptr);

/// Streaming variant: builds the report from commit-time aggregates
/// instead of a retained ledger. Failure counts and throughput are
/// exact (same per-tx classification as the parsed path); latency
/// quantiles are sketch-approximate within
/// QuantileSketch::kRelativeError.
FailureReport BuildFailureReport(const StreamingLedgerStats& ledger_stats,
                                 const RunStats& stats,
                                 SimTime load_duration,
                                 const Tracer* tracer = nullptr,
                                 const AdmissionStats* admission = nullptr);

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_FAILURE_REPORT_H_
