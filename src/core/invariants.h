#ifndef FABRICSIM_CORE_INVARIANTS_H_
#define FABRICSIM_CORE_INVARIANTS_H_

#include <string>
#include <vector>

#include "src/ledger/block.h"
#include "src/ledger/block_store.h"

namespace fabricsim {

class FabricNetwork;

/// One peer's committed hash chain, as seen by the checker.
struct PeerChainView {
  PeerId peer = 0;
  const std::vector<PeerChainRecord>* records = nullptr;
};

/// Result of the chain-integrity audit. `violations` is empty on a
/// clean run; each entry is a human-readable description of one broken
/// invariant.
struct ChainIntegrityReport {
  std::vector<std::string> violations;
  uint64_t canonical_height = 0;
  int peers_checked = 0;

  bool ok() const { return violations.empty(); }
  /// Violations joined into one line ("" when clean).
  std::string Summary() const;
};

/// Audits the run-ending state of the ledger and every peer's
/// committed hash chain:
///  * the canonical ledger is dense (blocks 1..height, no gaps, no
///    renumbering) and no transaction id appears in two blocks
///    (double commit);
///  * every peer's chain is a dense prefix-or-extension of the same
///    hash chain — byte-identical content at every height two chains
///    share (a crashed peer may stop early; a peer may also run ahead
///    of the recorded ledger when the reference peer itself crashed);
///  * every client-acked transaction id (replicated-ordering mode) is
///    on the ledger exactly once — an acked transaction was never
///    lost. Ids beyond a behind-the-peers ledger head are only checked
///    when the ledger is the longest chain available.
///
/// Pure observation: reads committed state only, never touches the
/// simulation. Cheap enough to run unconditionally after every run.
ChainIntegrityReport CheckChainRecords(
    const BlockStore& ledger, const std::vector<PeerChainView>& peers,
    const std::vector<TxId>* acked_txs);

/// Convenience wrapper: audits every channel of `network` — each
/// channel's canonical ledger, every peer's chain for that channel,
/// and the channel's acked-transaction record. Violations on channels
/// other than the default are prefixed with the channel id.
ChainIntegrityReport CheckChainIntegrity(const FabricNetwork& network);

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_INVARIANTS_H_
