#include "src/core/invariants.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/strings.h"
#include "src/fabric/fabric_network.h"

namespace fabricsim {

std::string ChainIntegrityReport::Summary() const {
  std::string out;
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i != 0) out += "; ";
    out += violations[i];
  }
  return out;
}

namespace {

/// Rebuilds the hash chain the reference peer's recorded ledger
/// implies, so it can be audited like any peer chain.
std::vector<PeerChainRecord> LedgerChainRecords(const BlockStore& ledger) {
  std::vector<PeerChainRecord> records;
  records.reserve(ledger.blocks().size());
  uint64_t prev = kChainHashSeed;
  for (const Block& block : ledger.blocks()) {
    uint64_t content = BlockContentHash(block, block.results);
    uint64_t chain = MixChainHash(prev, content);
    records.push_back(PeerChainRecord{block.number, content, chain});
    prev = chain;
  }
  return records;
}

void CheckOneChain(const char* who, const std::vector<PeerChainRecord>& chain,
                   ChainIntegrityReport* report) {
  uint64_t prev = kChainHashSeed;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i].number != i + 1) {
      report->violations.push_back(StrFormat(
          "%s: block numbers not dense: position %zu holds block %llu", who,
          i, static_cast<unsigned long long>(chain[i].number)));
      return;  // everything downstream would re-report the same gap
    }
    uint64_t expected = MixChainHash(prev, chain[i].content_hash);
    if (chain[i].chain_hash != expected) {
      report->violations.push_back(StrFormat(
          "%s: chain hash broken at block %llu", who,
          static_cast<unsigned long long>(chain[i].number)));
      return;
    }
    prev = chain[i].chain_hash;
  }
}

}  // namespace

ChainIntegrityReport CheckChainRecords(const BlockStore& ledger,
                                       const std::vector<PeerChainView>& peers,
                                       const std::vector<TxId>* acked_txs) {
  ChainIntegrityReport report;
  report.canonical_height = ledger.height();
  report.peers_checked = static_cast<int>(peers.size());

  // 1. The canonical ledger itself: dense numbering, internally
  //    consistent hash chain, and no transaction committed twice.
  std::vector<PeerChainRecord> ledger_chain = LedgerChainRecords(ledger);
  CheckOneChain("ledger", ledger_chain, &report);
  std::unordered_set<TxId> ledger_tx_ids;
  for (const Block& block : ledger.blocks()) {
    for (const Transaction& tx : block.txs) {
      if (!ledger_tx_ids.insert(tx.id).second) {
        report.violations.push_back(StrFormat(
            "tx %llu committed twice (second time in block %llu)",
            static_cast<unsigned long long>(tx.id),
            static_cast<unsigned long long>(block.number)));
      }
    }
  }

  // 2. Reference chain = the longest chain available. Normally that is
  //    the ledger; when the reference peer crashed mid-run, surviving
  //    peers may have committed past the recorded ledger head, and
  //    their agreement beyond it is still checkable.
  const std::vector<PeerChainRecord>* reference = &ledger_chain;
  const char* reference_name = "ledger";
  for (const PeerChainView& view : peers) {
    if (view.records != nullptr && view.records->size() > reference->size()) {
      reference = view.records;
      reference_name = "peer";
    }
  }
  (void)reference_name;

  // 3. Every chain (ledger included) must be byte-identical to the
  //    reference at every height the two share. Crashed peers stop
  //    early — a shorter chain is fine, divergence is not.
  auto check_against_reference =
      [&](const char* who, const std::vector<PeerChainRecord>& chain) {
        size_t shared = std::min(chain.size(), reference->size());
        for (size_t i = 0; i < shared; ++i) {
          if (chain[i].content_hash != (*reference)[i].content_hash ||
              chain[i].chain_hash != (*reference)[i].chain_hash) {
            report.violations.push_back(StrFormat(
                "%s diverges from the reference chain at block %llu", who,
                static_cast<unsigned long long>(i + 1)));
            return;
          }
        }
      };
  check_against_reference("ledger", ledger_chain);
  for (const PeerChainView& view : peers) {
    if (view.records == nullptr) continue;
    CheckOneChain(StrFormat("peer %d", view.peer).c_str(), *view.records,
                  &report);
    check_against_reference(StrFormat("peer %d", view.peer).c_str(),
                            *view.records);
  }

  // 4. No client-acked transaction may be lost. The ack fires at
  //    quorum commit, so the transaction must reach the ledger —
  //    unless the recorded ledger itself stopped short of the
  //    reference chain (reference-peer crash), in which case ids
  //    beyond its head are unverifiable from here.
  if (acked_txs != nullptr && ledger_chain.size() == reference->size()) {
    for (TxId id : *acked_txs) {
      if (ledger_tx_ids.count(id) == 0) {
        report.violations.push_back(
            StrFormat("acked tx %llu never committed (lost across failover)",
                      static_cast<unsigned long long>(id)));
      }
    }
  }
  return report;
}

ChainIntegrityReport CheckChainIntegrity(const FabricNetwork& network) {
  // Every channel's chain is audited independently — a violation names
  // its channel. canonical_height/peers_checked keep their legacy
  // single-channel meaning (channel 0).
  ChainIntegrityReport combined;
  for (int c = 0; c < network.num_channels(); ++c) {
    std::vector<PeerChainView> views;
    views.reserve(network.peers().size());
    for (const auto& peer : network.peers()) {
      views.push_back(PeerChainView{peer->id(), &peer->chain_records(c)});
    }
    ChainIntegrityReport report =
        CheckChainRecords(network.ledger(c), views, &network.acked_txs(c));
    if (c == 0) {
      combined = std::move(report);
      continue;
    }
    for (std::string& violation : report.violations) {
      combined.violations.push_back(StrFormat("channel %d: ", c) + violation);
    }
  }
  return combined;
}

}  // namespace fabricsim
