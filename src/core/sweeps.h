#ifndef FABRICSIM_CORE_SWEEPS_H_
#define FABRICSIM_CORE_SWEEPS_H_

#include <cstdint>
#include <vector>

#include "src/core/runner.h"

namespace fabricsim {

/// The block sizes the paper sweeps.
std::vector<uint32_t> DefaultBlockSizes();

/// One point of a block-size sweep.
struct BlockSizePoint {
  uint32_t block_size = 0;
  FailureReport report;
};

/// Runs `config` at each block size (everything else fixed).
Result<std::vector<BlockSizePoint>> SweepBlockSizes(
    ExperimentConfig config, const std::vector<uint32_t>& sizes);

/// Outcome of a best/worst block-size search (paper §5.1.1: "best
/// block size" minimizes the failed-transaction percentage, "worst"
/// maximizes it).
struct BlockSizeSearch {
  uint32_t best_block_size = 0;
  uint32_t worst_block_size = 0;
  double min_failure_pct = 0;
  double max_failure_pct = 0;
  std::vector<BlockSizePoint> points;
};

Result<BlockSizeSearch> FindBestBlockSize(ExperimentConfig config,
                                          const std::vector<uint32_t>& sizes);

/// One point of an arrival-rate sweep.
struct RatePoint {
  double rate_tps = 0;
  FailureReport report;
};

Result<std::vector<RatePoint>> SweepArrivalRates(
    ExperimentConfig config, const std::vector<double>& rates);

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_SWEEPS_H_
