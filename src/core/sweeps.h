#ifndef FABRICSIM_CORE_SWEEPS_H_
#define FABRICSIM_CORE_SWEEPS_H_

#include <cstdint>
#include <vector>

#include "src/core/runner.h"
#include "src/policy/policy_presets.h"

namespace fabricsim {

/// The block sizes the paper sweeps.
std::vector<uint32_t> DefaultBlockSizes();

/// One point of a block-size sweep.
struct BlockSizePoint {
  uint32_t block_size = 0;
  FailureReport report;
};

/// Runs `config` at each block size (everything else fixed). All
/// sweeps fan (points x repetitions) out as one flat job list over
/// ParallelJobs() threads; output order and values are bitwise
/// identical to the serial FABRICSIM_JOBS=1 run.
Result<std::vector<BlockSizePoint>> SweepBlockSizes(
    ExperimentConfig config, const std::vector<uint32_t>& sizes);

/// Outcome of a best/worst block-size search (paper §5.1.1: "best
/// block size" minimizes the failed-transaction percentage, "worst"
/// maximizes it).
struct BlockSizeSearch {
  uint32_t best_block_size = 0;
  uint32_t worst_block_size = 0;
  double min_failure_pct = 0;
  double max_failure_pct = 0;
  std::vector<BlockSizePoint> points;
};

Result<BlockSizeSearch> FindBestBlockSize(ExperimentConfig config,
                                          const std::vector<uint32_t>& sizes);

/// One point of an arrival-rate sweep.
struct RatePoint {
  double rate_tps = 0;
  FailureReport report;
};

Result<std::vector<RatePoint>> SweepArrivalRates(
    ExperimentConfig config, const std::vector<double>& rates);

/// One point of an organization-count sweep (paper Fig. 12).
struct OrgCountPoint {
  int num_orgs = 0;
  FailureReport report;
};

/// Runs `config` at each organization count (peers per org fixed).
Result<std::vector<OrgCountPoint>> SweepOrgCounts(
    ExperimentConfig config, const std::vector<int>& org_counts);

/// One point of an endorsement-policy sweep (paper Fig. 13 / Table 5).
struct PolicyPoint {
  PolicyPreset preset = PolicyPreset::kP0AllOrgs;
  EndorsementPolicy policy;
  FailureReport report;
};

/// Runs `config` under each policy preset, instantiated for the
/// config's organization count.
Result<std::vector<PolicyPoint>> SweepPolicyPresets(
    ExperimentConfig config, const std::vector<PolicyPreset>& presets);

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_SWEEPS_H_
