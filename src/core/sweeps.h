#ifndef FABRICSIM_CORE_SWEEPS_H_
#define FABRICSIM_CORE_SWEEPS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/runner.h"
#include "src/policy/policy_presets.h"

namespace fabricsim {

// ---------------------------------------------------------------------
// Generic one-dimensional sweep API. A sweep is described
// declaratively by a SweepSpec — the parameter's name, the values to
// visit, and how one value is applied to a base ExperimentConfig —
// and executed by RunSweep(), which fans every (point, repetition)
// pair out as one flat job list over ParallelJobs() threads. Output
// order and values are bitwise identical to the serial
// FABRICSIM_JOBS=1 run.
// ---------------------------------------------------------------------

/// One point of a sweep: the swept value (numeric form), a readable
/// label, and the mean report across repetitions at that point.
struct SweepPoint {
  double value = 0;
  std::string label;
  FailureReport report;
};

/// Declarative description of a one-dimensional sweep.
struct SweepSpec {
  /// Name of the swept parameter, e.g. "block_size" or "policy".
  std::string parameter;
  /// The values to visit, in output order.
  std::vector<double> values;
  /// Optional labels parallel to `values`; when empty, RunSweep
  /// renders "parameter=value".
  std::vector<std::string> labels;
  /// Applies values[index] to the config of that point. Returning a
  /// non-OK status aborts the whole sweep before anything runs.
  std::function<Status(ExperimentConfig* config, double value, size_t index)>
      apply;
};

/// Materializes the per-point configs, runs them as one flat job
/// list, and pairs each mean report with its swept value.
Result<std::vector<SweepPoint>> RunSweep(const ExperimentConfig& base,
                                         const SweepSpec& spec);

// --- Ready-made specs for the paper's sweep dimensions ---------------

/// Block-size sweep (paper Fig. 7 / §5.1.1): fabric.block_size.
SweepSpec BlockSizeSweepSpec(const std::vector<uint32_t>& sizes);

/// Arrival-rate sweep (paper Fig. 4): arrival_rate_tps.
SweepSpec ArrivalRateSweepSpec(const std::vector<double>& rates);

/// Organization-count sweep (paper Fig. 12): fabric.cluster.num_orgs,
/// peers per org fixed.
SweepSpec OrgCountSweepSpec(const std::vector<int>& org_counts);

/// Endorsement-policy sweep (paper Fig. 13 / Table 5): each preset is
/// instantiated for the point's organization count at apply time.
SweepSpec PolicyPresetSweepSpec(const std::vector<PolicyPreset>& presets);

/// The block sizes the paper sweeps.
std::vector<uint32_t> DefaultBlockSizes();

// ---------------------------------------------------------------------
// Derived searches over RunSweep(). (The legacy typed wrappers —
// SweepBlockSizes / SweepArrivalRates / SweepOrgCounts /
// SweepPolicyPresets — are gone: build a SweepSpec, or use a factory
// above, and call RunSweep() directly.)
// ---------------------------------------------------------------------

/// Outcome of a best/worst block-size search (paper §5.1.1: "best
/// block size" minimizes the failed-transaction percentage, "worst"
/// maximizes it). `points` is the underlying block-size sweep
/// (point.value = block size).
struct BlockSizeSearch {
  uint32_t best_block_size = 0;
  uint32_t worst_block_size = 0;
  double min_failure_pct = 0;
  double max_failure_pct = 0;
  std::vector<SweepPoint> points;
};

Result<BlockSizeSearch> FindBestBlockSize(ExperimentConfig config,
                                          const std::vector<uint32_t>& sizes);

}  // namespace fabricsim

#endif  // FABRICSIM_CORE_SWEEPS_H_
