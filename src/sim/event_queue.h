#ifndef FABRICSIM_SIM_EVENT_QUEUE_H_
#define FABRICSIM_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/sim_time.h"

namespace fabricsim {

/// A single scheduled callback. Events with equal timestamps fire in
/// insertion order (FIFO tie-break via sequence number) so simulations
/// are fully deterministic. Daemon events (perpetual control-plane
/// timers like Raft heartbeats and election timeouts) fire like any
/// other event while real work remains, but do not keep the
/// simulation alive on their own — the DES analogue of daemon threads.
struct Event {
  SimTime time;
  uint64_t seq;
  std::function<void()> action;
  bool daemon = false;
};

/// Min-heap of events ordered by (time, seq). Implemented directly on
/// a reserved std::vector (rather than std::priority_queue) so the
/// hot Push/Pop path can pre-size the storage and move events out of
/// the heap without const_cast tricks — every simulated message is a
/// Push+Pop, so std::function copies here dominate the DES overhead.
class EventQueue {
 public:
  /// Schedules `action` at absolute simulated time `time`.
  void Push(SimTime time, std::function<void()> action, bool daemon = false);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// True while at least one non-daemon event is pending — the
  /// quiescence condition: a queue holding only daemon timers is done.
  bool has_real_events() const { return real_events_ > 0; }

  /// Time of the earliest pending event. Must not be empty.
  SimTime PeekTime() const { return heap_.front().time; }

  /// Removes and returns the earliest event. Must not be empty.
  Event Pop();

 private:
  struct Compare {
    // push_heap/pop_heap build a max-heap, so "greater" keeps the
    // earliest (time, seq) at the front — identical ordering to the
    // previous std::priority_queue.
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
  size_t real_events_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_SIM_EVENT_QUEUE_H_
