#ifndef FABRICSIM_SIM_EVENT_QUEUE_H_
#define FABRICSIM_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/sim_time.h"

namespace fabricsim {

/// A single scheduled callback. Events with equal timestamps fire in
/// insertion order (FIFO tie-break via sequence number) so simulations
/// are fully deterministic.
struct Event {
  SimTime time;
  uint64_t seq;
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, seq). Implemented directly on
/// a reserved std::vector (rather than std::priority_queue) so the
/// hot Push/Pop path can pre-size the storage and move events out of
/// the heap without const_cast tricks — every simulated message is a
/// Push+Pop, so std::function copies here dominate the DES overhead.
class EventQueue {
 public:
  /// Schedules `action` at absolute simulated time `time`.
  void Push(SimTime time, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Must not be empty.
  SimTime PeekTime() const { return heap_.front().time; }

  /// Removes and returns the earliest event. Must not be empty.
  Event Pop();

 private:
  struct Compare {
    // push_heap/pop_heap build a max-heap, so "greater" keeps the
    // earliest (time, seq) at the front — identical ordering to the
    // previous std::priority_queue.
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace fabricsim

#endif  // FABRICSIM_SIM_EVENT_QUEUE_H_
